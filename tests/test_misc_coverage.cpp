// Cross-cutting coverage: file-level persistence, explicit Gibbs scale
// anchoring, hardware-evaluation input validation, and default-value
// contracts that client code relies on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "area/area_model.hpp"
#include "bayes/gibbs.hpp"
#include "charlib/error_model.hpp"
#include "core/baseline.hpp"
#include "core/circuit_eval.hpp"
#include "core/synthetic.hpp"
#include "fabric/calibration.hpp"

namespace oclp {
namespace {

MultConfig acfg(int wl) { return MultConfig{MultArch::Array, wl, 1}; }

TEST(ErrorModelIo, FileRoundTrip) {
  ErrorModel model(acfg(4), 9, {200.0, 310.0});
  for (std::uint32_t m = 0; m < 16; ++m) {
    model.set(m, 0, m * 2.0, -0.5 * m, 0.01 * m / 16.0);
    model.set(m, 1, m * 7.0, 0.25 * m, 0.03 * m / 16.0);
  }
  const auto path =
      std::filesystem::temp_directory_path() / "oclp_test_error_model.csv";
  model.save_csv_file(path.string());
  const auto loaded = ErrorModel::load_csv_file(path.string());
  std::filesystem::remove(path);
  for (std::uint32_t m = 0; m < 16; ++m)
    for (double f : {200.0, 255.0, 310.0})
      EXPECT_DOUBLE_EQ(loaded.variance(m, f), model.variance(m, f));
}

TEST(ErrorModelIo, MissingFileThrows) {
  EXPECT_THROW(ErrorModel::load_csv_file("/nonexistent/path/model.csv"),
               CheckError);
}

TEST(GibbsScale, ExplicitFactorVarianceControlsLambdaNorm) {
  // With an explicit tiny factor variance, the factors must be large and
  // the loading small — the anchoring knob demonstrably works.
  Rng rng(3);
  Matrix x(4, 200);
  for (std::size_t i = 0; i < 200; ++i) {
    const double z = rng.normal(0.0, 0.5);
    for (std::size_t r = 0; r < 4; ++r)
      x(r, i) = z * 0.5 + rng.normal(0.0, 0.02);
  }
  const auto prior = make_flat_prior(acfg(7), 310.0);
  GibbsSettings settings;
  settings.burn_in = 150;
  settings.samples = 400;
  settings.seed = 9;

  settings.factor_variance = 25.0;  // huge factor scale → tiny λ
  const auto small = sample_projection(x, prior, settings);
  settings.factor_variance = 0.01;  // tiny factor scale → λ grid-limited
  const auto large = sample_projection(x, prior, settings);
  EXPECT_LT(norm(small.lambda), norm(large.lambda));
}

TEST(HardwareEval, InputValidation) {
  Device device(reference_device_config(), kReferenceDieSeed);
  const AreaModel area =
      AreaModel::fit(collect_area_samples({acfg(5)}, 9, 3, 1));
  SyntheticDataConfig dc;
  dc.cases = 30;
  const Matrix x = make_synthetic_dataset(dc);
  const auto design = make_klt_design(x, 2, acfg(5), 200.0, 9, area, nullptr);
  const auto plan = simulated_plan(design, reference_location_1());

  const std::vector<double> wrong_mu(3, 0.0);  // needs P = 6 entries
  EXPECT_THROW(evaluate_hardware_mse(design, x, wrong_mu, device, plan, 9,
                                     nullptr, 1),
               CheckError);
  const Matrix wrong_x(4, 10, 0.5);  // wrong dimensionality
  const std::vector<double> mu(6, 0.5);
  EXPECT_THROW(evaluate_hardware_mse(design, wrong_x, mu, device, plan, 9,
                                     nullptr, 1),
               CheckError);
}

TEST(DesignDefaults, KltColumnsCarryTheRequestedConfig) {
  // No layer may silently default an architecture: the config handed to
  // the KLT baseline must come back on every realised column.
  const MultConfig cfg{MultArch::Wallace, 4, 2};
  const AreaModel area = AreaModel::fit(collect_area_samples({cfg}, 9, 2, 1));
  SyntheticDataConfig dc;
  dc.cases = 20;
  const Matrix x = make_synthetic_dataset(dc);
  const auto d = make_klt_design(x, 2, cfg, 100.0, 9, area, nullptr);
  ASSERT_FALSE(d.columns.empty());
  for (const auto& col : d.columns) EXPECT_EQ(col.config, cfg);
}

TEST(ReferenceConfig, MatchesPaperAnchors) {
  // The constants every bench and example assume.
  EXPECT_EQ(kTargetClockMhz, 310.0);
  EXPECT_EQ(kFig4ClockMhz, 320.0);
  EXPECT_EQ(kFig4Multiplicand, 222u);
  EXPECT_EQ(kCharacterisationTempC, 14.0);
  const auto cfg = reference_device_config();
  EXPECT_GT(cfg.slow_corner_factor, 1.0);
  EXPECT_GT(cfg.tool_guardband, 1.0);
  EXPECT_NE(reference_location_1().x, reference_location_2().x);
}

TEST(SimulatedPlan, JitterDefaultsOn) {
  const AreaModel area =
      AreaModel::fit(collect_area_samples({acfg(4)}, 9, 2, 1));
  SyntheticDataConfig dc;
  dc.cases = 20;
  const Matrix x = make_synthetic_dataset(dc);
  const auto design = make_klt_design(x, 2, acfg(4), 100.0, 9, area, nullptr);
  EXPECT_TRUE(simulated_plan(design, reference_location_1()).with_jitter);
  Device device(reference_device_config(), kReferenceDieSeed);
  EXPECT_TRUE(actual_plan(design, device, 1).with_jitter);
}

}  // namespace
}  // namespace oclp
