// End-to-end reproduction smoke test: the complete pipeline at reduced
// sizes must reproduce the paper's headline shape — OF designs behave as
// predicted under over-clocking and beat equal-area KLT designs at the
// 310 MHz target, where high-word-length KLT designs degrade badly.
#include <gtest/gtest.h>

#include <map>

#include "area/area_model.hpp"
#include "charlib/sweep.hpp"
#include "core/algorithm1.hpp"
#include "core/baseline.hpp"
#include "core/circuit_eval.hpp"
#include "core/objective.hpp"
#include "core/synthetic.hpp"
#include "fabric/calibration.hpp"

namespace oclp {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    device_ = new Device(reference_device_config(), kReferenceDieSeed);
    device_->set_temperature(kCharacterisationTempC);

    SyntheticDataConfig dc;
    dc.cases = 100;
    x_train_ = new Matrix(make_synthetic_dataset(dc));
    dc.cases = 600;
    dc.seed = 99;
    x_test_ = new Matrix(make_synthetic_dataset(dc));

    SweepSettings ss;
    ss.freqs_mhz = {kTargetClockMhz};
    ss.locations = {reference_location_1(), reference_location_2()};
    ss.samples_per_point = 300;
    const auto configs = mult_config_range(MultArch::Array, 3, 9);
    models_ = new ErrorModelMap;
    for (const auto& cfg : configs)
      models_->emplace(cfg, characterise_multiplier(*device_, cfg, 9, ss));
    area_ =
        new AreaModel(AreaModel::fit(collect_area_samples(configs, 9, 12, 5)));

    OptimisationSettings os;
    os.beta = 4.0;
    os.gibbs.burn_in = 300;
    os.gibbs.samples = 800;
    os.gibbs.seed = 7;
    OptimisationFramework of(os, *x_train_, *models_, *area_);
    of_designs_ = new std::vector<LinearProjectionDesign>(of.run());
    mu_ = new std::vector<double>(of.data_mean());
    klt_designs_ = new std::vector<LinearProjectionDesign>(
        make_klt_family(*x_train_, 3, mult_config_range(MultArch::Array, 3, 9),
                        kTargetClockMhz, 9, *area_, models_));
  }

  static void TearDownTestSuite() {
    delete device_;
    delete x_train_;
    delete x_test_;
    delete models_;
    delete area_;
    delete of_designs_;
    delete klt_designs_;
    delete mu_;
    device_ = nullptr;
  }

  static double actual_mse(const LinearProjectionDesign& d, std::uint64_t seed) {
    return evaluate_hardware_mse(d, *x_test_, *mu_, *device_,
                                 actual_plan(d, *device_, seed), 9, models_,
                                 seed + 1);
  }

  static Device* device_;
  static Matrix* x_train_;
  static Matrix* x_test_;
  static ErrorModelMap* models_;
  static AreaModel* area_;
  static std::vector<LinearProjectionDesign>* of_designs_;
  static std::vector<LinearProjectionDesign>* klt_designs_;
  static std::vector<double>* mu_;
};

Device* IntegrationTest::device_ = nullptr;
Matrix* IntegrationTest::x_train_ = nullptr;
Matrix* IntegrationTest::x_test_ = nullptr;
ErrorModelMap* IntegrationTest::models_ = nullptr;
AreaModel* IntegrationTest::area_ = nullptr;
std::vector<LinearProjectionDesign>* IntegrationTest::of_designs_ = nullptr;
std::vector<LinearProjectionDesign>* IntegrationTest::klt_designs_ = nullptr;
std::vector<double>* IntegrationTest::mu_ = nullptr;

TEST_F(IntegrationTest, FrameworkProducesDesigns) {
  ASSERT_FALSE(of_designs_->empty());
  EXPECT_LE(of_designs_->size(), 5u);
}

TEST_F(IntegrationTest, OfDesignsAvoidOverclockingErrors) {
  // β = 4 nearly forbids error-prone coefficients: the predicted
  // over-clocking variance must be negligible next to the training MSE.
  for (const auto& d : *of_designs_)
    EXPECT_LT(d.predicted_overclock_var / static_cast<double>(d.dims_p()),
              d.training_mse * 0.5)
        << d.origin;
}

TEST_F(IntegrationTest, OfDesignsBehaveAsPredictedOnHardware) {
  // Paper Fig. 10/11: OF designs behave as expected under over-clocking —
  // actual MSE within a small factor of predicted.
  for (const auto& d : *of_designs_) {
    const double actual = actual_mse(d, 0xACDC);
    EXPECT_LT(actual, d.predicted_objective() * 4.0 + 5e-5) << d.origin;
  }
}

TEST_F(IntegrationTest, HighWordlengthKltDegradesAtTarget) {
  // Paper Fig. 8/11: large-footprint KLT designs operate with errors at
  // 310 MHz.
  const auto& klt9 = klt_designs_->back();
  ASSERT_EQ(klt9.columns.front().wordlength(), 9);
  const double actual = actual_mse(klt9, 0xACDC);
  EXPECT_GT(actual, klt9.training_mse * 5.0);
}

TEST_F(IntegrationTest, OfBeatsKltAtComparableAreaUnderOverclocking) {
  // The headline: for every KLT design with wl >= 7 (where over-clocking
  // errors are robust to placement luck), there is an OF design of no
  // larger area with an order-of-magnitude-ish lower actual MSE.
  int comparisons = 0;
  double worst_ratio = 1e18;
  double ratio_product = 1.0;
  for (const auto& klt : *klt_designs_) {
    if (klt.columns.front().wordlength() < 7) continue;
    const LinearProjectionDesign* best_of = nullptr;
    for (const auto& of : *of_designs_)
      if (of.area_estimate <= klt.area_estimate * 1.05 &&
          (best_of == nullptr || of.training_mse < best_of->training_mse))
        best_of = &of;
    if (best_of == nullptr) continue;
    const double klt_mse = actual_mse(klt, 0xBEEF);
    const double of_mse = actual_mse(*best_of, 0xBEEF);
    const double ratio = klt_mse / of_mse;
    worst_ratio = std::min(worst_ratio, ratio);
    ratio_product *= ratio;
    ++comparisons;
  }
  ASSERT_GE(comparisons, 2);
  EXPECT_GT(worst_ratio, 3.0);  // OF wins every comparison clearly
  // Geometric-mean improvement is about an order of magnitude.
  EXPECT_GT(std::pow(ratio_product, 1.0 / comparisons), 8.0);
}

TEST_F(IntegrationTest, LowWordlengthKltStillWorksAtTarget) {
  // Small-area designs stay error-free at 310 MHz (Fig. 8's story).
  const auto& klt3 = klt_designs_->front();
  ASSERT_EQ(klt3.columns.front().wordlength(), 3);
  const double actual = actual_mse(klt3, 0xACDC);
  EXPECT_LT(actual, klt3.training_mse * 3.0);
}

TEST_F(IntegrationTest, SimulatedDomainTracksActualForCleanDesigns) {
  // Paper Fig. 10: simulation and board agree for designs without errors.
  const auto& d = of_designs_->front();
  const double sim = evaluate_hardware_mse(
      d, *x_test_, *mu_, *device_, simulated_plan(d, reference_location_1()), 9,
      models_, 3);
  const double act = actual_mse(d, 0xF00D);
  EXPECT_LT(std::abs(sim - act), std::max(sim, act) * 0.5 + 2e-5);
}

}  // namespace
}  // namespace oclp
