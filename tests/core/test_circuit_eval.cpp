#include "core/circuit_eval.hpp"

#include <gtest/gtest.h>

#include "area/area_model.hpp"
#include "common/rng.hpp"
#include "core/baseline.hpp"
#include "core/synthetic.hpp"
#include "fabric/calibration.hpp"
#include "klt/klt.hpp"

namespace oclp {
namespace {

class CircuitEvalTest : public ::testing::Test {
 protected:
  CircuitEvalTest()
      : device_(reference_device_config(), kReferenceDieSeed),
        area_(AreaModel::fit(collect_area_samples(
            mult_config_range(MultArch::Array, 3, 9), 9, 10, 1))) {
    device_.set_temperature(kCharacterisationTempC);
    SyntheticDataConfig dc;
    dc.cases = 80;
    x_train_ = make_synthetic_dataset(dc);
    dc.cases = 120;
    dc.seed = 99;
    x_test_ = make_synthetic_dataset(dc);
    Matrix xc = x_train_;
    mu_ = center_rows(xc);
  }

  LinearProjectionDesign design(int wl, double freq) const {
    return make_klt_design(x_train_, 3, MultConfig{MultArch::Array, wl, 1},
                           freq, 9, area_, nullptr);
  }

  Device device_;
  AreaModel area_;
  Matrix x_train_, x_test_;
  std::vector<double> mu_;
};

TEST_F(CircuitEvalTest, PlansHaveOnePlacementPerMultiplier) {
  const auto d = design(5, 310.0);
  const auto sim = simulated_plan(d, reference_location_1());
  EXPECT_EQ(sim.mult_placements.size(), 18u);  // K=3 × P=6
  for (const auto& p : sim.mult_placements) {
    EXPECT_EQ(p.x, reference_location_1().x);
    EXPECT_EQ(p.route_seed, reference_location_1().route_seed);
  }
  const auto act = actual_plan(d, device_, 7);
  EXPECT_EQ(act.mult_placements.size(), 18u);
}

TEST_F(CircuitEvalTest, ActualPlanIsDeterministicInSeed) {
  const auto d = design(5, 310.0);
  const auto a = actual_plan(d, device_, 7);
  const auto b = actual_plan(d, device_, 7);
  for (std::size_t i = 0; i < a.mult_placements.size(); ++i) {
    EXPECT_EQ(a.mult_placements[i].x, b.mult_placements[i].x);
    EXPECT_EQ(a.mult_placements[i].route_seed, b.mult_placements[i].route_seed);
  }
  const auto c = actual_plan(d, device_, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.mult_placements.size(); ++i)
    any_diff |= a.mult_placements[i].x != c.mult_placements[i].x ||
                a.mult_placements[i].y != c.mult_placements[i].y;
  EXPECT_TRUE(any_diff);
}

TEST_F(CircuitEvalTest, ProjectExactMatchesLinearAlgebra) {
  const auto d = design(6, 200.0);
  auto plan = simulated_plan(d, reference_location_1());
  ProjectionCircuit circuit(d, device_, plan, 9, nullptr, 1);
  const Matrix basis = d.basis();
  std::vector<double> sample(6);
  for (std::size_t r = 0; r < 6; ++r) sample[r] = x_test_(r, 0);
  const auto codes = encode_input(sample, 9);
  const auto y = circuit.project_exact(codes);
  for (std::size_t k = 0; k < 3; ++k) {
    double expected = 0.0;
    for (std::size_t p = 0; p < 6; ++p)
      expected += basis(p, k) * (static_cast<double>(codes[p]) / 512.0);
    EXPECT_NEAR(y[k], expected, 1e-12);
  }
}

TEST_F(CircuitEvalTest, LowFrequencyHardwareMatchesExact) {
  auto d = design(6, 100.0);  // far below any timing limit
  auto plan = simulated_plan(d, reference_location_1());
  ProjectionCircuit circuit(d, device_, plan, 9, nullptr, 1);
  for (std::size_t i = 0; i < 25; ++i) {
    std::vector<double> sample(6);
    for (std::size_t r = 0; r < 6; ++r) sample[r] = x_test_(r, i);
    const auto codes = encode_input(sample, 9);
    const auto hw = circuit.project(codes);
    const auto exact = circuit.project_exact(codes);
    for (std::size_t k = 0; k < 3; ++k) ASSERT_NEAR(hw[k], exact[k], 1e-12);
  }
}

TEST_F(CircuitEvalTest, HardwareMseAtLowClockMatchesSoftware) {
  auto d = design(7, 100.0);
  const double software = reconstruction_mse(d.basis(), x_test_);
  const auto plan = simulated_plan(d, reference_location_1());
  const double hardware =
      evaluate_hardware_mse(d, x_test_, mu_, device_, plan, 9, nullptr, 1);
  // Only input quantisation (9 bits) separates them.
  EXPECT_NEAR(hardware, software, software * 0.25 + 2e-6);
}

TEST_F(CircuitEvalTest, OverclockedHardwareDegrades) {
  auto slow = design(9, 150.0);
  auto fast = design(9, 420.0);  // deep in the error-prone regime
  const auto plan_slow = simulated_plan(slow, reference_location_1());
  const auto plan_fast = simulated_plan(fast, reference_location_1());
  const double mse_slow =
      evaluate_hardware_mse(slow, x_test_, mu_, device_, plan_slow, 9, nullptr, 1);
  const double mse_fast =
      evaluate_hardware_mse(fast, x_test_, mu_, device_, plan_fast, 9, nullptr, 1);
  EXPECT_GT(mse_fast, mse_slow * 10.0);
}

TEST_F(CircuitEvalTest, JitterOffIsDeterministic) {
  auto d = design(8, 330.0);
  auto plan = simulated_plan(d, reference_location_1());
  plan.with_jitter = false;
  const double a =
      evaluate_hardware_mse(d, x_test_, mu_, device_, plan, 9, nullptr, 1);
  const double b =
      evaluate_hardware_mse(d, x_test_, mu_, device_, plan, 9, nullptr, 2);
  EXPECT_DOUBLE_EQ(a, b);  // clock seed only matters through jitter
}

// Golden property: project_batch must be bitwise-identical to a sequential
// project() loop — same jittered clock draws (same clock_seed), same
// accumulation order — for every batch size, including the partial-chunk
// tails around the 64-lane eval64 boundary, and across a mid-stream
// set_clock retarget with an environment derate.
TEST_F(CircuitEvalTest, ProjectBatchBitwiseMatchesSequentialProject) {
  const auto d = design(8, 420.0);  // deep in the error-prone regime
  const auto plan = simulated_plan(d, reference_location_1());  // jitter ON
  const std::size_t p = d.dims_p();

  Rng rng(31);
  std::vector<std::vector<std::uint32_t>> stream(130);
  for (auto& codes : stream) {
    codes.resize(p);
    for (auto& c : codes) c = static_cast<std::uint32_t>(rng.uniform_u64(512));
  }
  const std::size_t retarget_at = 65;  // mid-stream clock retarget + derate

  // Sequential reference: one project() per sample.
  ProjectionCircuit seq(d, device_, plan, 9, nullptr, /*clock_seed=*/7);
  std::vector<std::vector<double>> want(stream.size());
  for (std::size_t s = 0; s < stream.size(); ++s) {
    if (s == retarget_at) seq.set_clock(300.0, 1.18);
    seq.project(stream[s], want[s]);
  }

  for (std::size_t batch_size : {std::size_t{1}, std::size_t{63},
                                 std::size_t{64}, std::size_t{65}}) {
    ProjectionCircuit bat(d, device_, plan, 9, nullptr, /*clock_seed=*/7);
    std::vector<const std::vector<std::uint32_t>*> batch;
    std::vector<std::vector<double>> ys;
    std::size_t s = 0;
    bool poked_empty = false;
    while (s < stream.size()) {
      if (s == retarget_at) bat.set_clock(300.0, 1.18);
      if (!poked_empty && s > 0) {
        // An empty batch is a no-op: no clock draw, no state change.
        bat.project_batch({}, ys);
        ASSERT_TRUE(ys.empty());
        poked_empty = true;
      }
      std::size_t chunk = std::min(batch_size, stream.size() - s);
      if (s < retarget_at) chunk = std::min(chunk, retarget_at - s);
      batch.clear();
      for (std::size_t i = 0; i < chunk; ++i) batch.push_back(&stream[s + i]);
      bat.project_batch(batch, ys);
      ASSERT_EQ(ys.size(), chunk);
      for (std::size_t i = 0; i < chunk; ++i) {
        ASSERT_EQ(ys[i].size(), want[s + i].size());
        for (std::size_t k = 0; k < ys[i].size(); ++k)
          ASSERT_EQ(ys[i][k], want[s + i][k])
              << "batch_size=" << batch_size << " sample=" << s + i
              << " k=" << k;
      }
      s += chunk;
    }
  }
}

// Batched and sequential paths may also interleave on one circuit: the
// multiplier register state and the jitter stream carry across.
TEST_F(CircuitEvalTest, ProjectBatchInterleavesWithProject) {
  const auto d = design(7, 400.0);
  const auto plan = simulated_plan(d, reference_location_1());
  const std::size_t p = d.dims_p();

  Rng rng(57);
  std::vector<std::vector<std::uint32_t>> stream(24);
  for (auto& codes : stream) {
    codes.resize(p);
    for (auto& c : codes) c = static_cast<std::uint32_t>(rng.uniform_u64(512));
  }

  ProjectionCircuit seq(d, device_, plan, 9, nullptr, 11);
  ProjectionCircuit mix(d, device_, plan, 9, nullptr, 11);
  std::vector<std::vector<double>> want(stream.size());
  for (std::size_t s = 0; s < stream.size(); ++s) seq.project(stream[s], want[s]);

  std::vector<double> y;
  std::vector<std::vector<double>> ys;
  std::size_t s = 0;
  while (s < stream.size()) {
    if (s % 2 == 0) {
      mix.project(stream[s], y);
      ASSERT_EQ(y, want[s]);
      ++s;
    } else {
      const std::size_t chunk = std::min<std::size_t>(5, stream.size() - s);
      std::vector<const std::vector<std::uint32_t>*> batch;
      for (std::size_t i = 0; i < chunk; ++i) batch.push_back(&stream[s + i]);
      mix.project_batch(batch, ys);
      for (std::size_t i = 0; i < chunk; ++i) ASSERT_EQ(ys[i], want[s + i]);
      s += chunk;
    }
  }
}

// Jitter-determinism regression: the clock_seed fully determines the
// jittered period sequence under both paths — equal seeds replay bitwise,
// different seeds draw different clocks (visible as diverging outputs in
// the error-prone regime).
TEST_F(CircuitEvalTest, ProjectBatchJitterIsSeedDeterministic) {
  const auto d = design(8, 420.0);
  const auto plan = simulated_plan(d, reference_location_1());
  const std::size_t p = d.dims_p();

  Rng rng(97);
  std::vector<std::vector<std::uint32_t>> stream(96);
  for (auto& codes : stream) {
    codes.resize(p);
    for (auto& c : codes) c = static_cast<std::uint32_t>(rng.uniform_u64(512));
  }
  std::vector<const std::vector<std::uint32_t>*> batch;
  for (const auto& codes : stream) batch.push_back(&codes);

  auto run_batched = [&](std::uint64_t seed) {
    ProjectionCircuit c(d, device_, plan, 9, nullptr, seed);
    std::vector<std::vector<double>> ys;
    c.project_batch(batch, ys);
    return ys;
  };

  const auto a = run_batched(3);
  const auto b = run_batched(3);
  ASSERT_EQ(a, b);  // same seed ⇒ identical clocks ⇒ identical outputs

  const auto c = run_batched(4);
  bool any_diff = false;
  for (std::size_t s = 0; s < a.size(); ++s) any_diff |= a[s] != c[s];
  EXPECT_TRUE(any_diff);  // different seed ⇒ different jitter draws
}

TEST_F(CircuitEvalTest, ProjectBatchValidatesInputs) {
  const auto d = design(5, 310.0);
  const auto plan = simulated_plan(d, reference_location_1());
  ProjectionCircuit circuit(d, device_, plan, 9, nullptr, 1);
  std::vector<std::vector<double>> ys;
  const std::vector<std::uint32_t> short_codes{1, 2, 3};
  EXPECT_THROW(circuit.project_batch({&short_codes}, ys), CheckError);
  EXPECT_THROW(circuit.project_batch({nullptr}, ys), CheckError);
}

TEST_F(CircuitEvalTest, PlanSizeMismatchThrows) {
  const auto d = design(5, 310.0);
  CircuitPlan bad;
  bad.mult_placements.assign(5, reference_location_1());
  EXPECT_THROW(ProjectionCircuit(d, device_, bad, 9, nullptr, 1), CheckError);
}

TEST_F(CircuitEvalTest, WrongInputSizeThrows) {
  const auto d = design(5, 310.0);
  const auto plan = simulated_plan(d, reference_location_1());
  ProjectionCircuit circuit(d, device_, plan, 9, nullptr, 1);
  EXPECT_THROW(circuit.project({1, 2, 3}), CheckError);
}

}  // namespace
}  // namespace oclp
