#include "core/circuit_eval.hpp"

#include <gtest/gtest.h>

#include "area/area_model.hpp"
#include "core/baseline.hpp"
#include "core/synthetic.hpp"
#include "fabric/calibration.hpp"
#include "klt/klt.hpp"

namespace oclp {
namespace {

class CircuitEvalTest : public ::testing::Test {
 protected:
  CircuitEvalTest()
      : device_(reference_device_config(), kReferenceDieSeed),
        area_(AreaModel::fit(collect_area_samples(3, 9, 9, 10, 1))) {
    device_.set_temperature(kCharacterisationTempC);
    SyntheticDataConfig dc;
    dc.cases = 80;
    x_train_ = make_synthetic_dataset(dc);
    dc.cases = 120;
    dc.seed = 99;
    x_test_ = make_synthetic_dataset(dc);
    Matrix xc = x_train_;
    mu_ = center_rows(xc);
  }

  LinearProjectionDesign design(int wl, double freq) const {
    return make_klt_design(x_train_, 3, wl, freq, 9, area_, nullptr);
  }

  Device device_;
  AreaModel area_;
  Matrix x_train_, x_test_;
  std::vector<double> mu_;
};

TEST_F(CircuitEvalTest, PlansHaveOnePlacementPerMultiplier) {
  const auto d = design(5, 310.0);
  const auto sim = simulated_plan(d, reference_location_1());
  EXPECT_EQ(sim.mult_placements.size(), 18u);  // K=3 × P=6
  for (const auto& p : sim.mult_placements) {
    EXPECT_EQ(p.x, reference_location_1().x);
    EXPECT_EQ(p.route_seed, reference_location_1().route_seed);
  }
  const auto act = actual_plan(d, device_, 7);
  EXPECT_EQ(act.mult_placements.size(), 18u);
}

TEST_F(CircuitEvalTest, ActualPlanIsDeterministicInSeed) {
  const auto d = design(5, 310.0);
  const auto a = actual_plan(d, device_, 7);
  const auto b = actual_plan(d, device_, 7);
  for (std::size_t i = 0; i < a.mult_placements.size(); ++i) {
    EXPECT_EQ(a.mult_placements[i].x, b.mult_placements[i].x);
    EXPECT_EQ(a.mult_placements[i].route_seed, b.mult_placements[i].route_seed);
  }
  const auto c = actual_plan(d, device_, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.mult_placements.size(); ++i)
    any_diff |= a.mult_placements[i].x != c.mult_placements[i].x ||
                a.mult_placements[i].y != c.mult_placements[i].y;
  EXPECT_TRUE(any_diff);
}

TEST_F(CircuitEvalTest, ProjectExactMatchesLinearAlgebra) {
  const auto d = design(6, 200.0);
  auto plan = simulated_plan(d, reference_location_1());
  ProjectionCircuit circuit(d, device_, plan, 9, nullptr, 1);
  const Matrix basis = d.basis();
  std::vector<double> sample(6);
  for (std::size_t r = 0; r < 6; ++r) sample[r] = x_test_(r, 0);
  const auto codes = encode_input(sample, 9);
  const auto y = circuit.project_exact(codes);
  for (std::size_t k = 0; k < 3; ++k) {
    double expected = 0.0;
    for (std::size_t p = 0; p < 6; ++p)
      expected += basis(p, k) * (static_cast<double>(codes[p]) / 512.0);
    EXPECT_NEAR(y[k], expected, 1e-12);
  }
}

TEST_F(CircuitEvalTest, LowFrequencyHardwareMatchesExact) {
  auto d = design(6, 100.0);  // far below any timing limit
  auto plan = simulated_plan(d, reference_location_1());
  ProjectionCircuit circuit(d, device_, plan, 9, nullptr, 1);
  for (std::size_t i = 0; i < 25; ++i) {
    std::vector<double> sample(6);
    for (std::size_t r = 0; r < 6; ++r) sample[r] = x_test_(r, i);
    const auto codes = encode_input(sample, 9);
    const auto hw = circuit.project(codes);
    const auto exact = circuit.project_exact(codes);
    for (std::size_t k = 0; k < 3; ++k) ASSERT_NEAR(hw[k], exact[k], 1e-12);
  }
}

TEST_F(CircuitEvalTest, HardwareMseAtLowClockMatchesSoftware) {
  auto d = design(7, 100.0);
  const double software = reconstruction_mse(d.basis(), x_test_);
  const auto plan = simulated_plan(d, reference_location_1());
  const double hardware =
      evaluate_hardware_mse(d, x_test_, mu_, device_, plan, 9, nullptr, 1);
  // Only input quantisation (9 bits) separates them.
  EXPECT_NEAR(hardware, software, software * 0.25 + 2e-6);
}

TEST_F(CircuitEvalTest, OverclockedHardwareDegrades) {
  auto slow = design(9, 150.0);
  auto fast = design(9, 420.0);  // deep in the error-prone regime
  const auto plan_slow = simulated_plan(slow, reference_location_1());
  const auto plan_fast = simulated_plan(fast, reference_location_1());
  const double mse_slow =
      evaluate_hardware_mse(slow, x_test_, mu_, device_, plan_slow, 9, nullptr, 1);
  const double mse_fast =
      evaluate_hardware_mse(fast, x_test_, mu_, device_, plan_fast, 9, nullptr, 1);
  EXPECT_GT(mse_fast, mse_slow * 10.0);
}

TEST_F(CircuitEvalTest, JitterOffIsDeterministic) {
  auto d = design(8, 330.0);
  auto plan = simulated_plan(d, reference_location_1());
  plan.with_jitter = false;
  const double a =
      evaluate_hardware_mse(d, x_test_, mu_, device_, plan, 9, nullptr, 1);
  const double b =
      evaluate_hardware_mse(d, x_test_, mu_, device_, plan, 9, nullptr, 2);
  EXPECT_DOUBLE_EQ(a, b);  // clock seed only matters through jitter
}

TEST_F(CircuitEvalTest, PlanSizeMismatchThrows) {
  const auto d = design(5, 310.0);
  CircuitPlan bad;
  bad.mult_placements.assign(5, reference_location_1());
  EXPECT_THROW(ProjectionCircuit(d, device_, bad, 9, nullptr, 1), CheckError);
}

TEST_F(CircuitEvalTest, WrongInputSizeThrows) {
  const auto d = design(5, 310.0);
  const auto plan = simulated_plan(d, reference_location_1());
  ProjectionCircuit circuit(d, device_, plan, 9, nullptr, 1);
  EXPECT_THROW(circuit.project({1, 2, 3}), CheckError);
}

}  // namespace
}  // namespace oclp
