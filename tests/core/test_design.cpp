#include "core/design.hpp"

#include <gtest/gtest.h>

namespace oclp {
namespace {

MultConfig acfg(int wl) { return MultConfig{MultArch::Array, wl, 1}; }

TEST(DesignColumn, MakeColumnQuantises) {
  const auto col = make_column({0.5, -0.25, 0.0}, acfg(4));
  EXPECT_EQ(col.wordlength(), 4);
  EXPECT_EQ(col.config, acfg(4));
  ASSERT_EQ(col.coeffs.size(), 3u);
  EXPECT_DOUBLE_EQ(col.coeffs[0].value(), 0.5);
  EXPECT_DOUBLE_EQ(col.coeffs[1].value(), -0.25);
  EXPECT_DOUBLE_EQ(col.coeffs[2].value(), 0.0);
  EXPECT_EQ(col.values(), (std::vector<double>{0.5, -0.25, 0.0}));
}

TEST(DesignColumn, ZeroDetection) {
  EXPECT_TRUE(make_column({0.0, 0.0}, acfg(5)).is_zero());
  EXPECT_TRUE(make_column({0.001, -0.002}, acfg(3)).is_zero());  // below step
  EXPECT_FALSE(make_column({0.5, 0.0}, acfg(5)).is_zero());
}

TEST(DesignColumn, ConfigCarriesArchitecture) {
  const auto col =
      make_column({0.5, -0.25}, MultConfig{MultArch::Wallace, 6, 2});
  EXPECT_EQ(col.config.arch, MultArch::Wallace);
  EXPECT_EQ(col.config.pipeline_depth, 2);
  EXPECT_EQ(col.wordlength(), 6);
}

TEST(Design, BasisAssembly) {
  LinearProjectionDesign d;
  d.columns.push_back(make_column({0.5, -0.5, 0.25}, acfg(4)));
  d.columns.push_back(make_column({0.0, 0.75, -0.125}, acfg(4)));
  EXPECT_EQ(d.dims_p(), 3u);
  EXPECT_EQ(d.dims_k(), 2u);
  const Matrix b = d.basis();
  EXPECT_EQ(b.rows(), 3u);
  EXPECT_EQ(b.cols(), 2u);
  EXPECT_DOUBLE_EQ(b(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(b(1, 1), 0.75);
  EXPECT_DOUBLE_EQ(b(2, 1), -0.125);
}

TEST(Design, MixedConfigsPerColumn) {
  LinearProjectionDesign d;
  d.columns.push_back(make_column({0.5, 0.5}, acfg(3)));
  d.columns.push_back(
      make_column({0.5, 0.5}, MultConfig{MultArch::Wallace, 9, 1}));
  EXPECT_EQ(d.columns[0].wordlength(), 3);
  EXPECT_EQ(d.columns[1].wordlength(), 9);
  EXPECT_EQ(d.columns[0].config.arch, MultArch::Array);
  EXPECT_EQ(d.columns[1].config.arch, MultArch::Wallace);
  EXPECT_NO_THROW(d.basis());
}

TEST(Design, RaggedColumnsThrow) {
  LinearProjectionDesign d;
  d.columns.push_back(make_column({0.5, 0.5}, acfg(4)));
  d.columns.push_back(make_column({0.5, 0.5, 0.5}, acfg(4)));
  EXPECT_THROW(d.basis(), CheckError);
}

TEST(Design, EmptyBasisThrows) {
  LinearProjectionDesign d;
  EXPECT_THROW(d.basis(), CheckError);
}

TEST(Design, PredictedObjectiveNormalisesPerElement) {
  LinearProjectionDesign d;
  d.columns.push_back(make_column({0.5, 0.5, 0.5, 0.5}, acfg(4)));  // P = 4
  d.training_mse = 0.01;
  d.predicted_overclock_var = 0.08;
  EXPECT_DOUBLE_EQ(d.predicted_objective(), 0.01 + 0.08 / 4.0);
}

}  // namespace
}  // namespace oclp
