// End-to-end test of the architecture-parametric pipeline: the framework
// optimises and evaluates Wallace-based designs just like array-based ones
// (the paper's "can be utilised for other arithmetic components").
#include <gtest/gtest.h>

#include "charlib/sweep.hpp"
#include "core/algorithm1.hpp"
#include "core/circuit_eval.hpp"
#include "core/synthetic.hpp"
#include "fabric/calibration.hpp"

namespace oclp {
namespace {

class ArchPipelineTest : public ::testing::Test {
 protected:
  ArchPipelineTest() : device_(reference_device_config(), kReferenceDieSeed) {
    device_.set_temperature(kCharacterisationTempC);
    SyntheticDataConfig dc;
    dc.cases = 60;
    x_train_ = make_synthetic_dataset(dc);
  }
  Device device_;
  Matrix x_train_;
};

TEST_F(ArchPipelineTest, WallaceDesignsRunThroughTheWholeStack) {
  SweepSettings ss;
  ss.freqs_mhz = {420.0};  // far beyond both tool Fmax values
  ss.locations = {reference_location_1()};
  ss.samples_per_point = 150;
  ErrorModelMap models;
  for (int wl = 3; wl <= 4; ++wl) {
    const MultConfig cfg{MultArch::Wallace, wl, 1};
    models.emplace(cfg, characterise_multiplier(device_, cfg, 9, ss));
  }
  const AreaModel area = AreaModel::fit(
      collect_area_samples(mult_config_range(MultArch::Wallace, 3, 4), 9, 6, 1));

  OptimisationSettings os;
  os.dims_k = 2;
  // wl-3 designs: Wallace-clean, array-marginal at 420
  os.configs = {MultConfig{MultArch::Wallace, 3, 1}};
  os.target_freq_mhz = 420.0;
  os.q = 2;
  os.gibbs.burn_in = 60;
  os.gibbs.samples = 150;
  OptimisationFramework of(os, x_train_, models, area);
  const auto designs = of.run();
  ASSERT_FALSE(designs.empty());
  for (const auto& d : designs)
    for (const auto& col : d.columns)
      EXPECT_EQ(col.config.arch, MultArch::Wallace);

  // Evaluate on hardware: a Wallace design at 420 MHz must reconstruct,
  // and clearly better than the same design pretending to be an array
  // (whose deeper logic cannot settle at 420 MHz).
  SyntheticDataConfig dc;
  dc.cases = 200;
  dc.seed = 9;
  const Matrix x_test = make_synthetic_dataset(dc);
  const auto& d = designs.front();
  auto mse_at = [&](LinearProjectionDesign design, double freq) {
    design.target_freq_mhz = freq;
    return evaluate_hardware_mse(design, x_test, of.data_mean(), device_,
                                 actual_plan(design, device_, 3), 9, nullptr, 4);
  };
  // The Wallace realisation holds its error-free quality at 420 MHz.
  const double wallace_slow = mse_at(d, 50.0);
  const double wallace_fast = mse_at(d, 420.0);
  EXPECT_LT(wallace_fast, wallace_slow * 1.5 + 1e-6);
  // The same coefficients realised as an array multiplier compute the same
  // function (identical at a safe clock)...
  LinearProjectionDesign as_array = d;
  for (auto& col : as_array.columns) col.config.arch = MultArch::Array;
  const double array_slow = mse_at(as_array, 50.0);
  const double array_fast = mse_at(as_array, 420.0);
  EXPECT_NEAR(array_slow, wallace_slow, wallace_slow * 0.01);
  // ...and can only be equal or worse over-clocked. (It is often barely
  // worse: the hardware-aware prior picks low-popcount codes whose short
  // cones settle on either architecture — an architecture-robustness
  // side-effect of the framework. The raw architecture gap is asserted
  // below at the characterisation level, where the whole operand space is
  // exercised.)
  EXPECT_GE(array_fast, wallace_fast * 0.99);

  // Raw architecture contrast over all multiplicands: at 420 MHz the
  // wl-3 array multiplier errs at the reference corner, the Wallace one
  // does not.
  const auto array_model = characterise_multiplier(
      device_, MultConfig{MultArch::Array, 3, 1}, 9, ss);
  EXPECT_GT(array_model.max_variance(), 0.0);
  EXPECT_DOUBLE_EQ(models.at(MultConfig{MultArch::Wallace, 3, 1}).max_variance(),
                   0.0);
}

TEST_F(ArchPipelineTest, AreaSamplesRespectArchitecture) {
  const auto array =
      collect_area_samples({MultConfig{MultArch::Array, 8, 1}}, 9, 4, 1);
  const auto wallace =
      collect_area_samples({MultConfig{MultArch::Wallace, 8, 1}}, 9, 4, 1);
  // Wallace carries ~15-25% more cells at these sizes.
  EXPECT_GT(wallace.front().logic_elements, array.front().logic_elements);
}

}  // namespace
}  // namespace oclp
