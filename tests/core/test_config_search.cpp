// Surrogate shortlisting over the widened configuration space: the
// sweep-savings claim (satellite 2's bench asserts it on the full grid;
// this test pins it on a reduced grid) and the equivalence guarantee —
// surrogate mode must hand Algorithm 1 exactly the model set an
// exhaustive pass over every candidate would have produced.
#include "core/config_search.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "fabric/calibration.hpp"

namespace oclp {
namespace {

class ConfigSearchTest : public ::testing::Test {
 protected:
  ConfigSearchTest() : device_(reference_device_config(), kReferenceDieSeed) {
    device_.set_temperature(kCharacterisationTempC);
  }

  // Reduced grid: three candidates per word-length group (array at depth
  // 1 and 2, Wallace at depth 1) over wl ∈ {5, 6} — enough structure for
  // the per-group ranking to prune, small enough to sweep exhaustively.
  ConfigSearchSettings settings() const {
    ConfigSearchSettings s;
    s.configs = mult_config_range(MultArch::Array, 5, 6, {1, 2});
    const auto wallace = mult_config_range(MultArch::Wallace, 5, 6);
    s.configs.insert(s.configs.end(), wallace.begin(), wallace.end());
    s.wl_x = 8;
    s.sweep.freqs_mhz = {300.0, 430.0};
    s.sweep.locations = {reference_location_1()};
    s.sweep.samples_per_point = 60;
    s.target_freq_mhz = 430.0;
    s.probe_stride = 8;
    s.shortlist_per_wordlength = 1;
    return s;
  }

  static std::string csv(const ErrorModel& model) {
    std::ostringstream os;
    model.save_csv(os);
    return os.str();
  }

  Device device_;
};

TEST_F(ConfigSearchTest, SurrogateProducesTheExhaustiveDesignSet) {
  auto s = settings();
  const auto surrogate = characterise_config_space(device_, s);
  s.exhaustive = true;
  const auto exhaustive = characterise_config_space(device_, s);

  // Identical shortlist, identical model keys, identical model content:
  // the optimisation framework cannot tell which mode ran.
  ASSERT_EQ(surrogate.shortlisted, exhaustive.shortlisted);
  ASSERT_EQ(surrogate.models.size(), exhaustive.models.size());
  for (const auto& [config, model] : exhaustive.models) {
    const auto it = surrogate.models.find(config);
    ASSERT_NE(it, surrogate.models.end()) << to_string(config);
    EXPECT_EQ(csv(it->second), csv(model)) << to_string(config);
  }
}

TEST_F(ConfigSearchTest, SurrogateAtLeastHalvesTheSweepBill) {
  const auto result = characterise_config_space(device_, settings());
  // 3 candidates per group: exhaustive cost 3·(2^5 + 2^6) rows.
  EXPECT_EQ(result.exhaustive_rows, 3u * (32u + 64u));
  EXPECT_GT(result.surrogate_rows, 0u);
  EXPECT_GT(result.full_rows, 0u);
  EXPECT_LE(result.surrogate_rows + result.full_rows,
            result.exhaustive_rows / 2);
}

TEST_F(ConfigSearchTest, ShortlistKeepsOneConfigPerWordlengthGroup) {
  const auto result = characterise_config_space(device_, settings());
  ASSERT_EQ(result.shortlisted.size(), 2u);
  EXPECT_EQ(result.shortlisted[0].wordlength, 5);
  EXPECT_EQ(result.shortlisted[1].wordlength, 6);
  for (const auto& config : result.shortlisted) {
    const auto it = result.models.find(config);
    ASSERT_NE(it, result.models.end());
    // Shortlisted models are full sweeps, tagged with their own config.
    EXPECT_EQ(it->second.config(), config);
    EXPECT_EQ(it->second.num_multiplicands(),
              std::size_t{1} << config.wordlength);
  }
}

TEST_F(ConfigSearchTest, ExhaustiveModeSweepsEveryCandidate) {
  auto s = settings();
  s.exhaustive = true;
  const auto result = characterise_config_space(device_, s);
  EXPECT_EQ(result.surrogate_rows, 0u);
  EXPECT_EQ(result.full_rows, result.exhaustive_rows);
}

TEST_F(ConfigSearchTest, DuplicateCandidatesCollapse) {
  auto s = settings();
  s.configs.insert(s.configs.end(), s.configs.begin(), s.configs.end());
  const auto doubled = characterise_config_space(device_, s);
  EXPECT_EQ(doubled.exhaustive_rows, 3u * (32u + 64u));
  EXPECT_EQ(doubled.shortlisted.size(), 2u);
}

TEST(ConfigSearchValidation, EmptyCandidateListThrows) {
  Device device(reference_device_config(), kReferenceDieSeed);
  ConfigSearchSettings s;
  EXPECT_THROW(characterise_config_space(device, s), CheckError);
}

}  // namespace
}  // namespace oclp
