#include "core/synthetic.hpp"

#include <gtest/gtest.h>

#include "klt/klt.hpp"
#include "linalg/decompositions.hpp"

namespace oclp {
namespace {

TEST(Synthetic, ValuesInUnitInterval) {
  SyntheticDataConfig cfg;
  cfg.cases = 500;
  const Matrix x = make_synthetic_dataset(cfg);
  EXPECT_EQ(x.rows(), cfg.dims_p);
  EXPECT_EQ(x.cols(), 500u);
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c) {
      ASSERT_GE(x(r, c), 0.0);
      ASSERT_LT(x(r, c), 1.0);
    }
}

TEST(Synthetic, DeterministicInSeed) {
  SyntheticDataConfig cfg;
  cfg.cases = 50;
  const Matrix a = make_synthetic_dataset(cfg);
  const Matrix b = make_synthetic_dataset(cfg);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      EXPECT_DOUBLE_EQ(a(r, c), b(r, c));
}

TEST(Synthetic, SampleSeedChangesSamplesNotSubspace) {
  SyntheticDataConfig cfg;
  cfg.cases = 800;
  cfg.noise = 0.005;
  const Matrix a = make_synthetic_dataset(cfg);
  cfg.seed = cfg.seed + 1;
  const Matrix b = make_synthetic_dataset(cfg);
  EXPECT_NE(a(0, 0), b(0, 0));  // different draws...
  // ...from the same latent subspace: the K-dim KLT basis of one set must
  // reconstruct the other almost as well as its own.
  const Matrix basis_a = klt_basis(a, cfg.latent_k);
  const double own = reconstruction_mse(klt_basis(b, cfg.latent_k), b);
  const double cross = reconstruction_mse(basis_a, b);
  EXPECT_LT(cross, own * 3.0 + 1e-4);
}

TEST(Synthetic, StructureSeedChangesSubspace) {
  SyntheticDataConfig cfg;
  cfg.cases = 800;
  cfg.noise = 0.005;
  const Matrix a = make_synthetic_dataset(cfg);
  cfg.structure_seed = cfg.structure_seed + 1;
  const Matrix b = make_synthetic_dataset(cfg);
  const double own = reconstruction_mse(klt_basis(b, cfg.latent_k), b);
  const double cross = reconstruction_mse(klt_basis(a, cfg.latent_k), b);
  EXPECT_GT(cross, own * 10.0);
}

TEST(Synthetic, LatentStructureIsLowRank) {
  SyntheticDataConfig cfg;
  cfg.cases = 2000;
  cfg.latent_k = 2;
  cfg.noise = 0.002;
  const Matrix x = make_synthetic_dataset(cfg);
  const auto eig = jacobi_eigen_sym(covariance(x));
  // Two strong modes, the rest noise-level.
  EXPECT_GT(eig.values[1], eig.values[2] * 20.0);
}

TEST(Synthetic, ConfigValidation) {
  SyntheticDataConfig cfg;
  cfg.latent_k = 10;  // > dims_p
  EXPECT_THROW(make_synthetic_dataset(cfg), CheckError);
  cfg = SyntheticDataConfig{};
  cfg.cases = 1;
  EXPECT_THROW(make_synthetic_dataset(cfg), CheckError);
}

TEST(EncodeInput, QuantisesToCodes) {
  const auto codes = encode_input({0.0, 0.5, 0.999, 1.0}, 9);
  EXPECT_EQ(codes[0], 0u);
  EXPECT_EQ(codes[1], 256u);
  EXPECT_EQ(codes[2], 511u);
  EXPECT_EQ(codes[3], 511u);  // saturates at the top code
}

TEST(EncodeInput, RoundTripAccuracy) {
  for (double x = 0.0; x < 1.0; x += 0.0173) {
    const auto codes = encode_input({x}, 9);
    EXPECT_NEAR(static_cast<double>(codes[0]) / 512.0, x, 0.5 / 512.0 + 1e-12);
  }
}

}  // namespace
}  // namespace oclp
