#include "core/algorithm1.hpp"

#include <gtest/gtest.h>

#include "charlib/sweep.hpp"
#include "common/rng.hpp"
#include "core/synthetic.hpp"
#include "fabric/calibration.hpp"

namespace oclp {
namespace {

MultConfig acfg(int wl) { return MultConfig{MultArch::Array, wl, 1}; }

CandidateProjection cand(double area, double mse) {
  CandidateProjection c;
  c.area = area;
  c.mse = mse;
  return c;
}

TEST(ParetoFront, ExtractsTheStaircase) {
  std::vector<CandidateProjection> cands{
      cand(10, 5.0),  // on front
      cand(20, 4.0),  // on front
      cand(15, 6.0),  // dominated by (10, 5)
      cand(30, 4.5),  // dominated by (20, 4)
      cand(40, 1.0),  // on front
  };
  const auto front = pareto_front(cands);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0], 0u);
  EXPECT_EQ(front[1], 1u);
  EXPECT_EQ(front[2], 4u);
}

TEST(ParetoFront, PropertyNoMemberDominatesAnother) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<CandidateProjection> cands;
    for (int i = 0; i < 60; ++i)
      cands.push_back(cand(rng.uniform(100, 1000), rng.uniform(0.01, 1.0)));
    const auto front = pareto_front(cands);
    ASSERT_FALSE(front.empty());
    // No front member dominated by any candidate.
    for (auto fi : front)
      for (const auto& other : cands) {
        const bool dominates = other.area <= cands[fi].area &&
                               other.mse < cands[fi].mse;
        EXPECT_FALSE(dominates && other.area < cands[fi].area);
      }
    // Front is sorted by area with strictly decreasing MSE.
    for (std::size_t i = 1; i < front.size(); ++i) {
      EXPECT_LE(cands[front[i - 1]].area, cands[front[i]].area);
      EXPECT_GT(cands[front[i - 1]].mse, cands[front[i]].mse);
    }
  }
}

TEST(ParetoFront, SinglePointAndEmpty) {
  EXPECT_TRUE(pareto_front({}).empty());
  const auto front = pareto_front({cand(5, 1.0)});
  ASSERT_EQ(front.size(), 1u);
}

TEST(SelectByBins, AtMostQSurvivors) {
  Rng rng(5);
  std::vector<CandidateProjection> cands;
  for (int i = 0; i < 50; ++i)
    cands.push_back(cand(rng.uniform(1, 100), rng.uniform(0.0, 1.0)));
  const auto front = pareto_front(cands);
  for (int q = 1; q <= 8; ++q) {
    const auto picked = select_by_bins(cands, front, q);
    EXPECT_LE(picked.size(), static_cast<std::size_t>(q));
    EXPECT_GE(picked.size(), 1u);
    // Everything picked is on the front.
    for (auto p : picked)
      EXPECT_NE(std::find(front.begin(), front.end(), p), front.end());
  }
}

TEST(SelectByBins, KeepsTheGlobalMinimum) {
  std::vector<CandidateProjection> cands{cand(10, 0.9), cand(20, 0.5),
                                         cand(30, 0.1)};
  const auto front = pareto_front(cands);
  const auto picked = select_by_bins(cands, front, 3);
  EXPECT_NE(std::find(picked.begin(), picked.end(), 2u), picked.end());
}

TEST(SelectByBins, DegenerateMseRange) {
  std::vector<CandidateProjection> cands{cand(10, 0.5), cand(20, 0.5)};
  const auto front = pareto_front(cands);
  const auto picked = select_by_bins(cands, front, 5);
  EXPECT_EQ(picked.size(), 1u);
}

TEST(ParetoFront, EqualAreaCandidatesKeepOnlyTheBestMse) {
  // Several candidates tie on area: only the least-MSE one can be on the
  // front (the staircase is strict in both coordinates).
  std::vector<CandidateProjection> cands{
      cand(10, 0.9), cand(10, 0.4), cand(10, 0.7), cand(25, 0.3),
      cand(25, 0.5),
  };
  const auto front = pareto_front(cands);
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front[0], 1u);  // (10, 0.4)
  EXPECT_EQ(front[1], 3u);  // (25, 0.3)
}

TEST(ParetoFront, AllCandidatesIdenticalKeepsOne) {
  std::vector<CandidateProjection> cands(4, cand(10, 0.5));
  const auto front = pareto_front(cands);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0], 0u);
}

TEST(SelectByBins, AllEqualMseSingleBinSurvivor) {
  // Equal MSE across a front of distinct areas: the range is degenerate, a
  // single bin forms and exactly one candidate survives.
  std::vector<CandidateProjection> cands{cand(10, 0.5), cand(20, 0.5),
                                         cand(30, 0.5), cand(40, 0.5)};
  std::vector<std::size_t> fake_front{0, 1, 2, 3};
  const auto picked = select_by_bins(cands, fake_front, 4);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], 0u);
}

TEST(SelectByBins, QLargerThanFrontReturnsWholeFront) {
  std::vector<CandidateProjection> cands{cand(10, 0.9), cand(20, 0.5),
                                         cand(30, 0.1)};
  const auto front = pareto_front(cands);
  ASSERT_EQ(front.size(), 3u);
  const auto picked = select_by_bins(cands, front, 50);
  // With far more bins than members, no two members share a bin.
  EXPECT_EQ(picked.size(), front.size());
}

TEST(SelectByBins, EmptyFrontSelectsNothing) {
  EXPECT_TRUE(select_by_bins({}, {}, 3).empty());
}

class Algorithm1Test : public ::testing::Test {
 protected:
  Algorithm1Test() : device_(reference_device_config(), kReferenceDieSeed) {
    device_.set_temperature(kCharacterisationTempC);
    SyntheticDataConfig dc;
    dc.cases = 60;
    x_train_ = make_synthetic_dataset(dc);

    SweepSettings ss;
    ss.freqs_mhz = {310.0};
    ss.locations = {reference_location_1()};
    ss.samples_per_point = 120;
    for (int wl = 3; wl <= 6; ++wl)
      models_.emplace(acfg(wl),
                      characterise_multiplier(device_, acfg(wl), 9, ss));
    area_ = AreaModel::fit(collect_area_samples(
        mult_config_range(MultArch::Array, 3, 6), 9, 8, 3));

    settings_.dims_k = 2;
    settings_.configs = mult_config_range(MultArch::Array, 3, 6);
    settings_.q = 3;
    settings_.gibbs.burn_in = 60;
    settings_.gibbs.samples = 150;
  }

  Device device_;
  Matrix x_train_;
  ErrorModelMap models_;
  AreaModel area_ = AreaModel::fit(collect_area_samples(
      mult_config_range(MultArch::Array, 3, 6), 9, 2, 3));
  OptimisationSettings settings_;
};

TEST_F(Algorithm1Test, ProducesSortedValidDesigns) {
  OptimisationFramework of(settings_, x_train_, models_, area_);
  const auto designs = of.run();
  ASSERT_FALSE(designs.empty());
  EXPECT_LE(designs.size(), 3u);
  for (std::size_t i = 0; i < designs.size(); ++i) {
    const auto& d = designs[i];
    EXPECT_EQ(d.dims_k(), 2u);
    EXPECT_EQ(d.dims_p(), 6u);
    EXPECT_GT(d.area_estimate, 0.0);
    EXPECT_GT(d.training_mse, 0.0);
    EXPECT_GE(d.predicted_overclock_var, 0.0);
    EXPECT_DOUBLE_EQ(d.target_freq_mhz, 310.0);
    EXPECT_NE(d.origin.find("OF"), std::string::npos);
    for (const auto& col : d.columns) {
      EXPECT_GE(col.wordlength(), 3);
      EXPECT_LE(col.wordlength(), 6);
      EXPECT_EQ(col.config.arch, MultArch::Array);
      EXPECT_FALSE(col.is_zero());
    }
    if (i > 0) { EXPECT_GE(d.area_estimate, designs[i - 1].area_estimate); }
  }
}

TEST_F(Algorithm1Test, DeterministicInSeed) {
  OptimisationFramework a(settings_, x_train_, models_, area_);
  OptimisationFramework b(settings_, x_train_, models_, area_);
  const auto da = a.run();
  const auto db = b.run();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_DOUBLE_EQ(da[i].training_mse, db[i].training_mse);
    EXPECT_DOUBLE_EQ(da[i].area_estimate, db[i].area_estimate);
  }
}

TEST_F(Algorithm1Test, MoreDimensionsReduceTrainingMse) {
  settings_.dims_k = 1;
  OptimisationFramework of1(settings_, x_train_, models_, area_);
  const auto d1 = of1.run();
  settings_.dims_k = 3;
  OptimisationFramework of3(settings_, x_train_, models_, area_);
  const auto d3 = of3.run();
  ASSERT_FALSE(d1.empty());
  ASSERT_FALSE(d3.empty());
  auto best = [](const std::vector<LinearProjectionDesign>& ds) {
    double m = 1e18;
    for (const auto& d : ds) m = std::min(m, d.training_mse);
    return m;
  };
  EXPECT_LT(best(d3), best(d1));
}

TEST_F(Algorithm1Test, FastSamplerReproducesReferenceDesigns) {
  // End-to-end determinism contract: running Algorithm 1 with the fast
  // sampler and with the retained reference implementation must select the
  // same designs (the per-job chains are bitwise identical).
  OptimisationFramework fast_of(settings_, x_train_, models_, area_);
  const auto fast = fast_of.run();
  settings_.gibbs.reference_impl = true;
  OptimisationFramework ref_of(settings_, x_train_, models_, area_);
  const auto ref = ref_of.run();
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_DOUBLE_EQ(fast[i].training_mse, ref[i].training_mse);
    EXPECT_DOUBLE_EQ(fast[i].area_estimate, ref[i].area_estimate);
    ASSERT_EQ(fast[i].columns.size(), ref[i].columns.size());
    for (std::size_t c = 0; c < fast[i].columns.size(); ++c) {
      EXPECT_EQ(fast[i].columns[c].config, ref[i].columns[c].config);
      EXPECT_EQ(fast[i].columns[c].values(), ref[i].columns[c].values());
    }
  }
}

TEST_F(Algorithm1Test, MissingModelThrowsAtConstruction) {
  settings_.configs = mult_config_range(MultArch::Array, 3, 9);  // models_ only cover 3..6
  EXPECT_THROW(OptimisationFramework(settings_, x_train_, models_, area_),
               CheckError);
}

TEST_F(Algorithm1Test, DataMeanIsExposed) {
  OptimisationFramework of(settings_, x_train_, models_, area_);
  Matrix xc = x_train_;
  const auto mu = center_rows(xc);
  ASSERT_EQ(of.data_mean().size(), mu.size());
  for (std::size_t i = 0; i < mu.size(); ++i)
    EXPECT_DOUBLE_EQ(of.data_mean()[i], mu[i]);
}

}  // namespace
}  // namespace oclp
