#include "core/runtime_model.hpp"

#include <gtest/gtest.h>

namespace oclp {
namespace {

TEST(RuntimeModel, PerProjectionGrowsExponentially) {
  // R(wl+1)/R(wl) = exp(0.6427) ≈ 1.9016 for every wl.
  for (int wl = 1; wl < 12; ++wl)
    EXPECT_NEAR(runtime_per_projection_s(wl + 1) / runtime_per_projection_s(wl),
                std::exp(0.6427), 1e-12);
}

TEST(RuntimeModel, PaperExampleIsOneHour44Minutes) {
  // Paper Sec. VI-E: #Freqs=1, K=3, Q=5, #HP=2, wl ∈ [3..9] → 1 h 44 min.
  const double t = runtime_total_s(1, 3, 5, 2, {3, 4, 5, 6, 7, 8, 9});
  EXPECT_NEAR(t, 104.0 * 60.0, 5.0 * 60.0);  // within 5 minutes
}

TEST(RuntimeModel, ChainCountFactor) {
  // (1 + Q(K-1)): dimension 1 runs once, later dimensions once per carried
  // design.
  const std::vector<int> wls{4};
  const double base = runtime_per_projection_s(4);
  EXPECT_DOUBLE_EQ(runtime_total_s(1, 1, 5, 1, wls), base);          // K=1: 1 chain
  EXPECT_DOUBLE_EQ(runtime_total_s(1, 2, 5, 1, wls), 6.0 * base);    // 1+5
  EXPECT_DOUBLE_EQ(runtime_total_s(1, 3, 5, 1, wls), 11.0 * base);   // 1+10
}

TEST(RuntimeModel, LinearInFreqsAndHyperparams) {
  const std::vector<int> wls{3, 5};
  const double t1 = runtime_total_s(1, 2, 3, 1, wls);
  EXPECT_DOUBLE_EQ(runtime_total_s(4, 2, 3, 1, wls), 4.0 * t1);
  EXPECT_DOUBLE_EQ(runtime_total_s(1, 2, 3, 2, wls), 2.0 * t1);
}

TEST(RuntimeModel, Validation) {
  EXPECT_THROW(runtime_per_projection_s(0), CheckError);
  EXPECT_THROW(runtime_total_s(0, 1, 1, 1, {3}), CheckError);
  EXPECT_THROW(runtime_total_s(1, 1, 1, 1, {}), CheckError);
}

}  // namespace
}  // namespace oclp
