#include "core/objective.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "klt/klt.hpp"

namespace oclp {
namespace {

MultConfig acfg(int wl) { return MultConfig{MultArch::Array, wl, 1}; }

ErrorModel uniform_variance_model(int wl, double var) {
  ErrorModel m(acfg(wl), 9, {310.0});
  for (std::uint32_t mm = 0; mm < (1u << wl); ++mm) m.set(mm, 0, var, 0.0, 0.1);
  return m;
}

TEST(Objective, ColumnVarianceSumsPerMultiplier) {
  const double raw_var = 1e6;
  const auto model = uniform_variance_model(5, raw_var);
  const auto col = make_column({0.5, -0.25, 0.125, 0.0}, acfg(5));  // P = 4
  const double scale = std::ldexp(1.0, 5 + 9);
  const double expected = 4.0 * raw_var / (scale * scale);
  EXPECT_NEAR(predicted_overclock_variance(col, model, 310.0), expected, 1e-15);
}

TEST(Objective, ColumnWordlengthMismatchThrows) {
  const auto model = uniform_variance_model(5, 1.0);
  const auto col = make_column({0.5}, acfg(6));
  EXPECT_THROW(predicted_overclock_variance(col, model, 310.0), CheckError);
}

TEST(Objective, DesignVarianceSumsOverColumns) {
  ErrorModelMap models;
  models.emplace(acfg(4), uniform_variance_model(4, 2e5));
  models.emplace(acfg(6), uniform_variance_model(6, 8e5));
  LinearProjectionDesign d;
  d.target_freq_mhz = 310.0;
  d.columns.push_back(make_column({0.5, 0.5}, acfg(4)));
  d.columns.push_back(make_column({0.5, 0.5}, acfg(6)));
  const double s4 = std::ldexp(1.0, 4 + 9), s6 = std::ldexp(1.0, 6 + 9);
  const double expected = 2.0 * 2e5 / (s4 * s4) + 2.0 * 8e5 / (s6 * s6);
  EXPECT_NEAR(predicted_overclock_variance(d, models), expected, 1e-15);
}

TEST(Objective, MissingModelThrows) {
  ErrorModelMap models;
  models.emplace(acfg(4), uniform_variance_model(4, 1.0));
  LinearProjectionDesign d;
  d.target_freq_mhz = 310.0;
  d.columns.push_back(make_column({0.5}, acfg(5)));
  EXPECT_THROW(predicted_overclock_variance(d, models), CheckError);
}

TEST(Objective, TrainingMseMatchesKltHelper) {
  Rng rng(3);
  Matrix x(4, 200);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 200; ++c) x(r, c) = rng.normal() * (r + 1.0);
  const Matrix basis = klt_basis(x, 2);
  Matrix xc = x;
  center_rows(xc);
  EXPECT_NEAR(training_reconstruction_mse(basis, xc),
              reconstruction_mse(basis, x), 1e-12);
}

TEST(Objective, TIsMsePlusNormalisedVariance) {
  Rng rng(5);
  Matrix x(4, 100);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 100; ++c) x(r, c) = rng.normal();
  Matrix xc = x;
  center_rows(xc);

  ErrorModelMap models;
  models.emplace(acfg(5), uniform_variance_model(5, 3e5));
  LinearProjectionDesign d;
  d.target_freq_mhz = 310.0;
  d.columns.push_back(make_column(klt_basis(x, 1).col(0), acfg(5)));

  const double mse = training_reconstruction_mse(d.basis(), xc);
  const double var = predicted_overclock_variance(d, models);
  EXPECT_NEAR(objective_T(d, xc, models), mse + var / 4.0, 1e-15);
}

TEST(Objective, ErrorFreeModelAddsNothing) {
  Rng rng(7);
  Matrix x(3, 80);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 80; ++c) x(r, c) = rng.normal();
  Matrix xc = x;
  center_rows(xc);
  ErrorModelMap models;
  models.emplace(acfg(4), uniform_variance_model(4, 0.0));
  LinearProjectionDesign d;
  d.target_freq_mhz = 310.0;
  d.columns.push_back(make_column(klt_basis(x, 1).col(0), acfg(4)));
  EXPECT_DOUBLE_EQ(objective_T(d, xc, models),
                   training_reconstruction_mse(d.basis(), xc));
}

}  // namespace
}  // namespace oclp
