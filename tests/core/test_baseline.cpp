#include "core/baseline.hpp"

#include <gtest/gtest.h>

#include "charlib/sweep.hpp"
#include "core/synthetic.hpp"
#include "fabric/calibration.hpp"
#include "klt/klt.hpp"

namespace oclp {
namespace {

MultConfig acfg(int wl) { return MultConfig{MultArch::Array, wl, 1}; }

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() {
    SyntheticDataConfig dc;
    dc.cases = 150;
    x_train_ = make_synthetic_dataset(dc);
    area_ = AreaModel::fit(collect_area_samples(mult_config_range(MultArch::Array, 3, 9), 9, 8, 1));
  }
  Matrix x_train_;
  AreaModel area_ = AreaModel::fit(collect_area_samples(mult_config_range(MultArch::Array, 3, 9), 9, 2, 1));
};

TEST_F(BaselineTest, DesignFieldsArePopulated) {
  const auto d = make_klt_design(x_train_, 3, acfg(7), 310.0, 9, area_, nullptr);
  EXPECT_EQ(d.dims_k(), 3u);
  EXPECT_EQ(d.dims_p(), 6u);
  EXPECT_GT(d.area_estimate, 0.0);
  EXPECT_GT(d.training_mse, 0.0);
  EXPECT_DOUBLE_EQ(d.predicted_overclock_var, 0.0);  // no models supplied
  EXPECT_EQ(d.origin, "KLT array/wl7/p1");
  for (const auto& col : d.columns) EXPECT_EQ(col.config, acfg(7));
}

TEST_F(BaselineTest, QuantisedBasisApproachesExactKltWithMoreBits) {
  const Matrix exact = klt_basis(x_train_, 3);
  const double exact_mse = reconstruction_mse(exact, x_train_);
  double prev = 1e18;
  for (int wl : {3, 6, 9}) {
    const auto d = make_klt_design(x_train_, 3, acfg(wl), 310.0, 9, area_, nullptr);
    EXPECT_GE(d.training_mse, exact_mse - 1e-12);
    EXPECT_LE(d.training_mse, prev + 1e-9);
    prev = d.training_mse;
  }
  EXPECT_NEAR(prev, exact_mse, exact_mse * 0.2 + 1e-6);
}

TEST_F(BaselineTest, FamilyCoversWordlengthSweep) {
  const auto family = make_klt_family(x_train_, 3, mult_config_range(MultArch::Array, 3, 9), 310.0, 9, area_, nullptr);
  ASSERT_EQ(family.size(), 7u);
  for (std::size_t i = 0; i < family.size(); ++i) {
    EXPECT_EQ(family[i].columns.front().wordlength(), 3 + static_cast<int>(i));
    if (i > 0) { EXPECT_GT(family[i].area_estimate, family[i - 1].area_estimate); }
  }
}

TEST_F(BaselineTest, OverclockVarianceFilledWhenModelsGiven) {
  Device device(reference_device_config(), kReferenceDieSeed);
  device.set_temperature(kCharacterisationTempC);
  SweepSettings ss;
  ss.freqs_mhz = {310.0};
  ss.locations = {reference_location_1()};
  ss.samples_per_point = 150;
  ErrorModelMap models;
  models.emplace(acfg(9), characterise_multiplier(device, acfg(9), 9, ss));
  const auto d = make_klt_design(x_train_, 3, acfg(9), 310.0, 9, area_, &models);
  // At 310 MHz a 9-bit KLT design uses error-prone coefficients.
  EXPECT_GT(d.predicted_overclock_var, 0.0);
  EXPECT_GT(d.predicted_objective(), d.training_mse);
}

}  // namespace
}  // namespace oclp
