#include "bayes/prior.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace oclp {
namespace {

MultConfig acfg(int wl) { return MultConfig{MultArch::Array, wl, 1}; }

// Model where odd multiplicands have large errors and even ones are clean.
ErrorModel odd_penalised_model(int wl) {
  ErrorModel m(acfg(wl), 9, {310.0});
  for (std::uint32_t mm = 0; mm < (1u << wl); ++mm)
    m.set(mm, 0, (mm % 2 == 1) ? 1e6 : 0.0, 0.0, (mm % 2 == 1) ? 0.3 : 0.0);
  return m;
}

TEST(Prior, ProbabilitiesSumToOne) {
  const auto prior = make_prior(odd_penalised_model(5), acfg(5), 310.0, 2.0);
  const double total = std::accumulate(prior.probabilities().begin(),
                                       prior.probabilities().end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Prior, GridMatchesFixedPointGrid) {
  const auto prior = make_prior(odd_penalised_model(4), acfg(4), 310.0, 1.0);
  EXPECT_EQ(prior.size(), 31u);  // 2^(4+1) - 1 sign-magnitude values
  EXPECT_EQ(prior.wordlength(), 4);
  EXPECT_DOUBLE_EQ(prior.values().front(), -15.0 / 16.0);
  EXPECT_DOUBLE_EQ(prior.values().back(), 15.0 / 16.0);
}

TEST(Prior, PenalisedCodesGetLowerMass) {
  const auto prior = make_prior(odd_penalised_model(5), acfg(5), 310.0, 1.0);
  // value 2/32 (even code, clean) vs 3/32 (odd code, 1e6 variance).
  const auto clean = prior.nearest_index(2.0 / 32.0);
  const auto dirty = prior.nearest_index(3.0 / 32.0);
  EXPECT_GT(prior.probability(clean), prior.probability(dirty) * 100.0);
}

TEST(Prior, SymmetricInSign) {
  const auto prior = make_prior(odd_penalised_model(5), acfg(5), 310.0, 2.0);
  for (std::size_t i = 0; i < prior.size(); ++i) {
    const auto j = prior.nearest_index(-prior.value(i));
    EXPECT_NEAR(prior.probability(i), prior.probability(j), 1e-15);
  }
}

TEST(Prior, BetaControlsSharpness) {
  // Figure 7: β = 0.1 ≈ flat; β = 4 kills error-prone codes.
  const auto model = odd_penalised_model(5);
  const auto soft = make_prior(model, acfg(5), 310.0, 0.1);
  const auto hard = make_prior(model, acfg(5), 310.0, 4.0);
  const auto clean = soft.nearest_index(2.0 / 32.0);
  const auto dirty = soft.nearest_index(3.0 / 32.0);
  const double ratio_soft = soft.probability(clean) / soft.probability(dirty);
  const double ratio_hard = hard.probability(clean) / hard.probability(dirty);
  EXPECT_GT(ratio_hard, ratio_soft * 1e3);
  EXPECT_LT(ratio_soft, 10.0);  // β = 0.1 barely discriminates
}

TEST(Prior, ErrorFreeModelGivesFlatPrior) {
  ErrorModel clean(acfg(4), 9, {310.0});  // all zeros
  const auto prior = make_prior(clean, acfg(4), 310.0, 4.0);
  const double expected = 1.0 / static_cast<double>(prior.size());
  for (std::size_t i = 0; i < prior.size(); ++i)
    EXPECT_NEAR(prior.probability(i), expected, 1e-12);
}

TEST(Prior, FlatPriorIsUniform) {
  const auto prior = make_flat_prior(acfg(6), 310.0);
  const double expected = 1.0 / static_cast<double>(prior.size());
  for (std::size_t i = 0; i < prior.size(); ++i)
    EXPECT_DOUBLE_EQ(prior.probability(i), expected);
  EXPECT_DOUBLE_EQ(prior.beta(), 0.0);
}

TEST(Prior, NearestIndexFindsClosestGridValue) {
  const auto prior = make_flat_prior(acfg(3), 310.0);
  // Grid step is 1/8.
  EXPECT_DOUBLE_EQ(prior.value(prior.nearest_index(0.0)), 0.0);
  EXPECT_DOUBLE_EQ(prior.value(prior.nearest_index(0.13)), 0.125);
  EXPECT_DOUBLE_EQ(prior.value(prior.nearest_index(-0.99)), -0.875);
  EXPECT_DOUBLE_EQ(prior.value(prior.nearest_index(5.0)), 0.875);   // clamp
  EXPECT_DOUBLE_EQ(prior.value(prior.nearest_index(-5.0)), -0.875); // clamp
}

TEST(Prior, WordlengthMismatchThrows) {
  const auto model = odd_penalised_model(5);
  EXPECT_THROW(make_prior(model, acfg(6), 310.0, 1.0), CheckError);
}

TEST(Prior, ExtremeVarianceDoesNotCollapseNormalisation) {
  // β = 8 on ~1e9 code-unit variances: the penalised weights underflow to
  // ~0 but the prior must stay a valid distribution over the clean codes.
  ErrorModel model(acfg(5), 9, {310.0});
  for (std::uint32_t mm = 0; mm < 32; ++mm)
    model.set(mm, 0, mm >= 16 ? 4.7e9 : 0.0, 0.0, 0.0);
  const auto prior = make_prior(model, acfg(5), 310.0, 8.0);
  const double total = std::accumulate(prior.probabilities().begin(),
                                       prior.probabilities().end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(prior.probability(prior.nearest_index(0.0)), 0.0);
}

}  // namespace
}  // namespace oclp
