#include "bayes/gibbs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/rng.hpp"

namespace oclp {
namespace {

MultConfig acfg(int wl) { return MultConfig{MultArch::Array, wl, 1}; }

// Centered rank-1 data x_i = u z_i + noise with a planted unit direction.
Matrix rank1_data(const std::vector<double>& direction, std::size_t n,
                  double mode_sd, double noise, std::uint64_t seed) {
  Rng rng(seed);
  const auto u = normalized(direction);
  Matrix x(u.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const double z = rng.normal(0.0, mode_sd);
    for (std::size_t r = 0; r < u.size(); ++r)
      x(r, i) = z * u[r] + rng.normal(0.0, noise);
  }
  return x;
}

GibbsSettings fast_settings(std::uint64_t seed) {
  GibbsSettings s;
  s.burn_in = 150;
  s.samples = 400;
  s.seed = seed;
  return s;
}

TEST(Gibbs, RecoversPlantedDirectionUpToQuantisation) {
  const std::vector<double> dir{0.6, -0.3, 0.65, 0.1, -0.2, 0.28};
  const Matrix x = rank1_data(dir, 200, 0.2, 0.01, 3);
  const auto prior = make_flat_prior(acfg(7), 310.0);
  const auto res = sample_projection(x, prior, fast_settings(5));

  const auto u = normalized(dir);
  const double nl = norm(res.lambda);
  ASSERT_GT(nl, 0.5);  // near unit norm thanks to the anchored factor prior
  ASSERT_LT(nl, 1.3);
  double cosine = std::abs(dot(u, res.lambda)) / nl;
  EXPECT_GT(cosine, 0.995);
}

TEST(Gibbs, LambdaValuesAreOnTheGrid) {
  const Matrix x = rank1_data({1, 2, -1}, 100, 0.2, 0.02, 7);
  const auto prior = make_flat_prior(acfg(4), 310.0);
  const auto res = sample_projection(x, prior, fast_settings(9));
  for (double v : res.lambda) {
    const auto idx = prior.nearest_index(v);
    EXPECT_DOUBLE_EQ(prior.value(idx), v);
  }
}

TEST(Gibbs, DeterministicInSeed) {
  const Matrix x = rank1_data({1, -1, 2}, 80, 0.2, 0.02, 11);
  const auto prior = make_flat_prior(acfg(5), 310.0);
  const auto a = sample_projection(x, prior, fast_settings(42));
  const auto b = sample_projection(x, prior, fast_settings(42));
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.lambda_mean, b.lambda_mean);
}

TEST(Gibbs, DifferentSeedsStillAgreeOnTheMode) {
  const Matrix x = rank1_data({2, 1, -1, 0.5}, 300, 0.25, 0.01, 13);
  const auto prior = make_flat_prior(acfg(6), 310.0);
  const auto a = sample_projection(x, prior, fast_settings(1));
  const auto b = sample_projection(x, prior, fast_settings(2));
  // Directions must agree even though chains differ.
  const double cosine = std::abs(dot(a.lambda, b.lambda)) /
                        (norm(a.lambda) * norm(b.lambda));
  EXPECT_GT(cosine, 0.98);
}

TEST(Gibbs, HardPriorExcludesForbiddenCodesOnWeakData) {
  // Forbid all codes with |value| > 0.5. On weak (noise-only) data the
  // likelihood is flat, so the posterior follows the prior and the
  // forbidden half of the grid must never be sampled. (On strong data the
  // prior is a soft penalty by design — the objective T trades errors for
  // accuracy — so exclusion is only guaranteed when the data does not
  // overwhelmingly demand a forbidden code.)
  ErrorModel model(acfg(5), 9, {310.0});
  for (std::uint32_t m = 0; m < 32; ++m)
    model.set(m, 0, m > 16 ? 1e9 : 0.0, 0.0, 0.0);
  const auto prior = make_prior(model, acfg(5), 310.0, 8.0);

  Rng rng(17);
  Matrix x(3, 150);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 150; ++c) x(r, c) = rng.normal(0.0, 0.02);
  const auto res = sample_projection(x, prior, fast_settings(19));
  for (double v : res.lambda) EXPECT_LE(std::abs(v), 16.0 / 32.0 + 1e-12);
}

TEST(Gibbs, PriorShiftsPosteriorAwayFromPenalisedCodes) {
  // Same data, hard vs flat prior: the hard prior must strictly reduce the
  // use of penalised codes.
  ErrorModel model(acfg(6), 9, {310.0});
  for (std::uint32_t m = 0; m < 64; ++m)
    model.set(m, 0, (m % 2 == 1) ? 1e8 : 0.0, 0.0, 0.0);  // odd codes dirty
  const auto hard = make_prior(model, acfg(6), 310.0, 6.0);
  const auto flat = make_flat_prior(acfg(6), 310.0);

  const Matrix x = rank1_data({0.9, -0.5, 0.7, 0.3}, 250, 0.25, 0.02, 21);
  const auto res_hard = sample_projection(x, hard, fast_settings(23));
  const auto res_flat = sample_projection(x, flat, fast_settings(23));

  auto dirty_count = [](const std::vector<double>& lambda) {
    int n = 0;
    for (double v : lambda) {
      const auto mag = static_cast<unsigned>(std::lround(std::abs(v) * 64.0));
      if (mag % 2 == 1) ++n;
    }
    return n;
  };
  EXPECT_EQ(dirty_count(res_hard.lambda), 0);
  // The flat prior has no reason to avoid odd codes for this direction.
  EXPECT_GT(dirty_count(res_flat.lambda), 0);
}

TEST(Gibbs, PsiEstimatesNoiseScale) {
  const double noise = 0.05;
  const Matrix x = rank1_data({1, 1, 1, 1}, 500, 0.3, noise, 23);
  const auto prior = make_flat_prior(acfg(7), 310.0);
  auto settings = fast_settings(29);
  settings.burn_in = 300;
  settings.samples = 700;
  const auto res = sample_projection(x, prior, settings);
  for (double psi : res.psi) {
    EXPECT_GT(psi, noise * noise * 0.3);
    EXPECT_LT(psi, noise * noise * 5.0);
  }
}

TEST(Gibbs, InputValidation) {
  const auto prior = make_flat_prior(acfg(4), 310.0);
  EXPECT_THROW(sample_projection(Matrix(3, 1), prior, fast_settings(1)),
               CheckError);  // too few cases
  GibbsSettings bad = fast_settings(1);
  bad.samples = 0;
  EXPECT_THROW(sample_projection(Matrix(3, 10, 0.5), prior, bad), CheckError);
}

TEST(Gibbs, LogLikelihoodIsFinite) {
  const Matrix x = rank1_data({1, -2}, 100, 0.2, 0.02, 31);
  const auto prior = make_flat_prior(acfg(5), 310.0);
  const auto res = sample_projection(x, prior, fast_settings(33));
  EXPECT_TRUE(std::isfinite(res.avg_log_likelihood));
}

TEST(Gibbs, VisitHistogramShapeAndMass) {
  const Matrix x = rank1_data({1, -1, 0.5}, 120, 0.2, 0.02, 35);
  const auto prior = make_flat_prior(acfg(5), 310.0);
  const auto settings = fast_settings(37);
  const auto res = sample_projection(x, prior, settings);
  ASSERT_EQ(res.visits.size(), x.rows());
  for (const auto& row : res.visits) {
    ASSERT_EQ(row.size(), prior.size());
    std::uint64_t mass = 0;
    for (auto v : row) mass += v;
    EXPECT_EQ(mass, static_cast<std::uint64_t>(settings.samples));
  }
}

// Golden determinism contract: the restructured sampler must reproduce the
// retained reference implementation draw for draw. The discrete chain (λ
// draws, hence the per-entry visit counts) is required to be bitwise
// identical; the continuous outputs go through an algebraically equivalent
// O(1) sufficient-statistics form, so they are pinned to a few ulps.
TEST(Gibbs, FastPathMatchesReferenceBitwise) {
  for (const int wl : {3, 6, 9}) {
    for (const std::uint64_t seed : {5ull, 17ull}) {
      const Matrix x =
          rank1_data({0.6, -0.3, 0.65, 0.1, -0.2, 0.28}, 100, 0.2, 0.02, seed);
      const auto prior = make_flat_prior(acfg(wl), 310.0);
      const auto settings = fast_settings(seed * 7 + 1);
      const auto fast = sample_projection(x, prior, settings);
      auto ref_settings = settings;
      ref_settings.reference_impl = true;
      const auto ref = sample_projection(x, prior, ref_settings);

      EXPECT_EQ(fast.lambda, ref.lambda) << "wl=" << wl << " seed=" << seed;
      EXPECT_EQ(fast.visits, ref.visits) << "wl=" << wl << " seed=" << seed;
      ASSERT_EQ(fast.psi.size(), ref.psi.size());
      for (std::size_t r = 0; r < ref.psi.size(); ++r) {
        EXPECT_NEAR(fast.psi[r], ref.psi[r], std::abs(ref.psi[r]) * 1e-12);
        EXPECT_NEAR(fast.lambda_mean[r], ref.lambda_mean[r],
                    std::abs(ref.lambda_mean[r]) * 1e-12 + 1e-15);
      }
      EXPECT_NEAR(fast.avg_log_likelihood, ref.avg_log_likelihood,
                  std::abs(ref.avg_log_likelihood) * 1e-12);
    }
  }
}

TEST(Gibbs, HardwarePriorChainMatchesReferenceBitwise) {
  // Same contract under a non-flat prior, where the fast path's scoring
  // band is widest (the prior spreads the log-weights).
  ErrorModel model(acfg(7), 9, {310.0});
  Rng noise(47);
  for (std::uint32_t m = 0; m < 128; ++m)
    model.set(m, 0, noise.uniform() * 1e6, 0.0, 0.0);
  const auto prior = make_prior(model, acfg(7), 310.0, 4.0);
  const Matrix x = rank1_data({0.9, -0.5, 0.7, 0.3}, 100, 0.2, 0.02, 49);
  const auto settings = fast_settings(51);
  const auto fast = sample_projection(x, prior, settings);
  auto ref_settings = settings;
  ref_settings.reference_impl = true;
  const auto ref = sample_projection(x, prior, ref_settings);
  EXPECT_EQ(fast.lambda, ref.lambda);
  EXPECT_EQ(fast.visits, ref.visits);
}

TEST(Gibbs, FastAndReferencePosteriorMarginalsAgreeAcrossSeeds) {
  // Statistical equivalence on independent chains: fast and reference
  // sampling processes with different seeds must estimate the same
  // posterior marginals (they are the same Markov kernel).
  const Matrix x = rank1_data({0.7, -0.4, 0.55}, 300, 0.25, 0.02, 53);
  const auto prior = make_flat_prior(acfg(6), 310.0);
  auto settings = fast_settings(55);
  settings.burn_in = 300;
  settings.samples = 1500;
  const auto fast = sample_projection(x, prior, settings);
  auto ref_settings = settings;
  ref_settings.seed = 56;  // independent chain
  ref_settings.reference_impl = true;
  const auto ref = sample_projection(x, prior, ref_settings);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    EXPECT_NEAR(fast.lambda_mean[r], ref.lambda_mean[r], 0.05);
    EXPECT_NEAR(fast.psi[r], ref.psi[r], std::abs(ref.psi[r]) * 0.5);
  }
}

}  // namespace
}  // namespace oclp
