// Locks the calibrated fabric to the paper's performance landscape
// (DESIGN.md §6). If a fabric-constant change breaks any reproduction
// premise, it fails here rather than silently flattening a figure.
#include <gtest/gtest.h>

#include "charlib/char_circuit.hpp"
#include "charlib/sweep.hpp"
#include "fabric/calibration.hpp"
#include "fabric/timing_annotation.hpp"
#include "mult/multiplier.hpp"
#include "netlist/sta.hpp"

namespace oclp {
namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  CalibrationTest()
      : cfg_(reference_device_config()), device_(cfg_, kReferenceDieSeed) {
    device_.set_temperature(kCharacterisationTempC);
  }
  DeviceConfig cfg_;
  Device device_;
};

TEST_F(CalibrationTest, TargetClockIsAbout1p85xToolFmax) {
  // The paper: 310 MHz is 1.85× the tool Fmax of the 9-bit design.
  const double tool = tool_fmax_mhz(make_multiplier(9, 9), cfg_);
  EXPECT_GT(kTargetClockMhz / tool, 1.75);
  EXPECT_LT(kTargetClockMhz / tool, 1.95);
}

TEST_F(CalibrationTest, DeviceFmaxSitsBetweenToolFmaxAndTarget) {
  const Netlist nl = make_multiplier(9, 9);
  const double tool = tool_fmax_mhz(nl, cfg_);
  const double dev =
      fmax_mhz(device_critical_path_ns(nl, device_, reference_location_1()));
  EXPECT_GT(dev, tool * 1.3);       // the device-specific headroom (Δf1)
  EXPECT_LT(dev, kTargetClockMhz);  // 310 MHz is in the error-prone regime
}

TEST_F(CalibrationTest, SmallWordlengthsAreErrorFreeAtTarget) {
  // wl = 3 survives 310 MHz even at the slow characterisation corners;
  // wl = 4 survives at a typical (mid-die) location.
  SweepSettings ss;
  ss.freqs_mhz = {kTargetClockMhz};
  ss.locations = {reference_location_1(), reference_location_2()};
  ss.samples_per_point = 250;
  const auto wl3 =
      characterise_multiplier(device_, MultConfig{MultArch::Array, 3, 1}, 9, ss);
  EXPECT_DOUBLE_EQ(wl3.max_variance(), 0.0);

  ss.locations = {Placement{device_.width() / 2, device_.height() / 2, 5}};
  const auto wl4 =
      characterise_multiplier(device_, MultConfig{MultArch::Array, 4, 1}, 9, ss);
  EXPECT_DOUBLE_EQ(wl4.max_variance(), 0.0);
}

TEST_F(CalibrationTest, ErrorProneFractionGrowsWithWordlength) {
  SweepSettings ss;
  ss.freqs_mhz = {kTargetClockMhz};
  ss.locations = {reference_location_1()};
  ss.samples_per_point = 250;
  double prev_fraction = 0.0;
  for (int wl : {4, 5, 7, 9}) {
    const auto model = characterise_multiplier(
        device_, MultConfig{MultArch::Array, wl, 1}, 9, ss);
    std::size_t erroneous = 0;
    for (std::uint32_t m = 0; m < model.num_multiplicands(); ++m)
      if (model.variance(m, kTargetClockMhz) > 0.0) ++erroneous;
    const double fraction = static_cast<double>(erroneous) /
                            static_cast<double>(model.num_multiplicands());
    EXPECT_GE(fraction, prev_fraction) << "wl=" << wl;
    prev_fraction = fraction;
  }
  EXPECT_GT(prev_fraction, 0.25);  // wl=9 has plenty of error-prone codes
}

TEST_F(CalibrationTest, LargeWordlengthsErrAtTarget) {
  SweepSettings ss;
  ss.freqs_mhz = {kTargetClockMhz};
  ss.locations = {reference_location_1()};
  ss.samples_per_point = 250;
  const auto model = characterise_multiplier(
      device_, MultConfig{MultArch::Array, 9, 1}, 9, ss);
  std::size_t erroneous = 0;
  for (std::uint32_t m = 0; m < model.num_multiplicands(); ++m)
    if (model.variance(m, kTargetClockMhz) > 0.0) ++erroneous;
  // A sizeable fraction of multiplicands errs, and a usable set stays
  // clean — the optimisation space the framework navigates.
  EXPECT_GT(erroneous, model.num_multiplicands() / 5);
  EXPECT_LT(erroneous, model.num_multiplicands() * 95 / 100);
}

TEST_F(CalibrationTest, Figure4ConditionsShowErrorsAtBothLocations) {
  CharCircuitConfig cc;
  cc.mult = MultConfig{MultArch::Array, 8, 1};
  cc.wl_x = 8;
  const auto xs = uniform_stream(8, 4000, 77);
  for (const auto& loc : {reference_location_1(), reference_location_2()}) {
    CharacterisationCircuit circuit(cc, device_, loc);
    const auto trace = circuit.run(kFig4Multiplicand, xs, kFig4ClockMhz);
    const double rate =
        static_cast<double>(trace.erroneous) / static_cast<double>(xs.size());
    EXPECT_GT(rate, 0.005) << "loc (" << loc.x << "," << loc.y << ")";
    EXPECT_LT(rate, 0.5);
  }
}

TEST_F(CalibrationTest, TwoLocationsDifferInErrorPattern) {
  CharCircuitConfig cc;
  cc.mult = MultConfig{MultArch::Array, 8, 1};
  cc.wl_x = 8;
  const auto xs = uniform_stream(8, 4000, 77);
  CharacterisationCircuit c1(cc, device_, reference_location_1());
  CharacterisationCircuit c2(cc, device_, reference_location_2());
  const auto t1 = c1.run(kFig4Multiplicand, xs, kFig4ClockMhz, 5);
  const auto t2 = c2.run(kFig4Multiplicand, xs, kFig4ClockMhz, 5);
  EXPECT_NE(t1.error, t2.error);  // Figure 4's location-dependent patterns
}

TEST_F(CalibrationTest, SupportLogicWellAboveErrorRegion) {
  CharCircuitConfig cc;
  CharacterisationCircuit circuit(cc, device_, reference_location_1());
  EXPECT_GT(circuit.support_fmax_mhz(), 450.0);
}

TEST_F(CalibrationTest, ReferenceDieIsTypicalSilicon) {
  EXPECT_GT(device_.inter_die_factor(), 0.95);
  EXPECT_LT(device_.inter_die_factor(), 1.05);
}

}  // namespace
}  // namespace oclp
