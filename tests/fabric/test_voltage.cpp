#include <gtest/gtest.h>

#include "fabric/device.hpp"
#include "fabric/timing_annotation.hpp"
#include "mult/multiplier.hpp"
#include "netlist/sta.hpp"

namespace oclp {
namespace {

TEST(Voltage, NominalSupplyIsUnityDerate) {
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  EXPECT_DOUBLE_EQ(dev.core_voltage(), cfg.nominal_voltage);
  EXPECT_DOUBLE_EQ(dev.voltage_derate(), 1.0);
  EXPECT_DOUBLE_EQ(dev.relative_dynamic_power(), 1.0);
}

TEST(Voltage, LowerSupplySlowsTheFabricMonotonically) {
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  double prev = 1.0;
  for (double v : {1.15, 1.1, 1.0, 0.9, 0.8}) {
    dev.set_core_voltage(v);
    const double derate = dev.voltage_derate();
    EXPECT_GT(derate, prev) << "V=" << v;
    prev = derate;
  }
}

TEST(Voltage, HigherSupplySpeedsUp) {
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  dev.set_core_voltage(1.3);
  EXPECT_LT(dev.voltage_derate(), 1.0);
}

TEST(Voltage, PowerScalesQuadratically) {
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  dev.set_core_voltage(cfg.nominal_voltage / 2 + cfg.threshold_voltage / 2 + 0.3);
  const double v = dev.core_voltage();
  EXPECT_NEAR(dev.relative_dynamic_power(),
              (v / cfg.nominal_voltage) * (v / cfg.nominal_voltage), 1e-12);
}

TEST(Voltage, NearThresholdIsRejected) {
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  EXPECT_THROW(dev.set_core_voltage(cfg.threshold_voltage), CheckError);
  EXPECT_THROW(dev.set_core_voltage(cfg.threshold_voltage + 0.01), CheckError);
}

TEST(Voltage, AffectsAnnotatedTiming) {
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  const Netlist nl = make_multiplier(6, 6);
  const Placement loc{10, 10, 3};
  const double nominal = device_critical_path_ns(nl, dev, loc);
  dev.set_core_voltage(0.9);
  const double undervolted = device_critical_path_ns(nl, dev, loc);
  EXPECT_GT(undervolted, nominal * 1.1);
}

TEST(Voltage, ToolTimingIgnoresTheActualSupply) {
  // The tool's corner already assumes worst-case supply; the user knob
  // must not move the tool's report.
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  const Netlist nl = make_multiplier(6, 6);
  const double before = tool_fmax_mhz(nl, cfg);
  dev.set_core_voltage(0.9);
  EXPECT_DOUBLE_EQ(tool_fmax_mhz(nl, cfg), before);
}

TEST(Voltage, EnergySavingVsSlowdownTradeoff) {
  // The future-work premise: dropping the supply saves quadratic power at
  // a super-linear delay cost near threshold — there is a regime where
  // power drops faster than speed.
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  dev.set_core_voltage(1.0);
  EXPECT_LT(dev.relative_dynamic_power(), 0.72);  // ≥ 28% power saved
  EXPECT_LT(dev.voltage_derate(), 1.45);          // ≤ 45% slower
}

}  // namespace
}  // namespace oclp
