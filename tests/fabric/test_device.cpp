#include "fabric/device.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace oclp {
namespace {

TEST(Device, DeterministicInSeed) {
  const DeviceConfig cfg;
  Device a(cfg, 7), b(cfg, 7);
  EXPECT_DOUBLE_EQ(a.inter_die_factor(), b.inter_die_factor());
  for (int y = 0; y < cfg.grid_h; y += 5)
    for (int x = 0; x < cfg.grid_w; x += 5)
      EXPECT_DOUBLE_EQ(a.speed_factor(x, y), b.speed_factor(x, y));
}

TEST(Device, DifferentDiesDiffer) {
  const DeviceConfig cfg;
  Device a(cfg, 7), b(cfg, 8);
  int differing = 0;
  for (int y = 0; y < cfg.grid_h; ++y)
    for (int x = 0; x < cfg.grid_w; ++x)
      if (a.speed_factor(x, y) != b.speed_factor(x, y)) ++differing;
  EXPECT_GT(differing, cfg.grid_w * cfg.grid_h / 2);
}

TEST(Device, SpeedFactorsAreNearUnityAndPositive) {
  const DeviceConfig cfg;
  Device dev(cfg, 3);
  RunningStats st;
  for (int y = 0; y < cfg.grid_h; ++y)
    for (int x = 0; x < cfg.grid_w; ++x) {
      const double s = dev.speed_factor(x, y);
      ASSERT_GT(s, 0.5);
      ASSERT_LT(s, 1.6);
      st.add(s);
    }
  EXPECT_NEAR(st.mean(), dev.inter_die_factor(), 0.06);
  EXPECT_GT(st.stddev(), 0.01);  // variation actually present
}

TEST(Device, CoordinatesClampToDie) {
  const DeviceConfig cfg;
  Device dev(cfg, 5);
  EXPECT_DOUBLE_EQ(dev.speed_factor(-10, -10), dev.speed_factor(0, 0));
  EXPECT_DOUBLE_EQ(dev.speed_factor(cfg.grid_w + 5, cfg.grid_h + 5),
                   dev.speed_factor(cfg.grid_w - 1, cfg.grid_h - 1));
}

TEST(Device, MinMaxBracketAllLocations) {
  const DeviceConfig cfg;
  Device dev(cfg, 11);
  const double lo = dev.min_speed_factor();
  const double hi = dev.max_speed_factor();
  EXPECT_LT(lo, hi);
  for (int y = 0; y < cfg.grid_h; y += 3)
    for (int x = 0; x < cfg.grid_w; x += 3) {
      const double s = dev.speed_factor(x, y);
      EXPECT_GE(s, lo - 1e-12);
      EXPECT_LE(s, hi + 1e-12);
    }
}

TEST(Device, TemperatureDerate) {
  const DeviceConfig cfg;
  Device dev(cfg, 13);
  dev.set_temperature(cfg.temp_ref_c);
  EXPECT_DOUBLE_EQ(dev.environment_derate(), 1.0);
  dev.set_temperature(cfg.temp_ref_c + 40.0);
  EXPECT_GT(dev.environment_derate(), 1.0);  // hotter = slower
  dev.set_temperature(14.0);                  // the paper's cooled device
  EXPECT_LT(dev.environment_derate(), 1.0);  // cooler = faster
}

TEST(Device, AgingSlowsTheDevice) {
  const DeviceConfig cfg;
  Device dev(cfg, 17);
  const double fresh = dev.environment_derate();
  dev.age(3.0);
  EXPECT_DOUBLE_EQ(dev.age_years(), 3.0);
  EXPECT_GT(dev.environment_derate(), fresh);
  dev.age(1.0);
  EXPECT_DOUBLE_EQ(dev.age_years(), 4.0);
  EXPECT_THROW(dev.age(-1.0), CheckError);
}

TEST(Device, InvalidGeometryThrows) {
  DeviceConfig cfg;
  cfg.grid_w = 0;
  EXPECT_THROW(Device(cfg, 1), CheckError);
}

TEST(Device, SystematicVariationIsSpatiallySmooth) {
  // Neighbouring locations must correlate more than far-apart ones: the
  // systematic component is a smooth field over the die.
  const DeviceConfig cfg;
  RunningStats near_diff, far_diff;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Device dev(cfg, seed);
    for (int y = 1; y + 1 < cfg.grid_h; y += 2)
      for (int x = 1; x + 1 < cfg.grid_w; x += 2) {
        near_diff.add(std::abs(dev.speed_factor(x, y) - dev.speed_factor(x + 1, y)));
        far_diff.add(std::abs(dev.speed_factor(x, y) -
                              dev.speed_factor(cfg.grid_w - 1 - x, cfg.grid_h - 1 - y)));
      }
  }
  EXPECT_LT(near_diff.mean(), far_diff.mean());
}

TEST(Device, FamilyDieSeedsAreStableAndDistinct) {
  // A fleet must be regrowable die-by-die: member seeds are a pure
  // function of (family seed, index).
  EXPECT_EQ(family_die_seed(0xD1E5, 0), family_die_seed(0xD1E5, 0));
  EXPECT_NE(family_die_seed(0xD1E5, 0), family_die_seed(0xD1E5, 1));
  EXPECT_NE(family_die_seed(0xD1E5, 0), family_die_seed(0xBEEF, 0));
}

TEST(Device, MakeDieFamilyInstantiatesDistinctSiblings) {
  const DeviceConfig cfg;
  const auto dies = make_die_family(cfg, /*family_seed=*/0xD1E5, 3, 40.0);
  ASSERT_EQ(dies.size(), 3u);
  for (std::size_t i = 0; i < dies.size(); ++i) {
    EXPECT_EQ(dies[i].die_seed(), family_die_seed(0xD1E5, i));
    EXPECT_DOUBLE_EQ(dies[i].temperature_c(), 40.0);
    for (std::size_t j = i + 1; j < dies.size(); ++j)
      EXPECT_NE(dies[i].inter_die_factor(), dies[j].inter_die_factor());
  }
}

TEST(Device, MakeDieFamilyExplicitSeedsAndValidation) {
  const DeviceConfig cfg;
  const auto dies = make_die_family(cfg, std::vector<std::uint64_t>{22, 83},
                                    25.0);
  ASSERT_EQ(dies.size(), 2u);
  EXPECT_EQ(dies[0].die_seed(), 22u);
  EXPECT_EQ(dies[1].die_seed(), 83u);
  EXPECT_THROW(make_die_family(cfg, std::vector<std::uint64_t>{}, 25.0),
               CheckError);
}

}  // namespace
}  // namespace oclp
