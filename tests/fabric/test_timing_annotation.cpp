#include "fabric/timing_annotation.hpp"

#include <gtest/gtest.h>

#include "mult/multiplier.hpp"
#include "netlist/sta.hpp"

namespace oclp {
namespace {

Netlist small_netlist() { return make_multiplier(4, 4); }

TEST(TimingAnnotation, OneDelayPerCell) {
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  const Netlist nl = small_netlist();
  const auto delays = annotate_timing(nl, dev, Placement{5, 5, 9});
  EXPECT_EQ(delays.size(), nl.num_cells());
  for (std::size_t i = 0; i < delays.size(); ++i) {
    if (cell_is_free(nl.cells()[i].type))
      EXPECT_DOUBLE_EQ(delays[i], 0.0);
    else
      EXPECT_GT(delays[i], 0.0);
  }
}

TEST(TimingAnnotation, DeterministicInPlacement) {
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  const Netlist nl = small_netlist();
  const auto a = annotate_timing(nl, dev, Placement{5, 5, 9});
  const auto b = annotate_timing(nl, dev, Placement{5, 5, 9});
  EXPECT_EQ(a, b);
}

TEST(TimingAnnotation, RouteSeedChangesDelays) {
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  const Netlist nl = small_netlist();
  const auto a = annotate_timing(nl, dev, Placement{5, 5, 9});
  const auto b = annotate_timing(nl, dev, Placement{5, 5, 10});
  EXPECT_NE(a, b);  // a re-route is a different timing reality
}

TEST(TimingAnnotation, LocationChangesDelays) {
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  const Netlist nl = small_netlist();
  const auto a = annotate_timing(nl, dev, Placement{0, 0, 9});
  const auto b = annotate_timing(nl, dev, Placement{40, 30, 9});
  EXPECT_NE(a, b);
}

TEST(TimingAnnotation, ToolDelaysAreUniformAndConservative) {
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  dev.set_temperature(cfg.temp_ref_c);
  const Netlist nl = small_netlist();
  const auto tool = tool_timing(nl, cfg);
  double tool_delay = 0.0;
  for (std::size_t i = 0; i < tool.size(); ++i) {
    if (cell_is_free(nl.cells()[i].type)) continue;
    if (tool_delay == 0.0) tool_delay = tool[i];
    EXPECT_DOUBLE_EQ(tool[i], tool_delay);  // family-wide: identical per cell
  }
  // The tool's worst case must bound the typical device cell: check the
  // average annotated delay across several placements is well below it.
  double sum = 0.0;
  std::size_t n = 0;
  for (int i = 0; i < 10; ++i) {
    const auto dd = annotate_timing(nl, dev, Placement{i * 5, i * 3, 77u + i});
    for (std::size_t c = 0; c < dd.size(); ++c)
      if (!cell_is_free(nl.cells()[c].type)) {
        sum += dd[c];
        ++n;
      }
  }
  EXPECT_LT(sum / n, tool_delay);
}

TEST(TimingAnnotation, ToolFmaxBelowDeviceFmax) {
  // The performance gap the whole paper exploits.
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  dev.set_temperature(14.0);
  const Netlist nl = make_multiplier(8, 8);
  const double tool = tool_fmax_mhz(nl, cfg);
  const double device =
      fmax_mhz(device_critical_path_ns(nl, dev, Placement{10, 10, 5}));
  EXPECT_GT(device, tool * 1.2);
}

TEST(TimingAnnotation, HotterDeviceIsSlower) {
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  const Netlist nl = small_netlist();
  dev.set_temperature(10.0);
  const double cold = device_critical_path_ns(nl, dev, Placement{5, 5, 9});
  dev.set_temperature(85.0);
  const double hot = device_critical_path_ns(nl, dev, Placement{5, 5, 9});
  EXPECT_GT(hot, cold);
}

TEST(TimingAnnotation, AgedDeviceIsSlower) {
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  const Netlist nl = small_netlist();
  const double fresh = device_critical_path_ns(nl, dev, Placement{5, 5, 9});
  dev.age(5.0);
  const double aged = device_critical_path_ns(nl, dev, Placement{5, 5, 9});
  EXPECT_GT(aged, fresh);
}

}  // namespace
}  // namespace oclp
