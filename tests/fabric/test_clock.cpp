#include "fabric/clock.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace oclp {
namespace {

TEST(ClockGen, NominalPeriodMatchesFrequency) {
  ClockGen clk(250.0, 0.0, 1);
  EXPECT_DOUBLE_EQ(clk.nominal_period_ns(), 4.0);
  EXPECT_DOUBLE_EQ(clk.freq_mhz(), 250.0);
}

TEST(ClockGen, ZeroJitterIsExact) {
  ClockGen clk(320.0, 0.0, 1);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(clk.next_period_ns(), clk.nominal_period_ns());
}

TEST(ClockGen, JitterStatistics) {
  const double sigma = 0.015;
  ClockGen clk(310.0, sigma, 7);
  RunningStats st;
  for (int i = 0; i < 50000; ++i) st.add(clk.next_period_ns());
  EXPECT_NEAR(st.mean(), clk.nominal_period_ns(), 5e-4);
  EXPECT_NEAR(st.stddev(), sigma, 2e-3);
}

TEST(ClockGen, JitterIsClampedToFourSigma) {
  const double sigma = 0.02;
  ClockGen clk(310.0, sigma, 9);
  const double nominal = clk.nominal_period_ns();
  for (int i = 0; i < 100000; ++i) {
    const double p = clk.next_period_ns();
    ASSERT_LE(std::abs(p - nominal), 4.0 * sigma + 1e-12);
  }
}

TEST(ClockGen, DeterministicInSeed) {
  ClockGen a(310.0, 0.01, 42), b(310.0, 0.01, 42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.next_period_ns(), b.next_period_ns());
}

TEST(ClockGen, InvalidParametersThrow) {
  EXPECT_THROW(ClockGen(0.0, 0.01, 1), CheckError);
  EXPECT_THROW(ClockGen(100.0, -0.1, 1), CheckError);
}

}  // namespace
}  // namespace oclp
