#include "charlib/error_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace oclp {
namespace {

MultConfig acfg(int wl) { return MultConfig{MultArch::Array, wl, 1}; }

ErrorModel small_model() {
  ErrorModel m(acfg(3), 4, {100.0, 200.0, 300.0});
  for (std::uint32_t mm = 0; mm < 8; ++mm)
    for (std::size_t fi = 0; fi < 3; ++fi)
      m.set(mm, fi, mm * 10.0 + fi, mm * 1.0 - 2.0, 0.05 * fi);
  return m;
}

const char* kHeader =
    "arch,wl_m,pipeline_depth,wl_x,m,freq_mhz,variance,mean_error,error_rate";

TEST(ErrorModel, BasicAccessors) {
  const auto m = small_model();
  EXPECT_EQ(m.wordlength(), 3);
  EXPECT_EQ(m.data_wordlength(), 4);
  EXPECT_EQ(m.config(), acfg(3));
  EXPECT_EQ(m.num_multiplicands(), 8u);
  EXPECT_EQ(m.freqs_mhz().size(), 3u);
  EXPECT_FALSE(m.empty());
}

TEST(ErrorModel, RequireConfigNamesBothConfigs) {
  const auto m = small_model();
  EXPECT_NO_THROW(m.require_config(acfg(3), "test"));
  try {
    m.require_config(MultConfig{MultArch::Wallace, 3, 1}, "prior");
    FAIL() << "mismatched config accepted";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("array/wl3/p1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("wallace/wl3/p1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("prior"), std::string::npos) << msg;
  }
}

TEST(ErrorModel, ExactGridQueries) {
  const auto m = small_model();
  EXPECT_DOUBLE_EQ(m.variance(5, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(m.variance(5, 200.0), 51.0);
  EXPECT_DOUBLE_EQ(m.mean_error(3, 300.0), 1.0);
  EXPECT_DOUBLE_EQ(m.error_rate(7, 300.0), 0.10);
}

TEST(ErrorModel, LinearInterpolationBetweenFrequencies) {
  const auto m = small_model();
  EXPECT_DOUBLE_EQ(m.variance(2, 150.0), 20.5);  // halfway 20 → 21
  EXPECT_DOUBLE_EQ(m.variance(2, 250.0), 21.5);
}

TEST(ErrorModel, ClampsOutsideGrid) {
  const auto m = small_model();
  EXPECT_DOUBLE_EQ(m.variance(4, 50.0), m.variance(4, 100.0));
  EXPECT_DOUBLE_EQ(m.variance(4, 999.0), m.variance(4, 300.0));
}

TEST(ErrorModel, ValueUnitConversion) {
  const auto m = small_model();
  const double scale = std::ldexp(1.0, 3 + 4);  // 2^7
  EXPECT_DOUBLE_EQ(m.variance_value_units(5, 100.0), 50.0 / (scale * scale));
}

TEST(ErrorModel, MaxVariance) {
  const auto m = small_model();
  EXPECT_DOUBLE_EQ(m.max_variance(), 72.0);  // m=7, fi=2
}

TEST(ErrorModel, CsvRoundTrip) {
  const auto m = small_model();
  std::stringstream ss;
  m.save_csv(ss);
  const auto loaded = ErrorModel::load_csv(ss);
  EXPECT_EQ(loaded.wordlength(), m.wordlength());
  EXPECT_EQ(loaded.data_wordlength(), m.data_wordlength());
  EXPECT_EQ(loaded.config(), m.config());
  ASSERT_EQ(loaded.freqs_mhz(), m.freqs_mhz());
  for (std::uint32_t mm = 0; mm < 8; ++mm)
    for (double f : {100.0, 200.0, 300.0}) {
      EXPECT_DOUBLE_EQ(loaded.variance(mm, f), m.variance(mm, f));
      EXPECT_DOUBLE_EQ(loaded.mean_error(mm, f), m.mean_error(mm, f));
      EXPECT_DOUBLE_EQ(loaded.error_rate(mm, f), m.error_rate(mm, f));
    }
}

TEST(ErrorModel, CsvRoundTripPreservesConfigTag) {
  // The architecture and pipeline depth of the characterised multiplier
  // must survive the file format — a reloaded Wallace model must not be
  // mistakable for an array one.
  ErrorModel m(MultConfig{MultArch::Wallace, 4, 3}, 5, {100.0, 200.0});
  for (std::uint32_t mm = 0; mm < 16; ++mm)
    for (std::size_t fi = 0; fi < 2; ++fi)
      m.set(mm, fi, 0.5 * mm + fi, 0.0, 0.0);
  std::stringstream ss;
  m.save_csv(ss);
  const auto loaded = ErrorModel::load_csv(ss);
  EXPECT_EQ(loaded.config(), (MultConfig{MultArch::Wallace, 4, 3}));
  EXPECT_NO_THROW(loaded.require_config(m.config(), "round-trip"));
  EXPECT_THROW(loaded.require_config(acfg(4), "round-trip"), CheckError);
}

TEST(ErrorModel, CsvRoundTripBitwiseOnMultiFrequencyGrid) {
  // A dense frequency grid (the shape the sweep engine now produces in one
  // pass) must survive save→load→save bitwise: same grid after the
  // sorted-unique dedup pass, same values at full double precision.
  std::vector<double> freqs;
  for (int i = 0; i < 24; ++i) freqs.push_back(100.0 + 17.31 * i);
  ErrorModel m(acfg(4), 4, freqs);
  for (std::uint32_t mm = 0; mm < 16; ++mm)
    for (std::size_t fi = 0; fi < freqs.size(); ++fi)
      m.set(mm, fi, std::exp(0.1 * mm) * (fi + 0.125),
            -3.7 + 0.01 * mm * fi, std::min(1.0, 0.002 * mm * fi));

  std::stringstream first;
  m.save_csv(first);
  std::stringstream input(first.str());
  const auto loaded = ErrorModel::load_csv(input);
  ASSERT_EQ(loaded.freqs_mhz(), m.freqs_mhz());
  std::stringstream second;
  loaded.save_csv(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(ErrorModel, LoadDedupsUnsortedRepeatedFrequencies) {
  // Rows arriving in arbitrary frequency order with repeats must collapse
  // to one sorted, unique grid.
  std::stringstream ss;
  ss << kHeader << "\n";
  ss << "array,2,1,2,0,300,3,0,0.3\n"
     << "array,2,1,2,0,100,1,0,0.1\n"
     << "array,2,1,2,1,300,6,0,0.6\n"
     << "array,2,1,2,1,100,4,0,0.2\n"
     << "array,2,1,2,0,200,2,0,0.2\n"
     << "array,2,1,2,1,200,5,0,0.4\n";
  const auto m = ErrorModel::load_csv(ss);
  ASSERT_EQ(m.freqs_mhz(), (std::vector<double>{100.0, 200.0, 300.0}));
  EXPECT_DOUBLE_EQ(m.variance(0, 200.0), 2.0);
  EXPECT_DOUBLE_EQ(m.variance(1, 300.0), 6.0);
  EXPECT_DOUBLE_EQ(m.error_rate(1, 100.0), 0.2);
}

TEST(ErrorModel, LoadRejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(ErrorModel::load_csv(empty), CheckError);
  std::stringstream bad(std::string(kHeader) +
                        "\nnot,1,1,numbers,at,all,x,y,z\n");
  EXPECT_THROW(ErrorModel::load_csv(bad), CheckError);
}

namespace {
// A valid one-row stream with `row` substituted — each malformed-input test
// perturbs exactly one thing.
std::string csv_with_row(const std::string& row) {
  return std::string(kHeader) + "\n" + row + "\n";
}
}  // namespace

TEST(ErrorModel, LoadRejectsTruncatedRow) {
  std::stringstream five_fields(csv_with_row("array,3,1,4,2,100,0.5"));
  EXPECT_THROW(ErrorModel::load_csv(five_fields), CheckError);
  std::stringstream cut_mid_field(csv_with_row("array,3,1,4,2,10"));
  EXPECT_THROW(ErrorModel::load_csv(cut_mid_field), CheckError);
}

TEST(ErrorModel, LoadRejectsExtraFieldsAndTrailingGarbage) {
  std::stringstream extra(csv_with_row("array,3,1,4,2,100,0.5,0.0,0.1,junk"));
  EXPECT_THROW(ErrorModel::load_csv(extra), CheckError);
  // Garbage glued onto an otherwise-numeric field used to parse silently.
  std::stringstream glued(csv_with_row("array,3,1,4,2,100,0.5,0.0,0.1x"));
  EXPECT_THROW(ErrorModel::load_csv(glued), CheckError);
}

TEST(ErrorModel, LoadRejectsNonNumericField) {
  std::stringstream bad_var(csv_with_row("array,3,1,4,2,100,NOPE,0.0,0.1"));
  EXPECT_THROW(ErrorModel::load_csv(bad_var), CheckError);
  std::stringstream empty_field(csv_with_row("array,3,1,4,2,,0.5,0.0,0.1"));
  EXPECT_THROW(ErrorModel::load_csv(empty_field), CheckError);
  std::stringstream inf_var(csv_with_row("array,3,1,4,2,100,inf,0.0,0.1"));
  EXPECT_THROW(ErrorModel::load_csv(inf_var), CheckError);
}

TEST(ErrorModel, LoadRejectsUnknownArchitecture) {
  std::stringstream bad_arch(csv_with_row("booth,3,1,4,2,100,0.5,0.0,0.1"));
  EXPECT_THROW(ErrorModel::load_csv(bad_arch), CheckError);
}

TEST(ErrorModel, LoadRejectsOutOfRangeValues) {
  // Multiplicand beyond 2^wl_m: would index out of the table.
  std::stringstream big_m(csv_with_row("array,3,1,4,8,100,0.5,0.0,0.1"));
  EXPECT_THROW(ErrorModel::load_csv(big_m), CheckError);
  std::stringstream neg_m(csv_with_row("array,3,1,4,-1,100,0.5,0.0,0.1"));
  EXPECT_THROW(ErrorModel::load_csv(neg_m), CheckError);
  std::stringstream bad_wl(csv_with_row("array,0,1,4,0,100,0.5,0.0,0.1"));
  EXPECT_THROW(ErrorModel::load_csv(bad_wl), CheckError);
  std::stringstream bad_depth(csv_with_row("array,3,0,4,2,100,0.5,0.0,0.1"));
  EXPECT_THROW(ErrorModel::load_csv(bad_depth), CheckError);
  std::stringstream neg_freq(csv_with_row("array,3,1,4,2,-100,0.5,0.0,0.1"));
  EXPECT_THROW(ErrorModel::load_csv(neg_freq), CheckError);
  std::stringstream neg_var(csv_with_row("array,3,1,4,2,100,-0.5,0.0,0.1"));
  EXPECT_THROW(ErrorModel::load_csv(neg_var), CheckError);
  std::stringstream big_rate(csv_with_row("array,3,1,4,2,100,0.5,0.0,1.5"));
  EXPECT_THROW(ErrorModel::load_csv(big_rate), CheckError);
}

TEST(ErrorModel, LoadRejectsHeaderlessStream) {
  std::stringstream no_header("array,3,1,4,2,100,0.5,0.0,0.1\n");
  EXPECT_THROW(ErrorModel::load_csv(no_header), CheckError);
  std::stringstream old_header(
      "wl_m,wl_x,m,freq_mhz,variance,mean_error,error_rate\n"
      "3,4,2,100,0.5,0.0,0.1\n");
  EXPECT_THROW(ErrorModel::load_csv(old_header), CheckError);
  std::stringstream header_only(std::string(kHeader) + "\n");
  EXPECT_THROW(ErrorModel::load_csv(header_only), CheckError);
}

TEST(ErrorModel, LoadRejectsDuplicateCell) {
  std::stringstream dup(std::string(kHeader) +
                        "\narray,3,1,4,2,100,0.5,0.0,0.1\n"
                        "array,3,1,4,2,100,0.9,0.0,0.2\n");
  EXPECT_THROW(ErrorModel::load_csv(dup), CheckError);
}

TEST(ErrorModel, LoadRejectsMixedConfigsNamingBoth) {
  // One file holds one configuration's surface. A file mixing two configs
  // (here: same word-length, different architecture) must be rejected with
  // a message naming both, so the mis-merge is diagnosable.
  std::stringstream mixed(std::string(kHeader) +
                          "\narray,3,1,4,2,100,0.5,0.0,0.1\n"
                          "wallace,3,1,4,2,100,0.5,0.0,0.1\n");
  try {
    ErrorModel::load_csv(mixed);
    FAIL() << "mixed-config file accepted";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("array/wl3/p1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("wallace/wl3/p1"), std::string::npos) << msg;
  }
  std::stringstream mixed_wl(std::string(kHeader) +
                             "\narray,3,1,4,2,100,0.5,0.0,0.1\n"
                             "array,4,1,4,2,100,0.5,0.0,0.1\n");
  EXPECT_THROW(ErrorModel::load_csv(mixed_wl), CheckError);
  std::stringstream mixed_depth(std::string(kHeader) +
                                "\narray,3,1,4,2,100,0.5,0.0,0.1\n"
                                "array,3,2,4,2,100,0.5,0.0,0.1\n");
  EXPECT_THROW(ErrorModel::load_csv(mixed_depth), CheckError);
}

TEST(ErrorModel, RoundTripSingleFrequencyEdgeGrid) {
  // The sweep's #Freqs=1 shape (the paper's own runtime example): one
  // column, clamped everywhere, must survive save → load → save bitwise.
  ErrorModel m(acfg(5), 9, {310.0});
  for (std::uint32_t mm = 0; mm < 32; ++mm)
    m.set(mm, 0, 0.25 * mm, 0.5 - 0.01 * mm, std::min(1.0, 0.03 * mm));
  std::stringstream first;
  m.save_csv(first);
  std::stringstream input(first.str());
  const auto loaded = ErrorModel::load_csv(input);
  EXPECT_EQ(loaded.wordlength(), 5);
  EXPECT_EQ(loaded.data_wordlength(), 9);
  ASSERT_EQ(loaded.freqs_mhz(), m.freqs_mhz());
  for (std::uint32_t mm = 0; mm < 32; ++mm) {
    EXPECT_DOUBLE_EQ(loaded.variance(mm, 310.0), m.variance(mm, 310.0));
    EXPECT_DOUBLE_EQ(loaded.error_rate(mm, 123.0), m.error_rate(mm, 310.0));
  }
  std::stringstream second;
  loaded.save_csv(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(ErrorModel, RoundTripMinimumWordlengthGrid) {
  // wl_m = 3 (the Table-I sweep floor): 8 multiplicands, two frequencies.
  ErrorModel m(acfg(3), 3, {150.0, 450.0});
  for (std::uint32_t mm = 0; mm < 8; ++mm)
    for (std::size_t fi = 0; fi < 2; ++fi)
      m.set(mm, fi, 1e-3 * (mm + 1) * (fi + 1), -0.25 * mm, 0.125 * fi);
  std::stringstream ss;
  m.save_csv(ss);
  const auto loaded = ErrorModel::load_csv(ss);
  ASSERT_EQ(loaded.freqs_mhz(), m.freqs_mhz());
  EXPECT_EQ(loaded.num_multiplicands(), 8u);
  for (std::uint32_t mm = 0; mm < 8; ++mm)
    for (double f : {150.0, 300.0, 450.0}) {
      EXPECT_DOUBLE_EQ(loaded.variance(mm, f), m.variance(mm, f));
      EXPECT_DOUBLE_EQ(loaded.mean_error(mm, f), m.mean_error(mm, f));
      EXPECT_DOUBLE_EQ(loaded.error_rate(mm, f), m.error_rate(mm, f));
    }
}

TEST(ErrorModel, ConstructionValidation) {
  EXPECT_THROW(ErrorModel(acfg(0), 4, {100.0}), CheckError);
  EXPECT_THROW(ErrorModel(acfg(3), 4, {}), CheckError);
  EXPECT_THROW(ErrorModel(acfg(3), 4, {200.0, 100.0}), CheckError);  // unsorted
  EXPECT_THROW(ErrorModel(MultConfig{MultArch::Array, 3, 0}, 4, {100.0}),
               CheckError);  // depth below 1
}

TEST(ErrorModel, SetValidation) {
  ErrorModel m(acfg(3), 4, {100.0});
  EXPECT_THROW(m.set(0, 0, -1.0, 0.0, 0.0), CheckError);   // negative var
  EXPECT_THROW(m.set(0, 0, 1.0, 0.0, 1.5), CheckError);    // rate > 1
}

TEST(ErrorModel, SingleFrequencyGridAlwaysClamps) {
  // One characterised point is the i0 == i1 edge of locate(): every query
  // — below, at, or above the point — must clamp to that cell with a zero
  // interpolation weight, for all three tables.
  ErrorModel m(acfg(2), 2, {310.0});
  m.set(3, 0, 42.0, -7.0, 0.1);
  for (double f : {100.0, 310.0, 500.0}) {
    EXPECT_DOUBLE_EQ(m.variance(3, f), 42.0);
    EXPECT_DOUBLE_EQ(m.mean_error(3, f), -7.0);
    EXPECT_DOUBLE_EQ(m.error_rate(3, f), 0.1);
  }
  const double scale = std::ldexp(1.0, 2 + 2);
  EXPECT_DOUBLE_EQ(m.variance_value_units(3, 42.0), 42.0 / (scale * scale));
}

TEST(ErrorModel, ConstructorRejectsUnsortedGrid) {
  EXPECT_THROW(ErrorModel(acfg(3), 4, {200.0, 100.0, 300.0}), CheckError);
}

TEST(ErrorModel, ConstructorRejectsDuplicateGridFrequencies) {
  // A sorted-but-duplicated grid would give locate() a zero frequency gap.
  EXPECT_THROW(ErrorModel(acfg(3), 4, {100.0, 100.0, 300.0}), CheckError);
  EXPECT_THROW(ErrorModel(acfg(3), 4, {100.0, 300.0, 300.0}), CheckError);
}

TEST(SharedErrorModels, StartsEmptyAndPublishesSnapshots) {
  SharedErrorModels shared;
  EXPECT_EQ(shared.generation(), 0u);
  const auto empty = shared.load();
  ASSERT_NE(empty, nullptr);
  EXPECT_TRUE(empty->empty());

  ErrorModelMap map;
  map.emplace(acfg(3), small_model());
  shared.store(std::move(map));
  EXPECT_EQ(shared.generation(), 1u);
  const auto first = shared.load();
  EXPECT_EQ(first->count(acfg(3)), 1u);
  EXPECT_TRUE(empty->empty());  // old snapshot is immutable and alive
}

TEST(SharedErrorModels, OldSnapshotsSurviveSubsequentStores) {
  ErrorModelMap initial;
  initial.emplace(acfg(3), small_model());
  SharedErrorModels shared(std::move(initial));
  const auto before = shared.load();
  ErrorModel updated = small_model();
  updated.set(5, 0, 999.0, 0.0, 1.0);
  ErrorModelMap next;
  next.emplace(acfg(3), std::move(updated));
  shared.store(std::move(next));
  const auto after = shared.load();
  EXPECT_DOUBLE_EQ(before->at(acfg(3)).variance(5, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(after->at(acfg(3)).variance(5, 100.0), 999.0);
}

}  // namespace
}  // namespace oclp
