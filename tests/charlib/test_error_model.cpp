#include "charlib/error_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace oclp {
namespace {

ErrorModel small_model() {
  ErrorModel m(3, 4, {100.0, 200.0, 300.0});
  for (std::uint32_t mm = 0; mm < 8; ++mm)
    for (std::size_t fi = 0; fi < 3; ++fi)
      m.set(mm, fi, mm * 10.0 + fi, mm * 1.0 - 2.0, 0.05 * fi);
  return m;
}

TEST(ErrorModel, BasicAccessors) {
  const auto m = small_model();
  EXPECT_EQ(m.wordlength(), 3);
  EXPECT_EQ(m.data_wordlength(), 4);
  EXPECT_EQ(m.num_multiplicands(), 8u);
  EXPECT_EQ(m.freqs_mhz().size(), 3u);
  EXPECT_FALSE(m.empty());
}

TEST(ErrorModel, ExactGridQueries) {
  const auto m = small_model();
  EXPECT_DOUBLE_EQ(m.variance(5, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(m.variance(5, 200.0), 51.0);
  EXPECT_DOUBLE_EQ(m.mean_error(3, 300.0), 1.0);
  EXPECT_DOUBLE_EQ(m.error_rate(7, 300.0), 0.10);
}

TEST(ErrorModel, LinearInterpolationBetweenFrequencies) {
  const auto m = small_model();
  EXPECT_DOUBLE_EQ(m.variance(2, 150.0), 20.5);  // halfway 20 → 21
  EXPECT_DOUBLE_EQ(m.variance(2, 250.0), 21.5);
}

TEST(ErrorModel, ClampsOutsideGrid) {
  const auto m = small_model();
  EXPECT_DOUBLE_EQ(m.variance(4, 50.0), m.variance(4, 100.0));
  EXPECT_DOUBLE_EQ(m.variance(4, 999.0), m.variance(4, 300.0));
}

TEST(ErrorModel, ValueUnitConversion) {
  const auto m = small_model();
  const double scale = std::ldexp(1.0, 3 + 4);  // 2^7
  EXPECT_DOUBLE_EQ(m.variance_value_units(5, 100.0), 50.0 / (scale * scale));
}

TEST(ErrorModel, MaxVariance) {
  const auto m = small_model();
  EXPECT_DOUBLE_EQ(m.max_variance(), 72.0);  // m=7, fi=2
}

TEST(ErrorModel, CsvRoundTrip) {
  const auto m = small_model();
  std::stringstream ss;
  m.save_csv(ss);
  const auto loaded = ErrorModel::load_csv(ss);
  EXPECT_EQ(loaded.wordlength(), m.wordlength());
  EXPECT_EQ(loaded.data_wordlength(), m.data_wordlength());
  ASSERT_EQ(loaded.freqs_mhz(), m.freqs_mhz());
  for (std::uint32_t mm = 0; mm < 8; ++mm)
    for (double f : {100.0, 200.0, 300.0}) {
      EXPECT_DOUBLE_EQ(loaded.variance(mm, f), m.variance(mm, f));
      EXPECT_DOUBLE_EQ(loaded.mean_error(mm, f), m.mean_error(mm, f));
      EXPECT_DOUBLE_EQ(loaded.error_rate(mm, f), m.error_rate(mm, f));
    }
}

TEST(ErrorModel, LoadRejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(ErrorModel::load_csv(empty), CheckError);
  std::stringstream bad("header\nnot,numbers,at,all,x,y,z\n");
  EXPECT_THROW(ErrorModel::load_csv(bad), CheckError);
}

TEST(ErrorModel, ConstructionValidation) {
  EXPECT_THROW(ErrorModel(0, 4, {100.0}), CheckError);
  EXPECT_THROW(ErrorModel(3, 4, {}), CheckError);
  EXPECT_THROW(ErrorModel(3, 4, {200.0, 100.0}), CheckError);  // unsorted
}

TEST(ErrorModel, SetValidation) {
  ErrorModel m(3, 4, {100.0});
  EXPECT_THROW(m.set(0, 0, -1.0, 0.0, 0.0), CheckError);   // negative var
  EXPECT_THROW(m.set(0, 0, 1.0, 0.0, 1.5), CheckError);    // rate > 1
}

TEST(ErrorModel, SingleFrequencyGridAlwaysClamps) {
  ErrorModel m(2, 2, {310.0});
  m.set(3, 0, 42.0, 0.0, 0.1);
  EXPECT_DOUBLE_EQ(m.variance(3, 100.0), 42.0);
  EXPECT_DOUBLE_EQ(m.variance(3, 310.0), 42.0);
  EXPECT_DOUBLE_EQ(m.variance(3, 500.0), 42.0);
}

}  // namespace
}  // namespace oclp
