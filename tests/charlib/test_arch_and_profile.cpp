// Tests for the architecture-parametric characterisation path and the
// per-bit error profile helper.
#include <gtest/gtest.h>

#include "charlib/char_circuit.hpp"
#include "charlib/sweep.hpp"
#include "fabric/calibration.hpp"

namespace oclp {
namespace {

class ArchCharTest : public ::testing::Test {
 protected:
  ArchCharTest() : device_(reference_device_config(), kReferenceDieSeed) {
    device_.set_temperature(kCharacterisationTempC);
  }
  Device device_;
};

TEST_F(ArchCharTest, WallaceDutIsFunctionallyCorrectAtLowClock) {
  CharCircuitConfig cfg;
  cfg.mult = MultConfig{MultArch::Wallace, 6, 1};
  cfg.wl_x = 6;
  CharacterisationCircuit circuit(cfg, device_, reference_location_1());
  const auto xs = uniform_stream(6, 400, 1);
  const auto trace = circuit.run(45, xs, 100.0);
  EXPECT_EQ(trace.erroneous, 0u);
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_EQ(trace.observed[i], 45ull * xs[i]);
}

TEST_F(ArchCharTest, WallaceSurvivesHigherClocksThanArray) {
  // The shallower tree must keep a higher device-view Fmax.
  CharCircuitConfig array_cfg;
  array_cfg.mult = MultConfig{MultArch::Array, 8, 1};
  array_cfg.wl_x = 8;
  CharCircuitConfig wallace_cfg = array_cfg;
  wallace_cfg.mult.arch = MultArch::Wallace;
  CharacterisationCircuit array_c(array_cfg, device_, reference_location_1());
  CharacterisationCircuit wallace_c(wallace_cfg, device_, reference_location_1());
  EXPECT_GT(wallace_c.dut_device_fmax_mhz(), array_c.dut_device_fmax_mhz() * 1.1);
  EXPECT_GT(wallace_c.dut_tool_fmax_mhz(), array_c.dut_tool_fmax_mhz() * 1.1);
}

TEST_F(ArchCharTest, ConfigArchReachesTheModel) {
  // At a clock where the array multiplier errs, the Wallace one does not:
  // the architecture dimension demonstrably reaches the characterisation.
  SweepSettings ss;
  ss.freqs_mhz = {330.0};
  ss.locations = {reference_location_1()};
  ss.samples_per_point = 200;
  const auto array_model = characterise_multiplier(
      device_, MultConfig{MultArch::Array, 8, 1}, 8, ss);
  const auto wallace_model = characterise_multiplier(
      device_, MultConfig{MultArch::Wallace, 8, 1}, 8, ss);
  EXPECT_GT(array_model.max_variance(), 0.0);
  EXPECT_DOUBLE_EQ(wallace_model.max_variance(), 0.0);
  EXPECT_EQ(array_model.config().arch, MultArch::Array);
  EXPECT_EQ(wallace_model.config().arch, MultArch::Wallace);
}

TEST(MultArchName, Names) {
  EXPECT_STREQ(mult_arch_name(MultArch::Array), "array");
  EXPECT_STREQ(mult_arch_name(MultArch::Wallace), "wallace");
}

TEST(BitErrorProfile, EmptyTraceIsAllZero) {
  CharTrace trace;
  const auto profile = bit_error_profile(trace, 8);
  EXPECT_EQ(profile.size(), 8u);
  for (double p : profile) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(BitErrorProfile, CountsFlipsPerBit) {
  CharTrace trace;
  trace.observed = {0b0001, 0b1000, 0b1001, 0b0000};
  trace.expected = {0b0000, 0b0000, 0b0000, 0b0000};
  const auto profile = bit_error_profile(trace, 4);
  EXPECT_DOUBLE_EQ(profile[0], 0.5);   // flipped in samples 0 and 2
  EXPECT_DOUBLE_EQ(profile[1], 0.0);
  EXPECT_DOUBLE_EQ(profile[2], 0.0);
  EXPECT_DOUBLE_EQ(profile[3], 0.5);   // flipped in samples 1 and 2
}

TEST(BitErrorProfile, MsbsDominateUnderOverclocking) {
  Device device(reference_device_config(), kReferenceDieSeed);
  device.set_temperature(kCharacterisationTempC);
  CharCircuitConfig cfg;
  CharacterisationCircuit circuit(cfg, device, reference_location_1());
  const auto xs = uniform_stream(8, 4000, 3);
  const auto trace = circuit.run(222, xs, 360.0);
  ASSERT_GT(trace.erroneous, 100u);
  const auto profile = bit_error_profile(trace, 16);
  double low = 0.0, high = 0.0;
  for (int b = 0; b < 8; ++b) low += profile[b];
  for (int b = 8; b < 16; ++b) high += profile[b];
  EXPECT_GT(high, low);
  EXPECT_DOUBLE_EQ(profile[0], 0.0);  // single-AND LSB never fails
}

TEST(BitErrorProfile, Validation) {
  CharTrace trace;
  trace.observed = {1};
  trace.expected = {1, 2};
  EXPECT_THROW(bit_error_profile(trace, 4), CheckError);
  trace.expected = {1};
  EXPECT_THROW(bit_error_profile(trace, 0), CheckError);
}

}  // namespace
}  // namespace oclp
