#include "charlib/sweep.hpp"

#include <gtest/gtest.h>

#include "fabric/calibration.hpp"

namespace oclp {
namespace {

class SweepTest : public ::testing::Test {
 protected:
  SweepTest() : device_(reference_device_config(), kReferenceDieSeed) {
    device_.set_temperature(kCharacterisationTempC);
    settings_.locations = {reference_location_1()};
    settings_.samples_per_point = 200;
  }
  Device device_;
  SweepSettings settings_;
};

TEST(UniformStream, RangeAndDeterminism) {
  const auto a = uniform_stream(5, 1000, 42);
  const auto b = uniform_stream(5, 1000, 42);
  EXPECT_EQ(a, b);
  for (auto x : a) ASSERT_LT(x, 32u);
  const auto c = uniform_stream(5, 1000, 43);
  EXPECT_NE(a, c);
}

TEST(UniformStream, CoversTheRange) {
  const auto xs = uniform_stream(3, 500, 1);
  std::vector<int> seen(8, 0);
  for (auto x : xs) ++seen[x];
  for (int s : seen) EXPECT_GT(s, 0);
}

TEST_F(SweepTest, LowFrequencyModelIsAllZero) {
  settings_.freqs_mhz = {100.0};
  const auto model = characterise_multiplier(device_, 4, 4, settings_);
  for (std::uint32_t m = 0; m < 16; ++m) {
    EXPECT_DOUBLE_EQ(model.variance(m, 100.0), 0.0) << "m=" << m;
    EXPECT_DOUBLE_EQ(model.error_rate(m, 100.0), 0.0);
  }
}

TEST_F(SweepTest, HighFrequencyShowsDataDependence) {
  // 5×5 at the reference slow corner errs from ~500 MHz; 640 MHz is deep in
  // the error-prone regime but still under the supporting-logic limit.
  settings_.freqs_mhz = {640.0};
  settings_.samples_per_point = 400;
  const auto model = characterise_multiplier(device_, 5, 5, settings_);
  // m = 0: no partial products, never any error.
  EXPECT_DOUBLE_EQ(model.variance(0, 640.0), 0.0);
  // The all-ones multiplicand toggles every row: must err at this clock.
  EXPECT_GT(model.variance(31, 640.0), 0.0);
  // On average, low-popcount multiplicands err less than high-popcount ones.
  double low = 0.0, high = 0.0;
  int nlow = 0, nhigh = 0;
  for (std::uint32_t m = 0; m < 32; ++m) {
    const int pc = __builtin_popcount(m);
    if (pc <= 1) {
      low += model.error_rate(m, 640.0);
      ++nlow;
    } else if (pc >= 4) {
      high += model.error_rate(m, 640.0);
      ++nhigh;
    }
  }
  EXPECT_LT(low / nlow, high / nhigh);
}

TEST_F(SweepTest, VarianceGrowsWithFrequency) {
  settings_.freqs_mhz = {300.0, 550.0, 660.0};
  settings_.samples_per_point = 300;
  const auto model = characterise_multiplier(device_, 5, 5, settings_);
  double v300 = 0.0, v550 = 0.0, v660 = 0.0;
  for (std::uint32_t m = 0; m < 32; ++m) {
    v300 += model.variance(m, 300.0);
    v550 += model.variance(m, 550.0);
    v660 += model.variance(m, 660.0);
  }
  EXPECT_LE(v300, v550);
  EXPECT_LT(v550, v660);
  EXPECT_DOUBLE_EQ(v300, 0.0);
}

TEST_F(SweepTest, MultipleLocationsAggregate) {
  settings_.freqs_mhz = {640.0};
  settings_.locations = {reference_location_1(), reference_location_2()};
  settings_.samples_per_point = 150;
  const auto model = characterise_multiplier(device_, 5, 5, settings_);
  EXPECT_GT(model.max_variance(), 0.0);
}

TEST_F(SweepTest, DeterministicAcrossRuns) {
  settings_.freqs_mhz = {400.0};
  const auto a = characterise_multiplier(device_, 4, 4, settings_);
  const auto b = characterise_multiplier(device_, 4, 4, settings_);
  for (std::uint32_t m = 0; m < 16; ++m)
    EXPECT_DOUBLE_EQ(a.variance(m, 400.0), b.variance(m, 400.0));
}

TEST_F(SweepTest, ErrorRateCurveIsBroadlyIncreasing) {
  std::vector<double> freqs{150.0, 250.0, 350.0, 450.0};
  const auto curve = error_rate_curve(device_, 6, 6, reference_location_1(),
                                      freqs, 1500, 3);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].error_rate, 0.0);
  EXPECT_GT(curve[3].error_rate, curve[1].error_rate);
  EXPECT_GT(curve[3].error_rate, 0.01);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(curve[i].freq_mhz, freqs[i]);
}

TEST(FindRegimes, ExtractsBoundaries) {
  std::vector<ErrorRatePoint> curve{
      {100.0, 0.0, 0.0}, {200.0, 0.0, 0.0}, {300.0, 0.1, 1.0},
      {400.0, 0.4, 2.0}, {500.0, 0.8, 3.0}};
  const auto reg = find_regimes(curve, 0.5);
  EXPECT_DOUBLE_EQ(reg.error_free_fmax_mhz, 200.0);  // fB
  EXPECT_DOUBLE_EQ(reg.usable_fmax_mhz, 400.0);      // fC
}

TEST(FindRegimes, AllErrorFree) {
  std::vector<ErrorRatePoint> curve{{100.0, 0.0, 0.0}, {200.0, 0.0, 0.0}};
  const auto reg = find_regimes(curve);
  EXPECT_DOUBLE_EQ(reg.error_free_fmax_mhz, 200.0);
  EXPECT_DOUBLE_EQ(reg.usable_fmax_mhz, 200.0);
}

TEST_F(SweepTest, InvalidSettingsThrow) {
  SweepSettings bad;
  bad.freqs_mhz = {};
  bad.locations = {reference_location_1()};
  EXPECT_THROW(characterise_multiplier(device_, 4, 4, bad), CheckError);
  bad.freqs_mhz = {300.0};
  bad.locations = {};
  EXPECT_THROW(characterise_multiplier(device_, 4, 4, bad), CheckError);
}

}  // namespace
}  // namespace oclp
