#include "charlib/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"
#include "fabric/calibration.hpp"

namespace oclp {
namespace {

MultConfig acfg(int wl) { return MultConfig{MultArch::Array, wl, 1}; }

class SweepTest : public ::testing::Test {
 protected:
  SweepTest() : device_(reference_device_config(), kReferenceDieSeed) {
    device_.set_temperature(kCharacterisationTempC);
    settings_.locations = {reference_location_1()};
    settings_.samples_per_point = 200;
  }
  Device device_;
  SweepSettings settings_;
};

TEST(UniformStream, RangeAndDeterminism) {
  const auto a = uniform_stream(5, 1000, 42);
  const auto b = uniform_stream(5, 1000, 42);
  EXPECT_EQ(a, b);
  for (auto x : a) ASSERT_LT(x, 32u);
  const auto c = uniform_stream(5, 1000, 43);
  EXPECT_NE(a, c);
}

TEST(UniformStream, CoversTheRange) {
  const auto xs = uniform_stream(3, 500, 1);
  std::vector<int> seen(8, 0);
  for (auto x : xs) ++seen[x];
  for (int s : seen) EXPECT_GT(s, 0);
}

TEST_F(SweepTest, LowFrequencyModelIsAllZero) {
  settings_.freqs_mhz = {100.0};
  const auto model = characterise_multiplier(device_, acfg(4), 4, settings_);
  for (std::uint32_t m = 0; m < 16; ++m) {
    EXPECT_DOUBLE_EQ(model.variance(m, 100.0), 0.0) << "m=" << m;
    EXPECT_DOUBLE_EQ(model.error_rate(m, 100.0), 0.0);
  }
}

TEST_F(SweepTest, HighFrequencyShowsDataDependence) {
  // 5×5 at the reference slow corner errs from ~500 MHz; 640 MHz is deep in
  // the error-prone regime but still under the supporting-logic limit.
  settings_.freqs_mhz = {640.0};
  settings_.samples_per_point = 400;
  const auto model = characterise_multiplier(device_, acfg(5), 5, settings_);
  // m = 0: no partial products, never any error.
  EXPECT_DOUBLE_EQ(model.variance(0, 640.0), 0.0);
  // The all-ones multiplicand toggles every row: must err at this clock.
  EXPECT_GT(model.variance(31, 640.0), 0.0);
  // On average, low-popcount multiplicands err less than high-popcount ones.
  double low = 0.0, high = 0.0;
  int nlow = 0, nhigh = 0;
  for (std::uint32_t m = 0; m < 32; ++m) {
    const int pc = __builtin_popcount(m);
    if (pc <= 1) {
      low += model.error_rate(m, 640.0);
      ++nlow;
    } else if (pc >= 4) {
      high += model.error_rate(m, 640.0);
      ++nhigh;
    }
  }
  EXPECT_LT(low / nlow, high / nhigh);
}

TEST_F(SweepTest, VarianceGrowsWithFrequency) {
  settings_.freqs_mhz = {300.0, 550.0, 660.0};
  settings_.samples_per_point = 300;
  const auto model = characterise_multiplier(device_, acfg(5), 5, settings_);
  double v300 = 0.0, v550 = 0.0, v660 = 0.0;
  for (std::uint32_t m = 0; m < 32; ++m) {
    v300 += model.variance(m, 300.0);
    v550 += model.variance(m, 550.0);
    v660 += model.variance(m, 660.0);
  }
  EXPECT_LE(v300, v550);
  EXPECT_LT(v550, v660);
  EXPECT_DOUBLE_EQ(v300, 0.0);
}

TEST_F(SweepTest, MultipleLocationsAggregate) {
  settings_.freqs_mhz = {640.0};
  settings_.locations = {reference_location_1(), reference_location_2()};
  settings_.samples_per_point = 150;
  const auto model = characterise_multiplier(device_, acfg(5), 5, settings_);
  EXPECT_GT(model.max_variance(), 0.0);
}

TEST_F(SweepTest, DeterministicAcrossRuns) {
  settings_.freqs_mhz = {400.0};
  const auto a = characterise_multiplier(device_, acfg(4), 4, settings_);
  const auto b = characterise_multiplier(device_, acfg(4), 4, settings_);
  for (std::uint32_t m = 0; m < 16; ++m)
    EXPECT_DOUBLE_EQ(a.variance(m, 400.0), b.variance(m, 400.0));
}

TEST_F(SweepTest, ErrorRateCurveIsBroadlyIncreasing) {
  std::vector<double> freqs{150.0, 250.0, 350.0, 450.0};
  const auto curve = error_rate_curve(device_, 6, 6, reference_location_1(),
                                      freqs, 1500, 3);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].error_rate, 0.0);
  EXPECT_GT(curve[3].error_rate, curve[1].error_rate);
  EXPECT_GT(curve[3].error_rate, 0.01);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(curve[i].freq_mhz, freqs[i]);
}

TEST(FindRegimes, ExtractsBoundaries) {
  std::vector<ErrorRatePoint> curve{
      {100.0, 0.0, 0.0}, {200.0, 0.0, 0.0}, {300.0, 0.1, 1.0},
      {400.0, 0.4, 2.0}, {500.0, 0.8, 3.0}};
  const auto reg = find_regimes(curve, 0.5);
  EXPECT_DOUBLE_EQ(reg.error_free_fmax_mhz, 200.0);  // fB
  EXPECT_DOUBLE_EQ(reg.usable_fmax_mhz, 400.0);      // fC
}

TEST(FindRegimes, AllErrorFree) {
  std::vector<ErrorRatePoint> curve{{100.0, 0.0, 0.0}, {200.0, 0.0, 0.0}};
  const auto reg = find_regimes(curve);
  EXPECT_DOUBLE_EQ(reg.error_free_fmax_mhz, 200.0);
  EXPECT_DOUBLE_EQ(reg.usable_fmax_mhz, 200.0);
}

// The seed per-frequency reference path: one full stream simulation per
// (m, frequency, location), accumulated exactly as the sweep engine does.
ErrorModel reference_characterisation(const Device& device,
                                      const MultConfig& config, int wl_x,
                                      const SweepSettings& settings) {
  std::vector<double> freqs = settings.freqs_mhz;
  std::sort(freqs.begin(), freqs.end());
  ErrorModel model(config, wl_x, freqs);
  const auto stream = uniform_stream(wl_x, settings.samples_per_point,
                                     settings.stream_seed);
  CharCircuitConfig ccfg;
  ccfg.mult = config;
  ccfg.wl_x = wl_x;
  ccfg.with_jitter = settings.with_jitter;
  ccfg.fsm_clock_mhz = settings.fsm_clock_mhz;
  ccfg.bram_depth = settings.bram_depth;
  for (std::uint32_t m = 0; m < model.num_multiplicands(); ++m) {
    for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
      RunningStats err;
      std::size_t erroneous = 0, total = 0;
      for (const auto& loc : settings.locations) {
        CharacterisationCircuit circuit(ccfg, device, loc);
        const auto trace =
            circuit.run(m, stream, freqs[fi],
                        hash_mix(settings.stream_seed, m, loc.route_seed));
        for (auto e : trace.error) err.add(static_cast<double>(e));
        erroneous += trace.erroneous;
        total += trace.error.size();
      }
      model.set(m, fi, err.variance(), err.mean(),
                total ? static_cast<double>(erroneous) /
                            static_cast<double>(total)
                      : 0.0);
    }
  }
  return model;
}

TEST_F(SweepTest, SinglePassMatchesPerFrequencyReferenceBitwise) {
  // Jitter-free golden regression: the single-pass engine must reproduce
  // the per-frequency reference path bit for bit on a 4×4 sweep with three
  // frequencies and two locations.
  settings_.with_jitter = false;
  settings_.locations = {reference_location_1(), reference_location_2()};
  settings_.samples_per_point = 200;

  CharCircuitConfig probe_cfg;
  probe_cfg.mult = acfg(4);
  probe_cfg.wl_x = 4;
  probe_cfg.with_jitter = false;
  CharacterisationCircuit probe1(probe_cfg, device_, reference_location_1());
  CharacterisationCircuit probe2(probe_cfg, device_, reference_location_2());
  const double f0 =
      std::min(probe1.dut_device_fmax_mhz(), probe2.dut_device_fmax_mhz());
  const double support =
      std::min(probe1.support_fmax_mhz(), probe2.support_fmax_mhz());
  settings_.freqs_mhz = {0.7 * f0, std::min(1.05 * f0, 0.9 * support),
                         std::min(1.3 * f0, 0.97 * support)};
  ASSERT_LT(settings_.freqs_mhz[1], settings_.freqs_mhz[2]);

  const auto single_pass = characterise_multiplier(device_, acfg(4), 4, settings_);
  const auto reference = reference_characterisation(device_, acfg(4), 4, settings_);

  bool any_error = false;
  for (std::uint32_t m = 0; m < 16; ++m)
    for (double f : settings_.freqs_mhz) {
      EXPECT_EQ(single_pass.variance(m, f), reference.variance(m, f))
          << "m=" << m << " f=" << f;
      EXPECT_EQ(single_pass.mean_error(m, f), reference.mean_error(m, f))
          << "m=" << m << " f=" << f;
      EXPECT_EQ(single_pass.error_rate(m, f), reference.error_rate(m, f))
          << "m=" << m << " f=" << f;
      any_error |= reference.error_rate(m, f) > 0.0;
    }
  EXPECT_TRUE(any_error);  // the grid must actually reach the error regime
}

TEST_F(SweepTest, JitteredSinglePassIsStatisticallyEquivalent) {
  // With jitter the single-pass engine draws one deviation per sample and
  // applies it to every frequency, instead of one independent stream per
  // frequency. Per-frequency marginals must stay equivalent: at a marginal
  // clock the aggregate error statistics have to agree closely (jitter is
  // ±4σ = 48 ps against periods of ~1.5 ns, so it only flips samples whose
  // slack is within that window).
  settings_.with_jitter = true;
  settings_.freqs_mhz = {640.0};
  settings_.samples_per_point = 400;
  const auto single_pass = characterise_multiplier(device_, acfg(5), 5, settings_);
  const auto reference = reference_characterisation(device_, acfg(5), 5, settings_);

  double total_abs_diff = 0.0;
  for (std::uint32_t m = 0; m < 32; ++m) {
    const double d =
        std::abs(single_pass.error_rate(m, 640.0) - reference.error_rate(m, 640.0));
    EXPECT_LE(d, 0.10) << "m=" << m;
    total_abs_diff += d;
  }
  EXPECT_LE(total_abs_diff / 32.0, 0.02);
  EXPECT_GT(single_pass.max_variance(), 0.0);
}

TEST_F(SweepTest, ConstructsEachLocationCircuitExactlyOnce) {
  settings_.freqs_mhz = {300.0, 450.0, 600.0};
  settings_.locations = {reference_location_1(), reference_location_2()};
  settings_.samples_per_point = 50;
  const auto before = CharacterisationCircuit::construction_count();
  characterise_multiplier(device_, acfg(4), 4, settings_);
  const auto after = CharacterisationCircuit::construction_count();
  EXPECT_EQ(after - before, settings_.locations.size());
}

TEST_F(SweepTest, ErrorRateCurveBuildsOneCircuitForAllFrequencies) {
  const std::vector<double> freqs{150.0, 300.0, 450.0};
  const auto before = CharacterisationCircuit::construction_count();
  error_rate_curve(device_, 5, 5, reference_location_1(), freqs, 200, 11);
  EXPECT_EQ(CharacterisationCircuit::construction_count() - before, 1u);
}

TEST(FindRegimes, NonMonotonicCurveStopsAtFirstError) {
  // A spurious zero-error measurement above the error onset must extend
  // neither regime.
  std::vector<ErrorRatePoint> curve{
      {100.0, 0.0, 0.0}, {200.0, 0.2, 1.0}, {300.0, 0.0, 0.0},
      {400.0, 0.6, 2.0}, {500.0, 0.0, 0.0}};
  const auto reg = find_regimes(curve, 0.5);
  EXPECT_DOUBLE_EQ(reg.error_free_fmax_mhz, 100.0);
  EXPECT_DOUBLE_EQ(reg.usable_fmax_mhz, 300.0);
}

TEST(FindRegimes, FirstPointErroneousGivesZero) {
  std::vector<ErrorRatePoint> curve{{100.0, 0.7, 1.0}, {200.0, 0.9, 2.0}};
  const auto reg = find_regimes(curve, 0.5);
  EXPECT_DOUBLE_EQ(reg.error_free_fmax_mhz, 0.0);
  EXPECT_DOUBLE_EQ(reg.usable_fmax_mhz, 0.0);
}

TEST(FindRegimes, UnsortedInputIsSortedByFrequency) {
  std::vector<ErrorRatePoint> curve{
      {400.0, 0.4, 2.0}, {100.0, 0.0, 0.0}, {300.0, 0.1, 1.0},
      {200.0, 0.0, 0.0}};
  const auto reg = find_regimes(curve, 0.3);
  EXPECT_DOUBLE_EQ(reg.error_free_fmax_mhz, 200.0);
  EXPECT_DOUBLE_EQ(reg.usable_fmax_mhz, 300.0);
}

TEST_F(SweepTest, InvalidSettingsThrow) {
  SweepSettings bad;
  bad.freqs_mhz = {};
  bad.locations = {reference_location_1()};
  EXPECT_THROW(characterise_multiplier(device_, acfg(4), 4, bad), CheckError);
  bad.freqs_mhz = {300.0};
  bad.locations = {};
  EXPECT_THROW(characterise_multiplier(device_, acfg(4), 4, bad), CheckError);
}

// --- subsampled online re-characterisation ---------------------------------

class SubsweepTest : public ::testing::Test {
 protected:
  SubsweepTest() : device_(reference_device_config(), kReferenceDieSeed) {
    device_.set_temperature(kCharacterisationTempC);
    ccfg_.mult = acfg(4);
    ccfg_.wl_x = 4;
    ccfg_.with_jitter = false;
  }
  CharacterisationCircuit circuit() const {
    return CharacterisationCircuit(ccfg_, device_, reference_location_1());
  }
  Device device_;
  CharCircuitConfig ccfg_;
};

TEST_F(SubsweepTest, UpdatesOnlyProbedRows) {
  const auto circ = circuit();
  ErrorModel model(acfg(4), 4, {100.0, 200.0});
  for (std::uint32_t m = 0; m < 16; ++m)
    for (std::size_t fi = 0; fi < 2; ++fi) model.set(m, fi, 1.0, 2.0, 0.0);

  SubsweepSettings probe;
  probe.multiplicands = {3, 11};
  probe.samples_per_point = 100;
  const auto report = recharacterise_multiplier(circ, model, probe);

  EXPECT_EQ(report.probed, 2u);
  EXPECT_EQ(report.skipped_freqs, 0u);
  // Probed rows were re-measured (error-free at these safe clocks: zero
  // variance/mean replaces the sentinel values); unprobed rows untouched.
  for (std::uint32_t m = 0; m < 16; ++m)
    for (double f : {100.0, 200.0}) {
      if (m == 3 || m == 11) {
        EXPECT_DOUBLE_EQ(model.variance(m, f), 0.0);
        EXPECT_DOUBLE_EQ(model.mean_error(m, f), 0.0);
      } else {
        EXPECT_DOUBLE_EQ(model.variance(m, f), 1.0);
        EXPECT_DOUBLE_EQ(model.mean_error(m, f), 2.0);
      }
    }
}

TEST_F(SubsweepTest, StrideCoverageRotatesWithPhase) {
  const auto circ = circuit();
  auto probed_rows = [&](std::uint64_t phase) {
    ErrorModel model(acfg(4), 4, {100.0});
    for (std::uint32_t m = 0; m < 16; ++m) model.set(m, 0, 1.0, 0.0, 0.0);
    SubsweepSettings probe;
    probe.m_stride = 8;
    probe.m_phase = phase;
    probe.samples_per_point = 50;
    recharacterise_multiplier(circ, model, probe);
    std::vector<std::uint32_t> rows;
    for (std::uint32_t m = 0; m < 16; ++m)
      if (model.variance(m, 100.0) == 0.0) rows.push_back(m);
    return rows;
  };
  EXPECT_EQ(probed_rows(0), (std::vector<std::uint32_t>{0, 8}));
  EXPECT_EQ(probed_rows(1), (std::vector<std::uint32_t>{1, 9}));
  EXPECT_EQ(probed_rows(9), (std::vector<std::uint32_t>{1, 9}));  // mod stride
}

TEST_F(SubsweepTest, ErrorFreeFmaxFollowsTheFirstErroneousPoint) {
  // 8×8 at the reference placement errs well below 640 (the Figure-1
  // landscape), so a grid spanning the onset yields a mid-grid fB.
  CharCircuitConfig cc;
  cc.mult = acfg(8);
  cc.wl_x = 8;
  cc.with_jitter = false;
  CharacterisationCircuit circ(cc, device_, reference_location_1());
  std::vector<double> grid;
  for (double f = 100.0; f <= 640.0; f += 30.0) grid.push_back(f);
  ErrorModel model(acfg(8), 8, grid);
  SubsweepSettings probe;
  probe.multiplicands = {255, 222};
  probe.samples_per_point = 150;
  const auto clean = recharacterise_multiplier(circ, model, probe);
  EXPECT_GT(clean.error_free_fmax_mhz, 0.0);
  EXPECT_LT(clean.error_free_fmax_mhz, 640.0);

  // Emulated drift (delays × d): the same probe on the same grid must see
  // a smaller error-free regime — this is what the fleet's control plane
  // keys its floor adjustment on.
  ErrorModel drifted(acfg(8), 8, grid);
  probe.timing_derate = 2.0;
  const auto hot = recharacterise_multiplier(circ, drifted, probe);
  EXPECT_LT(hot.error_free_fmax_mhz, clean.error_free_fmax_mhz);
}

TEST_F(SubsweepTest, GridPointsPastSupportFmaxAreSkipped) {
  const auto circ = circuit();
  // Derate the probe so the top of the grid lands beyond the supporting
  // logic's Fmax: those points are unprobeable and must be skipped (and
  // counted), not crash the framework's own-error guard.
  const double support = circ.support_fmax_mhz();
  ErrorModel model(acfg(4), 4, {100.0, 0.9 * support});
  SubsweepSettings probe;
  probe.multiplicands = {5};
  probe.samples_per_point = 50;
  probe.timing_derate = 1.5;
  const auto report = recharacterise_multiplier(circ, model, probe);
  EXPECT_EQ(report.skipped_freqs, 1u);
}

TEST_F(SubsweepTest, DeterministicAcrossRuns) {
  const auto circ = circuit();
  auto run = [&] {
    ErrorModel model(acfg(4), 4, {100.0, 500.0, 640.0});
    SubsweepSettings probe;
    probe.multiplicands = {15, 13};
    probe.m_stride = 4;
    probe.samples_per_point = 120;
    recharacterise_multiplier(circ, model, probe);
    return model;
  };
  const auto a = run();
  const auto b = run();
  for (std::uint32_t m = 0; m < 16; ++m)
    for (double f : {100.0, 500.0, 640.0}) {
      EXPECT_DOUBLE_EQ(a.variance(m, f), b.variance(m, f));
      EXPECT_DOUBLE_EQ(a.mean_error(m, f), b.mean_error(m, f));
    }
}

TEST_F(SubsweepTest, Validation) {
  const auto circ = circuit();
  ErrorModel model(acfg(4), 4, {100.0});
  SubsweepSettings probe;  // nothing to probe
  EXPECT_THROW(recharacterise_multiplier(circ, model, probe), CheckError);
  probe.multiplicands = {16};  // out of range for wl_m = 4
  EXPECT_THROW(recharacterise_multiplier(circ, model, probe), CheckError);
  probe.multiplicands = {1};
  probe.samples_per_point = 1;
  EXPECT_THROW(recharacterise_multiplier(circ, model, probe), CheckError);
  probe.samples_per_point = 50;
  probe.timing_derate = 0.0;
  EXPECT_THROW(recharacterise_multiplier(circ, model, probe), CheckError);
  ErrorModel wrong_wl(acfg(5), 4, {100.0});
  probe.timing_derate = 1.0;
  EXPECT_THROW(recharacterise_multiplier(circ, wrong_wl, probe), CheckError);
  ErrorModel empty;
  EXPECT_THROW(recharacterise_multiplier(circ, empty, probe), CheckError);
}

}  // namespace
}  // namespace oclp
