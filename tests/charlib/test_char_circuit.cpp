#include "charlib/char_circuit.hpp"

#include <gtest/gtest.h>

#include "charlib/sweep.hpp"
#include "fabric/calibration.hpp"
#include "netlist/sta.hpp"

namespace oclp {
namespace {

class CharCircuitTest : public ::testing::Test {
 protected:
  CharCircuitTest()
      : device_(reference_device_config(), kReferenceDieSeed) {
    device_.set_temperature(kCharacterisationTempC);
    cfg_.mult = MultConfig{MultArch::Array, 6, 1};
    cfg_.wl_x = 6;
    cfg_.bram_depth = 64;
  }
  CharCircuitConfig cfg_;
  Device device_;
};

TEST_F(CharCircuitTest, ErrorFreeWellBelowToolFmax) {
  CharacterisationCircuit circuit(cfg_, device_, reference_location_1());
  const auto xs = uniform_stream(6, 500, 1);
  const auto trace = circuit.run(45, xs, circuit.dut_tool_fmax_mhz() * 0.5);
  EXPECT_EQ(trace.erroneous, 0u);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(trace.expected[i], 45ull * xs[i]);
    EXPECT_EQ(trace.observed[i], trace.expected[i]);
    EXPECT_EQ(trace.error[i], 0);
  }
}

TEST_F(CharCircuitTest, TraceSizesMatchStream) {
  CharacterisationCircuit circuit(cfg_, device_, reference_location_1());
  const auto xs = uniform_stream(6, 333, 2);
  const auto trace = circuit.run(10, xs, 200.0);
  EXPECT_EQ(trace.observed.size(), 333u);
  EXPECT_EQ(trace.expected.size(), 333u);
  EXPECT_EQ(trace.error.size(), 333u);
}

TEST_F(CharCircuitTest, ErrorsAppearWhenHeavilyOverclocked) {
  CharacterisationCircuit circuit(cfg_, device_, reference_location_1());
  const auto xs = uniform_stream(6, 2000, 3);
  // Just below the supporting-logic limit: deep into the error regime.
  const double freq = circuit.support_fmax_mhz() * 0.98;
  const auto trace = circuit.run(63, xs, freq);
  EXPECT_GT(trace.erroneous, 100u);
  // error == observed - expected by definition.
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_EQ(trace.error[i], static_cast<std::int64_t>(trace.observed[i]) -
                                  static_cast<std::int64_t>(trace.expected[i]));
}

TEST_F(CharCircuitTest, SupportLogicIsFasterThanDutErrorRegion) {
  CharacterisationCircuit circuit(cfg_, device_, reference_location_1());
  // The invariant the paper engineers: the supporting modules' limit sits
  // well above the DUT's device-view Fmax.
  EXPECT_GT(circuit.support_fmax_mhz(), circuit.dut_device_fmax_mhz() * 1.5);
  EXPECT_GT(circuit.dut_device_fmax_mhz(), circuit.dut_tool_fmax_mhz());
}

TEST_F(CharCircuitTest, RunBeyondSupportLimitThrows) {
  CharacterisationCircuit circuit(cfg_, device_, reference_location_1());
  const auto xs = uniform_stream(6, 10, 4);
  EXPECT_THROW(circuit.run(1, xs, circuit.support_fmax_mhz() * 1.1), CheckError);
}

TEST_F(CharCircuitTest, MultiplicandOutOfRangeThrows) {
  CharacterisationCircuit circuit(cfg_, device_, reference_location_1());
  const auto xs = uniform_stream(6, 10, 5);
  EXPECT_THROW(circuit.run(64, xs, 100.0), CheckError);  // 6-bit port
}

TEST_F(CharCircuitTest, FsmCyclesAccountForBatches) {
  CharacterisationCircuit circuit(cfg_, device_, reference_location_1());
  const auto xs = uniform_stream(6, 200, 6);  // 64-word BRAM → 4 batches
  const auto trace = circuit.run(7, xs, 150.0);
  // Each batch costs 2·batch + 4 supporting cycles.
  EXPECT_EQ(trace.fsm_cycles, 2u * 200 + 4u * 4);
}

TEST_F(CharCircuitTest, DeterministicForEqualSeeds) {
  CharacterisationCircuit a(cfg_, device_, reference_location_1());
  CharacterisationCircuit b(cfg_, device_, reference_location_1());
  const auto xs = uniform_stream(6, 500, 7);
  const auto ta = a.run(33, xs, 350.0, 99);
  const auto tb = b.run(33, xs, 350.0, 99);
  EXPECT_EQ(ta.error, tb.error);
}

TEST_F(CharCircuitTest, JitterSeedChangesHighFrequencyErrors) {
  // The paper attributes run-to-run variation at high frequency to clock
  // jitter; different jitter draws must be able to flip marginal samples.
  CharacterisationCircuit circuit(cfg_, device_, reference_location_1());
  const auto xs = uniform_stream(6, 3000, 8);
  const double freq = circuit.dut_device_fmax_mhz() * 1.02;  // marginal regime
  const auto ta = circuit.run(63, xs, freq, 1);
  const auto tb = circuit.run(63, xs, freq, 2);
  EXPECT_NE(ta.error, tb.error);
}

TEST_F(CharCircuitTest, ConstructorBuildsDutNetlistExactlyOnce) {
  const auto before = multiplier_arch_build_count();
  CharacterisationCircuit circuit(cfg_, device_, reference_location_1());
  EXPECT_EQ(multiplier_arch_build_count() - before, 1u);
}

TEST_F(CharCircuitTest, ConstructionCountHookCounts) {
  const auto before = CharacterisationCircuit::construction_count();
  CharacterisationCircuit a(cfg_, device_, reference_location_1());
  CharacterisationCircuit b(cfg_, device_, reference_location_2());
  EXPECT_EQ(CharacterisationCircuit::construction_count() - before, 2u);
}

TEST_F(CharCircuitTest, RunMultiMatchesRunPerFrequencyJitterFree) {
  cfg_.with_jitter = false;
  CharacterisationCircuit circuit(cfg_, device_, reference_location_1());
  const auto xs = uniform_stream(6, 400, 21);
  const double f0 = circuit.dut_device_fmax_mhz();
  const std::vector<double> freqs{0.6 * f0, 1.02 * f0,
                                  circuit.support_fmax_mhz() * 0.95};

  const auto multi = circuit.run_multi(17, xs, freqs, 5);
  ASSERT_EQ(multi.size(), freqs.size());
  for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
    const auto ref = circuit.run(17, xs, freqs[fi], 5);
    EXPECT_EQ(multi[fi].observed, ref.observed) << "f=" << freqs[fi];
    EXPECT_EQ(multi[fi].expected, ref.expected);
    EXPECT_EQ(multi[fi].error, ref.error);
    EXPECT_EQ(multi[fi].erroneous, ref.erroneous);
    EXPECT_EQ(multi[fi].fsm_cycles, ref.fsm_cycles);
  }
  // The grid has to span both regimes for the comparison to mean anything.
  EXPECT_EQ(multi[0].erroneous, 0u);
  EXPECT_GT(multi[2].erroneous, 0u);
}

TEST_F(CharCircuitTest, RunMultiDeterministicWithSharedWorkspace) {
  CharacterisationCircuit circuit(cfg_, device_, reference_location_1());
  const auto xs = uniform_stream(6, 300, 22);
  const std::vector<double> freqs{250.0, 400.0};
  CharacterisationCircuit::Workspace ws;
  const auto a = circuit.run_multi(33, xs, freqs, 7, &ws);
  const auto b = circuit.run_multi(33, xs, freqs, 7, &ws);  // reused buffers
  const auto c = circuit.run_multi(33, xs, freqs, 7);       // call-local
  for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
    EXPECT_EQ(a[fi].error, b[fi].error);
    EXPECT_EQ(a[fi].error, c[fi].error);
  }
}

TEST_F(CharCircuitTest, RunMultiJitterSeedMatters) {
  CharacterisationCircuit circuit(cfg_, device_, reference_location_1());
  const auto xs = uniform_stream(6, 3000, 23);
  const double freq = circuit.dut_device_fmax_mhz() * 1.02;  // marginal
  const auto ta = circuit.run_multi(63, xs, {freq}, 1);
  const auto tb = circuit.run_multi(63, xs, {freq}, 2);
  const auto ta2 = circuit.run_multi(63, xs, {freq}, 1);
  EXPECT_NE(ta[0].error, tb[0].error);
  EXPECT_EQ(ta[0].error, ta2[0].error);
}

TEST_F(CharCircuitTest, RunMultiValidatesInputs) {
  CharacterisationCircuit circuit(cfg_, device_, reference_location_1());
  const auto xs = uniform_stream(6, 10, 24);
  EXPECT_THROW(circuit.run_multi(64, xs, {100.0}), CheckError);  // 6-bit port
  EXPECT_THROW(circuit.run_multi(1, xs, {}), CheckError);
  EXPECT_THROW(
      circuit.run_multi(1, xs, {100.0, circuit.support_fmax_mhz() * 1.1}),
      CheckError);
}

TEST(SupportLogic, ShallowAndCorrectShape) {
  const Netlist support = make_support_logic(8192);
  EXPECT_LE(support.depth(), 8);  // log-depth counter + FSM cone
  EXPECT_EQ(support.num_inputs(), 13u + 2u + 1u);  // addr + state + run_en
  const Netlist dut = make_multiplier(8, 8);
  EXPECT_LT(support.depth(), dut.depth() / 2);
}

TEST(SupportLogic, CounterIncrementIsCorrect) {
  const Netlist support = make_support_logic(16);  // 4 address bits
  // next = addr + 1 (mod 16) when inspecting the first 4 outputs.
  for (unsigned addr = 0; addr < 16; ++addr) {
    std::vector<std::uint8_t> in;
    for (int i = 0; i < 4; ++i) in.push_back((addr >> i) & 1);
    in.push_back(0);  // state0
    in.push_back(0);  // state1
    in.push_back(1);  // run_en
    const auto out = support.evaluate_outputs(in);
    unsigned next = 0;
    for (int i = 0; i < 4; ++i) next |= static_cast<unsigned>(out[i]) << i;
    EXPECT_EQ(next, (addr + 1) % 16);
  }
}

}  // namespace
}  // namespace oclp
