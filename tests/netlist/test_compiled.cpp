// Lowering edge cases of the compiled levelized datapath: constant cones,
// free-cell (Buf/Const) elision, dead-cell sweeping, and the compiled
// ProjectionCircuit's clock/derate equivalence.
#include "netlist/compiled.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/circuit_eval.hpp"
#include "core/design.hpp"
#include "fabric/calibration.hpp"
#include "netlist/netlist.hpp"
#include "timing/overclock_sim.hpp"

namespace oclp {
namespace {

TEST(CompiledNetlist, AllConstantConeFoldsAway) {
  NetlistBuilder nb;
  const auto in = nb.add_inputs(2);
  const auto c0 = nb.const0();
  const auto c1 = nb.const1();
  const auto n1 = nb.and_(in[0], c0);  // provably 0
  const auto n2 = nb.or_(c1, in[1]);   // provably 1
  const auto n3 = nb.xor_(n1, n2);     // both fanins constant -> provably 1
  nb.mark_output(n1);
  nb.mark_output(n2);
  nb.mark_output(n3);
  const Netlist nl = nb.build();

  const CompiledNetlist cnl = CompiledNetlist::compile(nl);
  EXPECT_EQ(cnl.num_cells(), 0u);
  EXPECT_EQ(cnl.num_levels(), 0u);
  EXPECT_EQ(cnl.stats().elided_free, 2u);      // the two Const cells
  EXPECT_EQ(cnl.stats().folded_constant, 3u);  // n1, n2, n3
  EXPECT_EQ(cnl.out_net(0), CompiledNetlist::kConst0Net);
  EXPECT_EQ(cnl.out_net(1), CompiledNetlist::kConst1Net);
  EXPECT_EQ(cnl.out_net(2), CompiledNetlist::kConst1Net);

  std::vector<std::uint8_t> scratch, out;
  for (std::uint8_t a = 0; a < 2; ++a)
    for (std::uint8_t b = 0; b < 2; ++b) {
      const std::vector<std::uint8_t> inputs{a, b};
      cnl.eval_outputs(inputs, scratch, out);
      EXPECT_EQ(out, nl.evaluate_outputs(inputs));
    }

  // A constant cone never transitions: even an absurdly short period
  // captures the functional value.
  OverclockSim sim(nl, std::vector<double>(nl.num_cells(), 0.7));
  sim.reset({0, 0});
  const auto captured = sim.step({1, 1}, 1e-9);
  EXPECT_EQ(captured, nl.evaluate_outputs({1, 1}));
  EXPECT_EQ(sim.last_output_settle_ns(), 0.0);
}

TEST(CompiledNetlist, BufChainsFeedingOutputsKeepSettleExact) {
  NetlistBuilder nb;
  const auto a = nb.add_input();
  const auto b1 = nb.add_cell(CellType::Buf, a);
  const auto b2 = nb.add_cell(CellType::Buf, b1);
  const auto g = nb.not_(a);
  const auto b3 = nb.add_cell(CellType::Buf, g);
  const auto b4 = nb.add_cell(CellType::Buf, b3);
  nb.mark_output(b2);  // input reaches an output through free cells only
  nb.mark_output(b4);
  const Netlist nl = nb.build();

  const CompiledNetlist cnl = CompiledNetlist::compile(nl);
  EXPECT_EQ(cnl.stats().elided_free, 4u);
  EXPECT_EQ(cnl.num_cells(), 1u);  // only the Not survives
  EXPECT_EQ(cnl.out_net(0), cnl.input_net(0));
  EXPECT_EQ(cnl.out_net(1), cnl.cell_net(0));

  // Buffers are annotated with (ignored) nonzero delays on purpose: the
  // chain must contribute exactly zero to the settle profile.
  std::vector<double> delays(nl.num_cells(), 123.0);
  delays[static_cast<std::size_t>(g) - nl.num_inputs()] = 0.3;
  OverclockSim sim(nl, delays);
  OverclockSim::State st;
  sim.reset(st, {0});
  sim.advance(st, {1});
  EXPECT_EQ(st.out_next, (std::vector<std::uint8_t>{1, 0}));
  EXPECT_EQ(st.out_prev, (std::vector<std::uint8_t>{0, 1}));
  EXPECT_EQ(st.out_settle[0], 0.0);  // registered input through Bufs
  EXPECT_EQ(st.out_settle[1], 0.3);  // exactly the Not's delay
  EXPECT_EQ(st.last_output_settle_ns, 0.3);
}

TEST(CompiledNetlist, DeadCellsWithSideFaninAreSweptOnlyWhenRequested) {
  NetlistBuilder nb;
  const auto in = nb.add_inputs(2);
  const auto live = nb.xor_(in[0], in[1]);
  const auto dead1 = nb.and_(live, in[0]);  // side fanin on a live net
  const auto dead2 = nb.not_(dead1);
  (void)dead2;
  nb.mark_output(live);
  const Netlist nl = nb.build();

  const CompiledNetlist swept = CompiledNetlist::compile(nl);
  EXPECT_EQ(swept.stats().swept_dead, 2u);
  EXPECT_EQ(swept.num_cells(), 1u);
  EXPECT_EQ(swept.out_net(0), swept.cell_net(0));
  EXPECT_EQ(swept.alias_of(dead2), -1);  // swept nets lose their alias

  // Structural mode (what STA uses): nothing folded, nothing swept, every
  // original net still addressable.
  CompileOptions structural;
  structural.fold_constants = false;
  structural.sweep_dead = false;
  const CompiledNetlist full = CompiledNetlist::compile(nl, structural);
  EXPECT_EQ(full.stats().swept_dead, 0u);
  EXPECT_EQ(full.num_cells(), 3u);
  for (std::int32_t n = 0; n < static_cast<std::int32_t>(nl.num_nets()); ++n)
    EXPECT_GE(full.alias_of(n), 0) << "net " << n;

  // The swept form still evaluates the outputs identically.
  std::vector<std::uint8_t> scratch, out;
  for (std::uint8_t a = 0; a < 2; ++a)
    for (std::uint8_t b = 0; b < 2; ++b) {
      const std::vector<std::uint8_t> inputs{a, b};
      swept.eval_outputs(inputs, scratch, out);
      EXPECT_EQ(out, nl.evaluate_outputs(inputs));
    }
}

TEST(CompiledNetlist, LevelsAreContiguousAndRespectFanins) {
  Rng rng(7);
  NetlistBuilder nb;
  nb.add_inputs(4);
  for (int i = 0; i < 40; ++i) {
    const auto pick = [&] {
      return static_cast<std::int32_t>(rng.uniform_u64(nb.num_nets()));
    };
    nb.add_cell(CellType::Nand2, pick(), pick());
  }
  for (int o = 0; o < 6; ++o)
    nb.mark_output(static_cast<std::int32_t>(rng.uniform_u64(nb.num_nets())));
  const Netlist nl = nb.build();

  const CompiledNetlist cnl = CompiledNetlist::compile(nl);
  ASSERT_GE(cnl.num_levels(), 1u);
  EXPECT_EQ(cnl.level_begin(0), 0u);
  EXPECT_EQ(cnl.level_begin(cnl.num_levels()), cnl.num_cells());
  const auto base = cnl.cell_net(0);
  for (std::size_t l = 0; l < cnl.num_levels(); ++l) {
    EXPECT_LT(cnl.level_begin(l), cnl.level_begin(l + 1));  // non-empty
    for (std::size_t ci = cnl.level_begin(l); ci < cnl.level_begin(l + 1); ++ci)
      for (int k = 0; k < 3; ++k) {
        const auto f = cnl.fanin(ci, k);
        if (f >= base) {  // a cell fanin must live in a strictly lower level
          EXPECT_LT(static_cast<std::size_t>(f - base), cnl.level_begin(l));
        }
      }
  }
}

class CompiledProjection : public ::testing::Test {
 protected:
  CompiledProjection() : device_(reference_device_config(), kReferenceDieSeed) {
    device_.set_temperature(kCharacterisationTempC);
    design_.columns.push_back(make_column({0.75, -0.5, 0.25, 0.125}, 5));
    design_.columns.push_back(make_column({-0.25, 0.625, -0.75, 0.5}, 5));
    design_.arch = MultArch::Array;
    design_.target_freq_mhz = 310.0;
  }

  std::vector<std::uint32_t> random_codes(Rng& rng) const {
    std::vector<std::uint32_t> codes(design_.dims_p());
    for (auto& c : codes)
      c = static_cast<std::uint32_t>(rng.uniform_u64(1u << kWlX));
    return codes;
  }

  static constexpr int kWlX = 7;
  Device device_;
  LinearProjectionDesign design_;
};

TEST_F(CompiledProjection, SetClockDerateMatchesEquivalentFrequency) {
  // delay x d == period / d: a derated clock at f must behave exactly like
  // an underated clock at f*d (same jitter stream, no corrections).
  const auto plan = simulated_plan(design_, reference_location_1());
  ProjectionCircuit derated(design_, device_, plan, kWlX, nullptr, 42);
  ProjectionCircuit scaled(design_, device_, plan, kWlX, nullptr, 42);
  derated.set_clock(300.0, 0.8);
  scaled.set_clock(300.0 * 0.8, 1.0);
  EXPECT_DOUBLE_EQ(derated.clock_mhz(), 300.0);  // nominal excludes derate
  EXPECT_DOUBLE_EQ(scaled.clock_mhz(), 240.0);

  Rng rng(11);
  std::vector<double> ya, yb;
  for (int s = 0; s < 40; ++s) {
    const auto codes = random_codes(rng);
    derated.project(codes, ya);
    scaled.project(codes, yb);
    ASSERT_EQ(ya.size(), yb.size());
    for (std::size_t k = 0; k < ya.size(); ++k)
      ASSERT_EQ(ya[k], yb[k]) << "sample " << s << " dim " << k;
  }
}

TEST_F(CompiledProjection, ProjectSettledMatchesExactReference) {
  const auto plan = simulated_plan(design_, reference_location_1());
  ProjectionCircuit circuit(design_, device_, plan, kWlX, nullptr, 3);

  Rng rng(23);
  std::vector<std::vector<std::uint32_t>> requests;
  for (int i = 0; i < 130; ++i) requests.push_back(random_codes(rng));
  std::vector<const std::vector<std::uint32_t>*> batch;
  for (const auto& r : requests) batch.push_back(&r);

  std::vector<std::vector<double>> ys;
  circuit.project_settled(batch, ys);
  ASSERT_EQ(ys.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto exact = circuit.project_exact(requests[i]);
    ASSERT_EQ(ys[i].size(), exact.size());
    for (std::size_t k = 0; k < exact.size(); ++k)
      ASSERT_EQ(ys[i][k], exact[k]) << "request " << i << " dim " << k;
  }
}

}  // namespace
}  // namespace oclp
