// Lowering edge cases of the compiled levelized datapath: constant cones,
// free-cell (Buf/Const) elision, dead-cell sweeping, and the compiled
// ProjectionCircuit's clock/derate equivalence.
#include "netlist/compiled.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/rng.hpp"
#include "core/circuit_eval.hpp"
#include "core/design.hpp"
#include "fabric/calibration.hpp"
#include "fabric/timing_annotation.hpp"
#include "mult/multiplier.hpp"
#include "netlist/netlist.hpp"
#include "timing/overclock_sim.hpp"

namespace oclp {
namespace {

TEST(CompiledNetlist, AllConstantConeFoldsAway) {
  NetlistBuilder nb;
  const auto in = nb.add_inputs(2);
  const auto c0 = nb.const0();
  const auto c1 = nb.const1();
  const auto n1 = nb.and_(in[0], c0);  // provably 0
  const auto n2 = nb.or_(c1, in[1]);   // provably 1
  const auto n3 = nb.xor_(n1, n2);     // both fanins constant -> provably 1
  nb.mark_output(n1);
  nb.mark_output(n2);
  nb.mark_output(n3);
  const Netlist nl = nb.build();

  const CompiledNetlist cnl = CompiledNetlist::compile(nl);
  EXPECT_EQ(cnl.num_cells(), 0u);
  EXPECT_EQ(cnl.num_levels(), 0u);
  EXPECT_EQ(cnl.stats().elided_free, 2u);      // the two Const cells
  EXPECT_EQ(cnl.stats().folded_constant, 3u);  // n1, n2, n3
  EXPECT_EQ(cnl.out_net(0), CompiledNetlist::kConst0Net);
  EXPECT_EQ(cnl.out_net(1), CompiledNetlist::kConst1Net);
  EXPECT_EQ(cnl.out_net(2), CompiledNetlist::kConst1Net);

  std::vector<std::uint8_t> scratch, out;
  for (std::uint8_t a = 0; a < 2; ++a)
    for (std::uint8_t b = 0; b < 2; ++b) {
      const std::vector<std::uint8_t> inputs{a, b};
      cnl.eval_outputs(inputs, scratch, out);
      EXPECT_EQ(out, nl.evaluate_outputs(inputs));
    }

  // A constant cone never transitions: even an absurdly short period
  // captures the functional value.
  OverclockSim sim(nl, std::vector<double>(nl.num_cells(), 0.7));
  sim.reset({0, 0});
  const auto captured = sim.step({1, 1}, 1e-9);
  EXPECT_EQ(captured, nl.evaluate_outputs({1, 1}));
  EXPECT_EQ(sim.last_output_settle_ns(), 0.0);
}

TEST(CompiledNetlist, BufChainsFeedingOutputsKeepSettleExact) {
  NetlistBuilder nb;
  const auto a = nb.add_input();
  const auto b1 = nb.add_cell(CellType::Buf, a);
  const auto b2 = nb.add_cell(CellType::Buf, b1);
  const auto g = nb.not_(a);
  const auto b3 = nb.add_cell(CellType::Buf, g);
  const auto b4 = nb.add_cell(CellType::Buf, b3);
  nb.mark_output(b2);  // input reaches an output through free cells only
  nb.mark_output(b4);
  const Netlist nl = nb.build();

  const CompiledNetlist cnl = CompiledNetlist::compile(nl);
  EXPECT_EQ(cnl.stats().elided_free, 4u);
  EXPECT_EQ(cnl.num_cells(), 1u);  // only the Not survives
  EXPECT_EQ(cnl.out_net(0), cnl.input_net(0));
  EXPECT_EQ(cnl.out_net(1), cnl.cell_net(0));

  // Buffers are annotated with (ignored) nonzero delays on purpose: the
  // chain must contribute exactly zero to the settle profile.
  std::vector<double> delays(nl.num_cells(), 123.0);
  delays[static_cast<std::size_t>(g) - nl.num_inputs()] = 0.3;
  OverclockSim sim(nl, delays);
  OverclockSim::State st;
  sim.reset(st, {0});
  sim.advance(st, {1});
  EXPECT_EQ(st.out_next, (std::vector<std::uint8_t>{1, 0}));
  EXPECT_EQ(st.out_prev, (std::vector<std::uint8_t>{0, 1}));
  EXPECT_EQ(st.out_settle[0], 0.0);  // registered input through Bufs
  EXPECT_EQ(st.out_settle[1], 0.3);  // exactly the Not's delay
  EXPECT_EQ(st.last_output_settle_ns, 0.3);
}

TEST(CompiledNetlist, DeadCellsWithSideFaninAreSweptOnlyWhenRequested) {
  NetlistBuilder nb;
  const auto in = nb.add_inputs(2);
  const auto live = nb.xor_(in[0], in[1]);
  const auto dead1 = nb.and_(live, in[0]);  // side fanin on a live net
  const auto dead2 = nb.not_(dead1);
  (void)dead2;
  nb.mark_output(live);
  const Netlist nl = nb.build();

  const CompiledNetlist swept = CompiledNetlist::compile(nl);
  EXPECT_EQ(swept.stats().swept_dead, 2u);
  EXPECT_EQ(swept.num_cells(), 1u);
  EXPECT_EQ(swept.out_net(0), swept.cell_net(0));
  EXPECT_EQ(swept.alias_of(dead2), -1);  // swept nets lose their alias

  // Structural mode (what STA uses): nothing folded, nothing swept, every
  // original net still addressable.
  CompileOptions structural;
  structural.fold_constants = false;
  structural.sweep_dead = false;
  const CompiledNetlist full = CompiledNetlist::compile(nl, structural);
  EXPECT_EQ(full.stats().swept_dead, 0u);
  EXPECT_EQ(full.num_cells(), 3u);
  for (std::int32_t n = 0; n < static_cast<std::int32_t>(nl.num_nets()); ++n)
    EXPECT_GE(full.alias_of(n), 0) << "net " << n;

  // The swept form still evaluates the outputs identically.
  std::vector<std::uint8_t> scratch, out;
  for (std::uint8_t a = 0; a < 2; ++a)
    for (std::uint8_t b = 0; b < 2; ++b) {
      const std::vector<std::uint8_t> inputs{a, b};
      swept.eval_outputs(inputs, scratch, out);
      EXPECT_EQ(out, nl.evaluate_outputs(inputs));
    }
}

TEST(CompiledNetlist, LevelsAreContiguousAndRespectFanins) {
  Rng rng(7);
  NetlistBuilder nb;
  nb.add_inputs(4);
  for (int i = 0; i < 40; ++i) {
    const auto pick = [&] {
      return static_cast<std::int32_t>(rng.uniform_u64(nb.num_nets()));
    };
    nb.add_cell(CellType::Nand2, pick(), pick());
  }
  for (int o = 0; o < 6; ++o)
    nb.mark_output(static_cast<std::int32_t>(rng.uniform_u64(nb.num_nets())));
  const Netlist nl = nb.build();

  const CompiledNetlist cnl = CompiledNetlist::compile(nl);
  ASSERT_GE(cnl.num_levels(), 1u);
  EXPECT_EQ(cnl.level_begin(0), 0u);
  EXPECT_EQ(cnl.level_begin(cnl.num_levels()), cnl.num_cells());
  const auto base = cnl.cell_net(0);
  for (std::size_t l = 0; l < cnl.num_levels(); ++l) {
    EXPECT_LT(cnl.level_begin(l), cnl.level_begin(l + 1));  // non-empty
    for (std::size_t ci = cnl.level_begin(l); ci < cnl.level_begin(l + 1); ++ci)
      for (int k = 0; k < 3; ++k) {
        const auto f = cnl.fanin(ci, k);
        if (f >= base) {  // a cell fanin must live in a strictly lower level
          EXPECT_LT(static_cast<std::size_t>(f - base), cnl.level_begin(l));
        }
      }
  }
}

TEST(PsGrid, CalibrationDelaysRoundTripBitwise) {
  // Property over real calibration-produced delays: every annotate_timing
  // delay quantises exactly and dequantises back to the identical double —
  // the invariant that makes the integer and double settle kernels agree
  // bitwise. Cover several placements (each re-rolls routing draws).
  Device device(reference_device_config(), kReferenceDieSeed);
  device.set_temperature(kCharacterisationTempC);
  const Netlist nl = make_multiplier_arch(MultArch::Array, 6, 6);
  for (std::uint64_t seed : {1ull, 9ull, 77ull}) {
    Placement place = reference_location_1();
    place.route_seed = seed;
    const auto delays = annotate_timing(nl, device, place);
    for (std::size_t i = 0; i < delays.size(); ++i) {
      std::uint32_t ticks = 0;
      ASSERT_TRUE(PsGrid::try_ticks(delays[i], ticks)) << "cell " << i;
      ASSERT_EQ(PsGrid::to_ns(ticks), delays[i]) << "cell " << i;
      // snap is idempotent on grid points.
      ASSERT_EQ(PsGrid::snap_ns(delays[i]), delays[i]) << "cell " << i;
    }
  }
}

TEST(PsGrid, TicksRejectOffGridNegativeAndOversize) {
  std::uint32_t t = 0;
  EXPECT_TRUE(PsGrid::try_ticks(0.0, t));
  EXPECT_EQ(t, 0u);
  EXPECT_TRUE(PsGrid::try_ticks(0.5, t));
  EXPECT_EQ(t, 512u);
  // A decimal picosecond is NOT on the binary grid (0.001·1024 = 1.024):
  // exactly why the grid is 2^-10 ns and not 10^-3 ns.
  EXPECT_FALSE(PsGrid::try_ticks(0.001, t));
  EXPECT_FALSE(PsGrid::try_ticks(-0.5, t));
  EXPECT_FALSE(PsGrid::try_ticks(std::nan(""), t));
  // 2^32 ticks = 4194304 ns: first value past the uint32 range.
  EXPECT_TRUE(PsGrid::try_ticks(4194304.0 - PsGrid::to_ns(1), t));
  EXPECT_EQ(t, 0xFFFFFFFFu);
  EXPECT_FALSE(PsGrid::try_ticks(4194304.0, t));
}

TEST(PsGrid, PeriodThresholdMatchesDoubleCompareForJitteredPeriods) {
  // The capture rule `settle > period` must agree between the double path
  // (grid-exact settle doubles) and the integer path (ticks vs
  // ⌊period·2^10⌋) for arbitrary non-grid periods — including exact ties.
  Rng rng(123);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto ticks = static_cast<std::uint32_t>(rng.uniform_u64(1u << 14));
    double period = rng.uniform(0.0, 16.0);
    if (trial % 7 == 0) period = PsGrid::to_ns(ticks);  // force a tie
    ASSERT_EQ(PsGrid::to_ns(ticks) > period,
              ticks > PsGrid::period_ticks(period))
        << "ticks " << ticks << " period " << period;
  }
  // Degenerate and saturating periods.
  EXPECT_EQ(PsGrid::period_ticks(-1.0), 0u);
  EXPECT_EQ(PsGrid::period_ticks(0.0), 0u);
  EXPECT_EQ(PsGrid::period_ticks(1e30),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(CompiledNetlist, QuantiseDelaysRejectsOffGridNamingTheCell) {
  NetlistBuilder nb;
  const auto in = nb.add_inputs(2);
  const auto n1 = nb.and_(in[0], in[1]);
  const auto n2 = nb.xor_(n1, in[0]);
  nb.mark_output(n2);
  const Netlist nl = nb.build();
  const CompiledNetlist cnl = CompiledNetlist::compile(nl);

  std::vector<double> delays{0.5, 0.1};  // 0.1·1024 = 102.4: off-grid
  try {
    cnl.quantise_delays(cnl.gather_delays(delays));
    FAIL() << "off-grid delay must be rejected";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("delay of cell 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("grid"), std::string::npos) << msg;
  }
  std::vector<std::uint32_t> ticks;
  EXPECT_FALSE(cnl.try_quantise_delays(cnl.gather_delays(delays), ticks));

  // The same contract one layer up: IntegerExact throws, Auto falls back
  // to the double kernel, DoubleRef never lowers.
  EXPECT_THROW(OverclockSim(nl, delays, TimingMode::IntegerExact), CheckError);
  EXPECT_FALSE(OverclockSim(nl, delays, TimingMode::Auto).integer_kernel());
  const std::vector<double> exact{0.5, 0.25};
  EXPECT_TRUE(OverclockSim(nl, exact, TimingMode::Auto).integer_kernel());
  EXPECT_TRUE(OverclockSim(nl, exact, TimingMode::IntegerExact).integer_kernel());
  EXPECT_FALSE(OverclockSim(nl, exact, TimingMode::DoubleRef).integer_kernel());
}

TEST(CompiledNetlist, QuantiseDelaysRejectsWorstCasePathOverflow) {
  // Two cells of 2^31 ticks each: either alone fits uint32, their chained
  // worst-case settle path does not.
  const double half_range_ns = PsGrid::to_ns(1u << 31);
  NetlistBuilder nb;
  const auto a = nb.add_input();
  const auto n1 = nb.not_(a);
  const auto n2 = nb.not_(n1);
  nb.mark_output(n2);
  const Netlist nl = nb.build();
  const CompiledNetlist cnl = CompiledNetlist::compile(nl);

  const std::vector<double> delays(2, half_range_ns);
  try {
    cnl.quantise_delays(cnl.gather_delays(delays));
    FAIL() << "overflowing path must be rejected";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("overflows"), std::string::npos)
        << e.what();
  }
  std::vector<std::uint32_t> ticks;
  EXPECT_FALSE(cnl.try_quantise_delays(cnl.gather_delays(delays), ticks));
  EXPECT_FALSE(OverclockSim(nl, delays, TimingMode::Auto).integer_kernel());

  // Halving one link brings the path back under the range.
  const std::vector<double> fits{half_range_ns, PsGrid::to_ns((1u << 31) - 1)};
  std::uint64_t worst = 0;
  cnl.quantise_delays(cnl.gather_delays(fits), &worst);
  EXPECT_EQ(worst, (1ull << 32) - 1);
  OverclockSim sim(nl, fits, TimingMode::IntegerExact);
  EXPECT_EQ(sim.critical_path_ticks(), (1ull << 32) - 1);
}

class CompiledProjection : public ::testing::Test {
 protected:
  CompiledProjection() : device_(reference_device_config(), kReferenceDieSeed) {
    device_.set_temperature(kCharacterisationTempC);
    const MultConfig cfg{MultArch::Array, 5, 1};
    design_.columns.push_back(make_column({0.75, -0.5, 0.25, 0.125}, cfg));
    design_.columns.push_back(make_column({-0.25, 0.625, -0.75, 0.5}, cfg));
    design_.target_freq_mhz = 310.0;
  }

  std::vector<std::uint32_t> random_codes(Rng& rng) const {
    std::vector<std::uint32_t> codes(design_.dims_p());
    for (auto& c : codes)
      c = static_cast<std::uint32_t>(rng.uniform_u64(1u << kWlX));
    return codes;
  }

  static constexpr int kWlX = 7;
  Device device_;
  LinearProjectionDesign design_;
};

TEST_F(CompiledProjection, SetClockDerateMatchesEquivalentFrequency) {
  // delay x d == period / d: a derated clock at f must behave exactly like
  // an underated clock at f*d (same jitter stream, no corrections).
  const auto plan = simulated_plan(design_, reference_location_1());
  ProjectionCircuit derated(design_, device_, plan, kWlX, nullptr, 42);
  ProjectionCircuit scaled(design_, device_, plan, kWlX, nullptr, 42);
  derated.set_clock(300.0, 0.8);
  scaled.set_clock(300.0 * 0.8, 1.0);
  EXPECT_DOUBLE_EQ(derated.clock_mhz(), 300.0);  // nominal excludes derate
  EXPECT_DOUBLE_EQ(scaled.clock_mhz(), 240.0);

  Rng rng(11);
  std::vector<double> ya, yb;
  for (int s = 0; s < 40; ++s) {
    const auto codes = random_codes(rng);
    derated.project(codes, ya);
    scaled.project(codes, yb);
    ASSERT_EQ(ya.size(), yb.size());
    for (std::size_t k = 0; k < ya.size(); ++k)
      ASSERT_EQ(ya[k], yb[k]) << "sample " << s << " dim " << k;
  }
}

TEST_F(CompiledProjection, ProjectSettledMatchesExactReference) {
  const auto plan = simulated_plan(design_, reference_location_1());
  ProjectionCircuit circuit(design_, device_, plan, kWlX, nullptr, 3);

  Rng rng(23);
  std::vector<std::vector<std::uint32_t>> requests;
  for (int i = 0; i < 130; ++i) requests.push_back(random_codes(rng));
  std::vector<const std::vector<std::uint32_t>*> batch;
  for (const auto& r : requests) batch.push_back(&r);

  std::vector<std::vector<double>> ys;
  circuit.project_settled(batch, ys);
  ASSERT_EQ(ys.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto exact = circuit.project_exact(requests[i]);
    ASSERT_EQ(ys[i].size(), exact.size());
    for (std::size_t k = 0; k < exact.size(); ++k)
      ASSERT_EQ(ys[i][k], exact[k]) << "request " << i << " dim " << k;
  }
}

}  // namespace
}  // namespace oclp
