#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include "mult/bitcodec.hpp"

namespace oclp {
namespace {

TEST(CellModel, ArityAndNames) {
  EXPECT_EQ(cell_arity(CellType::Const0), 0);
  EXPECT_EQ(cell_arity(CellType::Not), 1);
  EXPECT_EQ(cell_arity(CellType::And2), 2);
  EXPECT_EQ(cell_arity(CellType::Maj3), 3);
  EXPECT_STREQ(cell_name(CellType::Xor3), "XOR3");
}

TEST(CellModel, TruthTables) {
  // Exhaustive over all input combinations for every 2-input cell.
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      EXPECT_EQ(cell_eval(CellType::And2, a, b, 0), a && b);
      EXPECT_EQ(cell_eval(CellType::Or2, a, b, 0), a || b);
      EXPECT_EQ(cell_eval(CellType::Xor2, a, b, 0), a != b);
      EXPECT_EQ(cell_eval(CellType::Nand2, a, b, 0), !(a && b));
      EXPECT_EQ(cell_eval(CellType::Nor2, a, b, 0), !(a || b));
      EXPECT_EQ(cell_eval(CellType::Xnor2, a, b, 0), a == b);
      EXPECT_EQ(cell_eval(CellType::AndNot2, a, b, 0), a && !b);
      for (int c = 0; c <= 1; ++c) {
        EXPECT_EQ(cell_eval(CellType::Maj3, a, b, c), a + b + c >= 2);
        EXPECT_EQ(cell_eval(CellType::Xor3, a, b, c), (a + b + c) % 2 == 1);
        EXPECT_EQ(cell_eval(CellType::Mux2, a, b, c), c ? b : a);
      }
    }
  }
  EXPECT_FALSE(cell_eval(CellType::Const0, 1, 1, 1));
  EXPECT_TRUE(cell_eval(CellType::Const1, 0, 0, 0));
  EXPECT_TRUE(cell_eval(CellType::Buf, 1, 0, 0));
  EXPECT_FALSE(cell_eval(CellType::Not, 1, 0, 0));
}

TEST(Builder, InputThenCellNumbering) {
  NetlistBuilder nb;
  const auto a = nb.add_input();
  const auto b = nb.add_input();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  const auto g = nb.and_(a, b);
  EXPECT_EQ(g, 2);
  nb.mark_output(g);
  const Netlist nl = nb.build();
  EXPECT_EQ(nl.num_inputs(), 2u);
  EXPECT_EQ(nl.num_cells(), 1u);
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.driver_of(0), -1);
  EXPECT_EQ(nl.driver_of(2), 0);
}

TEST(Builder, InputsAfterCellsThrow) {
  NetlistBuilder nb;
  const auto a = nb.add_input();
  nb.not_(a);
  EXPECT_THROW(nb.add_input(), CheckError);
}

TEST(Builder, ForwardReferenceThrows) {
  NetlistBuilder nb;
  const auto a = nb.add_input();
  EXPECT_THROW(nb.and_(a, 99), CheckError);
}

TEST(Builder, BuildWithoutOutputsThrows) {
  NetlistBuilder nb;
  nb.add_input();
  EXPECT_THROW(nb.build(), CheckError);
}

TEST(Builder, ConstantsAreShared) {
  NetlistBuilder nb;
  nb.add_input();
  const auto c0a = nb.const0();
  const auto c0b = nb.const0();
  const auto c1 = nb.const1();
  EXPECT_EQ(c0a, c0b);
  EXPECT_NE(c0a, c1);
  nb.mark_output(c1);
  const Netlist nl = nb.build();
  EXPECT_EQ(nl.logic_elements(), 0u);  // constants are free
}

TEST(Netlist, EvaluateXorChain) {
  NetlistBuilder nb;
  const auto ins = nb.add_inputs(3);
  const auto x = nb.xor_(nb.xor_(ins[0], ins[1]), ins[2]);
  nb.mark_output(x);
  const Netlist nl = nb.build();
  for (int v = 0; v < 8; ++v) {
    const auto out = nl.evaluate_outputs(to_bits(v, 3));
    EXPECT_EQ(out[0], __builtin_popcount(v) % 2);
  }
}

TEST(Netlist, LevelsCountLogicDepth) {
  NetlistBuilder nb;
  const auto ins = nb.add_inputs(2);
  const auto g1 = nb.and_(ins[0], ins[1]);   // level 1
  const auto g2 = nb.xor_(g1, ins[0]);       // level 2
  nb.mark_output(g2);
  const Netlist nl = nb.build();
  const auto lvl = nl.levels();
  EXPECT_EQ(lvl[ins[0]], 0);
  EXPECT_EQ(lvl[g1], 1);
  EXPECT_EQ(lvl[g2], 2);
  EXPECT_EQ(nl.depth(), 2);
}

TEST(Netlist, BufAndConstantsDoNotAddDepth) {
  NetlistBuilder nb;
  const auto a = nb.add_input();
  const auto buf = nb.add_cell(CellType::Buf, a);
  const auto g = nb.not_(buf);
  nb.mark_output(g);
  const Netlist nl = nb.build();
  EXPECT_EQ(nl.depth(), 1);
  EXPECT_EQ(nl.logic_elements(), 1u);
}

TEST(HalfAdder, TruthTable) {
  NetlistBuilder nb;
  const auto ins = nb.add_inputs(2);
  const auto [s, c] = nb.half_adder(ins[0], ins[1]);
  nb.mark_output(s);
  nb.mark_output(c);
  const Netlist nl = nb.build();
  for (int a = 0; a <= 1; ++a)
    for (int b = 0; b <= 1; ++b) {
      const auto out = nl.evaluate_outputs({static_cast<std::uint8_t>(a),
                                            static_cast<std::uint8_t>(b)});
      EXPECT_EQ(out[0], (a + b) & 1);
      EXPECT_EQ(out[1], (a + b) >> 1);
    }
}

TEST(FullAdder, TruthTable) {
  NetlistBuilder nb;
  const auto ins = nb.add_inputs(3);
  const auto [s, c] = nb.full_adder(ins[0], ins[1], ins[2]);
  nb.mark_output(s);
  nb.mark_output(c);
  const Netlist nl = nb.build();
  for (int v = 0; v < 8; ++v) {
    const auto bits = to_bits(v, 3);
    const int total = bits[0] + bits[1] + bits[2];
    const auto out = nl.evaluate_outputs(bits);
    EXPECT_EQ(out[0], total & 1);
    EXPECT_EQ(out[1], total >> 1);
  }
}

class RippleAdderWidth : public ::testing::TestWithParam<int> {};

TEST_P(RippleAdderWidth, ExhaustiveAddition) {
  const int w = GetParam();
  NetlistBuilder nb;
  const auto a = nb.add_inputs(w);
  const auto b = nb.add_inputs(w);
  nb.mark_outputs(nb.ripple_add(a, b));
  const Netlist nl = nb.build();
  const int n = 1 << w;
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      auto bits = to_bits(x, w);
      append_bits(bits, y, w);
      const auto out = nl.evaluate_outputs(bits);
      EXPECT_EQ(from_bits(out), static_cast<std::uint64_t>(x + y))
          << "w=" << w << " x=" << x << " y=" << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, RippleAdderWidth, ::testing::Values(1, 2, 3, 4, 5));

TEST(Netlist, WrongInputCountThrows) {
  NetlistBuilder nb;
  const auto a = nb.add_inputs(2);
  nb.mark_output(nb.and_(a[0], a[1]));
  const Netlist nl = nb.build();
  EXPECT_THROW(nl.evaluate({1}), CheckError);
}

}  // namespace
}  // namespace oclp
