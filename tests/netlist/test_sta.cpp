#include "netlist/sta.hpp"

#include <gtest/gtest.h>

namespace oclp {
namespace {

TEST(Sta, HandComputedArrivals) {
  NetlistBuilder nb;
  const auto ins = nb.add_inputs(3);
  const auto g1 = nb.and_(ins[0], ins[1]);  // cell 0
  const auto g2 = nb.or_(g1, ins[2]);       // cell 1
  const auto g3 = nb.not_(ins[2]);          // cell 2
  nb.mark_output(g2);
  nb.mark_output(g3);
  const Netlist nl = nb.build();

  const auto res = static_timing(nl, {1.0, 2.0, 0.5});
  EXPECT_DOUBLE_EQ(res.arrival_ns[ins[0]], 0.0);
  EXPECT_DOUBLE_EQ(res.arrival_ns[g1], 1.0);
  EXPECT_DOUBLE_EQ(res.arrival_ns[g2], 3.0);  // 1.0 + 2.0
  EXPECT_DOUBLE_EQ(res.arrival_ns[g3], 0.5);
  EXPECT_DOUBLE_EQ(res.critical_path_ns, 3.0);
  EXPECT_EQ(res.critical_output, g2);
}

TEST(Sta, FreeCellsAddNoDelay) {
  NetlistBuilder nb;
  const auto a = nb.add_input();
  const auto buf = nb.add_cell(CellType::Buf, a);
  const auto g = nb.not_(buf);
  nb.mark_output(g);
  const Netlist nl = nb.build();
  const auto res = static_timing(nl, {100.0, 2.0});  // buf "delay" ignored
  EXPECT_DOUBLE_EQ(res.critical_path_ns, 2.0);
}

TEST(Sta, CriticalPathIsMaxOverOutputsOnly) {
  NetlistBuilder nb;
  const auto ins = nb.add_inputs(2);
  const auto deep = nb.not_(nb.not_(nb.not_(ins[0])));  // internal depth 3
  const auto shallow = nb.and_(ins[0], ins[1]);
  (void)deep;  // never marked as output
  nb.mark_output(shallow);
  const Netlist nl = nb.build();
  const auto res = static_timing(nl, std::vector<double>(nl.num_cells(), 1.0));
  EXPECT_DOUBLE_EQ(res.critical_path_ns, 1.0);
}

TEST(Sta, DelayVectorSizeMismatchThrows) {
  NetlistBuilder nb;
  const auto a = nb.add_inputs(2);
  nb.mark_output(nb.and_(a[0], a[1]));
  const Netlist nl = nb.build();
  EXPECT_THROW(static_timing(nl, {1.0, 1.0}), CheckError);
}

TEST(Sta, FmaxPeriodRoundTrip) {
  EXPECT_DOUBLE_EQ(fmax_mhz(5.0), 200.0);
  EXPECT_DOUBLE_EQ(period_ns(200.0), 5.0);
  EXPECT_NEAR(period_ns(fmax_mhz(3.21)), 3.21, 1e-12);
  EXPECT_THROW(fmax_mhz(0.0), CheckError);
  EXPECT_THROW(period_ns(-1.0), CheckError);
}

TEST(Sta, LongerDelaysNeverShortenThePath) {
  NetlistBuilder nb;
  const auto ins = nb.add_inputs(4);
  auto acc = ins[0];
  for (int i = 1; i < 4; ++i) acc = nb.xor_(acc, ins[i]);
  nb.mark_output(acc);
  const Netlist nl = nb.build();
  const auto base = static_timing(nl, std::vector<double>(nl.num_cells(), 1.0));
  auto slower = std::vector<double>(nl.num_cells(), 1.0);
  slower[1] = 2.5;
  const auto res = static_timing(nl, slower);
  EXPECT_GE(res.critical_path_ns, base.critical_path_ns);
}

}  // namespace
}  // namespace oclp
