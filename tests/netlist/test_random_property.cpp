// Property tests over randomly generated netlists: the structural
// invariants that every module above the netlist layer relies on must hold
// for arbitrary circuits, not just multipliers.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "netlist/netlist.hpp"
#include "netlist/sta.hpp"
#include "timing/overclock_sim.hpp"

namespace oclp {
namespace {

// A random combinational DAG: n_in inputs, n_cells random 1-3 input cells
// whose fanins are uniformly drawn among already-defined nets.
Netlist random_netlist(std::size_t n_in, std::size_t n_cells, std::size_t n_out,
                       Rng& rng) {
  static const CellType kTypes[] = {
      CellType::Not,  CellType::And2, CellType::Or2,   CellType::Xor2,
      CellType::Nand2, CellType::Nor2, CellType::Xnor2, CellType::AndNot2,
      CellType::Maj3, CellType::Xor3, CellType::Mux2};
  NetlistBuilder nb;
  nb.add_inputs(n_in);
  for (std::size_t i = 0; i < n_cells; ++i) {
    const CellType type = kTypes[rng.uniform_u64(std::size(kTypes))];
    const auto pick = [&] {
      return static_cast<std::int32_t>(rng.uniform_u64(nb.num_nets()));
    };
    const std::int32_t a = pick();
    const std::int32_t b = cell_arity(type) > 1 ? pick() : -1;
    const std::int32_t c = cell_arity(type) > 2 ? pick() : -1;
    nb.add_cell(type, a, b, c);
  }
  for (std::size_t o = 0; o < n_out; ++o)
    nb.mark_output(static_cast<std::int32_t>(
        rng.uniform_u64(n_in + n_cells)));
  return nb.build();
}

std::vector<std::uint8_t> random_inputs(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> in(n);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.uniform_u64(2));
  return in;
}

class RandomNetlist : public ::testing::TestWithParam<int> {};

TEST_P(RandomNetlist, LevelsAreConsistentWithTopology) {
  Rng rng(GetParam());
  const Netlist nl = random_netlist(6, 60, 8, rng);
  const auto lvl = nl.levels();
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) EXPECT_EQ(lvl[i], 0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i) {
    const Cell& c = nl.cells()[i];
    const int out_lvl = lvl[nl.num_inputs() + i];
    for (int k = 0; k < cell_arity(c.type); ++k)
      EXPECT_GE(out_lvl, lvl[c.in[k]] + (cell_is_free(c.type) ? 0 : 1));
  }
  EXPECT_LE(nl.depth(), static_cast<int>(nl.num_cells()));
}

TEST_P(RandomNetlist, StaArrivalsRespectFaninOrdering) {
  Rng rng(GetParam() + 100);
  const Netlist nl = random_netlist(5, 50, 6, rng);
  std::vector<double> delays(nl.num_cells());
  for (auto& d : delays) d = rng.uniform(0.1, 1.0);
  const auto sta = static_timing(nl, delays);
  for (std::size_t i = 0; i < nl.num_cells(); ++i) {
    const Cell& c = nl.cells()[i];
    const double out = sta.arrival_ns[nl.num_inputs() + i];
    for (int k = 0; k < cell_arity(c.type); ++k)
      EXPECT_GE(out + 1e-12, sta.arrival_ns[c.in[k]]);
  }
  // Critical path equals the max arrival over outputs.
  double max_out = 0.0;
  for (auto o : nl.outputs()) max_out = std::max(max_out, sta.arrival_ns[o]);
  EXPECT_DOUBLE_EQ(sta.critical_path_ns, max_out);
}

TEST_P(RandomNetlist, OverclockAtCriticalPathMatchesFunctionalModel) {
  // The foundational guarantee of the over-clocking simulator: sampled at
  // (or beyond) the STA critical path, every output equals the zero-delay
  // functional evaluation — for any circuit and any stimulus.
  Rng rng(GetParam() + 200);
  Netlist nl = random_netlist(7, 70, 10, rng);
  std::vector<double> delays(nl.num_cells(), 0.0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i)
    if (!cell_is_free(nl.cells()[i].type)) delays[i] = rng.uniform(0.05, 0.9);
  const double critical =
      std::max(static_timing(nl, delays).critical_path_ns, 1e-6);
  const Netlist reference = nl;  // evaluate() on a pristine copy
  OverclockSim sim(std::move(nl), std::move(delays));
  sim.reset(random_inputs(7, rng));
  for (int step = 0; step < 100; ++step) {
    const auto in = random_inputs(7, rng);
    const auto sampled = sim.step(in, critical);
    const auto truth = reference.evaluate_outputs(in);
    ASSERT_EQ(sampled, truth) << "seed " << GetParam() << " step " << step;
  }
}

TEST_P(RandomNetlist, SettleTimesNeverExceedSta) {
  Rng rng(GetParam() + 300);
  Netlist nl = random_netlist(6, 50, 8, rng);
  std::vector<double> delays(nl.num_cells(), 0.0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i)
    if (!cell_is_free(nl.cells()[i].type)) delays[i] = rng.uniform(0.05, 0.9);
  const double critical = static_timing(nl, delays).critical_path_ns;
  OverclockSim sim(std::move(nl), std::move(delays));
  sim.reset(random_inputs(6, rng));
  for (int step = 0; step < 100; ++step) {
    sim.step(random_inputs(6, rng), 1.0);
    ASSERT_LE(sim.last_output_settle_ns(), critical + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetlist, ::testing::Range(1, 11));

}  // namespace
}  // namespace oclp
