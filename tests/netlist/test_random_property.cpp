// Property tests over randomly generated netlists: the structural
// invariants that every module above the netlist layer relies on must hold
// for arbitrary circuits, not just multipliers.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "netlist/compiled.hpp"
#include "netlist/netlist.hpp"
#include "netlist/sta.hpp"
#include "timing/overclock_sim.hpp"

namespace oclp {
namespace {

// A random combinational DAG: n_in inputs, n_cells random 1-3 input cells
// whose fanins are uniformly drawn among already-defined nets.
Netlist random_netlist(std::size_t n_in, std::size_t n_cells, std::size_t n_out,
                       Rng& rng) {
  static const CellType kTypes[] = {
      CellType::Not,  CellType::And2, CellType::Or2,   CellType::Xor2,
      CellType::Nand2, CellType::Nor2, CellType::Xnor2, CellType::AndNot2,
      CellType::Maj3, CellType::Xor3, CellType::Mux2};
  NetlistBuilder nb;
  nb.add_inputs(n_in);
  for (std::size_t i = 0; i < n_cells; ++i) {
    const CellType type = kTypes[rng.uniform_u64(std::size(kTypes))];
    const auto pick = [&] {
      return static_cast<std::int32_t>(rng.uniform_u64(nb.num_nets()));
    };
    const std::int32_t a = pick();
    const std::int32_t b = cell_arity(type) > 1 ? pick() : -1;
    const std::int32_t c = cell_arity(type) > 2 ? pick() : -1;
    nb.add_cell(type, a, b, c);
  }
  for (std::size_t o = 0; o < n_out; ++o)
    nb.mark_output(static_cast<std::int32_t>(
        rng.uniform_u64(n_in + n_cells)));
  return nb.build();
}

std::vector<std::uint8_t> random_inputs(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> in(n);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.uniform_u64(2));
  return in;
}

class RandomNetlist : public ::testing::TestWithParam<int> {};

TEST_P(RandomNetlist, LevelsAreConsistentWithTopology) {
  Rng rng(GetParam());
  const Netlist nl = random_netlist(6, 60, 8, rng);
  const auto lvl = nl.levels();
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) EXPECT_EQ(lvl[i], 0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i) {
    const Cell& c = nl.cells()[i];
    const int out_lvl = lvl[nl.num_inputs() + i];
    for (int k = 0; k < cell_arity(c.type); ++k)
      EXPECT_GE(out_lvl, lvl[c.in[k]] + (cell_is_free(c.type) ? 0 : 1));
  }
  EXPECT_LE(nl.depth(), static_cast<int>(nl.num_cells()));
}

TEST_P(RandomNetlist, StaArrivalsRespectFaninOrdering) {
  Rng rng(GetParam() + 100);
  const Netlist nl = random_netlist(5, 50, 6, rng);
  std::vector<double> delays(nl.num_cells());
  for (auto& d : delays) d = rng.uniform(0.1, 1.0);
  const auto sta = static_timing(nl, delays);
  for (std::size_t i = 0; i < nl.num_cells(); ++i) {
    const Cell& c = nl.cells()[i];
    const double out = sta.arrival_ns[nl.num_inputs() + i];
    for (int k = 0; k < cell_arity(c.type); ++k)
      EXPECT_GE(out + 1e-12, sta.arrival_ns[c.in[k]]);
  }
  // Critical path equals the max arrival over outputs.
  double max_out = 0.0;
  for (auto o : nl.outputs()) max_out = std::max(max_out, sta.arrival_ns[o]);
  EXPECT_DOUBLE_EQ(sta.critical_path_ns, max_out);
}

TEST_P(RandomNetlist, OverclockAtCriticalPathMatchesFunctionalModel) {
  // The foundational guarantee of the over-clocking simulator: sampled at
  // (or beyond) the STA critical path, every output equals the zero-delay
  // functional evaluation — for any circuit and any stimulus.
  Rng rng(GetParam() + 200);
  Netlist nl = random_netlist(7, 70, 10, rng);
  std::vector<double> delays(nl.num_cells(), 0.0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i)
    if (!cell_is_free(nl.cells()[i].type)) delays[i] = rng.uniform(0.05, 0.9);
  const double critical =
      std::max(static_timing(nl, delays).critical_path_ns, 1e-6);
  const Netlist reference = nl;  // evaluate() on a pristine copy
  OverclockSim sim(std::move(nl), std::move(delays));
  sim.reset(random_inputs(7, rng));
  for (int step = 0; step < 100; ++step) {
    const auto in = random_inputs(7, rng);
    const auto sampled = sim.step(in, critical);
    const auto truth = reference.evaluate_outputs(in);
    ASSERT_EQ(sampled, truth) << "seed " << GetParam() << " step " << step;
  }
}

TEST_P(RandomNetlist, SettleTimesNeverExceedSta) {
  Rng rng(GetParam() + 300);
  Netlist nl = random_netlist(6, 50, 8, rng);
  std::vector<double> delays(nl.num_cells(), 0.0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i)
    if (!cell_is_free(nl.cells()[i].type)) delays[i] = rng.uniform(0.05, 0.9);
  const double critical = static_timing(nl, delays).critical_path_ns;
  OverclockSim sim(std::move(nl), std::move(delays));
  sim.reset(random_inputs(6, rng));
  for (int step = 0; step < 100; ++step) {
    sim.step(random_inputs(6, rng), 1.0);
    ASSERT_LE(sim.last_output_settle_ns(), critical + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetlist, ::testing::Range(1, 11));

// --- Compiled-vs-interpreted golden equivalence -----------------------------

// Random DAG over the full cell alphabet, including the free cells
// (Buf/Const) the lowering elides and the constant cones it folds.
Netlist random_netlist_full(std::size_t n_in, std::size_t n_cells,
                            std::size_t n_out, Rng& rng) {
  static const CellType kTypes[] = {
      CellType::Const0, CellType::Const1, CellType::Buf,     CellType::Not,
      CellType::And2,   CellType::Or2,    CellType::Xor2,    CellType::Nand2,
      CellType::Nor2,   CellType::Xnor2,  CellType::AndNot2, CellType::Maj3,
      CellType::Xor3,   CellType::Mux2};
  NetlistBuilder nb;
  nb.add_inputs(n_in);
  for (std::size_t i = 0; i < n_cells; ++i) {
    const CellType type = kTypes[rng.uniform_u64(std::size(kTypes))];
    const auto pick = [&] {
      return static_cast<std::int32_t>(rng.uniform_u64(nb.num_nets()));
    };
    const std::int32_t a = cell_arity(type) > 0 ? pick() : -1;
    const std::int32_t b = cell_arity(type) > 1 ? pick() : -1;
    const std::int32_t c = cell_arity(type) > 2 ? pick() : -1;
    nb.add_cell(type, a, b, c);
  }
  for (std::size_t o = 0; o < n_out; ++o)
    nb.mark_output(static_cast<std::int32_t>(rng.uniform_u64(n_in + n_cells)));
  return nb.build();
}

// Cell-at-a-time interpretation of the over-clocking timing model over the
// original netlist — the pre-lowering OverclockSim evaluation, kept here
// as the golden model the compiled kernel must match bit for bit (values
// AND settle times; free cells contribute no delay regardless of their
// annotation).
struct InterpretedSim {
  const Netlist& nl;
  std::vector<double> delay;
  std::vector<std::uint8_t> prev, next;
  std::vector<double> settle;
  std::vector<double> out_settle;
  std::vector<std::uint8_t> out_prev, out_next;
  double worst = 0.0;

  InterpretedSim(const Netlist& n, std::vector<double> d)
      : nl(n), delay(std::move(d)) {}

  void reset(const std::vector<std::uint8_t>& in) {
    prev = nl.evaluate(in);
    next = prev;
    settle.assign(nl.num_nets(), 0.0);
    out_settle.assign(nl.outputs().size(), 0.0);
    out_prev.assign(nl.outputs().size(), 0);
    out_next.assign(nl.outputs().size(), 0);
  }

  void advance(const std::vector<std::uint8_t>& in) {
    const std::size_t ni = nl.num_inputs();
    for (std::size_t i = 0; i < ni; ++i) {
      next[i] = in[i];
      settle[i] = 0.0;
    }
    const auto& cells = nl.cells();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      const std::size_t out = ni + i;
      const int arity = cell_arity(c.type);
      const bool a = arity > 0 && next[c.in[0]];
      const bool b = arity > 1 && next[c.in[1]];
      const bool cc = arity > 2 && next[c.in[2]];
      const auto v = static_cast<std::uint8_t>(cell_eval(c.type, a, b, cc));
      next[out] = v;
      if (v == prev[out]) {
        settle[out] = 0.0;
        continue;
      }
      double launch = 0.0;
      for (int k = 0; k < arity; ++k)
        if (next[c.in[k]] != prev[c.in[k]])
          launch = std::max(launch, settle[c.in[k]]);
      settle[out] = launch + (cell_is_free(c.type) ? 0.0 : delay[i]);
    }
    worst = 0.0;
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
      const auto n = nl.outputs()[o];
      worst = std::max(worst, settle[n]);
      out_settle[o] = settle[n];
      out_prev[o] = prev[n];
      out_next[o] = next[n];
    }
    prev = next;
  }

  std::vector<std::uint8_t> capture(double period) const {
    std::vector<std::uint8_t> out(out_settle.size());
    for (std::size_t k = 0; k < out.size(); ++k)
      out[k] = out_settle[k] <= period ? out_next[k] : out_prev[k];
    return out;
  }
};

TEST_P(RandomNetlist, CompiledSimMatchesInterpretedGolden) {
  Rng rng(GetParam() + 400);
  const Netlist nl = random_netlist_full(7, 80, 10, rng);
  // Free cells get random (ignored) delays on purpose: the lowering must
  // not let them leak into the settle profile.
  std::vector<double> delays(nl.num_cells());
  for (auto& d : delays) d = rng.uniform(0.05, 0.9);

  InterpretedSim ref(nl, delays);
  OverclockSim sim(nl, delays);
  OverclockSim::State st;

  const auto first = random_inputs(7, rng);
  ref.reset(first);
  sim.reset(st, first);
  double max_settle = 1.0;
  for (int step = 0; step < 60; ++step) {
    const auto in = random_inputs(7, rng);
    ref.advance(in);
    sim.advance(st, in);
    ASSERT_EQ(st.out_next, ref.out_next) << "seed " << GetParam() << " step " << step;
    ASSERT_EQ(st.out_prev, ref.out_prev) << "seed " << GetParam() << " step " << step;
    ASSERT_EQ(st.out_settle, ref.out_settle)
        << "seed " << GetParam() << " step " << step;
    ASSERT_EQ(st.last_output_settle_ns, ref.worst);
    max_settle = std::max(max_settle, ref.worst);
    // Bitwise-identical captures at random periods straddling the settle
    // profile (including periods shorter than every transition).
    std::vector<std::uint8_t> got;
    for (int s = 0; s < 4; ++s) {
      const double period = rng.uniform(1e-3, max_settle + 0.2);
      sim.capture(st, period, got);
      ASSERT_EQ(got, ref.capture(period))
          << "seed " << GetParam() << " step " << step << " period " << period;
    }
  }
}

TEST_P(RandomNetlist, RunStreamMatchesPerEdgeAdvance) {
  Rng rng(GetParam() + 600);
  const Netlist nl = random_netlist_full(6, 90, 9, rng);
  std::vector<double> delays(nl.num_cells());
  for (auto& d : delays) d = rng.uniform(0.05, 0.9);
  OverclockSim sim(nl, delays);

  // An awkward stream length on purpose: full chunks plus a partial tail.
  const std::size_t n = 64 + 64 + 37;
  const auto first = random_inputs(6, rng);
  std::vector<std::uint8_t> flat(n * 6);
  for (std::size_t s = 0; s < n; ++s) {
    const auto in = random_inputs(6, rng);
    std::copy(in.begin(), in.end(), flat.begin() + static_cast<std::ptrdiff_t>(s * 6));
  }

  // Golden: one advance() per edge, snapshotting the per-edge output word
  // and the (bit, settle) pairs of the outputs that toggled.
  OverclockSim::State ref;
  sim.reset(ref, first);
  std::vector<std::uint64_t> want_settled(n);
  std::vector<std::vector<std::pair<std::size_t, double>>> want_tog(n);
  std::vector<std::uint8_t> in(6);
  for (std::size_t s = 0; s < n; ++s) {
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(s * 6), 6, in.begin());
    sim.advance(ref, in);
    for (std::size_t k = 0; k < ref.out_next.size(); ++k) {
      want_settled[s] |= static_cast<std::uint64_t>(ref.out_next[k]) << k;
      if (ref.out_prev[k] != ref.out_next[k])
        want_tog[s].push_back({k, ref.out_settle[k]});
    }
  }

  OverclockSim::State st;
  sim.reset(st, first);
  OverclockSim::SweepStream stream;
  sim.run_stream(st, flat.data(), n, stream);

  ASSERT_EQ(stream.settled.size(), n);
  for (std::size_t s = 0; s < n; ++s) {
    ASSERT_EQ(stream.settled[s], want_settled[s])
        << "seed " << GetParam() << " sample " << s;
    const std::size_t cnt = stream.toggle_begin[s + 1] - stream.toggle_begin[s];
    ASSERT_EQ(cnt, want_tog[s].size()) << "seed " << GetParam() << " sample " << s;
    for (std::size_t t = 0; t < cnt; ++t) {
      const std::size_t ti = stream.toggle_begin[s] + t;
      ASSERT_EQ(stream.toggle_bit[ti], want_tog[s][t].first);
      // Settle times must be bitwise identical, not just close.
      ASSERT_EQ(stream.toggle_settle[ti], want_tog[s][t].second)
          << "seed " << GetParam() << " sample " << s << " toggle " << t;
    }
  }
  // After the stream, `st` must look like n advance() calls.
  ASSERT_EQ(st.prev, ref.prev);
  ASSERT_EQ(st.out_next, ref.out_next);
  ASSERT_EQ(st.out_prev, ref.out_prev);
  ASSERT_EQ(st.out_settle, ref.out_settle);
  ASSERT_EQ(st.last_output_settle_ns, ref.last_output_settle_ns);
}

TEST_P(RandomNetlist, Eval64LanesMatchScalarEvaluation) {
  Rng rng(GetParam() + 500);
  const Netlist nl = random_netlist_full(8, 70, 12, rng);
  const CompiledNetlist cnl = CompiledNetlist::compile(nl);

  // 64 random samples, one per lane.
  std::vector<std::vector<std::uint8_t>> samples;
  samples.reserve(64);
  for (int l = 0; l < 64; ++l) samples.push_back(random_inputs(8, rng));

  std::vector<std::uint64_t> words(cnl.num_nets(), 0);
  for (std::size_t i = 0; i < cnl.num_inputs(); ++i)
    for (int l = 0; l < 64; ++l)
      words[static_cast<std::size_t>(cnl.input_net(i))] |=
          static_cast<std::uint64_t>(samples[static_cast<std::size_t>(l)][i])
          << l;
  cnl.eval64(words);

  std::vector<std::uint8_t> scratch, scalar_out;
  for (int l = 0; l < 64; ++l) {
    const auto& in = samples[static_cast<std::size_t>(l)];
    const auto truth = nl.evaluate_outputs(in);
    cnl.eval_outputs(in, scratch, scalar_out);
    ASSERT_EQ(scalar_out, truth) << "seed " << GetParam() << " lane " << l;
    for (std::size_t o = 0; o < cnl.num_outputs(); ++o) {
      const auto bit = static_cast<std::uint8_t>(
          (words[static_cast<std::size_t>(cnl.out_net(o))] >> l) & 1u);
      ASSERT_EQ(bit, truth[o]) << "seed " << GetParam() << " lane " << l
                               << " output " << o;
    }
  }
}

}  // namespace
}  // namespace oclp
