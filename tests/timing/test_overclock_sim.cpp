#include "timing/overclock_sim.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mult/bitcodec.hpp"
#include "mult/multiplier.hpp"
#include "netlist/sta.hpp"

namespace oclp {
namespace {

// A sim over a wa×wb multiplier with uniform per-cell delay.
OverclockSim make_sim(int wa, int wb, double cell_delay) {
  Netlist nl = make_multiplier(wa, wb);
  std::vector<double> delays(nl.num_cells(), 0.0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i)
    if (!cell_is_free(nl.cells()[i].type)) delays[i] = cell_delay;
  return OverclockSim(std::move(nl), std::move(delays));
}

std::vector<std::uint8_t> mult_inputs(unsigned a, int wa, unsigned b, int wb) {
  auto bits = to_bits(a, wa);
  append_bits(bits, b, wb);
  return bits;
}

TEST(OverclockSim, StepBeforeResetThrows) {
  auto sim = make_sim(4, 4, 1.0);
  EXPECT_THROW(sim.step(mult_inputs(1, 4, 1, 4), 100.0), CheckError);
}

TEST(OverclockSim, SlowClockMatchesFunctionalModel) {
  auto sim = make_sim(4, 4, 1.0);
  Rng rng(3);
  sim.reset(mult_inputs(0, 4, 0, 4));
  for (int i = 0; i < 200; ++i) {
    const unsigned a = rng.uniform_u64(16), b = rng.uniform_u64(16);
    const auto out = sim.step(mult_inputs(a, 4, b, 4), 1000.0);
    EXPECT_EQ(from_bits(out), static_cast<std::uint64_t>(a) * b);
  }
}

TEST(OverclockSim, PeriodAtCriticalPathIsErrorFree) {
  Netlist nl = make_multiplier(5, 5);
  std::vector<double> delays(nl.num_cells(), 0.0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i)
    if (!cell_is_free(nl.cells()[i].type)) delays[i] = 0.7;
  const double critical = static_timing(nl, delays).critical_path_ns;
  OverclockSim sim(std::move(nl), std::move(delays));
  Rng rng(5);
  sim.reset(mult_inputs(0, 5, 0, 5));
  for (int i = 0; i < 300; ++i) {
    const unsigned a = rng.uniform_u64(32), b = rng.uniform_u64(32);
    const auto out = sim.step(mult_inputs(a, 5, b, 5), critical);
    ASSERT_EQ(from_bits(out), static_cast<std::uint64_t>(a) * b);
    ASSERT_LE(sim.last_output_settle_ns(), critical);
  }
}

TEST(OverclockSim, AbsurdOverclockProducesStaleOutputs) {
  auto sim = make_sim(4, 4, 1.0);
  sim.reset(mult_inputs(15, 4, 15, 4));  // settled at 225
  // A period far below one cell delay: nothing settles; the register keeps
  // the previous frame's values.
  const auto out = sim.step(mult_inputs(3, 4, 3, 4), 0.01);
  EXPECT_EQ(from_bits(out), 225u);
}

TEST(OverclockSim, NoInputChangeNoError) {
  auto sim = make_sim(6, 6, 1.0);
  sim.reset(mult_inputs(42, 6, 17, 6));
  for (int i = 0; i < 5; ++i) {
    const auto out = sim.step(mult_inputs(42, 6, 17, 6), 0.01);
    EXPECT_EQ(from_bits(out), 42u * 17u);  // nothing toggles, nothing fails
    EXPECT_DOUBLE_EQ(sim.last_output_settle_ns(), 0.0);
  }
}

TEST(OverclockSim, ErrorsAreMonotoneInPeriod) {
  // For the same stream, a longer period can only capture more settled
  // bits: per-sample errors at period T2 > T1 are a subset.
  Rng rng(7);
  std::vector<std::pair<unsigned, unsigned>> stream;
  for (int i = 0; i < 400; ++i)
    stream.emplace_back(rng.uniform_u64(256), rng.uniform_u64(256));

  auto run = [&](double period) {
    auto sim = make_sim(8, 8, 0.4);
    sim.reset(mult_inputs(0, 8, 0, 8));
    int errors = 0;
    for (const auto& [a, b] : stream) {
      const auto out = sim.step(mult_inputs(a, 8, b, 8), period);
      if (from_bits(out) != static_cast<std::uint64_t>(a) * b) ++errors;
    }
    return errors;
  };

  int prev = run(2.0);
  EXPECT_GT(prev, 0);
  for (double period : {2.5, 3.0, 3.5, 4.5, 6.0, 9.0}) {
    const int e = run(period);
    EXPECT_LE(e, prev) << "period " << period;
    prev = e;
  }
  EXPECT_EQ(prev, 0);  // slow enough: error-free
}

TEST(OverclockSim, MsbsFailBeforeLsbs) {
  // Moderate over-clocking: the long MSb chains miss timing while the LSBs
  // still settle — the paper's "high error values are expected".
  Rng rng(11);
  auto sim = make_sim(8, 8, 0.4);
  sim.reset(mult_inputs(0, 8, 0, 8));
  std::vector<int> bit_errors(16, 0);
  for (int i = 0; i < 2000; ++i) {
    const unsigned a = rng.uniform_u64(256), b = rng.uniform_u64(256);
    const auto out = sim.step(mult_inputs(a, 8, b, 8), 3.2);
    const auto truth = static_cast<std::uint64_t>(a) * b;
    const auto got = from_bits(out);
    for (int bit = 0; bit < 16; ++bit)
      if (((got ^ truth) >> bit) & 1) ++bit_errors[bit];
  }
  int low = 0, high = 0;
  for (int bit = 0; bit < 8; ++bit) low += bit_errors[bit];
  for (int bit = 8; bit < 16; ++bit) high += bit_errors[bit];
  EXPECT_GT(high, low);
  EXPECT_EQ(bit_errors[0], 0);  // product LSB is a single AND gate
}

TEST(OverclockSim, DataDependence_SparseMultiplicandFailsLess) {
  // m = 1 (single partial product) vs m = 255 (all rows toggling).
  Rng rng(13);
  std::vector<unsigned> xs;
  for (int i = 0; i < 1500; ++i) xs.push_back(rng.uniform_u64(256));

  auto errors_for = [&](unsigned m) {
    auto sim = make_sim(8, 8, 0.4);
    sim.reset(mult_inputs(m, 8, 0, 8));
    int errors = 0;
    for (unsigned x : xs) {
      const auto out = sim.step(mult_inputs(m, 8, x, 8), 3.2);
      if (from_bits(out) != static_cast<std::uint64_t>(m) * x) ++errors;
    }
    return errors;
  };

  EXPECT_LT(errors_for(1), errors_for(255));
  EXPECT_EQ(errors_for(0), 0);  // zero multiplicand: nothing ever toggles
}

TEST(OverclockSim, DelaySizeMismatchThrows) {
  Netlist nl = make_multiplier(3, 3);
  EXPECT_THROW(OverclockSim(std::move(nl), {1.0, 2.0}), CheckError);
}

TEST(OverclockSim, InvalidPeriodThrows) {
  auto sim = make_sim(3, 3, 1.0);
  sim.reset(mult_inputs(0, 3, 0, 3));
  EXPECT_THROW(sim.step(mult_inputs(1, 3, 1, 3), 0.0), CheckError);
}

}  // namespace
}  // namespace oclp
