#include "timing/overclock_sim.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mult/bitcodec.hpp"
#include "mult/multiplier.hpp"
#include "netlist/sta.hpp"

namespace oclp {
namespace {

// A sim over a wa×wb multiplier with uniform per-cell delay.
OverclockSim make_sim(int wa, int wb, double cell_delay) {
  Netlist nl = make_multiplier(wa, wb);
  std::vector<double> delays(nl.num_cells(), 0.0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i)
    if (!cell_is_free(nl.cells()[i].type)) delays[i] = cell_delay;
  return OverclockSim(std::move(nl), std::move(delays));
}

std::vector<std::uint8_t> mult_inputs(unsigned a, int wa, unsigned b, int wb) {
  auto bits = to_bits(a, wa);
  append_bits(bits, b, wb);
  return bits;
}

TEST(OverclockSim, StepBeforeResetThrows) {
  auto sim = make_sim(4, 4, 1.0);
  EXPECT_THROW(sim.step(mult_inputs(1, 4, 1, 4), 100.0), CheckError);
}

TEST(OverclockSim, SlowClockMatchesFunctionalModel) {
  auto sim = make_sim(4, 4, 1.0);
  Rng rng(3);
  sim.reset(mult_inputs(0, 4, 0, 4));
  for (int i = 0; i < 200; ++i) {
    const unsigned a = rng.uniform_u64(16), b = rng.uniform_u64(16);
    const auto out = sim.step(mult_inputs(a, 4, b, 4), 1000.0);
    EXPECT_EQ(from_bits(out), static_cast<std::uint64_t>(a) * b);
  }
}

TEST(OverclockSim, PeriodAtCriticalPathIsErrorFree) {
  Netlist nl = make_multiplier(5, 5);
  std::vector<double> delays(nl.num_cells(), 0.0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i)
    if (!cell_is_free(nl.cells()[i].type)) delays[i] = 0.7;
  const double critical = static_timing(nl, delays).critical_path_ns;
  OverclockSim sim(std::move(nl), std::move(delays));
  Rng rng(5);
  sim.reset(mult_inputs(0, 5, 0, 5));
  for (int i = 0; i < 300; ++i) {
    const unsigned a = rng.uniform_u64(32), b = rng.uniform_u64(32);
    const auto out = sim.step(mult_inputs(a, 5, b, 5), critical);
    ASSERT_EQ(from_bits(out), static_cast<std::uint64_t>(a) * b);
    ASSERT_LE(sim.last_output_settle_ns(), critical);
  }
}

TEST(OverclockSim, AbsurdOverclockProducesStaleOutputs) {
  auto sim = make_sim(4, 4, 1.0);
  sim.reset(mult_inputs(15, 4, 15, 4));  // settled at 225
  // A period far below one cell delay: nothing settles; the register keeps
  // the previous frame's values.
  const auto out = sim.step(mult_inputs(3, 4, 3, 4), 0.01);
  EXPECT_EQ(from_bits(out), 225u);
}

TEST(OverclockSim, NoInputChangeNoError) {
  auto sim = make_sim(6, 6, 1.0);
  sim.reset(mult_inputs(42, 6, 17, 6));
  for (int i = 0; i < 5; ++i) {
    const auto out = sim.step(mult_inputs(42, 6, 17, 6), 0.01);
    EXPECT_EQ(from_bits(out), 42u * 17u);  // nothing toggles, nothing fails
    EXPECT_DOUBLE_EQ(sim.last_output_settle_ns(), 0.0);
  }
}

TEST(OverclockSim, ErrorsAreMonotoneInPeriod) {
  // For the same stream, a longer period can only capture more settled
  // bits: per-sample errors at period T2 > T1 are a subset.
  Rng rng(7);
  std::vector<std::pair<unsigned, unsigned>> stream;
  for (int i = 0; i < 400; ++i)
    stream.emplace_back(rng.uniform_u64(256), rng.uniform_u64(256));

  auto run = [&](double period) {
    auto sim = make_sim(8, 8, 0.4);
    sim.reset(mult_inputs(0, 8, 0, 8));
    int errors = 0;
    for (const auto& [a, b] : stream) {
      const auto out = sim.step(mult_inputs(a, 8, b, 8), period);
      if (from_bits(out) != static_cast<std::uint64_t>(a) * b) ++errors;
    }
    return errors;
  };

  int prev = run(2.0);
  EXPECT_GT(prev, 0);
  for (double period : {2.5, 3.0, 3.5, 4.5, 6.0, 9.0}) {
    const int e = run(period);
    EXPECT_LE(e, prev) << "period " << period;
    prev = e;
  }
  EXPECT_EQ(prev, 0);  // slow enough: error-free
}

TEST(OverclockSim, MsbsFailBeforeLsbs) {
  // Moderate over-clocking: the long MSb chains miss timing while the LSBs
  // still settle — the paper's "high error values are expected".
  Rng rng(11);
  auto sim = make_sim(8, 8, 0.4);
  sim.reset(mult_inputs(0, 8, 0, 8));
  std::vector<int> bit_errors(16, 0);
  for (int i = 0; i < 2000; ++i) {
    const unsigned a = rng.uniform_u64(256), b = rng.uniform_u64(256);
    const auto out = sim.step(mult_inputs(a, 8, b, 8), 3.2);
    const auto truth = static_cast<std::uint64_t>(a) * b;
    const auto got = from_bits(out);
    for (int bit = 0; bit < 16; ++bit)
      if (((got ^ truth) >> bit) & 1) ++bit_errors[bit];
  }
  int low = 0, high = 0;
  for (int bit = 0; bit < 8; ++bit) low += bit_errors[bit];
  for (int bit = 8; bit < 16; ++bit) high += bit_errors[bit];
  EXPECT_GT(high, low);
  EXPECT_EQ(bit_errors[0], 0);  // product LSB is a single AND gate
}

TEST(OverclockSim, DataDependence_SparseMultiplicandFailsLess) {
  // m = 1 (single partial product) vs m = 255 (all rows toggling).
  Rng rng(13);
  std::vector<unsigned> xs;
  for (int i = 0; i < 1500; ++i) xs.push_back(rng.uniform_u64(256));

  auto errors_for = [&](unsigned m) {
    auto sim = make_sim(8, 8, 0.4);
    sim.reset(mult_inputs(m, 8, 0, 8));
    int errors = 0;
    for (unsigned x : xs) {
      const auto out = sim.step(mult_inputs(m, 8, x, 8), 3.2);
      if (from_bits(out) != static_cast<std::uint64_t>(m) * x) ++errors;
    }
    return errors;
  };

  EXPECT_LT(errors_for(1), errors_for(255));
  EXPECT_EQ(errors_for(0), 0);  // zero multiplicand: nothing ever toggles
}

TEST(OverclockSim, ExternalStateMatchesConvenienceApi) {
  // The const advance()/capture() path over a caller-owned State must
  // reproduce step() exactly — it is the engine under the single-pass
  // multi-frequency characterisation.
  auto sim = make_sim(6, 6, 0.5);
  auto shadow = make_sim(6, 6, 0.5);
  OverclockSim::State st;
  Rng rng(17);
  sim.reset(st, mult_inputs(0, 6, 0, 6));
  shadow.reset(mult_inputs(0, 6, 0, 6));
  std::vector<std::uint8_t> captured;
  for (int i = 0; i < 200; ++i) {
    const unsigned a = rng.uniform_u64(64), b = rng.uniform_u64(64);
    const double period = 1.0 + 0.05 * (i % 40);
    sim.advance(st, mult_inputs(a, 6, b, 6));
    sim.capture(st, period, captured);
    const auto& ref = shadow.step(mult_inputs(a, 6, b, 6), period);
    ASSERT_EQ(captured, ref) << "i=" << i;
    ASSERT_DOUBLE_EQ(st.last_output_settle_ns, shadow.last_output_settle_ns());
  }
}

TEST(OverclockSim, OneAdvanceManyCaptures) {
  // A single advance supports captures at any number of periods: tiny
  // period → previous frame, huge period → fully settled frame, and the
  // fresh-bit set grows with the period.
  auto sim = make_sim(8, 8, 0.4);
  OverclockSim::State st;
  sim.reset(st, mult_inputs(201, 8, 187, 8));
  sim.advance(st, mult_inputs(44, 8, 99, 8));
  std::vector<std::uint8_t> out;
  sim.capture(st, 1e-9, out);
  EXPECT_EQ(from_bits(out), 201u * 187u);  // nothing settled: stale frame
  sim.capture(st, 1e9, out);
  EXPECT_EQ(from_bits(out), 44u * 99u);  // everything settled
  int prev_fresh = -1;
  for (double period : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    sim.capture(st, period, out);
    int fresh = 0;
    for (std::size_t k = 0; k < st.out_settle.size(); ++k)
      if (st.out_settle[k] <= period) ++fresh;
    EXPECT_GE(fresh, prev_fresh);
    prev_fresh = fresh;
  }
}

TEST(OverclockSim, ExternalStateBeforeResetThrows) {
  auto sim = make_sim(4, 4, 1.0);
  OverclockSim::State st;
  EXPECT_THROW(sim.advance(st, mult_inputs(1, 4, 1, 4)), CheckError);
  std::vector<std::uint8_t> out;
  EXPECT_THROW(sim.capture(st, 1.0, out), CheckError);
}

TEST(OverclockSim, StepBufferReuseKeepsResultsIndependent) {
  // step() returns a reference to a reusable buffer; copying it (as every
  // caller does) must preserve values across subsequent steps.
  auto sim = make_sim(4, 4, 1.0);
  sim.reset(mult_inputs(0, 4, 0, 4));
  const std::vector<std::uint8_t> first = sim.step(mult_inputs(3, 4, 5, 4), 1e3);
  const auto second = sim.step(mult_inputs(7, 4, 9, 4), 1e3);
  EXPECT_EQ(from_bits(first), 15u);
  EXPECT_EQ(from_bits(second), 63u);
}

// A netlist whose outputs are a chain of `n` Not cells (output k is the
// k-th inversion of the single input) — n outputs from n cells.
OverclockSim make_wide_output_sim(std::size_t n_outputs) {
  NetlistBuilder nb;
  std::int32_t net = nb.add_input();
  std::vector<std::int32_t> outs;
  for (std::size_t i = 0; i < n_outputs; ++i) {
    net = nb.not_(net);
    outs.push_back(net);
  }
  nb.mark_outputs(outs);
  Netlist nl = nb.build();
  std::vector<double> delays(nl.num_cells(), 0.5);
  return OverclockSim(std::move(nl), std::move(delays));
}

TEST(OverclockSim, RunStreamAcceptsExactly64Outputs) {
  auto sim = make_wide_output_sim(64);
  OverclockSim::State st;
  sim.reset(st, {0});
  const std::uint8_t inputs[2] = {1, 0};
  OverclockSim::SweepStream stream;
  sim.run_stream(st, inputs, 2, stream);
  ASSERT_EQ(stream.settled.size(), 2u);
  // Input 1: chain of Nots → output k = ~(k-th inversion of 1): bits
  // 0,1,0,1,… (even outputs invert once). Input 0 flips every bit.
  EXPECT_EQ(stream.settled[0], 0xAAAAAAAAAAAAAAAAull);
  EXPECT_EQ(stream.settled[1], 0x5555555555555555ull);
  // Every output toggled at both edges; a huge period captures them all.
  EXPECT_EQ(stream.capture_word(0, 1e9), stream.settled[0]);
  // A period shorter than the first cell delay captures the stale frame.
  EXPECT_EQ(stream.capture_word(1, 0.1), stream.settled[0]);
}

TEST(OverclockSim, RunStreamRejectsMoreThan64Outputs) {
  auto sim = make_wide_output_sim(65);
  OverclockSim::State st;
  sim.reset(st, {0});
  const std::uint8_t inputs[1] = {1};
  OverclockSim::SweepStream stream;
  try {
    sim.run_stream(st, inputs, 1, stream);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("65 outputs"), std::string::npos)
        << e.what();
  }
}

TEST(OverclockSim, RunStreamEmptyStreamLeavesStateUntouched) {
  auto sim = make_sim(4, 4, 1.0);
  OverclockSim::State st;
  sim.reset(st, mult_inputs(3, 4, 5, 4));
  const auto prev_snapshot = st.prev;
  OverclockSim::SweepStream stream;
  stream.settled.assign(9, 123);  // stale garbage a previous run left
  sim.run_stream(st, nullptr, 0, stream);
  EXPECT_TRUE(stream.settled.empty());
  ASSERT_EQ(stream.toggle_begin.size(), 1u);
  EXPECT_EQ(stream.toggle_begin[0], 0u);
  EXPECT_TRUE(stream.toggle_bit.empty());
  EXPECT_EQ(st.prev, prev_snapshot);
  EXPECT_FALSE(st.stepped);
  EXPECT_TRUE(st.initialised);

  // The untouched state continues exactly like a sim that never saw the
  // empty stream.
  auto shadow = make_sim(4, 4, 1.0);
  shadow.reset(mult_inputs(3, 4, 5, 4));
  std::vector<std::uint8_t> captured;
  sim.advance(st, mult_inputs(7, 4, 9, 4));
  sim.capture(st, 2.5, captured);
  EXPECT_EQ(captured, shadow.step(mult_inputs(7, 4, 9, 4), 2.5));
}

TEST(OverclockSim, DelaySizeMismatchThrows) {
  Netlist nl = make_multiplier(3, 3);
  EXPECT_THROW(OverclockSim(std::move(nl), {1.0, 2.0}), CheckError);
}

TEST(OverclockSim, InvalidPeriodThrows) {
  auto sim = make_sim(3, 3, 1.0);
  sim.reset(mult_inputs(0, 3, 0, 3));
  EXPECT_THROW(sim.step(mult_inputs(1, 3, 1, 3), 0.0), CheckError);
}

// --- Integer-picosecond kernel vs the retained double reference ----------

// Random per-cell delays snapped onto the PsGrid, so Auto lowers integer.
std::vector<double> grid_delays(const Netlist& nl, Rng& rng) {
  std::vector<double> delays(nl.num_cells(), 0.0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i)
    if (!cell_is_free(nl.cells()[i].type))
      delays[i] = PsGrid::snap_ns(rng.uniform(0.05, 0.9));
  return delays;
}

// Row-major random input stream for a wa×wb multiplier.
std::vector<std::uint8_t> random_stream(std::size_t n, int wa, int wb, Rng& rng) {
  const auto nin = static_cast<std::size_t>(wa + wb);
  std::vector<std::uint8_t> inputs(n * nin);
  for (auto& b : inputs) b = static_cast<std::uint8_t>(rng.uniform_u64(2));
  return inputs;
}

TEST(OverclockSim, IntegerKernelMatchesDoubleReferenceBitwise) {
  // The tentpole exactness theorem, end to end: with grid-exact delays the
  // integer run_stream and the retained double reference must agree on
  // every recorded value — settled words, toggle layout, settle-time
  // doubles (exact tick dequantisation), post-stream state, and captures
  // at arbitrary jittered periods including exact ties. Batch sizes cover
  // a lone sample, both sides of the 64-lane chunk boundary, and a
  // multi-chunk stream with a partial tail.
  Rng rng(2014);
  const int wa = 5, wb = 5;
  Netlist nl = make_multiplier(wa, wb);
  const auto delays = grid_delays(nl, rng);
  OverclockSim sim(std::move(nl), delays, TimingMode::Auto);
  ASSERT_TRUE(sim.integer_kernel());
  ASSERT_GT(sim.critical_path_ticks(), 0u);

  for (std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                        std::size_t{65}, std::size_t{197}}) {
    const auto inputs = random_stream(n, wa, wb, rng);
    OverclockSim::State ist, dst;
    const auto init = mult_inputs(3, wa, 1, wb);
    sim.reset(ist, init);
    sim.reset(dst, init);
    OverclockSim::SweepStream istream, dstream;
    sim.run_stream(ist, inputs.data(), n, istream);
    sim.run_stream_ref(dst, inputs.data(), n, dstream);

    ASSERT_EQ(istream.settled, dstream.settled) << "n=" << n;
    ASSERT_EQ(istream.toggle_begin, dstream.toggle_begin) << "n=" << n;
    ASSERT_EQ(istream.toggle_bit, dstream.toggle_bit) << "n=" << n;
    // Integer streams carry ticks only, reference streams ns only; each
    // tick dequantises exactly onto the reference double.
    EXPECT_TRUE(istream.has_ticks);
    EXPECT_FALSE(dstream.has_ticks);
    EXPECT_TRUE(istream.toggle_settle.empty());
    EXPECT_TRUE(dstream.toggle_settle_ticks.empty());
    ASSERT_EQ(istream.toggle_settle_ticks.size(), dstream.toggle_settle.size());
    for (std::size_t t = 0; t < dstream.toggle_settle.size(); ++t) {
      ASSERT_EQ(PsGrid::to_ns(istream.toggle_settle_ticks[t]),
                dstream.toggle_settle[t]);
      ASSERT_EQ(istream.toggle_settle_ns(t), dstream.toggle_settle_ns(t));
    }

    // Post-stream observable state is identical (advance/capture interop).
    ASSERT_EQ(ist.out_settle, dst.out_settle) << "n=" << n;
    ASSERT_EQ(ist.out_prev, dst.out_prev) << "n=" << n;
    ASSERT_EQ(ist.out_next, dst.out_next) << "n=" << n;
    ASSERT_EQ(ist.last_output_settle_ns, dst.last_output_settle_ns);

    // Captures: double rule vs pre-converted tick thresholds at arbitrary
    // (non-grid) periods, plus forced exact ties.
    for (std::size_t s = 0; s < n; ++s) {
      for (int trial = 0; trial < 8; ++trial) {
        double period = rng.uniform(0.1, 8.0);
        if (trial == 0 && istream.toggle_begin[s] < istream.toggle_begin[s + 1])
          period = istream.toggle_settle_ns(istream.toggle_begin[s]);  // tie
        const auto want = dstream.capture_word(s, period);
        ASSERT_EQ(istream.capture_word(s, period), want);
        ASSERT_EQ(istream.capture_word_ticks(s, PsGrid::period_ticks(period)),
                  want)
            << "sample " << s << " period " << period;
      }
    }
  }
}

TEST(OverclockSim, IntegerKernelInteroperatesWithStepAndResample) {
  // A streamed prefix followed by step()/resample_last must behave exactly
  // like the all-double sim: the stream leaves identical register state.
  Rng rng(55);
  const int wa = 4, wb = 4;
  Netlist nl = make_multiplier(wa, wb);
  const auto delays = grid_delays(nl, rng);
  Netlist nl2 = nl;
  OverclockSim isim(std::move(nl), delays, TimingMode::IntegerExact);
  OverclockSim dsim(std::move(nl2), delays, TimingMode::DoubleRef);
  ASSERT_TRUE(isim.integer_kernel());
  ASSERT_FALSE(dsim.integer_kernel());

  const auto inputs = random_stream(70, wa, wb, rng);
  OverclockSim::SweepStream is, ds;
  isim.reset(mult_inputs(0, wa, 0, wb));
  dsim.reset(mult_inputs(0, wa, 0, wb));
  isim.run_stream(inputs.data(), 70, is);
  dsim.run_stream(inputs.data(), 70, ds);
  for (int i = 0; i < 30; ++i) {
    const unsigned a = rng.uniform_u64(16), b = rng.uniform_u64(16);
    const double period = rng.uniform(0.3, 6.0);
    ASSERT_EQ(isim.step(mult_inputs(a, wa, b, wb), period),
              dsim.step(mult_inputs(a, wa, b, wb), period));
    ASSERT_EQ(isim.last_output_settle_ns(), dsim.last_output_settle_ns());
    const double re = rng.uniform(0.3, 6.0);
    ASSERT_EQ(isim.resample_last(re), dsim.resample_last(re));
  }
}

}  // namespace
}  // namespace oclp
