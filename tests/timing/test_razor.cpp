#include "timing/razor.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mult/bitcodec.hpp"
#include "mult/multiplier.hpp"
#include "netlist/sta.hpp"

namespace oclp {
namespace {

RazorSim make_razor(int wl, double cell_delay, RazorConfig cfg) {
  Netlist nl = make_multiplier(wl, wl);
  std::vector<double> delays(nl.num_cells(), 0.0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i)
    if (!cell_is_free(nl.cells()[i].type)) delays[i] = cell_delay;
  return RazorSim(std::move(nl), std::move(delays), cfg);
}

std::vector<std::uint8_t> mult_in(unsigned a, unsigned b, int wl) {
  auto bits = to_bits(a, wl);
  append_bits(bits, b, wl);
  return bits;
}

TEST(Razor, NoErrorsAtSlowClock) {
  RazorConfig cfg;
  auto razor = make_razor(6, 0.5, cfg);
  razor.reset(mult_in(0, 0, 6));
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const unsigned a = rng.uniform_u64(64), b = rng.uniform_u64(64);
    const auto res = razor.step(mult_in(a, b, 6), 50.0);
    ASSERT_FALSE(res.error_detected);
    ASSERT_FALSE(res.undetected_error);
    ASSERT_EQ(from_bits(res.outputs), static_cast<std::uint64_t>(a) * b);
  }
  EXPECT_EQ(razor.errors_detected(), 0u);
  EXPECT_DOUBLE_EQ(razor.effective_throughput(), 1.0);
}

TEST(Razor, DetectsAndCorrectsOverclockErrors) {
  // Over-clocked so the main register misses timing, but a generous shadow
  // margin guarantees the shadow sees the settled value: every error is
  // detected and corrected; none escape.
  RazorConfig cfg;
  cfg.shadow_margin_ns = 50.0;
  cfg.recovery_penalty_cycles = 1;
  auto razor = make_razor(8, 0.4, cfg);
  razor.reset(mult_in(0, 0, 8));
  Rng rng(2);
  std::size_t wrong_after_recovery = 0;
  for (int i = 0; i < 1000; ++i) {
    const unsigned a = rng.uniform_u64(256), b = rng.uniform_u64(256);
    const auto res = razor.step(mult_in(a, b, 8), 3.0);
    ASSERT_FALSE(res.undetected_error);
    if (from_bits(res.outputs) != static_cast<std::uint64_t>(a) * b)
      ++wrong_after_recovery;
  }
  EXPECT_GT(razor.errors_detected(), 20u);
  EXPECT_EQ(razor.errors_undetected(), 0u);
  EXPECT_EQ(wrong_after_recovery, 0u);  // recovery restores correctness...
  EXPECT_LT(razor.effective_throughput(), 1.0);  // ...but costs cycles
  EXPECT_EQ(razor.cycles_consumed(),
            razor.samples_processed() + razor.errors_detected());
}

TEST(Razor, ThroughputPenaltyScalesWithRecoveryCost) {
  Rng rng(3);
  std::vector<std::pair<unsigned, unsigned>> stream;
  for (int i = 0; i < 800; ++i)
    stream.emplace_back(rng.uniform_u64(256), rng.uniform_u64(256));

  auto run = [&](int penalty) {
    RazorConfig cfg;
    cfg.shadow_margin_ns = 50.0;
    cfg.recovery_penalty_cycles = penalty;
    auto razor = make_razor(8, 0.4, cfg);
    razor.reset(mult_in(0, 0, 8));
    for (const auto& [a, b] : stream) razor.step(mult_in(a, b, 8), 3.0);
    return razor.effective_throughput();
  };
  EXPECT_GT(run(1), run(4));
}

TEST(Razor, TightShadowMarginLetsErrorsEscape) {
  // A shadow latch barely behind the main clock cannot cover the deep MSb
  // chains: silent corruption becomes possible (the designer's burden the
  // paper alludes to).
  RazorConfig cfg;
  cfg.shadow_margin_ns = 0.05;
  auto razor = make_razor(8, 0.4, cfg);
  razor.reset(mult_in(0, 0, 8));
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const unsigned a = rng.uniform_u64(256), b = rng.uniform_u64(256);
    razor.step(mult_in(a, b, 8), 2.5);
  }
  EXPECT_GT(razor.errors_undetected(), 0u);
}

TEST(Razor, UndetectedStepsReturnStaleOutputs) {
  // Whenever the shadow itself was stale, the returned outputs — recovered
  // or not — cannot equal the settled product: silent corruption for real.
  RazorConfig cfg;
  cfg.shadow_margin_ns = 0.05;
  auto razor = make_razor(8, 0.4, cfg);
  razor.reset(mult_in(0, 0, 8));
  Rng rng(6);
  std::size_t undetected_steps = 0, detected_steps = 0;
  for (int i = 0; i < 2000; ++i) {
    const unsigned a = rng.uniform_u64(256), b = rng.uniform_u64(256);
    const auto res = razor.step(mult_in(a, b, 8), 2.5);
    if (res.error_detected) ++detected_steps;
    if (res.undetected_error) {
      ++undetected_steps;
      EXPECT_NE(from_bits(res.outputs), static_cast<std::uint64_t>(a) * b);
    }
  }
  ASSERT_GT(undetected_steps, 0u);
  EXPECT_EQ(razor.errors_undetected(), undetected_steps);
  EXPECT_EQ(razor.errors_detected(), detected_steps);
}

TEST(Razor, UndetectedErrorsDoNotPayRecoveryPenalty) {
  // Only *detected* errors trigger flush-and-replay; escaped errors cost
  // nothing on the schedule (that is what makes them dangerous).
  RazorConfig cfg;
  cfg.shadow_margin_ns = 0.05;
  cfg.recovery_penalty_cycles = 4;
  auto razor = make_razor(8, 0.4, cfg);
  razor.reset(mult_in(0, 0, 8));
  Rng rng(7);
  for (int i = 0; i < 1500; ++i)
    razor.step(mult_in(rng.uniform_u64(256), rng.uniform_u64(256), 8), 2.5);
  EXPECT_GT(razor.errors_undetected(), 0u);
  EXPECT_EQ(razor.cycles_consumed(),
            razor.samples_processed() + 4 * razor.errors_detected());
}

TEST(Razor, ZeroRecoveryPenaltyKeepsFullThroughput) {
  RazorConfig cfg;
  cfg.shadow_margin_ns = 50.0;
  cfg.recovery_penalty_cycles = 0;
  auto razor = make_razor(8, 0.4, cfg);
  razor.reset(mult_in(0, 0, 8));
  Rng rng(8);
  for (int i = 0; i < 600; ++i)
    razor.step(mult_in(rng.uniform_u64(256), rng.uniform_u64(256), 8), 3.0);
  EXPECT_GT(razor.errors_detected(), 0u);  // errors occur and are corrected
  EXPECT_EQ(razor.cycles_consumed(), razor.samples_processed());
  EXPECT_DOUBLE_EQ(razor.effective_throughput(), 1.0);
}

TEST(Razor, ConfigValidation) {
  RazorConfig bad;
  bad.shadow_margin_ns = 0.0;
  Netlist nl = make_multiplier(3, 3);
  std::vector<double> delays(nl.num_cells(), 0.1);
  EXPECT_THROW(RazorSim(std::move(nl), std::move(delays), bad), CheckError);
}

TEST(OverclockSim, ResampleLastMatchesStepSemantics) {
  Netlist nl = make_multiplier(6, 6);
  std::vector<double> delays(nl.num_cells(), 0.0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i)
    if (!cell_is_free(nl.cells()[i].type)) delays[i] = 0.4;
  OverclockSim sim(std::move(nl), std::move(delays));
  sim.reset(mult_in(0, 0, 6));
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const unsigned a = rng.uniform_u64(64), b = rng.uniform_u64(64);
    const auto main = sim.step(mult_in(a, b, 6), 2.0);
    EXPECT_EQ(sim.resample_last(2.0), main);  // same period → same capture
    // A huge resample period returns the settled truth.
    EXPECT_EQ(from_bits(sim.resample_last(1e9)),
              static_cast<std::uint64_t>(a) * b);
    EXPECT_EQ(sim.resample_last(1e9), sim.last_settled_outputs());
  }
}

TEST(OverclockSim, ResampleBeforeStepThrows) {
  Netlist nl = make_multiplier(3, 3);
  std::vector<double> delays(nl.num_cells(), 0.1);
  OverclockSim sim(std::move(nl), std::move(delays));
  EXPECT_THROW(sim.resample_last(1.0), CheckError);
  sim.reset(mult_in(0, 0, 3));
  EXPECT_THROW(sim.last_settled_outputs(), CheckError);
}

}  // namespace
}  // namespace oclp
