// Property tests for the lane-parallel dense row fills: every dispatchable
// ISA variant (scalar / AVX2 / AVX-512), forced through the dense path,
// the sparse path, and the adaptive crossover, must reproduce the retained
// double reference bitwise on arbitrary circuits — settled words, toggle
// layout, settle ticks — including partial 64-lane tails and the
// all-lanes-toggle / zero-toggle extremes.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "netlist/compiled.hpp"
#include "netlist/netlist.hpp"
#include "timing/lane_kernels.hpp"
#include "timing/overclock_sim.hpp"

namespace oclp {
namespace {

// A random DAG over 1-3 input cells; with_regs sprinkles PipeRegs in so the
// two-track (kRegs) kernels get exercised too.
Netlist random_netlist(std::size_t n_in, std::size_t n_cells, std::size_t n_out,
                       bool with_regs, Rng& rng) {
  static const CellType kTypes[] = {
      CellType::Not,   CellType::And2, CellType::Or2,   CellType::Xor2,
      CellType::Nand2, CellType::Nor2, CellType::Xnor2, CellType::AndNot2,
      CellType::Maj3,  CellType::Xor3, CellType::Mux2};
  NetlistBuilder nb;
  nb.add_inputs(n_in);
  for (std::size_t i = 0; i < n_cells; ++i) {
    const auto pick = [&] {
      return static_cast<std::int32_t>(rng.uniform_u64(nb.num_nets()));
    };
    if (with_regs && rng.uniform_u64(8) == 0) {
      nb.reg_(pick());
      continue;
    }
    const CellType type = kTypes[rng.uniform_u64(std::size(kTypes))];
    const std::int32_t a = pick();
    const std::int32_t b = cell_arity(type) > 1 ? pick() : -1;
    const std::int32_t c = cell_arity(type) > 2 ? pick() : -1;
    nb.add_cell(type, a, b, c);
  }
  for (std::size_t o = 0; o < n_out; ++o)
    nb.mark_output(static_cast<std::int32_t>(rng.uniform_u64(n_in + n_cells)));
  return nb.build();
}

// Grid-snapped random delays, so TimingMode::Auto lowers integer.
std::vector<double> grid_delays(const Netlist& nl, Rng& rng) {
  std::vector<double> delays(nl.num_cells(), 0.0);
  for (std::size_t i = 0; i < nl.num_cells(); ++i)
    if (!cell_is_free(nl.cells()[i].type))
      delays[i] = PsGrid::snap_ns(rng.uniform(0.05, 0.9));
  return delays;
}

std::vector<std::uint8_t> random_stream(std::size_t n, std::size_t n_in,
                                        Rng& rng) {
  std::vector<std::uint8_t> inputs(n * n_in);
  for (auto& b : inputs) b = static_cast<std::uint8_t>(rng.uniform_u64(2));
  return inputs;
}

// Run `inputs` through `sim` with the given kernels/cutoff and require the
// stream (and post-stream state) to be bitwise identical to the double
// reference.
void expect_matches_reference(OverclockSim& sim,
                              const std::vector<std::uint8_t>& init,
                              const std::vector<std::uint8_t>& inputs,
                              std::size_t n, const std::string& what) {
  OverclockSim::State ist, dst;
  sim.reset(ist, init);
  sim.reset(dst, init);
  OverclockSim::SweepStream istream, dstream;
  sim.run_stream(ist, inputs.data(), n, istream);
  sim.run_stream_ref(dst, inputs.data(), n, dstream);

  ASSERT_EQ(istream.settled, dstream.settled) << what;
  ASSERT_EQ(istream.toggle_begin, dstream.toggle_begin) << what;
  ASSERT_EQ(istream.toggle_bit, dstream.toggle_bit) << what;
  ASSERT_EQ(istream.toggle_settle_ticks.size(), dstream.toggle_settle.size())
      << what;
  for (std::size_t t = 0; t < dstream.toggle_settle.size(); ++t)
    ASSERT_EQ(PsGrid::to_ns(istream.toggle_settle_ticks[t]),
              dstream.toggle_settle[t])
        << what << " toggle " << t;
  ASSERT_EQ(ist.out_settle, dst.out_settle) << what;
  ASSERT_EQ(ist.out_prev, dst.out_prev) << what;
  ASSERT_EQ(ist.out_next, dst.out_next) << what;
}

class LaneKernelSeeds : public ::testing::TestWithParam<int> {};

TEST_P(LaneKernelSeeds, EveryIsaAndCrossoverMatchesReference) {
  Rng rng(GetParam() * 7919 + 3);
  for (const bool with_regs : {false, true}) {
    Netlist nl = random_netlist(6, 64, 10, with_regs, rng);
    const auto delays = grid_delays(nl, rng);
    OverclockSim sim(std::move(nl), delays, TimingMode::Auto);
    ASSERT_TRUE(sim.integer_kernel());

    std::vector<std::uint8_t> init(sim.netlist().num_inputs());
    for (auto& b : init) b = static_cast<std::uint8_t>(rng.uniform_u64(2));

    lane::DenseKernels variants[3];
    const int nv = lane::all_dense_kernels(variants);
    ASSERT_GE(nv, 1);
    // n covers a lone chunk, both sides of the 64-lane boundary, and a
    // multi-chunk stream with a partial tail.
    for (std::size_t n : {std::size_t{5}, std::size_t{64}, std::size_t{131}}) {
      const auto inputs = random_stream(n, sim.netlist().num_inputs(), rng);
      for (int v = 0; v < nv; ++v) {
        // Cutoff 0 forces every toggled cell down the dense row fill,
        // 65 forces the sparse toggled-lane path, and the ISA default
        // exercises the adaptive switch.
        for (const int cutoff : {0, 65, variants[v].dense_cutoff}) {
          lane::DenseKernels k = variants[v];
          k.dense_cutoff = cutoff;
          sim.set_lane_kernels(k);
          expect_matches_reference(
              sim, init, inputs, n,
              std::string(variants[v].isa) + " cutoff " +
                  std::to_string(cutoff) + " n " + std::to_string(n) +
                  (with_regs ? " regs" : ""));
        }
      }
    }
    sim.set_lane_kernels(lane::dense_kernels());
  }
}

TEST_P(LaneKernelSeeds, ToggleDensityExtremesMatchReference) {
  // All-lanes-toggle: complement the whole input vector every sample, so
  // every input net toggles in every lane and the dense fill runs at full
  // occupancy. Zero-toggle: repeat one vector for the whole stream, so
  // after the first sample no toggle word has any bit set and the kernel
  // must coast through empty rows.
  Rng rng(GetParam() * 104729 + 11);
  for (const bool with_regs : {false, true}) {
    Netlist nl = random_netlist(5, 48, 8, with_regs, rng);
    const auto delays = grid_delays(nl, rng);
    OverclockSim sim(std::move(nl), delays, TimingMode::Auto);
    ASSERT_TRUE(sim.integer_kernel());

    const std::size_t nin = sim.netlist().num_inputs();
    std::vector<std::uint8_t> init(nin, 0);
    const std::size_t n = 97;  // partial tail in the second chunk

    std::vector<std::uint8_t> alternating(n * nin);
    for (std::size_t s = 0; s < n; ++s)
      for (std::size_t i = 0; i < nin; ++i)
        alternating[s * nin + i] = static_cast<std::uint8_t>(s & 1);

    std::vector<std::uint8_t> constant(n * nin, 1);

    lane::DenseKernels variants[3];
    const int nv = lane::all_dense_kernels(variants);
    for (int v = 0; v < nv; ++v) {
      for (const int cutoff : {0, 65, variants[v].dense_cutoff}) {
        lane::DenseKernels k = variants[v];
        k.dense_cutoff = cutoff;
        sim.set_lane_kernels(k);
        const std::string tag = std::string(variants[v].isa) + " cutoff " +
                                std::to_string(cutoff) +
                                (with_regs ? " regs" : "");
        expect_matches_reference(sim, init, alternating, n,
                                 tag + " all-toggle");
        expect_matches_reference(sim, init, constant, n, tag + " zero-toggle");
      }
    }
    sim.set_lane_kernels(lane::dense_kernels());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LaneKernelSeeds, ::testing::Range(1, 7));

TEST(LaneKernels, DispatchSelectsASupportedVariant) {
  const lane::DenseKernels& k = lane::dense_kernels();
  ASSERT_NE(k.fill, nullptr);
  ASSERT_NE(k.fill2, nullptr);
  EXPECT_GT(k.dense_cutoff, 0);
  EXPECT_LE(k.dense_cutoff, 64);

  // The dispatched variant must be one of the enumerable ones, and the
  // enumeration always starts with the portable scalar kernel.
  lane::DenseKernels variants[3];
  const int nv = lane::all_dense_kernels(variants);
  ASSERT_GE(nv, 1);
  ASSERT_LE(nv, 3);
  EXPECT_STREQ(variants[0].isa, "scalar");
  bool found = false;
  for (int v = 0; v < nv; ++v)
    if (variants[v].fill == k.fill && variants[v].fill2 == k.fill2)
      found = true;
  EXPECT_TRUE(found) << "dispatched isa " << k.isa;
}

}  // namespace
}  // namespace oclp
