#include "area/area_model.hpp"

#include <gtest/gtest.h>

#include "mult/multiplier.hpp"

namespace oclp {
namespace {

TEST(SynthesisedLes, DeterministicPerRunSeed) {
  EXPECT_DOUBLE_EQ(synthesised_multiplier_les(8, 9, 5),
                   synthesised_multiplier_les(8, 9, 5));
  EXPECT_NE(synthesised_multiplier_les(8, 9, 5),
            synthesised_multiplier_les(8, 9, 6));
}

TEST(SynthesisedLes, CloseToNetlistGroundTruth) {
  const auto base = static_cast<double>(multiplier_logic_elements(8, 9));
  for (std::uint64_t run = 0; run < 50; ++run) {
    const double le = synthesised_multiplier_les(8, 9, run);
    EXPECT_GT(le, base * 0.85);
    EXPECT_LT(le, base * 1.15);
  }
}

TEST(CollectAreaSamples, CoversSweepGrid) {
  const auto samples = collect_area_samples(3, 9, 9, 10, 1);
  EXPECT_EQ(samples.size(), 7u * 10u);
  int count_wl5 = 0;
  for (const auto& s : samples) {
    EXPECT_GE(s.wordlength, 3);
    EXPECT_LE(s.wordlength, 9);
    EXPECT_GT(s.logic_elements, 0.0);
    if (s.wordlength == 5) ++count_wl5;
  }
  EXPECT_EQ(count_wl5, 10);
}

class AreaModelTest : public ::testing::Test {
 protected:
  AreaModelTest() : model_(AreaModel::fit(collect_area_samples(3, 9, 9, 30, 7))) {}
  AreaModel model_;
};

TEST_F(AreaModelTest, CoversFittedWordlengthsOnly) {
  for (int wl = 3; wl <= 9; ++wl) EXPECT_TRUE(model_.covers(wl));
  EXPECT_FALSE(model_.covers(2));
  EXPECT_FALSE(model_.covers(10));
  EXPECT_THROW(model_.estimate(10), CheckError);
}

TEST_F(AreaModelTest, EstimateTracksGroundTruth) {
  for (int wl = 3; wl <= 9; ++wl) {
    const auto base = static_cast<double>(multiplier_logic_elements(wl, 9));
    EXPECT_NEAR(model_.estimate(wl), base, base * 0.05) << "wl=" << wl;
  }
}

TEST_F(AreaModelTest, EstimateMonotoneInWordlength) {
  for (int wl = 4; wl <= 9; ++wl)
    EXPECT_GT(model_.estimate(wl), model_.estimate(wl - 1));
}

TEST_F(AreaModelTest, ConfidenceIntervalCoversMostRuns) {
  // ~95% of fresh synthesis runs must land inside estimate ± ci95.
  int inside = 0;
  const int runs = 400;
  for (int r = 0; r < runs; ++r) {
    const double le = synthesised_multiplier_les(7, 9, 1000 + r);
    if (std::abs(le - model_.estimate(7)) <= model_.ci95(7)) ++inside;
  }
  EXPECT_GT(inside, runs * 0.90);
  EXPECT_LT(inside, runs * 1.00);  // spread is real: not everything inside
}

TEST_F(AreaModelTest, Ci95IsPositiveAndScalesWithStddev) {
  for (int wl = 3; wl <= 9; ++wl) {
    EXPECT_GT(model_.stddev(wl), 0.0);
    EXPECT_DOUBLE_EQ(model_.ci95(wl), 1.96 * model_.stddev(wl));
  }
}

TEST_F(AreaModelTest, ColumnEstimateAddsAccumulation) {
  const double one_mult = model_.estimate(6);
  const double column = model_.column_estimate(6, 6, 9);
  EXPECT_GT(column, 6 * one_mult);            // P multipliers plus adders
  EXPECT_LT(column, 6 * one_mult + 6 * 30.0);  // adder overhead is modest
}

TEST_F(AreaModelTest, ColumnEstimateGrowsWithDims) {
  EXPECT_GT(model_.column_estimate(5, 8, 9), model_.column_estimate(5, 4, 9));
}

TEST(AreaModel, FitRejectsEmpty) {
  EXPECT_THROW(AreaModel::fit({}), CheckError);
}

TEST(AreaModel, FitSingleWordlength) {
  const auto model = AreaModel::fit(collect_area_samples(5, 5, 9, 5, 3));
  EXPECT_TRUE(model.covers(5));
  EXPECT_FALSE(model.covers(4));
}

}  // namespace
}  // namespace oclp
