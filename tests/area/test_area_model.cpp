#include "area/area_model.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mult/multiplier.hpp"

namespace oclp {
namespace {

MultConfig acfg(int wl) { return MultConfig{MultArch::Array, wl, 1}; }

TEST(SynthesisedLes, DeterministicPerRunSeed) {
  EXPECT_DOUBLE_EQ(synthesised_multiplier_les(acfg(8), 9, 5),
                   synthesised_multiplier_les(acfg(8), 9, 5));
  // Run-to-run spread is real: adjacent seeds may round to the same LE
  // count, but a handful of runs cannot all collide.
  std::set<double> distinct;
  for (std::uint64_t run = 0; run < 8; ++run)
    distinct.insert(synthesised_multiplier_les(acfg(8), 9, run));
  EXPECT_GT(distinct.size(), 1u);
}

TEST(SynthesisedLes, CloseToNetlistGroundTruth) {
  const auto base = static_cast<double>(multiplier_logic_elements(8, 9));
  for (std::uint64_t run = 0; run < 50; ++run) {
    const double le = synthesised_multiplier_les(acfg(8), 9, run);
    EXPECT_GT(le, base * 0.85);
    EXPECT_LT(le, base * 1.15);
  }
}

TEST(SynthesisedLes, ArchitecturesDiffer) {
  // The per-architecture netlists have different LE counts, so the noisy
  // synthesis proxy must separate them at the same word-length.
  const double array = synthesised_multiplier_les(acfg(6), 9, 3);
  const double wallace =
      synthesised_multiplier_les(MultConfig{MultArch::Wallace, 6, 1}, 9, 3);
  const double ccm =
      synthesised_multiplier_les(MultConfig{MultArch::Ccm, 6, 1}, 9, 3);
  EXPECT_NE(array, wallace);
  EXPECT_LT(ccm, array);  // constant folding beats the generic datapath
}

TEST(SynthesisedLes, PipelineRegistersCost) {
  EXPECT_GT(synthesised_multiplier_les(MultConfig{MultArch::Array, 6, 2}, 9, 3),
            synthesised_multiplier_les(acfg(6), 9, 3));
}

TEST(CollectAreaSamples, CoversConfigGrid) {
  const auto configs = mult_config_range(MultArch::Array, 3, 9);
  const auto samples = collect_area_samples(configs, 9, 10, 1);
  EXPECT_EQ(samples.size(), 7u * 10u);
  int count_wl5 = 0;
  for (const auto& s : samples) {
    EXPECT_GE(s.config.wordlength, 3);
    EXPECT_LE(s.config.wordlength, 9);
    EXPECT_GT(s.logic_elements, 0.0);
    if (s.config.wordlength == 5) ++count_wl5;
  }
  EXPECT_EQ(count_wl5, 10);
}

class AreaModelTest : public ::testing::Test {
 protected:
  AreaModelTest()
      : model_(AreaModel::fit(collect_area_samples(
            mult_config_range(MultArch::Array, 3, 9), 9, 30, 7))) {}
  AreaModel model_;
};

TEST_F(AreaModelTest, CoversFittedConfigsOnly) {
  for (int wl = 3; wl <= 9; ++wl) EXPECT_TRUE(model_.covers(acfg(wl)));
  EXPECT_FALSE(model_.covers(acfg(2)));
  EXPECT_FALSE(model_.covers(acfg(10)));
  // Same word-length, different architecture: a distinct table entry.
  EXPECT_FALSE(model_.covers(MultConfig{MultArch::Wallace, 5, 1}));
  EXPECT_THROW(model_.estimate(acfg(10)), CheckError);
}

TEST_F(AreaModelTest, EstimateTracksGroundTruth) {
  for (int wl = 3; wl <= 9; ++wl) {
    const auto base = static_cast<double>(multiplier_logic_elements(wl, 9));
    EXPECT_NEAR(model_.estimate(acfg(wl)), base, base * 0.05) << "wl=" << wl;
  }
}

TEST_F(AreaModelTest, EstimateMonotoneInWordlength) {
  for (int wl = 4; wl <= 9; ++wl)
    EXPECT_GT(model_.estimate(acfg(wl)), model_.estimate(acfg(wl - 1)));
}

TEST_F(AreaModelTest, ConfidenceIntervalCoversMostRuns) {
  // ~95% of fresh synthesis runs must land inside estimate ± ci95.
  int inside = 0;
  const int runs = 400;
  for (int r = 0; r < runs; ++r) {
    const double le = synthesised_multiplier_les(acfg(7), 9, 1000 + r);
    if (std::abs(le - model_.estimate(acfg(7))) <= model_.ci95(acfg(7)))
      ++inside;
  }
  EXPECT_GT(inside, runs * 0.90);
  EXPECT_LT(inside, runs * 1.00);  // spread is real: not everything inside
}

TEST_F(AreaModelTest, Ci95IsPositiveAndScalesWithStddev) {
  for (int wl = 3; wl <= 9; ++wl) {
    EXPECT_GT(model_.stddev(acfg(wl)), 0.0);
    EXPECT_DOUBLE_EQ(model_.ci95(acfg(wl)), 1.96 * model_.stddev(acfg(wl)));
  }
}

TEST_F(AreaModelTest, ColumnEstimateAddsAccumulation) {
  const double one_mult = model_.estimate(acfg(6));
  const double column = model_.column_estimate(acfg(6), 6, 9);
  EXPECT_GT(column, 6 * one_mult);            // P multipliers plus adders
  EXPECT_LT(column, 6 * one_mult + 6 * 30.0);  // adder overhead is modest
}

TEST_F(AreaModelTest, ColumnEstimateGrowsWithDims) {
  EXPECT_GT(model_.column_estimate(acfg(5), 8, 9),
            model_.column_estimate(acfg(5), 4, 9));
}

TEST(AreaModel, FitRejectsEmpty) {
  EXPECT_THROW(AreaModel::fit({}), CheckError);
}

TEST(AreaModel, FitSingleConfig) {
  const auto model = AreaModel::fit(collect_area_samples({acfg(5)}, 9, 5, 3));
  EXPECT_TRUE(model.covers(acfg(5)));
  EXPECT_FALSE(model.covers(acfg(4)));
}

TEST(AreaModel, MixedArchitectureTable) {
  // One fit can hold array, Wallace and CCM entries side by side — the
  // widened search consults a single table.
  std::vector<MultConfig> configs = {acfg(5),
                                     MultConfig{MultArch::Wallace, 5, 1},
                                     MultConfig{MultArch::Ccm, 5, 1}};
  const auto model = AreaModel::fit(collect_area_samples(configs, 9, 8, 11));
  for (const auto& c : configs) EXPECT_TRUE(model.covers(c));
  EXPECT_LT(model.estimate(MultConfig{MultArch::Ccm, 5, 1}),
            model.estimate(acfg(5)));
}

}  // namespace
}  // namespace oclp
