#include "mult/ccm.hpp"

#include <gtest/gtest.h>

#include "mult/bitcodec.hpp"
#include "mult/multiplier.hpp"

namespace oclp {
namespace {

TEST(CsdRecode, KnownValues) {
  // 7 = 8 - 1 → digits [-1, 0, 0, +1].
  EXPECT_EQ(csd_recode(7), (std::vector<int>{-1, 0, 0, 1}));
  // 5 = 4 + 1 → [+1, 0, +1].
  EXPECT_EQ(csd_recode(5), (std::vector<int>{1, 0, 1}));
  EXPECT_TRUE(csd_recode(0).empty());
  EXPECT_EQ(csd_recode(1), (std::vector<int>{1}));
}

TEST(CsdRecode, ReconstructsTheConstant) {
  for (std::uint64_t c = 0; c < 4096; ++c) {
    const auto digits = csd_recode(c);
    std::int64_t value = 0;
    for (std::size_t i = 0; i < digits.size(); ++i)
      value += static_cast<std::int64_t>(digits[i]) << i;
    EXPECT_EQ(value, static_cast<std::int64_t>(c));
  }
}

TEST(CsdRecode, NoAdjacentNonzeros) {
  for (std::uint64_t c = 0; c < 4096; ++c) {
    const auto digits = csd_recode(c);
    for (std::size_t i = 1; i < digits.size(); ++i)
      EXPECT_FALSE(digits[i] != 0 && digits[i - 1] != 0) << "c=" << c;
  }
}

TEST(CsdRecode, NeverMoreTermsThanBinary) {
  for (std::uint64_t c = 1; c < 2048; ++c)
    EXPECT_LE(csd_nonzero_terms(c), __builtin_popcountll(c)) << "c=" << c;
}

TEST(CsdRecode, BeatsBinaryOnRuns) {
  // 0b11111111 = 255: binary has 8 terms, CSD has 2 (256 - 1).
  EXPECT_EQ(csd_nonzero_terms(255), 2);
}

class CcmExhaustive : public ::testing::TestWithParam<bool> {};

TEST_P(CcmExhaustive, MatchesMultiplicationForAllConstants) {
  const bool use_csd = GetParam();
  const int wl_m = 5, wl_x = 5;
  for (std::uint32_t c = 0; c < (1u << wl_m); ++c) {
    const Netlist nl = make_ccm(c, wl_m, wl_x, use_csd);
    for (std::uint32_t x = 0; x < (1u << wl_x); ++x) {
      const auto out = nl.evaluate_outputs(to_bits(x, wl_x));
      ASSERT_EQ(from_bits(out), static_cast<std::uint64_t>(c) * x)
          << "c=" << c << " x=" << x << " csd=" << use_csd;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BinaryAndCsd, CcmExhaustive, ::testing::Bool());

TEST(Ccm, EightBitSpotChecks) {
  for (const std::uint32_t c : {222u, 255u, 129u, 85u}) {
    const Netlist nl = make_ccm(c, 8, 9);
    for (const std::uint32_t x : {0u, 1u, 511u, 347u}) {
      EXPECT_EQ(from_bits(nl.evaluate_outputs(to_bits(x, 9))),
                static_cast<std::uint64_t>(c) * x);
    }
  }
}

TEST(Ccm, SmallerThanGenericMultiplierForSparseConstants) {
  // The CCM's raison d'être: constants with few terms need few adders.
  const auto generic = multiplier_logic_elements(8, 9);
  EXPECT_LT(make_ccm(1u << 7, 8, 9).logic_elements(), generic / 4);
  EXPECT_LT(make_ccm(0x81, 8, 9).logic_elements(), generic);
}

TEST(Ccm, CsdReducesAreaOnRunConstants) {
  // 255 = 11111111b: 8 add terms in binary, 2 in CSD.
  const auto binary = make_ccm(255, 8, 9, false).logic_elements();
  const auto csd = make_ccm(255, 8, 9, true).logic_elements();
  EXPECT_LT(csd, binary);
}

TEST(Ccm, ZeroConstantIsFree) {
  const Netlist nl = make_ccm(0, 8, 9);
  EXPECT_EQ(nl.logic_elements(), 0u);
  EXPECT_EQ(from_bits(nl.evaluate_outputs(to_bits(345, 9))), 0u);
}

TEST(Ccm, ConstantRangeValidation) {
  EXPECT_THROW(make_ccm(32, 5, 5), CheckError);  // needs 6 bits
}

TEST(Ccm, CharacterisationCostExplodes) {
  // The paper's scaling argument: per-constant circuits vs one generic one.
  const auto cost8 = ccm_characterisation_cost(8);
  EXPECT_EQ(cost8.generic_circuits, 1u);
  EXPECT_EQ(cost8.ccm_circuits, 256u);
  EXPECT_DOUBLE_EQ(cost8.ccm_over_generic, 256.0);
  EXPECT_EQ(ccm_characterisation_cost(9).ccm_circuits, 512u);
}

}  // namespace
}  // namespace oclp
