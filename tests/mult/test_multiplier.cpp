#include "mult/multiplier.hpp"

#include <gtest/gtest.h>

#include "fabric/timing_annotation.hpp"
#include "mult/bitcodec.hpp"
#include "netlist/sta.hpp"

namespace oclp {
namespace {

class MultiplierSize
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MultiplierSize, ExhaustiveFunctionalCorrectness) {
  const auto [wa, wb] = GetParam();
  const Netlist nl = make_multiplier(wa, wb);
  EXPECT_EQ(nl.num_inputs(), static_cast<std::size_t>(wa + wb));
  EXPECT_EQ(nl.outputs().size(), static_cast<std::size_t>(wa + wb));
  for (int a = 0; a < (1 << wa); ++a) {
    for (int b = 0; b < (1 << wb); ++b) {
      auto bits = to_bits(a, wa);
      append_bits(bits, b, wb);
      const auto out = nl.evaluate_outputs(bits);
      ASSERT_EQ(from_bits(out), static_cast<std::uint64_t>(a) * b)
          << wa << "x" << wb << ": " << a << "*" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MultiplierSize,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 4}, std::pair{4, 1},
                      std::pair{2, 3}, std::pair{3, 3}, std::pair{4, 4},
                      std::pair{5, 3}, std::pair{6, 6}, std::pair{8, 4}));

TEST(Multiplier, EightByNineSpotChecks) {
  const Netlist nl = make_multiplier(8, 9);
  for (const auto& [a, b] : {std::pair{0u, 0u}, {255u, 511u}, {222u, 347u},
                            {1u, 511u}, {128u, 256u}, {97u, 300u}}) {
    auto bits = to_bits(a, 8);
    append_bits(bits, b, 9);
    EXPECT_EQ(from_bits(nl.evaluate_outputs(bits)),
              static_cast<std::uint64_t>(a) * b);
  }
}

TEST(Multiplier, MsbHasLongestPath) {
  // The paper's observation: the most significant product bits terminate
  // the longest chains, hence fail first under over-clocking.
  const Netlist nl = make_multiplier(8, 8);
  const auto lvl = nl.levels();
  const auto& outs = nl.outputs();
  int max_level = 0;
  std::size_t argmax = 0;
  for (std::size_t i = 0; i < outs.size(); ++i)
    if (lvl[outs[i]] > max_level) {
      max_level = lvl[outs[i]];
      argmax = i;
    }
  EXPECT_GE(argmax, outs.size() - 3);  // among the top product bits
  EXPECT_LT(lvl[outs[0]], max_level);  // LSB is much shorter
}

TEST(Multiplier, DepthGrowsWithWordlength) {
  int prev = 0;
  for (int wl = 2; wl <= 9; ++wl) {
    const int d = make_multiplier(wl, 9).depth();
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(Multiplier, LogicElementsGrowQuadratically) {
  const auto le4 = multiplier_logic_elements(4, 4);
  const auto le8 = multiplier_logic_elements(8, 8);
  EXPECT_GT(le8, 3 * le4);  // ~4x cells for 2x word-length
  EXPECT_LT(le8, 6 * le4);
}

TEST(Mac, FunctionalCorrectness) {
  const int wa = 4, wb = 5, acc_bits = 11;
  const Netlist nl = make_mac(wa, wb, acc_bits);
  for (const auto& [a, b, acc] :
       {std::tuple{3u, 7u, 100u}, {15u, 31u, 2047u}, {0u, 0u, 0u}, {9u, 20u, 512u}}) {
    auto bits = to_bits(a, wa);
    append_bits(bits, b, wb);
    append_bits(bits, acc, acc_bits);
    const auto out = nl.evaluate_outputs(bits);
    EXPECT_EQ(from_bits(out), static_cast<std::uint64_t>(a) * b + acc);
  }
}

TEST(Mac, RequiresAccumulatorHeadroom) {
  EXPECT_THROW(make_mac(4, 4, 7), CheckError);
  EXPECT_NO_THROW(make_mac(4, 4, 8));
}

TEST(Mac, DeeperThanBareMultiplier) {
  EXPECT_GT(make_mac(8, 9, 20).depth(), make_multiplier(8, 9).depth());
}

TEST(DspBlock, FasterThanLutMultiplierAndSlowerWhenHot) {
  const DeviceConfig cfg;
  Device dev(cfg, 1);
  const Placement pl{10, 10, 1};
  const double dsp = DspBlockModel::delay_ns(dev, pl);
  const double lut = device_critical_path_ns(make_multiplier(9, 9), dev, pl);
  EXPECT_LT(dsp, lut);  // hard macro beats LUT fabric
  EXPECT_LT(DspBlockModel::delay_ns(dev, pl), DspBlockModel::tool_delay_ns(cfg));
  dev.set_temperature(85.0);
  EXPECT_GT(DspBlockModel::delay_ns(dev, pl), dsp);
}

TEST(BitCodec, RoundTrip) {
  for (std::uint64_t v : {0ull, 1ull, 0xAAull, 0x1FFull, 0xFFFFull}) {
    const auto bits = to_bits(v, 16);
    EXPECT_EQ(bits.size(), 16u);
    EXPECT_EQ(from_bits(bits), v);
  }
}

TEST(BitCodec, AppendAndSlice) {
  std::vector<std::uint8_t> bits;
  append_bits(bits, 0b101, 3);
  append_bits(bits, 0b0110, 4);
  EXPECT_EQ(bits.size(), 7u);
  EXPECT_EQ(from_bits(bits, 0, 3), 0b101u);
  EXPECT_EQ(from_bits(bits, 3, 4), 0b0110u);
}

TEST(BitCodec, BoundsChecked) {
  const auto bits = to_bits(5, 4);
  EXPECT_THROW(from_bits(bits, 2, 4), CheckError);
  EXPECT_THROW(to_bits(1, 65), CheckError);
}

}  // namespace
}  // namespace oclp
