// Golden bitwise equivalence across multiplier architectures (satellite 1
// of the widened-design-space refactor): whatever architecture and
// pipeline depth a MultConfig selects, the settled output of the netlist
// must be the exact product — the architecture axis changes timing and
// area, never arithmetic. Pipeline registers are identity functions under
// settled evaluation, so the pipelined variants are checked against the
// same golden values with no cycle simulation.
#include <gtest/gtest.h>

#include <cstdint>

#include "mult/bitcodec.hpp"
#include "mult/ccm.hpp"
#include "mult/multiplier.hpp"
#include "netlist/pipeline.hpp"

namespace oclp {
namespace {

std::uint64_t settled_product(const Netlist& nl, std::uint32_t a, int wa,
                              std::uint32_t b, int wb) {
  auto bits = to_bits(a, wa);
  append_bits(bits, b, wb);
  return from_bits(nl.evaluate_outputs(bits));
}

class ArchGolden : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ArchGolden, GenericArchitecturesMatchTheArrayBitwise) {
  const auto [wl_m, wl_x] = GetParam();
  const Netlist array = make_multiplier(MultConfig{MultArch::Array, wl_m, 1},
                                        wl_x);
  const Netlist wallace =
      make_multiplier(MultConfig{MultArch::Wallace, wl_m, 1}, wl_x);
  ASSERT_EQ(array.outputs().size(), static_cast<std::size_t>(wl_m + wl_x));
  ASSERT_EQ(wallace.outputs().size(), array.outputs().size());
  for (std::uint32_t a = 0; a < (1u << wl_m); ++a) {
    for (std::uint32_t b = 0; b < (1u << wl_x); ++b) {
      const std::uint64_t golden = static_cast<std::uint64_t>(a) * b;
      ASSERT_EQ(settled_product(array, a, wl_m, b, wl_x), golden)
          << "array " << wl_m << "x" << wl_x << ": " << a << "*" << b;
      ASSERT_EQ(settled_product(wallace, a, wl_m, b, wl_x), golden)
          << "wallace " << wl_m << "x" << wl_x << ": " << a << "*" << b;
    }
  }
}

TEST_P(ArchGolden, PipelinedVariantsSettleToTheSameValues) {
  const auto [wl_m, wl_x] = GetParam();
  for (const MultArch arch : {MultArch::Array, MultArch::Wallace}) {
    for (const int depth : {2, 3}) {
      const Netlist nl = make_multiplier(MultConfig{arch, wl_m, depth}, wl_x);
      EXPECT_GT(pipeline_register_count(nl), 0u)
          << to_string(MultConfig{arch, wl_m, depth});
      for (std::uint32_t a = 0; a < (1u << wl_m); ++a)
        for (std::uint32_t b = 0; b < (1u << wl_x); ++b)
          ASSERT_EQ(settled_product(nl, a, wl_m, b, wl_x),
                    static_cast<std::uint64_t>(a) * b)
              << to_string(MultConfig{arch, wl_m, depth}) << ": " << a << "*"
              << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArchGolden,
                         ::testing::Values(std::pair{2, 3}, std::pair{3, 3},
                                           std::pair{3, 4}, std::pair{4, 4}));

TEST(ArchGoldenCcm, EveryConstantMatchesTheProduct) {
  const int wl_m = 4;
  const int wl_x = 4;
  for (std::uint32_t c = 0; c < (1u << wl_m); ++c) {
    const Netlist nl =
        make_ccm_multiplier(MultConfig{MultArch::Ccm, wl_m, 1}, c, wl_x);
    for (std::uint32_t x = 0; x < (1u << wl_x); ++x)
      ASSERT_EQ(from_bits(nl.evaluate_outputs(to_bits(x, wl_x))),
                static_cast<std::uint64_t>(c) * x)
          << "ccm constant " << c << " * " << x;
  }
}

TEST(ArchGoldenCcm, PipelinedCcmSettlesToTheSameValues) {
  const int wl_m = 4;
  const int wl_x = 4;
  for (std::uint32_t c : {1u, 5u, 7u, 11u, 15u}) {
    const Netlist nl =
        make_ccm_multiplier(MultConfig{MultArch::Ccm, wl_m, 2}, c, wl_x);
    // A single-term constant (c = 1) is pure wiring: there is no logic
    // stage to pipeline, so the clamp leaves the netlist register-free.
    if (csd_nonzero_terms(c) > 1) {
      EXPECT_GT(pipeline_register_count(nl), 0u) << "ccm constant " << c;
    }
    for (std::uint32_t x = 0; x < (1u << wl_x); ++x)
      ASSERT_EQ(from_bits(nl.evaluate_outputs(to_bits(x, wl_x))),
                static_cast<std::uint64_t>(c) * x)
          << "pipelined ccm constant " << c << " * " << x;
  }
}

TEST(ArchGoldenFactory, GenericFactoryRejectsCcmConfigs) {
  EXPECT_THROW(make_multiplier(MultConfig{MultArch::Ccm, 4, 1}, 4), CheckError);
}

TEST(ArchGoldenFactory, ExplicitPipelineCallMatchesConfigDepth) {
  // pipeline_netlist on the depth-1 netlist is exactly what the factory
  // does for deeper configs: same settled values, registers inserted.
  const Netlist base = make_multiplier(MultConfig{MultArch::Array, 3, 1}, 4);
  const Netlist piped = pipeline_netlist(base, 2);
  EXPECT_GT(pipeline_register_count(piped), 0u);
  for (std::uint32_t a = 0; a < 8; ++a)
    for (std::uint32_t b = 0; b < 16; ++b)
      ASSERT_EQ(settled_product(piped, a, 3, b, 4),
                settled_product(base, a, 3, b, 4));
}

}  // namespace
}  // namespace oclp
