#include "mult/wallace.hpp"

#include <gtest/gtest.h>

#include "mult/bitcodec.hpp"
#include "mult/multiplier.hpp"

namespace oclp {
namespace {

class WallaceSize : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(WallaceSize, ExhaustiveFunctionalCorrectness) {
  const auto [wa, wb] = GetParam();
  const Netlist nl = make_wallace_multiplier(wa, wb);
  EXPECT_EQ(nl.outputs().size(), static_cast<std::size_t>(wa + wb));
  for (int a = 0; a < (1 << wa); ++a) {
    for (int b = 0; b < (1 << wb); ++b) {
      auto bits = to_bits(a, wa);
      append_bits(bits, b, wb);
      ASSERT_EQ(from_bits(nl.evaluate_outputs(bits)),
                static_cast<std::uint64_t>(a) * b)
          << wa << "x" << wb << ": " << a << "*" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, WallaceSize,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 2}, std::pair{3, 4},
                      std::pair{4, 4}, std::pair{5, 5}, std::pair{6, 6},
                      std::pair{8, 4}));

TEST(Wallace, EightByNineSpotChecks) {
  const Netlist nl = make_wallace_multiplier(8, 9);
  for (const auto& [a, b] :
       {std::pair{255u, 511u}, {222u, 347u}, {1u, 1u}, {170u, 341u}}) {
    auto bits = to_bits(a, 8);
    append_bits(bits, b, 9);
    EXPECT_EQ(from_bits(nl.evaluate_outputs(bits)),
              static_cast<std::uint64_t>(a) * b);
  }
}

TEST(Wallace, ShallowerThanArrayMultiplier) {
  // The architectural point: log-depth reduction beats the linear array.
  for (int wl : {6, 8, 9}) {
    const int array_depth = make_multiplier(wl, wl).depth();
    const int wallace_depth = make_wallace_multiplier(wl, wl).depth();
    EXPECT_LT(wallace_depth, array_depth) << "wl=" << wl;
  }
}

TEST(Wallace, SimilarLogicBudgetToArray) {
  // Same 3:2 compressor count to first order: within ~35% of the array.
  const auto array = make_multiplier(8, 8).logic_elements();
  const auto wallace = make_wallace_multiplier(8, 8).logic_elements();
  EXPECT_GT(wallace, array * 0.65);
  EXPECT_LT(wallace, array * 1.35);
}

TEST(Wallace, DepthGrowsSlowlyWithWordlength) {
  // Tree depth is logarithmic in rows + linear only in the final adder, so
  // doubling the word-length must not double the depth.
  const int d4 = make_wallace_multiplier(4, 4).depth();
  const int d8 = make_wallace_multiplier(8, 8).depth();
  EXPECT_LT(d8, 2 * d4);
}

}  // namespace
}  // namespace oclp
