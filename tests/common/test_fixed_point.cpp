#include "common/fixed_point.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace oclp {
namespace {

TEST(FixedPoint, ZeroQuantisesToZero) {
  const auto q = quantize_coeff(0.0, 8);
  EXPECT_EQ(q.magnitude, 0u);
  EXPECT_EQ(q.sign, 1);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);
}

TEST(FixedPoint, SignHandling) {
  const auto pos = quantize_coeff(0.5, 4);
  const auto neg = quantize_coeff(-0.5, 4);
  EXPECT_EQ(pos.sign, 1);
  EXPECT_EQ(neg.sign, -1);
  EXPECT_EQ(pos.magnitude, neg.magnitude);
  EXPECT_DOUBLE_EQ(pos.value(), 0.5);
  EXPECT_DOUBLE_EQ(neg.value(), -0.5);
}

TEST(FixedPoint, SaturatesAtRangeEdge) {
  const auto q = quantize_coeff(1.5, 4);
  EXPECT_EQ(q.magnitude, 15u);  // 2^4 - 1
  EXPECT_DOUBLE_EQ(q.value(), 15.0 / 16.0);
  const auto qn = quantize_coeff(-2.0, 4);
  EXPECT_EQ(qn.magnitude, 15u);
  EXPECT_EQ(qn.sign, -1);
}

TEST(FixedPoint, InvalidWordlengthThrows) {
  EXPECT_THROW(quantize_coeff(0.1, 0), CheckError);
  EXPECT_THROW(quantize_coeff(0.1, 21), CheckError);
}

class FixedPointWl : public ::testing::TestWithParam<int> {};

TEST_P(FixedPointWl, QuantisationErrorBoundedByHalfStep) {
  // Within the representable range (|x| ≤ 1 − step/2) the rounding error is
  // at most half a step; beyond it the quantiser saturates.
  const int wl = GetParam();
  const double step = quant_step(wl);
  const double limit = 1.0 - step / 2;
  for (double x = -0.999; x < 0.999; x += 0.0137) {
    if (std::abs(x) > limit) continue;
    const auto q = quantize_coeff(x, wl);
    EXPECT_LE(std::abs(q.value() - x), step / 2 + 1e-12)
        << "x=" << x << " wl=" << wl;
  }
}

TEST_P(FixedPointWl, GridIsSortedSymmetricAndComplete) {
  const int wl = GetParam();
  const auto grid = coeff_grid(wl);
  EXPECT_EQ(grid.size(), (std::size_t{2} << wl) - 1);
  EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
  // Symmetric about zero.
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_DOUBLE_EQ(grid[i], -grid[grid.size() - 1 - i]);
  // Zero is the middle element.
  EXPECT_DOUBLE_EQ(grid[grid.size() / 2], 0.0);
}

TEST_P(FixedPointWl, GridValuesRoundTripThroughQuantiser) {
  const int wl = GetParam();
  for (const double v : coeff_grid(wl)) {
    const auto q = quantize_coeff(v, wl);
    EXPECT_DOUBLE_EQ(q.value(), v);
  }
}

TEST_P(FixedPointWl, MagnitudeFitsWordlength) {
  const int wl = GetParam();
  for (double x = -1.2; x <= 1.2; x += 0.093) {
    const auto q = quantize_coeff(x, wl);
    EXPECT_LT(q.magnitude, 1u << wl);
  }
}

INSTANTIATE_TEST_SUITE_P(Wordlengths, FixedPointWl, ::testing::Range(1, 13));

TEST(FixedPoint, QuantizeVectorMatchesElementwise) {
  const std::vector<double> xs{-0.7, 0.0, 0.3, 0.99};
  const auto qs = quantize_vector(xs, 6);
  ASSERT_EQ(qs.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto q = quantize_coeff(xs[i], 6);
    EXPECT_EQ(qs[i].magnitude, q.magnitude);
    EXPECT_EQ(qs[i].sign, q.sign);
  }
}

TEST(FixedPoint, StepHalvesPerBit) {
  EXPECT_DOUBLE_EQ(quant_step(3), 0.125);
  EXPECT_DOUBLE_EQ(quant_step(4), 0.0625);
  for (int wl = 1; wl < 12; ++wl)
    EXPECT_DOUBLE_EQ(quant_step(wl), 2.0 * quant_step(wl + 1));
}

}  // namespace
}  // namespace oclp
