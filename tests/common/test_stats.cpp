#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"

namespace oclp {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesClosedForm) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0);        // population
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.5);  // n-1
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, MergeEquivalentToSequential) {
  Rng rng(3);
  RunningStats whole, part1, part2;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i < 200 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(part1.min(), whole.min());
  EXPECT_DOUBLE_EQ(part1.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStats, NumericallyStableOnOffsetData) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + i % 2);
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(VectorStats, MeanVarianceMeanSquare) {
  const std::vector<double> xs{-1.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 0.0);
  EXPECT_NEAR(variance_of(xs), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(mean_square(xs), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_EQ(mean_square({}), 0.0);
}

TEST(Correlation, PerfectAndAnti) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  const std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, z), -1.0, 1e-12);
}

TEST(Correlation, ConstantVectorGivesZero) {
  EXPECT_EQ(correlation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.5 * i);
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-10);
  EXPECT_NEAR(fit.slope, 2.5, 1e-10);
  EXPECT_NEAR(fit.residual_stddev, 0.0, 1e-9);
}

TEST(LinearFit, NoisyLine) {
  Rng rng(17);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    x.push_back(i * 0.01);
    y.push_back(1.0 - 0.7 * x.back() + rng.normal(0.0, 0.1));
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 0.02);
  EXPECT_NEAR(fit.slope, -0.7, 0.01);
  EXPECT_NEAR(fit.residual_stddev, 0.1, 0.01);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.frequency(5), 0.2);
}

TEST(Histogram, BinEdges) {
  Histogram h(-1.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), -1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(1), -0.25);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add({0.1, 0.2, 0.8});
  const auto text = h.render(10);
  EXPECT_NE(text.find("2"), std::string::npos);
  EXPECT_NE(text.find("#"), std::string::npos);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), CheckError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
}

}  // namespace
}  // namespace oclp
