#include "common/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace oclp {
namespace {

TEST(ParseCpulist, HandlesSinglesRangesAndMixes) {
  EXPECT_EQ(parse_cpulist("0"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpulist("0-2,8,10-11"),
            (std::vector<int>{0, 1, 2, 8, 10, 11}));
  // sysfs pads with a trailing newline-free string; whitespace-free input
  // is the contract, but duplicates and unordered chunks must still fold.
  EXPECT_EQ(parse_cpulist("4,2,4,2-3"), (std::vector<int>{2, 3, 4}));
}

TEST(ParseCpulist, SkipsMalformedChunksInsteadOfThrowing) {
  EXPECT_TRUE(parse_cpulist("").empty());
  EXPECT_TRUE(parse_cpulist(",,").empty());
  EXPECT_EQ(parse_cpulist("x,1,-,2-"), (std::vector<int>{1}));
}

TEST(Topology, ProbeYieldsAtLeastOneNodeWithCpus) {
  const Topology topo = probe_topology();
  ASSERT_FALSE(topo.nodes.empty());
  EXPECT_GE(topo.num_cpus(), 1u);
  for (const auto& node : topo.nodes) {
    EXPECT_FALSE(node.cpus.empty());
    EXPECT_TRUE(std::is_sorted(node.cpus.begin(), node.cpus.end()));
  }
  EXPECT_EQ(topo.multi_node(), topo.nodes.size() > 1);
}

TEST(Topology, CachedProbeIsStable) {
  const Topology& a = topology();
  const Topology& b = topology();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_cpus(), 1u);
}

TEST(Topology, CpuForWorkerWrapsNodeMajor) {
  Topology topo;
  topo.nodes.push_back({0, {0, 1}});
  topo.nodes.push_back({1, {4, 5, 6}});
  // Node-major, cpu-ascending, wrapping modulo the 5 CPUs.
  EXPECT_EQ(topo.cpu_for_worker(0), 0);
  EXPECT_EQ(topo.cpu_for_worker(1), 1);
  EXPECT_EQ(topo.cpu_for_worker(2), 4);
  EXPECT_EQ(topo.cpu_for_worker(4), 6);
  EXPECT_EQ(topo.cpu_for_worker(5), 0);
  EXPECT_EQ(topo.cpu_for_worker(12), 4);

  EXPECT_EQ(topo.node_of_cpu(1), 0);
  EXPECT_EQ(topo.node_of_cpu(6), 1);
  EXPECT_EQ(topo.node_of_cpu(99), 0);  // unknown CPUs fold to node 0
  EXPECT_TRUE(topo.multi_node());
}

TEST(Topology, EveryProbedWorkerMapsIntoItsOwnNode) {
  // The worker→CPU→node chain the pinned pool relies on: every worker
  // index maps to a CPU the probe owns, and node_of_cpu agrees with the
  // node that CPU was listed under.
  const Topology& topo = topology();
  for (std::size_t w = 0; w < 2 * topo.num_cpus(); ++w) {
    const int cpu = topo.cpu_for_worker(w);
    bool owned = false;
    for (const auto& node : topo.nodes) {
      if (std::binary_search(node.cpus.begin(), node.cpus.end(), cpu)) {
        owned = true;
        EXPECT_EQ(topo.node_of_cpu(cpu), node.id);
      }
    }
    EXPECT_TRUE(owned) << "worker " << w << " cpu " << cpu;
  }
}

}  // namespace
}  // namespace oclp
