#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"

namespace oclp {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("beta"), 2.25});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.25"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({std::string("x"), 1.0});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"a"});
  t.add_row({std::string("hello, \"world\"")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\n\"hello, \"\"world\"\"\"\n");
}

TEST(Table, IntegerCells) {
  Table t({"n"});
  t.add_row({static_cast<long long>(42)});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "n\n42\n");
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), CheckError);
}

TEST(Table, EmptyColumnListThrows) {
  EXPECT_THROW(Table({}), CheckError);
}

}  // namespace
}  // namespace oclp
