#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

namespace oclp {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123), b(124);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(55);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(55);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 255ull, 1000003ull}) {
    for (int i = 0; i < 2000; ++i) ASSERT_LT(rng.uniform_u64(bound), bound);
  }
}

TEST(Rng, UniformU64HitsAllSmallValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformU64ApproximatelyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_u64(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, 600);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(21);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, GammaMeanAndVariance) {
  Rng rng(23);
  const double shape = 3.0, scale = 2.0;
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gamma(shape, scale);
    ASSERT_GT(g, 0.0);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, shape * scale, 0.1);                      // E = kθ
  EXPECT_NEAR(sum2 / n - mean * mean, shape * scale * scale, 0.5);  // V = kθ²
}

TEST(Rng, GammaSmallShape) {
  Rng rng(25);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.gamma(0.5, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, InverseGammaMean) {
  Rng rng(27);
  // InvGamma(a, b) has mean b/(a-1) for a > 1.
  const double a = 4.0, b = 6.0;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.inverse_gamma(a, b);
  EXPECT_NEAR(sum / n, b / (a - 1.0), 0.05);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(29);
  const std::vector<double> w{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0], n * 0.1, 500);
  EXPECT_NEAR(counts[1], n * 0.3, 800);
  EXPECT_NEAR(counts[2], n * 0.6, 800);
}

TEST(Rng, CategoricalZeroWeightNeverChosen) {
  Rng rng(31);
  const std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(rng.categorical(w), 1u);
}

TEST(Rng, CategoricalAllZeroThrows) {
  Rng rng(33);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), CheckError);
  EXPECT_THROW(rng.categorical({}), CheckError);
}

TEST(Rng, CategoricalPrecomputedTotalMatchesAutoTotal) {
  // The two-argument overload with the exact index-order running total must
  // reproduce the one-argument draws from the same stream position.
  const std::vector<double> w{0.5, 0.0, 2.25, 1e-6, 7.0};
  double total = 0.0;
  for (double v : w) total += v;
  Rng a(37), b(37);
  for (int i = 0; i < 20000; ++i)
    ASSERT_EQ(a.categorical(w), b.categorical(w, total));
}

TEST(Rng, CategoricalPrecomputedTotalConsumesOneUniform) {
  Rng a(39), b(39);
  a.categorical({1.0, 2.0}, 3.0);
  b.uniform();
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, CategoricalNonFiniteTotalThrows) {
  Rng rng(41);
  const std::vector<double> w{1.0, 2.0};
  EXPECT_THROW(rng.categorical(w, std::numeric_limits<double>::quiet_NaN()),
               CheckError);
  EXPECT_THROW(rng.categorical(w, std::numeric_limits<double>::infinity()),
               CheckError);
  EXPECT_THROW(rng.categorical(w, 0.0), CheckError);
}

TEST(Rng, CategoricalNaNWeightCaughtByTotalCheck) {
  // A NaN weight poisons the running total; the overload must refuse it
  // instead of walking off the distribution.
  Rng rng(43);
  const std::vector<double> w{1.0, std::numeric_limits<double>::quiet_NaN()};
  double total = 0.0;
  for (double v : w) total += v;
  EXPECT_THROW(rng.categorical(w, total), CheckError);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(35);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(HashMix, DistinctInputsDistinctOutputs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 50; ++a)
    for (std::uint64_t b = 0; b < 50; ++b) seen.insert(hash_mix(a, b));
  EXPECT_EQ(seen.size(), 2500u);
}

TEST(HashMix, Deterministic) {
  EXPECT_EQ(hash_mix(1, 2, 3), hash_mix(1, 2, 3));
  EXPECT_NE(hash_mix(1, 2, 3), hash_mix(3, 2, 1));
}

}  // namespace
}  // namespace oclp
