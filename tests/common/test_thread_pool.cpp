#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/topology.hpp"

namespace oclp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRespectsRange) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 10 + 11 + 12 + 13 + 14 + 15 + 16 + 17 + 18 + 19);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(5, 5, [&](std::size_t) { count.fetch_add(1); });
  pool.parallel_for(7, 3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 42) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, PoolSurvivesExceptionAndKeepsWorking) {
  ThreadPool pool(2);
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  std::atomic<int> ok{0};
  pool.parallel_for(0, 50, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 50);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  std::atomic<int> count{0};
  ThreadPool::global().parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A worker that calls parallel_for used to block on futures that only
  // other (equally blocked) workers could run. Nested calls now execute
  // inline on the calling worker.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NestedTwoLevelsOnSingleThreadPool) {
  // One worker: any queued-and-waiting nesting deadlocks deterministically,
  // so this pins the inline-execution path at two levels of nesting.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 4, [&](std::size_t) {
      pool.parallel_for(0, 4, [&](std::size_t) { count.fetch_add(1); });
    });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NestedParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 4,
                                 [&](std::size_t) {
                                   pool.parallel_for(0, 4, [](std::size_t i) {
                                     if (i == 2)
                                       throw std::runtime_error("inner boom");
                                   });
                                 }),
               std::runtime_error);
  // Pool still works afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for(0, 10, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, CurrentThreadIsWorkerDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.current_thread_is_worker());
  std::atomic<int> inside{0};
  pool.submit([&] { inside.store(pool.current_thread_is_worker() ? 1 : -1); })
      .get();
  EXPECT_EQ(inside.load(), 1);
  // A worker of one pool is not a worker of another.
  ThreadPool other(1);
  std::atomic<int> cross{0};
  other.submit([&] { cross.store(pool.current_thread_is_worker() ? 1 : -1); })
      .get();
  EXPECT_EQ(cross.load(), -1);
}

TEST(ThreadPool, GaugesAreZeroAtRest) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.inflight(), 0u);
}

TEST(ThreadPool, QueueDepthAndInflightTrackBlockedWork) {
  ThreadPool pool(1);
  std::promise<void> release;
  auto gate = release.get_future().share();
  auto blocker = pool.submit([gate] { gate.wait(); });

  // The single worker picks up the blocker; everything behind it queues.
  while (pool.inflight() != 1) std::this_thread::yield();
  std::vector<std::future<void>> rest;
  for (int i = 0; i < 5; ++i) rest.push_back(pool.submit([] {}));
  EXPECT_EQ(pool.queue_depth(), 5u);
  EXPECT_EQ(pool.inflight(), 1u);

  release.set_value();
  blocker.get();
  for (auto& f : rest) f.get();
  // The future resolves inside task(); the gauge decrement lands just after.
  while (pool.inflight() != 0) std::this_thread::yield();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, InflightCountsConcurrentWorkers) {
  ThreadPool pool(3);
  std::promise<void> release;
  auto gate = release.get_future().share();
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 3; ++i)
    futures.push_back(pool.submit([gate] { gate.wait(); }));
  while (pool.inflight() != 3) std::this_thread::yield();
  EXPECT_EQ(pool.queue_depth(), 0u);
  release.set_value();
  for (auto& f : futures) f.get();
  while (pool.inflight() != 0) std::this_thread::yield();
}

TEST(ThreadPool, ManyMoreChunksThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  const std::size_t n = 100000;
  pool.parallel_for(0, n, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), static_cast<long>(n * (n - 1) / 2));
}

TEST(ThreadPool, SubmitOnRunsOnTheDesignatedWorker) {
  ThreadPool pool(3);
  for (int round = 0; round < 4; ++round) {
    std::vector<std::future<void>> futures;
    std::vector<int> ran_on(pool.size() * 5, -1);
    for (std::size_t t = 0; t < ran_on.size(); ++t)
      futures.push_back(pool.submit_on(t % pool.size(), [&pool, &ran_on, t] {
        ran_on[t] = pool.current_worker_index();
      }));
    for (auto& f : futures) f.get();
    for (std::size_t t = 0; t < ran_on.size(); ++t)
      EXPECT_EQ(ran_on[t], static_cast<int>(t % pool.size())) << "task " << t;
  }
}

TEST(ThreadPool, SubmitOnRejectsOutOfRangeWorker) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.submit_on(2, [] {}), CheckError);
}

TEST(ThreadPool, SubmitOnPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit_on(1, [] { throw std::runtime_error("directed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives and keeps draining its directed queue.
  auto g = pool.submit_on(1, [] {});
  g.get();
}

TEST(ThreadPool, PinnedPoolReportsWorkerPlacement) {
  ThreadPool pool(2, /*pin_workers=*/true);
  EXPECT_TRUE(pool.pinned());
  EXPECT_FALSE(ThreadPool::global().pinned());
  const Topology& topo = topology();
  for (std::size_t w = 0; w < pool.size(); ++w) {
    EXPECT_EQ(pool.worker_cpu(w), topo.cpu_for_worker(w));
    EXPECT_EQ(pool.worker_node(w), topo.node_of_cpu(pool.worker_cpu(w)));
  }
  // Pinning never changes what runs, only where: the pool still executes
  // everything it accepts.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);

  ThreadPool& pg = ThreadPool::pinned_global();
  EXPECT_TRUE(pg.pinned());
  EXPECT_EQ(&pg, &ThreadPool::pinned_global());
}

}  // namespace
}  // namespace oclp
