// ExecPolicy: chunking math, deterministic fixed-order reduction, and the
// bitwise Serial-vs-Pool guarantee of every consumer that routes through
// the policy layer (multiply, characterise_multiplier, Gibbs scoring,
// project_batch).
#include "common/exec_policy.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <string>

#include "bayes/gibbs.hpp"
#include "bayes/prior.hpp"
#include "charlib/sweep.hpp"
#include "common/rng.hpp"
#include "core/circuit_eval.hpp"
#include "core/design.hpp"
#include "fabric/calibration.hpp"
#include "linalg/matrix.hpp"

namespace oclp {
namespace {

TEST(ExecPolicy, SerialAutoIsOneChunk) {
  const auto p = ExecPolicy::serial();
  EXPECT_EQ(p.kind(), ExecKind::Serial);
  EXPECT_EQ(p.workers(), 1u);
  EXPECT_EQ(p.num_chunks(1000), 1u);
  EXPECT_EQ(p.chunk_size_for(1000), 1000u);
  EXPECT_EQ(p.num_chunks(0), 0u);
}

TEST(ExecPolicy, PooledAutoMakesAFewChunksPerWorker) {
  const ExecPolicy p;  // default = pooled on the global pool
  EXPECT_EQ(p.kind(), ExecKind::Pool);
  const std::size_t w = p.workers();
  ASSERT_GE(w, 1u);
  const std::size_t n = 10000;
  // ceil(n / (w * chunks_per_worker)) chunks of equal size (last ragged).
  const std::size_t size = p.chunk_size_for(n);
  EXPECT_EQ(size, (n + w * 4 - 1) / (w * 4));
  EXPECT_EQ(p.num_chunks(n), (n + size - 1) / size);
  // min_chunk floors the automatic size.
  const auto floored = ExecPolicy::pooled(nullptr, ExecChunking{0, 4, 500});
  EXPECT_GE(floored.chunk_size_for(n), 500u);
}

TEST(ExecPolicy, ExplicitChunkSizeIsHonouredByBothKinds) {
  for (const auto& p : {ExecPolicy::serial(ExecChunking{7}),
                        ExecPolicy::pooled(nullptr, ExecChunking{7})}) {
    EXPECT_EQ(p.chunk_size_for(100), 7u);
    EXPECT_EQ(p.num_chunks(100), 15u);  // ceil(100/7)
  }
}

TEST(ExecPolicy, ForChunksTilesTheRangeExactly) {
  for (const auto& p : {ExecPolicy::serial(ExecChunking{5}),
                        ExecPolicy::pooled(nullptr, ExecChunking{5}),
                        ExecPolicy::pinned(ExecChunking{5}),
                        ExecPolicy(), ExecPolicy::serial(),
                        ExecPolicy::pinned()}) {
    std::mutex mu;
    std::vector<std::uint8_t> seen(143, 0);
    std::set<std::size_t> chunks;
    p.for_chunks(10, 143, [&](std::size_t c0, std::size_t c1,
                              std::size_t chunk) {
      std::lock_guard lock(mu);
      ASSERT_LT(c0, c1);
      for (std::size_t i = c0; i < c1; ++i) {
        ASSERT_EQ(seen[i], 0u) << "index covered twice";
        seen[i] = 1;
      }
      ASSERT_TRUE(chunks.insert(chunk).second) << "chunk index repeated";
    });
    for (std::size_t i = 0; i < seen.size(); ++i)
      EXPECT_EQ(seen[i], i >= 10 ? 1 : 0) << "index " << i;
    // Chunk indices are 0..num_chunks-1 (ascending, gap-free).
    EXPECT_EQ(chunks.size(), p.num_chunks(133));
    EXPECT_EQ(*chunks.rbegin() + 1, chunks.size());
  }
  // Empty and inverted ranges are no-ops.
  ExecPolicy().for_chunks(5, 5, [](std::size_t, std::size_t, std::size_t) {
    FAIL() << "empty range must not invoke the body";
  });
}

TEST(ExecPolicy, ForEachVisitsEveryIndexOnce) {
  const std::size_t n = 1000;
  for (const auto& p : {ExecPolicy::serial(), ExecPolicy()}) {
    std::vector<std::atomic<int>> visits(n);
    p.for_each(0, n, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
  }
}

TEST(ExecPolicy, ReduceCombinesInAscendingChunkOrder) {
  // String concatenation is maximally order-sensitive: any reordering of
  // the per-chunk partials changes the result.
  const auto run = [](const ExecPolicy& p) {
    return p.reduce<std::string>(
        0, 26,
        std::string{},
        [](std::size_t c0, std::size_t c1) {
          std::string s;
          for (std::size_t i = c0; i < c1; ++i)
            s.push_back(static_cast<char>('a' + i));
          return s;
        },
        [](std::string acc, std::string part) { return acc + part; });
  };
  const std::string want = "abcdefghijklmnopqrstuvwxyz";
  EXPECT_EQ(run(ExecPolicy::serial()), want);
  EXPECT_EQ(run(ExecPolicy::serial(ExecChunking{3})), want);
  EXPECT_EQ(run(ExecPolicy()), want);
  EXPECT_EQ(run(ExecPolicy::pooled(nullptr, ExecChunking{1})), want);
  EXPECT_EQ(run(ExecPolicy::pooled(nullptr, ExecChunking{5})), want);
}

TEST(ExecPolicy, PinnedRunsChunksOnTheScheduledWorkers) {
  // The static cyclic schedule that makes chunk-keyed workspaces
  // NUMA-local: chunk c must execute on worker chunk_worker(c) = c % W of
  // the pinned pool, every time.
  const auto p = ExecPolicy::pinned(ExecChunking{4});
  EXPECT_TRUE(p.is_pinned());
  EXPECT_FALSE(ExecPolicy().is_pinned());
  EXPECT_FALSE(ExecPolicy::serial().is_pinned());
  ThreadPool& pool = p.pool();
  EXPECT_TRUE(pool.pinned());
  EXPECT_EQ(&pool, &ThreadPool::pinned_global());

  const std::size_t n = pool.size() * 8 + 5;
  const std::size_t chunks = p.num_chunks(n);
  std::vector<int> ran_on(chunks, -2);
  for (int repeat = 0; repeat < 3; ++repeat) {
    p.for_chunks(0, n, [&](std::size_t, std::size_t, std::size_t chunk) {
      ran_on[chunk] = pool.current_worker_index();
    });
    for (std::size_t c = 0; c < chunks; ++c) {
      ASSERT_EQ(ran_on[c], static_cast<int>(p.chunk_worker(c)))
          << "chunk " << c << " repeat " << repeat;
      ASSERT_EQ(p.chunk_node(c), pool.worker_node(p.chunk_worker(c)));
    }
  }
  // Serial policies nominally place everything on worker/node 0.
  EXPECT_EQ(ExecPolicy::serial().chunk_worker(7), 0u);
  EXPECT_EQ(ExecPolicy::serial().chunk_node(7), 0);
}

TEST(ExecPolicy, PinnedMatchesSerialTilingAndResults) {
  // Same explicit chunk size ⇒ identical chunk index → range mapping
  // across Serial / Pool / pinned, which is what lets consumers key
  // workspaces on the chunk index under any policy.
  for (std::size_t chunk_size : {std::size_t{1}, std::size_t{7}}) {
    std::vector<std::vector<std::size_t>> tilings;
    for (const auto& p :
         {ExecPolicy::serial(ExecChunking{chunk_size}),
          ExecPolicy::pooled(nullptr, ExecChunking{chunk_size}),
          ExecPolicy::pinned(ExecChunking{chunk_size})}) {
      std::mutex mu;
      std::vector<std::size_t> tiling(3 * p.num_chunks(100));
      p.for_chunks(0, 100, [&](std::size_t c0, std::size_t c1,
                               std::size_t chunk) {
        std::lock_guard lock(mu);
        tiling[3 * chunk] = c0;
        tiling[3 * chunk + 1] = c1;
        tiling[3 * chunk + 2] = chunk;
      });
      tilings.push_back(std::move(tiling));
    }
    EXPECT_EQ(tilings[0], tilings[1]);
    EXPECT_EQ(tilings[0], tilings[2]);
  }
}

TEST(ExecPolicy, ChunkArenaKeepsSlotAddressesStable) {
  ChunkArena<std::vector<int>> arena;
  arena.ensure(3);
  std::vector<int>* first = &arena.at(0);
  arena.at(0).assign(100, 7);
  arena.ensure(64);  // growth must not move existing slots
  EXPECT_EQ(&arena.at(0), first);
  EXPECT_EQ(arena.at(0).size(), 100u);
  EXPECT_EQ(arena.size(), 64u);
  arena.ensure(2);  // never shrinks
  EXPECT_EQ(arena.size(), 64u);
}

TEST(ExecPolicy, NestedPooledUseRunsInlineWithoutDeadlock) {
  // A pooled policy invoked from inside a worker of the same pool must run
  // inline (ThreadPool::parallel_for's nested rule) — saturating the pool
  // with outer tasks that each fan out again must still terminate.
  const std::size_t outer = ThreadPool::global().size() * 4 + 3;
  std::vector<std::size_t> sums(outer, 0);
  ExecPolicy{}.for_each(0, outer, [&](std::size_t o) {
    std::size_t s = 0;
    ExecPolicy{}.for_each(0, 100, [&](std::size_t i) { s += i; });
    sums[o] = s;
  });
  for (std::size_t o = 0; o < outer; ++o) EXPECT_EQ(sums[o], 4950u);

  // Same property for pinned policies: a directed schedule issued from
  // inside a pinned worker degrades to inline execution instead of
  // waiting on directed queues only blocked workers could drain.
  const auto pinned = ExecPolicy::pinned(ExecChunking{1});
  const std::size_t pouter = pinned.pool().size() * 4 + 3;
  std::vector<std::size_t> psums(pouter, 0);
  pinned.for_each(0, pouter, [&](std::size_t o) {
    std::size_t s = 0;
    pinned.for_each(0, 100, [&](std::size_t i) { s += i; });
    psums[o] = s;
  });
  for (std::size_t o = 0; o < pouter; ++o) EXPECT_EQ(psums[o], 4950u);
}

TEST(ExecPolicy, MultiplyIsBitwiseIdenticalAcrossPolicies) {
  Rng rng(17);
  Matrix a(37, 19), b(19, 23);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal(0, 1);
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.normal(0, 1);
  const Matrix ref = multiply(a, b, ExecPolicy::serial());
  for (const auto& p : {ExecPolicy(), ExecPolicy::pooled(nullptr, ExecChunking{1}),
                        ExecPolicy::pooled(nullptr, ExecChunking{3}),
                        ExecPolicy::serial(ExecChunking{16})}) {
    const Matrix got = multiply(a, b, p);
    ASSERT_TRUE(got.same_shape(ref));
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_EQ(got.data()[i], ref.data()[i]) << "entry " << i;
  }
}

TEST(ExecPolicy, SweepIsBitwiseIdenticalSerialVsPool) {
  Device device(reference_device_config(), kReferenceDieSeed);
  device.set_temperature(kCharacterisationTempC);
  SweepSettings ss;
  ss.locations = {reference_location_1()};
  ss.samples_per_point = 120;
  ss.freqs_mhz = {250.0, 400.0};
  const MultConfig cfg{MultArch::Array, 4, 1};
  const auto serial =
      characterise_multiplier(device, cfg, 4, ss, ExecPolicy::serial());
  const auto pooled = characterise_multiplier(device, cfg, 4, ss, ExecPolicy{});
  const auto pinned =
      characterise_multiplier(device, cfg, 4, ss, ExecPolicy::pinned());
  for (std::uint32_t m = 0; m < 16; ++m)
    for (double f : ss.freqs_mhz) {
      ASSERT_EQ(serial.variance(m, f), pooled.variance(m, f));
      ASSERT_EQ(serial.mean_error(m, f), pooled.mean_error(m, f));
      ASSERT_EQ(serial.error_rate(m, f), pooled.error_rate(m, f));
      ASSERT_EQ(serial.variance(m, f), pinned.variance(m, f));
      ASSERT_EQ(serial.mean_error(m, f), pinned.mean_error(m, f));
      ASSERT_EQ(serial.error_rate(m, f), pinned.error_rate(m, f));
    }
}

TEST(ExecPolicy, ErrorRateCurveIsBitwiseIdenticalSerialVsPool) {
  Device device(reference_device_config(), kReferenceDieSeed);
  device.set_temperature(kCharacterisationTempC);
  const std::vector<double> freqs{200.0, 350.0, 450.0};
  const auto serial = error_rate_curve(device, 5, 5, reference_location_1(),
                                       freqs, 300, 7, ExecPolicy::serial());
  const auto pooled = error_rate_curve(device, 5, 5, reference_location_1(),
                                       freqs, 300, 7, ExecPolicy{});
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].error_rate, pooled[i].error_rate);
    ASSERT_EQ(serial[i].error_variance, pooled[i].error_variance);
  }
}

TEST(ExecPolicy, GibbsChainIsBitwiseIdenticalAcrossPolicies) {
  Rng rng(5);
  Matrix x(6, 40);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal(0, 1);
  const CoeffPrior prior =
      make_flat_prior(MultConfig{MultArch::Array, 5, 1}, 310.0);
  GibbsSettings gs;
  gs.burn_in = 20;
  gs.samples = 60;
  gs.seed = 33;
  const GibbsResult ref = sample_projection(x, prior, gs);
  for (const auto& p : {ExecPolicy(), ExecPolicy::pooled(nullptr, ExecChunking{1}),
                        ExecPolicy::serial(ExecChunking{2})}) {
    GibbsSettings alt = gs;
    alt.exec = p;
    const GibbsResult got = sample_projection(x, prior, alt);
    ASSERT_EQ(got.lambda, ref.lambda);
    ASSERT_EQ(got.lambda_mean, ref.lambda_mean);
    ASSERT_EQ(got.psi, ref.psi);
    ASSERT_EQ(got.visits, ref.visits);
    ASSERT_EQ(got.avg_log_likelihood, ref.avg_log_likelihood);
  }
}

TEST(ExecPolicy, ProjectBatchIsBitwiseIdenticalAcrossChunkSizes) {
  Device device(reference_device_config(), kReferenceDieSeed);
  device.set_temperature(kCharacterisationTempC);
  LinearProjectionDesign design;
  const MultConfig cfg{MultArch::Array, 5, 1};
  design.columns.push_back(make_column({0.75, -0.5, 0.25, 0.125}, cfg));
  design.columns.push_back(make_column({-0.25, 0.625, -0.75, 0.5}, cfg));
  design.target_freq_mhz = 330.0;
  const int wl_x = 6;
  const auto plan = simulated_plan(design, reference_location_1());

  Rng rng(29);
  std::vector<std::vector<std::uint32_t>> requests(70);
  for (auto& r : requests) {
    r.resize(design.dims_p());
    for (auto& c : r)
      c = static_cast<std::uint32_t>(rng.uniform_u64(1u << wl_x));
  }
  std::vector<const std::vector<std::uint32_t>*> batch;
  for (const auto& r : requests) batch.push_back(&r);

  std::vector<std::vector<double>> ref_ys;
  {
    ProjectionCircuit circuit(design, device, plan, wl_x, nullptr, 42);
    circuit.set_exec_policy(ExecPolicy::serial());
    circuit.project_batch(batch, ref_ys);
  }
  for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{16}}) {
    for (const bool pin : {false, true}) {
      ProjectionCircuit circuit(design, device, plan, wl_x, nullptr, 42);
      circuit.set_exec_policy(pin
                                  ? ExecPolicy::pinned(ExecChunking{chunk})
                                  : ExecPolicy::pooled(nullptr,
                                                       ExecChunking{chunk}));
      std::vector<std::vector<double>> ys;
      circuit.project_batch(batch, ys);
      ASSERT_EQ(ys.size(), ref_ys.size());
      for (std::size_t s = 0; s < ys.size(); ++s)
        ASSERT_EQ(ys[s], ref_ys[s])
            << "chunk size " << chunk << (pin ? " pinned" : "") << " sample "
            << s;
    }
  }
}

}  // namespace
}  // namespace oclp
