#include "klt/klt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace oclp {
namespace {

// Data with a planted dominant direction plus small noise.
Matrix planted_data(const std::vector<double>& direction, std::size_t n,
                    double noise, std::uint64_t seed) {
  Rng rng(seed);
  const auto u = normalized(direction);
  Matrix x(u.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const double z = rng.normal(0.0, 1.0);
    for (std::size_t r = 0; r < u.size(); ++r)
      x(r, i) = 10.0 + z * u[r] + rng.normal(0.0, noise);
  }
  return x;
}

TEST(KltBasis, RecoversPlantedDirection) {
  const std::vector<double> dir{1.0, -2.0, 0.5, 3.0};
  const Matrix x = planted_data(dir, 2000, 0.05, 3);
  const Matrix basis = klt_basis(x, 1);
  const auto u = normalized(dir);
  const auto v = basis.col(0);
  EXPECT_NEAR(std::abs(dot(u, v)), 1.0, 1e-3);
}

TEST(KltBasis, ColumnsAreOrthonormal) {
  Rng rng(5);
  Matrix x(5, 300);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 300; ++c) x(r, c) = rng.normal();
  const Matrix basis = klt_basis(x, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(dot(basis.col(i), basis.col(j)), i == j ? 1.0 : 0.0, 1e-10);
}

TEST(KltBasis, SignConventionIsDeterministic) {
  const std::vector<double> dir{1.0, -2.0, 0.5};
  const Matrix x = planted_data(dir, 500, 0.05, 7);
  const Matrix a = klt_basis(x, 2);
  const Matrix b = klt_basis(x, 2);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(a(r, c), b(r, c));
}

TEST(KltIterative, AgreesWithEigenDecomposition) {
  Rng rng(9);
  Matrix x(6, 400);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 400; ++c)
      x(r, c) = rng.normal() * (r < 2 ? 3.0 : 0.3);  // two strong modes
  const Matrix exact = klt_basis(x, 3);
  Matrix xc = x;
  center_rows(xc);
  const Matrix iter = klt_basis_iterative(xc, 3);
  for (std::size_t c = 0; c < 3; ++c)
    EXPECT_NEAR(std::abs(dot(exact.col(c), iter.col(c))), 1.0, 1e-3)
        << "column " << c;
}

TEST(ReconstructionMse, ZeroForFullRankBasis) {
  Rng rng(11);
  Matrix x(4, 100);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 100; ++c) x(r, c) = rng.normal();
  EXPECT_NEAR(reconstruction_mse(klt_basis(x, 4), x), 0.0, 1e-15);
}

TEST(ReconstructionMse, DecreasesWithSubspaceDimension) {
  Rng rng(13);
  Matrix x(6, 500);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 500; ++c)
      x(r, c) = rng.normal() * (1.0 + static_cast<double>(r));
  double prev = 1e18;
  for (std::size_t k = 1; k <= 6; ++k) {
    const double mse = reconstruction_mse(klt_basis(x, k), x);
    EXPECT_LT(mse, prev + 1e-12);
    prev = mse;
  }
  EXPECT_NEAR(prev, 0.0, 1e-12);
}

TEST(ReconstructionMse, KltIsOptimalAmongRandomBases) {
  // PCA minimises reconstruction MSE over all rank-K bases: any random
  // basis must do no better.
  Rng rng(15);
  Matrix x(5, 400);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 400; ++c)
      x(r, c) = rng.normal() * (r == 0 ? 4.0 : 0.5);
  const double best = reconstruction_mse(klt_basis(x, 2), x);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix rnd(5, 2);
    for (std::size_t r = 0; r < 5; ++r)
      for (std::size_t c = 0; c < 2; ++c) rnd(r, c) = rng.normal();
    EXPECT_GE(reconstruction_mse(rnd, x), best - 1e-10);
  }
}

TEST(KltBasis, InvalidDimensionThrows) {
  Matrix x(3, 10, 1.0);
  EXPECT_THROW(klt_basis(x, 0), CheckError);
  EXPECT_THROW(klt_basis(x, 4), CheckError);
}

}  // namespace
}  // namespace oclp
