#include "serve/fleet.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fabric/calibration.hpp"

namespace oclp {
namespace {

constexpr int kWlX = 8;

// Same deep-carry design as the server tests: the coefficients that miss
// timing first, so per-die fB differences show up on a coarse grid.
LinearProjectionDesign fleet_design() {
  const MultConfig cfg{MultArch::Array, 8, 1};
  LinearProjectionDesign d;
  d.columns.push_back(make_column(
      {255.0 / 256, -239.0 / 256, 251.0 / 256, -223.0 / 256}, cfg));
  d.columns.push_back(make_column(
      {-247.0 / 256, 233.0 / 256, 253.0 / 256, 227.0 / 256}, cfg));
  d.target_freq_mhz = 400.0;
  d.origin = "fleet-test";
  return d;
}

FleetConfig base_config(std::vector<std::uint64_t> die_seeds) {
  FleetConfig cfg;
  cfg.die_seeds = std::move(die_seeds);
  cfg.device = reference_device_config();
  cfg.wl_x = kWlX;
  cfg.with_jitter = false;
  cfg.serve.workers = 1;
  cfg.serve.max_batch = 8;
  cfg.serve.max_wait_ms = 0.0;
  cfg.serve.check_fraction = 0.0;
  return cfg;
}

std::vector<std::uint32_t> random_codes(Rng& rng, std::size_t p) {
  std::vector<std::uint32_t> codes(p);
  for (auto& c : codes)
    c = static_cast<std::uint32_t>(rng.uniform_u64(1u << kWlX));
  return codes;
}

/// Thread-safe capture of (die, result) for every served request.
struct FleetLog {
  std::mutex mutex;
  std::vector<std::pair<std::size_t, ServeResult>> results;
  ProjectionFleet::ResultCallback callback() {
    return [this](std::size_t die, const ServeResult& r) {
      std::lock_guard lock(mutex);
      results.emplace_back(die, r);
    };
  }
};

// --- light suite (also runs under tsan) -------------------------------------

TEST(ProjectionFleet, CharacterisesEachDieAndServesExactly) {
  const auto design = fleet_design();
  FleetLog log;
  ProjectionFleet fleet(design, base_config({kReferenceDieSeed, 83}),
                        log.callback());
  ASSERT_EQ(fleet.num_dies(), 2u);

  const auto s0 = fleet.die_status(0);
  const auto s1 = fleet.die_status(1);
  EXPECT_EQ(s0.die_seed, kReferenceDieSeed);
  EXPECT_EQ(s1.die_seed, 83u);
  // Distinct silicon → distinct measured error-free clocks and operating
  // points (the acceptance scenario's premise).
  EXPECT_GT(s0.error_free_fmax_mhz, 0.0);
  EXPECT_GT(s1.error_free_fmax_mhz, 0.0);
  EXPECT_NE(s0.error_free_fmax_mhz, s1.error_free_fmax_mhz);
  EXPECT_NE(s0.inter_die_factor, s1.inter_die_factor);
  for (const auto& s : {s0, s1}) {
    EXPECT_DOUBLE_EQ(s.f_target_mhz, 0.9 * s.error_free_fmax_mhz);
    EXPECT_DOUBLE_EQ(s.f_floor_mhz, 0.5 * s.error_free_fmax_mhz);
    EXPECT_DOUBLE_EQ(s.freq_mhz, s.f_target_mhz);
    EXPECT_DOUBLE_EQ(s.recheck_fmax_mhz, s.error_free_fmax_mhz);
    EXPECT_DOUBLE_EQ(s.derate, 1.0);
    EXPECT_EQ(s.recharacterisations, 0u);
  }
  // Both dies publish a model per column multiplier configuration.
  const auto models = fleet.die_models(1);
  ASSERT_TRUE(models);
  EXPECT_EQ(models->count(MultConfig{MultArch::Array, 8, 1}), 1u);

  // Both dies serve below their own fB → every result is bit-exact.
  const Device ref_device(reference_device_config(), kReferenceDieSeed);
  auto plan = simulated_plan(design, Placement{0, 30, 3});
  plan.with_jitter = false;
  ProjectionCircuit reference(design, ref_device, plan, kWlX, nullptr, 1);

  Rng rng(7);
  std::vector<std::vector<std::uint32_t>> codes_by_id(13);
  for (std::uint64_t id = 1; id <= 12; ++id) {
    codes_by_id[id] = random_codes(rng, 4);
    EXPECT_TRUE(fleet.submit({id, codes_by_id[id], 0.0}));
  }
  fleet.wait_idle();
  fleet.stop();

  std::lock_guard lock(log.mutex);
  ASSERT_EQ(log.results.size(), 12u);
  for (const auto& [die, r] : log.results) {
    const auto exact = reference.project_exact(codes_by_id[r.id]);
    ASSERT_EQ(r.y.size(), exact.size());
    for (std::size_t k = 0; k < exact.size(); ++k)
      EXPECT_NEAR(r.y[k], exact[k], 1e-12) << "die " << die << " id " << r.id;
  }
  EXPECT_EQ(fleet.die_status(0).routed + fleet.die_status(1).routed, 12u);
}

TEST(ProjectionFleet, RouterSpreadsLoadAcrossPausedQueues) {
  auto cfg = base_config({kReferenceDieSeed, 83});
  cfg.serve.start_paused = true;
  FleetLog log;
  ProjectionFleet fleet(fleet_design(), cfg, log.callback());

  Rng rng(11);
  for (std::uint64_t id = 1; id <= 10; ++id)
    ASSERT_TRUE(fleet.submit({id, random_codes(rng, 4), 0.0}));

  // Queue depth discounts headroom, so neither paused die hoards the
  // whole burst.
  const auto s0 = fleet.die_status(0);
  const auto s1 = fleet.die_status(1);
  EXPECT_EQ(s0.queue_depth + s1.queue_depth, 10u);
  EXPECT_GT(s0.queue_depth, 0u);
  EXPECT_GT(s1.queue_depth, 0u);
  EXPECT_EQ(s0.routed, s0.queue_depth);
  EXPECT_EQ(s1.routed, s1.queue_depth);

  fleet.resume();
  fleet.wait_idle();
  fleet.stop();
  std::lock_guard lock(log.mutex);
  EXPECT_EQ(log.results.size(), 10u);
}

TEST(ProjectionFleet, BackgroundThreadRecharacterisesWhileServing) {
  auto cfg = base_config({kReferenceDieSeed, 83});
  cfg.recheck_period_ms = 2.0;
  cfg.recheck_samples = 60;
  FleetLog log;
  ProjectionFleet fleet(fleet_design(), cfg, log.callback());

  // Serve while the control thread probes in the background.
  Rng rng(13);
  for (std::uint64_t id = 1; id <= 20; ++id)
    ASSERT_TRUE(fleet.submit({id, random_codes(rng, 4), 0.0}));
  fleet.wait_idle();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fleet.recharacterisation_cycles() < 3 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  fleet.stop();

  EXPECT_GE(fleet.recharacterisation_cycles(), 3u);
  // Round-robin: both dies were visited, and with no drift each probe
  // confirms the construction-time regime.
  const auto s0 = fleet.die_status(0);
  const auto s1 = fleet.die_status(1);
  EXPECT_GE(s0.recharacterisations, 1u);
  EXPECT_GE(s1.recharacterisations, 1u);
  EXPECT_GT(s0.recheck_fmax_mhz, 0.0);
  std::lock_guard lock(log.mutex);
  EXPECT_EQ(log.results.size(), 20u);
}

TEST(ProjectionFleet, Validation) {
  const auto design = fleet_design();
  {
    auto cfg = base_config({});
    cfg.num_dies = 0;
    EXPECT_THROW(ProjectionFleet(design, cfg), CheckError);
  }
  {
    auto cfg = base_config({kReferenceDieSeed});
    cfg.target_fraction = 1.5;
    EXPECT_THROW(ProjectionFleet(design, cfg), CheckError);
  }
  {
    auto cfg = base_config({kReferenceDieSeed});
    cfg.floor_fraction = cfg.target_fraction + 0.1;
    EXPECT_THROW(ProjectionFleet(design, cfg), CheckError);
  }
  {
    auto cfg = base_config({kReferenceDieSeed});
    cfg.recheck_period_ms = -1.0;
    EXPECT_THROW(ProjectionFleet(design, cfg), CheckError);
  }
  {
    auto cfg = base_config({kReferenceDieSeed});
    EXPECT_THROW(ProjectionFleet(LinearProjectionDesign{}, cfg), CheckError);
  }
  {
    auto cfg = base_config({kReferenceDieSeed});
    ProjectionFleet fleet(design, cfg);
    EXPECT_THROW(fleet.die_status(1), CheckError);
    EXPECT_THROW(fleet.set_die_drift(0, 0.0), CheckError);
    EXPECT_THROW(fleet.recharacterise(1), CheckError);
    fleet.stop();
  }
}

// --- heavy acceptance suite (not in the tsan filter) ------------------------

// The ISSUE acceptance scenario: three dies with distinct error-free
// clocks; inject drift on die 0; one re-characterisation cycle must move
// that die's floor while the other dies keep serving bit-exactly; and the
// governor — now unlocked by the lower floor — must converge below the
// *old* floor, which AIMD alone could never reach.
TEST(FleetRecharacterisation, DriftMovesOneDiesFloorOthersStayExact) {
  const auto design = fleet_design();
  auto cfg = base_config({kReferenceDieSeed, 83, 13});
  // Check every request on die 0 so the governor sees the drift quickly;
  // small windows make the trajectory short and deterministic (1 worker,
  // jitter-free plan).
  cfg.serve.check_fraction = 1.0;
  cfg.serve.governor.window_checks = 4;
  cfg.serve.governor.slo_error_rate = 0.05;
  cfg.serve.governor.step_down_factor = 0.5;
  cfg.serve.governor.step_up_mhz = 10.0;
  cfg.serve.governor.healthy_windows_to_ramp = 2;

  FleetLog log;
  ProjectionFleet fleet(design, cfg, log.callback());
  ASSERT_EQ(fleet.num_dies(), 3u);

  const auto b0 = fleet.die_status(0);
  const auto b1 = fleet.die_status(1);
  const auto b2 = fleet.die_status(2);
  ASSERT_GT(b0.error_free_fmax_mhz, 0.0);
  EXPECT_NE(b0.error_free_fmax_mhz, b1.error_free_fmax_mhz);
  EXPECT_NE(b0.error_free_fmax_mhz, b2.error_free_fmax_mhz);
  EXPECT_NE(b1.error_free_fmax_mhz, b2.error_free_fmax_mhz);

  // Drift severe enough that the OLD floor is no longer error-free:
  // floor × derate sits above the die's true fB, so the AIMD loop alone
  // (clamped at that floor) cannot restore exactness — only the
  // re-characterised floor move can.
  const double kDerate = 2.6;
  ASSERT_GT(b0.f_floor_mhz * kDerate, b0.error_free_fmax_mhz);
  fleet.set_die_drift(0, kDerate);

  // One cycle detects it.
  const auto report = fleet.recharacterise(0);
  EXPECT_GT(report.probed, 0u);
  const auto a0 = fleet.die_status(0);
  EXPECT_EQ(a0.recharacterisations, 1u);
  EXPECT_LT(a0.recheck_fmax_mhz, b0.error_free_fmax_mhz);
  EXPECT_LT(a0.f_floor_mhz, b0.f_floor_mhz);
  EXPECT_DOUBLE_EQ(a0.f_floor_mhz,
                   std::min(a0.f_target_mhz, 0.5 * a0.recheck_fmax_mhz));
  EXPECT_DOUBLE_EQ(fleet.server(0).governor().floor_mhz(), a0.f_floor_mhz);
  // The new floor is safe under the drift it was measured at.
  EXPECT_LE(a0.f_floor_mhz * kDerate, b0.error_free_fmax_mhz);

  // The other dies are untouched: floors unmoved, results still exact.
  EXPECT_DOUBLE_EQ(fleet.die_status(1).f_floor_mhz, b1.f_floor_mhz);
  EXPECT_DOUBLE_EQ(fleet.die_status(2).f_floor_mhz, b2.f_floor_mhz);

  const Device ref_device(reference_device_config(), kReferenceDieSeed);
  auto plan = simulated_plan(design, Placement{0, 30, 3});
  plan.with_jitter = false;
  ProjectionCircuit reference(design, ref_device, plan, kWlX, nullptr, 1);

  Rng rng(17);
  std::vector<std::vector<std::uint32_t>> codes_by_id(41);
  for (std::uint64_t id = 1; id <= 40; ++id) {
    codes_by_id[id] = random_codes(rng, 4);
    const std::size_t die = 1 + (id % 2);  // drive the healthy dies directly
    ASSERT_TRUE(fleet.server(die).submit({id, codes_by_id[id], 0.0}));
  }
  fleet.server(1).wait_idle();
  fleet.server(2).wait_idle();
  {
    std::lock_guard lock(log.mutex);
    ASSERT_EQ(log.results.size(), 40u);
    for (const auto& [die, r] : log.results) {
      EXPECT_NE(die, 0u);
      const auto exact = reference.project_exact(codes_by_id[r.id]);
      for (std::size_t k = 0; k < exact.size(); ++k)
        EXPECT_NEAR(r.y[k], exact[k], 1e-12)
            << "die " << die << " id " << r.id;
    }
  }

  // Drive the drifted die: every request checked, windows of 4, so the
  // governor steps down through the old floor (impossible before the
  // re-characterised limits) and settles in the drift-adjusted error-free
  // regime.
  for (std::uint64_t id = 100; id < 200; ++id)
    ASSERT_TRUE(fleet.server(0).submit({id, random_codes(rng, 4), 0.0}));
  fleet.server(0).wait_idle();
  const double settled = fleet.server(0).governor().frequency_mhz();
  EXPECT_LT(settled, b0.f_floor_mhz);
  EXPECT_GE(settled, a0.f_floor_mhz);

  fleet.stop();
}

}  // namespace
}  // namespace oclp
