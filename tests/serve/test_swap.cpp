// Runtime design hot-swap (serve/swap.hpp): golden bitwise equality with a
// cold-constructed server for the array and CCM datapaths, the abort paths
// (injected divergence, shadow starvation) with zero dropped requests, the
// CCM characterised-grid guard, mid-swap clock interactions, and the
// fleet's staged per-die rollout.
#include "serve/swap.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fabric/calibration.hpp"
#include "serve/fleet.hpp"
#include "serve/server.hpp"

namespace oclp {
namespace {

constexpr int kWlX = 8;

// The server-test design: deep carry chains (near-maximal magnitudes).
LinearProjectionDesign design_a(double freq_mhz, MultArch arch) {
  const MultConfig cfg{arch, 8, 1};
  LinearProjectionDesign d;
  d.columns.push_back(make_column(
      {255.0 / 256, -239.0 / 256, 251.0 / 256, -223.0 / 256}, cfg));
  d.columns.push_back(make_column(
      {-247.0 / 256, 233.0 / 256, 253.0 / 256, 227.0 / 256}, cfg));
  d.target_freq_mhz = freq_mhz;
  d.origin = "swap-test-a";
  return d;
}

// A "fresh fit" of the same shape: every coefficient moved.
LinearProjectionDesign design_b(double freq_mhz, MultArch arch) {
  const MultConfig cfg{arch, 8, 1};
  LinearProjectionDesign d;
  d.columns.push_back(make_column(
      {131.0 / 256, 97.0 / 256, -203.0 / 256, 59.0 / 256}, cfg));
  d.columns.push_back(make_column(
      {-77.0 / 256, 181.0 / 256, 23.0 / 256, -149.0 / 256}, cfg));
  d.target_freq_mhz = freq_mhz;
  d.origin = "swap-test-b";
  return d;
}

Device make_device() {
  Device device(reference_device_config(), kReferenceDieSeed);
  device.set_temperature(kCharacterisationTempC);
  return device;
}

CircuitPlan deterministic_plan(const LinearProjectionDesign& d) {
  auto plan = simulated_plan(d, reference_location_1());
  plan.with_jitter = false;
  return plan;
}

ServeConfig deterministic_config() {
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.max_wait_ms = 0.0;
  cfg.check_fraction = 0.0;
  cfg.governor.f_target_mhz = 100.0;  // far below any timing limit
  cfg.governor.f_floor_mhz = 100.0;
  return cfg;
}

std::vector<std::uint32_t> random_codes(Rng& rng, std::size_t p) {
  std::vector<std::uint32_t> codes(p);
  for (auto& c : codes)
    c = static_cast<std::uint32_t>(rng.uniform_u64(1u << kWlX));
  return codes;
}

/// Thread-safe capture of every served result, indexable by request id.
struct ResultLog {
  std::mutex mutex;
  std::map<std::uint64_t, ServeResult> by_id;
  ProjectionServer::ResultCallback callback() {
    return [this](const ServeResult& r) {
      std::lock_guard lock(mutex);
      by_id.emplace(r.id, r);
    };
  }
};

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Golden scenario shared by the array and CCM paths: a server swapped at
/// runtime must serve the post-swap stream bitwise-identically to a server
/// cold-constructed on the new design.
void run_golden(MultArch arch) {
  const auto d1 = design_a(100.0, arch);
  const auto d2 = design_b(100.0, arch);
  const Device device = make_device();
  const auto plan = deterministic_plan(d1);
  const auto cfg = deterministic_config();

  ResultLog swapped_log;
  ProjectionServer swapped(d1, device, plan, kWlX, nullptr, cfg,
                           swapped_log.callback());

  // Pre-swap traffic: proves the swap is hot, and leaves the old replica's
  // register state well away from the reset state the cold server starts
  // in — only the pristine flipped-in replica can match it.
  Rng rng(7);
  std::vector<std::vector<std::uint32_t>> warm(9);
  for (std::uint64_t id = 1; id <= 8; ++id) {
    warm[id] = random_codes(rng, 4);
    ASSERT_TRUE(swapped.submit({id, warm[id], 0.0}));
  }
  swapped.wait_idle();

  SwapConfig scfg;
  scfg.min_shadow_compares = 0;  // trusted swap: deterministic, single-thread
  const SwapReport report = swapped.swap_design(d2, nullptr, scfg);
  ASSERT_TRUE(report.committed);
  EXPECT_EQ(report.generation, 1u);
  EXPECT_EQ(swapped.design_generation(), 1u);
  EXPECT_GE(report.lower_ms, 0.0);
  EXPECT_DOUBLE_EQ(report.shadow_ms, 0.0);

  ResultLog cold_log;
  ProjectionServer cold(d2, device, plan, kWlX, nullptr, cfg,
                        cold_log.callback());

  std::vector<std::vector<std::uint32_t>> stream(33);
  for (std::uint64_t id = 1; id <= 32; ++id) {
    stream[id] = random_codes(rng, 4);
    ASSERT_TRUE(swapped.submit({100 + id, stream[id], 0.0}));
    ASSERT_TRUE(cold.submit({100 + id, stream[id], 0.0}));
  }
  swapped.wait_idle();
  cold.wait_idle();

  std::lock_guard l1(swapped_log.mutex);
  std::lock_guard l2(cold_log.mutex);
  ASSERT_EQ(cold_log.by_id.size(), 32u);
  for (std::uint64_t id = 101; id <= 132; ++id) {
    const auto it_s = swapped_log.by_id.find(id);
    const auto it_c = cold_log.by_id.find(id);
    ASSERT_NE(it_s, swapped_log.by_id.end());
    ASSERT_NE(it_c, cold_log.by_id.end());
    EXPECT_TRUE(bitwise_equal(it_s->second.y, it_c->second.y))
        << "request " << id << " diverges from the cold server ("
        << mult_arch_name(arch) << ")";
  }

  const auto snap = swapped.metrics_snapshot();
  EXPECT_EQ(snap.design_generation, 1u);
  EXPECT_EQ(snap.swaps_committed, 1u);
  EXPECT_EQ(snap.swaps_aborted, 0u);
  EXPECT_GT(snap.swap_latency_ns, 0u);
  EXPECT_NE(snap.to_json().find("\"design_generation\": 1"), std::string::npos);
}

TEST(DesignSwapGolden, ArraySwapBitwiseEqualsColdServer) {
  run_golden(MultArch::Array);
}

TEST(DesignSwapGolden, CcmSwapBitwiseEqualsColdServer) {
  run_golden(MultArch::Ccm);
}

TEST(DesignSwapGolden, CcmRelowerIsPerConstant) {
  // A CCM swap rebuilds every cell (the netlist bakes the coefficient in);
  // the generic-architecture factory is never consulted for it.
  const auto d1 = design_a(100.0, MultArch::Ccm);
  const auto d2 = design_b(100.0, MultArch::Ccm);
  const Device device = make_device();
  const auto plan = deterministic_plan(d1);
  ProjectionServer server(d1, device, plan, kWlX, nullptr,
                          deterministic_config(), nullptr);
  const std::size_t generic_builds_before = multiplier_arch_build_count();
  SwapConfig scfg;
  scfg.min_shadow_compares = 0;
  ASSERT_TRUE(server.swap_design(d2, nullptr, scfg).committed);
  EXPECT_EQ(multiplier_arch_build_count(), generic_builds_before);
}

TEST(DesignSwapAbort, InjectedDivergenceRollsBackWithZeroDrops) {
  const auto d1 = design_a(100.0, MultArch::Array);
  const auto d2 = design_b(100.0, MultArch::Array);
  const Device device = make_device();
  const auto plan = deterministic_plan(d1);
  ServeConfig cfg = deterministic_config();
  cfg.queue_capacity = 4096;

  std::atomic<std::uint64_t> served{0};
  ProjectionServer server(d1, device, plan, kWlX, nullptr, cfg,
                          [&](const ServeResult&) {
                            served.fetch_add(1, std::memory_order_relaxed);
                          });

  // Live traffic throughout the swap attempt, from a second thread (the
  // swap blocks its caller through the Shadow phase).
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> submitted{0};
  std::thread traffic([&] {
    Rng rng(11);
    std::uint64_t id = 0;
    while (!done.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(server.submit({++id, random_codes(rng, 4), 0.0}));
      submitted.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  SwapConfig scfg;
  scfg.shadow_fraction = 1.0;
  scfg.min_shadow_compares = 8;
  scfg.shadow_timeout_ms = 30000.0;
  scfg.inject_divergence_every = 1;  // every compare diverges
  const SwapReport report = server.swap_design(d2, nullptr, scfg);
  done.store(true, std::memory_order_relaxed);
  traffic.join();
  server.wait_idle();

  EXPECT_FALSE(report.committed);
  EXPECT_NE(report.abort_reason.find("shadow divergence"), std::string::npos)
      << report.abort_reason;
  EXPECT_GE(report.shadow_compared, 8u);
  EXPECT_EQ(report.shadow_mismatches, report.shadow_compared);
  EXPECT_EQ(server.design_generation(), 0u);  // rolled back: old design

  // Zero requests lost to the aborted cutover: everything submitted was
  // served, nothing rejected or shed.
  const auto snap = server.metrics_snapshot();
  EXPECT_EQ(snap.served, submitted.load());
  EXPECT_EQ(snap.served, served.load());
  EXPECT_EQ(snap.rejected_full, 0u);
  EXPECT_EQ(snap.shed_oldest, 0u);
  EXPECT_EQ(snap.shed_deadline, 0u);
  EXPECT_EQ(snap.swaps_aborted, 1u);
  EXPECT_EQ(snap.swaps_committed, 0u);
  EXPECT_GE(snap.shadow_compared, 8u);
  EXPECT_EQ(snap.shadow_mismatch, snap.shadow_compared);
}

TEST(DesignSwapAbort, ShadowStarvationLeavesServerUntouched) {
  const auto d1 = design_a(100.0, MultArch::Array);
  const auto d2 = design_b(100.0, MultArch::Array);
  const Device device = make_device();
  const auto plan = deterministic_plan(d1);
  ResultLog log;
  ProjectionServer server(d1, device, plan, kWlX, nullptr,
                          deterministic_config(), log.callback());

  SwapConfig scfg;
  scfg.shadow_fraction = 1.0;
  scfg.min_shadow_compares = 4;
  scfg.shadow_timeout_ms = 50.0;  // no traffic → the verdict never arrives
  const SwapReport report = server.swap_design(d2, nullptr, scfg);
  EXPECT_FALSE(report.committed);
  EXPECT_NE(report.abort_reason.find("shadow starvation"), std::string::npos)
      << report.abort_reason;
  EXPECT_EQ(server.design_generation(), 0u);

  // The server still serves the old design, exactly.
  ProjectionCircuit reference(d1, device, plan, kWlX, nullptr, 1);
  Rng rng(3);
  const auto codes = random_codes(rng, 4);
  ASSERT_TRUE(server.submit({1, codes, 0.0}));
  server.wait_idle();
  std::lock_guard lock(log.mutex);
  ASSERT_EQ(log.by_id.size(), 1u);
  const auto exact = reference.project_exact(codes);
  for (std::size_t k = 0; k < exact.size(); ++k)
    EXPECT_NEAR(log.by_id.at(1).y[k], exact[k], 1e-12);
}

TEST(DesignSwapGuard, CcmRejectsMisfiledModelBeforeInstall) {
  const auto d1 = design_a(100.0, MultArch::Ccm);
  const Device device = make_device();
  const auto plan = deterministic_plan(d1);
  const MultConfig ccm8{MultArch::Ccm, 8, 1};
  const MultConfig ccm6{MultArch::Ccm, 6, 1};

  // A well-keyed, well-tagged model set serves fine...
  std::vector<double> freqs{100.0, 200.0, 300.0};
  auto good = std::make_shared<ErrorModelMap>();
  good->emplace(ccm8, ErrorModel(ccm8, kWlX, freqs));
  ProjectionServer server(d1, device, plan, kWlX, good.get(),
                          deterministic_config(), nullptr);

  // ...but a swap whose model set was characterised on the wl=6 config
  // and filed under the wl=8 key would correct from a grid the
  // coefficients live outside of: the lowering rejects it, naming both
  // configurations, before anything is installed.
  auto mismatched = std::make_shared<ErrorModelMap>();
  mismatched->emplace(ccm8, ErrorModel(ccm6, kWlX, freqs));
  SwapConfig scfg;
  scfg.min_shadow_compares = 0;
  const auto d2 = design_b(100.0, MultArch::Ccm);
  try {
    server.swap_design(d2, mismatched, scfg);
    FAIL() << "mis-filed CCM swap was accepted";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ccm/wl8/p1"), std::string::npos) << what;
    EXPECT_NE(what.find("ccm/wl6/p1"), std::string::npos) << what;
  }
  EXPECT_EQ(server.design_generation(), 0u);
}

TEST(DesignSwapClock, MidSwapGovernorMoveIsFollowedThroughTheFlip) {
  const auto d1 = design_a(100.0, MultArch::Array);
  const auto d2 = design_b(100.0, MultArch::Array);
  const Device device = make_device();
  const auto plan = deterministic_plan(d1);
  ServeConfig cfg = deterministic_config();
  cfg.queue_capacity = 4096;
  cfg.governor.f_target_mhz = 120.0;
  cfg.governor.f_floor_mhz = 80.0;

  ResultLog log;
  ProjectionServer server(d1, device, plan, kWlX, nullptr, cfg,
                          log.callback());

  std::atomic<bool> done{false};
  std::thread traffic([&] {
    Rng rng(13);
    std::uint64_t id = 0;
    while (!done.load(std::memory_order_relaxed)) {
      server.submit({++id, random_codes(rng, 4), 0.0});
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  // While the shadow phase runs, the control plane moves the clock and the
  // environment under it — the swap must follow (the shadow circuit and
  // the flipped-in replicas lazily retarget) and still commit.
  std::thread control([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.governor().set_limits(80.0, 90.0);  // target below current freq
    server.set_timing_derate(1.1);
  });

  SwapConfig scfg;
  scfg.shadow_fraction = 1.0;
  scfg.min_shadow_compares = 16;
  scfg.shadow_timeout_ms = 30000.0;
  const SwapReport report = server.swap_design(d2, nullptr, scfg);
  control.join();
  done.store(true, std::memory_order_relaxed);
  traffic.join();
  server.wait_idle();

  ASSERT_TRUE(report.committed) << report.abort_reason;
  EXPECT_EQ(server.design_generation(), 1u);
  EXPECT_DOUBLE_EQ(server.governor().frequency_mhz(), 90.0);
  EXPECT_DOUBLE_EQ(server.timing_derate(), 1.1);

  // Post-swap serving runs at the moved operating point, on the new
  // design.
  ResultLog post;
  {
    std::lock_guard lock(log.mutex);
    log.by_id.clear();
  }
  Rng rng(17);
  const auto codes = random_codes(rng, 4);
  ASSERT_TRUE(server.submit({999999, codes, 0.0}));
  server.wait_idle();
  std::lock_guard lock(log.mutex);
  const auto it = log.by_id.find(999999);
  ASSERT_NE(it, log.by_id.end());
  EXPECT_DOUBLE_EQ(it->second.freq_mhz, 90.0);
  ProjectionCircuit reference(d2, device, plan, kWlX, nullptr, 1);
  const auto exact = reference.project_exact(codes);
  for (std::size_t k = 0; k < exact.size(); ++k)
    EXPECT_NEAR(it->second.y[k], exact[k], 1e-6);
}

// --- fleet staged rollout ---------------------------------------------------

LinearProjectionDesign fleet_next_fit() {
  const MultConfig cfg{MultArch::Array, 8, 1};
  LinearProjectionDesign d;
  d.columns.push_back(make_column(
      {131.0 / 256, 97.0 / 256, -203.0 / 256, 59.0 / 256}, cfg));
  d.columns.push_back(make_column(
      {-77.0 / 256, 181.0 / 256, 23.0 / 256, -149.0 / 256}, cfg));
  d.target_freq_mhz = 400.0;
  d.origin = "fleet-next-fit";
  return d;
}

FleetConfig fleet_config(std::vector<std::uint64_t> die_seeds) {
  FleetConfig cfg;
  cfg.die_seeds = std::move(die_seeds);
  cfg.device = reference_device_config();
  cfg.wl_x = kWlX;
  cfg.with_jitter = false;
  cfg.serve.workers = 1;
  cfg.serve.max_batch = 8;
  cfg.serve.max_wait_ms = 0.0;
  cfg.serve.check_fraction = 0.0;
  return cfg;
}

TEST(DesignSwapFleet, StagedRolloutFlipsEveryDie) {
  const MultConfig acfg{MultArch::Array, 8, 1};
  LinearProjectionDesign design;
  design.columns.push_back(make_column(
      {255.0 / 256, -239.0 / 256, 251.0 / 256, -223.0 / 256}, acfg));
  design.columns.push_back(make_column(
      {-247.0 / 256, 233.0 / 256, 253.0 / 256, 227.0 / 256}, acfg));
  design.target_freq_mhz = 400.0;
  design.origin = "fleet-swap-test";

  ProjectionFleet fleet(design, fleet_config({kReferenceDieSeed, 83}));

  SwapConfig scfg;
  scfg.min_shadow_compares = 0;
  const FleetSwapReport report = fleet.swap_design(fleet_next_fit(), scfg);
  ASSERT_TRUE(report.committed);
  EXPECT_EQ(report.canary, 0u);
  ASSERT_EQ(report.dies.size(), 2u);
  for (std::size_t die = 0; die < 2; ++die) {
    EXPECT_TRUE(report.dies[die].committed);
    EXPECT_EQ(report.dies[die].generation, 1u);
    EXPECT_EQ(fleet.server(die).design_generation(), 1u);
  }

  // The control plane keeps working on the new coefficients: a re-probe
  // cycle runs against the swapped design's codes.
  const auto probe = fleet.recharacterise(0);
  EXPECT_GT(probe.probed, 0u);

  // And the fleet serves the new design's values.
  std::mutex mutex;
  std::vector<ServeResult> results;
  ProjectionFleet fleet2(design, fleet_config({kReferenceDieSeed}),
                         [&](std::size_t, const ServeResult& r) {
                           std::lock_guard lock(mutex);
                           results.push_back(r);
                         });
  ASSERT_TRUE(fleet2.swap_design(fleet_next_fit(), scfg).committed);
  Rng rng(23);
  const auto codes = random_codes(rng, 4);
  ASSERT_TRUE(fleet2.submit({1, codes, 0.0}));
  fleet2.wait_idle();
  const Device device(reference_device_config(), kReferenceDieSeed);
  ProjectionCircuit reference(fleet_next_fit(), device,
                              deterministic_plan(fleet_next_fit()), kWlX,
                              nullptr, 1);
  const auto exact = reference.project_exact(codes);
  std::lock_guard lock(mutex);
  ASSERT_EQ(results.size(), 1u);
  for (std::size_t k = 0; k < exact.size(); ++k)
    EXPECT_NEAR(results[0].y[k], exact[k], 0.05);
}

TEST(DesignSwapFleet, CanaryAbortStopsTheRollout) {
  const MultConfig acfg{MultArch::Array, 8, 1};
  LinearProjectionDesign design;
  design.columns.push_back(make_column(
      {255.0 / 256, -239.0 / 256, 251.0 / 256, -223.0 / 256}, acfg));
  design.columns.push_back(make_column(
      {-247.0 / 256, 233.0 / 256, 253.0 / 256, 227.0 / 256}, acfg));
  design.target_freq_mhz = 400.0;
  design.origin = "fleet-canary-test";

  ProjectionFleet fleet(design, fleet_config({kReferenceDieSeed, 83}));

  // No traffic: the canary's shadow phase starves and aborts; the sibling
  // is never attempted and both dies stay on the old design.
  SwapConfig scfg;
  scfg.shadow_fraction = 1.0;
  scfg.min_shadow_compares = 2;
  scfg.shadow_timeout_ms = 50.0;
  const FleetSwapReport report = fleet.swap_design(fleet_next_fit(), scfg, 1);
  EXPECT_FALSE(report.committed);
  EXPECT_EQ(report.canary, 1u);
  ASSERT_EQ(report.dies.size(), 2u);
  EXPECT_FALSE(report.dies[1].committed);
  EXPECT_NE(report.dies[1].abort_reason.find("shadow starvation"),
            std::string::npos);
  EXPECT_FALSE(report.dies[0].committed);
  EXPECT_TRUE(report.dies[0].abort_reason.empty());  // never attempted
  EXPECT_EQ(fleet.server(0).design_generation(), 0u);
  EXPECT_EQ(fleet.server(1).design_generation(), 0u);
}

}  // namespace
}  // namespace oclp
