#include "serve/router.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"

namespace oclp {
namespace {

DieLoad load(double freq, double target, std::size_t depth) {
  DieLoad l;
  l.freq_mhz = freq;
  l.target_mhz = target;
  l.queue_depth = depth;
  return l;
}

TEST(HeadroomRouter, PicksTheHighestHeadroomDie) {
  HeadroomRouter router(3);
  const std::vector<DieLoad> loads = {
      load(200.0, 200.0, 0), load(300.0, 300.0, 0), load(250.0, 250.0, 0)};
  EXPECT_EQ(router.route(loads, SloClass::BestEffort), 1u);
}

TEST(HeadroomRouter, QueueDepthDiscountsAFastDie) {
  HeadroomRouter router(2);
  // 300 MHz with 2 queued = headroom 100; 150 MHz idle = headroom 150.
  const std::vector<DieLoad> loads = {load(300.0, 300.0, 2),
                                      load(150.0, 150.0, 0)};
  EXPECT_DOUBLE_EQ(HeadroomRouter::headroom(loads[0]), 100.0);
  EXPECT_DOUBLE_EQ(HeadroomRouter::headroom(loads[1]), 150.0);
  EXPECT_EQ(router.route(loads, SloClass::BestEffort), 1u);
}

TEST(HeadroomRouter, TiesBreakTowardsTheLowestIndex) {
  HeadroomRouter router(3);
  const std::vector<DieLoad> loads = {
      load(200.0, 200.0, 1), load(400.0, 400.0, 3), load(400.0, 400.0, 3)};
  // Dies 1 and 2 tie at headroom 100 = die 0's; all three tie → index order.
  EXPECT_EQ(router.route(loads, SloClass::BestEffort), 0u);
}

TEST(HeadroomRouter, LatencySensitiveAvoidsRampingDies) {
  HeadroomRouter router(2);
  // Die 0 has more headroom but is ramping back from a breach
  // (freq < target); a latency-sensitive tenant prefers the stable die.
  const std::vector<DieLoad> loads = {load(280.0, 400.0, 0),
                                      load(200.0, 200.0, 0)};
  EXPECT_TRUE(HeadroomRouter::ramping(loads[0]));
  EXPECT_FALSE(HeadroomRouter::ramping(loads[1]));
  EXPECT_EQ(router.route(loads, SloClass::BestEffort), 0u);
  EXPECT_EQ(router.route(loads, SloClass::LatencySensitive), 1u);
}

TEST(HeadroomRouter, AllRampingFallsBackToHeadroom) {
  HeadroomRouter router(3);
  const std::vector<DieLoad> loads = {
      load(150.0, 300.0, 0), load(250.0, 300.0, 0), load(200.0, 300.0, 0)};
  EXPECT_EQ(router.route(loads, SloClass::LatencySensitive), 1u);
}

TEST(HeadroomRouter, PlanIsAFullFallbackPermutation) {
  HeadroomRouter router(4);
  const std::vector<DieLoad> loads = {load(100.0, 200.0, 0),
                                      load(400.0, 400.0, 1),
                                      load(300.0, 300.0, 0),
                                      load(250.0, 250.0, 2)};
  std::vector<std::size_t> order;
  router.plan(loads, SloClass::LatencySensitive, order);
  ASSERT_EQ(order.size(), 4u);
  std::vector<bool> seen(4, false);
  for (auto i : order) {
    ASSERT_LT(i, 4u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
  // Stable dies first by headroom (2: 300, 1: 200, 3: ~83.3), ramping last.
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 3u);
  EXPECT_EQ(order[3], 0u);
}

TEST(HeadroomRouter, Validation) {
  EXPECT_THROW(HeadroomRouter(0), CheckError);
  HeadroomRouter router(2);
  std::vector<std::size_t> order;
  const std::vector<DieLoad> wrong_size = {load(100.0, 100.0, 0)};
  EXPECT_THROW(router.route(wrong_size, SloClass::BestEffort), CheckError);
  EXPECT_THROW(router.plan(wrong_size, SloClass::BestEffort, order),
               CheckError);
}

}  // namespace
}  // namespace oclp
