#include "serve/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace oclp {
namespace {

TEST(ServeMetrics, CountersStartAtZero) {
  ServeMetrics m;
  const auto s = m.snapshot();
  EXPECT_EQ(s.submitted, 0u);
  EXPECT_EQ(s.served, 0u);
  EXPECT_EQ(s.rejected_full, 0u);
  EXPECT_EQ(s.shed_oldest, 0u);
  EXPECT_EQ(s.shed_deadline, 0u);
  EXPECT_EQ(s.batches, 0u);
  EXPECT_EQ(s.checks, 0u);
  EXPECT_EQ(s.check_errors, 0u);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 0.0);
}

TEST(ServeMetrics, LifecycleCountersAccumulate) {
  ServeMetrics m;
  for (int i = 0; i < 7; ++i) m.on_submitted();
  m.on_rejected_full();
  m.on_shed_oldest();
  m.on_shed_oldest();
  m.on_shed_deadline();
  m.on_check(false);
  m.on_check(true);
  m.on_check(true);
  const auto s = m.snapshot();
  EXPECT_EQ(s.submitted, 7u);
  EXPECT_EQ(s.rejected_full, 1u);
  EXPECT_EQ(s.shed_oldest, 2u);
  EXPECT_EQ(s.shed_deadline, 1u);
  EXPECT_EQ(s.checks, 3u);
  EXPECT_EQ(s.check_errors, 2u);
}

TEST(ServeMetrics, ServedReturnsOneBasedSequence) {
  ServeMetrics m;
  EXPECT_EQ(m.on_served(), 1u);
  EXPECT_EQ(m.on_served(), 2u);
  EXPECT_EQ(m.on_served(), 3u);
  EXPECT_EQ(m.served(), 3u);
}

TEST(ServeMetrics, QueueDepthTracksLatestAndPeak) {
  ServeMetrics m;
  m.queue_depth_sample(3);
  m.queue_depth_sample(9);
  m.queue_depth_sample(2);
  const auto s = m.snapshot();
  EXPECT_EQ(s.queue_depth, 2u);
  EXPECT_EQ(s.queue_peak, 9u);
}

TEST(ServeMetrics, BatchesFeedMeanSizeAndLatencyHistogram) {
  ServeMetrics m(/*latency_hist_max_ms=*/10.0, /*latency_bins=*/10);
  m.on_batch(4, {0.5, 1.5, 2.5, 3.5});
  m.on_batch(2, {9.5, 99.0});  // 99 clamps into the last bin
  const auto s = m.snapshot();
  EXPECT_EQ(s.batches, 2u);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 3.0);
  ASSERT_EQ(s.latency_counts.size(), 10u);
  ASSERT_EQ(s.latency_bin_lo_ms.size(), 10u);
  EXPECT_DOUBLE_EQ(s.latency_bin_lo_ms.front(), 0.0);
  EXPECT_DOUBLE_EQ(s.latency_bin_lo_ms.back(), 9.0);
  EXPECT_EQ(s.latency_counts[0], 1u);  // 0.5
  EXPECT_EQ(s.latency_counts[1], 1u);  // 1.5
  EXPECT_EQ(s.latency_counts.back(), 2u);  // 9.5 and the clamped 99.0
  std::uint64_t total = 0;
  for (auto c : s.latency_counts) total += c;
  EXPECT_EQ(total, 6u);
  // The overflow counter disambiguates the clamped tail: of the two
  // last-bin samples, exactly one was genuinely out of range.
  EXPECT_EQ(s.latency_overflow, 1u);
}

TEST(ServeMetrics, LatencyOverflowCountsOnlyOutOfRangeSamples) {
  ServeMetrics m(/*latency_hist_max_ms=*/10.0, /*latency_bins=*/10);
  const auto empty = m.snapshot();
  EXPECT_EQ(empty.latency_overflow, 0u);
  // 10.0 is the exclusive upper edge: [0, 10) in range, 10.0 overflows.
  m.on_batch(4, {0.0, 9.999, 10.0, 250.0});
  const auto s = m.snapshot();
  EXPECT_EQ(s.latency_overflow, 2u);
  std::uint64_t total = 0;
  for (auto c : s.latency_counts) total += c;
  EXPECT_EQ(total, 4u);  // overflow samples still clamp into the last bin
}

TEST(ServeMetrics, WindowTraceAndFrequencyTimeline) {
  ServeMetrics m;
  m.record_initial_frequency(310.0);
  m.on_served();
  m.on_served();
  m.on_window(0.0, 310.0, /*freq_changed=*/false);
  m.on_window(0.5, 155.0, /*freq_changed=*/true);
  m.on_served();
  m.on_window(0.0, 310.0, /*freq_changed=*/true);
  const auto s = m.snapshot();
  ASSERT_EQ(s.window_error_rates.size(), 3u);
  EXPECT_DOUBLE_EQ(s.window_error_rates[1], 0.5);
  // Timeline: the initial point plus the two actual changes — unchanged
  // windows do not spam it.
  ASSERT_EQ(s.frequency_timeline.size(), 3u);
  EXPECT_EQ(s.frequency_timeline[0].at_served, 0u);
  EXPECT_DOUBLE_EQ(s.frequency_timeline[0].freq_mhz, 310.0);
  EXPECT_EQ(s.frequency_timeline[1].at_served, 2u);
  EXPECT_DOUBLE_EQ(s.frequency_timeline[1].freq_mhz, 155.0);
  EXPECT_EQ(s.frequency_timeline[2].at_served, 3u);
  EXPECT_DOUBLE_EQ(s.frequency_timeline[2].freq_mhz, 310.0);
}

TEST(ServeMetrics, PoolGaugesComeFromThePool) {
  ServeMetrics m;
  EXPECT_EQ(m.snapshot().pool_queue_depth, 0u);
  ThreadPool pool(2);
  const auto s = m.snapshot(&pool);
  EXPECT_EQ(s.pool_queue_depth, 0u);
  EXPECT_EQ(s.pool_inflight, 0u);
}

TEST(ServeMetrics, JsonContainsEveryKey) {
  ServeMetrics m;
  m.record_initial_frequency(300.0);
  m.on_submitted();
  m.on_served();
  m.on_batch(1, {1.0});
  m.on_window(0.25, 150.0, true);
  const auto json = m.snapshot().to_json();
  for (const char* key :
       {"\"submitted\"", "\"served\"", "\"rejected_full\"", "\"shed_oldest\"",
        "\"shed_deadline\"", "\"batches\"", "\"mean_batch_size\"", "\"checks\"",
        "\"check_errors\"", "\"queue_depth\"", "\"queue_peak\"",
        "\"pool_queue_depth\"", "\"pool_inflight\"", "\"window_error_rates\"",
        "\"frequency_timeline\"", "\"at_served\"", "\"freq_mhz\"",
        "\"latency_hist_max_ms\"", "\"latency_overflow\"",
        "\"latency_bin_lo_ms\"", "\"latency_counts\""})
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  EXPECT_NE(json.find("0.25"), std::string::npos);
}

TEST(ServeMetrics, ConstructorValidation) {
  EXPECT_THROW(ServeMetrics(0.0, 10), CheckError);
  EXPECT_THROW(ServeMetrics(10.0, 0), CheckError);
}

}  // namespace
}  // namespace oclp
