#include "serve/governor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace oclp {
namespace {

using Action = FrequencyGovernor::Action;

GovernorConfig small_cfg() {
  GovernorConfig cfg;
  cfg.f_target_mhz = 300.0;
  cfg.f_floor_mhz = 100.0;
  cfg.slo_error_rate = 0.10;
  cfg.window_checks = 4;
  cfg.step_down_factor = 0.5;
  cfg.step_up_mhz = 50.0;
  cfg.healthy_windows_to_ramp = 2;
  return cfg;
}

// Feed a whole window of identical verdicts, returning the closing decision.
FrequencyGovernor::Decision feed_window(FrequencyGovernor& gov, bool error,
                                        std::size_t n) {
  FrequencyGovernor::Decision last;
  for (std::size_t i = 0; i < n; ++i) last = gov.record_check(error);
  return last;
}

TEST(FrequencyGovernor, StartsAtTarget) {
  FrequencyGovernor gov(small_cfg());
  EXPECT_DOUBLE_EQ(gov.frequency_mhz(), 300.0);
  EXPECT_EQ(gov.windows_closed(), 0u);
  EXPECT_EQ(gov.checks_recorded(), 0u);
}

TEST(FrequencyGovernor, MidWindowVerdictsDoNotDecide) {
  FrequencyGovernor gov(small_cfg());
  for (int i = 0; i < 3; ++i) {
    const auto d = gov.record_check(true);
    EXPECT_FALSE(d.window_closed);
    EXPECT_EQ(d.action, Action::None);
    EXPECT_DOUBLE_EQ(gov.frequency_mhz(), 300.0);  // no mid-window moves
  }
  EXPECT_EQ(gov.checks_recorded(), 3u);
  EXPECT_EQ(gov.windows_closed(), 0u);
}

TEST(FrequencyGovernor, BreachStepsDownMultiplicatively) {
  FrequencyGovernor gov(small_cfg());
  const auto d = feed_window(gov, true, 4);
  ASSERT_TRUE(d.window_closed);
  EXPECT_EQ(d.action, Action::StepDown);
  EXPECT_DOUBLE_EQ(d.window_error_rate, 1.0);
  EXPECT_DOUBLE_EQ(d.freq_mhz, 150.0);  // 300 × 0.5
  EXPECT_DOUBLE_EQ(gov.frequency_mhz(), 150.0);
  EXPECT_EQ(gov.windows_closed(), 1u);
}

TEST(FrequencyGovernor, StepDownClampsAtFloorThenHolds) {
  FrequencyGovernor gov(small_cfg());
  feed_window(gov, true, 4);  // 300 → 150
  const auto at_floor = feed_window(gov, true, 4);
  EXPECT_EQ(at_floor.action, Action::StepDown);
  EXPECT_DOUBLE_EQ(at_floor.freq_mhz, 100.0);  // 150 × 0.5 clamps to floor
  const auto held = feed_window(gov, true, 4);
  EXPECT_EQ(held.action, Action::Hold);  // already at the floor
  EXPECT_DOUBLE_EQ(gov.frequency_mhz(), 100.0);
}

TEST(FrequencyGovernor, ErrorRateAtSloIsHealthy) {
  // The SLO is a tolerated rate: breach means strictly above it.
  auto cfg = small_cfg();
  cfg.window_checks = 10;
  cfg.slo_error_rate = 0.10;
  FrequencyGovernor gov(cfg);
  auto d = gov.record_check(true);
  for (int i = 0; i < 9; ++i) d = gov.record_check(false);
  ASSERT_TRUE(d.window_closed);
  EXPECT_DOUBLE_EQ(d.window_error_rate, 0.10);
  EXPECT_EQ(d.action, Action::Hold);
  EXPECT_DOUBLE_EQ(gov.frequency_mhz(), 300.0);
}

TEST(FrequencyGovernor, RampsBackAfterHealthyStreak) {
  FrequencyGovernor gov(small_cfg());
  feed_window(gov, true, 4);   // 300 → 150
  const auto first = feed_window(gov, false, 4);
  EXPECT_EQ(first.action, Action::Hold);  // streak 1 of 2
  const auto second = feed_window(gov, false, 4);
  EXPECT_EQ(second.action, Action::StepUp);
  EXPECT_DOUBLE_EQ(second.freq_mhz, 200.0);  // 150 + 50
  // The streak re-arms: the very next healthy window only holds.
  const auto third = feed_window(gov, false, 4);
  EXPECT_EQ(third.action, Action::Hold);
  const auto fourth = feed_window(gov, false, 4);
  EXPECT_EQ(fourth.action, Action::StepUp);
  EXPECT_DOUBLE_EQ(fourth.freq_mhz, 250.0);
}

TEST(FrequencyGovernor, StepUpClampsAtTargetAndStopsThere) {
  auto cfg = small_cfg();
  cfg.step_up_mhz = 500.0;  // one step overshoots without the clamp
  FrequencyGovernor gov(cfg);
  feed_window(gov, true, 4);  // 300 → 150
  feed_window(gov, false, 4);
  const auto up = feed_window(gov, false, 4);
  EXPECT_EQ(up.action, Action::StepUp);
  EXPECT_DOUBLE_EQ(up.freq_mhz, 300.0);
  // At the target, further healthy windows never "ramp".
  feed_window(gov, false, 4);
  const auto at_target = feed_window(gov, false, 4);
  EXPECT_EQ(at_target.action, Action::Hold);
  EXPECT_DOUBLE_EQ(gov.frequency_mhz(), 300.0);
}

TEST(FrequencyGovernor, BreachResetsHealthyStreak) {
  FrequencyGovernor gov(small_cfg());
  feed_window(gov, true, 4);   // 300 → 150
  feed_window(gov, false, 4);  // streak 1
  feed_window(gov, true, 4);   // breach resets; 150 → 100 (floor)
  feed_window(gov, false, 4);  // streak must rebuild from zero
  const auto d = feed_window(gov, false, 4);
  EXPECT_EQ(d.action, Action::StepUp);
  EXPECT_DOUBLE_EQ(d.freq_mhz, 150.0);
}

TEST(FrequencyGovernor, BreachAtFloorHoldsButResetsHealthyStreak) {
  // Ramp-back semantics at the characterised floor: a breaching window
  // cannot step below the floor (Hold), but it still zeroes the healthy
  // streak — the ramp restarts from scratch, it does not resume a streak
  // built before the breach.
  FrequencyGovernor gov(small_cfg());
  feed_window(gov, true, 4);  // 300 → 150
  feed_window(gov, true, 4);  // 150 → 100 (floor)
  feed_window(gov, false, 4); // streak 1 of 2
  const auto breach = feed_window(gov, true, 4);
  EXPECT_EQ(breach.action, Action::Hold);  // clamped: no move below floor
  EXPECT_DOUBLE_EQ(gov.frequency_mhz(), 100.0);
  // If the streak had survived the breach, this window would step up.
  const auto first = feed_window(gov, false, 4);
  EXPECT_EQ(first.action, Action::Hold);
  const auto second = feed_window(gov, false, 4);
  EXPECT_EQ(second.action, Action::StepUp);
  EXPECT_DOUBLE_EQ(second.freq_mhz, 150.0);
}

TEST(FrequencyGovernor, ChecksIntoWindowSegmentationContract) {
  // process_batch segments batches at predicted window-close points using
  // checks_into_window(): after k mid-window verdicts it reads k, and the
  // verdict that closes the window resets it to 0 — so "window_checks -
  // checks_into_window() more checks close the window" always holds.
  FrequencyGovernor gov(small_cfg());  // window of 4
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(gov.checks_into_window(), k);
      const auto d = gov.record_check(false);
      EXPECT_EQ(d.window_closed, k == 3);
    }
    EXPECT_EQ(gov.checks_into_window(), 0u);
  }
  EXPECT_EQ(gov.windows_closed(), 3u);
}

TEST(FrequencyGovernor, LimitsStartAtConfigValues) {
  FrequencyGovernor gov(small_cfg());
  EXPECT_DOUBLE_EQ(gov.floor_mhz(), 100.0);
  EXPECT_DOUBLE_EQ(gov.target_mhz(), 300.0);
}

TEST(FrequencyGovernor, SetLimitsLowersFloorAndUnlocksStepDown) {
  // Re-characterisation discovered the old floor is no longer error-free:
  // lowering it lets the AIMD loop step below the old clamp.
  FrequencyGovernor gov(small_cfg());
  feed_window(gov, true, 4);  // 300 → 150
  feed_window(gov, true, 4);  // 150 → 100 (old floor)
  feed_window(gov, true, 4);  // Hold at old floor
  EXPECT_DOUBLE_EQ(gov.frequency_mhz(), 100.0);
  gov.set_limits(40.0, 300.0);
  EXPECT_DOUBLE_EQ(gov.floor_mhz(), 40.0);
  EXPECT_DOUBLE_EQ(gov.frequency_mhz(), 100.0);  // lowering never jumps down
  const auto down = feed_window(gov, true, 4);
  EXPECT_EQ(down.action, Action::StepDown);
  EXPECT_DOUBLE_EQ(down.freq_mhz, 50.0);  // 100 × 0.5, now legal
  const auto clamped = feed_window(gov, true, 4);
  EXPECT_DOUBLE_EQ(clamped.freq_mhz, 40.0);  // clamps at the new floor
}

TEST(FrequencyGovernor, SetLimitsClampsFrequencyIntoNewRange) {
  FrequencyGovernor gov(small_cfg());
  // Lowered ceiling pulls the operating point down immediately.
  gov.set_limits(100.0, 200.0);
  EXPECT_DOUBLE_EQ(gov.frequency_mhz(), 200.0);
  EXPECT_DOUBLE_EQ(gov.target_mhz(), 200.0);
  // A raised floor (a safe bound by definition) lifts the point up to it.
  gov.set_limits(250.0, 300.0);
  EXPECT_DOUBLE_EQ(gov.frequency_mhz(), 250.0);
  // StepUp now honours the restored ceiling.
  feed_window(gov, false, 4);
  const auto up = feed_window(gov, false, 4);
  EXPECT_EQ(up.action, Action::StepUp);
  EXPECT_DOUBLE_EQ(up.freq_mhz, 300.0);
}

TEST(FrequencyGovernor, SetLimitsPreservesOpenWindowCounts) {
  FrequencyGovernor gov(small_cfg());
  gov.record_check(true);
  gov.record_check(true);
  gov.set_limits(50.0, 300.0);
  EXPECT_EQ(gov.checks_into_window(), 2u);
  gov.record_check(true);
  const auto d = gov.record_check(true);  // closes the same window
  ASSERT_TRUE(d.window_closed);
  EXPECT_DOUBLE_EQ(d.window_error_rate, 1.0);
}

TEST(FrequencyGovernor, SetLimitsValidation) {
  FrequencyGovernor gov(small_cfg());
  EXPECT_THROW(gov.set_limits(0.0, 300.0), CheckError);
  EXPECT_THROW(gov.set_limits(-10.0, 300.0), CheckError);
  EXPECT_THROW(gov.set_limits(400.0, 300.0), CheckError);
}

TEST(FrequencyGovernor, CountersTrackWindowsAndChecks) {
  FrequencyGovernor gov(small_cfg());
  for (int i = 0; i < 11; ++i) gov.record_check(i % 5 == 0);
  EXPECT_EQ(gov.checks_recorded(), 11u);
  EXPECT_EQ(gov.windows_closed(), 2u);  // 11 / 4
}

TEST(FrequencyGovernor, DeterministicGivenVerdictSequence) {
  const std::vector<bool> verdicts = {true,  false, true, true,  false, false,
                                      false, false, true, false, false, false};
  auto run = [&] {
    FrequencyGovernor gov(small_cfg());
    for (bool v : verdicts) gov.record_check(v);
    return gov.frequency_mhz();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(FrequencyGovernor, ConcurrentVerdictsAreAllCounted) {
  auto cfg = small_cfg();
  cfg.window_checks = 1000;  // one window across all threads
  FrequencyGovernor gov(cfg);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 250; ++i) gov.record_check(false);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(gov.checks_recorded(), 1000u);
  EXPECT_EQ(gov.windows_closed(), 1u);
}

TEST(FrequencyGovernor, ConfigValidation) {
  auto bad = small_cfg();
  bad.f_floor_mhz = 400.0;  // floor above target
  EXPECT_THROW(FrequencyGovernor{bad}, CheckError);
  bad = small_cfg();
  bad.step_down_factor = 1.0;
  EXPECT_THROW(FrequencyGovernor{bad}, CheckError);
  bad = small_cfg();
  bad.window_checks = 0;
  EXPECT_THROW(FrequencyGovernor{bad}, CheckError);
  bad = small_cfg();
  bad.slo_error_rate = 1.5;
  EXPECT_THROW(FrequencyGovernor{bad}, CheckError);
  bad = small_cfg();
  bad.healthy_windows_to_ramp = 0;
  EXPECT_THROW(FrequencyGovernor{bad}, CheckError);
}

}  // namespace
}  // namespace oclp
