#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <vector>

#include "charlib/sweep.hpp"
#include "common/rng.hpp"
#include "fabric/calibration.hpp"

namespace oclp {
namespace {

constexpr int kWlX = 8;

// P=4, K=2, wl=8 with near-maximal magnitudes: the deepest carry chains of
// the multiplier port, the coefficients that miss timing first.
LinearProjectionDesign serve_design(double freq_mhz) {
  const MultConfig cfg{MultArch::Array, 8, 1};
  LinearProjectionDesign d;
  d.columns.push_back(make_column(
      {255.0 / 256, -239.0 / 256, 251.0 / 256, -223.0 / 256}, cfg));
  d.columns.push_back(make_column(
      {-247.0 / 256, 233.0 / 256, 253.0 / 256, 227.0 / 256}, cfg));
  d.target_freq_mhz = freq_mhz;
  d.origin = "serve-test";
  return d;
}

Device make_device() {
  Device device(reference_device_config(), kReferenceDieSeed);
  device.set_temperature(kCharacterisationTempC);
  return device;
}

CircuitPlan deterministic_plan(const LinearProjectionDesign& d) {
  auto plan = simulated_plan(d, reference_location_1());
  plan.with_jitter = false;  // served outputs depend only on request order
  return plan;
}

std::vector<std::uint32_t> random_codes(Rng& rng, std::size_t p) {
  std::vector<std::uint32_t> codes(p);
  for (auto& c : codes)
    c = static_cast<std::uint32_t>(rng.uniform_u64(1u << kWlX));
  return codes;
}

/// Characterised fB / fC of the wl=8 × wl_x=8 multiplier at the plan's
/// placement — probed once, the anchors every frequency constant in the
/// governor tests derives from (exactly how a deployment would pick them).
const OperatingRegimes& probed_regimes() {
  static const OperatingRegimes regimes = [] {
    const Device device = make_device();
    std::vector<double> freqs;
    for (double f = 120.0; f <= 540.0; f += 20.0) freqs.push_back(f);
    const auto curve = error_rate_curve(device, 8, kWlX,
                                        reference_location_1(), freqs, 400, 99);
    return find_regimes(curve);
  }();
  return regimes;
}

/// Thread-safe capture of every served result.
struct ResultLog {
  std::mutex mutex;
  std::vector<ServeResult> results;
  ProjectionServer::ResultCallback callback() {
    return [this](const ServeResult& r) {
      std::lock_guard lock(mutex);
      results.push_back(r);
    };
  }
};

TEST(ProjectionServer, ServesExactResultsAtSafeClock) {
  const auto design = serve_design(100.0);
  const Device device = make_device();
  const auto plan = deterministic_plan(design);

  ServeConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  cfg.max_wait_ms = 0.0;
  cfg.check_fraction = 0.0;
  cfg.governor.f_target_mhz = 100.0;  // far below any timing limit
  cfg.governor.f_floor_mhz = 100.0;

  ResultLog log;
  ProjectionServer server(design, device, plan, kWlX, nullptr, cfg,
                          log.callback());
  ProjectionCircuit reference(design, device, plan, kWlX, nullptr, 1);

  Rng rng(42);
  std::vector<std::vector<std::uint32_t>> codes_by_id(21);
  for (std::uint64_t id = 1; id <= 20; ++id) {
    codes_by_id[id] = random_codes(rng, 4);
    EXPECT_TRUE(server.submit({id, codes_by_id[id], 0.0}));
  }
  server.wait_idle();

  std::lock_guard lock(log.mutex);
  ASSERT_EQ(log.results.size(), 20u);
  std::vector<bool> seen(21, false);
  for (const auto& r : log.results) {
    ASSERT_GE(r.id, 1u);
    ASSERT_LE(r.id, 20u);
    EXPECT_FALSE(seen[r.id]);
    seen[r.id] = true;
    EXPECT_DOUBLE_EQ(r.freq_mhz, 100.0);
    EXPECT_FALSE(r.checked);
    const auto exact = reference.project_exact(codes_by_id[r.id]);
    ASSERT_EQ(r.y.size(), exact.size());
    for (std::size_t k = 0; k < exact.size(); ++k)
      EXPECT_NEAR(r.y[k], exact[k], 1e-12);
  }
}

TEST(ProjectionServer, SubmitValidatesRequestShape) {
  const auto design = serve_design(100.0);
  const Device device = make_device();
  const auto plan = deterministic_plan(design);
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.governor.f_target_mhz = 100.0;
  cfg.governor.f_floor_mhz = 100.0;
  ProjectionServer server(design, device, plan, kWlX, nullptr, cfg, nullptr);
  EXPECT_THROW(server.submit({1, {1, 2, 3}, 0.0}), CheckError);  // P=4
  EXPECT_THROW(server.submit({2, {1, 2, 3, 256}, 0.0}), CheckError);  // 2^wl_x
  EXPECT_TRUE(server.submit({3, {1, 2, 3, 255}, 0.0}));
  server.wait_idle();
}

TEST(ProjectionServer, RejectNewestBouncesWhenQueueFull) {
  const auto design = serve_design(100.0);
  const Device device = make_device();
  const auto plan = deterministic_plan(design);
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.overload = OverloadPolicy::RejectNewest;
  cfg.check_fraction = 0.0;
  cfg.start_paused = true;
  cfg.governor.f_target_mhz = 100.0;
  cfg.governor.f_floor_mhz = 100.0;

  ResultLog log;
  ProjectionServer server(design, device, plan, kWlX, nullptr, cfg,
                          log.callback());
  EXPECT_TRUE(server.submit({1, {1, 2, 3, 4}, 0.0}));
  EXPECT_TRUE(server.submit({2, {5, 6, 7, 8}, 0.0}));
  EXPECT_FALSE(server.submit({3, {9, 10, 11, 12}, 0.0}));  // bounced
  server.resume();
  server.wait_idle();

  const auto snap = server.metrics_snapshot();
  EXPECT_EQ(snap.submitted, 3u);
  EXPECT_EQ(snap.rejected_full, 1u);
  EXPECT_EQ(snap.served, 2u);
  EXPECT_EQ(snap.queue_peak, 2u);
  std::lock_guard lock(log.mutex);
  ASSERT_EQ(log.results.size(), 2u);
  for (const auto& r : log.results) EXPECT_NE(r.id, 3u);
}

TEST(ProjectionServer, ShedOldestKeepsTheFreshestRequests) {
  const auto design = serve_design(100.0);
  const Device device = make_device();
  const auto plan = deterministic_plan(design);
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.overload = OverloadPolicy::ShedOldest;
  cfg.check_fraction = 0.0;
  cfg.start_paused = true;
  cfg.governor.f_target_mhz = 100.0;
  cfg.governor.f_floor_mhz = 100.0;

  ResultLog log;
  ProjectionServer server(design, device, plan, kWlX, nullptr, cfg,
                          log.callback());
  EXPECT_TRUE(server.submit({1, {1, 2, 3, 4}, 0.0}));
  EXPECT_TRUE(server.submit({2, {5, 6, 7, 8}, 0.0}));
  EXPECT_TRUE(server.submit({3, {9, 10, 11, 12}, 0.0}));  // evicts id 1
  server.resume();
  server.wait_idle();

  const auto snap = server.metrics_snapshot();
  EXPECT_EQ(snap.shed_oldest, 1u);
  EXPECT_EQ(snap.served, 2u);
  std::lock_guard lock(log.mutex);
  ASSERT_EQ(log.results.size(), 2u);
  for (const auto& r : log.results) EXPECT_NE(r.id, 1u);
}

TEST(ProjectionServer, ExpiredDeadlinesAreShedAtPickup) {
  const auto design = serve_design(100.0);
  const Device device = make_device();
  const auto plan = deterministic_plan(design);
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.check_fraction = 0.0;
  cfg.start_paused = true;
  cfg.governor.f_target_mhz = 100.0;
  cfg.governor.f_floor_mhz = 100.0;

  ResultLog log;
  ProjectionServer server(design, device, plan, kWlX, nullptr, cfg,
                          log.callback());
  EXPECT_TRUE(server.submit({1, {1, 2, 3, 4}, /*deadline_ms=*/0.001}));
  EXPECT_TRUE(server.submit({2, {5, 6, 7, 8}, /*deadline_ms=*/0.0}));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.resume();
  server.wait_idle();

  const auto snap = server.metrics_snapshot();
  EXPECT_EQ(snap.shed_deadline, 1u);
  EXPECT_EQ(snap.served, 1u);
  std::lock_guard lock(log.mutex);
  ASSERT_EQ(log.results.size(), 1u);
  EXPECT_EQ(log.results.front().id, 2u);
}

TEST(ProjectionServer, DeadlineBatchJudgedAtOnePickupInstant) {
  // The shed loop must judge every request of a batch against a single
  // pickup timestamp. With per-request clock reads, whether a request
  // survived could depend on how long its batch-mates' checks took; with
  // one instant, identical (enqueue time, deadline) requests in one batch
  // always share a verdict.
  const auto design = serve_design(100.0);
  const Device device = make_device();
  const auto plan = deterministic_plan(design);
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 16;  // everything below lands in one batch
  cfg.check_fraction = 0.0;
  cfg.start_paused = true;
  cfg.governor.f_target_mhz = 100.0;
  cfg.governor.f_floor_mhz = 100.0;

  ResultLog log;
  ProjectionServer server(design, device, plan, kWlX, nullptr, cfg,
                          log.callback());
  // Interleave lapsed-deadline and deadline-free requests so a drifting
  // judgement instant would have to cross several shed decisions.
  for (std::uint64_t id = 1; id <= 12; ++id)
    EXPECT_TRUE(server.submit(
        {id, {1, 2, 3, 4}, /*deadline_ms=*/id % 2 == 1 ? 0.001 : 0.0}));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.resume();
  server.wait_idle();

  const auto snap = server.metrics_snapshot();
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_EQ(snap.shed_deadline, 6u);
  EXPECT_EQ(snap.served, 6u);
  std::lock_guard lock(log.mutex);
  ASSERT_EQ(log.results.size(), 6u);
  for (const auto& r : log.results) EXPECT_EQ(r.id % 2, 0u);
}

TEST(ProjectionServer, SwapErrorModelsAppliesAtNextBatch) {
  const auto design = serve_design(100.0);
  const Device device = make_device();
  const auto plan = deterministic_plan(design);
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.max_wait_ms = 0.0;
  cfg.check_fraction = 0.0;
  cfg.governor.f_target_mhz = 100.0;  // safe clock: served value is exact
  cfg.governor.f_floor_mhz = 100.0;

  ResultLog log;
  ProjectionServer server(design, device, plan, kWlX, nullptr, cfg,
                          log.callback());
  const std::vector<std::uint32_t> codes{9, 20, 7, 255};
  EXPECT_TRUE(server.submit({1, codes, 0.0}));
  server.wait_idle();

  // A re-characterised model with a recognisable mean error per code: the
  // circuit must subtract Σ_p sign·mean(mag)/2^(wl+wl_x) from the next
  // batch on.
  const MultConfig mcfg{MultArch::Array, 8, 1};
  ErrorModel em(mcfg, kWlX, {100.0});
  for (std::uint32_t m = 0; m < em.num_multiplicands(); ++m)
    em.set(m, 0, 0.0, static_cast<double>(m), 0.0);
  SharedErrorModels shared;
  shared.store({{mcfg, em}});
  server.swap_error_models(shared.load());

  EXPECT_TRUE(server.submit({2, codes, 0.0}));
  server.wait_idle();

  std::vector<double> correction(design.dims_k(), 0.0);
  const double scale = std::ldexp(1.0, 8 + kWlX);
  for (std::size_t k = 0; k < design.columns.size(); ++k)
    for (const auto& c : design.columns[k].coeffs)
      correction[k] += c.sign * static_cast<double>(c.magnitude) / scale;

  std::lock_guard lock(log.mutex);
  ASSERT_EQ(log.results.size(), 2u);
  const auto& before = log.results[0];
  const auto& after = log.results[1];
  ASSERT_EQ(before.id, 1u);
  ASSERT_EQ(after.id, 2u);
  for (std::size_t k = 0; k < correction.size(); ++k)
    EXPECT_NEAR(after.y[k], before.y[k] - correction[k], 1e-12);
}

TEST(ProjectionServer, QueueDepthGaugeTracksPausedQueue) {
  const auto design = serve_design(100.0);
  const Device device = make_device();
  const auto plan = deterministic_plan(design);
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.start_paused = true;
  cfg.governor.f_target_mhz = 100.0;
  cfg.governor.f_floor_mhz = 100.0;
  ProjectionServer server(design, device, plan, kWlX, nullptr, cfg, nullptr);
  EXPECT_EQ(server.queue_depth(), 0u);
  for (std::uint64_t id = 1; id <= 5; ++id)
    server.submit({id, {1, 2, 3, 4}, 0.0});
  EXPECT_EQ(server.queue_depth(), 5u);
  server.resume();
  server.wait_idle();
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST(ProjectionServer, StoppedServerRefusesSubmissions) {
  const auto design = serve_design(100.0);
  const Device device = make_device();
  const auto plan = deterministic_plan(design);
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.governor.f_target_mhz = 100.0;
  cfg.governor.f_floor_mhz = 100.0;
  ProjectionServer server(design, device, plan, kWlX, nullptr, cfg, nullptr);
  server.stop();
  EXPECT_FALSE(server.submit({1, {1, 2, 3, 4}, 0.0}));
}

TEST(ProjectionServer, CheckFractionSamplesASubset) {
  const auto design = serve_design(100.0);
  const Device device = make_device();
  const auto plan = deterministic_plan(design);
  ServeConfig cfg;
  cfg.workers = 1;
  cfg.check_fraction = 0.5;
  cfg.governor.f_target_mhz = 100.0;
  cfg.governor.f_floor_mhz = 100.0;
  ProjectionServer server(design, device, plan, kWlX, nullptr, cfg, nullptr);
  Rng rng(7);
  for (std::uint64_t id = 1; id <= 40; ++id)
    server.submit({id, random_codes(rng, 4), 0.0});
  server.wait_idle();
  const auto snap = server.metrics_snapshot();
  EXPECT_EQ(snap.served, 40u);
  EXPECT_GT(snap.checks, 5u);  // sampled…
  EXPECT_LT(snap.checks, 35u);  // …but not exhaustively
  EXPECT_EQ(snap.check_errors, 0u);  // everything exact at 100 MHz
}

TEST(ProjectionServer, ServedResultsAreDeterministicAcrossRuns) {
  const auto& regimes = probed_regimes();
  const double fb = regimes.error_free_fmax_mhz;
  ASSERT_GE(fb, 140.0);
  // Deliberately beyond fB: over-clocking errors occur and must replay
  // identically (one worker, no jitter, seeded sampling).
  const double target = 1.1 * fb;

  auto run = [&] {
    const auto design = serve_design(target);
    const Device device = make_device();
    const auto plan = deterministic_plan(design);
    ServeConfig cfg;
    cfg.workers = 1;
    cfg.max_batch = 4;
    cfg.max_wait_ms = 0.0;
    cfg.check_fraction = 0.25;
    cfg.governor.f_target_mhz = target;
    cfg.governor.f_floor_mhz = 0.4 * fb;
    cfg.governor.window_checks = 8;

    ResultLog log;
    ProjectionServer server(design, device, plan, kWlX, nullptr, cfg,
                            log.callback());
    Rng rng(1234);
    for (std::uint64_t id = 1; id <= 30; ++id)
      server.submit({id, random_codes(rng, 4), 0.0});
    server.stop();
    std::lock_guard lock(log.mutex);
    auto sorted = log.results;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.id < b.id; });
    return sorted;
  };

  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), 30u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].checked, b[i].checked);
    EXPECT_EQ(a[i].check_error, b[i].check_error);
    EXPECT_DOUBLE_EQ(a[i].freq_mhz, b[i].freq_mhz);
    ASSERT_EQ(a[i].y.size(), b[i].y.size());
    for (std::size_t k = 0; k < a[i].y.size(); ++k)
      EXPECT_DOUBLE_EQ(a[i].y[k], b[i].y[k]);
  }
}

// The ISSUE's acceptance test: a seeded load trace with a temperature
// derate step injected mid-run. The server must catch the error-rate
// breach through its sampled safe-frequency checks, step the clock down
// within the configured window, keep the served results inside the error
// SLO while degraded, and ramp back after recovery.
TEST(ProjectionServer, GovernorDegradesAndRecoversUnderThermalStep) {
  const auto& regimes = probed_regimes();
  const double fb = regimes.error_free_fmax_mhz;
  const double fc = regimes.usable_fmax_mhz;
  ASSERT_GE(fb, 140.0) << "error-free regime implausibly low";
  ASSERT_GT(fc, fb);

  // Operating point just under the characterised error-free bound; a hot
  // derate that pushes the *effective* clock past fC (where the paper says
  // results stop being meaningful); a floor low enough to stay error-free
  // even while hot. One breach window steps target → floor exactly, one
  // healthy streak steps floor → target.
  const double f_target = 0.9 * fb;
  const double d_hot = (fc + 20.0) / f_target;
  const double f_floor = std::min(0.5 * fb, 0.9 * fb / d_hot);
  ASSERT_LT(f_floor * d_hot, 0.95 * fb);

  GovernorConfig gov;
  gov.f_target_mhz = f_target;
  gov.f_floor_mhz = f_floor;
  gov.slo_error_rate = 0.05;
  gov.window_checks = 16;
  gov.step_down_factor = f_floor / f_target;
  gov.step_up_mhz = f_target - f_floor;
  gov.healthy_windows_to_ramp = 2;

  ServeConfig cfg;
  cfg.workers = 1;  // determinism: verdict order == submission order
  cfg.max_batch = 4;
  cfg.max_wait_ms = 0.0;
  cfg.check_fraction = 1.0;  // every request carries a verdict
  cfg.governor = gov;

  const auto design = serve_design(f_target);
  const Device device = make_device();
  const auto plan = deterministic_plan(design);

  ResultLog log;
  ProjectionServer server(design, device, plan, kWlX, nullptr, cfg,
                          log.callback());
  ProjectionCircuit reference(design, device, plan, kWlX, nullptr, 1);

  Rng rng(2014);
  std::vector<std::vector<std::uint32_t>> codes_by_id(97);
  std::uint64_t next_id = 1;
  auto submit_requests = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i, ++next_id) {
      codes_by_id[next_id] = random_codes(rng, 4);
      ASSERT_TRUE(server.submit({next_id, codes_by_id[next_id], 0.0}));
    }
    server.wait_idle();
  };
  auto mse_for_ids = [&](std::uint64_t lo, std::uint64_t hi) {
    std::lock_guard lock(log.mutex);
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& r : log.results)
      if (r.id >= lo && r.id <= hi) {
        const auto exact = reference.project_exact(codes_by_id[r.id]);
        for (std::size_t k = 0; k < exact.size(); ++k) {
          const double d = r.y[k] - exact[k];
          sum += d * d;
          ++n;
        }
      }
    return n == 0 ? -1.0 : sum / static_cast<double>(n);
  };

  // --- Phase A: nominal environment, two full windows -----------------------
  submit_requests(32);  // ids 1..32
  EXPECT_NEAR(server.governor().frequency_mhz(), f_target, 1e-9);
  {
    const auto snap = server.metrics_snapshot();
    ASSERT_EQ(snap.window_error_rates.size(), 2u);
    EXPECT_DOUBLE_EQ(snap.window_error_rates[0], 0.0);
    EXPECT_DOUBLE_EQ(snap.window_error_rates[1], 0.0);
    EXPECT_EQ(snap.check_errors, 0u);
  }
  EXPECT_NEAR(mse_for_ids(1, 32), 0.0, 1e-18);  // error-free below fB

  // --- Phase B: thermal event — delays stretch by d_hot ---------------------
  server.set_timing_derate(d_hot);
  submit_requests(16);  // ids 33..48: one window at the hot target clock
  // Breach detected and stepped down within the configured window.
  EXPECT_NEAR(server.governor().frequency_mhz(), f_floor, 1e-9);
  {
    const auto snap = server.metrics_snapshot();
    ASSERT_EQ(snap.window_error_rates.size(), 3u);
    EXPECT_GT(snap.window_error_rates[2], gov.slo_error_rate);
    EXPECT_GT(snap.check_errors, 0u);
  }

  submit_requests(16);  // ids 49..64: degraded but healthy at the floor
  {
    const auto snap = server.metrics_snapshot();
    ASSERT_EQ(snap.window_error_rates.size(), 4u);
    EXPECT_LE(snap.window_error_rates[3], gov.slo_error_rate);
  }
  // Graceful degradation: served results stay inside the error SLO even
  // though the die is still hot — the floor clock has the timing slack.
  EXPECT_NEAR(mse_for_ids(49, 64), 0.0, 1e-18);

  // --- Phase C: environment recovers, governor ramps back -------------------
  server.set_timing_derate(1.0);
  submit_requests(32);  // ids 65..96: healthy streak completes, step up
  EXPECT_NEAR(server.governor().frequency_mhz(), f_target, 1e-6);
  EXPECT_NEAR(mse_for_ids(65, 96), 0.0, 1e-18);

  EXPECT_EQ(server.governor().windows_closed(), 6u);
  EXPECT_EQ(server.governor().checks_recorded(), 96u);

  // Frequency timeline tells the whole story: target → floor → target.
  const auto snap = server.metrics_snapshot();
  ASSERT_GE(snap.frequency_timeline.size(), 3u);
  EXPECT_NEAR(snap.frequency_timeline.front().freq_mhz, f_target, 1e-9);
  EXPECT_NEAR(snap.frequency_timeline[1].freq_mhz, f_floor, 1e-9);
  EXPECT_NEAR(snap.frequency_timeline.back().freq_mhz, f_target, 1e-6);
  EXPECT_EQ(snap.served, 96u);
  EXPECT_EQ(snap.checks, 96u);

  std::lock_guard lock(log.mutex);
  ASSERT_EQ(log.results.size(), 96u);
  // The hot window's requests were served at the target clock and flagged.
  std::size_t hot_flagged = 0;
  for (const auto& r : log.results)
    if (r.id >= 33 && r.id <= 48 && r.check_error) ++hot_flagged;
  EXPECT_GT(hot_flagged, 0u);
}

}  // namespace
}  // namespace oclp
