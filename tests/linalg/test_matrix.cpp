#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace oclp {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), CheckError);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i.trace(), 3.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const Matrix d = Matrix::diagonal({2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, MultiplyKnownResult) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  EXPECT_THROW(Matrix(2, 3) * Matrix(2, 3), CheckError);
}

TEST(Matrix, MultiplyByIdentityIsNoop) {
  Rng rng(5);
  Matrix a(4, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.normal();
  const Matrix b = a * Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(b(r, c), a(r, c));
}

TEST(Matrix, TransposeInvolution) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  const Matrix tt = t.transposed();
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(tt(r, c), a(r, c));
}

TEST(Matrix, TransposeProductRule) {
  // (AB)ᵀ = BᵀAᵀ — a property test over random matrices.
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a(3, 4), b(4, 2);
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.normal();
    for (std::size_t r = 0; r < 4; ++r)
      for (std::size_t c = 0; c < 2; ++c) b(r, c) = rng.normal();
    const Matrix lhs = (a * b).transposed();
    const Matrix rhs = b.transposed() * a.transposed();
    for (std::size_t r = 0; r < lhs.rows(); ++r)
      for (std::size_t c = 0; c < lhs.cols(); ++c)
        EXPECT_NEAR(lhs(r, c), rhs(r, c), 1e-12);
  }
}

TEST(Matrix, AddSubScale) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{4, 3}, {2, 1}};
  const Matrix s = a + b;
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  const Matrix d = a - b;
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  const Matrix m = a * 2.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 6.0);
  const Matrix m2 = 2.0 * a;
  EXPECT_DOUBLE_EQ(m2(1, 0), 6.0);
}

TEST(Matrix, RowColAccessors) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(a.row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(a.col(2), (std::vector<double>{3, 6}));
  Matrix b = a;
  b.set_row(0, {7, 8, 9});
  EXPECT_DOUBLE_EQ(b(0, 2), 9.0);
  b.set_col(0, {0, 1});
  EXPECT_DOUBLE_EQ(b(1, 0), 1.0);
}

TEST(Matrix, NormsAndTrace) {
  const Matrix a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.trace(), 7.0);
  EXPECT_DOUBLE_EQ(a.mean_square(), 25.0 / 4.0);
}

TEST(VectorOps, DotNormNormalize) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
  const auto u = normalized({3, 4});
  EXPECT_NEAR(u[0], 0.6, 1e-15);
  EXPECT_NEAR(u[1], 0.8, 1e-15);
  EXPECT_THROW(normalized({0, 0}), CheckError);
}

TEST(VectorOps, AddSubScaled) {
  EXPECT_EQ(add({1, 2}, {3, 4}), (std::vector<double>{4, 6}));
  EXPECT_EQ(sub({1, 2}, {3, 4}), (std::vector<double>{-2, -2}));
  EXPECT_EQ(scaled({1, 2}, 3.0), (std::vector<double>{3, 6}));
}

TEST(DataOps, CenterRowsRemovesMeans) {
  Matrix x{{1, 2, 3}, {10, 20, 30}};
  const auto mu = center_rows(x);
  EXPECT_DOUBLE_EQ(mu[0], 2.0);
  EXPECT_DOUBLE_EQ(mu[1], 20.0);
  for (std::size_t r = 0; r < 2; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < 3; ++c) s += x(r, c);
    EXPECT_NEAR(s, 0.0, 1e-12);
  }
}

TEST(DataOps, CovarianceOfKnownData) {
  // Two perfectly correlated rows.
  Matrix x{{1, 2, 3, 4}, {2, 4, 6, 8}};
  const Matrix c = covariance(x);
  EXPECT_NEAR(c(0, 0), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(c(1, 1), 20.0 / 3.0, 1e-12);
  EXPECT_NEAR(c(0, 1), 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(c(0, 1), c(1, 0), 1e-15);
}

TEST(DataOps, CovarianceIsPositiveSemidefiniteDiagonal) {
  Rng rng(11);
  Matrix x(4, 50);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 50; ++c) x(r, c) = rng.normal();
  const Matrix cov = covariance(x);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_GE(cov(i, i), 0.0);
}

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  return m;
}

TEST(Multiply, PooledMatchesSerialBitwise) {
  // Row-parallel GEMM writes each output row with the same i-k-j
  // accumulation as operator*, so the result is bitwise identical
  // regardless of the pool.
  const Matrix a = random_matrix(17, 9, 13);
  const Matrix b = random_matrix(9, 23, 15);
  const Matrix serial = a * b;
  ThreadPool pool(4);
  const Matrix pooled = multiply(a, b, &pool);
  const Matrix no_pool = multiply(a, b, nullptr);
  ASSERT_TRUE(pooled.same_shape(serial));
  for (std::size_t i = 0; i < serial.rows(); ++i)
    for (std::size_t j = 0; j < serial.cols(); ++j) {
      EXPECT_EQ(pooled(i, j), serial(i, j));
      EXPECT_EQ(no_pool(i, j), serial(i, j));
    }
}

TEST(Multiply, NaiveGoldenReferenceAgrees) {
  const Matrix a = random_matrix(8, 12, 17);
  const Matrix b = random_matrix(12, 6, 19);
  const Matrix fast = a * b;
  const Matrix naive = multiply_naive(a, b);
  for (std::size_t i = 0; i < fast.rows(); ++i)
    for (std::size_t j = 0; j < fast.cols(); ++j)
      EXPECT_NEAR(fast(i, j), naive(i, j), 1e-12 * std::abs(naive(i, j)) + 1e-14);
}

TEST(Multiply, ShapeMismatchThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(multiply(Matrix(2, 3), Matrix(2, 3), &pool), CheckError);
  EXPECT_THROW(multiply_naive(Matrix(2, 3), Matrix(2, 3)), CheckError);
}

TEST(ReconstructionMse, MatchesExpressionBitwise) {
  const Matrix x = random_matrix(6, 40, 21);
  const Matrix basis = random_matrix(6, 3, 23);
  const Matrix f = random_matrix(3, 40, 25);
  const double fused = reconstruction_mse(x, basis, f);
  const double expression = (x - basis * f).mean_square();
  EXPECT_DOUBLE_EQ(fused, expression);
}

TEST(ReconstructionMse, ShapeMismatchThrows) {
  EXPECT_THROW(reconstruction_mse(Matrix(6, 40), Matrix(6, 3), Matrix(2, 40)),
               CheckError);
  EXPECT_THROW(reconstruction_mse(Matrix(6, 40), Matrix(5, 3), Matrix(3, 40)),
               CheckError);
  EXPECT_THROW(reconstruction_mse(Matrix(6, 40), Matrix(6, 3), Matrix(3, 39)),
               CheckError);
}

TEST(ReconstructionMse, EmptyDataIsZero) {
  EXPECT_DOUBLE_EQ(reconstruction_mse(Matrix(0, 0), Matrix(0, 0), Matrix(0, 0)),
                   0.0);
}

}  // namespace
}  // namespace oclp
