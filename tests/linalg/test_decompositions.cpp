#include "linalg/decompositions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace oclp {
namespace {

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
  Matrix spd = a * a.transposed();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.5;
  return spd;
}

Matrix random_symmetric(std::size_t n, Rng& rng) {
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) a(r, c) = a(c, r) = rng.normal();
  return a;
}

TEST(Jacobi, KnownTwoByTwo) {
  const Matrix a{{2, 1}, {1, 2}};  // eigenvalues 3 and 1
  const auto eig = jacobi_eigen_sym(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
}

TEST(Jacobi, DiagonalMatrixIsItsOwnDecomposition) {
  const auto eig = jacobi_eigen_sym(Matrix::diagonal({5.0, 1.0, 3.0}));
  EXPECT_NEAR(eig.values[0], 5.0, 1e-14);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-14);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-14);
}

class JacobiProperty : public ::testing::TestWithParam<int> {};

TEST_P(JacobiProperty, EigenpairsSatisfyDefinition) {
  Rng rng(GetParam());
  const std::size_t n = 2 + GetParam() % 6;
  const Matrix a = random_symmetric(n, rng);
  const auto eig = jacobi_eigen_sym(a);
  ASSERT_EQ(eig.values.size(), n);
  // A v_k = λ_k v_k
  for (std::size_t k = 0; k < n; ++k) {
    const auto v = eig.vectors.col(k);
    const Matrix av = a * Matrix::column(v);
    for (std::size_t r = 0; r < n; ++r)
      EXPECT_NEAR(av(r, 0), eig.values[k] * v[r], 1e-9);
  }
  // Descending order.
  for (std::size_t k = 1; k < n; ++k) EXPECT_GE(eig.values[k - 1], eig.values[k] - 1e-12);
  // Orthonormal vectors.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(dot(eig.vectors.col(i), eig.vectors.col(j)), i == j ? 1.0 : 0.0, 1e-10);
  // Trace preservation.
  double sum = 0.0;
  for (double v : eig.values) sum += v;
  EXPECT_NEAR(sum, a.trace(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, JacobiProperty, ::testing::Range(1, 13));

TEST(Cholesky, RoundTripReconstruction) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const Matrix a = random_spd(4, rng);
    const Matrix l = cholesky(a);
    const Matrix rec = l * l.transposed();
    for (std::size_t r = 0; r < 4; ++r)
      for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(rec(r, c), a(r, c), 1e-10);
    // Lower-triangular structure.
    for (std::size_t r = 0; r < 4; ++r)
      for (std::size_t c = r + 1; c < 4; ++c) EXPECT_DOUBLE_EQ(l(r, c), 0.0);
  }
}

TEST(Cholesky, RejectsIndefinite) {
  EXPECT_THROW(cholesky(Matrix{{1, 2}, {2, 1}}), CheckError);  // eigenvalue -1
}

TEST(SolveSpd, MatchesDirectSubstitution) {
  Rng rng(5);
  const Matrix a = random_spd(5, rng);
  std::vector<double> x_true(5);
  for (auto& v : x_true) v = rng.normal();
  const Matrix b = a * Matrix::column(x_true);
  const auto x = solve_spd(a, b.col(0));
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(SolveSpd, MatrixRhs) {
  Rng rng(7);
  const Matrix a = random_spd(3, rng);
  const Matrix x = solve_spd(a, Matrix::identity(3));
  const Matrix should_be_i = a * x;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(should_be_i(r, c), r == c ? 1.0 : 0.0, 1e-10);
}

TEST(InverseSpd, InverseTimesOriginalIsIdentity) {
  Rng rng(9);
  const Matrix a = random_spd(4, rng);
  const Matrix inv = inverse_spd(a);
  const Matrix prod = inv * a;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-9);
}

TEST(LeastSquares, ExactOnConsistentSystem) {
  const Matrix a{{1, 0}, {0, 1}, {1, 1}};
  const std::vector<double> x_true{2.0, -1.0};
  const Matrix b = a * Matrix::column(x_true);
  const auto x = least_squares(a, b.col(0));
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], -1.0, 1e-12);
}

TEST(LeastSquares, ResidualOrthogonalToColumns) {
  Rng rng(11);
  Matrix a(10, 3);
  std::vector<double> b(10);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.normal();
    b[r] = rng.normal();
  }
  const auto x = least_squares(a, b);
  const Matrix res = Matrix::column(b) - a * Matrix::column(x);
  const Matrix atr = a.transposed() * res;
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(atr(i, 0), 0.0, 1e-10);
}

TEST(ProjectionFactors, OrthonormalBasisGivesTransposeProjection) {
  // For orthonormal Λ, (ΛᵀΛ)⁻¹Λᵀ = Λᵀ.
  const Matrix lambda{{1, 0}, {0, 1}, {0, 0}};
  Rng rng(13);
  Matrix x(3, 5);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 5; ++c) x(r, c) = rng.normal();
  const Matrix f = projection_factors(lambda, x);
  for (std::size_t c = 0; c < 5; ++c) {
    EXPECT_NEAR(f(0, c), x(0, c), 1e-12);
    EXPECT_NEAR(f(1, c), x(1, c), 1e-12);
  }
}

TEST(ProjectionFactors, RidgeRescuesRankDeficientBasis) {
  Matrix lambda(3, 2);  // two identical columns: ΛᵀΛ singular
  lambda.set_col(0, {1, 0, 0});
  lambda.set_col(1, {1, 0, 0});
  Matrix x(3, 2, 1.0);
  EXPECT_THROW(projection_factors(lambda, x), CheckError);
  EXPECT_NO_THROW(projection_factors(lambda, x, 1e-8));
}

TEST(ProjectionNormaliser, MatchesInverse) {
  const Matrix lambda{{1, 0.5}, {0, 1}, {0.5, 0}};
  const Matrix g = projection_normaliser(lambda);
  const Matrix should_be_i = g * (lambda.transposed() * lambda);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c)
      EXPECT_NEAR(should_be_i(r, c), r == c ? 1.0 : 0.0, 1e-10);
}

TEST(GramSchmidt, ProducesOrthonormalColumns) {
  Rng rng(15);
  Matrix a(5, 3);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.normal();
  const Matrix q = gram_schmidt(a);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(dot(q.col(i), q.col(j)), i == j ? 1.0 : 0.0, 1e-10);
}

TEST(GramSchmidt, DependentColumnBecomesZero) {
  Matrix a(3, 2);
  a.set_col(0, {1, 1, 0});
  a.set_col(1, {2, 2, 0});  // linearly dependent
  const Matrix q = gram_schmidt(a);
  EXPECT_NEAR(norm(q.col(0)), 1.0, 1e-12);
  EXPECT_NEAR(norm(q.col(1)), 0.0, 1e-12);
}

}  // namespace
}  // namespace oclp
