#!/usr/bin/env python3
"""Perf-regression smoke guard for the bench JSON trajectories.

Reads the committed floors (bench/perf_floors.json), then for each listed
bench JSON:

  * every dotted-path metric must be >= its floor (a perf regression), and
  * every ``*_checksum_match`` field anywhere in the document must be true
    (a correctness regression, which outranks any speedup).

Usage:
    check_perf_floors.py --floors bench/perf_floors.json --dir build

Exits non-zero with one line per violation, so the CI log names the exact
metric that moved.
"""

import argparse
import json
import os
import sys


def resolve(doc, dotted):
    """Walk a dotted path through nested dicts; None when absent."""
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def checksum_fields(node, prefix=""):
    """Yield (path, value) for every *_checksum_match key, recursively."""
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if key.endswith("_checksum_match"):
                yield path, value
            else:
                yield from checksum_fields(value, path)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from checksum_fields(value, f"{prefix}[{i}]")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--floors", required=True, help="perf_floors.json path")
    ap.add_argument("--dir", default=".", help="directory holding BENCH_*.json")
    args = ap.parse_args()

    with open(args.floors, encoding="utf-8") as f:
        floors = json.load(f)

    failures = []
    checked = 0
    for bench_name, metrics in floors.items():
        if bench_name.startswith("_"):
            continue  # commentary keys
        bench_path = os.path.join(args.dir, bench_name)
        if not os.path.exists(bench_path):
            failures.append(f"{bench_name}: missing (bench did not run?)")
            continue
        with open(bench_path, encoding="utf-8") as f:
            doc = json.load(f)

        for dotted, floor in metrics.items():
            value = resolve(doc, dotted)
            if value is None:
                failures.append(f"{bench_name}: {dotted} absent from the JSON")
            elif not isinstance(value, (int, float)) or value < floor:
                failures.append(
                    f"{bench_name}: {dotted} = {value} below floor {floor}"
                )
            else:
                checked += 1
                print(f"ok  {bench_name}: {dotted} = {value} >= {floor}")

        for path, value in checksum_fields(doc):
            if value is not True:
                failures.append(f"{bench_name}: {path} = {value} (must be true)")
            else:
                checked += 1
                print(f"ok  {bench_name}: {path} = true")

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    if checked == 0:
        print("FAIL no metrics checked — empty floors file?", file=sys.stderr)
        return 1
    print(f"all {checked} perf/checksum gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
