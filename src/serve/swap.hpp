// Runtime design hot-swap: replace a serving ProjectionServer's datapath
// with a freshly fitted design without draining traffic (ROADMAP item 4;
// DESIGN.md §10).
//
// The swap is a four-phase state machine driven by DesignSwapper:
//
//   Lower  — the incoming design is lowered on the *same* fabric locations
//            the server was deployed on (retained Device + CircuitPlan),
//            off the serving threads: one pristine replica per worker plus
//            one dedicated shadow circuit. For MultArch::Ccm every
//            coefficient change re-lowers its cell from scratch
//            (mult/ccm.hpp bakes the constant into the netlist) — the
//            re-lower cost bench_swap measures; the hardware analogue is
//            the dynamically reconfigurable constant multiplier rewritten
//            in place (arXiv 2310.10053).
//   Shadow — a sampled fraction of live requests is mirrored through the
//            shadow circuit, timed at the governor's current operating
//            point, and compared against the shadow's own settled
//            functional value with the serving tolerance (the razor
//            duplicate check applied to the *candidate* datapath). The
//            mirrored traffic runs on the dedicated shadow circuit only:
//            the flip replicas stay pristine, which is what makes a
//            completed swap bitwise-equal to a cold-constructed server.
//            Divergence beyond what the characterised error model predicts
//            at the shadow frequency (plus slack) aborts the swap.
//   Flip   — the new replicas are published under the server's replica
//            lock and generation counter (the copy-on-write pattern of
//            SharedErrorModels): idle replicas flip immediately, busy ones
//            at their next batch boundary (pickup or return). In-flight
//            batches always finish on the datapath they picked up.
//   Retire — old replicas accumulate in a retired list while any of them
//            might still be serving; when the last one moves off, the old
//            design's circuits are destroyed outside the lock.
//
// Rollback: an abort in Lower or Shadow discards the candidate circuits
// and leaves the server untouched — live traffic never moved, so a failed
// swap costs zero requests by construction. Once Flip begins there is no
// divergence signal left to act on (the candidate passed shadow), so Flip
// always runs to completion.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "charlib/error_model.hpp"
#include "core/circuit_eval.hpp"

namespace oclp {

class ProjectionServer;
class ServeMetrics;

struct SwapConfig {
  /// Fraction of live requests mirrored through the shadow datapath
  /// during the Shadow phase (deterministic per-request-id sampling).
  double shadow_fraction = 0.25;
  /// Shadow compares required before the divergence verdict. 0 skips the
  /// Shadow phase entirely (trusted swap: Lower → Flip), which also keeps
  /// the whole swap on the calling thread — no concurrent traffic needed.
  std::uint64_t min_shadow_compares = 32;
  /// Abort if the shadow phase has not reached min_shadow_compares within
  /// this long (traffic starvation — the candidate cannot be validated).
  double shadow_timeout_ms = 5000.0;
  /// Allowed excess of the observed shadow-mismatch rate over the rate the
  /// characterised error model predicts at the shadow frequency.
  double mismatch_slack = 0.02;
  /// Test hook: every Nth shadow compare is forced to count as a
  /// mismatch (0 = off) — drives the abort path deterministically.
  std::uint64_t inject_divergence_every = 0;
};

struct SwapReport {
  bool committed = false;
  std::string abort_reason;     ///< empty when committed
  std::uint64_t generation = 0; ///< design generation after the swap
  // Phase wall-clock breakdown (total == lower + shadow + flip).
  double lower_ms = 0.0;
  double shadow_ms = 0.0;
  double flip_ms = 0.0;
  double total_ms = 0.0;
  // Shadow verdict inputs.
  std::uint64_t shadow_compared = 0;
  std::uint64_t shadow_mismatches = 0;
  double predicted_mismatch_rate = 0.0;  ///< union bound from the model
  double observed_mismatch_rate = 0.0;
};

/// The Shadow-phase tap the server mirrors live traffic through. Owned by
/// the in-progress swap; the server holds a shared_ptr and calls observe()
/// per served batch segment, so the tap must be thread-safe (workers of a
/// multi-replica server hit it concurrently).
class ShadowTap {
 public:
  /// `circuit` is the candidate datapath (lowered on the serving plan);
  /// `tolerance` is the serving check tolerance; `seed`/`salt` drive the
  /// per-request-id sampling; `metrics` (may be null) receives live
  /// shadow_compared / shadow_mismatch counts.
  ShadowTap(ProjectionCircuit circuit, double fraction, double tolerance,
            std::uint64_t seed, std::uint64_t inject_divergence_every,
            ServeMetrics* metrics);

  /// Mirror the sampled subset of a served segment through the shadow
  /// datapath at the segment's operating point and score each mirrored
  /// request against the shadow's settled functional value.
  void observe(const std::vector<std::uint64_t>& ids,
               const std::vector<const std::vector<std::uint32_t>*>& codes,
               double freq_mhz, double derate);

  std::uint64_t compared() const {
    return compared_.load(std::memory_order_relaxed);
  }
  std::uint64_t mismatches() const {
    return mismatches_.load(std::memory_order_relaxed);
  }

 private:
  bool sampled(std::uint64_t id) const;

  std::mutex mutex_;  // shadow circuit register state is sequential
  ProjectionCircuit circuit_;
  double freq_mhz_ = 0.0;  ///< operating point the circuit is clocked at
  double derate_ = 1.0;
  double fraction_;
  double tolerance_;
  std::uint64_t seed_;
  std::uint64_t inject_every_;
  ServeMetrics* metrics_;
  std::atomic<std::uint64_t> compared_{0};
  std::atomic<std::uint64_t> mismatches_{0};
  // observe() scratch, reused under the lock.
  std::vector<const std::vector<std::uint32_t>*> mirrored_;
  std::vector<std::vector<double>> timed_, settled_;
};

/// Drives one swap end to end against a ProjectionServer. run() blocks the
/// calling thread through all four phases; during Shadow, live traffic
/// must keep flowing (from other threads) or the phase times out. The
/// usual entry point is ProjectionServer::swap_design, which constructs a
/// swapper inline.
class DesignSwapper {
 public:
  DesignSwapper(ProjectionServer& server, SwapConfig cfg);

  /// Swap the server onto `next` (same P, K and wl_x as the serving
  /// design; its per-column multiplier configurations must be covered by
  /// `models` — a mixed-architecture design needs one characterised model
  /// per distinct configuration). `models` is
  /// the error-model set the new datapath corrects with — kept alive by
  /// the replicas exactly as in swap_error_models; may be null to drop
  /// corrections (then the shadow divergence prediction is 0 + slack).
  SwapReport run(const LinearProjectionDesign& next,
                 std::shared_ptr<const ErrorModelMap> models);

  /// Union-bound per-request mismatch probability at `freq_mhz`: the sum
  /// over all K·P multipliers of the model's error rate for the deployed
  /// coefficient, clamped to 1. Deliberately conservative-high — the
  /// shadow verdict only aborts when the observed rate beats prediction
  /// *plus* slack, so overestimating keeps healthy swaps committing.
  static double predicted_mismatch_rate(
      const LinearProjectionDesign& design,
      const ErrorModelMap* models, double freq_mhz);

 private:
  ProjectionServer& server_;
  SwapConfig cfg_;
};

}  // namespace oclp
