// Request placement across a fleet of heterogeneous dies.
//
// Every die of a ProjectionFleet serves at its own characterised clock and
// carries its own queue, so "which die takes this request" is a capacity
// question: per-die headroom is the current governor frequency discounted
// by queue depth — a die that is fast *and* idle wins. Tenants carry an
// SLO class: latency-sensitive requests additionally avoid dies that are
// ramping back from an SLO breach (governor below its target — the clock
// is still recovering and checked requests there are the ones absorbing
// the breach), unless every die is ramping. The router is stateless and
// deterministic: equal headroom breaks ties toward the lower die index.
#pragma once

#include <cstddef>
#include <vector>

namespace oclp {

/// Tenant service class of a fleet request.
enum class SloClass {
  BestEffort,        ///< placed purely by headroom
  LatencySensitive,  ///< prefers dies not ramping back from a breach
};

/// Point-in-time load signal of one die, sampled by the fleet at routing
/// time from the die's governor and server queue.
struct DieLoad {
  double freq_mhz = 0.0;    ///< current governor frequency
  double target_mhz = 0.0;  ///< governor ceiling; freq < target ⇒ ramping
  std::size_t queue_depth = 0;
};

class HeadroomRouter {
 public:
  explicit HeadroomRouter(std::size_t num_dies);

  std::size_t num_dies() const { return num_dies_; }

  /// The placement score: frequency × 1/(1 + queue depth). The +1 keeps an
  /// idle die's full frequency as its score instead of dividing by zero.
  static double headroom(const DieLoad& load);

  /// A die below its governor target is ramping back from a breach.
  static bool ramping(const DieLoad& load);

  /// Preferred die for one request: the first entry of plan().
  std::size_t route(const std::vector<DieLoad>& loads, SloClass slo) const;

  /// Full fallback order for one request — every die exactly once, best
  /// first. The fleet walks it when a preferred die rejects (queue full
  /// under RejectNewest). `order` is overwritten (caller-owned scratch, no
  /// steady-state allocation on the submit path).
  void plan(const std::vector<DieLoad>& loads, SloClass slo,
            std::vector<std::size_t>& order) const;

 private:
  std::size_t num_dies_;
};

}  // namespace oclp
