#include "serve/governor.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace oclp {

FrequencyGovernor::FrequencyGovernor(const GovernorConfig& cfg)
    : cfg_(cfg),
      floor_mhz_(cfg.f_floor_mhz),
      target_mhz_(cfg.f_target_mhz),
      freq_mhz_(cfg.f_target_mhz) {
  OCLP_CHECK_MSG(cfg.f_floor_mhz > 0.0 && cfg.f_target_mhz >= cfg.f_floor_mhz,
                 "governor needs 0 < f_floor <= f_target, got floor="
                     << cfg.f_floor_mhz << " target=" << cfg.f_target_mhz);
  OCLP_CHECK(cfg.slo_error_rate >= 0.0 && cfg.slo_error_rate <= 1.0);
  OCLP_CHECK(cfg.window_checks >= 1);
  OCLP_CHECK(cfg.step_down_factor > 0.0 && cfg.step_down_factor < 1.0);
  OCLP_CHECK(cfg.step_up_mhz > 0.0 && cfg.healthy_windows_to_ramp >= 1);
}

double FrequencyGovernor::frequency_mhz() const {
  std::lock_guard lock(mutex_);
  return freq_mhz_;
}

double FrequencyGovernor::floor_mhz() const {
  std::lock_guard lock(mutex_);
  return floor_mhz_;
}

double FrequencyGovernor::target_mhz() const {
  std::lock_guard lock(mutex_);
  return target_mhz_;
}

void FrequencyGovernor::set_limits(double f_floor_mhz, double f_target_mhz) {
  OCLP_CHECK_MSG(f_floor_mhz > 0.0 && f_target_mhz >= f_floor_mhz,
                 "set_limits needs 0 < f_floor <= f_target, got floor="
                     << f_floor_mhz << " target=" << f_target_mhz);
  std::lock_guard lock(mutex_);
  floor_mhz_ = f_floor_mhz;
  target_mhz_ = f_target_mhz;
  // Clamp the operating point into the new range right away: a lowered
  // ceiling must not keep serving above it until the next breach, and a
  // raised floor is by definition safe to move up to.
  freq_mhz_ = std::min(target_mhz_, std::max(floor_mhz_, freq_mhz_));
}

std::size_t FrequencyGovernor::windows_closed() const {
  std::lock_guard lock(mutex_);
  return windows_;
}

std::size_t FrequencyGovernor::checks_recorded() const {
  std::lock_guard lock(mutex_);
  return total_checks_;
}

std::size_t FrequencyGovernor::checks_into_window() const {
  std::lock_guard lock(mutex_);
  return window_checks_;
}

FrequencyGovernor::Decision FrequencyGovernor::record_check(bool error) {
  std::lock_guard lock(mutex_);
  ++total_checks_;
  ++window_checks_;
  if (error) ++window_errors_;

  Decision d;
  d.freq_mhz = freq_mhz_;
  if (window_checks_ < cfg_.window_checks) return d;

  d.window_closed = true;
  d.window_error_rate = static_cast<double>(window_errors_) /
                        static_cast<double>(window_checks_);
  window_checks_ = window_errors_ = 0;
  ++windows_;

  if (d.window_error_rate > cfg_.slo_error_rate) {
    healthy_streak_ = 0;
    const double next = std::max(floor_mhz_, freq_mhz_ * cfg_.step_down_factor);
    d.action = next < freq_mhz_ ? Action::StepDown : Action::Hold;
    freq_mhz_ = next;
  } else {
    ++healthy_streak_;
    if (healthy_streak_ >= cfg_.healthy_windows_to_ramp &&
        freq_mhz_ < target_mhz_) {
      // Re-arm the streak so every step up costs a full healthy streak:
      // the ramp back to the operating point is deliberately gradual.
      healthy_streak_ = 0;
      freq_mhz_ = std::min(target_mhz_, freq_mhz_ + cfg_.step_up_mhz);
      d.action = Action::StepUp;
    } else {
      d.action = Action::Hold;
    }
  }
  d.freq_mhz = freq_mhz_;
  return d;
}

}  // namespace oclp
