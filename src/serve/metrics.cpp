#include "serve/metrics.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace oclp {

ServeMetrics::ServeMetrics(double latency_hist_max_ms, std::size_t latency_bins)
    : latency_ms_(0.0, latency_hist_max_ms, latency_bins),
      latency_hist_max_ms_(latency_hist_max_ms) {
  OCLP_CHECK(latency_hist_max_ms > 0.0 && latency_bins >= 1);
}

void ServeMetrics::on_check(bool error) {
  checks_.fetch_add(1, std::memory_order_relaxed);
  if (error) check_errors_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t ServeMetrics::on_served() {
  return served_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void ServeMetrics::on_shadow_compare(bool mismatch) {
  shadow_compared_.fetch_add(1, std::memory_order_relaxed);
  if (mismatch) shadow_mismatch_.fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::on_swap_committed(std::uint64_t latency_ns) {
  swaps_committed_.fetch_add(1, std::memory_order_relaxed);
  swap_latency_ns_.fetch_add(latency_ns, std::memory_order_relaxed);
}

void ServeMetrics::queue_depth_sample(std::size_t depth) {
  queue_depth_.store(depth, std::memory_order_relaxed);
  std::size_t peak = queue_peak_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !queue_peak_.compare_exchange_weak(peak, depth,
                                            std::memory_order_relaxed)) {
  }
}

void ServeMetrics::on_batch(std::size_t batch_size,
                            const std::vector<double>& latencies_ms) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  batched_requests_ += batch_size;
  latency_ms_.add(latencies_ms);
  for (double l : latencies_ms)
    if (l >= latency_hist_max_ms_) ++latency_overflow_;
}

void ServeMetrics::on_window(double error_rate, double freq_mhz,
                             bool freq_changed) {
  std::lock_guard lock(mutex_);
  window_error_rates_.push_back(error_rate);
  if (freq_changed)
    frequency_timeline_.push_back(
        {served_.load(std::memory_order_relaxed), freq_mhz});
}

void ServeMetrics::record_initial_frequency(double freq_mhz) {
  std::lock_guard lock(mutex_);
  frequency_timeline_.push_back({0, freq_mhz});
}

ServeMetrics::Snapshot ServeMetrics::snapshot(const ThreadPool* pool) const {
  Snapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.shed_oldest = shed_oldest_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.checks = checks_.load(std::memory_order_relaxed);
  s.check_errors = check_errors_.load(std::memory_order_relaxed);
  s.design_generation = design_generation_.load(std::memory_order_relaxed);
  s.swaps_committed = swaps_committed_.load(std::memory_order_relaxed);
  s.swaps_aborted = swaps_aborted_.load(std::memory_order_relaxed);
  s.swap_latency_ns = swap_latency_ns_.load(std::memory_order_relaxed);
  s.shadow_compared = shadow_compared_.load(std::memory_order_relaxed);
  s.shadow_mismatch = shadow_mismatch_.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  s.queue_peak = queue_peak_.load(std::memory_order_relaxed);
  if (pool != nullptr) {
    s.pool_queue_depth = pool->queue_depth();
    s.pool_inflight = pool->inflight();
  }
  std::lock_guard lock(mutex_);
  s.mean_batch_size = s.batches == 0
                          ? 0.0
                          : static_cast<double>(batched_requests_) /
                                static_cast<double>(s.batches);
  s.window_error_rates = window_error_rates_;
  s.frequency_timeline = frequency_timeline_;
  s.latency_hist_max_ms = latency_hist_max_ms_;
  s.latency_overflow = latency_overflow_;
  s.latency_bin_lo_ms.reserve(latency_ms_.bins());
  s.latency_counts.reserve(latency_ms_.bins());
  for (std::size_t b = 0; b < latency_ms_.bins(); ++b) {
    s.latency_bin_lo_ms.push_back(latency_ms_.bin_lo(b));
    s.latency_counts.push_back(latency_ms_.count(b));
  }
  return s;
}

namespace {
template <typename T>
void json_array(std::ostream& os, const char* key, const std::vector<T>& xs) {
  os << "  \"" << key << "\": [";
  for (std::size_t i = 0; i < xs.size(); ++i) os << (i ? ", " : "") << xs[i];
  os << "]";
}
}  // namespace

std::string ServeMetrics::Snapshot::to_json() const {
  std::ostringstream os;
  os.precision(10);
  os << "{\n"
     << "  \"submitted\": " << submitted << ",\n"
     << "  \"served\": " << served << ",\n"
     << "  \"rejected_full\": " << rejected_full << ",\n"
     << "  \"shed_oldest\": " << shed_oldest << ",\n"
     << "  \"shed_deadline\": " << shed_deadline << ",\n"
     << "  \"batches\": " << batches << ",\n"
     << "  \"mean_batch_size\": " << mean_batch_size << ",\n"
     << "  \"checks\": " << checks << ",\n"
     << "  \"check_errors\": " << check_errors << ",\n"
     << "  \"design_generation\": " << design_generation << ",\n"
     << "  \"swaps_committed\": " << swaps_committed << ",\n"
     << "  \"swaps_aborted\": " << swaps_aborted << ",\n"
     << "  \"swap_latency_ns\": " << swap_latency_ns << ",\n"
     << "  \"shadow_compared\": " << shadow_compared << ",\n"
     << "  \"shadow_mismatch\": " << shadow_mismatch << ",\n"
     << "  \"queue_depth\": " << queue_depth << ",\n"
     << "  \"queue_peak\": " << queue_peak << ",\n"
     << "  \"pool_queue_depth\": " << pool_queue_depth << ",\n"
     << "  \"pool_inflight\": " << pool_inflight << ",\n";
  json_array(os, "window_error_rates", window_error_rates);
  os << ",\n  \"frequency_timeline\": [";
  for (std::size_t i = 0; i < frequency_timeline.size(); ++i)
    os << (i ? ", " : "") << "{\"at_served\": " << frequency_timeline[i].at_served
       << ", \"freq_mhz\": " << frequency_timeline[i].freq_mhz << "}";
  os << "],\n"
     << "  \"latency_hist_max_ms\": " << latency_hist_max_ms << ",\n"
     << "  \"latency_overflow\": " << latency_overflow << ",\n";
  json_array(os, "latency_bin_lo_ms", latency_bin_lo_ms);
  os << ",\n";
  json_array(os, "latency_counts", latency_counts);
  os << "\n}\n";
  return os.str();
}

}  // namespace oclp
