#include "serve/fleet.hpp"

#include <algorithm>
#include <chrono>

#include "common/rng.hpp"

namespace oclp {

namespace {

std::size_t effective_num_dies(const FleetConfig& cfg) {
  return cfg.die_seeds.empty() ? cfg.num_dies : cfg.die_seeds.size();
}

std::vector<double> default_char_grid() {
  std::vector<double> grid;
  for (double f = 40.0; f <= 540.0 + 1e-9; f += 10.0) grid.push_back(f);
  return grid;
}

}  // namespace

ProjectionFleet::ProjectionFleet(const LinearProjectionDesign& design,
                                 const FleetConfig& cfg,
                                 ResultCallback on_result)
    : cfg_(cfg),
      design_(design),
      char_grid_(cfg.char_freqs_mhz.empty() ? default_char_grid()
                                            : cfg.char_freqs_mhz),
      router_(effective_num_dies(cfg)),
      on_result_(std::move(on_result)) {
  OCLP_CHECK_MSG(effective_num_dies(cfg) >= 1, "a fleet needs at least one die");
  OCLP_CHECK(cfg.target_fraction > 0.0 && cfg.target_fraction <= 1.0);
  OCLP_CHECK(cfg.floor_fraction > 0.0 &&
             cfg.floor_fraction <= cfg.target_fraction);
  OCLP_CHECK(!design.columns.empty());
  OCLP_CHECK(cfg.recheck_period_ms >= 0.0);

  // The probe's focus list: the coefficient magnitudes actually deployed,
  // grouped by column multiplier configuration (one characterisation
  // circuit per distinct configuration — a mixed-architecture design
  // probes each architecture's own error surface).
  for (const auto& col : design_.columns) {
    auto& codes = design_codes_[col.config];
    for (const auto& c : col.coeffs) codes.push_back(c.magnitude);
  }
  for (auto& [config, codes] : design_codes_) {
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  }

  const auto dies = cfg.die_seeds.empty()
                        ? make_die_family(cfg.device, cfg.family_seed,
                                          cfg.num_dies, cfg.temperature_c)
                        : make_die_family(cfg.device, cfg.die_seeds,
                                          cfg.temperature_c);

  CircuitPlan plan = simulated_plan(design_, cfg.char_placement);
  plan.with_jitter = cfg.with_jitter;

  for (std::size_t i = 0; i < dies.size(); ++i) {
    auto die = std::make_unique<Die>(dies[i]);
    die->seed = die->device.die_seed();

    // Characterise this die at its own silicon: compile one circuit per
    // multiplier configuration, probe the deployed codes (plus a stride
    // slice) over the grid, and take the die's error-free fmax as the
    // worst configuration's.
    double fb = 0.0;
    bool first = true;
    SharedErrorModels::Map models;
    for (const auto& [config, codes] : design_codes_) {
      CharCircuitConfig ccfg;
      ccfg.mult = config;
      ccfg.wl_x = cfg.wl_x;
      ccfg.with_jitter = cfg.with_jitter;
      die->char_circuits.emplace(
          config, std::make_unique<CharacterisationCircuit>(
                      ccfg, die->device, cfg.char_placement));

      ErrorModel model(config, cfg.wl_x, char_grid_);
      SubsweepSettings probe;
      probe.multiplicands = codes;
      probe.m_stride = cfg.char_m_stride;
      probe.samples_per_point = cfg.char_samples;
      probe.stream_seed = hash_mix(cfg.seed, i, 0xC0DE5ULL);
      const auto report = recharacterise_multiplier(
          *die->char_circuits.at(config), model, probe, cfg.char_exec);
      fb = first ? report.error_free_fmax_mhz
                 : std::min(fb, report.error_free_fmax_mhz);
      first = false;
      models.emplace(config, std::move(model));
    }
    OCLP_CHECK_MSG(fb > 0.0, "die seed "
                                 << die->seed
                                 << " errs at the lowest grid frequency "
                                 << char_grid_.front()
                                 << " MHz — grid does not cover this die");

    die->error_free_fmax_mhz = fb;
    die->recheck_fmax_mhz.store(fb, std::memory_order_relaxed);
    die->f_target_mhz = cfg.target_fraction * fb;
    die->floor_mhz.store(cfg.floor_fraction * fb, std::memory_order_relaxed);
    die->models.store(std::move(models));

    ServeConfig scfg = cfg.serve;
    scfg.governor.f_target_mhz = die->f_target_mhz;
    scfg.governor.f_floor_mhz = cfg.floor_fraction * fb;
    scfg.check_freq_mhz = 0.0;  // safe duplicate at the die's own floor
    scfg.seed = hash_mix(cfg.seed, i, 0xF1EE7ULL);

    // The server's replicas keep the model snapshot alive through the
    // swap-at-checkout path; the construction-time pointer is pinned by
    // the immediate swap_error_models below.
    auto snapshot = die->models.load();
    ResultCallback cb = on_result_;
    const std::size_t die_index = i;
    die->server = std::make_unique<ProjectionServer>(
        design_, die->device, plan, cfg.wl_x, snapshot.get(), scfg,
        cb ? ProjectionServer::ResultCallback(
                 [cb, die_index](const ServeResult& r) { cb(die_index, r); })
           : ProjectionServer::ResultCallback());
    die->server->swap_error_models(std::move(snapshot));

    dies_.push_back(std::move(die));
  }

  if (cfg.recheck_period_ms > 0.0)
    recheck_thread_ = std::thread([this] { recheck_loop(); });
}

ProjectionFleet::~ProjectionFleet() { stop(); }

bool ProjectionFleet::submit(ServeRequest req, SloClass slo) {
  thread_local std::vector<DieLoad> loads;
  thread_local std::vector<std::size_t> order;
  loads.resize(dies_.size());
  for (std::size_t i = 0; i < dies_.size(); ++i) {
    const auto& gov = dies_[i]->server->governor();
    loads[i].freq_mhz = gov.frequency_mhz();
    loads[i].target_mhz = gov.target_mhz();
    loads[i].queue_depth = dies_[i]->server->queue_depth();
  }
  router_.plan(loads, slo, order);
  // Walk the fallback order; the last attempt may move the request.
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t die = order[k];
    const bool accepted = k + 1 == order.size()
                              ? dies_[die]->server->submit(std::move(req))
                              : dies_[die]->server->submit(req);
    if (accepted) {
      dies_[die]->routed.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ProjectionFleet::resume() {
  for (auto& die : dies_) die->server->resume();
}

void ProjectionFleet::wait_idle() {
  for (auto& die : dies_) die->server->wait_idle();
}

void ProjectionFleet::stop() {
  {
    std::lock_guard lock(stop_mutex_);
    if (stopping_) {
      // Idempotent: the thread is already gone; still make sure servers
      // are down (stop() on a stopped server is a no-op).
      for (auto& die : dies_) die->server->stop();
      return;
    }
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (recheck_thread_.joinable()) recheck_thread_.join();
  for (auto& die : dies_) die->server->stop();
}

void ProjectionFleet::set_die_drift(std::size_t die, double derate) {
  OCLP_CHECK(die < dies_.size() && derate > 0.0);
  dies_[die]->derate.store(derate, std::memory_order_relaxed);
  dies_[die]->server->set_timing_derate(derate);
}

FleetSwapReport ProjectionFleet::swap_design(const LinearProjectionDesign& next,
                                             const SwapConfig& scfg,
                                             std::size_t canary) {
  OCLP_CHECK(canary < dies_.size());
  OCLP_CHECK_MSG(
      next.dims_p() == design_.dims_p() && next.dims_k() == design_.dims_k(),
      "fleet swap_design: incoming design is "
          << next.dims_k() << "×" << next.dims_p() << ", the fleet serves "
          << design_.dims_k() << "×" << design_.dims_p());

  // The model control plane freezes for the rollout: no re-probe runs
  // while coefficients move under it.
  std::lock_guard cycle_lock(recheck_mutex_);

  // The incoming coefficients, grouped by column multiplier configuration
  // — every configuration must already have a characterisation circuit
  // (and so an error surface) on every die, or some die would serve an
  // unmodelled datapath. The per-coefficient grid membership is enforced
  // again at lowering time by each die's server (CCM guard in particular).
  std::map<MultConfig, std::vector<std::uint32_t>> next_codes;
  for (const auto& col : next.columns) {
    auto& codes = next_codes[col.config];
    for (const auto& c : col.coeffs) codes.push_back(c.magnitude);
  }
  for (auto& [config, codes] : next_codes) {
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
    for (std::size_t i = 0; i < dies_.size(); ++i)
      OCLP_CHECK_MSG(dies_[i]->char_circuits.count(config) != 0,
                     "fleet swap_design: die " << i << " (seed "
                                               << dies_[i]->seed
                                               << ") has no characterised "
                                                  "error surface for "
                                               << config);
  }

  FleetSwapReport report;
  report.canary = canary;
  report.dies.resize(dies_.size());

  // Canary first — its Shadow phase is the bake. Siblings follow in die
  // order only once the canary committed; any abort stops the rollout
  // with every untouched die still on the old design (a per-die swap
  // only mutates its server after its own shadow verdict).
  std::vector<std::size_t> order;
  order.push_back(canary);
  for (std::size_t i = 0; i < dies_.size(); ++i)
    if (i != canary) order.push_back(i);

  for (std::size_t die : order) {
    report.dies[die] =
        dies_[die]->server->swap_design(next, dies_[die]->models.load(), scfg);
    if (!report.dies[die].committed) return report;
  }

  // Full commit: future re-characterisation probes focus the new
  // coefficients.
  design_ = next;
  design_codes_ = std::move(next_codes);
  report.committed = true;
  return report;
}

SubsweepReport ProjectionFleet::recharacterise(std::size_t die_index) {
  OCLP_CHECK(die_index < dies_.size());
  std::lock_guard cycle_lock(recheck_mutex_);
  Die& die = *dies_[die_index];

  // Copy-on-write: re-measure the probed rows on a private copy, then
  // publish the whole set in one swap. Serving replicas keep correcting
  // with the old snapshot until their next batch checkout.
  SharedErrorModels::Map next = *die.models.load();

  SubsweepReport aggregate;
  double fb = 0.0;
  bool first = true;
  for (const auto& [config, codes] : design_codes_) {
    SubsweepSettings probe;
    probe.multiplicands = codes;
    probe.m_stride = cfg_.recheck_m_stride;
    probe.m_phase = die.recheck_phase;
    probe.samples_per_point = cfg_.recheck_samples;
    probe.stream_seed = hash_mix(cfg_.seed, die_index, die.recheck_phase);
    probe.timing_derate = die.derate.load(std::memory_order_relaxed);
    const auto report = recharacterise_multiplier(
        *die.char_circuits.at(config), next.at(config), probe);
    aggregate.probed += report.probed;
    aggregate.skipped_freqs += report.skipped_freqs;
    fb = first ? report.error_free_fmax_mhz
               : std::min(fb, report.error_free_fmax_mhz);
    first = false;
  }
  aggregate.error_free_fmax_mhz = fb;
  ++die.recheck_phase;

  die.models.store(std::move(next));
  die.server->swap_error_models(die.models.load());

  // Governor floor adjustment: the floor is only safe while it sits below
  // the *current* error-free fmax. When even the lowest grid point errs
  // (fb == 0) the honest floor is "as low as the model can vouch for".
  const double fb_for_floor = fb > 0.0 ? fb : char_grid_.front();
  const double new_floor =
      std::min(die.f_target_mhz, cfg_.floor_fraction * fb_for_floor);
  const double old_floor = die.server->governor().floor_mhz();
  if (new_floor != old_floor)
    die.server->governor().set_limits(new_floor, die.f_target_mhz);
  die.floor_mhz.store(new_floor, std::memory_order_relaxed);
  die.recheck_fmax_mhz.store(fb, std::memory_order_relaxed);

  die.recharacterisations.fetch_add(1, std::memory_order_relaxed);
  recheck_cycles_.fetch_add(1, std::memory_order_relaxed);
  return aggregate;
}

std::uint64_t ProjectionFleet::recharacterisation_cycles() const {
  return recheck_cycles_.load(std::memory_order_relaxed);
}

void ProjectionFleet::recheck_loop() {
  const auto period = std::chrono::duration<double, std::milli>(
      cfg_.recheck_period_ms);
  std::size_t next_die = 0;
  std::unique_lock lock(stop_mutex_);
  while (!stopping_) {
    if (stop_cv_.wait_for(lock, period, [&] { return stopping_; })) break;
    lock.unlock();
    recharacterise(next_die);
    next_die = (next_die + 1) % dies_.size();
    lock.lock();
  }
}

DieStatus ProjectionFleet::die_status(std::size_t die_index) const {
  OCLP_CHECK(die_index < dies_.size());
  const Die& die = *dies_[die_index];
  DieStatus s;
  s.die_seed = die.seed;
  s.inter_die_factor = die.device.inter_die_factor();
  s.error_free_fmax_mhz = die.error_free_fmax_mhz;
  s.recheck_fmax_mhz = die.recheck_fmax_mhz.load(std::memory_order_relaxed);
  s.f_target_mhz = die.f_target_mhz;
  s.f_floor_mhz = die.floor_mhz.load(std::memory_order_relaxed);
  s.freq_mhz = die.server->governor().frequency_mhz();
  s.derate = die.derate.load(std::memory_order_relaxed);
  s.queue_depth = die.server->queue_depth();
  s.routed = die.routed.load(std::memory_order_relaxed);
  s.recharacterisations =
      die.recharacterisations.load(std::memory_order_relaxed);
  return s;
}

ProjectionServer& ProjectionFleet::server(std::size_t die) {
  OCLP_CHECK(die < dies_.size());
  return *dies_[die]->server;
}

const ProjectionServer& ProjectionFleet::server(std::size_t die) const {
  OCLP_CHECK(die < dies_.size());
  return *dies_[die]->server;
}

std::shared_ptr<const ErrorModelMap> ProjectionFleet::die_models(
    std::size_t die) const {
  OCLP_CHECK(die < dies_.size());
  return dies_[die]->models.load();
}

}  // namespace oclp
