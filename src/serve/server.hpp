// Streaming inference runtime for a realised Linear Projection design.
//
// The rest of the library answers "which design should I put on this
// device"; this layer runs the chosen design under load — the ROADMAP's
// production-serving north star. Architecture:
//
//   submit() → bounded request queue → dispatcher (micro-batching:
//   max_batch / max_wait) → ThreadPool batch tasks → per-replica placed
//   datapaths (core/circuit_eval) → result callback
//
// A picked-up micro-batch is served through the batched run_stream kernel
// (ProjectionCircuit::project_batch): every replica multiplier clocks the
// whole batch in one 64-lane settled pass with sparse settle propagation,
// so server throughput scales with batch size instead of flat-lining on
// the per-sample timed interpreter. The governor can only move the clock
// on the check verdict that closes a decision window, so the batch is
// segmented at the predicted window-close points (see
// FrequencyGovernor::checks_into_window): every request in a segment is
// served at one (frequency, derate), and with one worker the segmented
// batch reproduces the sequential per-request loop bit for bit.
//
//  * Backpressure: the queue is bounded. When full, RejectNewest bounces
//    the incoming request back to the caller (load shedding at the edge)
//    and ShedOldest drops the stalest queued request (freshness under
//    overload). Requests may also carry a deadline; a request whose
//    deadline has lapsed by the time a worker picks it up is shed rather
//    than served dead-on-arrival.
//  * Online error detection: a configurable fraction of requests is
//    checked against the safe-clock duplicate's value (razor-style time
//    redundancy at the request level — the shadow copy gets the timing
//    slack the over-clocked one gave up; see timing/razor.hpp for the
//    register-level analogue). Below the governor floor every output
//    settles within the period, so the duplicate's capture IS the settled
//    functional value — computed here in one batched eval64 pass over the
//    replica's compiled netlists (ProjectionCircuit::project_settled)
//    instead of a second simulated datapath. Mismatches beyond
//    `check_tolerance` are timing errors and feed the FrequencyGovernor,
//    which trades clock rate against the error SLO (see governor.hpp).
//  * Environment drift is injected with set_timing_derate() — circuits
//    bake per-cell delays at construction, and a global delay scale is
//    exactly a period scale (see ProjectionCircuit::set_clock), so a
//    temperature step mid-run is a derate step here.
//
// Determinism: with one worker and a jitter-free plan the served outputs,
// check verdicts and governor trajectory depend only on the submission
// order — batch boundaries affect throughput, never results — which is
// what makes the end-to-end degradation test (tests/serve) bit-exact.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/circuit_eval.hpp"
#include "serve/governor.hpp"
#include "serve/metrics.hpp"
#include "serve/swap.hpp"

namespace oclp {

enum class OverloadPolicy { RejectNewest, ShedOldest };

struct ServeRequest {
  std::uint64_t id = 0;
  std::vector<std::uint32_t> x_codes;  ///< P input codes, < 2^wl_x
  /// Latest acceptable queue+service start delay; <= 0 means no deadline.
  double deadline_ms = 0.0;
};

struct ServeResult {
  std::uint64_t id = 0;
  std::vector<double> y;       ///< projected factors (value units)
  double freq_mhz = 0.0;       ///< governor frequency it was served at
  bool checked = false;        ///< went through the safe-frequency duplicate
  bool check_error = false;    ///< duplicate disagreed (timing error)
  double latency_ms = 0.0;     ///< submit → served
};

struct ServeConfig {
  std::size_t workers = 2;          ///< pool threads == datapath replicas
  std::size_t queue_capacity = 1024;
  std::size_t max_batch = 16;
  double max_wait_ms = 0.5;         ///< batch linger once one request is in
  OverloadPolicy overload = OverloadPolicy::RejectNewest;
  double check_fraction = 0.05;     ///< sampled duplicate-check rate
  double check_freq_mhz = 0.0;      ///< safe clock; 0 → governor floor
  double check_tolerance = 0.05;    ///< per-element |Δy| flagging an error
  std::uint64_t seed = 1;           ///< check sampling + replica clock seeds
  bool start_paused = false;        ///< queue only until resume() (tests)
  GovernorConfig governor;
};

class ProjectionServer {
 public:
  using ResultCallback = std::function<void(const ServeResult&)>;

  /// The design is deployed as `cfg.workers` independent replicas of the
  /// placed datapath (each replica owns its sequential register state), at
  /// the governor's target frequency. `models` supplies mean-error
  /// corrections exactly as in ProjectionCircuit; may be nullptr.
  /// `on_result` is invoked from worker threads for every served request
  /// (never for shed/rejected ones); it must be thread-safe when
  /// cfg.workers > 1.
  ProjectionServer(const LinearProjectionDesign& design, const Device& device,
                   const CircuitPlan& plan, int wl_x,
                   const ErrorModelMap* models,
                   const ServeConfig& cfg, ResultCallback on_result);
  ~ProjectionServer();

  ProjectionServer(const ProjectionServer&) = delete;
  ProjectionServer& operator=(const ProjectionServer&) = delete;

  /// Enqueue a request. Returns false iff it was rejected (queue full under
  /// RejectNewest, or the server is stopping). Thread-safe.
  bool submit(ServeRequest req);

  /// Start dispatching when constructed with start_paused (no-op otherwise).
  void resume();

  /// Block until the queue is drained and no batch is in flight.
  void wait_idle();

  /// Drain and shut down (idempotent; the destructor calls it).
  void stop();

  /// Inject an environment change: all replica datapaths (served and check
  /// paths alike) run with every delay scaled by `derate` from the next
  /// request on. 1.0 is the characterised environment.
  void set_timing_derate(double derate);
  double timing_derate() const;

  /// Publish a re-characterised model set: each replica recomputes its
  /// mean-error corrections from `models` before serving its next batch
  /// (the shared_ptr keeps the previous map alive until the last replica
  /// has moved off it — no torn reads mid-batch). The map must cover every
  /// column word-length of the design; nullptr drops corrections.
  /// Thread-safe.
  void swap_error_models(std::shared_ptr<const ErrorModelMap> models);

  /// Hot-swap the serving datapath onto `next` without draining traffic:
  /// Lower → Shadow → Flip → Retire (serve/swap.hpp has the state
  /// machine). `next` must match the serving design's P, K and wl_x;
  /// `models` is the error-model set the new datapath corrects with (the
  /// replicas pin it exactly as in swap_error_models). Blocks the calling
  /// thread through all phases; with scfg.min_shadow_compares > 0, live
  /// traffic must keep flowing from other threads or the Shadow phase
  /// times out and the swap aborts (server untouched, zero requests
  /// lost). A lowering-time model violation — a CCM coefficient off the
  /// characterised grid in particular — throws CheckError before anything
  /// is installed. Swaps are serialised; thread-safe against everything
  /// else.
  SwapReport swap_design(const LinearProjectionDesign& next,
                         std::shared_ptr<const ErrorModelMap> models,
                         const SwapConfig& scfg = SwapConfig());

  /// Generation of the design the replicas serve (0 until the first
  /// committed swap). Thread-safe.
  std::uint64_t design_generation() const;

  /// Requests currently queued (a router's headroom signal). Thread-safe.
  std::size_t queue_depth() const;

  const FrequencyGovernor& governor() const { return governor_; }
  /// Mutable governor access for the re-characterisation control plane
  /// (set_limits); the governor itself is thread-safe.
  FrequencyGovernor& governor() { return governor_; }
  ServeMetrics& metrics() { return metrics_; }
  /// Metrics snapshot including the worker-pool gauges.
  ServeMetrics::Snapshot metrics_snapshot() const;

  std::size_t dims_p() const { return dims_p_; }
  std::size_t dims_k() const { return dims_k_; }

 private:
  friend class DesignSwapper;  // drives the swap phases (serve/swap.cpp)

  using Clock = std::chrono::steady_clock;

  struct Pending {
    ServeRequest req;
    Clock::time_point enqueued;
  };

  /// One deployed copy of the datapath plus the clock settings it
  /// currently runs at (so retargets only happen when the governor or
  /// derate moved). The safe-clock duplicate check needs no second
  /// circuit: its reference is the settled functional value, evaluated on
  /// this same replica's compiled netlists (project_settled).
  struct Replica {
    explicit Replica(ProjectionCircuit s) : serve(std::move(s)) {}
    ProjectionCircuit serve;
    double serve_freq_mhz = 0.0;
    double serve_derate = 1.0;
    // Last model set applied to this replica: the shared_ptr keeps the map
    // alive for as long as `serve` corrects with it (see swap_error_models).
    std::shared_ptr<const ErrorModelMap> models;
    std::uint64_t models_generation = 0;
    // Generation of the design `serve` was lowered from: a replica whose
    // generation lags design_generation_ is retired — never re-served — at
    // its next batch boundary (see flip_if_stale_locked).
    std::uint64_t design_generation = 0;
    // process_batch scratch, reused across batches (no steady-state
    // allocation): sampled requests, their references, request→ref index,
    // surviving (non-shed) batch indices, per-segment kernel batch.
    std::vector<const std::vector<std::uint32_t>*> check_inputs;
    std::vector<std::vector<double>> check_refs;
    std::vector<std::ptrdiff_t> ref_of;
    std::vector<std::size_t> live;
    std::vector<const std::vector<std::uint32_t>*> batch_inputs;
    std::vector<std::vector<double>> batch_ys;
  };

  void dispatcher_loop();
  void process_batch(std::vector<Pending>&& batch);
  bool sampled_for_check(std::uint64_t id) const;

  // --- hot-swap plumbing (DesignSwapper drives these; see swap.hpp) -------
  /// Lower phase: one pristine replica per worker of `next` on the
  /// server's retained device and plan, with the construction-time clock
  /// seeds — what makes a completed swap bitwise-equal to a cold server.
  std::vector<std::unique_ptr<Replica>> lower_candidate(
      const LinearProjectionDesign& next,
      const ErrorModelMap* models) const;
  /// The Shadow phase's dedicated datapath (never one of the flip
  /// replicas, whose register state must stay pristine).
  ProjectionCircuit make_shadow(const LinearProjectionDesign& next,
                                const ErrorModelMap* models) const;
  void install_shadow(std::shared_ptr<ShadowTap> tap);
  void clear_shadow();
  std::shared_ptr<ShadowTap> current_shadow() const;
  /// Flip phase: publish the new generation under the replica lock. Idle
  /// replicas flip immediately; checked-out ones at their next batch
  /// boundary.
  void publish_design(const LinearProjectionDesign& next,
                      std::shared_ptr<const ErrorModelMap> models,
                      std::vector<std::unique_ptr<Replica>> fresh);
  /// Block until every replica serves the newest generation (the Retire
  /// phase boundary: the old circuits are destroyed by then).
  void wait_design_flipped();
  /// replica_mutex_ held: retire `rep` if its design generation lags,
  /// handing back a fresh-generation replacement. When the last stale
  /// replica moves off, the retired circuits transfer into `destroy` for
  /// teardown outside the lock.
  void flip_if_stale_locked(std::unique_ptr<Replica>& rep,
                            std::deque<std::unique_ptr<Replica>>& destroy);

  ServeConfig cfg_;
  std::size_t dims_p_, dims_k_;
  int wl_x_;
  double check_freq_mhz_;
  // Retained deployment inputs: a swap re-lowers the incoming design on
  // the same fabric locations the server was constructed on.
  Device device_;
  CircuitPlan plan_;
  ResultCallback on_result_;

  FrequencyGovernor governor_;
  ServeMetrics metrics_;

  std::deque<std::unique_ptr<Replica>> free_replicas_;
  mutable std::mutex replica_mutex_;
  std::condition_variable replica_cv_;
  // Pending model swap, guarded by replica_mutex_: replicas whose
  // generation lags apply it at checkout (outside the lock).
  std::shared_ptr<const ErrorModelMap> swapped_models_;
  std::uint64_t models_generation_ = 0;
  // Design hot-swap state, guarded by replica_mutex_: fresh replicas
  // waiting to flip in, old ones pinned until the last stale replica
  // moves off (in-flight batches always finish on the datapath they
  // picked up).
  std::deque<std::unique_ptr<Replica>> pending_replicas_;
  std::deque<std::unique_ptr<Replica>> retired_replicas_;
  std::uint64_t design_generation_ = 0;

  // Shadow tap of the in-progress swap (usually null). The atomic flag
  // keeps the per-batch probe off the mutex when no swap is running.
  mutable std::mutex shadow_mutex_;
  std::shared_ptr<ShadowTap> shadow_;
  std::atomic<bool> shadow_active_{false};
  std::mutex swap_mutex_;  ///< serialises swap_design calls

  std::deque<Pending> queue_;
  mutable std::mutex queue_mutex_;
  std::condition_variable dispatch_cv_;  ///< dispatcher wakeups
  std::condition_variable idle_cv_;      ///< wait_idle wakeups
  bool paused_ = false;
  bool stopping_ = false;
  std::size_t inflight_batches_ = 0;

  std::atomic<double> derate_{1.0};

  ThreadPool pool_;
  std::thread dispatcher_;
};

}  // namespace oclp
