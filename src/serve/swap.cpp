#include "serve/swap.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "common/rng.hpp"
#include "serve/server.hpp"

namespace oclp {

namespace {

using SteadyClock = std::chrono::steady_clock;

double elapsed_ms(SteadyClock::time_point a, SteadyClock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

ShadowTap::ShadowTap(ProjectionCircuit circuit, double fraction,
                     double tolerance, std::uint64_t seed,
                     std::uint64_t inject_divergence_every,
                     ServeMetrics* metrics)
    : circuit_(std::move(circuit)),
      fraction_(fraction),
      tolerance_(tolerance),
      seed_(seed),
      inject_every_(inject_divergence_every),
      metrics_(metrics) {
  OCLP_CHECK(fraction_ > 0.0 && fraction_ <= 1.0 && tolerance_ > 0.0);
}

bool ShadowTap::sampled(std::uint64_t id) const {
  if (fraction_ >= 1.0) return true;
  const double u =
      static_cast<double>(hash_mix(seed_, id, 0x5AAD03ULL) >> 11) * 0x1.0p-53;
  return u < fraction_;
}

void ShadowTap::observe(
    const std::vector<std::uint64_t>& ids,
    const std::vector<const std::vector<std::uint32_t>*>& codes,
    double freq_mhz, double derate) {
  OCLP_CHECK(ids.size() == codes.size());
  // Sampling is a pure hash of the request id — no lock needed, and the
  // mirrored subset is independent of which replica served the segment.
  bool any = false;
  for (std::uint64_t id : ids)
    if (sampled(id)) {
      any = true;
      break;
    }
  if (!any) return;

  std::lock_guard lock(mutex_);
  // Follow the serving operating point lazily, exactly like the serving
  // replicas do: the candidate is judged at the clock it would serve at.
  if (freq_mhz != freq_mhz_ || derate != derate_) {
    circuit_.set_clock(freq_mhz, derate);
    freq_mhz_ = freq_mhz;
    derate_ = derate;
  }
  mirrored_.clear();
  for (std::size_t i = 0; i < ids.size(); ++i)
    if (sampled(ids[i])) mirrored_.push_back(codes[i]);
  circuit_.project_batch(mirrored_, timed_);
  circuit_.project_settled(mirrored_, settled_);

  for (std::size_t i = 0; i < mirrored_.size(); ++i) {
    bool mismatch = false;
    for (std::size_t k = 0; k < timed_[i].size(); ++k)
      if (std::abs(timed_[i][k] - settled_[i][k]) > tolerance_) {
        mismatch = true;
        break;
      }
    const std::uint64_t n = compared_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (inject_every_ != 0 && n % inject_every_ == 0) mismatch = true;
    if (mismatch) mismatches_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->on_shadow_compare(mismatch);
  }
}

DesignSwapper::DesignSwapper(ProjectionServer& server, SwapConfig cfg)
    : server_(server), cfg_(cfg) {
  OCLP_CHECK(cfg_.shadow_fraction >= 0.0 && cfg_.shadow_fraction <= 1.0);
  OCLP_CHECK(cfg_.shadow_timeout_ms > 0.0 && cfg_.mismatch_slack >= 0.0);
  OCLP_CHECK_MSG(cfg_.min_shadow_compares == 0 || cfg_.shadow_fraction > 0.0,
                 "shadow phase requested (min_shadow_compares > 0) with a "
                 "zero shadow fraction — no request would ever be mirrored");
}

double DesignSwapper::predicted_mismatch_rate(
    const LinearProjectionDesign& design,
    const ErrorModelMap* models, double freq_mhz) {
  if (models == nullptr) return 0.0;
  double sum = 0.0;
  for (const auto& col : design.columns) {
    const auto it = models->find(col.config);
    if (it == models->end()) continue;  // lowering rejects this earlier
    for (const auto& c : col.coeffs)
      sum += it->second.error_rate(c.magnitude, freq_mhz);
  }
  return std::min(1.0, sum);
}

SwapReport DesignSwapper::run(
    const LinearProjectionDesign& next,
    std::shared_ptr<const ErrorModelMap> models) {
  OCLP_CHECK_MSG(
      next.dims_p() == server_.dims_p() && next.dims_k() == server_.dims_k(),
      "swap_design: incoming design is " << next.dims_k() << "×"
                                         << next.dims_p()
                                         << ", the server serves "
                                         << server_.dims_k() << "×"
                                         << server_.dims_p());

  SwapReport report;
  const auto t0 = SteadyClock::now();

  // ---- Lower: the candidate datapath on the serving fabric locations.
  // A model violation (a CCM coefficient off the characterised grid, a
  // missing word-length) throws out of here — nothing was installed, the
  // server is untouched.
  std::vector<std::unique_ptr<ProjectionServer::Replica>> fresh =
      server_.lower_candidate(next, models.get());
  const auto t1 = SteadyClock::now();
  report.lower_ms = elapsed_ms(t0, t1);

  // ---- Shadow: mirror live traffic through a dedicated candidate
  // circuit until the divergence verdict is in. The flip replicas stay
  // pristine throughout (bitwise golden equality with a cold server).
  auto t2 = t1;
  if (cfg_.min_shadow_compares > 0) {
    report.predicted_mismatch_rate = predicted_mismatch_rate(
        next, models.get(), server_.governor().frequency_mhz());
    auto tap = std::make_shared<ShadowTap>(
        server_.make_shadow(next, models.get()), cfg_.shadow_fraction,
        server_.cfg_.check_tolerance, server_.cfg_.seed,
        cfg_.inject_divergence_every, &server_.metrics());
    server_.install_shadow(tap);
    const auto deadline =
        t1 + std::chrono::duration_cast<SteadyClock::duration>(
                 std::chrono::duration<double, std::milli>(
                     cfg_.shadow_timeout_ms));
    while (tap->compared() < cfg_.min_shadow_compares &&
           SteadyClock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    server_.clear_shadow();

    report.shadow_compared = tap->compared();
    report.shadow_mismatches = tap->mismatches();
    report.observed_mismatch_rate =
        report.shadow_compared == 0
            ? 0.0
            : static_cast<double>(report.shadow_mismatches) /
                  static_cast<double>(report.shadow_compared);
    t2 = SteadyClock::now();
    report.shadow_ms = elapsed_ms(t1, t2);
    report.total_ms = elapsed_ms(t0, t2);

    if (report.shadow_compared < cfg_.min_shadow_compares) {
      std::ostringstream os;
      os << "shadow starvation: " << report.shadow_compared << " of "
         << cfg_.min_shadow_compares << " compares within "
         << cfg_.shadow_timeout_ms << " ms";
      report.abort_reason = os.str();
      server_.metrics().on_swap_aborted();
      return report;
    }
    if (report.observed_mismatch_rate >
        report.predicted_mismatch_rate + cfg_.mismatch_slack) {
      std::ostringstream os;
      os << "shadow divergence: observed mismatch rate "
         << report.observed_mismatch_rate << " exceeds predicted "
         << report.predicted_mismatch_rate << " + slack "
         << cfg_.mismatch_slack;
      report.abort_reason = os.str();
      server_.metrics().on_swap_aborted();
      return report;
    }
  }

  // ---- Flip + Retire: generation-counted publication; in-flight batches
  // finish on the old datapath, the last flip unpins the old circuits.
  server_.publish_design(next, std::move(models), std::move(fresh));
  server_.wait_design_flipped();
  const auto t3 = SteadyClock::now();
  report.flip_ms = elapsed_ms(t2, t3);
  report.total_ms = elapsed_ms(t0, t3);
  report.committed = true;
  report.generation = server_.design_generation();
  server_.metrics().on_swap_committed(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t3 - t0).count()));
  return report;
}

}  // namespace oclp
