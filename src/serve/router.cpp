#include "serve/router.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace oclp {

HeadroomRouter::HeadroomRouter(std::size_t num_dies) : num_dies_(num_dies) {
  OCLP_CHECK_MSG(num_dies >= 1, "a router needs at least one die");
}

double HeadroomRouter::headroom(const DieLoad& load) {
  return load.freq_mhz / (1.0 + static_cast<double>(load.queue_depth));
}

bool HeadroomRouter::ramping(const DieLoad& load) {
  return load.freq_mhz < load.target_mhz;
}

void HeadroomRouter::plan(const std::vector<DieLoad>& loads, SloClass slo,
                          std::vector<std::size_t>& order) const {
  OCLP_CHECK_MSG(loads.size() == num_dies_,
                 "router saw " << loads.size() << " die loads, expected "
                               << num_dies_);
  order.resize(num_dies_);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const bool avoid_ramping = slo == SloClass::LatencySensitive;
  // stable_sort + index tie-break keeps the order fully deterministic for
  // equal scores. Ramping dies sink below all non-ramping ones only for
  // latency-sensitive tenants; within each class, headroom decides — which
  // also means "all dies ramping" degrades gracefully to pure headroom.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (avoid_ramping) {
                       const bool ra = ramping(loads[a]), rb = ramping(loads[b]);
                       if (ra != rb) return !ra;
                     }
                     const double ha = headroom(loads[a]), hb = headroom(loads[b]);
                     if (ha != hb) return ha > hb;
                     return a < b;
                   });
}

std::size_t HeadroomRouter::route(const std::vector<DieLoad>& loads,
                                  SloClass slo) const {
  std::vector<std::size_t> order;
  plan(loads, slo, order);
  return order.front();
}

}  // namespace oclp
