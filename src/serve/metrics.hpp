// Telemetry for the serving runtime.
//
// Counters on the request hot path are lock-free atomics; the latency
// histogram (common/histogram) and the window/frequency traces are updated
// off the per-request fast path (per served batch / per closed governor
// window) under a small mutex. snapshot() assembles a consistent-enough
// point-in-time view — counters may advance between reads, which is the
// usual contract for serving metrics — and Snapshot::to_json() renders it
// for dashboards and the bench trajectory files (BENCH_serve.json).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.hpp"

namespace oclp {

class ThreadPool;

class ServeMetrics {
 public:
  /// Latency histogram over [0, latency_hist_max_ms). Histogram clamps
  /// out-of-range values into the last bin, which would make a saturated
  /// tail indistinguishable from a real p99 — so samples at or beyond the
  /// range are additionally counted in `latency_overflow`.
  explicit ServeMetrics(double latency_hist_max_ms = 50.0,
                        std::size_t latency_bins = 40);

  // --- request lifecycle (lock-free) --------------------------------------
  void on_submitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected_full() { rejected_full_.fetch_add(1, std::memory_order_relaxed); }
  void on_shed_oldest() { shed_oldest_.fetch_add(1, std::memory_order_relaxed); }
  void on_shed_deadline() { shed_deadline_.fetch_add(1, std::memory_order_relaxed); }
  void on_check(bool error);
  std::uint64_t on_served();  ///< returns the serve sequence number (1-based)

  void queue_depth_sample(std::size_t depth);

  // --- design hot-swap (lock-free; see serve/swap.hpp) ---------------------
  /// One mirrored request compared on the shadow datapath.
  void on_shadow_compare(bool mismatch);
  /// A swap committed after `latency_ns` (Lower → Shadow → Flip, wall).
  void on_swap_committed(std::uint64_t latency_ns);
  void on_swap_aborted() { swaps_aborted_.fetch_add(1, std::memory_order_relaxed); }
  /// Gauge: generation of the design the replicas currently serve (0 =
  /// construction design; bumps on every committed swap).
  void set_design_generation(std::uint64_t gen) {
    design_generation_.store(gen, std::memory_order_relaxed);
  }

  // --- off-hot-path traces (one lock per batch / per window) ---------------
  /// A batch finished; `latencies_ms` are the per-request submit→served
  /// latencies of its served requests.
  void on_batch(std::size_t batch_size, const std::vector<double>& latencies_ms);
  /// A governor window closed at `error_rate`; `freq_mhz` is the frequency
  /// after the decision, appended to the timeline when it changed.
  void on_window(double error_rate, double freq_mhz, bool freq_changed);
  /// Seed the frequency timeline with the initial operating point.
  void record_initial_frequency(double freq_mhz);

  std::uint64_t served() const { return served_.load(std::memory_order_relaxed); }

  struct FreqEvent {
    std::uint64_t at_served = 0;  ///< serve count when the change landed
    double freq_mhz = 0.0;
  };

  struct Snapshot {
    std::uint64_t submitted = 0, rejected_full = 0, shed_oldest = 0,
                  shed_deadline = 0, served = 0, batches = 0, checks = 0,
                  check_errors = 0;
    // Design hot-swap health (serve/swap.hpp).
    std::uint64_t design_generation = 0, swaps_committed = 0, swaps_aborted = 0,
                  swap_latency_ns = 0, shadow_compared = 0, shadow_mismatch = 0;
    std::size_t queue_depth = 0, queue_peak = 0;
    std::size_t pool_queue_depth = 0, pool_inflight = 0;
    double mean_batch_size = 0.0;
    std::vector<double> window_error_rates;   ///< per closed governor window
    std::vector<FreqEvent> frequency_timeline;
    // Latency histogram: parallel bin edges (lo of each bin) and counts.
    std::vector<double> latency_bin_lo_ms;
    std::vector<std::uint64_t> latency_counts;
    double latency_hist_max_ms = 0.0;
    /// Samples >= latency_hist_max_ms; they also sit clamped in the last
    /// bin, so last-bin count minus overflow is the genuine in-range tail.
    std::uint64_t latency_overflow = 0;

    std::string to_json() const;
  };

  /// `pool` (optional) contributes the worker-pool gauges.
  Snapshot snapshot(const ThreadPool* pool = nullptr) const;

 private:
  std::atomic<std::uint64_t> submitted_{0}, rejected_full_{0}, shed_oldest_{0},
      shed_deadline_{0}, served_{0}, batches_{0}, checks_{0}, check_errors_{0};
  std::atomic<std::uint64_t> design_generation_{0}, swaps_committed_{0},
      swaps_aborted_{0}, swap_latency_ns_{0}, shadow_compared_{0},
      shadow_mismatch_{0};
  std::atomic<std::size_t> queue_depth_{0}, queue_peak_{0};

  mutable std::mutex mutex_;  // guards the histogram and traces below
  Histogram latency_ms_;
  double latency_hist_max_ms_;
  std::uint64_t latency_overflow_ = 0;
  std::uint64_t batched_requests_ = 0;
  std::vector<double> window_error_rates_;
  std::vector<FreqEvent> frequency_timeline_;
};

}  // namespace oclp
