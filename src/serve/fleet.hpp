// Multi-die serving: the paper's premise is that every die has its own
// error surface E(m, f), so a production deployment is a *fleet* of
// per-die operating points, not one server. ProjectionFleet deploys one
// ProjectionServer per synthetic die of a family (fabric inter-die scaling
// + per-location variation), characterises each die at construction with
// the subsampled sweep (charlib/recharacterise_multiplier on a compiled
// CharacterisationCircuit) and clocks it at a fraction of its own
// error-free fmax — the fast die serves faster than the slow one, by
// construction rather than by luck.
//
// At run time two loops keep the fleet honest:
//   * a HeadroomRouter places every request on the die with the most
//     headroom (governor frequency / queue depth), with per-tenant SLO
//     classes — latency-sensitive tenants avoid dies ramping back from an
//     SLO breach;
//   * a background re-characterisation thread walks the dies round-robin,
//     re-probing each die's error model at a low rate *while it serves*
//     (the probe runs inline on the control thread, never on serving
//     workers) and publishing the result through SharedErrorModels — the
//     server's replicas pick the new corrections up at their next batch —
//     plus a governor floor adjustment when the measured error-free fmax
//     moved (aging/temperature drift: the offline bench_ext_aging probe
//     promoted to a live control plane).
//
// Determinism: construction and recharacterise() are deterministic in the
// config seeds; tests drive recharacterise() synchronously and keep the
// background thread off (recheck_period_ms = 0).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "charlib/char_circuit.hpp"
#include "charlib/error_model.hpp"
#include "charlib/sweep.hpp"
#include "fabric/device.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"

namespace oclp {

struct FleetConfig {
  // --- the dies -----------------------------------------------------------
  std::size_t num_dies = 3;
  std::uint64_t family_seed = 0xD1E5;  ///< derives die seeds when...
  std::vector<std::uint64_t> die_seeds;  ///< ...this override is empty
  DeviceConfig device;                 ///< family fabric (same product)
  double temperature_c = 25.0;         ///< common serving ambient
  Placement char_placement{0, 30, 3};  ///< where each die's datapath lands

  // --- construction-time characterisation ---------------------------------
  /// Frequency grid of every die's error model; empty → 40..540 step 10.
  std::vector<double> char_freqs_mhz;
  std::size_t char_samples = 240;   ///< stream length per probed code
  std::size_t char_m_stride = 16;   ///< coverage beyond the design's codes
  /// Policy the construction-time probes fan the per-code streams over.
  /// Pinned by default — construction characterises every die up front,
  /// the heaviest burst of the fleet's life, and the pinned schedule keeps
  /// each probe chunk's workspace on one CPU. Online rechecks are *not*
  /// governed by this: they stay serial so a background recheck never
  /// contends with serving traffic for the pool.
  ExecPolicy char_exec = ExecPolicy::pinned();
  /// Per-die operating point as fractions of the die's measured error-free
  /// fmax: the governor serves at target and never steps below floor.
  double target_fraction = 0.9;
  double floor_fraction = 0.5;

  // --- serving -------------------------------------------------------------
  int wl_x = 8;
  bool with_jitter = false;  ///< plan + characterisation jitter
  /// Per-die server template; governor clamps, check frequency and seed
  /// are overridden per die from the characterisation above.
  ServeConfig serve;

  // --- live re-characterisation -------------------------------------------
  /// > 0 starts the background thread: one die re-probed per period,
  /// round-robin. 0 keeps re-characterisation manual (recharacterise()).
  double recheck_period_ms = 0.0;
  std::size_t recheck_samples = 160;
  std::size_t recheck_m_stride = 64;

  std::uint64_t seed = 2014;
};

/// Outcome of a staged fleet-wide design rollout (swap_design).
struct FleetSwapReport {
  bool committed = false;   ///< every die flipped to the new design
  std::size_t canary = 0;   ///< die that swapped (and baked) first
  /// Per-die swap reports, indexed by die. Dies the rollout never reached
  /// (because an earlier die aborted) keep a default-constructed entry
  /// (committed == false, empty abort_reason).
  std::vector<SwapReport> dies;
};

/// Point-in-time view of one die (diagnostics, benches, tests).
struct DieStatus {
  std::uint64_t die_seed = 0;
  double inter_die_factor = 0.0;
  double error_free_fmax_mhz = 0.0;  ///< construction-time measurement
  double recheck_fmax_mhz = 0.0;     ///< latest re-characterised estimate
  double f_target_mhz = 0.0;
  double f_floor_mhz = 0.0;   ///< current governor floor (moves with drift)
  double freq_mhz = 0.0;      ///< current governor frequency
  double derate = 1.0;        ///< injected environment drift
  std::size_t queue_depth = 0;
  std::uint64_t routed = 0;   ///< requests this fleet placed on the die
  std::uint64_t recharacterisations = 0;
};

class ProjectionFleet {
 public:
  /// Invoked from die worker threads for every served request; must be
  /// thread-safe (several dies serve concurrently).
  using ResultCallback =
      std::function<void(std::size_t die, const ServeResult&)>;

  ProjectionFleet(const LinearProjectionDesign& design, const FleetConfig& cfg,
                  ResultCallback on_result = nullptr);
  ~ProjectionFleet();

  ProjectionFleet(const ProjectionFleet&) = delete;
  ProjectionFleet& operator=(const ProjectionFleet&) = delete;

  std::size_t num_dies() const { return dies_.size(); }

  /// Route and enqueue one request. Walks the router's fallback order, so
  /// false means *every* die rejected it (all queues full under
  /// RejectNewest, or the fleet is stopping). Thread-safe.
  bool submit(ServeRequest req, SloClass slo = SloClass::BestEffort);

  /// Start dispatching on every die (fleet built with serve.start_paused).
  void resume();
  /// Block until every die's queue is drained and no batch is in flight.
  void wait_idle();
  /// Stop the re-characterisation thread, then drain and stop every die.
  void stop();

  /// Inject environment drift on one die: its serving datapaths *and* its
  /// re-characterisation probes see every delay scaled by `derate` — the
  /// probe measures the die as it currently is, which is what lets the
  /// control plane detect the drift.
  void set_die_drift(std::size_t die, double derate);

  /// Staged fleet-wide hot-swap onto `next` (same P and K as the serving
  /// design; every column multiplier configuration must already be
  /// characterised on every die — the probe circuits and error surfaces
  /// are per configuration, so a swap within the characterised set needs
  /// no re-characterisation). The canary die swaps first — its Shadow phase
  /// is the bake — and an abort there stops the rollout before any
  /// sibling is touched; siblings then swap in die order, each against
  /// its own die's current model snapshot. Holds the re-characterisation
  /// cycle lock for the whole rollout (the model control plane is frozen
  /// while designs move). On full commit the fleet's probe focus list
  /// follows the new coefficients; a partial rollout (some dies aborted)
  /// leaves the focus list on the old design — re-issue the swap to
  /// converge. Live traffic must keep flowing during the rollout when
  /// scfg.min_shadow_compares > 0.
  FleetSwapReport swap_design(const LinearProjectionDesign& next,
                              const SwapConfig& scfg = SwapConfig(),
                              std::size_t canary = 0);

  /// One synchronous re-characterisation cycle for `die` — exactly what
  /// the background thread runs per tick: subsampled probe at the die's
  /// current drift, model publication, governor floor adjustment. Returns
  /// the probe report aggregated over the design's word-lengths. Safe to
  /// call while the die serves.
  SubsweepReport recharacterise(std::size_t die);

  /// Total re-characterisation cycles completed (all dies, both the
  /// background thread's and manual ones).
  std::uint64_t recharacterisation_cycles() const;

  DieStatus die_status(std::size_t die) const;

  /// Direct access to a die's server (tests/benches drive a specific die).
  ProjectionServer& server(std::size_t die);
  const ProjectionServer& server(std::size_t die) const;

  /// The die's currently published error-model snapshot.
  std::shared_ptr<const ErrorModelMap> die_models(
      std::size_t die) const;

 private:
  struct Die {
    std::uint64_t seed = 0;
    Device device;
    /// One compiled characterisation circuit per distinct column
    /// multiplier configuration, built once and re-probed for the fleet's
    /// lifetime.
    std::map<MultConfig, std::unique_ptr<CharacterisationCircuit>>
        char_circuits;
    SharedErrorModels models;
    double error_free_fmax_mhz = 0.0;  ///< construction-time fB
    double f_target_mhz = 0.0;
    std::unique_ptr<ProjectionServer> server;
    std::atomic<double> derate{1.0};
    std::atomic<double> floor_mhz{0.0};
    std::atomic<double> recheck_fmax_mhz{0.0};
    std::atomic<std::uint64_t> routed{0};
    std::atomic<std::uint64_t> recharacterisations{0};
    std::uint64_t recheck_phase = 0;  ///< guarded by recheck_mutex_

    explicit Die(Device d) : device(std::move(d)) {}
  };

  void recheck_loop();

  FleetConfig cfg_;
  LinearProjectionDesign design_;
  std::vector<double> char_grid_;
  /// Design coefficient magnitudes per column multiplier configuration
  /// (the probe's focus list).
  std::map<MultConfig, std::vector<std::uint32_t>> design_codes_;

  std::vector<std::unique_ptr<Die>> dies_;
  HeadroomRouter router_;
  ResultCallback on_result_;

  std::mutex recheck_mutex_;  ///< serialises re-characterisation cycles
  std::atomic<std::uint64_t> recheck_cycles_{0};

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread recheck_thread_;
};

}  // namespace oclp
