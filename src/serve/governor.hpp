// Online clock governor for the serving runtime.
//
// The paper's framework picks a *design-time* operating point beyond the
// tool Fmax; deployed under load, the environment drifts (temperature,
// droop, aging) and the characterised error model goes stale. The governor
// closes the loop at run time: the server samples a fraction of requests
// through a duplicate-at-safe-frequency check (razor-style detection, see
// timing/razor.hpp) and feeds each verdict here. Decisions are taken per
// window of `window_checks` verdicts — AIMD over the clock:
//
//   * window error rate >  slo_error_rate → multiplicative step DOWN,
//     clamped at `f_floor_mhz` (the characterised error-free regime bound
//     fB from charlib::find_regimes is the natural floor);
//   * `healthy_windows_to_ramp` consecutive healthy windows → additive
//     step UP of `step_up_mhz`, clamped at `f_target_mhz` (the design's
//     over-clocked operating point, below the fC usability bound).
//
// Graceful degradation instead of silent corruption: throughput bends, the
// served results stay inside the error SLO. Fully deterministic given the
// verdict sequence; thread-safe (workers feed verdicts concurrently).
#pragma once

#include <cstddef>
#include <mutex>

namespace oclp {

struct GovernorConfig {
  double f_target_mhz = 310.0;  ///< over-clocked operating point (ceiling)
  double f_floor_mhz = 160.0;   ///< safe bound, e.g. characterised fB
  double slo_error_rate = 0.05; ///< tolerated per-window check-error rate
  std::size_t window_checks = 32;   ///< verdicts per decision window
  double step_down_factor = 0.7;    ///< multiplicative decrease on breach
  double step_up_mhz = 10.0;        ///< additive re-ramp per healthy streak
  int healthy_windows_to_ramp = 3;  ///< consecutive healthy windows per step up
};

class FrequencyGovernor {
 public:
  explicit FrequencyGovernor(const GovernorConfig& cfg);

  const GovernorConfig& config() const { return cfg_; }

  /// Frequency requests are currently served at.
  double frequency_mhz() const;

  /// Current AIMD clamps. They start at the config's f_floor/f_target and
  /// move only through set_limits(); cfg_ keeps the construction-time values.
  double floor_mhz() const;
  double target_mhz() const;

  /// Re-characterisation feeds the control plane here: move the floor (the
  /// characterised error-free bound went stale — e.g. aging shrank fB) and
  /// ceiling at run time. The operating frequency is clamped into the new
  /// [floor, target] range immediately; the open window's verdict counts
  /// and the healthy streak are preserved. Thread-safe.
  void set_limits(double f_floor_mhz, double f_target_mhz);

  enum class Action { None, Hold, StepDown, StepUp };

  struct Decision {
    bool window_closed = false;     ///< this verdict completed a window
    Action action = Action::None;   ///< what the closed window decided
    double window_error_rate = 0.0; ///< error rate of the closed window
    double freq_mhz = 0.0;          ///< frequency after the decision
  };

  /// Feed one check verdict (true = served result disagreed with the
  /// safe-frequency duplicate). Returns the decision of the window this
  /// verdict closed, or {window_closed = false} mid-window.
  Decision record_check(bool error);

  std::size_t windows_closed() const;
  std::size_t checks_recorded() const;

  /// Verdicts recorded into the current (open) window, < window_checks.
  /// Lets a batch scheduler predict the check that will close the window —
  /// the only point a decision (and hence a frequency change) can occur —
  /// and segment its batch there so whole segments share one frequency.
  std::size_t checks_into_window() const;

 private:
  GovernorConfig cfg_;
  mutable std::mutex mutex_;
  double floor_mhz_, target_mhz_;  ///< live clamps (see set_limits)
  double freq_mhz_;
  std::size_t window_checks_ = 0, window_errors_ = 0;
  std::size_t windows_ = 0, total_checks_ = 0;
  int healthy_streak_ = 0;
};

}  // namespace oclp
