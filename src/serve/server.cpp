#include "serve/server.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace oclp {

namespace {

double to_ms(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

LinearProjectionDesign retargeted(LinearProjectionDesign design, double freq) {
  design.target_freq_mhz = freq;
  return design;
}

}  // namespace

ProjectionServer::ProjectionServer(const LinearProjectionDesign& design,
                                   const Device& device, const CircuitPlan& plan,
                                   int wl_x,
                                   const ErrorModelMap* models,
                                   const ServeConfig& cfg,
                                   ResultCallback on_result)
    : cfg_(cfg),
      dims_p_(design.dims_p()),
      dims_k_(design.dims_k()),
      wl_x_(wl_x),
      check_freq_mhz_(cfg.check_freq_mhz > 0.0 ? cfg.check_freq_mhz
                                               : cfg.governor.f_floor_mhz),
      device_(device),
      plan_(plan),
      on_result_(std::move(on_result)),
      governor_(cfg.governor),
      paused_(cfg.start_paused),
      pool_(cfg.workers) {
  OCLP_CHECK(cfg.workers >= 1 && cfg.queue_capacity >= 1 && cfg.max_batch >= 1);
  OCLP_CHECK(cfg.max_wait_ms >= 0.0);
  OCLP_CHECK(cfg.check_fraction >= 0.0 && cfg.check_fraction <= 1.0);
  OCLP_CHECK(cfg.check_tolerance > 0.0);
  OCLP_CHECK_MSG(check_freq_mhz_ <= cfg.governor.f_floor_mhz,
                 "check frequency " << check_freq_mhz_
                                    << " MHz is above the governor floor — the "
                                       "safe duplicate would not be safe");

  // Deploy the datapath replicas at the governor's operating point. The
  // safe-clock duplicate needs no second circuit: below the floor every
  // output settles within the period, so its capture is the settled
  // functional value — computed per batch on the serving replica's
  // compiled netlists (uncorrected: the settled datapath is exact, which
  // keeps the comparison honest).
  for (std::size_t w = 0; w < cfg.workers; ++w) {
    ProjectionCircuit serve(retargeted(design, cfg.governor.f_target_mhz),
                            device, plan, wl_x, models,
                            hash_mix(cfg.seed, w, 0x5E2FE1ULL));
    auto rep = std::make_unique<Replica>(std::move(serve));
    rep->serve_freq_mhz = cfg.governor.f_target_mhz;
    free_replicas_.push_back(std::move(rep));
  }
  metrics_.record_initial_frequency(cfg.governor.f_target_mhz);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

ProjectionServer::~ProjectionServer() { stop(); }

bool ProjectionServer::submit(ServeRequest req) {
  OCLP_CHECK_MSG(req.x_codes.size() == dims_p_,
                 "request " << req.id << " has " << req.x_codes.size()
                            << " codes for a P=" << dims_p_ << " design");
  const std::uint32_t limit = std::uint32_t{1} << wl_x_;
  for (std::uint32_t c : req.x_codes)
    OCLP_CHECK_MSG(c < limit, "input code " << c << " out of range for wl_x="
                                            << wl_x_);
  metrics_.on_submitted();
  {
    std::lock_guard lock(queue_mutex_);
    if (stopping_) {
      metrics_.on_rejected_full();
      return false;
    }
    if (queue_.size() >= cfg_.queue_capacity) {
      if (cfg_.overload == OverloadPolicy::RejectNewest) {
        metrics_.on_rejected_full();
        return false;
      }
      queue_.pop_front();
      metrics_.on_shed_oldest();
    }
    queue_.push_back({std::move(req), Clock::now()});
    metrics_.queue_depth_sample(queue_.size());
  }
  dispatch_cv_.notify_one();
  return true;
}

void ProjectionServer::resume() {
  {
    std::lock_guard lock(queue_mutex_);
    paused_ = false;
  }
  dispatch_cv_.notify_all();
}

void ProjectionServer::wait_idle() {
  std::unique_lock lock(queue_mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && inflight_batches_ == 0; });
}

void ProjectionServer::stop() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
    paused_ = false;
  }
  dispatch_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  wait_idle();  // dispatcher drained the queue; wait out in-flight batches
}

void ProjectionServer::set_timing_derate(double derate) {
  OCLP_CHECK(derate > 0.0);
  derate_.store(derate, std::memory_order_relaxed);
}

double ProjectionServer::timing_derate() const {
  return derate_.load(std::memory_order_relaxed);
}

void ProjectionServer::swap_error_models(
    std::shared_ptr<const ErrorModelMap> models) {
  std::lock_guard lock(replica_mutex_);
  swapped_models_ = std::move(models);
  ++models_generation_;
}

SwapReport ProjectionServer::swap_design(
    const LinearProjectionDesign& next,
    std::shared_ptr<const ErrorModelMap> models,
    const SwapConfig& scfg) {
  std::lock_guard serialise(swap_mutex_);
  DesignSwapper swapper(*this, scfg);
  return swapper.run(next, std::move(models));
}

std::uint64_t ProjectionServer::design_generation() const {
  std::lock_guard lock(replica_mutex_);
  return design_generation_;
}

std::vector<std::unique_ptr<ProjectionServer::Replica>>
ProjectionServer::lower_candidate(const LinearProjectionDesign& next,
                                  const ErrorModelMap* models) const {
  // Same fabric locations, same per-worker clock seeds, same operating
  // point as the constructor — a flipped-in replica is indistinguishable
  // from a cold-constructed one, register state included (the Shadow
  // phase runs on its own circuit, never these).
  std::vector<std::unique_ptr<Replica>> fresh;
  fresh.reserve(cfg_.workers);
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    ProjectionCircuit serve(retargeted(next, cfg_.governor.f_target_mhz),
                            device_, plan_, wl_x_, models,
                            hash_mix(cfg_.seed, w, 0x5E2FE1ULL));
    auto rep = std::make_unique<Replica>(std::move(serve));
    rep->serve_freq_mhz = cfg_.governor.f_target_mhz;
    fresh.push_back(std::move(rep));
  }
  return fresh;
}

ProjectionCircuit ProjectionServer::make_shadow(
    const LinearProjectionDesign& next,
    const ErrorModelMap* models) const {
  return ProjectionCircuit(retargeted(next, cfg_.governor.f_target_mhz),
                           device_, plan_, wl_x_, models,
                           hash_mix(cfg_.seed, 0xA110CULL, 0x5AAD03ULL));
}

void ProjectionServer::install_shadow(std::shared_ptr<ShadowTap> tap) {
  std::lock_guard lock(shadow_mutex_);
  shadow_ = std::move(tap);
  shadow_active_.store(shadow_ != nullptr, std::memory_order_release);
}

void ProjectionServer::clear_shadow() {
  std::lock_guard lock(shadow_mutex_);
  shadow_active_.store(false, std::memory_order_release);
  shadow_.reset();
}

std::shared_ptr<ShadowTap> ProjectionServer::current_shadow() const {
  if (!shadow_active_.load(std::memory_order_acquire)) return nullptr;
  std::lock_guard lock(shadow_mutex_);
  return shadow_;
}

void ProjectionServer::flip_if_stale_locked(
    std::unique_ptr<Replica>& rep,
    std::deque<std::unique_ptr<Replica>>& destroy) {
  if (rep->design_generation == design_generation_) return;
  // Every stale replica has a fresh replacement waiting: publish_design
  // stages exactly one per deployed replica, and each flip consumes one.
  OCLP_CHECK(!pending_replicas_.empty());
  retired_replicas_.push_back(std::move(rep));
  rep = std::move(pending_replicas_.front());
  pending_replicas_.pop_front();
  // Last stale replica moved off: the old design is unpinned. Hand the
  // retired circuits to the caller so teardown happens off the lock.
  if (pending_replicas_.empty()) destroy.swap(retired_replicas_);
}

void ProjectionServer::publish_design(
    const LinearProjectionDesign& next,
    std::shared_ptr<const ErrorModelMap> models,
    std::vector<std::unique_ptr<Replica>> fresh) {
  OCLP_CHECK(fresh.size() == cfg_.workers);
  (void)next;  // shape already validated; replicas carry the lowering
  std::deque<std::unique_ptr<Replica>> destroy;
  {
    std::lock_guard lock(replica_mutex_);
    // The new design's models become the published set (the replicas were
    // lowered with them), so later swap_error_models pushes compose.
    swapped_models_ = std::move(models);
    ++models_generation_;
    ++design_generation_;
    for (auto& rep : fresh) {
      rep->design_generation = design_generation_;
      rep->models = swapped_models_;
      rep->models_generation = models_generation_;
      pending_replicas_.push_back(std::move(rep));
    }
    // Idle replicas flip right now; checked-out ones at their next batch
    // boundary (process_batch checkout / return).
    for (auto& rep : free_replicas_) flip_if_stale_locked(rep, destroy);
    metrics_.set_design_generation(design_generation_);
  }
  replica_cv_.notify_all();
  destroy.clear();  // old circuits, torn down outside the lock
}

void ProjectionServer::wait_design_flipped() {
  std::unique_lock lock(replica_mutex_);
  replica_cv_.wait(lock, [&] { return pending_replicas_.empty(); });
}

std::size_t ProjectionServer::queue_depth() const {
  std::lock_guard lock(queue_mutex_);
  return queue_.size();
}

ServeMetrics::Snapshot ProjectionServer::metrics_snapshot() const {
  return metrics_.snapshot(&pool_);
}

bool ProjectionServer::sampled_for_check(std::uint64_t id) const {
  if (cfg_.check_fraction >= 1.0) return true;
  if (cfg_.check_fraction <= 0.0) return false;
  const double u =
      static_cast<double>(hash_mix(cfg_.seed, id, 0x5A3E17ULL) >> 11) *
      0x1.0p-53;
  return u < cfg_.check_fraction;
}

void ProjectionServer::dispatcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock lock(queue_mutex_);
      dispatch_cv_.wait(
          lock, [&] { return stopping_ || (!paused_ && !queue_.empty()); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Micro-batch linger: once one request is waiting, hold the batch
      // open up to max_wait for followers — latency traded for batch size.
      if (queue_.size() < cfg_.max_batch && cfg_.max_wait_ms > 0.0 &&
          !stopping_) {
        const auto deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   cfg_.max_wait_ms));
        dispatch_cv_.wait_until(lock, deadline, [&] {
          return stopping_ || queue_.size() >= cfg_.max_batch;
        });
        if (queue_.empty()) continue;  // shed/raced away during the linger
      }
      const std::size_t n = std::min(cfg_.max_batch, queue_.size());
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      metrics_.queue_depth_sample(queue_.size());
      ++inflight_batches_;
    }
    pool_.submit(
        [this, b = std::make_shared<std::vector<Pending>>(std::move(batch))] {
          process_batch(std::move(*b));
        });
  }
}

void ProjectionServer::process_batch(std::vector<Pending>&& batch) {
  std::unique_ptr<Replica> rep;
  bool apply_models = false;
  std::deque<std::unique_ptr<Replica>> destroy;
  {
    std::unique_lock lock(replica_mutex_);
    replica_cv_.wait(lock, [&] { return !free_replicas_.empty(); });
    rep = std::move(free_replicas_.front());
    free_replicas_.pop_front();
    // Pickup boundary: a replica lowered from a retired design never
    // serves again — it swaps for its fresh-generation replacement here.
    flip_if_stale_locked(rep, destroy);
    if (rep->models_generation != models_generation_) {
      rep->models = swapped_models_;
      rep->models_generation = models_generation_;
      apply_models = true;
    }
  }
  if (!destroy.empty()) {
    replica_cv_.notify_all();  // a waiting swap sees the flip complete
    destroy.clear();
  }
  // Correction recompute happens outside the lock (it walks the model per
  // coefficient); the replica is checked out, so nothing else touches it.
  if (apply_models) rep->serve.set_error_models(rep->models.get());

  // Deadline shedding at pickup: a request whose deadline lapsed while it
  // queued is dropped before any kernel work is spent on it. One pickup
  // instant judges the whole batch — per-request clock reads would judge
  // batch-mates at drifting instants, so whether a request survived could
  // depend on how long its predecessors' shed checks took.
  const auto pickup = Clock::now();
  rep->live.clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& req = batch[i].req;
    if (req.deadline_ms > 0.0 &&
        to_ms(pickup - batch[i].enqueued) > req.deadline_ms) {
      metrics_.on_shed_deadline();
      continue;
    }
    rep->live.push_back(i);
  }

  // Precompute the safe-duplicate references for every sampled survivor in
  // one batched settled (eval64) pass: the reference is the functional
  // value of the datapath, so it depends only on the request — never on
  // the governor or derate state — and hoisting it cannot perturb the
  // per-request governor trajectory below.
  rep->check_inputs.clear();
  rep->ref_of.assign(batch.size(), -1);
  for (std::size_t i : rep->live) {
    if (sampled_for_check(batch[i].req.id)) {
      rep->ref_of[i] = static_cast<std::ptrdiff_t>(rep->check_inputs.size());
      rep->check_inputs.push_back(&batch[i].req.x_codes);
    }
  }
  if (!rep->check_inputs.empty())
    rep->serve.project_settled(rep->check_inputs, rep->check_refs);

  // Serve the survivors through the batched run_stream kernel. The clock
  // can only move on the check verdict that closes a governor window, so
  // the batch is cut at the predicted window-close points: every request
  // of a segment shares one (frequency, derate) and the segment is clocked
  // through project_batch in a single call. With one worker the predicted
  // boundaries are exact and the segmented batch reproduces the sequential
  // per-request loop bit for bit; with several workers, checks from other
  // replicas may shift a window boundary — a scheduling race the
  // per-request loop had as well.
  std::vector<double> latencies;
  latencies.reserve(batch.size());
  const std::shared_ptr<ShadowTap> shadow = current_shadow();
  std::vector<std::uint64_t> shadow_ids;  // per-segment mirrored request ids
  const std::size_t window = governor_.config().window_checks;
  std::size_t into = governor_.checks_into_window();
  std::size_t seg_begin = 0;
  while (seg_begin < rep->live.size()) {
    // Extend the segment up to (and including) the request whose check
    // closes the currently open window.
    std::size_t seg_end = seg_begin;
    while (seg_end < rep->live.size()) {
      const bool checked = rep->ref_of[rep->live[seg_end]] >= 0;
      ++seg_end;
      if (checked && ++into == window) {
        into = 0;
        break;
      }
    }

    const double freq = governor_.frequency_mhz();
    const double derate = derate_.load(std::memory_order_relaxed);
    if (rep->serve_freq_mhz != freq || rep->serve_derate != derate) {
      rep->serve.set_clock(freq, derate);
      rep->serve_freq_mhz = freq;
      rep->serve_derate = derate;
    }

    rep->batch_inputs.clear();
    for (std::size_t j = seg_begin; j < seg_end; ++j)
      rep->batch_inputs.push_back(&batch[rep->live[j]].req.x_codes);
    rep->serve.project_batch(rep->batch_inputs, rep->batch_ys);

    for (std::size_t j = seg_begin; j < seg_end; ++j) {
      const std::size_t bi = rep->live[j];
      auto& pending = batch[bi];
      ServeResult res;
      res.id = pending.req.id;
      res.freq_mhz = freq;
      res.y = std::move(rep->batch_ys[j - seg_begin]);

      if (rep->ref_of[bi] >= 0) {
        const auto& ref =
            rep->check_refs[static_cast<std::size_t>(rep->ref_of[bi])];
        bool error = false;
        for (std::size_t i = 0; i < ref.size(); ++i)
          if (std::abs(res.y[i] - ref[i]) > cfg_.check_tolerance) {
            error = true;
            break;
          }
        res.checked = true;
        res.check_error = error;
        metrics_.on_check(error);
        const auto decision = governor_.record_check(error);
        if (decision.window_closed)
          metrics_.on_window(
              decision.window_error_rate, decision.freq_mhz,
              decision.action == FrequencyGovernor::Action::StepDown ||
                  decision.action == FrequencyGovernor::Action::StepUp);
      }

      res.latency_ms = to_ms(Clock::now() - pending.enqueued);
      latencies.push_back(res.latency_ms);
      metrics_.on_served();
      if (on_result_) on_result_(res);
    }

    // Shadow phase of an in-progress swap: mirror this segment through the
    // candidate datapath at the operating point it was just served at.
    // The tap samples, times and scores on its own circuit — served
    // results and the governor trajectory are untouched.
    if (shadow) {
      shadow_ids.clear();
      for (std::size_t j = seg_begin; j < seg_end; ++j)
        shadow_ids.push_back(batch[rep->live[j]].req.id);
      shadow->observe(shadow_ids, rep->batch_inputs, freq, derate);
    }
    seg_begin = seg_end;
  }
  metrics_.on_batch(batch.size(), latencies);

  {
    std::lock_guard lock(replica_mutex_);
    // Return boundary: flip here too, so a swap drains even when no new
    // batch arrives to trigger the pickup-boundary flip.
    flip_if_stale_locked(rep, destroy);
    free_replicas_.push_back(std::move(rep));
  }
  replica_cv_.notify_all();
  destroy.clear();
  {
    std::lock_guard lock(queue_mutex_);
    --inflight_batches_;
  }
  idle_cv_.notify_all();
}

}  // namespace oclp
