// Constant Coefficient Multipliers (CCMs) — the operator class of the
// paper's predecessor work [7], kept here as a baseline.
//
// A CCM hard-codes the multiplicand: the partial products of '0' bits
// vanish, so the circuit is a shift-add network over the '1' bits of the
// constant (optionally recoded to canonical signed digit form to minimise
// adders). CCMs are smaller and often faster than a generic multiplier for
// the same constant, but the paper's central argument against them stands:
// characterising a device requires one circuit per constant value (2^wl
// synthesis+measure runs) where a single generic multiplier circuit covers
// every coefficient — which is why the generic-multiplier framework
// "scales to large problems". ccm_characterisation_cost() quantifies that.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace oclp {

/// Canonical signed digit (CSD) recoding of an unsigned constant: digits
/// in {-1, 0, +1}, LSB first, no two adjacent non-zeros. Minimises the
/// number of add/subtract terms of a shift-add multiplier.
std::vector<int> csd_recode(std::uint64_t constant);

/// Number of non-zero digits (= adder terms) in the CSD form.
int csd_nonzero_terms(std::uint64_t constant);

/// Build a CCM for `constant` (wl_m-bit) times an x-bit input into `nb`.
/// Returns the product bus, wl_m + wl_x bits LSB-first. Plain shift-add
/// over the binary '1' bits when use_csd is false; CSD shift-add/subtract
/// otherwise.
std::vector<std::int32_t> build_ccm(NetlistBuilder& nb, std::uint32_t constant,
                                    int wl_m, const std::vector<std::int32_t>& x,
                                    bool use_csd = true);

/// Standalone CCM netlist: inputs are the x bits, outputs the product.
Netlist make_ccm(std::uint32_t constant, int wl_m, int wl_x, bool use_csd = true);

/// Characterisation-cost comparison (paper Sec. II): circuits to compile
/// and measure to cover every coefficient of a wl-bit port.
struct CharacterisationCost {
  std::size_t generic_circuits = 1;   ///< one generic multiplier
  std::size_t ccm_circuits = 0;       ///< one CCM per constant value
  double ccm_over_generic = 0.0;
};
CharacterisationCost ccm_characterisation_cost(int wl_m);

}  // namespace oclp
