// LUT-based generic multiplier and MAC datapath generators.
//
// The paper's design-under-test is the "generic multiplier based on LUTs":
// a ripple-carry array multiplier whose partial-product rows accumulate
// through full-adder chains. Its two properties the framework depends on
// both emerge from the structure:
//   * the most-significant product bits terminate the longest adder chains
//     (they fail first under over-clocking — Fig. 4's "high error values");
//   * a multiplicand bit of 0 zeroes a whole partial-product row, so
//     multiplicands with few '1' bits toggle shorter paths and survive
//     higher clocks (Fig. 5's dark rows).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fabric/device.hpp"
#include "netlist/netlist.hpp"

namespace oclp {

/// Net handles of a multiplier embedded in a larger netlist.
struct MultiplierPorts {
  std::vector<std::int32_t> a;  ///< multiplicand bus (LSB first)
  std::vector<std::int32_t> b;  ///< multiplier bus (LSB first)
  std::vector<std::int32_t> p;  ///< product bus, |a|+|b| bits (LSB first)
};

/// Emit an unsigned wl_a × wl_b ripple-carry array multiplier into `nb`,
/// consuming the given input nets. Returns the port map (p are new nets).
MultiplierPorts build_array_multiplier(NetlistBuilder& nb,
                                       const std::vector<std::int32_t>& a,
                                       const std::vector<std::int32_t>& b);

/// Standalone multiplier netlist: inputs are [a bits..., b bits...],
/// outputs are the product bits.
Netlist make_multiplier(int wl_a, int wl_b);

/// Multiplier micro-architecture selector. Array is the paper's operator;
/// Wallace is the log-depth alternative (mult/wallace.hpp) supported end
/// to end through characterisation and design realisation — the paper's
/// "the proposed framework can be utilised for other arithmetic
/// components". Ccm is the predecessor work's constant-coefficient
/// operator (mult/ccm.hpp): the coefficient is baked into the netlist, so
/// a realised CCM datapath is per-constant — changing a coefficient means
/// re-lowering the circuit (the runtime hot-swap path measures exactly
/// that cost).
enum class MultArch { Array, Wallace, Ccm };

const char* mult_arch_name(MultArch arch);
/// Inverse of mult_arch_name; throws on an unknown name (used by the
/// error-model CSV loader).
MultArch mult_arch_from_name(const std::string& name);

/// Architecture-dispatching factory for the *generic* (two-operand)
/// multipliers. MultArch::Ccm has no generic netlist — its circuit depends
/// on the coefficient value and is lowered per coefficient via make_ccm
/// (mult/ccm.hpp) — so requesting it here fails loudly.
Netlist make_multiplier_arch(MultArch arch, int wl_a, int wl_b);

/// One point of the widened design space Algorithm 1 searches over: a
/// multiplier micro-architecture at a coefficient word-length with a
/// register pipeline depth (1 = purely combinational). This is the value
/// type threaded through characterisation sweeps, error models, area
/// models, priors, the optimiser's per-dimension decision variable and the
/// serving/swap layers — nothing below the netlist builders assumes
/// "array at word-length wl" any more.
struct MultConfig {
  MultArch arch = MultArch::Array;
  int wordlength = 8;      ///< coefficient (multiplicand) word-length
  int pipeline_depth = 1;  ///< PipeReg stages (see netlist/pipeline.hpp)

  friend bool operator==(const MultConfig& a, const MultConfig& b) {
    return a.arch == b.arch && a.wordlength == b.wordlength &&
           a.pipeline_depth == b.pipeline_depth;
  }
  friend bool operator!=(const MultConfig& a, const MultConfig& b) {
    return !(a == b);
  }
  /// Strict weak order for map keys: wordlength, then arch, then depth —
  /// iteration groups per-wordlength variants together, which the config
  /// shortlisting relies on.
  friend bool operator<(const MultConfig& a, const MultConfig& b) {
    if (a.wordlength != b.wordlength) return a.wordlength < b.wordlength;
    if (a.arch != b.arch) return static_cast<int>(a.arch) < static_cast<int>(b.arch);
    return a.pipeline_depth < b.pipeline_depth;
  }
};

/// "array/wl8/p1" — the canonical spelling used in messages and artifacts.
std::string to_string(const MultConfig& config);
std::ostream& operator<<(std::ostream& os, const MultConfig& config);

/// Unified config factory for the generic (coefficient-agnostic)
/// architectures: the architecture netlist at config.wordlength × wl_x,
/// pipelined to config.pipeline_depth. Throws for Ccm (coefficient-
/// dependent; use make_ccm_multiplier).
Netlist make_multiplier(const MultConfig& config, int wl_x);

/// Per-constant factory for MultConfig{Ccm, ...}: the shift-add network of
/// `constant`, pipelined to config.pipeline_depth.
Netlist make_ccm_multiplier(const MultConfig& config, std::uint32_t constant,
                            int wl_x);

/// Logic elements of the generic config against a wl_x-bit input (includes
/// pipeline registers — pipelining costs area). Throws for Ccm, whose LE
/// count is per-constant (the area model samples constants instead).
std::size_t multiplier_config_logic_elements(const MultConfig& config, int wl_x);

/// Convenience grid: every wordlength in [wl_min, wl_max] crossed with
/// `depths` for one architecture, in map order.
std::vector<MultConfig> mult_config_range(MultArch arch, int wl_min, int wl_max,
                                          const std::vector<int>& depths = {1});

/// Test hook: process-wide count of make_multiplier_arch() invocations.
/// Lets tests assert that hot paths build each DUT netlist exactly once.
std::size_t multiplier_arch_build_count();

/// MAC datapath netlist as instantiated in the Linear Projection circuit:
/// product = a×b, then sum = product + acc through a ripple adder, where
/// acc is `acc_bits` wide (>= wl_a + wl_b). Inputs: [a, b, acc]; outputs:
/// acc_bits+1 sum bits. This is the registered-to-registered path whose
/// length defines the design's datapath Fmax (Fig. 8).
Netlist make_mac(int wl_a, int wl_b, int acc_bits);

/// Number of logic elements of the wl_a × wl_b multiplier as the area
/// model's ground truth (counts the netlist's non-free cells).
std::size_t multiplier_logic_elements(int wl_a, int wl_b);

/// Embedded DSP-block multiplier model (paper: the framework "can be
/// easily extended to accommodate embedded DSP blocks"). The block is a
/// hard macro: a fixed propagation delay per device corner rather than a
/// LUT netlist, and zero LEs.
struct DspBlockModel {
  /// Device-view propagation delay of an 18×18 hard multiplier slice.
  static double delay_ns(const Device& device, const Placement& placement);
  /// Tool-view (conservative) delay.
  static double tool_delay_ns(const DeviceConfig& cfg);
};

}  // namespace oclp
