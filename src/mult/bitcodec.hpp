// Integer ↔ bit-vector packing for driving netlist inputs and reading
// outputs. All buses are LSB-first.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace oclp {

/// Lowest `bits` bits of value, LSB first.
std::vector<std::uint8_t> to_bits(std::uint64_t value, int bits);

/// Append the lowest `bits` bits of value to `out`.
void append_bits(std::vector<std::uint8_t>& out, std::uint64_t value, int bits);

/// Interpret an LSB-first bit vector as an unsigned integer.
std::uint64_t from_bits(const std::vector<std::uint8_t>& bits);

/// Interpret bits [offset, offset+count) of a vector as unsigned.
std::uint64_t from_bits(const std::vector<std::uint8_t>& bits, std::size_t offset,
                        std::size_t count);

}  // namespace oclp
