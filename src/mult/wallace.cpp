#include "mult/wallace.hpp"

namespace oclp {

std::vector<std::int32_t> build_wallace_multiplier(
    NetlistBuilder& nb, const std::vector<std::int32_t>& a,
    const std::vector<std::int32_t>& b) {
  OCLP_CHECK(!a.empty() && !b.empty());
  const std::size_t width = a.size() + b.size();

  // Partial products bucketed by bit weight.
  std::vector<std::vector<std::int32_t>> columns(width);
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j)
      columns[i + j].push_back(nb.and_(a[i], b[j]));

  // Wallace reduction: each pass compresses every column with full adders
  // (3:2) and half adders (2:2) until at most two rows remain.
  auto max_height = [&] {
    std::size_t h = 0;
    for (const auto& col : columns) h = std::max(h, col.size());
    return h;
  };
  while (max_height() > 2) {
    std::vector<std::vector<std::int32_t>> next(width);
    for (std::size_t w = 0; w < width; ++w) {
      auto& col = columns[w];
      std::size_t i = 0;
      while (col.size() - i >= 3) {
        auto [s, c] = nb.full_adder(col[i], col[i + 1], col[i + 2]);
        next[w].push_back(s);
        if (w + 1 < width) next[w + 1].push_back(c);
        i += 3;
      }
      if (col.size() - i == 2) {
        auto [s, c] = nb.half_adder(col[i], col[i + 1]);
        next[w].push_back(s);
        if (w + 1 < width) next[w + 1].push_back(c);
        i += 2;
      }
      for (; i < col.size(); ++i) next[w].push_back(col[i]);
    }
    columns = std::move(next);
  }

  // Final carry-propagate addition of the two remaining rows.
  std::vector<std::int32_t> row0(width), row1(width);
  for (std::size_t w = 0; w < width; ++w) {
    row0[w] = columns[w].size() > 0 ? columns[w][0] : nb.const0();
    row1[w] = columns[w].size() > 1 ? columns[w][1] : nb.const0();
  }
  auto sum = nb.ripple_add(row0, row1);
  sum.resize(width);  // the true product fits; the top carry is always 0
  return sum;
}

Netlist make_wallace_multiplier(int wl_a, int wl_b) {
  OCLP_CHECK(wl_a >= 1 && wl_b >= 1);
  NetlistBuilder nb;
  const auto a = nb.add_inputs(static_cast<std::size_t>(wl_a));
  const auto b = nb.add_inputs(static_cast<std::size_t>(wl_b));
  nb.mark_outputs(build_wallace_multiplier(nb, a, b));
  return nb.build();
}

}  // namespace oclp
