// Wallace-tree multiplier: carry-save 3:2/2:2 reduction of the partial
// products followed by one final carry-propagate adder. Logarithmic tree
// depth versus the array multiplier's linear chain — an architecture
// ablation for the over-clocking study: a shallower datapath moves the
// whole error-onset landscape up in frequency at the same LE budget,
// changing how much headroom the characterisation can expose.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace oclp {

/// Emit an unsigned Wallace-tree multiplier into `nb`; returns the product
/// bus (|a| + |b| bits, LSB first).
std::vector<std::int32_t> build_wallace_multiplier(
    NetlistBuilder& nb, const std::vector<std::int32_t>& a,
    const std::vector<std::int32_t>& b);

/// Standalone Wallace multiplier netlist, inputs [a bits..., b bits...].
Netlist make_wallace_multiplier(int wl_a, int wl_b);

}  // namespace oclp
