#include "mult/ccm.hpp"

namespace oclp {

std::vector<int> csd_recode(std::uint64_t constant) {
  std::vector<int> digits;
  std::uint64_t v = constant;
  while (v != 0) {
    if (v & 1) {
      // Choose +1 or -1 so the remaining value stays even two steps ahead:
      // +1 when v ≡ 1 (mod 4), -1 when v ≡ 3 (mod 4).
      const int digit = (v & 2) ? -1 : 1;
      digits.push_back(digit);
      v -= static_cast<std::uint64_t>(digit);
    } else {
      digits.push_back(0);
    }
    v >>= 1;
  }
  return digits;
}

int csd_nonzero_terms(std::uint64_t constant) {
  int n = 0;
  for (int d : csd_recode(constant))
    if (d != 0) ++n;
  return n;
}

namespace {

// Two's-complement negation of a bus: invert and add one via a ripple
// half-adder chain.
std::vector<std::int32_t> negate_bus(NetlistBuilder& nb,
                                     const std::vector<std::int32_t>& a) {
  std::vector<std::int32_t> inv(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) inv[i] = nb.not_(a[i]);
  std::vector<std::int32_t> out(a.size());
  std::int32_t carry = nb.const1();
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = nb.xor_(inv[i], carry);
    if (i + 1 < a.size()) carry = nb.and_(inv[i], carry);
  }
  return out;
}

// Widen a bus to `width` bits with a zero fill.
std::vector<std::int32_t> widen(NetlistBuilder& nb, std::vector<std::int32_t> bus,
                                std::size_t width) {
  while (bus.size() < width) bus.push_back(nb.const0());
  bus.resize(width);
  return bus;
}

// acc - term over equal-width buses (modular): full-adder chain computing
// acc + ~term + 1.
std::vector<std::int32_t> ripple_sub(NetlistBuilder& nb,
                                     const std::vector<std::int32_t>& acc,
                                     const std::vector<std::int32_t>& term) {
  OCLP_CHECK(acc.size() == term.size() && !acc.empty());
  std::vector<std::int32_t> out(acc.size());
  std::int32_t carry = nb.const1();
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const auto nt = nb.not_(term[i]);
    auto [s, c] = nb.full_adder(acc[i], nt, carry);
    out[i] = s;
    carry = c;
  }
  return out;
}

// Shift-left by `k` (zero fill), truncated to `width`.
std::vector<std::int32_t> shifted(NetlistBuilder& nb,
                                  const std::vector<std::int32_t>& bus, int k,
                                  std::size_t width) {
  std::vector<std::int32_t> out;
  out.reserve(width);
  for (int i = 0; i < k && out.size() < width; ++i) out.push_back(nb.const0());
  for (std::size_t i = 0; i < bus.size() && out.size() < width; ++i)
    out.push_back(bus[i]);
  return widen(nb, std::move(out), width);
}

}  // namespace

std::vector<std::int32_t> build_ccm(NetlistBuilder& nb, std::uint32_t constant,
                                    int wl_m, const std::vector<std::int32_t>& x,
                                    bool use_csd) {
  OCLP_CHECK(wl_m >= 1 && wl_m <= 32 && !x.empty());
  OCLP_CHECK_MSG(constant < (1ull << wl_m), "constant exceeds wl_m bits");
  const std::size_t width = static_cast<std::size_t>(wl_m) + x.size();

  std::vector<std::pair<int, int>> terms;  // (shift, sign)
  if (use_csd) {
    const auto digits = csd_recode(constant);
    for (std::size_t i = 0; i < digits.size(); ++i)
      if (digits[i] != 0) terms.emplace_back(static_cast<int>(i), digits[i]);
  } else {
    for (int i = 0; i < wl_m; ++i)
      if ((constant >> i) & 1) terms.emplace_back(i, 1);
  }

  if (terms.empty()) {
    // constant == 0: the product is a zero bus.
    return widen(nb, {}, width);
  }

  // Accumulate terms in sequence (mirrors the area-efficient shift-add CCM
  // structure): acc += (±x) << shift. Negative terms add the two's
  // complement of the shifted operand; the final truncation to `width`
  // makes modular arithmetic exact because CSD sums back to the constant.
  std::vector<std::int32_t> acc;
  bool first = true;
  for (const auto& [shift, sign] : terms) {
    auto term = shifted(nb, x, shift, width);
    if (first) {
      acc = sign < 0 ? negate_bus(nb, term) : std::move(term);
      first = false;
      continue;
    }
    if (sign < 0) {
      acc = ripple_sub(nb, acc, term);
    } else {
      auto sum = nb.ripple_add(acc, term);
      sum.resize(width);  // modular truncation
      acc = std::move(sum);
    }
  }
  return acc;
}

Netlist make_ccm(std::uint32_t constant, int wl_m, int wl_x, bool use_csd) {
  OCLP_CHECK(wl_x >= 1);
  NetlistBuilder nb;
  const auto x = nb.add_inputs(static_cast<std::size_t>(wl_x));
  const auto p = build_ccm(nb, constant, wl_m, x, use_csd);
  nb.mark_outputs(p);
  return nb.build();
}

CharacterisationCost ccm_characterisation_cost(int wl_m) {
  OCLP_CHECK(wl_m >= 1 && wl_m <= 31);
  CharacterisationCost cost;
  cost.generic_circuits = 1;
  cost.ccm_circuits = std::size_t{1} << wl_m;
  cost.ccm_over_generic = static_cast<double>(cost.ccm_circuits);
  return cost;
}

}  // namespace oclp
