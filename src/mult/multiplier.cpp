#include "mult/multiplier.hpp"

#include <atomic>
#include <ostream>
#include <sstream>

#include "common/rng.hpp"
#include "mult/ccm.hpp"
#include "mult/wallace.hpp"
#include "netlist/pipeline.hpp"

namespace oclp {

namespace {
std::atomic<std::size_t> arch_builds{0};
}  // namespace

std::size_t multiplier_arch_build_count() {
  return arch_builds.load(std::memory_order_relaxed);
}

const char* mult_arch_name(MultArch arch) {
  switch (arch) {
    case MultArch::Array: return "array";
    case MultArch::Wallace: return "wallace";
    case MultArch::Ccm: return "ccm";
  }
  return "?";
}

MultArch mult_arch_from_name(const std::string& name) {
  for (MultArch arch : {MultArch::Array, MultArch::Wallace, MultArch::Ccm})
    if (name == mult_arch_name(arch)) return arch;
  OCLP_CHECK_MSG(false, "unknown multiplier architecture '" << name << "'");
}

std::string to_string(const MultConfig& config) {
  std::ostringstream os;
  os << config;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const MultConfig& config) {
  return os << mult_arch_name(config.arch) << "/wl" << config.wordlength << "/p"
            << config.pipeline_depth;
}

Netlist make_multiplier(const MultConfig& config, int wl_x) {
  OCLP_CHECK_MSG(config.pipeline_depth >= 1,
                 "pipeline depth must be >= 1 in " << config);
  return pipeline_netlist(make_multiplier_arch(config.arch, config.wordlength, wl_x),
                          config.pipeline_depth);
}

Netlist make_ccm_multiplier(const MultConfig& config, std::uint32_t constant,
                            int wl_x) {
  OCLP_CHECK_MSG(config.arch == MultArch::Ccm,
                 "per-constant factory needs a CCM config, got " << config);
  OCLP_CHECK_MSG(config.pipeline_depth >= 1,
                 "pipeline depth must be >= 1 in " << config);
  return pipeline_netlist(make_ccm(constant, config.wordlength, wl_x),
                          config.pipeline_depth);
}

std::size_t multiplier_config_logic_elements(const MultConfig& config, int wl_x) {
  OCLP_CHECK_MSG(config.arch != MultArch::Ccm,
                 "CCM logic elements are per-constant; sample constants via "
                 "the area model instead of " << config);
  return make_multiplier(config, wl_x).logic_elements();
}

std::vector<MultConfig> mult_config_range(MultArch arch, int wl_min, int wl_max,
                                          const std::vector<int>& depths) {
  OCLP_CHECK(wl_min >= 1 && wl_min <= wl_max && !depths.empty());
  std::vector<MultConfig> configs;
  configs.reserve(static_cast<std::size_t>(wl_max - wl_min + 1) * depths.size());
  for (int wl = wl_min; wl <= wl_max; ++wl)
    for (int depth : depths) configs.push_back(MultConfig{arch, wl, depth});
  return configs;
}

Netlist make_multiplier_arch(MultArch arch, int wl_a, int wl_b) {
  arch_builds.fetch_add(1, std::memory_order_relaxed);
  switch (arch) {
    case MultArch::Array: return make_multiplier(wl_a, wl_b);
    case MultArch::Wallace: return make_wallace_multiplier(wl_a, wl_b);
    case MultArch::Ccm:
      OCLP_CHECK_MSG(false,
                     "CCM has no generic netlist — the circuit depends on "
                     "the coefficient and is lowered per constant "
                     "(make_ccm)");
  }
  OCLP_CHECK_MSG(false, "unknown multiplier architecture");
}

MultiplierPorts build_array_multiplier(NetlistBuilder& nb,
                                       const std::vector<std::int32_t>& a,
                                       const std::vector<std::int32_t>& b) {
  OCLP_CHECK(!a.empty() && !b.empty());
  const std::size_t wa = a.size();

  MultiplierPorts ports;
  ports.a = a;
  ports.b = b;

  // School-method accumulation: acc holds a × b[0..j-1] after row j-1.
  std::vector<std::int32_t> acc;
  for (std::size_t j = 0; j < b.size(); ++j) {
    // Partial-product row j: (a & b[j]) with weight j.
    std::vector<std::int32_t> row(wa);
    for (std::size_t i = 0; i < wa; ++i) row[i] = nb.and_(a[i], b[j]);

    if (j == 0) {
      acc = row;
      continue;
    }
    // Bits below weight j are already final; add the row into acc[j..].
    std::vector<std::int32_t> hi(acc.begin() + static_cast<std::ptrdiff_t>(j),
                                 acc.end());
    while (hi.size() < wa) hi.push_back(nb.const0());
    const auto sum = nb.ripple_add(hi, row);  // wa+1 bits
    acc.resize(j);
    acc.insert(acc.end(), sum.begin(), sum.end());
  }
  // acc is now wa + wb bits: the full product.
  OCLP_CHECK(acc.size() == wa + b.size() || b.size() == 1);
  while (acc.size() < wa + b.size()) acc.push_back(nb.const0());
  ports.p = acc;
  return ports;
}

Netlist make_multiplier(int wl_a, int wl_b) {
  OCLP_CHECK(wl_a >= 1 && wl_b >= 1);
  NetlistBuilder nb;
  const auto a = nb.add_inputs(static_cast<std::size_t>(wl_a));
  const auto b = nb.add_inputs(static_cast<std::size_t>(wl_b));
  const auto ports = build_array_multiplier(nb, a, b);
  nb.mark_outputs(ports.p);
  return nb.build();
}

Netlist make_mac(int wl_a, int wl_b, int acc_bits) {
  OCLP_CHECK(acc_bits >= wl_a + wl_b);
  NetlistBuilder nb;
  const auto a = nb.add_inputs(static_cast<std::size_t>(wl_a));
  const auto b = nb.add_inputs(static_cast<std::size_t>(wl_b));
  const auto acc = nb.add_inputs(static_cast<std::size_t>(acc_bits));
  const auto ports = build_array_multiplier(nb, a, b);
  std::vector<std::int32_t> p = ports.p;
  while (static_cast<int>(p.size()) < acc_bits) p.push_back(nb.const0());
  const auto sum = nb.ripple_add(acc, p);
  nb.mark_outputs(sum);
  return nb.build();
}

std::size_t multiplier_logic_elements(int wl_a, int wl_b) {
  return make_multiplier(wl_a, wl_b).logic_elements();
}

double DspBlockModel::delay_ns(const Device& device, const Placement& placement) {
  // A hard 18×18 slice: ~12 equivalent gate delays of fixed silicon, with
  // the location's speed factor and environment applied but no LUT routing
  // lottery (the macro is pre-routed).
  const DeviceConfig& cfg = device.config();
  const double base = 12.0 * cfg.lut_delay_ns * 0.55;
  return base * device.speed_factor(placement.x, placement.y) *
         device.environment_derate();
}

double DspBlockModel::tool_delay_ns(const DeviceConfig& cfg) {
  const double base = 12.0 * cfg.lut_delay_ns * 0.55;
  return base * cfg.slow_corner_factor * cfg.tool_guardband;
}

}  // namespace oclp
