#include "mult/bitcodec.hpp"

namespace oclp {

std::vector<std::uint8_t> to_bits(std::uint64_t value, int bits) {
  OCLP_CHECK(bits >= 0 && bits <= 64);
  std::vector<std::uint8_t> out(bits);
  for (int i = 0; i < bits; ++i) out[i] = static_cast<std::uint8_t>((value >> i) & 1u);
  return out;
}

void append_bits(std::vector<std::uint8_t>& out, std::uint64_t value, int bits) {
  OCLP_CHECK(bits >= 0 && bits <= 64);
  for (int i = 0; i < bits; ++i)
    out.push_back(static_cast<std::uint8_t>((value >> i) & 1u));
}

std::uint64_t from_bits(const std::vector<std::uint8_t>& bits) {
  return from_bits(bits, 0, bits.size());
}

std::uint64_t from_bits(const std::vector<std::uint8_t>& bits, std::size_t offset,
                        std::size_t count) {
  OCLP_CHECK(offset + count <= bits.size() && count <= 64);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < count; ++i)
    if (bits[offset + i]) v |= std::uint64_t{1} << i;
  return v;
}

}  // namespace oclp
