// The automated characterisation process of paper Section III-B/C:
// enumerate every multiplicand value of the wl-bit port, stimulate the
// other port with a uniform pseudo-random stream, sweep clock frequencies
// and placements, and aggregate the observed errors into an ErrorModel.
// The sweep is embarrassingly parallel over multiplicands and runs on the
// shared thread pool. Each location's circuit is constructed exactly once
// per sweep and shared read-only by the workers; every frequency point of
// E(m, f) comes from a single pass over the stimulus stream
// (CharacterisationCircuit::run_multi).
#pragma once

#include <cstdint>
#include <vector>

#include "charlib/char_circuit.hpp"
#include "charlib/error_model.hpp"
#include "common/exec_policy.hpp"
#include "fabric/device.hpp"

namespace oclp {

struct SweepSettings {
  std::vector<double> freqs_mhz;       ///< characterised frequency grid
  std::vector<Placement> locations;    ///< placements to aggregate over
  std::size_t samples_per_point = 1000;  ///< stream length per (m, f, loc)
  std::uint64_t stream_seed = 2014;    ///< seed of the stimulus stream
  bool with_jitter = true;
  double fsm_clock_mhz = 50.0;
  std::size_t bram_depth = 8192;
};

/// Characterise a `config` multiplier (architecture × word-length ×
/// pipeline depth) against a wl_x-bit data port on `device`: E(m, f)
/// averaged over the requested locations (each location also re-rolls
/// routing). The returned model is tagged with `config`. The default
/// policy fans the multiplicands out over the global pool; any policy
/// yields bitwise-identical models (per-multiplicand rows are independent
/// and each row's statistics fold in stream order).
ErrorModel characterise_multiplier(const Device& device,
                                   const MultConfig& config, int wl_x,
                                   const SweepSettings& settings,
                                   const ExecPolicy& exec = {});

/// Surrogate characterisation: fully sweep only every `probe_stride`-th
/// multiplicand row (plus both endpoints) and fill the unprobed rows by
/// per-frequency linear interpolation across the multiplicand axis. The
/// result is a cheap E(m, f) estimate for *ranking* configurations during
/// shortlisting — shortlisted configs must still be re-swept fully before
/// their model is trusted for prior construction or serving.
struct SurrogateSweep {
  ErrorModel model;           ///< interpolated estimate, tagged with config
  std::size_t probed_rows = 0;  ///< multiplicand rows actually simulated
  std::size_t total_rows = 0;   ///< 2^wordlength
};
SurrogateSweep characterise_multiplier_surrogate(
    const Device& device, const MultConfig& config, int wl_x,
    const SweepSettings& settings, std::size_t probe_stride,
    const ExecPolicy& exec = {});

/// Uniform stream of `n` values in [0, 2^wl_x).
std::vector<std::uint32_t> uniform_stream(int wl_x, std::size_t n,
                                          std::uint64_t seed);

/// Subsampled online re-characterisation — the low-rate control-plane path
/// a serving fleet runs while requests keep flowing. Instead of the full
/// 2^wl × grid sweep, it probes a focus list of multiplicands (typically
/// the deployed design's coefficient magnitudes) plus an optional strided
/// coverage slice that rotates with `m_phase` across cycles, re-measuring
/// only those rows of an existing ErrorModel in place on an already-built
/// CharacterisationCircuit (one run_multi pass per code).
struct SubsweepSettings {
  /// Codes to probe; may be empty if m_stride covers the slice instead.
  std::vector<std::uint32_t> multiplicands;
  /// Additional stride coverage: probe codes ≡ (m_phase mod m_stride);
  /// 0 disables. Successive cycles bump m_phase to walk the full space.
  std::size_t m_stride = 0;
  std::uint64_t m_phase = 0;
  std::size_t samples_per_point = 200;
  std::uint64_t stream_seed = 2014;
  /// Emulated environment drift, exactly ProjectionCircuit::set_clock's
  /// rule (delay × d ≡ capture period / d): the probe runs at freq × d and
  /// records under the nominal grid frequency, i.e. it measures the die as
  /// it currently is. 1.0 characterises the nominal environment.
  double timing_derate = 1.0;
};

struct SubsweepReport {
  std::size_t probed = 0;  ///< multiplicand rows re-measured
  /// Grid points not probeable because the derated frequency reached the
  /// supporting-logic Fmax; treated as erroneous for the fB estimate.
  std::size_t skipped_freqs = 0;
  /// Highest grid frequency below the first erroneous probed point
  /// (find_regimes' fB rule restricted to the probed codes); 0 when even
  /// the lowest grid point errs.
  double error_free_fmax_mhz = 0.0;
};

/// Probe `model`'s grid on `circuit` per `settings`, updating the probed
/// rows of `model` in place (unprobed rows keep their previous values).
/// The circuit's multiplier configuration must equal the model's tag
/// (require_config — a model swept on one architecture/depth must not be
/// refreshed from another's circuit). The default policy is
/// serial — the deliberate choice for the low-rate online path, which must
/// not steal serving threads.
SubsweepReport recharacterise_multiplier(const CharacterisationCircuit& circuit,
                                         ErrorModel& model,
                                         const SubsweepSettings& settings,
                                         const ExecPolicy& exec =
                                             ExecPolicy::serial());

/// Figure-1 style curve: fraction of erroneous outputs of a multiplier vs
/// clock frequency, with both operands drawn uniformly per cycle.
struct ErrorRatePoint {
  double freq_mhz = 0.0;
  double error_rate = 0.0;
  double error_variance = 0.0;
};
std::vector<ErrorRatePoint> error_rate_curve(const Device& device, int wl_a,
                                             int wl_b, const Placement& placement,
                                             const std::vector<double>& freqs_mhz,
                                             std::size_t samples,
                                             std::uint64_t seed = 99,
                                             const ExecPolicy& exec = {});

/// Operating-regime summary extracted from an error-rate curve: fB = the
/// highest frequency below the first erroneous point, fC = the highest
/// frequency below the first point whose error rate reaches
/// `meaningful_rate` (above fC the design "doesn't produce meaningful
/// results"). Points are considered in ascending frequency order, so a
/// spurious zero-error measurement above the error onset cannot extend
/// either regime.
struct OperatingRegimes {
  double error_free_fmax_mhz = 0.0;  ///< fB
  double usable_fmax_mhz = 0.0;      ///< fC
};
OperatingRegimes find_regimes(const std::vector<ErrorRatePoint>& curve,
                              double meaningful_rate = 0.5);

}  // namespace oclp
