#include "charlib/error_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace oclp {

ErrorModel::ErrorModel(const MultConfig& config, int wl_x,
                       std::vector<double> freqs_mhz)
    : config_(config), wl_x_(wl_x), freqs_(std::move(freqs_mhz)) {
  OCLP_CHECK(config.wordlength >= 1 && config.wordlength <= 16 && wl_x >= 1 &&
             wl_x <= 16);
  OCLP_CHECK_MSG(config.pipeline_depth >= 1,
                 "error model config " << config << " has pipeline depth < 1");
  OCLP_CHECK_MSG(!freqs_.empty(), "error model needs at least one frequency");
  // Strictly ascending: a merely sorted grid with duplicates would make
  // locate() divide by a zero frequency gap, and an unsorted one silently
  // mis-interpolates.
  OCLP_CHECK_MSG(std::adjacent_find(freqs_.begin(), freqs_.end(),
                                    [](double a, double b) { return b <= a; }) ==
                     freqs_.end(),
                 "frequency grid must be strictly ascending "
                 "(sorted, duplicate-free)");
  const std::size_t n = num_multiplicands() * freqs_.size();
  var_.assign(n, 0.0);
  mean_.assign(n, 0.0);
  rate_.assign(n, 0.0);
}

void ErrorModel::set(std::uint32_t m, std::size_t freq_index, double variance,
                     double mean_error, double error_rate) {
  OCLP_CHECK(variance >= 0.0 && error_rate >= 0.0 && error_rate <= 1.0);
  const auto i = index(m, freq_index);
  var_[i] = variance;
  mean_[i] = mean_error;
  rate_[i] = error_rate;
}

void ErrorModel::locate(double freq_mhz, std::size_t& i0, std::size_t& i1,
                        double& t) const {
  OCLP_CHECK(!freqs_.empty());
  if (freq_mhz <= freqs_.front()) {
    i0 = i1 = 0;
    t = 0.0;
    return;
  }
  if (freq_mhz >= freqs_.back()) {
    i0 = i1 = freqs_.size() - 1;
    t = 0.0;
    return;
  }
  const auto it = std::upper_bound(freqs_.begin(), freqs_.end(), freq_mhz);
  i1 = static_cast<std::size_t>(it - freqs_.begin());
  i0 = i1 - 1;
  t = (freq_mhz - freqs_[i0]) / (freqs_[i1] - freqs_[i0]);
}

double ErrorModel::variance(std::uint32_t m, double freq_mhz) const {
  std::size_t i0, i1;
  double t;
  locate(freq_mhz, i0, i1, t);
  return (1.0 - t) * var_[index(m, i0)] + t * var_[index(m, i1)];
}

double ErrorModel::mean_error(std::uint32_t m, double freq_mhz) const {
  std::size_t i0, i1;
  double t;
  locate(freq_mhz, i0, i1, t);
  return (1.0 - t) * mean_[index(m, i0)] + t * mean_[index(m, i1)];
}

double ErrorModel::error_rate(std::uint32_t m, double freq_mhz) const {
  std::size_t i0, i1;
  double t;
  locate(freq_mhz, i0, i1, t);
  return (1.0 - t) * rate_[index(m, i0)] + t * rate_[index(m, i1)];
}

void ErrorModel::require_config(const MultConfig& expected,
                                const char* context) const {
  OCLP_CHECK_MSG(config_ == expected,
                 context << ": error model characterised for " << config_
                         << " cannot be applied to " << expected);
}

double ErrorModel::variance_value_units(std::uint32_t m, double freq_mhz) const {
  // 2^(wl_m + wl_x)
  const double scale = std::ldexp(1.0, config_.wordlength + wl_x_);
  return variance(m, freq_mhz) / (scale * scale);
}

double ErrorModel::max_variance() const {
  return var_.empty() ? 0.0 : *std::max_element(var_.begin(), var_.end());
}

void ErrorModel::save_csv(std::ostream& os) const {
  os << "arch,wl_m,pipeline_depth,wl_x,m,freq_mhz,variance,mean_error,"
        "error_rate\n";
  os.precision(17);
  const char* arch = mult_arch_name(config_.arch);
  for (std::uint32_t m = 0; m < num_multiplicands(); ++m)
    for (std::size_t fi = 0; fi < freqs_.size(); ++fi)
      os << arch << ',' << config_.wordlength << ',' << config_.pipeline_depth
         << ',' << wl_x_ << ',' << m << ',' << freqs_[fi] << ','
         << var_[index(m, fi)] << ',' << mean_[index(m, fi)] << ','
         << rate_[index(m, fi)] << '\n';
}

void ErrorModel::save_csv_file(const std::string& path) const {
  std::ofstream os(path);
  OCLP_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  save_csv(os);
}

namespace {

// Strict field parsers: the whole field must be consumed (no trailing
// garbage, no empty fields) so a truncated or shifted row fails loudly
// instead of silently mis-filling the table.
double parse_double_field(const std::string& field, const char* what,
                          std::size_t lineno) {
  const char* begin = field.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  OCLP_CHECK_MSG(!field.empty() && end == begin + field.size(),
                 "error-model line " << lineno << ": non-numeric " << what
                                     << " field '" << field << "'");
  OCLP_CHECK_MSG(std::isfinite(v),
                 "error-model line " << lineno << ": non-finite " << what);
  return v;
}

long parse_int_field(const std::string& field, const char* what,
                     std::size_t lineno) {
  const char* begin = field.c_str();
  char* end = nullptr;
  const long v = std::strtol(begin, &end, 10);
  OCLP_CHECK_MSG(!field.empty() && end == begin + field.size(),
                 "error-model line " << lineno << ": non-integer " << what
                                     << " field '" << field << "'");
  return v;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace

ErrorModel ErrorModel::load_csv(std::istream& is) {
  std::string line;
  OCLP_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
                 "empty error-model stream");
  OCLP_CHECK_MSG(
      line.rfind("arch,wl_m,pipeline_depth,wl_x,m,freq_mhz", 0) == 0,
      "not an error-model CSV (bad header): " << line);

  struct Row {
    MultConfig config;
    int wl_x;
    std::uint32_t m;
    double freq, var, mean, rate;
  };
  std::vector<Row> rows;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto fields = split_fields(line);
    OCLP_CHECK_MSG(fields.size() == 9,
                   "error-model line " << lineno << " has " << fields.size()
                                       << " fields, expected 9: " << line);
    Row r{};
    r.config.arch = mult_arch_from_name(fields[0]);
    const long wl_m = parse_int_field(fields[1], "wl_m", lineno);
    const long depth = parse_int_field(fields[2], "pipeline_depth", lineno);
    const long wl_x = parse_int_field(fields[3], "wl_x", lineno);
    OCLP_CHECK_MSG(wl_m >= 1 && wl_m <= 16 && wl_x >= 1 && wl_x <= 16,
                   "error-model line " << lineno << ": word-lengths (" << wl_m
                                       << ", " << wl_x
                                       << ") outside the supported 1..16");
    OCLP_CHECK_MSG(depth >= 1, "error-model line "
                                   << lineno << ": pipeline depth " << depth
                                   << " < 1");
    r.config.wordlength = static_cast<int>(wl_m);
    r.config.pipeline_depth = static_cast<int>(depth);
    r.wl_x = static_cast<int>(wl_x);
    const long m = parse_int_field(fields[4], "m", lineno);
    OCLP_CHECK_MSG(m >= 0 && m < (1L << r.config.wordlength),
                   "error-model line "
                       << lineno << ": multiplicand " << m
                       << " out of range for wl_m=" << r.config.wordlength);
    r.m = static_cast<std::uint32_t>(m);
    r.freq = parse_double_field(fields[5], "freq_mhz", lineno);
    OCLP_CHECK_MSG(r.freq > 0.0, "error-model line " << lineno
                                                     << ": frequency "
                                                     << r.freq << " <= 0");
    r.var = parse_double_field(fields[6], "variance", lineno);
    r.mean = parse_double_field(fields[7], "mean_error", lineno);
    r.rate = parse_double_field(fields[8], "error_rate", lineno);
    OCLP_CHECK_MSG(r.var >= 0.0 && r.rate >= 0.0 && r.rate <= 1.0,
                   "error-model line "
                       << lineno << ": variance/rate out of range (var="
                       << r.var << ", rate=" << r.rate << ")");
    rows.push_back(r);
  }
  OCLP_CHECK_MSG(!rows.empty(), "error-model stream has a header but no rows");

  // Sorted-unique pass over the frequency column: a per-row linear scan is
  // O(rows²) on large multi-frequency grids.
  std::vector<double> freqs;
  freqs.reserve(rows.size());
  for (const auto& r : rows) freqs.push_back(r.freq);
  std::sort(freqs.begin(), freqs.end());
  freqs.erase(std::unique(freqs.begin(), freqs.end()), freqs.end());

  ErrorModel model(rows.front().config, rows.front().wl_x, freqs);
  // Rows may cover the (m, f) grid sparsely (missing cells stay zero), but
  // conflicting duplicates would silently last-write-win — reject them.
  std::vector<std::uint8_t> seen(model.var_.size(), 0);
  for (const auto& r : rows) {
    OCLP_CHECK_MSG(r.config == model.config_ && r.wl_x == model.wl_x_,
                   "mixed configurations in one error-model file: "
                       << r.config << " x wl_x=" << r.wl_x << " after "
                       << model.config_ << " x wl_x=" << model.wl_x_);
    const auto it = std::lower_bound(freqs.begin(), freqs.end(), r.freq);
    const auto fi = static_cast<std::size_t>(it - freqs.begin());
    const auto cell = model.index(r.m, fi);
    OCLP_CHECK_MSG(!seen[cell], "duplicate error-model row for m=" << r.m
                                                                   << ", freq="
                                                                   << r.freq);
    seen[cell] = 1;
    model.set(r.m, fi, r.var, r.mean, r.rate);
  }
  return model;
}

ErrorModel ErrorModel::load_csv_file(const std::string& path) {
  std::ifstream is(path);
  OCLP_CHECK_MSG(is.good(), "cannot open " << path);
  return load_csv(is);
}

SharedErrorModels::SharedErrorModels()
    : current_(std::make_shared<const Map>()) {}

SharedErrorModels::SharedErrorModels(Map initial)
    : current_(std::make_shared<const Map>(std::move(initial))) {}

std::shared_ptr<const SharedErrorModels::Map> SharedErrorModels::load() const {
  std::lock_guard lock(mutex_);
  return current_;
}

void SharedErrorModels::store(Map next) {
  auto snapshot = std::make_shared<const Map>(std::move(next));
  std::lock_guard lock(mutex_);
  current_ = std::move(snapshot);
  ++generation_;
}

std::uint64_t SharedErrorModels::generation() const {
  std::lock_guard lock(mutex_);
  return generation_;
}

}  // namespace oclp
