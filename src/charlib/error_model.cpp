#include "charlib/error_model.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace oclp {

ErrorModel::ErrorModel(int wl_m, int wl_x, std::vector<double> freqs_mhz)
    : wl_m_(wl_m), wl_x_(wl_x), freqs_(std::move(freqs_mhz)) {
  OCLP_CHECK(wl_m >= 1 && wl_m <= 16 && wl_x >= 1 && wl_x <= 16);
  OCLP_CHECK_MSG(!freqs_.empty(), "error model needs at least one frequency");
  OCLP_CHECK_MSG(std::is_sorted(freqs_.begin(), freqs_.end()),
                 "frequency grid must be ascending");
  const std::size_t n = num_multiplicands() * freqs_.size();
  var_.assign(n, 0.0);
  mean_.assign(n, 0.0);
  rate_.assign(n, 0.0);
}

void ErrorModel::set(std::uint32_t m, std::size_t freq_index, double variance,
                     double mean_error, double error_rate) {
  OCLP_CHECK(variance >= 0.0 && error_rate >= 0.0 && error_rate <= 1.0);
  const auto i = index(m, freq_index);
  var_[i] = variance;
  mean_[i] = mean_error;
  rate_[i] = error_rate;
}

void ErrorModel::locate(double freq_mhz, std::size_t& i0, std::size_t& i1,
                        double& t) const {
  OCLP_CHECK(!freqs_.empty());
  if (freq_mhz <= freqs_.front()) {
    i0 = i1 = 0;
    t = 0.0;
    return;
  }
  if (freq_mhz >= freqs_.back()) {
    i0 = i1 = freqs_.size() - 1;
    t = 0.0;
    return;
  }
  const auto it = std::upper_bound(freqs_.begin(), freqs_.end(), freq_mhz);
  i1 = static_cast<std::size_t>(it - freqs_.begin());
  i0 = i1 - 1;
  t = (freq_mhz - freqs_[i0]) / (freqs_[i1] - freqs_[i0]);
}

double ErrorModel::variance(std::uint32_t m, double freq_mhz) const {
  std::size_t i0, i1;
  double t;
  locate(freq_mhz, i0, i1, t);
  return (1.0 - t) * var_[index(m, i0)] + t * var_[index(m, i1)];
}

double ErrorModel::mean_error(std::uint32_t m, double freq_mhz) const {
  std::size_t i0, i1;
  double t;
  locate(freq_mhz, i0, i1, t);
  return (1.0 - t) * mean_[index(m, i0)] + t * mean_[index(m, i1)];
}

double ErrorModel::error_rate(std::uint32_t m, double freq_mhz) const {
  std::size_t i0, i1;
  double t;
  locate(freq_mhz, i0, i1, t);
  return (1.0 - t) * rate_[index(m, i0)] + t * rate_[index(m, i1)];
}

double ErrorModel::variance_value_units(std::uint32_t m, double freq_mhz) const {
  const double scale = std::ldexp(1.0, wl_m_ + wl_x_);  // 2^(wl_m + wl_x)
  return variance(m, freq_mhz) / (scale * scale);
}

double ErrorModel::max_variance() const {
  return var_.empty() ? 0.0 : *std::max_element(var_.begin(), var_.end());
}

void ErrorModel::save_csv(std::ostream& os) const {
  os << "wl_m,wl_x,m,freq_mhz,variance,mean_error,error_rate\n";
  os.precision(17);
  for (std::uint32_t m = 0; m < num_multiplicands(); ++m)
    for (std::size_t fi = 0; fi < freqs_.size(); ++fi)
      os << wl_m_ << ',' << wl_x_ << ',' << m << ',' << freqs_[fi] << ','
         << var_[index(m, fi)] << ',' << mean_[index(m, fi)] << ','
         << rate_[index(m, fi)] << '\n';
}

void ErrorModel::save_csv_file(const std::string& path) const {
  std::ofstream os(path);
  OCLP_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  save_csv(os);
}

ErrorModel ErrorModel::load_csv(std::istream& is) {
  std::string line;
  OCLP_CHECK_MSG(std::getline(is, line), "empty error-model stream");

  struct Row {
    int wl_m, wl_x;
    std::uint32_t m;
    double freq, var, mean, rate;
  };
  std::vector<Row> rows;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    Row r{};
    char comma;
    std::istringstream ls(line);
    ls >> r.wl_m >> comma >> r.wl_x >> comma >> r.m >> comma >> r.freq >>
        comma >> r.var >> comma >> r.mean >> comma >> r.rate;
    OCLP_CHECK_MSG(!ls.fail(), "malformed error-model row: " << line);
    rows.push_back(r);
  }
  OCLP_CHECK(!rows.empty());

  // Sorted-unique pass over the frequency column: a per-row linear scan is
  // O(rows²) on large multi-frequency grids.
  std::vector<double> freqs;
  freqs.reserve(rows.size());
  for (const auto& r : rows) freqs.push_back(r.freq);
  std::sort(freqs.begin(), freqs.end());
  freqs.erase(std::unique(freqs.begin(), freqs.end()), freqs.end());

  ErrorModel model(rows.front().wl_m, rows.front().wl_x, freqs);
  for (const auto& r : rows) {
    OCLP_CHECK_MSG(r.wl_m == model.wl_m_ && r.wl_x == model.wl_x_,
                   "mixed word-lengths in one error-model file");
    const auto it = std::lower_bound(freqs.begin(), freqs.end(), r.freq);
    model.set(r.m, static_cast<std::size_t>(it - freqs.begin()), r.var, r.mean,
              r.rate);
  }
  return model;
}

ErrorModel ErrorModel::load_csv_file(const std::string& path) {
  std::ifstream is(path);
  OCLP_CHECK_MSG(is.good(), "cannot open " << path);
  return load_csv(is);
}

}  // namespace oclp
