// The multiplier characterisation circuit of paper Figure 3.
//
// Structure: an "input stream" BRAM feeds the multiplier under test, whose
// outputs land in an "output stream" BRAM; a PLL generates the swept
// mult_clk for the DUT and a slow fsm_clk for the FSM/BRAM interface; the
// host loads stimuli and retrieves results (JTAG in the paper). The
// supporting modules are engineered so their critical path stays far above
// the DUT's error region — the model verifies that invariant instead of
// assuming it.
//
// Characterisation offers two drivers:
//  * run()       — the per-frequency reference path: a full two-frame
//                  simulation of the stream at one clock frequency.
//  * run_multi() — the single-pass path: settle times are frequency-
//                  independent (inputs are registered and the previous
//                  frame is always fully settled), so one pass over the
//                  stream yields the traces of *all* frequency points by
//                  threshold-sampling each sample's settle snapshot at
//                  every period. run_multi() is const and thread-safe over
//                  caller-owned workspaces, which lets a sweep share one
//                  circuit per location across all multiplicands.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/clock.hpp"
#include "fabric/device.hpp"
#include "mult/multiplier.hpp"
#include "timing/overclock_sim.hpp"

namespace oclp {

struct CharCircuitConfig {
  /// Design-under-test configuration: architecture, multiplicand
  /// word-length and pipeline depth. For MultArch::Ccm the circuit is
  /// per-constant, so the characterisation rig eagerly lowers one DUT per
  /// multiplicand value (2^wordlength circuits — the predecessor work's
  /// cost explosion, realised; see ccm_characterisation_cost).
  MultConfig mult;
  int wl_x = 8;   ///< streamed-operand port width
  double fsm_clock_mhz = 50.0;   ///< supporting-domain clock
  std::size_t bram_depth = 8192; ///< stream BRAM words per batch
  bool with_jitter = true;       ///< model PLL cycle-to-cycle jitter
};

/// One characterisation batch result. error[i] = observed[i] - expected[i]
/// in raw product-code units (as plotted in the paper's Figure 4).
struct CharTrace {
  std::vector<std::uint64_t> observed;
  std::vector<std::uint64_t> expected;
  std::vector<std::int64_t> error;
  std::size_t erroneous = 0;     ///< count of error[i] != 0
  std::size_t fsm_cycles = 0;    ///< supporting-domain cycles consumed
};

class CharacterisationCircuit {
 public:
  /// Per-thread scratch state for the const run_multi() path: the sim
  /// state, the batched stream snapshot, and the flattened input-bit
  /// matrix. Reusing one workspace across calls keeps the hot path free of
  /// heap allocation.
  struct Workspace {
    OverclockSim::State sim;
    OverclockSim::SweepStream stream;
    std::vector<std::uint8_t> input_bits;  ///< row-major samples x inputs
  };

  CharacterisationCircuit(const CharCircuitConfig& cfg, const Device& device,
                          const Placement& placement);

  const CharCircuitConfig& config() const { return cfg_; }
  /// DUT netlist streamed for multiplicand `m`: the single generic circuit
  /// for Array/Wallace (m rides the input bus), the per-constant CCM cell
  /// otherwise.
  const Netlist& dut(std::uint32_t m = 0) const { return sim_for(m).netlist(); }

  /// Conservative Fmax of the DUT as the synthesis tool reports (fA);
  /// worst case over the per-constant circuits for CCM.
  double dut_tool_fmax_mhz() const { return dut_tool_fmax_mhz_; }
  /// Device-view zero-slack Fmax of the DUT at this placement (no margin);
  /// worst case over the per-constant circuits for CCM.
  double dut_device_fmax_mhz() const { return dut_device_fmax_mhz_; }
  /// Device-view Fmax of the supporting FSM/BRAM logic.
  double support_fmax_mhz() const { return support_fmax_mhz_; }

  /// Stream `xs` through the DUT with the multiplicand fixed to `m`,
  /// clocked at `freq_mhz`. Throws if the supporting logic could not keep
  /// up (the framework must never inject errors of its own). This is the
  /// per-frequency reference path; characterisation sweeps use
  /// run_multi() instead.
  CharTrace run(std::uint32_t m, const std::vector<std::uint32_t>& xs,
                double freq_mhz, std::uint64_t jitter_seed = 1);

  /// Single pass over `xs` yielding one trace per entry of `freqs_mhz`.
  /// PLL jitter (when configured) is drawn once per sample and applied to
  /// every frequency's period, so each frequency's period sequence has
  /// exactly the per-frequency path's distribution; with jitter disabled
  /// the traces are bitwise identical to running run() per frequency.
  /// Thread-safe: concurrent calls must pass distinct workspaces (or
  /// nullptr for a call-local one).
  std::vector<CharTrace> run_multi(std::uint32_t m,
                                   const std::vector<std::uint32_t>& xs,
                                   const std::vector<double>& freqs_mhz,
                                   std::uint64_t jitter_seed = 1,
                                   Workspace* workspace = nullptr) const;

  /// Test hook: process-wide count of CharacterisationCircuit
  /// constructions, to pin "one circuit per location per sweep".
  static std::size_t construction_count();

 private:
  const OverclockSim& sim_for(std::uint32_t m) const {
    return ccm_ ? sims_[m] : sims_[0];
  }
  OverclockSim& sim_for(std::uint32_t m) { return ccm_ ? sims_[m] : sims_[0]; }

  CharCircuitConfig cfg_;
  const Device* device_;
  Placement placement_;
  bool ccm_ = false;
  /// One sim for the generic architectures; 2^wl_m per-constant sims for
  /// CCM (indexed by multiplicand value).
  std::vector<OverclockSim> sims_;
  double dut_tool_fmax_mhz_ = 0.0;
  double dut_device_fmax_mhz_ = 0.0;
  double support_fmax_mhz_ = 0.0;
};

/// The supporting-logic netlist (BRAM address counter + FSM next-state
/// cone). Exposed so tests can confirm it is much shallower than any DUT.
Netlist make_support_logic(std::size_t bram_depth);

/// Per-product-bit error rates of a trace: fraction of samples where bit k
/// of the observed product differs from the expected one. The paper's
/// Figure-4 commentary ("the MSbs exhibit the longest paths") is this
/// profile: the top bits dominate under over-clocking.
std::vector<double> bit_error_profile(const CharTrace& trace, int product_bits);

}  // namespace oclp
