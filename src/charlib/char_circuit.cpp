#include "charlib/char_circuit.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "fabric/timing_annotation.hpp"
#include "mult/bitcodec.hpp"
#include "netlist/sta.hpp"

namespace oclp {

namespace {

std::atomic<std::size_t> circuit_constructions{0};

// Build the DUT simulator(s) without duplicating netlists: one build, one
// annotation pass per netlist. Generic architectures need exactly one sim;
// CCM lowers one circuit per multiplicand value (all at the same placement
// — reprogramming the constant re-routes the same site).
std::vector<OverclockSim> make_dut_sims(const CharCircuitConfig& cfg,
                                        const Device& device,
                                        const Placement& placement) {
  std::vector<OverclockSim> sims;
  auto lower = [&](Netlist dut) {
    std::vector<double> delays = annotate_timing(dut, device, placement);
    // Calibrated delays are PsGrid-snapped, so the integer settle kernel is
    // required to lower — an off-grid delay here is a calibration bug.
    sims.emplace_back(std::move(dut), std::move(delays),
                      TimingMode::IntegerExact);
  };
  if (cfg.mult.arch == MultArch::Ccm) {
    const std::uint32_t count = 1u << cfg.mult.wordlength;
    sims.reserve(count);
    for (std::uint32_t m = 0; m < count; ++m)
      lower(make_ccm_multiplier(cfg.mult, m, cfg.wl_x));
  } else {
    lower(make_multiplier(cfg.mult, cfg.wl_x));
  }
  return sims;
}

// Balanced AND over a bit range with memoised subranges — the carry cone of
// a fast (carry-select-like) BRAM address counter has logarithmic depth.
std::int32_t range_and(NetlistBuilder& nb, const std::vector<std::int32_t>& bits,
                       std::size_t lo, std::size_t hi,
                       std::map<std::pair<std::size_t, std::size_t>, std::int32_t>& memo) {
  OCLP_CHECK(lo < hi);
  if (hi - lo == 1) return bits[lo];
  const auto key = std::make_pair(lo, hi);
  if (auto it = memo.find(key); it != memo.end()) return it->second;
  const std::size_t mid = lo + (hi - lo) / 2;
  const auto net = nb.and_(range_and(nb, bits, lo, mid, memo),
                           range_and(nb, bits, mid, hi, memo));
  memo.emplace(key, net);
  return net;
}

}  // namespace

std::size_t CharacterisationCircuit::construction_count() {
  return circuit_constructions.load(std::memory_order_relaxed);
}

Netlist make_support_logic(std::size_t bram_depth) {
  OCLP_CHECK(bram_depth >= 2);
  int addr_bits = 1;
  while ((std::size_t{1} << addr_bits) < bram_depth) ++addr_bits;

  NetlistBuilder nb;
  const auto addr = nb.add_inputs(static_cast<std::size_t>(addr_bits));
  const auto state = nb.add_inputs(2);  // FSM state register (LOAD/RUN/DRAIN)
  const auto run_en = nb.add_input();

  // Incrementer: next[i] = addr[i] XOR AND(addr[0..i-1]); log-depth carries.
  std::map<std::pair<std::size_t, std::size_t>, std::int32_t> memo;
  std::vector<std::int32_t> next(addr_bits);
  next[0] = nb.not_(addr[0]);
  for (int i = 1; i < addr_bits; ++i) {
    const auto carry = range_and(nb, addr, 0, static_cast<std::size_t>(i), memo);
    next[i] = nb.xor_(addr[i], carry);
  }
  // FSM next-state cone: advance on terminal count while running.
  const auto all_ones = range_and(nb, addr, 0, static_cast<std::size_t>(addr_bits), memo);
  const auto advance = nb.and_(all_ones, run_en);
  const auto next_s0 = nb.xor_(state[0], advance);
  const auto next_s1 = nb.xor_(state[1], nb.and_(state[0], advance));
  for (int i = 0; i < addr_bits; ++i) nb.mark_output(next[i]);
  nb.mark_output(next_s0);
  nb.mark_output(next_s1);
  return nb.build();
}

std::vector<double> bit_error_profile(const CharTrace& trace, int product_bits) {
  OCLP_CHECK(product_bits >= 1 && product_bits <= 63);
  OCLP_CHECK(trace.observed.size() == trace.expected.size());
  std::vector<double> profile(product_bits, 0.0);
  if (trace.observed.empty()) return profile;
  for (std::size_t i = 0; i < trace.observed.size(); ++i) {
    const std::uint64_t flips = trace.observed[i] ^ trace.expected[i];
    for (int b = 0; b < product_bits; ++b)
      if ((flips >> b) & 1) profile[b] += 1.0;
  }
  for (double& p : profile) p /= static_cast<double>(trace.observed.size());
  return profile;
}

CharacterisationCircuit::CharacterisationCircuit(const CharCircuitConfig& cfg,
                                                 const Device& device,
                                                 const Placement& placement)
    : cfg_(cfg),
      device_(&device),
      placement_(placement),
      ccm_(cfg.mult.arch == MultArch::Ccm),
      sims_(make_dut_sims(cfg, device, placement)) {
  OCLP_CHECK(cfg.mult.wordlength >= 1 && cfg.wl_x >= 1 && cfg.bram_depth >= 2);
  circuit_constructions.fetch_add(1, std::memory_order_relaxed);

  // Worst case over the lowered circuits (one for the generic
  // architectures, per-constant for CCM): the rig must be safe for every
  // multiplicand it streams.
  dut_tool_fmax_mhz_ = std::numeric_limits<double>::infinity();
  dut_device_fmax_mhz_ = std::numeric_limits<double>::infinity();
  for (const OverclockSim& sim : sims_) {
    dut_tool_fmax_mhz_ = std::min(
        dut_tool_fmax_mhz_, tool_fmax_mhz(sim.netlist(), device.config()));
    dut_device_fmax_mhz_ = std::min(
        dut_device_fmax_mhz_,
        fmax_mhz(device_critical_path_ns(sim.netlist(), device, placement)));
  }

  // The supporting modules live next to the DUT; their placement is part of
  // the same P&R run.
  const Netlist support = make_support_logic(cfg.bram_depth);
  Placement support_place = placement;
  support_place.x += 2;
  support_place.route_seed = hash_mix(placement.route_seed, 0xf5afULL);
  support_fmax_mhz_ =
      fmax_mhz(device_critical_path_ns(support, device, support_place));
}

CharTrace CharacterisationCircuit::run(std::uint32_t m,
                                       const std::vector<std::uint32_t>& xs,
                                       double freq_mhz, std::uint64_t jitter_seed) {
  const int wl_m = cfg_.mult.wordlength;
  OCLP_CHECK_MSG(m < (1u << wl_m), "multiplicand " << m << " exceeds "
                                            << wl_m << " bits");
  // The framework must only measure DUT errors: the DUT clock has to stay
  // below the supporting-logic limit, and the FSM domain below both.
  OCLP_CHECK_MSG(freq_mhz < support_fmax_mhz_,
                 "mult_clk " << freq_mhz << " MHz exceeds supporting-logic Fmax "
                             << support_fmax_mhz_ << " MHz");
  OCLP_CHECK_MSG(cfg_.fsm_clock_mhz < support_fmax_mhz_,
                 "fsm_clk exceeds supporting-logic Fmax");

  ClockGen clock(freq_mhz, cfg_.with_jitter ? device_->config().jitter_sigma_ns : 0.0,
                 hash_mix(jitter_seed, m, static_cast<std::uint64_t>(freq_mhz * 1e3)));

  CharTrace trace;
  trace.observed.reserve(xs.size());
  trace.expected.reserve(xs.size());
  trace.error.reserve(xs.size());

  // The per-constant CCM cell has no multiplicand bus — m is baked in.
  OverclockSim& sim = sim_for(m);
  std::vector<std::uint8_t> in;
  in.reserve(static_cast<std::size_t>(wl_m + cfg_.wl_x));
  auto encode = [&](std::uint32_t x) {
    in.clear();
    if (!ccm_) append_bits(in, m, wl_m);
    append_bits(in, x, cfg_.wl_x);
  };

  encode(0);
  sim.reset(in);

  std::size_t processed = 0;
  while (processed < xs.size()) {
    const std::size_t batch = std::min(cfg_.bram_depth, xs.size() - processed);
    // FSM bookkeeping: LOAD fills the input BRAM, RUN streams it through
    // the DUT, DRAIN empties the output BRAM — all in the fsm_clk domain.
    trace.fsm_cycles += 2 * batch + 4;
    for (std::size_t i = 0; i < batch; ++i) {
      const std::uint32_t x = xs[processed + i];
      OCLP_DCHECK(x < (1u << cfg_.wl_x));
      encode(x);
      const auto& out = sim.step(in, clock.next_period_ns());
      const std::uint64_t obs = from_bits(out);
      const std::uint64_t exp =
          static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(x);
      trace.observed.push_back(obs);
      trace.expected.push_back(exp);
      trace.error.push_back(static_cast<std::int64_t>(obs) -
                            static_cast<std::int64_t>(exp));
      if (obs != exp) ++trace.erroneous;
    }
    processed += batch;
  }
  return trace;
}

std::vector<CharTrace> CharacterisationCircuit::run_multi(
    std::uint32_t m, const std::vector<std::uint32_t>& xs,
    const std::vector<double>& freqs_mhz, std::uint64_t jitter_seed,
    Workspace* workspace) const {
  const int wl_m = cfg_.mult.wordlength;
  OCLP_CHECK_MSG(m < (1u << wl_m), "multiplicand " << m << " exceeds "
                                            << wl_m << " bits");
  OCLP_CHECK_MSG(!freqs_mhz.empty(), "run_multi needs at least one frequency");
  for (double f : freqs_mhz) {
    OCLP_CHECK(f > 0.0);
    OCLP_CHECK_MSG(f < support_fmax_mhz_,
                   "mult_clk " << f << " MHz exceeds supporting-logic Fmax "
                               << support_fmax_mhz_ << " MHz");
  }
  OCLP_CHECK_MSG(cfg_.fsm_clock_mhz < support_fmax_mhz_,
                 "fsm_clk exceeds supporting-logic Fmax");

  const std::size_t nf = freqs_mhz.size();
  std::vector<double> periods(nf);
  for (std::size_t fi = 0; fi < nf; ++fi) periods[fi] = 1000.0 / freqs_mhz[fi];

  // Same jitter model as ClockGen (clamped Gaussian), but drawn once per
  // sample: the settle snapshot is shared, so the *same* launch edge is
  // sampled by every frequency's register with its own period. Each
  // frequency's period sequence keeps the per-frequency distribution.
  const double sigma =
      cfg_.with_jitter ? device_->config().jitter_sigma_ns : 0.0;
  Rng jitter_rng(hash_mix(jitter_seed, m, 0x3417ULL));

  Workspace local;
  Workspace& ws = workspace ? *workspace : local;

  const std::size_t n = xs.size();
  std::vector<CharTrace> traces(nf);
  for (auto& t : traces) {
    t.observed.resize(n);
    t.expected.resize(n);
    t.error.resize(n);
  }
  // FSM bookkeeping per virtual per-frequency run (see run()): the stream
  // is loaded/drained through the BRAM in bram_depth batches.
  std::size_t processed = 0;
  while (processed < n) {
    const std::size_t batch = std::min(cfg_.bram_depth, n - processed);
    for (auto& t : traces) t.fsm_cycles += 2 * batch + 4;
    processed += batch;
  }

  // The per-constant CCM cell has no multiplicand bus — m is baked in.
  const OverclockSim& sim = sim_for(m);
  std::vector<std::uint8_t> in;
  in.reserve(static_cast<std::size_t>(wl_m + cfg_.wl_x));
  if (!ccm_) append_bits(in, m, wl_m);
  append_bits(in, 0, cfg_.wl_x);
  sim.reset(ws.sim, in);

  // Flatten the stream into an input-bit matrix and settle the whole cone
  // in one batched pass: ws.stream then holds, per edge, the settled
  // output word plus the (bit, settle) list of outputs that toggled.
  const std::size_t nin = in.size();
  const std::size_t wlm = ccm_ ? 0 : static_cast<std::size_t>(wl_m);
  ws.input_bits.resize(n * nin);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t x = xs[i];
    OCLP_DCHECK(x < (1u << cfg_.wl_x));
    std::uint8_t* row = ws.input_bits.data() + i * nin;
    for (std::size_t b = 0; b < wlm; ++b)
      row[b] = static_cast<std::uint8_t>((m >> b) & 1u);
    for (std::size_t b = wlm; b < nin; ++b)
      row[b] = static_cast<std::uint8_t>((x >> (b - wlm)) & 1u);
  }
  sim.run_stream(ws.sim, ws.input_bits.data(), n, ws.stream);

  // Sampling a frequency is then obs = settled word with the too-late
  // toggled bits flipped back — bitwise identical to thresholding every
  // bit, but O(toggled) per frequency instead of O(output width). With an
  // integer-kernel stream (the production case) the compares run on uint32
  // ticks against one exact threshold conversion per (sample, frequency) —
  // the jittered period varies per sample, so it cannot hoist further —
  // which matches the double rule bitwise (see PsGrid::period_ticks).
  const std::uint32_t* tbegin = ws.stream.toggle_begin.data();
  const std::uint8_t* tbit = ws.stream.toggle_bit.data();
  const bool ticks = ws.stream.has_ticks;
  const double* tsettle = ws.stream.toggle_settle.data();
  const std::uint32_t* tsettle_ticks = ws.stream.toggle_settle_ticks.data();
  for (std::size_t i = 0; i < n; ++i) {
    double j = 0.0;
    if (sigma > 0.0) {
      j = jitter_rng.normal(0.0, sigma);
      const double lim = 4.0 * sigma;  // ClockGen's ±4σ clamp
      if (j > lim) j = lim;
      if (j < -lim) j = -lim;
    }

    const std::uint64_t exp =
        static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(xs[i]);
    const std::uint64_t settled = ws.stream.settled[i];
    for (std::size_t fi = 0; fi < nf; ++fi) {
      const double period = periods[fi] + j;
      std::uint64_t obs = settled;
      if (ticks) {
        const std::uint64_t pticks = PsGrid::period_ticks(period);
        for (std::uint32_t ti = tbegin[i]; ti < tbegin[i + 1]; ++ti)
          obs ^= static_cast<std::uint64_t>(tsettle_ticks[ti] > pticks)
                 << tbit[ti];
      } else {
        for (std::uint32_t ti = tbegin[i]; ti < tbegin[i + 1]; ++ti)
          obs ^= static_cast<std::uint64_t>(tsettle[ti] > period) << tbit[ti];
      }
      CharTrace& t = traces[fi];
      t.observed[i] = obs;
      t.error[i] =
          static_cast<std::int64_t>(obs) - static_cast<std::int64_t>(exp);
      t.erroneous += static_cast<std::size_t>(obs != exp);
    }
    traces[0].expected[i] = exp;
  }
  // The expected sequence is frequency-independent; fill it once and copy.
  for (std::size_t fi = 1; fi < nf; ++fi)
    traces[fi].expected = traces[0].expected;
  return traces;
}

}  // namespace oclp
