// E(m, f): the over-clocking error model of paper Section V-B1.
//
// For a multiplier of word-length wl, E holds — per multiplicand code m and
// per characterised clock frequency f — the variance, mean and rate of the
// error observed at the multiplier output when a representative data
// stream is multiplied by the constant m at frequency f. Variances are in
// raw product-code units (code = m·x); value-domain helpers convert to the
// normalised coefficient×data domain the objective function works in.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "mult/multiplier.hpp"

namespace oclp {

class ErrorModel {
 public:
  ErrorModel() = default;
  /// `config`: the characterised multiplier configuration (architecture ×
  /// word-length × pipeline depth); wl_x: streamed-data port width. The
  /// model is only meaningful for the exact configuration it was swept on
  /// — consumers must gate on config() (see require_config).
  ErrorModel(const MultConfig& config, int wl_x, std::vector<double> freqs_mhz);

  const MultConfig& config() const { return config_; }
  int wordlength() const { return config_.wordlength; }
  int data_wordlength() const { return wl_x_; }
  const std::vector<double>& freqs_mhz() const { return freqs_; }
  std::size_t num_multiplicands() const {
    return std::size_t{1} << config_.wordlength;
  }
  bool empty() const { return freqs_.empty(); }

  /// Throws, naming both configurations, unless this model was
  /// characterised for exactly `expected`. `context` names the consumer
  /// ("prior", "swap", ...) so the message points at the offending layer.
  void require_config(const MultConfig& expected, const char* context) const;

  void set(std::uint32_t m, std::size_t freq_index, double variance,
           double mean_error, double error_rate);

  /// Variance of the output error (code² units) at multiplicand m and
  /// frequency f, linearly interpolated between characterised frequencies
  /// and clamped at the grid edges.
  double variance(std::uint32_t m, double freq_mhz) const;
  /// Mean error (code units) — the constant the circuit subtracts so ε has
  /// zero mean (paper Sec. V-A).
  double mean_error(std::uint32_t m, double freq_mhz) const;
  /// Fraction of erroneous outputs.
  double error_rate(std::uint32_t m, double freq_mhz) const;

  /// Variance converted to the value domain where coefficient = m/2^wl and
  /// data = x/2^wl_x, i.e. divided by (2^wl · 2^wl_x)².
  double variance_value_units(std::uint32_t m, double freq_mhz) const;

  /// Largest variance anywhere in the table (prior normalisation aid).
  double max_variance() const;

  /// CSV persistence. The header carries the full configuration
  /// (arch,wl_m,pipeline_depth,wl_x,...) so a round-trip preserves the
  /// MultConfig tag and a file swept on one configuration cannot be
  /// silently applied to another.
  void save_csv(std::ostream& os) const;
  void save_csv_file(const std::string& path) const;
  static ErrorModel load_csv(std::istream& is);
  static ErrorModel load_csv_file(const std::string& path);

 private:
  std::size_t index(std::uint32_t m, std::size_t fi) const {
    OCLP_DCHECK(m < num_multiplicands() && fi < freqs_.size());
    return static_cast<std::size_t>(m) * freqs_.size() + fi;
  }
  /// Interpolation weights over the frequency grid.
  void locate(double freq_mhz, std::size_t& i0, std::size_t& i1, double& t) const;

  MultConfig config_{MultArch::Array, 0, 1};
  int wl_x_ = 0;
  std::vector<double> freqs_;
  std::vector<double> var_, mean_, rate_;
};

/// The per-configuration model set every consumer layer works from: one
/// characterised E(m, f) table per multiplier configuration in play.
using ErrorModelMap = std::map<MultConfig, ErrorModel>;

/// Atomic publication point for live re-characterisation: serving threads
/// load() an immutable snapshot of the per-config model set; the sweep
/// thread builds an updated copy off to the side and store()s it in one
/// pointer swap. Readers keep their snapshot alive through the shared_ptr,
/// so a swap never invalidates a model a circuit is still correcting with —
/// the copy-on-write analogue of a double-buffered characterisation table.
class SharedErrorModels {
 public:
  using Map = ErrorModelMap;

  SharedErrorModels();
  explicit SharedErrorModels(Map initial);

  /// The current published snapshot (never null; possibly an empty map).
  std::shared_ptr<const Map> load() const;

  /// Publish `next` as the new snapshot. Existing load() holders are
  /// unaffected; subsequent load()s see `next`.
  void store(Map next);

  /// Generation counter: bumps on every store() (0 after construction).
  std::uint64_t generation() const;

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const Map> current_;
  std::uint64_t generation_ = 0;
};

}  // namespace oclp
