#include "charlib/sweep.hpp"

#include <algorithm>
#include <mutex>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "fabric/timing_annotation.hpp"
#include "mult/bitcodec.hpp"

namespace oclp {

std::vector<std::uint32_t> uniform_stream(int wl_x, std::size_t n,
                                          std::uint64_t seed) {
  Rng rng(hash_mix(seed, 0x57eaULL, wl_x));
  std::vector<std::uint32_t> xs(n);
  for (auto& x : xs)
    x = static_cast<std::uint32_t>(rng.uniform_u64(std::uint64_t{1} << wl_x));
  return xs;
}

namespace {

// Sweep the given multiplicand rows of `model` on `device`: one circuit
// per location for the whole sweep — construction (netlist build + timing
// annotation + STA) dwarfs a single stream run, so it must not sit inside
// the per-multiplicand loop. Workers share the circuits through the const
// single-pass API with chunk-keyed workspaces (NUMA-local under a pinned
// policy, since chunk c always re-touches arena slot c from the same CPU).
// Each worker writes only its own model row, so any policy/chunking is
// bitwise-identical to serial.
void sweep_rows(const Device& device, const SweepSettings& settings,
                const std::vector<std::uint32_t>& rows, ErrorModel& model,
                const ExecPolicy& exec) {
  const auto& freqs = model.freqs_mhz();
  const auto stream = uniform_stream(model.data_wordlength(),
                                     settings.samples_per_point,
                                     settings.stream_seed);

  CharCircuitConfig ccfg;
  ccfg.mult = model.config();
  ccfg.wl_x = model.data_wordlength();
  ccfg.with_jitter = settings.with_jitter;
  ccfg.fsm_clock_mhz = settings.fsm_clock_mhz;
  ccfg.bram_depth = settings.bram_depth;

  std::vector<CharacterisationCircuit> circuits;
  circuits.reserve(settings.locations.size());
  for (const auto& loc : settings.locations)
    circuits.emplace_back(ccfg, device, loc);

  auto worker = [&](std::size_t ri, CharacterisationCircuit::Workspace& ws) {
    const std::uint32_t m = rows[ri];
    std::vector<RunningStats> err(freqs.size());
    std::vector<std::size_t> erroneous(freqs.size(), 0);
    std::vector<std::size_t> total(freqs.size(), 0);
    // One pass over the stream per location yields every frequency point.
    for (std::size_t li = 0; li < circuits.size(); ++li) {
      const auto traces = circuits[li].run_multi(
          m, stream, freqs,
          hash_mix(settings.stream_seed, m,
                   settings.locations[li].route_seed),
          &ws);
      for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
        for (auto e : traces[fi].error) err[fi].add(static_cast<double>(e));
        erroneous[fi] += traces[fi].erroneous;
        total[fi] += traces[fi].error.size();
      }
    }
    for (std::size_t fi = 0; fi < freqs.size(); ++fi)
      model.set(m, fi, err[fi].variance(), err[fi].mean(),
                total[fi] ? static_cast<double>(erroneous[fi]) /
                                static_cast<double>(total[fi])
                          : 0.0);
  };
  ChunkArena<CharacterisationCircuit::Workspace> arena;
  arena.ensure(exec.num_chunks(rows.size()));
  exec.for_chunks(0, rows.size(),
                  [&](std::size_t c0, std::size_t c1, std::size_t chunk) {
                    auto& ws = arena.at(chunk);
                    for (std::size_t ri = c0; ri < c1; ++ri) worker(ri, ws);
                  });
}

std::vector<double> sorted_freqs(const SweepSettings& settings) {
  OCLP_CHECK(!settings.freqs_mhz.empty());
  OCLP_CHECK(!settings.locations.empty());
  OCLP_CHECK(settings.samples_per_point >= 2);
  std::vector<double> freqs = settings.freqs_mhz;
  std::sort(freqs.begin(), freqs.end());
  return freqs;
}

}  // namespace

ErrorModel characterise_multiplier(const Device& device,
                                   const MultConfig& config, int wl_x,
                                   const SweepSettings& settings,
                                   const ExecPolicy& exec) {
  ErrorModel model(config, wl_x, sorted_freqs(settings));
  std::vector<std::uint32_t> rows(model.num_multiplicands());
  for (std::uint32_t m = 0; m < rows.size(); ++m) rows[m] = m;
  sweep_rows(device, settings, rows, model, exec);
  return model;
}

SurrogateSweep characterise_multiplier_surrogate(
    const Device& device, const MultConfig& config, int wl_x,
    const SweepSettings& settings, std::size_t probe_stride,
    const ExecPolicy& exec) {
  OCLP_CHECK_MSG(probe_stride >= 1, "surrogate probe stride must be >= 1");
  SurrogateSweep out{ErrorModel(config, wl_x, sorted_freqs(settings)), 0, 0};
  ErrorModel& model = out.model;
  const auto num_m = static_cast<std::uint32_t>(model.num_multiplicands());
  out.total_rows = num_m;

  // Strided probe rows plus both endpoints, so every unprobed row is
  // bracketed and the interpolation never extrapolates.
  std::vector<std::uint32_t> rows;
  for (std::uint32_t m = 0; m < num_m;
       m += static_cast<std::uint32_t>(probe_stride))
    rows.push_back(m);
  if (rows.back() != num_m - 1) rows.push_back(num_m - 1);
  out.probed_rows = rows.size();
  sweep_rows(device, settings, rows, model, exec);

  // Per-frequency linear interpolation of the three statistics across the
  // multiplicand axis. E(m, f) is not smooth in m (settle time follows the
  // carry structure of the constant, not its magnitude), which is exactly
  // why this is a ranking surrogate and not a servable model.
  const std::size_t nf = model.freqs_mhz().size();
  for (std::size_t ri = 0; ri + 1 < rows.size(); ++ri) {
    const std::uint32_t m0 = rows[ri], m1 = rows[ri + 1];
    for (std::uint32_t m = m0 + 1; m < m1; ++m) {
      const double t = static_cast<double>(m - m0) / static_cast<double>(m1 - m0);
      for (std::size_t fi = 0; fi < nf; ++fi) {
        const double f = model.freqs_mhz()[fi];
        model.set(m, fi,
                  (1.0 - t) * model.variance(m0, f) + t * model.variance(m1, f),
                  (1.0 - t) * model.mean_error(m0, f) +
                      t * model.mean_error(m1, f),
                  (1.0 - t) * model.error_rate(m0, f) +
                      t * model.error_rate(m1, f));
      }
    }
  }
  return out;
}

SubsweepReport recharacterise_multiplier(const CharacterisationCircuit& circuit,
                                         ErrorModel& model,
                                         const SubsweepSettings& settings,
                                         const ExecPolicy& exec) {
  OCLP_CHECK_MSG(!model.empty(), "subsweep needs a constructed error model");
  model.require_config(circuit.config().mult, "subsweep");
  OCLP_CHECK_MSG(circuit.config().wl_x == model.data_wordlength(),
                 "subsweep circuit streams wl_x=" << circuit.config().wl_x
                                                  << " but the model is for wl_x="
                                                  << model.data_wordlength());
  OCLP_CHECK(settings.samples_per_point >= 2);
  OCLP_CHECK(settings.timing_derate > 0.0);

  // Merge the focus list with the rotating stride slice into a sorted
  // unique probe set.
  std::vector<std::uint32_t> probe = settings.multiplicands;
  const auto num_m = static_cast<std::uint32_t>(model.num_multiplicands());
  for (std::uint32_t m : probe)
    OCLP_CHECK_MSG(m < num_m, "subsweep multiplicand " << m
                                                       << " out of range for wl_m="
                                                       << model.wordlength());
  if (settings.m_stride > 0) {
    const auto start = static_cast<std::uint32_t>(
        settings.m_phase % settings.m_stride);
    for (std::uint32_t m = start; m < num_m;
         m += static_cast<std::uint32_t>(settings.m_stride))
      probe.push_back(m);
  }
  std::sort(probe.begin(), probe.end());
  probe.erase(std::unique(probe.begin(), probe.end()), probe.end());
  OCLP_CHECK_MSG(!probe.empty(),
                 "subsweep has nothing to probe (empty focus list and no "
                 "stride coverage)");

  // The probe runs at derated frequencies but records under the nominal
  // grid. Points whose derated frequency reaches the supporting-logic Fmax
  // cannot be measured by the framework (run_multi would throw to avoid
  // injecting errors of its own) — they are dropped here and count as
  // erroneous for the fB estimate, which is conservative.
  const auto& grid = model.freqs_mhz();
  std::vector<double> run_freqs;
  std::vector<std::size_t> grid_index;
  run_freqs.reserve(grid.size());
  for (std::size_t fi = 0; fi < grid.size(); ++fi) {
    const double f = grid[fi] * settings.timing_derate;
    if (f < circuit.support_fmax_mhz()) {
      run_freqs.push_back(f);
      grid_index.push_back(fi);
    }
  }
  SubsweepReport report;
  report.skipped_freqs = grid.size() - run_freqs.size();
  OCLP_CHECK_MSG(!run_freqs.empty(),
                 "subsweep: every grid point derated past the supporting "
                 "logic Fmax ("
                     << circuit.support_fmax_mhz() << " MHz)");

  const auto stream = uniform_stream(model.data_wordlength(),
                                     settings.samples_per_point,
                                     settings.stream_seed);

  // erroneous_at[j]: any probed code erred at run_freqs[j] (ascending).
  std::vector<std::uint8_t> erroneous_at(run_freqs.size(), 0);
  std::mutex merge_mutex;

  auto worker = [&](std::size_t pi, CharacterisationCircuit::Workspace& ws) {
    const std::uint32_t m = probe[pi];
    const auto traces = circuit.run_multi(
        m, stream, run_freqs, hash_mix(settings.stream_seed, m, 0x5B5EE7ULL),
        &ws);
    std::lock_guard lock(merge_mutex);
    for (std::size_t j = 0; j < run_freqs.size(); ++j) {
      RunningStats err;
      for (auto e : traces[j].error) err.add(static_cast<double>(e));
      const auto total = traces[j].error.size();
      model.set(m, grid_index[j], err.variance(), err.mean(),
                total ? static_cast<double>(traces[j].erroneous) /
                            static_cast<double>(total)
                      : 0.0);
      if (traces[j].erroneous > 0) erroneous_at[j] = 1;
    }
  };

  // Distinct model rows / erroneous_at slots per probe (the mutex only
  // serialises the writes), so the policy cannot change the result.
  ChunkArena<CharacterisationCircuit::Workspace> arena;
  arena.ensure(exec.num_chunks(probe.size()));
  exec.for_chunks(0, probe.size(),
                  [&](std::size_t c0, std::size_t c1, std::size_t chunk) {
                    auto& ws = arena.at(chunk);
                    for (std::size_t pi = c0; pi < c1; ++pi) worker(pi, ws);
                  });

  // fB over the probed codes: highest grid frequency below the first
  // erroneous (or unprobeable) point, in ascending order — same rule as
  // find_regimes, so a spurious clean point above the onset cannot extend
  // the regime.
  for (std::size_t j = 0; j < run_freqs.size(); ++j) {
    if (grid_index[j] != j) break;  // a skipped point interrupts the scan
    if (erroneous_at[j]) break;
    report.error_free_fmax_mhz = grid[j];
  }
  report.probed = probe.size();
  return report;
}

std::vector<ErrorRatePoint> error_rate_curve(const Device& device, int wl_a,
                                             int wl_b, const Placement& placement,
                                             const std::vector<double>& freqs_mhz,
                                             std::size_t samples,
                                             std::uint64_t seed,
                                             const ExecPolicy& exec) {
  OCLP_CHECK(!freqs_mhz.empty() && samples >= 2);
  const std::size_t nf = freqs_mhz.size();

  CharCircuitConfig ccfg;
  ccfg.mult = MultConfig{MultArch::Array, wl_a, 1};
  ccfg.wl_x = wl_b;

  // One circuit for the whole curve; every frequency point comes from the
  // same single-pass stream.
  CharacterisationCircuit circuit(ccfg, device, placement);

  // Both operands random: stream a fresh random multiplicand per short
  // burst. Bursts keep the fixed-port semantics of the circuit while
  // exercising the whole operand space; their specs are pre-drawn so the
  // bursts can run in parallel yet merge deterministically in order.
  const std::size_t burst = 16;
  struct BurstSpec {
    std::uint32_t m;
    std::uint64_t xs_seed, jitter_seed;
    std::size_t n;
  };
  std::vector<BurstSpec> bursts;
  bursts.reserve((samples + burst - 1) / burst);
  Rng rng(hash_mix(seed, 0xF19uLL));
  for (std::size_t remaining = samples; remaining > 0;) {
    BurstSpec b;
    b.n = std::min(burst, remaining);
    b.m = static_cast<std::uint32_t>(rng.uniform_u64(std::uint64_t{1} << wl_a));
    b.xs_seed = rng.next();
    b.jitter_seed = rng.next();
    bursts.push_back(b);
    remaining -= b.n;
  }

  std::vector<std::vector<RunningStats>> burst_err(
      bursts.size(), std::vector<RunningStats>(nf));
  std::vector<std::vector<std::size_t>> burst_bad(
      bursts.size(), std::vector<std::size_t>(nf, 0));

  auto worker = [&](std::size_t bi, CharacterisationCircuit::Workspace& ws) {
    const auto& b = bursts[bi];
    const auto xs = uniform_stream(wl_b, b.n, b.xs_seed);
    const auto traces =
        circuit.run_multi(b.m, xs, freqs_mhz, b.jitter_seed, &ws);
    for (std::size_t fi = 0; fi < nf; ++fi) {
      for (auto e : traces[fi].error)
        burst_err[bi][fi].add(static_cast<double>(e));
      burst_bad[bi][fi] = traces[fi].erroneous;
    }
  };

  // Bursts fill distinct slots in parallel; the order-sensitive
  // RunningStats merge below stays a serial fixed-order fold, so the
  // curve is bitwise-independent of the policy.
  ChunkArena<CharacterisationCircuit::Workspace> arena;
  arena.ensure(exec.num_chunks(bursts.size()));
  exec.for_chunks(0, bursts.size(),
                  [&](std::size_t c0, std::size_t c1, std::size_t chunk) {
                    auto& ws = arena.at(chunk);
                    for (std::size_t bi = c0; bi < c1; ++bi) worker(bi, ws);
                  });

  std::vector<ErrorRatePoint> curve(nf);
  for (std::size_t fi = 0; fi < nf; ++fi) {
    RunningStats err;
    std::size_t bad = 0;
    for (std::size_t bi = 0; bi < bursts.size(); ++bi) {
      err.merge(burst_err[bi][fi]);
      bad += burst_bad[bi][fi];
    }
    curve[fi] = ErrorRatePoint{
        freqs_mhz[fi],
        samples ? static_cast<double>(bad) / static_cast<double>(samples) : 0.0,
        err.variance()};
  }
  return curve;
}

OperatingRegimes find_regimes(const std::vector<ErrorRatePoint>& curve,
                              double meaningful_rate) {
  OperatingRegimes reg;
  if (curve.empty()) return reg;
  std::vector<ErrorRatePoint> pts = curve;
  std::sort(pts.begin(), pts.end(), [](const ErrorRatePoint& a,
                                       const ErrorRatePoint& b) {
    return a.freq_mhz < b.freq_mhz;
  });
  // fB is the highest frequency *below the first erroneous point*: a
  // spurious error-free measurement above the error onset (sampling noise
  // on a non-monotonic curve) must not extend the error-free regime.
  for (const auto& pt : pts) {
    if (pt.error_rate > 0.0) break;
    reg.error_free_fmax_mhz = pt.freq_mhz;
  }
  // Same rule for fC against the meaningful-rate threshold.
  for (const auto& pt : pts) {
    if (pt.error_rate >= meaningful_rate) break;
    reg.usable_fmax_mhz = pt.freq_mhz;
  }
  return reg;
}

}  // namespace oclp
