#include "charlib/sweep.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "fabric/timing_annotation.hpp"
#include "mult/bitcodec.hpp"

namespace oclp {

std::vector<std::uint32_t> uniform_stream(int wl_x, std::size_t n,
                                          std::uint64_t seed) {
  Rng rng(hash_mix(seed, 0x57eaULL, wl_x));
  std::vector<std::uint32_t> xs(n);
  for (auto& x : xs)
    x = static_cast<std::uint32_t>(rng.uniform_u64(std::uint64_t{1} << wl_x));
  return xs;
}

ErrorModel characterise_multiplier(const Device& device, int wl_m, int wl_x,
                                   const SweepSettings& settings,
                                   ThreadPool* pool) {
  OCLP_CHECK(!settings.freqs_mhz.empty());
  OCLP_CHECK(!settings.locations.empty());
  OCLP_CHECK(settings.samples_per_point >= 2);
  std::vector<double> freqs = settings.freqs_mhz;
  std::sort(freqs.begin(), freqs.end());

  ErrorModel model(wl_m, wl_x, freqs);
  const std::size_t num_m = model.num_multiplicands();
  const auto stream =
      uniform_stream(wl_x, settings.samples_per_point, settings.stream_seed);

  CharCircuitConfig ccfg;
  ccfg.wl_m = wl_m;
  ccfg.wl_x = wl_x;
  ccfg.arch = settings.arch;
  ccfg.with_jitter = settings.with_jitter;
  ccfg.fsm_clock_mhz = settings.fsm_clock_mhz;
  ccfg.bram_depth = settings.bram_depth;

  auto worker = [&](std::size_t mi) {
    const auto m = static_cast<std::uint32_t>(mi);
    // Per-(m) circuits: one per location, reused across the frequency grid.
    for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
      RunningStats err;
      std::size_t erroneous = 0, total = 0;
      for (const auto& loc : settings.locations) {
        CharacterisationCircuit circuit(ccfg, device, loc);
        const auto trace = circuit.run(
            m, stream, freqs[fi],
            hash_mix(settings.stream_seed, mi, fi * 31 + loc.route_seed));
        for (auto e : trace.error) err.add(static_cast<double>(e));
        erroneous += trace.erroneous;
        total += trace.error.size();
      }
      model.set(m, fi, err.variance(), err.mean(),
                total ? static_cast<double>(erroneous) / static_cast<double>(total)
                      : 0.0);
    }
  };

  if (pool == nullptr) pool = &ThreadPool::global();
  pool->parallel_for(0, num_m, worker);
  return model;
}

std::vector<ErrorRatePoint> error_rate_curve(const Device& device, int wl_a,
                                             int wl_b, const Placement& placement,
                                             const std::vector<double>& freqs_mhz,
                                             std::size_t samples,
                                             std::uint64_t seed, ThreadPool* pool) {
  OCLP_CHECK(!freqs_mhz.empty() && samples >= 2);
  std::vector<ErrorRatePoint> curve(freqs_mhz.size());

  CharCircuitConfig ccfg;
  ccfg.wl_m = wl_a;
  ccfg.wl_x = wl_b;

  // Both operands random: reuse the characterisation circuit by streaming a
  // fresh random multiplicand per short burst. Bursts keep the fixed-port
  // semantics of the circuit while exercising the whole operand space.
  const std::size_t burst = 16;
  auto worker = [&](std::size_t fi) {
    Rng rng(hash_mix(seed, fi, 0xF19uLL));
    CharacterisationCircuit circuit(ccfg, device, placement);
    RunningStats err;
    std::size_t erroneous = 0, total = 0;
    std::size_t remaining = samples;
    while (remaining > 0) {
      const std::size_t n = std::min(burst, remaining);
      const auto m =
          static_cast<std::uint32_t>(rng.uniform_u64(std::uint64_t{1} << wl_a));
      auto xs = uniform_stream(wl_b, n, rng.next());
      const auto trace = circuit.run(m, xs, freqs_mhz[fi], rng.next());
      for (auto e : trace.error) err.add(static_cast<double>(e));
      erroneous += trace.erroneous;
      total += trace.error.size();
      remaining -= n;
    }
    curve[fi] = ErrorRatePoint{
        freqs_mhz[fi],
        total ? static_cast<double>(erroneous) / static_cast<double>(total) : 0.0,
        err.variance()};
  };

  if (pool == nullptr) pool = &ThreadPool::global();
  pool->parallel_for(0, freqs_mhz.size(), worker);
  return curve;
}

OperatingRegimes find_regimes(const std::vector<ErrorRatePoint>& curve,
                              double meaningful_rate) {
  OperatingRegimes reg;
  for (const auto& pt : curve) {
    if (pt.error_rate == 0.0) reg.error_free_fmax_mhz = std::max(reg.error_free_fmax_mhz, pt.freq_mhz);
    if (pt.error_rate < meaningful_rate)
      reg.usable_fmax_mhz = std::max(reg.usable_fmax_mhz, pt.freq_mhz);
  }
  return reg;
}

}  // namespace oclp
