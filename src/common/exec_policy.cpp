#include "common/exec_policy.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <vector>

namespace oclp {

std::size_t ExecPolicy::chunk_size_for(std::size_t n) const {
  if (n == 0) return 1;
  if (chunking_.chunk_size != 0) return chunking_.chunk_size;
  // Automatic sizing: a few chunks per worker so an uneven item smooths
  // out. Serial degenerates to a single inline span — over-chunking buys
  // nothing on one thread.
  const std::size_t cpw = kind_ == ExecKind::Serial
                              ? 1
                              : std::max<std::size_t>(
                                    1, chunking_.chunks_per_worker);
  const std::size_t tasks = std::max<std::size_t>(1, workers() * cpw);
  const std::size_t size = (n + tasks - 1) / tasks;
  return std::max({size, chunking_.min_chunk, std::size_t{1}});
}

std::size_t ExecPolicy::num_chunks(std::size_t n) const {
  if (n == 0) return 0;
  const std::size_t size = chunk_size_for(n);
  return (n + size - 1) / size;
}

void ExecPolicy::for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn)
    const {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t size = chunk_size_for(n);
  const std::size_t chunks = (n + size - 1) / size;
  auto run_chunk = [&](std::size_t chunk) {
    const std::size_t c0 = begin + chunk * size;
    const std::size_t c1 = std::min(end, c0 + size);
    fn(c0, c1, chunk);
  };
  if (kind_ == ExecKind::Serial || chunks == 1) {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) run_chunk(chunk);
    return;
  }
  ThreadPool& tp = pool();
  if (pinned_ && !tp.current_thread_is_worker()) {
    // Static cyclic schedule: chunk c always executes on worker c % W,
    // hence on the same CPU and NUMA node every call (the pool is
    // worker-pinned). Chunk-keyed workspaces therefore get touched by the
    // same CPU for their whole lifetime. Same drain-all-then-rethrow
    // discipline as ThreadPool::parallel_for: bailing early would leave
    // queued chunks with dangling references into this frame.
    const std::size_t w = tp.size();
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (std::size_t chunk = 0; chunk < chunks; ++chunk)
      futures.push_back(
          tp.submit_on(chunk % w, [&run_chunk, chunk] { run_chunk(chunk); }));
    std::exception_ptr first;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }
  // Fan the chunk *indices* out over the pool. parallel_for runs nested
  // calls (from inside a worker of this same pool) inline on the calling
  // thread, so policy layering cannot deadlock — a nested pinned call
  // lands here too and inlines for the same reason.
  tp.parallel_for(0, chunks, run_chunk);
}

void ExecPolicy::for_each(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t)>& fn) const {
  for_chunks(begin, end,
             [&](std::size_t c0, std::size_t c1, std::size_t /*chunk*/) {
               for (std::size_t i = c0; i < c1; ++i) fn(i);
             });
}

}  // namespace oclp
