#include "common/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#ifdef __linux__
#include <sched.h>
#endif

namespace oclp {

namespace {

// CPUs the process is allowed to run on. Pinning must stay inside the
// affinity mask a container/cgroup handed us — stepping outside it would
// either fail or fight the scheduler.
std::vector<int> affine_cpus() {
  std::vector<int> cpus;
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c)
      if (CPU_ISSET(c, &set)) cpus.push_back(c);
  }
#endif
  if (cpus.empty()) {
    const auto n = std::max(1u, std::thread::hardware_concurrency());
    for (unsigned c = 0; c < n; ++c) cpus.push_back(static_cast<int>(c));
  }
  return cpus;
}

}  // namespace

std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> cpus;
  std::stringstream ss(list);
  std::string chunk;
  while (std::getline(ss, chunk, ',')) {
    if (chunk.empty()) continue;
    const auto dash = chunk.find('-');
    char* end = nullptr;
    if (dash == std::string::npos) {
      const long c = std::strtol(chunk.c_str(), &end, 10);
      if (end != chunk.c_str() && c >= 0) cpus.push_back(static_cast<int>(c));
      continue;
    }
    const long lo = std::strtol(chunk.c_str(), &end, 10);
    char* end2 = nullptr;
    const long hi = std::strtol(chunk.c_str() + dash + 1, &end2, 10);
    if (end == chunk.c_str() || end2 == chunk.c_str() + dash + 1) continue;
    for (long c = lo; c >= 0 && c <= hi; ++c)
      cpus.push_back(static_cast<int>(c));
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology probe_topology() {
  Topology topo;
  const std::vector<int> affine = affine_cpus();

#ifdef __linux__
  // One node per /sys/devices/system/node/node<N>, keeping only the CPUs
  // we are affine to. Node ids are probed densely from 0: sysfs node
  // numbering can have holes on partitioned machines, so keep scanning
  // across a bounded gap rather than stopping at the first miss.
  int misses = 0;
  for (int id = 0; misses < 16; ++id) {
    std::ifstream f("/sys/devices/system/node/node" + std::to_string(id) +
                    "/cpulist");
    if (!f) {
      ++misses;
      continue;
    }
    misses = 0;
    std::string list;
    std::getline(f, list);
    TopologyNode node;
    node.id = id;
    for (int c : parse_cpulist(list))
      if (std::binary_search(affine.begin(), affine.end(), c))
        node.cpus.push_back(c);
    if (!node.cpus.empty()) topo.nodes.push_back(std::move(node));
  }
#endif

  if (topo.nodes.empty()) {
    TopologyNode node;
    node.id = 0;
    node.cpus = affine;
    topo.nodes.push_back(std::move(node));
  }
  return topo;
}

const Topology& topology() {
  static const Topology topo = probe_topology();
  return topo;
}

int Topology::cpu_for_worker(std::size_t worker) const {
  const std::size_t n = num_cpus();
  if (n == 0) return 0;
  std::size_t i = worker % n;
  for (const auto& node : nodes) {
    if (i < node.cpus.size()) return node.cpus[i];
    i -= node.cpus.size();
  }
  return nodes.front().cpus.front();
}

int Topology::node_of_cpu(int cpu) const {
  for (const auto& node : nodes)
    if (std::binary_search(node.cpus.begin(), node.cpus.end(), cpu))
      return node.id;
  return 0;
}

}  // namespace oclp
