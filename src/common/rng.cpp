#include "common/rng.hpp"

#include <cmath>

namespace oclp {

double Rng::gamma(double shape, double scale) {
  OCLP_CHECK(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct with the standard power-of-uniform trick.
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  OCLP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    OCLP_DCHECK(w >= 0.0);
    total += w;
  }
  return categorical(weights, total);
}

std::size_t Rng::categorical(const std::vector<double>& weights, double total) {
  OCLP_CHECK(!weights.empty());
  // A single NaN (or overflowed) weight would otherwise corrupt the draw
  // silently: r - NaN comparisons are all false and the walk falls through
  // to the last bin.
  OCLP_CHECK_MSG(std::isfinite(total), "categorical: non-finite weight total");
  OCLP_CHECK_MSG(total > 0.0, "categorical: all weights are zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;  // numeric fallout: return the last bin
}

}  // namespace oclp
