#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace oclp {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  OCLP_CHECK(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(std::floor(t * static_cast<double>(counts_.size())));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::bin_center(std::size_t bin) const {
  return 0.5 * (bin_lo(bin) + bin_hi(bin));
}

double Histogram::frequency(std::size_t bin) const {
  return total_ ? static_cast<double>(counts_.at(bin)) / static_cast<double>(total_) : 0.0;
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[b]) / static_cast<double>(peak) *
                     static_cast<double>(width)));
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << ") " << std::string(bar, '#')
       << " " << counts_[b] << "\n";
  }
  return os.str();
}

}  // namespace oclp
