// Deterministic, fast pseudo-random number generation.
//
// The whole reproduction is seed-stable: every stochastic component (die
// variation, routing draws, jitter, input streams, Gibbs sampling) derives
// its randomness from an explicitly seeded Rng, so experiments are exactly
// repeatable run-to-run and across machines.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through
// splitmix64 so that low-entropy user seeds still produce well-mixed state.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace oclp {

/// splitmix64 step; used for seeding and for cheap stateless hashing of
/// (seed, index) pairs, e.g. one independent stream per grid location.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of up to three values; handy to derive independent
/// seeds for sub-streams (location x/y, net index, cycle counter, ...).
constexpr std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b = 0x9e3779b97f4a7c15ULL,
                                 std::uint64_t c = 0x6a09e667f3bcc909ULL) {
  std::uint64_t s = a;
  std::uint64_t h = splitmix64(s);
  s ^= b + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= splitmix64(s);
  s ^= c + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return splitmix64(s);
}

/// xoshiro256++ PRNG with a std::uniform_random_bit_generator-compatible
/// interface plus the handful of distributions the library needs.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcd5678ef90ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
    has_cached_normal_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t uniform_u64(std::uint64_t bound) {
    OCLP_CHECK(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    OCLP_CHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_u64(span));
  }

  /// Double in [0, 1) with 53 random bits.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Marsaglia polar method (caches the spare value).
  double normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return u * factor;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Gamma(shape, scale) via Marsaglia–Tsang; shape > 0.
  double gamma(double shape, double scale);

  /// Inverse-gamma(shape, scale): 1/Gamma(shape, 1/scale).
  double inverse_gamma(double shape, double scale) {
    return scale / gamma(shape, 1.0);
  }

  /// Sample an index from unnormalised non-negative weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// Same draw with a caller-supplied weight total (e.g. a running total
  /// accumulated while scoring), avoiding a re-summing pass. `total` must
  /// equal the index-order sum of `weights` for the draw to be unbiased;
  /// checks that it is finite and positive. Consumes exactly one uniform,
  /// like the summing overload.
  std::size_t categorical(const std::vector<double>& weights, double total);

  /// Fork an independent generator (for per-task streams).
  Rng fork() { return Rng(hash_mix(next(), next())); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace oclp
