#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace oclp {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  OCLP_CHECK(!columns_.empty());
}

void Table::add_row(std::vector<Cell> cells) {
  OCLP_CHECK_MSG(cells.size() == columns_.size(),
                 "row has " << cells.size() << " cells, table has "
                            << columns_.size() << " columns");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string(const Cell& c) {
  if (std::holds_alternative<std::string>(c)) return std::get<std::string>(c);
  if (std::holds_alternative<long long>(c))
    return std::to_string(std::get<long long>(c));
  std::ostringstream os;
  os << std::setprecision(6) << std::get<double>(c);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(to_string(row[c]));
      width[c] = std::max(width[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto line = [&] {
    for (std::size_t c = 0; c < columns_.size(); ++c)
      os << "+" << std::string(width[c] + 2, '-');
    os << "+\n";
  };
  line();
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << "| " << std::setw(static_cast<int>(width[c])) << std::left << columns_[c] << " ";
  os << "|\n";
  line();
  for (const auto& r : rendered) {
    for (std::size_t c = 0; c < r.size(); ++c)
      os << "| " << std::setw(static_cast<int>(width[c])) << std::left << r[c] << " ";
    os << "|\n";
  }
  line();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::string& s) {
    if (s.find_first_of(",\"\n") != std::string::npos) {
      os << '"';
      for (char ch : s) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    } else {
      os << s;
    }
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    emit(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      emit(to_string(row[c]));
    }
    os << '\n';
  }
}

}  // namespace oclp
