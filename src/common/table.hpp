// Minimal column-aligned table / CSV emitter for bench binaries, so every
// figure/table reproduction prints a uniform, machine-parsable block.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace oclp {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  using Cell = std::variant<std::string, double, long long>;
  void add_row(std::vector<Cell> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return columns_.size(); }

  /// Column-aligned human-readable rendering.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV rendering.
  void print_csv(std::ostream& os) const;

 private:
  static std::string to_string(const Cell& c);

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace oclp
