// Unified execution policy for every data-parallel reduction in the
// library (the serial/multithread pattern of ROOT's FitUtil::EvaluateChi2):
// one small value type decides, per call site, whether a range runs inline
// or fans out over a ThreadPool, with automatic chunk-size heuristics and a
// deterministic fixed-order reduction.
//
// The policy deliberately has no effect on *results*: every consumer
// (charlib::sweep, ProjectionCircuit::project_batch, Gibbs scoring,
// algorithm1, linalg::multiply) either writes distinct slots from its
// workers or reduces the per-chunk partials serially in ascending chunk
// order, so Serial and Pool — at any chunk size — are bitwise identical.
// Floating-point merges that are order-sensitive (e.g. RunningStats
// variance folds) must stay in that fixed serial combine, never inside the
// parallel region.
//
// Nested use is safe by construction: a pooled policy invoked from inside
// a worker of the same pool runs its range inline on the calling thread
// (ThreadPool::parallel_for's nested-call rule), so policies can be handed
// down through layered reductions (algorithm1 → multiply) without
// deadlocking the pool.
//
// The topology layer on top (ExecPolicy::pinned + ChunkArena): a pinned
// policy runs on a worker-pinned pool and routes chunk c to worker
// c % size() via directed submission, so the chunk→worker→CPU→NUMA-node
// chain is a pure function of the chunk index. Pairing that with
// chunk-indexed workspaces (ChunkArena) makes workspace memory node-local
// by first touch — the same chunk always grows and reuses its buffers from
// the same CPU. Like everything else here, pinning has no effect on
// results, only on where the bytes live.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>

#include "common/thread_pool.hpp"
#include "common/topology.hpp"

namespace oclp {

enum class ExecKind : std::uint8_t { Serial, Pool };

/// Chunking heuristics of a policy. chunk_size == 0 selects automatic
/// sizing: ceil(n / (workers · chunks_per_worker)), floored at min_chunk —
/// a few chunks per worker so an uneven item smooths out, without
/// submitting one task per item. Serial policies default to a single
/// chunk; an explicit chunk_size is honoured by both kinds (chunk index →
/// shard-workspace mapping stays identical across kinds, which is what
/// the determinism tests pin).
struct ExecChunking {
  std::size_t chunk_size = 0;
  std::size_t chunks_per_worker = 4;
  std::size_t min_chunk = 1;
};

class ExecPolicy {
 public:
  /// Default policy: fan out over the process-wide ThreadPool::global().
  ExecPolicy() = default;

  /// Everything inline on the calling thread.
  static ExecPolicy serial(ExecChunking chunking = {}) {
    ExecPolicy p;
    p.kind_ = ExecKind::Serial;
    p.chunking_ = chunking;
    return p;
  }

  /// Fan out over `pool` (nullptr = ThreadPool::global()).
  static ExecPolicy pooled(ThreadPool* pool = nullptr,
                           ExecChunking chunking = {}) {
    ExecPolicy p;
    p.kind_ = ExecKind::Pool;
    p.pool_ = pool;
    p.chunking_ = chunking;
    return p;
  }

  /// Topology-aware fan-out: runs on a worker-pinned pool (nullptr =
  /// ThreadPool::pinned_global(), resolved lazily so holding a pinned
  /// policy in a config never spawns the pool by itself) and routes chunk
  /// c to worker c % workers() via directed submission. Results are
  /// bitwise identical to serial()/pooled(); only placement changes.
  /// A non-null `pool` should itself be pinned for the placement to mean
  /// anything, but any pool is correct.
  static ExecPolicy pinned(ExecChunking chunking = {},
                           ThreadPool* pool = nullptr) {
    ExecPolicy p;
    p.kind_ = ExecKind::Pool;
    p.pool_ = pool;
    p.pinned_ = true;
    p.chunking_ = chunking;
    return p;
  }

  ExecKind kind() const { return kind_; }
  const ExecChunking& chunking() const { return chunking_; }
  bool is_pinned() const { return pinned_; }

  /// The pool a Pool policy runs on (resolving the global default —
  /// pinned policies default to the pinned pool).
  ThreadPool& pool() const {
    if (pool_ != nullptr) return *pool_;
    return pinned_ ? ThreadPool::pinned_global() : ThreadPool::global();
  }

  /// Worker count the chunk heuristic sees (1 for Serial).
  std::size_t workers() const {
    return kind_ == ExecKind::Serial ? 1 : pool().size();
  }

  /// Chunk size used for a range of `n` items.
  std::size_t chunk_size_for(std::size_t n) const;

  /// Number of chunks a range of `n` items splits into.
  std::size_t num_chunks(std::size_t n) const;

  /// Run fn(i) for i in [begin, end); distribution follows the policy,
  /// completion (and the first worker exception) is observed on return.
  void for_each(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& fn) const;

  /// Run fn(c0, c1, chunk) over the chunks [c0, c1) of [begin, end).
  /// `chunk` is the ascending chunk index — stable across
  /// Serial/Pool/pinned for a given chunk size, so callers may key
  /// per-chunk workspaces on it. Under a pinned policy each chunk is
  /// directed at worker chunk_worker(chunk) instead of the shared queue.
  void for_chunks(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t,
                                           std::size_t)>& fn) const;

  /// The worker a pinned policy directs `chunk` at (the static cyclic
  /// schedule); 0 for Serial. For an unpinned Pool policy this is the
  /// nominal schedule only — shared-queue execution does not bind to it.
  std::size_t chunk_worker(std::size_t chunk) const {
    if (kind_ == ExecKind::Serial) return 0;
    const std::size_t w = pool().size();
    return w == 0 ? 0 : chunk % w;
  }

  /// NUMA node `chunk` lands on under the pinned schedule (0 for Serial).
  int chunk_node(std::size_t chunk) const {
    if (kind_ == ExecKind::Serial) return 0;
    return pool().worker_node(chunk_worker(chunk));
  }

  /// Deterministic fixed-order reduction: map(c0, c1) produces one partial
  /// per chunk (possibly in parallel), then the partials are combined
  /// strictly in ascending chunk order on the calling thread —
  ///   acc = combine(acc, partial[0]); acc = combine(acc, partial[1]); …
  /// — so the result is independent of the execution interleaving (and of
  /// Serial vs Pool) even for non-associative combines.
  template <typename T, typename MapFn, typename CombineFn>
  T reduce(std::size_t begin, std::size_t end, T init, const MapFn& map,
           const CombineFn& combine) const {
    const std::size_t n = end > begin ? end - begin : 0;
    if (n == 0) return init;
    std::vector<T> partials(num_chunks(n));
    for_chunks(begin, end,
               [&](std::size_t c0, std::size_t c1, std::size_t chunk) {
                 partials[chunk] = map(c0, c1);
               });
    T acc = std::move(init);
    for (auto& part : partials) acc = combine(std::move(acc), std::move(part));
    return acc;
  }

 private:
  ExecKind kind_ = ExecKind::Pool;
  ThreadPool* pool_ = nullptr;  ///< nullptr = global()/pinned_global()
  ExecChunking chunking_;
  bool pinned_ = false;
};

/// Chunk-indexed workspace store for for_chunks consumers. Backed by a
/// deque so growing never moves existing slots: a workspace's buffers —
/// and the physical pages they were first touched on — stay put for the
/// lifetime of the arena, which is the whole point under a pinned policy
/// (chunk c always reuses slot c from worker chunk_worker(c)'s CPU).
/// ensure() must run before the parallel region; at() is then data-race
/// free because distinct chunks index distinct slots.
template <typename WS>
class ChunkArena {
 public:
  /// Make slots [0, n) exist (default-constructed). Not thread-safe;
  /// call from the coordinating thread before fanning out.
  void ensure(std::size_t n) {
    while (slots_.size() < n) slots_.emplace_back();
  }

  /// Slot for `chunk`; must be < size(). Stable address for the arena's
  /// lifetime.
  WS& at(std::size_t chunk) { return slots_[chunk]; }
  const WS& at(std::size_t chunk) const { return slots_[chunk]; }

  std::size_t size() const { return slots_.size(); }

 private:
  std::deque<WS> slots_;
};

}  // namespace oclp
