#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace oclp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    OCLP_CHECK_MSG(!stopping_, "submit on a stopped ThreadPool");
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // ~4 chunks per worker balances load without flooding the queue.
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c0 = begin; c0 < end; c0 += chunk) {
    const std::size_t c1 = std::min(end, c0 + chunk);
    futures.push_back(submit([c0, c1, &fn] {
      for (std::size_t i = c0; i < c1; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions propagate via the packaged_task's future
  }
}

}  // namespace oclp
