#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "common/check.hpp"
#include "common/topology.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace oclp {

namespace {
// Which pool (if any) owns the current thread, and the worker's index in
// it. Lets parallel_for detect nested use from inside a worker: blocking
// on futures there can deadlock (every worker waiting on chunks only the
// blocked workers could run), so nested calls degrade to inline execution
// on the calling thread instead. The index is what directed-schedule
// consumers (and tests) use to observe where a task actually ran.
thread_local const ThreadPool* current_worker_pool = nullptr;
thread_local int current_worker_idx = -1;

// Bind the calling thread to a single CPU. Best-effort: a failure (exotic
// cgroup masks, non-Linux) leaves the thread floating, which only costs
// locality, never correctness.
void pin_self_to_cpu(int cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads, bool pin_workers) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  pinned_ = pin_workers;
  // The worker→CPU→node assignment is fixed here, on the constructing
  // thread, from the cached topology probe: deterministic and readable
  // without synchronisation. Workers apply their own affinity on startup.
  worker_cpu_.resize(threads);
  worker_node_.resize(threads);
  const Topology& topo = topology();
  for (std::size_t i = 0; i < threads; ++i) {
    worker_cpu_[i] = topo.cpu_for_worker(i);
    worker_node_[i] = topo.node_of_cpu(worker_cpu_[i]);
  }
  worker_queues_.resize(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::current_thread_is_worker() const {
  return current_worker_pool == this;
}

int ThreadPool::current_worker_index() const {
  return current_worker_pool == this ? current_worker_idx : -1;
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard lock(mutex_);
  std::size_t depth = queue_.size();
  for (const auto& q : worker_queues_) depth += q.size();
  return depth;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    OCLP_CHECK_MSG(!stopping_, "submit on a stopped ThreadPool");
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

std::future<void> ThreadPool::submit_on(std::size_t worker,
                                        std::function<void()> task) {
  OCLP_CHECK_MSG(worker < size(), "submit_on worker " << worker
                                                      << " of a pool of "
                                                      << size());
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    OCLP_CHECK_MSG(!stopping_, "submit_on on a stopped ThreadPool");
    worker_queues_[worker].push(std::move(packaged));
  }
  // Directed work cannot be stolen: every waiter must look, since only
  // one specific worker may take this task.
  cv_.notify_all();
  return future;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (current_thread_is_worker()) {
    // Nested call from one of our own workers: all workers may be blocked
    // in this same spot, so queueing and waiting can deadlock. The calling
    // thread runs its range inline — the outer parallel_for already spreads
    // the work across the pool.
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t n = end - begin;
  // ~4 chunks per worker balances load without flooding the queue.
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c0 = begin; c0 < end; c0 += chunk) {
    const std::size_t c1 = std::min(end, c0 + chunk);
    futures.push_back(submit([c0, c1, &fn] {
      for (std::size_t i = c0; i < c1; ++i) fn(i);
    }));
  }
  // Drain every future before rethrowing: bailing out on the first failure
  // would leave queued chunks holding a dangling reference to `fn`.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool& ThreadPool::pinned_global() {
  static ThreadPool pool(0, /*pin_workers=*/true);
  return pool;
}

void ThreadPool::worker_loop(std::size_t index) {
  current_worker_pool = this;
  current_worker_idx = static_cast<int>(index);
  if (pinned_) pin_self_to_cpu(worker_cpu_[index]);
  auto& own = worker_queues_[index];
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this, &own] {
        return stopping_ || !queue_.empty() || !own.empty();
      });
      if (stopping_ && queue_.empty() && own.empty()) return;
      // Directed tasks first: they were routed here for locality, and
      // nobody else can run them.
      if (!own.empty()) {
        task = std::move(own.front());
        own.pop();
      } else {
        task = std::move(queue_.front());
        queue_.pop();
      }
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);
    task();  // exceptions propagate via the packaged_task's future
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace oclp
