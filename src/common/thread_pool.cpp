#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "common/check.hpp"

namespace oclp {

namespace {
// Which pool (if any) owns the current thread. Lets parallel_for detect
// nested use from inside a worker: blocking on futures there can deadlock
// (every worker waiting on chunks only the blocked workers could run), so
// nested calls degrade to inline execution on the calling thread instead.
thread_local const ThreadPool* current_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::current_thread_is_worker() const {
  return current_worker_pool == this;
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    OCLP_CHECK_MSG(!stopping_, "submit on a stopped ThreadPool");
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (current_thread_is_worker()) {
    // Nested call from one of our own workers: all workers may be blocked
    // in this same spot, so queueing and waiting can deadlock. The calling
    // thread runs its range inline — the outer parallel_for already spreads
    // the work across the pool.
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t n = end - begin;
  // ~4 chunks per worker balances load without flooding the queue.
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c0 = begin; c0 < end; c0 += chunk) {
    const std::size_t c1 = std::min(end, c0 + chunk);
    futures.push_back(submit([c0, c1, &fn] {
      for (std::size_t i = c0; i < c1; ++i) fn(i);
    }));
  }
  // Drain every future before rethrowing: bailing out on the first failure
  // would leave queued chunks holding a dangling reference to `fn`.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  current_worker_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);
    task();  // exceptions propagate via the packaged_task's future
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace oclp
