#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace oclp {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance_of(const std::vector<double>& xs) {
  RunningStats st;
  for (double x : xs) st.add(x);
  return st.variance();
}

double mean_square(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x * x;
  return s / static_cast<double>(xs.size());
}

double correlation(const std::vector<double>& a, const std::vector<double>& b) {
  OCLP_CHECK(a.size() == b.size() && a.size() >= 2);
  const double ma = mean_of(a), mb = mean_of(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma, db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  OCLP_CHECK(x.size() == y.size() && x.size() >= 2);
  const double mx = mean_of(x), my = mean_of(y);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
  }
  LinearFit fit;
  fit.slope = sxx > 0.0 ? sxy / sxx : 0.0;
  fit.intercept = my - fit.slope * mx;
  double ss = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ss += r * r;
  }
  fit.residual_stddev =
      x.size() > 2 ? std::sqrt(ss / static_cast<double>(x.size() - 2)) : 0.0;
  return fit;
}

}  // namespace oclp
