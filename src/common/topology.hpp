// Host topology probe: which CPUs this process may run on, grouped by
// NUMA node. The execution-policy layer uses it to pin pool workers and
// to place per-chunk workspaces on the socket that will touch them (the
// chunk→worker schedule of ExecPolicy::pinned() is static, so first-touch
// allocation inside a chunk is allocation on that chunk's node).
//
// The probe reads sysfs (/sys/devices/system/node) and intersects each
// node's cpulist with the process affinity mask; on hosts without sysfs
// NUMA information (or non-Linux builds) it degenerates to a single node
// holding every affine CPU. Probing happens once and is cached — topology
// does not change under a running process, and a stable answer is what
// makes the pinned chunk→cpu→node chain deterministic.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace oclp {

struct TopologyNode {
  int id = 0;                ///< OS node id (node<N> in sysfs)
  std::vector<int> cpus;     ///< affine CPUs of this node, ascending
};

struct Topology {
  std::vector<TopologyNode> nodes;  ///< non-empty, ascending node id

  /// Total affine CPUs across nodes.
  std::size_t num_cpus() const {
    std::size_t n = 0;
    for (const auto& node : nodes) n += node.cpus.size();
    return n;
  }

  /// The i-th affine CPU in (node-major, cpu-ascending) order — the
  /// worker→CPU assignment rule of ThreadPool pinning. Wraps modulo the
  /// CPU count, so any worker index maps to a valid CPU.
  int cpu_for_worker(std::size_t worker) const;

  /// NUMA node id owning `cpu` (0 if the cpu is unknown to the probe).
  int node_of_cpu(int cpu) const;

  /// True when more than one node holds CPUs — whether pinning can change
  /// memory locality at all (it still stabilises caches on one node).
  bool multi_node() const { return nodes.size() > 1; }
};

/// The cached process-wide probe (thread-safe; probed on first use).
const Topology& topology();

/// An uncached probe — test hook, and what topology() runs once.
Topology probe_topology();

/// Parse a sysfs-style cpulist ("0-3,8,10-11") into ascending CPU ids.
/// Exposed for tests; malformed chunks are skipped rather than throwing
/// (sysfs is trusted but the parser must not take the process down).
std::vector<int> parse_cpulist(const std::string& list);

}  // namespace oclp
