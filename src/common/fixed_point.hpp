// Sign-magnitude fixed-point quantisation of Linear Projection coefficients.
//
// A coefficient λ ∈ (-1, 1) is stored as sign · m / 2^wl with magnitude
// code m ∈ [0, 2^wl - 1]. The hardware datapath multiplies the unsigned
// magnitude m by the (unsigned) data word and applies the sign during
// accumulation, so the over-clocking error model E(m, f) is indexed by the
// magnitude code exactly as the characterisation framework measures it
// (paper Sec. III enumerates all multiplicand values of the wl-bit port).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace oclp {

/// Quantised coefficient: value = sign * magnitude / 2^wordlength.
struct QuantCoeff {
  int sign = 1;           ///< +1 or -1 (sign of zero is +1)
  std::uint32_t magnitude = 0;  ///< unsigned multiplicand code, < 2^wordlength
  int wordlength = 8;     ///< magnitude bits (the multiplier port width)

  double value() const {
    return sign * static_cast<double>(magnitude) /
           static_cast<double>(1u << wordlength);
  }
};

/// Quantise x (clamped to the representable range) to wl magnitude bits.
inline QuantCoeff quantize_coeff(double x, int wl) {
  OCLP_CHECK(wl >= 1 && wl <= 20);
  QuantCoeff q;
  q.wordlength = wl;
  q.sign = x < 0.0 ? -1 : 1;
  const double scale = static_cast<double>(1u << wl);
  const double mag = std::abs(x) * scale;
  const auto max_code = (1u << wl) - 1;
  auto code = static_cast<std::uint64_t>(std::llround(mag));
  if (code > max_code) code = max_code;
  q.magnitude = static_cast<std::uint32_t>(code);
  return q;
}

/// Quantisation step for wl magnitude bits.
inline double quant_step(int wl) { return 1.0 / static_cast<double>(1u << wl); }

/// All representable coefficient values for wl bits, ascending
/// (-(2^wl-1)/2^wl ... -1/2^wl, 0, 1/2^wl ... (2^wl-1)/2^wl).
std::vector<double> inline coeff_grid(int wl) {
  OCLP_CHECK(wl >= 1 && wl <= 20);
  const int n = 1 << wl;
  std::vector<double> grid;
  grid.reserve(2 * n - 1);
  for (int m = n - 1; m >= 1; --m) grid.push_back(-static_cast<double>(m) / n);
  for (int m = 0; m <= n - 1; ++m) grid.push_back(static_cast<double>(m) / n);
  return grid;
}

/// Quantise a whole vector; returns codes and writes values if requested.
inline std::vector<QuantCoeff> quantize_vector(const std::vector<double>& xs, int wl) {
  std::vector<QuantCoeff> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(quantize_coeff(x, wl));
  return out;
}

}  // namespace oclp
