// Fixed-size worker pool with a blocking task queue and a chunked
// parallel_for. Used by the characterisation sweep engine and the design
// evaluators, where the work units (multiplier × frequency × location) are
// embarrassingly parallel.
//
// Optionally topology-pinned: each worker is bound to one affine CPU
// (node-major order from the topology() probe) and exposes its CPU/NUMA
// node, and tasks can be directed at a *specific* worker via submit_on().
// Directed submission is what makes NUMA-local workspaces real: a policy
// that always routes chunk c to worker c % size() re-touches the same
// workspace from the same CPU every time, so first-touch pages stay on
// that worker's node (see ExecPolicy::pinned).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace oclp {

class ThreadPool {
 public:
  /// threads == 0 selects the hardware concurrency (at least 1). With
  /// `pin_workers`, worker i is bound to topology().cpu_for_worker(i) —
  /// a no-op comfort loss on single-CPU hosts, a locality win on NUMA.
  explicit ThreadPool(std::size_t threads = 0, bool pin_workers = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// True iff this pool was constructed with worker pinning.
  bool pinned() const { return pinned_; }

  /// CPU worker i is (or would be) bound to, and its NUMA node. Defined
  /// for any i < size(); meaningful placement only when pinned().
  int worker_cpu(std::size_t i) const { return worker_cpu_[i]; }
  int worker_node(std::size_t i) const { return worker_node_[i]; }

  /// Enqueue a task; the returned future observes completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Enqueue a task that only worker `worker` may run. The backbone of
  /// deterministic chunk→CPU schedules: unlike submit(), the executing
  /// worker (hence CPU and NUMA node, when pinned) is fixed at submit
  /// time. Directed tasks win over shared-queue tasks on that worker.
  std::future<void> submit_on(std::size_t worker, std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the pool and wait for all.
  /// Iterations are distributed in contiguous chunks; exceptions from any
  /// chunk are rethrown (first one wins). Safe to call from inside a task
  /// running on this pool: nested calls execute their range inline on the
  /// calling worker instead of blocking on the queue (which could deadlock
  /// with every worker waiting for chunks nobody is free to run).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// True iff the calling thread is one of this pool's workers.
  bool current_thread_is_worker() const;

  /// Index of the calling worker within this pool, or -1 when the caller
  /// is not one of its workers.
  int current_worker_index() const;

  /// Tasks accepted but not yet picked up by a worker (shared + directed).
  /// A point-in-time gauge (another thread may pop concurrently);
  /// serving-layer metrics sample it for queue-depth telemetry.
  std::size_t queue_depth() const;

  /// Tasks currently executing on workers (same caveat as queue_depth()).
  std::size_t inflight() const { return inflight_.load(std::memory_order_relaxed); }

  /// Process-wide shared pool for library internals.
  static ThreadPool& global();

  /// Process-wide topology-pinned pool, created on first use — the pool
  /// behind ExecPolicy::pinned(). Kept separate from global() so unpinned
  /// consumers never inherit affinity constraints.
  static ThreadPool& pinned_global();

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  /// One directed queue per worker (guarded by the same mutex as queue_).
  /// A deque of queues: resize must not require copyable elements, and
  /// packaged_task is move-only.
  std::deque<std::queue<std::packaged_task<void()>>> worker_queues_;
  std::vector<int> worker_cpu_, worker_node_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::size_t> inflight_{0};
  bool stopping_ = false;
  bool pinned_ = false;
};

}  // namespace oclp
