// Fixed-size worker pool with a blocking task queue and a chunked
// parallel_for. Used by the characterisation sweep engine and the design
// evaluators, where the work units (multiplier × frequency × location) are
// embarrassingly parallel.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace oclp {

class ThreadPool {
 public:
  /// threads == 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future observes completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the pool and wait for all.
  /// Iterations are distributed in contiguous chunks; exceptions from any
  /// chunk are rethrown (first one wins). Safe to call from inside a task
  /// running on this pool: nested calls execute their range inline on the
  /// calling worker instead of blocking on the queue (which could deadlock
  /// with every worker waiting for chunks nobody is free to run).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// True iff the calling thread is one of this pool's workers.
  bool current_thread_is_worker() const;

  /// Tasks accepted but not yet picked up by a worker. A point-in-time
  /// gauge (another thread may pop concurrently); serving-layer metrics
  /// sample it for queue-depth telemetry.
  std::size_t queue_depth() const;

  /// Tasks currently executing on workers (same caveat as queue_depth()).
  std::size_t inflight() const { return inflight_.load(std::memory_order_relaxed); }

  /// Process-wide shared pool for library internals.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::size_t> inflight_{0};
  bool stopping_ = false;
};

}  // namespace oclp
