// Lightweight precondition / invariant checking used across the library.
//
// OCLP_CHECK is always on (these guard API misuse, not hot inner loops);
// OCLP_DCHECK compiles out in release builds and may be used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace oclp {

/// Error thrown on violated preconditions anywhere in the library.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "OCLP_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace oclp

#define OCLP_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr)) ::oclp::detail::check_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define OCLP_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream oclp_os_;                                       \
      oclp_os_ << msg;                                                   \
      ::oclp::detail::check_fail(#expr, __FILE__, __LINE__, oclp_os_.str()); \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define OCLP_DCHECK(expr) ((void)0)
#else
#define OCLP_DCHECK(expr) OCLP_CHECK(expr)
#endif
