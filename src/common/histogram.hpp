// Fixed-bin histogram used for the Figure-4 error histograms and the
// prior-distribution plots.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace oclp {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside are clamped to the edge bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add(const std::vector<double>& xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  double bin_center(std::size_t bin) const;
  /// Fraction of samples in the bin (0 when empty).
  double frequency(std::size_t bin) const;

  /// Multi-line ASCII rendering (one row per bin) for bench output.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace oclp
