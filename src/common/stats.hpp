// Streaming statistics (Welford) and small helpers shared by the
// characterisation framework (error variance), the area model (fit
// residuals) and the evaluation benches.
#pragma once

#include <cstddef>
#include <vector>

namespace oclp {

/// Numerically-stable single-pass mean/variance/extrema accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n); the error model uses population
  /// variance because the characterisation enumerates the stream it models.
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  /// Sample variance (divide by n-1).
  double sample_variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector (0 for empty).
double mean_of(const std::vector<double>& xs);

/// Population variance of a vector.
double variance_of(const std::vector<double>& xs);

/// Mean squared value of a vector.
double mean_square(const std::vector<double>& xs);

/// Pearson correlation of two equal-length vectors.
double correlation(const std::vector<double>& a, const std::vector<double>& b);

/// Ordinary least squares y ≈ a + b·x; returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Residual standard deviation (n-2 denominator).
  double residual_stddev = 0.0;
};
LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace oclp
