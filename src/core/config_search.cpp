#include "core/config_search.hpp"

#include <algorithm>
#include <map>

namespace oclp {

double config_rank_score(const ErrorModel& model, double freq_mhz) {
  double total = 0.0;
  const auto num_m = static_cast<std::uint32_t>(model.num_multiplicands());
  for (std::uint32_t m = 0; m < num_m; ++m)
    total += model.variance(m, freq_mhz);
  return total / static_cast<double>(num_m);
}

ConfigSearchResult characterise_config_space(const Device& device,
                                             const ConfigSearchSettings& settings,
                                             const ExecPolicy& exec) {
  OCLP_CHECK_MSG(!settings.configs.empty(),
                 "config search needs at least one candidate");
  OCLP_CHECK(settings.shortlist_per_wordlength >= 1);
  OCLP_CHECK(settings.target_freq_mhz > 0.0);

  // Candidates in deterministic MultConfig order, duplicates removed, so
  // the shortlist never depends on how the caller assembled the list.
  std::vector<MultConfig> candidates = settings.configs;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  ConfigSearchResult result;
  for (const auto& config : candidates)
    result.exhaustive_rows += std::size_t{1} << config.wordlength;

  // Rank within each word-length group by the estimate's score.
  struct Scored {
    MultConfig config;
    double score;
  };
  std::map<int, std::vector<Scored>> groups;
  ErrorModelMap full;  // exhaustive mode keeps the full sweeps for reuse
  for (const auto& config : candidates) {
    double score;
    if (settings.exhaustive) {
      ErrorModel model = characterise_multiplier(device, config, settings.wl_x,
                                                 settings.sweep, exec);
      result.full_rows += model.num_multiplicands();
      score = config_rank_score(model, settings.target_freq_mhz);
      full.emplace(config, std::move(model));
    } else {
      const SurrogateSweep sur = characterise_multiplier_surrogate(
          device, config, settings.wl_x, settings.sweep, settings.probe_stride,
          exec);
      result.surrogate_rows += sur.probed_rows;
      score = config_rank_score(sur.model, settings.target_freq_mhz);
    }
    groups[config.wordlength].push_back(Scored{config, score});
  }

  for (auto& [wl, scored] : groups) {
    (void)wl;
    // Stable on the pre-sorted candidate order: score ties resolve to the
    // smaller MultConfig, in both modes.
    std::stable_sort(scored.begin(), scored.end(),
                     [](const Scored& a, const Scored& b) {
                       return a.score < b.score;
                     });
    const std::size_t keep =
        std::min(settings.shortlist_per_wordlength, scored.size());
    for (std::size_t i = 0; i < keep; ++i)
      result.shortlisted.push_back(scored[i].config);
  }
  std::sort(result.shortlisted.begin(), result.shortlisted.end());

  // Full sweeps for the shortlist only (exhaustive mode already paid).
  for (const auto& config : result.shortlisted) {
    if (settings.exhaustive) {
      result.models.emplace(config, std::move(full.at(config)));
    } else {
      ErrorModel model = characterise_multiplier(device, config, settings.wl_x,
                                                 settings.sweep, exec);
      result.full_rows += model.num_multiplicands();
      result.models.emplace(config, std::move(model));
    }
  }
  return result;
}

}  // namespace oclp
