// Hardware realisation of a Linear Projection design and its evaluation in
// the paper's three domains (Section VI):
//
//  * predicted — the error model: training reconstruction MSE plus the
//    characterised Σ var(ε)/P (objective.hpp);
//  * simulated — the design's multipliers run through the over-clocking
//    timing simulation at the *characterised* placement and routing;
//  * actual   — the same simulation after a fresh placement & routing of
//    every multiplier across the device ("running on the board"), which is
//    what introduces the simulated-vs-actual deviations the paper reports.
//
// The datapath mirrors Section V: per output dimension k, P LUT-based
// generic multipliers compute |λ_pk|·x_p; signs and accumulation happen in
// the (pipelined, timing-safe) adder tree; the circuit subtracts the
// characterised mean error so ε is zero-mean (Section V-A).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "charlib/error_model.hpp"
#include "common/exec_policy.hpp"
#include "core/design.hpp"
#include "fabric/clock.hpp"
#include "fabric/device.hpp"
#include "timing/overclock_sim.hpp"

namespace oclp {

/// Where each of the design's P×K multipliers lands on the device.
struct CircuitPlan {
  std::vector<Placement> mult_placements;  ///< K·P entries, column-major
  bool with_jitter = true;
};

/// Simulated domain: every multiplier inherits the characterisation
/// placement and routing (what the error model was measured on).
CircuitPlan simulated_plan(const LinearProjectionDesign& design,
                           const Placement& characterised_at);

/// Actual domain: a fresh placement-and-routing run — multipliers spread
/// over the die with new routing seeds (deterministic in `par_seed`).
CircuitPlan actual_plan(const LinearProjectionDesign& design, const Device& device,
                        std::uint64_t par_seed);

/// The placed datapath. project() streams input samples and returns the
/// factor vector y (value units) including any over-clocking errors.
class ProjectionCircuit {
 public:
  /// `models` supplies the characterised mean-error constants the circuit
  /// subtracts, keyed by each column's multiplier configuration; pass
  /// nullptr to skip the correction (ablation).
  ProjectionCircuit(const LinearProjectionDesign& design, const Device& device,
                    const CircuitPlan& plan, int wl_x,
                    const ErrorModelMap* models,
                    std::uint64_t clock_seed);

  std::size_t dims_p() const { return design_.dims_p(); }
  std::size_t dims_k() const { return design_.dims_k(); }

  /// One clocked sample through all K·P multipliers. The out-param
  /// overload reuses the caller's buffer (no allocation once warm).
  void project(const std::vector<std::uint32_t>& x_codes, std::vector<double>& y);
  std::vector<double> project(const std::vector<std::uint32_t>& x_codes);

  /// Batched timed projection: clock the whole micro-batch through every
  /// multiplier in one OverclockSim::run_stream pass (64-lane settled
  /// eval + integer-picosecond sparse settle propagation), then capture
  /// each sample at its own jittered period — pre-converted once to PsGrid
  /// ticks — via the O(toggled) branch-poor unsigned-compare sampling
  /// rule. Bitwise identical to calling project() once per sample in
  /// order — including the per-sample ClockGen jitter draw order (same
  /// clock_seed ⇒ same clocks) and the sign/mean-correction accumulation
  /// order — and freely interleavable with project()/set_clock() (the
  /// multiplier register state carries across). The K·P per-multiplier
  /// streams are distributed per the circuit's ExecPolicy (default:
  /// pinned, one chunk per worker) with per-chunk reusable workspaces in
  /// a stable-address arena; no steady-state allocation beyond `ys`.
  /// Single-sample batches delegate to the scalar project() path, which
  /// beats the stream machinery at n = 1 and draws the identical period.
  /// `ys` is resized to batch.size() rows of K entries.
  void project_batch(const std::vector<const std::vector<std::uint32_t>*>& batch,
                     std::vector<std::vector<double>>& ys);

  /// Replace the policy project_batch distributes multiplier streams
  /// with. Any policy/chunking produces bitwise-identical projections
  /// (each multiplier's state lives in its own sim; the reduction is a
  /// fixed-order serial sum).
  void set_exec_policy(const ExecPolicy& exec) { exec_ = exec; }

  /// Error-free reference projection of the same input codes (what the
  /// circuit would produce with unlimited timing slack).
  std::vector<double> project_exact(const std::vector<std::uint32_t>& x_codes) const;

  /// Fully-settled projections of a batch of input-code vectors: the
  /// functional value of the placed datapath for each request — what a
  /// duplicate register with unlimited timing slack would capture. No
  /// mean-error correction (the settled datapath is exact, corrections are
  /// an over-clocking artefact). Runs 64 requests per eval64 pass through
  /// each multiplier's compiled netlist; timing-free by construction, so
  /// it never touches clock or register state. `ys` is resized to
  /// batch.size() rows of K entries.
  void project_settled(const std::vector<const std::vector<std::uint32_t>*>& batch,
                       std::vector<std::vector<double>>& ys);

  /// Re-target the clock without rebuilding the datapath: subsequent
  /// samples are clocked at `freq_mhz` and the characterised mean-error
  /// correction follows the new frequency. `timing_derate` injects a
  /// mid-run environment change (temperature step, droop): the per-cell
  /// delays are baked into the simulators at construction, but scaling
  /// every delay by d is equivalent to shrinking the capture period by d,
  /// so the effective simulated clock is freq_mhz · timing_derate while
  /// corrections (and reporting) stay at the nominal frequency. Multiplier
  /// register state is preserved across the switch, as on real hardware.
  void set_clock(double freq_mhz, double timing_derate = 1.0);

  /// Swap the characterised error models at run time (a re-characterisation
  /// push): the mean-error corrections are recomputed from `models` at the
  /// current nominal clock. `models` must cover every column's multiplier
  /// configuration (or be nullptr to drop corrections) and must outlive the
  /// circuit or the next swap — callers holding a SharedErrorModels
  /// snapshot satisfy this by keeping the shared_ptr alongside.
  void set_error_models(const ErrorModelMap* models);

  /// Nominal clock the circuit currently serves at (excludes any derate).
  double clock_mhz() const { return freq_mhz_; }

 private:
  void recompute_mean_correction();

  /// project_batch worker scratch: one per shard of the K·P multiplier
  /// range, reused across batches.
  struct BatchWorkspace {
    OverclockSim::SweepStream stream;
    std::vector<std::uint8_t> inputs;  ///< n × num_inputs row-major bits
  };

  /// The architecture is per-column: a CCM column's sims bake the
  /// coefficient into the netlist (only the x port remains an input, and a
  /// coefficient change requires a full re-lower), while its neighbour
  /// column may stream a generic array/Wallace multiplicand bus.
  static bool column_is_ccm(const DesignColumn& col) {
    return col.config.arch == MultArch::Ccm;
  }

  LinearProjectionDesign design_;
  int wl_x_;
  const ErrorModelMap* models_;                      ///< may be nullptr
  std::vector<std::unique_ptr<OverclockSim>> sims_;  ///< K·P, column-major
  std::vector<double> mean_correction_;              ///< per (k): Σ_p sign·mean
  double freq_mhz_;
  double jitter_sigma_ns_;
  std::uint64_t clock_seed_;
  int retargets_ = 0;
  ClockGen clock_;
  bool first_sample_ = true;
  std::vector<std::uint8_t> in_;            ///< project() scratch, reused
  std::vector<std::uint64_t> lane_words_;   ///< project_settled() scratch
  // project_batch scratch, reused across batches.
  std::vector<double> periods_;             ///< per-sample jittered periods
  std::vector<std::uint64_t> periods_ticks_;  ///< the same, as PsGrid ticks
  std::vector<double> contrib_;             ///< K·P × n per-multiplier terms
  ChunkArena<BatchWorkspace> batch_ws_;     ///< one stable slot per chunk
  /// Stream-distribution policy. One chunk per worker mirrors the shard
  /// count the hand-rolled fan-out used (multiplier streams are uniform,
  /// so finer chunks only add submission overhead). Pinned by default:
  /// chunk c always runs on the same CPU, so its arena slot's pages stay
  /// cache- and NUMA-local across batches. The pinned pool spawns lazily
  /// on the first real fan-out, never from construction.
  ExecPolicy exec_ = ExecPolicy::pinned(ExecChunking{0, 1, 1});
};

/// End-to-end hardware evaluation: run `x` (value-domain P×N) through the
/// placed circuit, reconstruct in the original space, and return the mean
/// squared reconstruction error per element. `mu` is the design-time data
/// mean (subtracted from projections as a constant, error-free).
double evaluate_hardware_mse(const LinearProjectionDesign& design,
                             const Matrix& x, const std::vector<double>& mu,
                             const Device& device, const CircuitPlan& plan,
                             int wl_x, const ErrorModelMap* models,
                             std::uint64_t clock_seed);

}  // namespace oclp
