// A Linear Projection design: the quantised Λ matrix plus the hardware
// metadata the framework attaches to it (per-column multiplier
// configurations, target clock, estimated area, predicted error).
#pragma once

#include <string>
#include <vector>

#include "common/fixed_point.hpp"
#include "linalg/matrix.hpp"
#include "mult/multiplier.hpp"

namespace oclp {

/// One column of Λ (one projection vector), quantised to the word-length
/// of its multiplier configuration. The configuration is per-column: a
/// design may mix architectures and pipeline depths across its K output
/// dimensions (the widened search space makes that the common case).
struct DesignColumn {
  MultConfig config{MultArch::Array, 8, 1};
  std::vector<QuantCoeff> coeffs;  ///< P entries

  int wordlength() const { return config.wordlength; }
  /// Real values of the quantised coefficients.
  std::vector<double> values() const;
  /// True if every coefficient is zero (degenerate column).
  bool is_zero() const;
};

/// Build a column by quantising real values to `config`'s word-length.
DesignColumn make_column(const std::vector<double>& values,
                         const MultConfig& config);

struct LinearProjectionDesign {
  std::vector<DesignColumn> columns;  ///< K projection vectors
  double target_freq_mhz = 0.0;
  double area_estimate = 0.0;   ///< LEs (area model)
  double training_mse = 0.0;    ///< reconstruction MSE on training data
  double predicted_overclock_var = 0.0;  ///< Σ_k var(ε_k), value units
  std::string origin;           ///< "OF beta=4.0", "KLT wl=9", ...

  std::size_t dims_p() const { return columns.empty() ? 0 : columns.front().coeffs.size(); }
  std::size_t dims_k() const { return columns.size(); }

  /// Quantised Λ as a P×K matrix.
  Matrix basis() const;

  /// Predicted per-element objective T/(P·N) = MSE + Σ_k var(ε_k)/P
  /// (paper Section V-A with trace normalised per element).
  double predicted_objective() const;
};

}  // namespace oclp
