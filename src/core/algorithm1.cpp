#include "core/algorithm1.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bayes/prior.hpp"
#include "common/rng.hpp"
#include "core/objective.hpp"
#include "linalg/decompositions.hpp"

namespace oclp {

namespace {
constexpr double kRidge = 1e-10;
}

std::vector<std::size_t> pareto_front(const std::vector<CandidateProjection>& cands) {
  // Sort by area ascending (ties: MSE ascending); sweep keeping strictly
  // improving MSE — the classic min-min staircase.
  std::vector<std::size_t> order(cands.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (cands[a].area != cands[b].area) return cands[a].area < cands[b].area;
    return cands[a].mse < cands[b].mse;
  });
  std::vector<std::size_t> front;
  double best_mse = std::numeric_limits<double>::infinity();
  for (auto i : order) {
    if (cands[i].mse < best_mse) {
      front.push_back(i);
      best_mse = cands[i].mse;
    }
  }
  return front;
}

std::vector<std::size_t> select_by_bins(const std::vector<CandidateProjection>& cands,
                                        const std::vector<std::size_t>& pareto,
                                        int q) {
  OCLP_CHECK(q >= 1);
  if (pareto.empty()) return {};
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (auto i : pareto) {
    lo = std::min(lo, cands[i].mse);
    hi = std::max(hi, cands[i].mse);
  }
  if (!(hi > lo)) {
    // Degenerate MSE range: a single bin, one survivor.
    return {pareto.front()};
  }
  std::vector<std::size_t> chosen;
  std::vector<bool> filled(static_cast<std::size_t>(q), false);
  std::vector<std::size_t> best(static_cast<std::size_t>(q), 0);
  for (auto i : pareto) {
    auto bin = static_cast<std::size_t>(
        std::floor((cands[i].mse - lo) / (hi - lo) * q));
    if (bin >= static_cast<std::size_t>(q)) bin = static_cast<std::size_t>(q) - 1;
    if (!filled[bin] || cands[i].mse < cands[best[bin]].mse) {
      filled[bin] = true;
      best[bin] = i;
    }
  }
  for (std::size_t b = 0; b < static_cast<std::size_t>(q); ++b)
    if (filled[b]) chosen.push_back(best[b]);
  return chosen;
}

OptimisationFramework::OptimisationFramework(OptimisationSettings settings,
                                             Matrix x_train,
                                             ErrorModelMap models,
                                             AreaModel area)
    : settings_(std::move(settings)),
      x_centered_(std::move(x_train)),
      models_(std::move(models)),
      area_(std::move(area)) {
  OCLP_CHECK(settings_.dims_k >= 1);
  OCLP_CHECK_MSG(!settings_.configs.empty(),
                 "the configuration search list is empty");
  OCLP_CHECK(settings_.beta > 0.0 && settings_.target_freq_mhz > 0.0);
  OCLP_CHECK(settings_.q >= 1);
  OCLP_CHECK(x_centered_.rows() >= static_cast<std::size_t>(settings_.dims_k));
  OCLP_CHECK(x_centered_.cols() >= 2);
  for (const auto& config : settings_.configs) {
    const auto it = models_.find(config);
    OCLP_CHECK_MSG(it != models_.end(), "missing error model for " << config);
    it->second.require_config(config, "optimisation framework");
    OCLP_CHECK_MSG(area_.covers(config), "area model lacks " << config);
  }
  mu_ = center_rows(x_centered_);
}

std::vector<LinearProjectionDesign> OptimisationFramework::run(ThreadPool* pool) {
  return run(ExecPolicy::pooled(pool));
}

std::vector<LinearProjectionDesign> OptimisationFramework::run(
    const ExecPolicy& exec) {
  const auto p = x_centered_.rows();
  const std::size_t num_cfg = settings_.configs.size();

  // The prior depends only on (config, target frequency, β) — never on the
  // dimension or the parent — so each configuration's prior is built once
  // for the whole run instead of once per (parent × config) job.
  std::vector<CoeffPrior> priors;
  priors.reserve(num_cfg);
  for (const auto& config : settings_.configs)
    priors.push_back(make_prior(models_.at(config), config,
                                settings_.target_freq_mhz, settings_.beta));

  // Parents carried between dimensions; dimension 1 grows from the empty
  // design.
  std::vector<LinearProjectionDesign> parents(1);
  parents[0].target_freq_mhz = settings_.target_freq_mhz;

  for (int d = 0; d < settings_.dims_k; ++d) {
    const std::size_t jobs = parents.size() * num_cfg;
    std::vector<CandidateProjection> candidates(jobs);
    // One byte per flag: workers write distinct elements concurrently, and
    // std::vector<bool>'s bit packing would make that a data race.
    std::vector<std::uint8_t> valid(jobs, 0);

    // The residual of the training data under a parent's columns depends
    // only on the parent, so it is computed once per dimension here rather
    // than once per config job (a num_cfg-fold reduction of the
    // projection_factors + GEMM work). All config jobs of a parent
    // then read the shared matrix concurrently.
    std::vector<Matrix> residuals(parents.size());
    exec.for_each(0, parents.size(), [&](std::size_t parent_idx) {
      const LinearProjectionDesign& parent = parents[parent_idx];
      Matrix residual = x_centered_;
      if (!parent.columns.empty()) {
        const Matrix basis = parent.basis();
        const Matrix f = projection_factors(basis, x_centered_, kRidge);
        // Same policy one layer down; a pooled policy invoked from inside
        // its own pool runs inline, so this nests safely.
        residual -= multiply(basis, f, exec);
      }
      residuals[parent_idx] = std::move(residual);
    });

    exec.for_each(0, jobs, [&](std::size_t job) {
      const std::size_t parent_idx = job / num_cfg;
      const std::size_t cfg_idx = job % num_cfg;
      const MultConfig& config = settings_.configs[cfg_idx];
      const LinearProjectionDesign& parent = parents[parent_idx];
      const Matrix& residual = residuals[parent_idx];
      const CoeffPrior& prior = priors[cfg_idx];

      GibbsSettings gibbs = settings_.gibbs;
      // Seeded by the config's grid resolution, not its list index, so
      // reordering or widening the search list never reshuffles the chains
      // of configurations that were already in it.
      gibbs.seed = hash_mix(settings_.gibbs.seed,
                            static_cast<std::uint64_t>(d) << 32 | parent_idx,
                            hash_mix(static_cast<std::uint64_t>(config.wordlength),
                                     static_cast<std::uint64_t>(config.arch),
                                     static_cast<std::uint64_t>(config.pipeline_depth)));
      const GibbsResult sample = sample_projection(residual, prior, gibbs);

      DesignColumn col = make_column(sample.lambda, config);
      if (col.is_zero()) return;  // degenerate projection: drop candidate

      CandidateProjection cand;
      cand.design = parent;
      cand.design.columns.push_back(std::move(col));

      const Matrix basis = cand.design.basis();
      const Matrix f = projection_factors(basis, x_centered_, kRidge);
      cand.mse = reconstruction_mse(x_centered_, basis, f);

      double area = 0.0;
      for (const auto& c : cand.design.columns)
        area += area_.column_estimate(c.config, static_cast<int>(p),
                                      settings_.input_wordlength);
      cand.area = area;

      cand.design.training_mse = cand.mse;
      cand.design.area_estimate = cand.area;
      candidates[job] = std::move(cand);
      valid[job] = 1;
    });

    std::vector<CandidateProjection> live;
    live.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j)
      if (valid[j]) live.push_back(std::move(candidates[j]));
    OCLP_CHECK_MSG(!live.empty(), "every candidate collapsed at dimension " << d);

    const auto front = pareto_front(live);
    const auto picked = select_by_bins(live, front, settings_.q);
    parents.clear();
    for (auto i : picked) parents.push_back(std::move(live[i].design));
  }

  // Finalise: predicted over-clocking variance, origin tag, area order.
  for (auto& design : parents) {
    design.predicted_overclock_var = predicted_overclock_variance(design, models_);
    design.origin = "OF beta=" + std::to_string(settings_.beta);
  }
  std::sort(parents.begin(), parents.end(),
            [](const LinearProjectionDesign& a, const LinearProjectionDesign& b) {
              return a.area_estimate < b.area_estimate;
            });
  return parents;
}

}  // namespace oclp
