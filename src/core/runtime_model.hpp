// The run-time model of paper Section VI-E (Eqs. 7–8), fitted by the
// authors on an Intel Core-i7:
//
//   R(wl)  = 0.4266 · exp(0.6427 · wl)                       [seconds]
//   Time   = (1 + Q·(K−1)) · Σ_HP Σ_Freqs Σ_wl R(wl)         [seconds]
//
// R models the time to Gibbs-sample one projection vector of a given
// word-length (the grid grows as 2^wl, hence the exponential); the outer
// factor counts chains: dimension 1 runs once, dimensions 2..K run once
// per carried design Q. The paper's example — #Freqs=1, K=3, Q=5, #HP=2,
// wl ∈ [3..9] — evaluates to ≈ 6 400 s ("1 hour and 44 minutes").
#pragma once

#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace oclp {

/// Eq. 8: seconds to sample one projection vector of word-length wl.
inline double runtime_per_projection_s(int wl) {
  OCLP_CHECK(wl >= 1);
  return 0.4266 * std::exp(0.6427 * static_cast<double>(wl));
}

/// Eq. 7: seconds for a complete optimisation run.
inline double runtime_total_s(int num_freqs, int k, int q, int num_hyperparams,
                              const std::vector<int>& wordlengths) {
  OCLP_CHECK(num_freqs >= 1 && k >= 1 && q >= 1 && num_hyperparams >= 1);
  OCLP_CHECK(!wordlengths.empty());
  double per_chain_sum = 0.0;
  for (int wl : wordlengths) per_chain_sum += runtime_per_projection_s(wl);
  return (1.0 + static_cast<double>(q) * (k - 1)) * num_hyperparams * num_freqs *
         per_chain_sum;
}

}  // namespace oclp
