#include "core/design.hpp"

namespace oclp {

std::vector<double> DesignColumn::values() const {
  std::vector<double> v;
  v.reserve(coeffs.size());
  for (const auto& q : coeffs) v.push_back(q.value());
  return v;
}

bool DesignColumn::is_zero() const {
  for (const auto& q : coeffs)
    if (q.magnitude != 0) return false;
  return true;
}

DesignColumn make_column(const std::vector<double>& values,
                         const MultConfig& config) {
  DesignColumn col;
  col.config = config;
  col.coeffs = quantize_vector(values, config.wordlength);
  return col;
}

Matrix LinearProjectionDesign::basis() const {
  OCLP_CHECK(!columns.empty());
  Matrix b(dims_p(), dims_k());
  for (std::size_t k = 0; k < columns.size(); ++k) {
    OCLP_CHECK_MSG(columns[k].coeffs.size() == dims_p(),
                   "ragged design: column " << k);
    b.set_col(k, columns[k].values());
  }
  return b;
}

double LinearProjectionDesign::predicted_objective() const {
  const double p = static_cast<double>(dims_p());
  return training_mse + (p > 0 ? predicted_overclock_var / p : 0.0);
}

}  // namespace oclp
