// Header-only model; this TU anchors the library target.
#include "core/runtime_model.hpp"
