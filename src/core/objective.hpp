// The single objective function T of paper Section V-A:
//
//   T = tr{E[(X−ΛF)ᵀ(X−ΛF)]} + Σ_j var(ε_j)
//
// normalised per element (divide by P·N) so designs of any data size are
// comparable: objective = reconstruction MSE + Σ_j var(ε_j)/P. The first
// term is the dimensionality-reduction error; the second folds in the
// variance of the over-clocking errors ε at the multiplier outputs, taken
// from the characterised error model E(m, f) (value units), assuming the
// per-multiplier errors are uncorrelated and zero-mean (the circuit
// subtracts the characterised constant).
#pragma once

#include <map>

#include "charlib/error_model.hpp"
#include "core/design.hpp"
#include "linalg/matrix.hpp"

namespace oclp {

/// Predicted var(ε_k) of one design column at `freq_mhz`: the sum over the
/// column's P multipliers of E(m, f) in value units. The model must have
/// been characterised for the column's exact multiplier configuration.
double predicted_overclock_variance(const DesignColumn& column,
                                    const ErrorModel& model, double freq_mhz);

/// Σ_k var(ε_k) over all columns; `models` maps multiplier configuration →
/// error model and must cover every column's configuration.
double predicted_overclock_variance(const LinearProjectionDesign& design,
                                    const ErrorModelMap& models);

/// Reconstruction MSE of the quantised basis on (centered) training data:
/// ||X − Λ(ΛᵀΛ)⁻¹ΛᵀX||²/(P·N). `x_centered` must have zero row means.
double training_reconstruction_mse(const Matrix& basis, const Matrix& x_centered);

/// Full per-element objective T for a design on centered training data.
double objective_T(const LinearProjectionDesign& design, const Matrix& x_centered,
                   const ErrorModelMap& models);

}  // namespace oclp
