// Case-study constants (paper Table I) shared by benches and examples.
#pragma once

#include <cstddef>
#include <vector>

namespace oclp {

struct CaseStudySettings {
  std::size_t dims_p = 6;              ///< P: original dimensions (ℤ⁶)
  std::size_t dims_k = 3;              ///< K: projected dimensions (ℤ³)
  std::size_t characterisation_cases = 4900;
  std::size_t training_cases = 100;    ///< OF training set
  std::size_t test_cases = 5000;
  std::vector<double> betas{4.0, 8.0}; ///< Hyper-parameter values
  int q = 5;                           ///< designs carried between dimensions
  double clock_mhz = 310.0;            ///< target clock frequency
  int input_wordlength = 9;            ///< data word-length
  int wl_min = 3;                      ///< λ word-length sweep lower bound
  int wl_max = 9;                      ///< λ word-length sweep upper bound
  int burn_in = 1000;                  ///< Gibbs burn-in samples
  int projection_samples = 3000;       ///< Gibbs retained samples
};

inline CaseStudySettings paper_table1_settings() { return {}; }

}  // namespace oclp
