// Surrogate shortlisting over the widened configuration space.
//
// Promoting the multiplier architecture and pipeline depth to search
// dimensions multiplies the characterisation bill: every configuration in
// play needs its own full E(m, f) sweep (2^wl multiplicand rows × the
// frequency grid × locations), and a CCM configuration needs a circuit
// per constant on top. The shortlisting stage cuts that bill the way the
// paper's own word-length table cuts synthesis runs — with a cheap model
// of the expensive measurement:
//
//  1. every candidate configuration gets a *surrogate* sweep — only every
//     probe_stride-th multiplicand row is simulated, the rest are
//     interpolated (characterise_multiplier_surrogate);
//  2. within each word-length group, candidates are ranked by the
//     surrogate's mean error variance at the target frequency and the
//     best `shortlist_per_wordlength` survive;
//  3. only the shortlisted configurations get the full sweep, and only
//     those models are returned — the optimisation framework never sees a
//     config whose error model is interpolated.
//
// Grouping by word-length keeps the shortlist honest: word-length is the
// area/accuracy trade Algorithm 1 must keep exploring, so the surrogate
// only prunes *within* a word-length (array vs Wallace vs deeper
// pipelines), never across the word-length axis itself.
//
// `exhaustive = true` bypasses the surrogate: every candidate is fully
// swept and the ranking runs on the full models. When the surrogate ranks
// the groups the same way the full models do, both modes return identical
// model sets — the equivalence the sweep-savings test pins down.
#pragma once

#include <cstddef>
#include <vector>

#include "charlib/error_model.hpp"
#include "charlib/sweep.hpp"
#include "common/exec_policy.hpp"
#include "fabric/device.hpp"

namespace oclp {

struct ConfigSearchSettings {
  /// Candidate configurations (typically mult_config_range unions).
  std::vector<MultConfig> configs;
  int wl_x = 8;                  ///< streamed-data port width
  SweepSettings sweep;           ///< shared sweep parameters
  double target_freq_mhz = 310.0;  ///< ranking frequency
  std::size_t probe_stride = 4;  ///< surrogate row stride
  /// Configurations kept per word-length group after ranking.
  std::size_t shortlist_per_wordlength = 1;
  /// Skip the surrogate and fully sweep every candidate (reference mode).
  bool exhaustive = false;
};

struct ConfigSearchResult {
  /// Fully-swept error models of the shortlisted configurations — the map
  /// Algorithm 1 consumes.
  ErrorModelMap models;
  /// The shortlist, in MultConfig order.
  std::vector<MultConfig> shortlisted;
  std::size_t surrogate_rows = 0;  ///< multiplicand rows spent on probes
  std::size_t full_rows = 0;       ///< rows spent on full sweeps
  /// Rows an exhaustive pass over every candidate would have spent —
  /// the denominator of the sweep-savings claim.
  std::size_t exhaustive_rows = 0;
};

/// Mean error variance at `freq_mhz` over the whole multiplicand axis —
/// the scalar the shortlist ranks by (lower is better: less injected
/// over-clocking noise at the target clock).
double config_rank_score(const ErrorModel& model, double freq_mhz);

ConfigSearchResult characterise_config_space(const Device& device,
                                             const ConfigSearchSettings& settings,
                                             const ExecPolicy& exec = {});

}  // namespace oclp
