#include "core/circuit_eval.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/synthetic.hpp"
#include "fabric/timing_annotation.hpp"
#include "linalg/decompositions.hpp"
#include "mult/bitcodec.hpp"
#include "mult/ccm.hpp"
#include "mult/multiplier.hpp"

namespace oclp {

namespace {
constexpr double kRidge = 1e-10;
}

CircuitPlan simulated_plan(const LinearProjectionDesign& design,
                           const Placement& characterised_at) {
  CircuitPlan plan;
  plan.mult_placements.assign(design.dims_k() * design.dims_p(), characterised_at);
  return plan;
}

CircuitPlan actual_plan(const LinearProjectionDesign& design, const Device& device,
                        std::uint64_t par_seed) {
  Rng rng(hash_mix(par_seed, design.dims_k(), design.dims_p()));
  CircuitPlan plan;
  const std::size_t k = design.dims_k();
  const std::size_t p = design.dims_p();
  plan.mult_placements.reserve(k * p);
  // A real placement run packs the datapath into one contiguous region:
  // the K×P multiplier array becomes a block of clusters at a random
  // anchor, so the whole design sometimes straddles the slow corners of
  // the die — which is exactly the placement variation the paper observes
  // between compile-and-download cycles.
  const int col_pitch = 10;  // an 8-wide multiplier cluster plus routing gap
  const int row_pitch = 4;
  const int span_x = static_cast<int>(k - 1) * col_pitch + 9;
  const int span_y = static_cast<int>(p - 1) * row_pitch + 9;
  const int ax = static_cast<int>(
      rng.uniform_int(0, std::max(0, device.width() - span_x)));
  const int ay = static_cast<int>(
      rng.uniform_int(0, std::max(0, device.height() - span_y)));
  for (std::size_t kk = 0; kk < k; ++kk) {
    for (std::size_t pp = 0; pp < p; ++pp) {
      Placement pl;
      pl.x = std::min(ax + static_cast<int>(kk) * col_pitch, device.width() - 1);
      pl.y = std::min(ay + static_cast<int>(pp) * row_pitch, device.height() - 1);
      pl.route_seed = rng.next();
      plan.mult_placements.push_back(pl);
    }
  }
  return plan;
}

ProjectionCircuit::ProjectionCircuit(const LinearProjectionDesign& design,
                                     const Device& device, const CircuitPlan& plan,
                                     int wl_x,
                                     const ErrorModelMap* models,
                                     std::uint64_t clock_seed)
    : design_(design),
      wl_x_(wl_x),
      models_(models),
      freq_mhz_(design.target_freq_mhz),
      jitter_sigma_ns_(plan.with_jitter ? device.config().jitter_sigma_ns : 0.0),
      clock_seed_(clock_seed),
      clock_(design.target_freq_mhz, jitter_sigma_ns_, clock_seed) {
  const std::size_t p = design.dims_p();
  const std::size_t k = design.dims_k();
  OCLP_CHECK(p >= 1 && k >= 1 && design.target_freq_mhz > 0.0);
  OCLP_CHECK_MSG(plan.mult_placements.size() == k * p,
                 "plan has " << plan.mult_placements.size() << " placements for "
                             << k * p << " multipliers");

  sims_.reserve(k * p);
  for (std::size_t kk = 0; kk < k; ++kk) {
    const DesignColumn& col = design.columns[kk];
    for (std::size_t pp = 0; pp < p; ++pp) {
      const auto& place = plan.mult_placements[kk * p + pp];
      // A CCM column bakes the coefficient into the netlist (only the x
      // port remains an input), so the lowering is per-constant: any
      // coefficient change — a design hot-swap in particular — must come
      // back through here and pay a full re-lower of the cell.
      Netlist nl = column_is_ccm(col)
                       ? make_ccm_multiplier(col.config,
                                             col.coeffs[pp].magnitude, wl_x)
                       : make_multiplier(col.config, wl_x);
      auto delays = annotate_timing(nl, device, place);
      // IntegerExact: annotate_timing snaps onto the PsGrid, so the
      // integer settle kernel must lower — a failure here means a
      // mis-calibrated delay, not a legitimate fallback.
      sims_.push_back(std::make_unique<OverclockSim>(
          std::move(nl), std::move(delays), TimingMode::IntegerExact));
    }
  }
  recompute_mean_correction();
}

void ProjectionCircuit::recompute_mean_correction() {
  const std::size_t p = dims_p();
  const std::size_t k = dims_k();
  mean_correction_.assign(k, 0.0);
  if (models_ == nullptr) return;
  for (std::size_t kk = 0; kk < k; ++kk) {
    const DesignColumn& col = design_.columns[kk];
    const double scale = std::ldexp(1.0, col.wordlength() + wl_x_);
    const auto it = models_->find(col.config);
    OCLP_CHECK_MSG(it != models_->end(),
                   "no error model for " << col.config);
    // The map key promises the config, but the model carries its own tag —
    // a mis-filed entry (characterised on one config, filed under another)
    // must not correct this column's datapath.
    it->second.require_config(col.config, "projection circuit");
    // A CCM column's deployed coefficients must actually sit on the
    // characterised (m, f) grid — a swapped-in design with an out-of-grid
    // magnitude would otherwise read a row that was never measured.
    // Reject at (re)lower time, naming the output dimension.
    if (column_is_ccm(col)) {
      for (std::size_t pp = 0; pp < p; ++pp)
        OCLP_CHECK_MSG(
            col.coeffs[pp].magnitude < it->second.num_multiplicands(),
            "CCM output dimension " << kk << ", input " << pp
                                    << ": coefficient magnitude "
                                    << col.coeffs[pp].magnitude
                                    << " outside the characterised wl="
                                    << col.wordlength() << " grid ("
                                    << it->second.num_multiplicands()
                                    << " codes)");
    }
    for (std::size_t pp = 0; pp < p; ++pp)
      mean_correction_[kk] += col.coeffs[pp].sign *
                              it->second.mean_error(col.coeffs[pp].magnitude,
                                                    freq_mhz_) /
                              scale;
  }
}

void ProjectionCircuit::set_error_models(const ErrorModelMap* models) {
  models_ = models;
  recompute_mean_correction();
}

void ProjectionCircuit::set_clock(double freq_mhz, double timing_derate) {
  OCLP_CHECK_MSG(freq_mhz > 0.0 && timing_derate > 0.0,
                 "set_clock(" << freq_mhz << ", " << timing_derate << ")");
  freq_mhz_ = freq_mhz;
  // delay·d ≡ period/d: the derate folds into the effective clock. Each
  // retarget gets a fresh deterministic jitter stream.
  clock_ = ClockGen(freq_mhz * timing_derate, jitter_sigma_ns_,
                    hash_mix(clock_seed_, 0xC10C5E7ULL,
                             static_cast<std::uint64_t>(++retargets_)));
  recompute_mean_correction();
}

void ProjectionCircuit::project(const std::vector<std::uint32_t>& x_codes,
                                std::vector<double>& y) {
  const std::size_t p = dims_p();
  const std::size_t k = dims_k();
  OCLP_CHECK(x_codes.size() == p);

  // All multipliers share the mult_clk domain: one jittered period per edge.
  const double period = clock_.next_period_ns();

  y.assign(k, 0.0);
  for (std::size_t kk = 0; kk < k; ++kk) {
    const DesignColumn& col = design_.columns[kk];
    const bool ccm = column_is_ccm(col);
    const double scale = std::ldexp(1.0, col.wordlength() + wl_x_);
    for (std::size_t pp = 0; pp < p; ++pp) {
      OverclockSim& sim = *sims_[kk * p + pp];
      in_.clear();
      if (!ccm) append_bits(in_, col.coeffs[pp].magnitude, col.wordlength());
      append_bits(in_, x_codes[pp], wl_x_);
      if (first_sample_) {
        std::vector<std::uint8_t> init;
        if (!ccm) append_bits(init, col.coeffs[pp].magnitude, col.wordlength());
        append_bits(init, 0, wl_x_);
        sim.reset(init);
      }
      const auto out = sim.step(in_, period);
      const double product = static_cast<double>(from_bits(out));
      y[kk] += col.coeffs[pp].sign * product / scale;
    }
    y[kk] -= mean_correction_[kk];
  }
  first_sample_ = false;
}

std::vector<double> ProjectionCircuit::project(const std::vector<std::uint32_t>& x_codes) {
  std::vector<double> y;
  project(x_codes, y);
  return y;
}

void ProjectionCircuit::project_batch(
    const std::vector<const std::vector<std::uint32_t>*>& batch,
    std::vector<std::vector<double>>& ys) {
  const std::size_t p = dims_p();
  const std::size_t k = dims_k();
  const std::size_t n = batch.size();
  for (std::size_t s = 0; s < n; ++s)
    OCLP_CHECK(batch[s] != nullptr && batch[s]->size() == p);
  ys.resize(n);
  if (n == 0) return;
  if (n == 1) {
    // A single sample can't amortise the stream machinery (64-lane row
    // fills, toggle snapshot, chunk fan-out) and the batch path loses to
    // the scalar one. project() consumes the same single jittered period
    // this path would draw, so delegating is bitwise identical.
    project(*batch[0], ys[0]);
    return;
  }

  // All multipliers share the mult_clk domain; one jittered period per
  // edge, drawn in sample order — the exact draw sequence a project()
  // loop would consume, so the two paths see identical clocks. The
  // integer capture threshold ⌊period·2^10⌋ is converted once per sample
  // here instead of once per (multiplier, sample) in the capture loop;
  // the conversion is exact for arbitrary jittered periods (see PsGrid),
  // so tick capture matches the double rule bitwise.
  periods_.resize(n);
  periods_ticks_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    periods_[s] = clock_.next_period_ns();
    periods_ticks_[s] = PsGrid::period_ticks(periods_[s]);
  }

  const std::size_t kp = k * p;
  const bool need_reset = first_sample_;
  contrib_.resize(kp * n);

  // Distribute the K·P independent multiplier streams per the policy.
  // Each chunk owns a reusable workspace; each multiplier's register
  // state lives in its sim, so the chunk → multiplier mapping never
  // affects results and the reduction below is a fixed-order serial sum.
  batch_ws_.ensure(exec_.num_chunks(kp));
  exec_.for_chunks(0, kp, [&](std::size_t m0, std::size_t m1,
                              std::size_t chunk) {
    BatchWorkspace& ws = batch_ws_.at(chunk);
    for (std::size_t m = m0; m < m1; ++m) {
      const std::size_t kk = m / p, pp = m % p;
      const DesignColumn& col = design_.columns[kk];
      const bool ccm = column_is_ccm(col);
      const double scale = std::ldexp(1.0, col.wordlength() + wl_x_);
      OverclockSim& sim = *sims_[m];
      // CCM netlists expose only the x port (the constant is baked in).
      const std::size_t cb =
          ccm ? 0 : static_cast<std::size_t>(col.wordlength());
      const std::size_t nin = cb + static_cast<std::size_t>(wl_x_);

      if (need_reset) {
        std::vector<std::uint8_t> init;
        if (!ccm) append_bits(init, col.coeffs[pp].magnitude, col.wordlength());
        append_bits(init, 0, wl_x_);
        sim.reset(init);
      }

      // Row-major input-bit matrix: the fixed multiplicand bits (generic
      // path only) plus one streamed operand per sample.
      ws.inputs.resize(n * nin);
      const std::uint32_t mag = col.coeffs[pp].magnitude;
      for (std::size_t s = 0; s < n; ++s) {
        std::uint8_t* row = ws.inputs.data() + s * nin;
        for (std::size_t b = 0; b < cb; ++b)
          row[b] = static_cast<std::uint8_t>((mag >> b) & 1u);
        const std::uint32_t x = (*batch[s])[pp];
        for (std::size_t b = cb; b < nin; ++b)
          row[b] = static_cast<std::uint8_t>((x >> (b - cb)) & 1u);
      }
      sim.run_stream(ws.inputs.data(), n, ws.stream);

      // Per-sample signed, scaled product — the exact expression project()
      // accumulates, evaluated per multiplier into an SoA slab. Integer
      // capture when the sim lowered integer (IntegerExact above, so
      // always in practice): unsigned tick compares against the
      // pre-converted thresholds.
      double* c = contrib_.data() + m * n;
      if (sim.integer_kernel()) {
        for (std::size_t s = 0; s < n; ++s) {
          const double product = static_cast<double>(
              ws.stream.capture_word_ticks(s, periods_ticks_[s]));
          c[s] = col.coeffs[pp].sign * product / scale;
        }
      } else {
        for (std::size_t s = 0; s < n; ++s) {
          const double product =
              static_cast<double>(ws.stream.capture_word(s, periods_[s]));
          c[s] = col.coeffs[pp].sign * product / scale;
        }
      }
    }
  });
  first_sample_ = false;

  // Serial reduction in project()'s accumulation order (pp ascending per
  // output dimension, correction last): floating-point addition order is
  // what makes the batch bitwise-identical to the sequential loop.
  for (std::size_t s = 0; s < n; ++s) {
    ys[s].assign(k, 0.0);
    for (std::size_t kk = 0; kk < k; ++kk) {
      double acc = 0.0;
      for (std::size_t pp = 0; pp < p; ++pp)
        acc += contrib_[(kk * p + pp) * n + s];
      ys[s][kk] = acc - mean_correction_[kk];
    }
  }
}

void ProjectionCircuit::project_settled(
    const std::vector<const std::vector<std::uint32_t>*>& batch,
    std::vector<std::vector<double>>& ys) {
  const std::size_t p = dims_p();
  const std::size_t k = dims_k();
  ys.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    OCLP_CHECK(batch[i] != nullptr && batch[i]->size() == p);
    ys[i].assign(k, 0.0);
  }

  for (std::size_t base = 0; base < batch.size(); base += 64) {
    const std::size_t lanes = std::min<std::size_t>(64, batch.size() - base);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const DesignColumn& col = design_.columns[kk];
      const bool ccm = column_is_ccm(col);
      const double scale = std::ldexp(1.0, col.wordlength() + wl_x_);
      for (std::size_t pp = 0; pp < p; ++pp) {
        const CompiledNetlist& cnl = sims_[kk * p + pp]->compiled();
        lane_words_.assign(cnl.num_nets(), 0);
        // Multiplicand bits (generic path only — a CCM has no such port)
        // are shared by every lane; streamed-operand bits carry one
        // request per lane.
        const std::size_t cb =
            ccm ? 0 : static_cast<std::size_t>(col.wordlength());
        if (!ccm)
          for (int b = 0; b < col.wordlength(); ++b)
            if ((col.coeffs[pp].magnitude >> b) & 1u)
              lane_words_[static_cast<std::size_t>(cnl.input_net(
                  static_cast<std::size_t>(b)))] = ~std::uint64_t{0};
        for (std::size_t l = 0; l < lanes; ++l) {
          const std::uint32_t x = (*batch[base + l])[pp];
          for (int b = 0; b < wl_x_; ++b)
            lane_words_[static_cast<std::size_t>(cnl.input_net(
                cb + static_cast<std::size_t>(b)))] |=
                static_cast<std::uint64_t>((x >> b) & 1u) << l;
        }
        cnl.eval64(lane_words_);
        for (std::size_t l = 0; l < lanes; ++l) {
          std::uint64_t product = 0;
          for (std::size_t o = 0; o < cnl.num_outputs(); ++o)
            product |=
                ((lane_words_[static_cast<std::size_t>(cnl.out_net(o))] >> l) & 1u)
                << o;
          ys[base + l][kk] += col.coeffs[pp].sign *
                              static_cast<double>(product) / scale;
        }
      }
    }
  }
}

std::vector<double> ProjectionCircuit::project_exact(
    const std::vector<std::uint32_t>& x_codes) const {
  const std::size_t p = dims_p();
  std::vector<double> y(dims_k(), 0.0);
  for (std::size_t kk = 0; kk < dims_k(); ++kk) {
    const DesignColumn& col = design_.columns[kk];
    const double scale = std::ldexp(1.0, col.wordlength() + wl_x_);
    for (std::size_t pp = 0; pp < p; ++pp) {
      const double product = static_cast<double>(col.coeffs[pp].magnitude) *
                             static_cast<double>(x_codes[pp]);
      y[kk] += col.coeffs[pp].sign * product / scale;
    }
  }
  return y;
}

double evaluate_hardware_mse(const LinearProjectionDesign& design,
                             const Matrix& x, const std::vector<double>& mu,
                             const Device& device, const CircuitPlan& plan,
                             int wl_x, const ErrorModelMap* models,
                             std::uint64_t clock_seed) {
  OCLP_CHECK(x.rows() == design.dims_p() && mu.size() == design.dims_p());
  const Matrix basis = design.basis();
  const Matrix normaliser = projection_normaliser(basis, kRidge);
  // Design-time constant Λᵀμ, applied after the datapath (error-free).
  std::vector<double> offset(design.dims_k(), 0.0);
  for (std::size_t k = 0; k < design.dims_k(); ++k)
    offset[k] = dot(basis.col(k), mu);

  ProjectionCircuit circuit(design, device, plan, wl_x, models, clock_seed);

  // Stream the whole evaluation set through the batched run_stream kernel
  // in one call — same y vectors as a per-sample project() loop, without
  // the per-sample timed-interpreter tax.
  const std::size_t n = x.cols();
  std::vector<std::vector<std::uint32_t>> codes(n);
  std::vector<const std::vector<std::uint32_t>*> batch(n);
  std::vector<double> sample(design.dims_p());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t r = 0; r < design.dims_p(); ++r) sample[r] = x(r, i);
    codes[i] = encode_input(sample, wl_x);
    batch[i] = &codes[i];
  }
  std::vector<std::vector<double>> ys;
  circuit.project_batch(batch, ys);

  double total_sq = 0.0;
  std::vector<double> f(design.dims_k());
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double>& y = ys[i];
    for (std::size_t k = 0; k < y.size(); ++k) y[k] -= offset[k];
    // f = (ΛᵀΛ)⁻¹ y;  x̂ = μ + Λ f
    std::fill(f.begin(), f.end(), 0.0);
    for (std::size_t r = 0; r < design.dims_k(); ++r)
      for (std::size_t c = 0; c < design.dims_k(); ++c)
        f[r] += normaliser(r, c) * y[c];
    for (std::size_t r = 0; r < design.dims_p(); ++r) {
      double xhat = mu[r];
      for (std::size_t c = 0; c < design.dims_k(); ++c)
        xhat += basis(r, c) * f[c];
      const double err = x(r, i) - xhat;
      total_sq += err * err;
    }
  }
  return total_sq /
         (static_cast<double>(x.rows()) * static_cast<double>(x.cols()));
}

}  // namespace oclp
