// Algorithm 1 of the paper: the Linear Projection design optimisation
// framework, widened so the multiplier configuration (architecture ×
// word-length × pipeline depth) is the per-dimension decision variable.
//
// For each projected dimension d = 1..K, every carried candidate design is
// extended by one column at every configuration in the search list: a
// prior is formed from that configuration's own error model at the target
// frequency (Eq. 6), a projection vector is Gibbs-sampled from the
// residual data, the area is estimated from the per-configuration area
// model, and the candidate's MSE is recomputed with least-squares
// factors. The candidates on the area/MSE Pareto front are binned into Q
// equal-width MSE bins and the least-MSE member of each bin survives to
// the next dimension (the Pareto/binning step is unchanged from the
// paper). The final Q candidates become the returned designs
// (Pareto-ordered by area); their columns may mix configurations.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "area/area_model.hpp"
#include "bayes/gibbs.hpp"
#include "charlib/error_model.hpp"
#include "common/exec_policy.hpp"
#include "core/design.hpp"
#include "linalg/matrix.hpp"

namespace oclp {

struct OptimisationSettings {
  int dims_k = 3;            ///< K
  /// Multiplier configurations each new column is tried at (the paper's
  /// wl ∈ [3, 9] array sweep is mult_config_range(MultArch::Array, 3, 9)).
  /// Every entry needs an error model and area coverage.
  std::vector<MultConfig> configs = mult_config_range(MultArch::Array, 3, 9);
  double beta = 4.0;         ///< prior hyper-parameter
  double target_freq_mhz = 310.0;
  int q = 5;                 ///< designs carried between dimensions
  int input_wordlength = 9;  ///< data word-length (area/adder estimate)
  GibbsSettings gibbs;       ///< burn-in / samples / base seed
};

/// A candidate on the area/MSE plane (Algorithm 1's Proj tuples).
struct CandidateProjection {
  LinearProjectionDesign design;
  double area = 0.0;
  double mse = 0.0;  ///< training reconstruction MSE with least-squares F
};

/// Indices of the Pareto-optimal points (min MSE for a given area).
std::vector<std::size_t> pareto_front(const std::vector<CandidateProjection>& cands);

/// Q-bin selection over (MSE_min, MSE_max): the least-MSE candidate of each
/// non-empty bin (Algorithm 1's bin step).
std::vector<std::size_t> select_by_bins(const std::vector<CandidateProjection>& cands,
                                        const std::vector<std::size_t>& pareto,
                                        int q);

class OptimisationFramework {
 public:
  /// `x_train` is the raw (uncentered) value-domain training data, P×N;
  /// `models` maps every configuration in settings.configs to its error
  /// model; `area` must cover the same configurations.
  OptimisationFramework(OptimisationSettings settings, Matrix x_train,
                        ErrorModelMap models, AreaModel area);

  /// Run Algorithm 1; returns up to Q designs sorted by area. Config
  /// sweeps of all carried candidates are distributed per `exec` (the
  /// policy is also handed down to the residual GEMMs), defaulting to the
  /// global pool. Run-invariant work is hoisted: one prior per config
  /// for the whole run, one training-data residual per (dimension, parent).
  /// The designs are bitwise-independent of the policy: jobs write
  /// distinct candidate slots and each Gibbs chain is seeded per-job.
  std::vector<LinearProjectionDesign> run(const ExecPolicy& exec = {});

  /// Back-compat shim: run on `pool` (nullptr = the global pool).
  std::vector<LinearProjectionDesign> run(ThreadPool* pool);

  /// Data mean captured at construction (needed to evaluate the designs).
  const std::vector<double>& data_mean() const { return mu_; }

 private:
  OptimisationSettings settings_;
  Matrix x_centered_;
  std::vector<double> mu_;
  ErrorModelMap models_;
  AreaModel area_;
};

}  // namespace oclp
