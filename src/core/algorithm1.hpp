// Algorithm 1 of the paper: the Linear Projection design optimisation
// framework.
//
// For each projected dimension d = 1..K, every carried candidate design is
// extended by one column at every word-length in [wl_min, wl_max]: a prior
// is formed from the word-length's error model at the target frequency
// (Eq. 6), a projection vector is Gibbs-sampled from the residual data,
// the area is estimated from the area model, and the candidate's MSE is
// recomputed with least-squares factors. The candidates on the
// area/MSE Pareto front are binned into Q equal-width MSE bins and the
// least-MSE member of each bin survives to the next dimension. The final Q
// candidates become the returned designs (Pareto-ordered by area).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "area/area_model.hpp"
#include "bayes/gibbs.hpp"
#include "charlib/error_model.hpp"
#include "common/exec_policy.hpp"
#include "core/design.hpp"
#include "linalg/matrix.hpp"

namespace oclp {

struct OptimisationSettings {
  int dims_k = 3;            ///< K
  int wl_min = 3;            ///< word-length sweep (paper: 3..9)
  int wl_max = 9;
  double beta = 4.0;         ///< prior hyper-parameter
  double target_freq_mhz = 310.0;
  int q = 5;                 ///< designs carried between dimensions
  int input_wordlength = 9;  ///< data word-length (area/adder estimate)
  /// Multiplier micro-architecture the designs are realised with; the
  /// supplied error models and area model must have been characterised for
  /// the same architecture.
  MultArch arch = MultArch::Array;
  GibbsSettings gibbs;       ///< burn-in / samples / base seed
};

/// A candidate on the area/MSE plane (Algorithm 1's Proj tuples).
struct CandidateProjection {
  LinearProjectionDesign design;
  double area = 0.0;
  double mse = 0.0;  ///< training reconstruction MSE with least-squares F
};

/// Indices of the Pareto-optimal points (min MSE for a given area).
std::vector<std::size_t> pareto_front(const std::vector<CandidateProjection>& cands);

/// Q-bin selection over (MSE_min, MSE_max): the least-MSE candidate of each
/// non-empty bin (Algorithm 1's bin step).
std::vector<std::size_t> select_by_bins(const std::vector<CandidateProjection>& cands,
                                        const std::vector<std::size_t>& pareto,
                                        int q);

class OptimisationFramework {
 public:
  /// `x_train` is the raw (uncentered) value-domain training data, P×N;
  /// `models` maps every word-length in [wl_min, wl_max] to its error
  /// model; `area` must cover the same word-lengths.
  OptimisationFramework(OptimisationSettings settings, Matrix x_train,
                        std::map<int, ErrorModel> models, AreaModel area);

  /// Run Algorithm 1; returns up to Q designs sorted by area. Word-length
  /// sweeps of all carried candidates are distributed per `exec` (the
  /// policy is also handed down to the residual GEMMs), defaulting to the
  /// global pool. Run-invariant work is hoisted: one prior per word-length
  /// for the whole run, one training-data residual per (dimension, parent).
  /// The designs are bitwise-independent of the policy: jobs write
  /// distinct candidate slots and each Gibbs chain is seeded per-job.
  std::vector<LinearProjectionDesign> run(const ExecPolicy& exec = {});

  /// Back-compat shim: run on `pool` (nullptr = the global pool).
  std::vector<LinearProjectionDesign> run(ThreadPool* pool);

  /// Data mean captured at construction (needed to evaluate the designs).
  const std::vector<double>& data_mean() const { return mu_; }

 private:
  OptimisationSettings settings_;
  Matrix x_centered_;
  std::vector<double> mu_;
  std::map<int, ErrorModel> models_;
  AreaModel area_;
};

}  // namespace oclp
