#include "core/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "linalg/decompositions.hpp"

namespace oclp {

Matrix make_synthetic_dataset(const SyntheticDataConfig& cfg) {
  OCLP_CHECK(cfg.dims_p >= 1 && cfg.cases >= 2);
  OCLP_CHECK(cfg.latent_k >= 1 && cfg.latent_k <= cfg.dims_p);
  // Loading directions come from the structure seed only, so data sets
  // with different sample seeds live in the same latent subspace.
  Rng structure_rng(hash_mix(cfg.structure_seed, cfg.dims_p, cfg.latent_k));
  Matrix a(cfg.dims_p, cfg.latent_k);
  for (std::size_t r = 0; r < cfg.dims_p; ++r)
    for (std::size_t c = 0; c < cfg.latent_k; ++c) a(r, c) = structure_rng.normal();
  a = gram_schmidt(a);

  Rng rng(hash_mix(cfg.seed, cfg.dims_p, cfg.cases));

  std::vector<double> mode_sd(cfg.latent_k);
  for (std::size_t c = 0; c < cfg.latent_k; ++c)
    mode_sd[c] = cfg.latent_scale * std::pow(cfg.latent_decay, static_cast<double>(c));

  Matrix x(cfg.dims_p, cfg.cases);
  for (std::size_t i = 0; i < cfg.cases; ++i) {
    std::vector<double> sample(cfg.dims_p, 0.5);  // centre of the input range
    for (std::size_t c = 0; c < cfg.latent_k; ++c) {
      const double z = rng.normal(0.0, mode_sd[c]);
      for (std::size_t r = 0; r < cfg.dims_p; ++r) sample[r] += z * a(r, c);
    }
    for (std::size_t r = 0; r < cfg.dims_p; ++r) {
      sample[r] += rng.normal(0.0, cfg.noise);
      x(r, i) = std::clamp(sample[r], 0.0, 1.0 - 1e-9);
    }
  }
  return x;
}

std::vector<std::uint32_t> encode_input(const std::vector<double>& x, int wl_x) {
  OCLP_CHECK(wl_x >= 1 && wl_x <= 16);
  const double scale = static_cast<double>(1u << wl_x);
  const std::uint32_t max_code = (1u << wl_x) - 1;
  std::vector<std::uint32_t> codes(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    OCLP_DCHECK(x[i] >= 0.0);
    const auto c = static_cast<std::uint64_t>(std::llround(x[i] * scale));
    codes[i] = static_cast<std::uint32_t>(std::min<std::uint64_t>(c, max_code));
  }
  return codes;
}

}  // namespace oclp
