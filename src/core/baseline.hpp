// The reference designs the paper compares against: KLT basis (Section IV)
// quantised at each word-length and mapped to the same datapath, with no
// knowledge of over-clocking.
#pragma once

#include <map>
#include <vector>

#include "area/area_model.hpp"
#include "charlib/error_model.hpp"
#include "core/design.hpp"
#include "linalg/matrix.hpp"

namespace oclp {

/// A KLT design for one multiplier configuration: exact PCA basis of the
/// training data, every column quantised to the config's word-length and
/// realised with the config's architecture/depth. Area and training MSE
/// are filled; the predicted over-clocking variance is filled when
/// `models` is non-null (the "extension of the existing methodology" used
/// for the KLT predicted curves in Fig. 11).
LinearProjectionDesign make_klt_design(const Matrix& x_train, std::size_t k,
                                       const MultConfig& config,
                                       double target_freq_mhz,
                                       int input_wordlength, const AreaModel& area,
                                       const ErrorModelMap* models);

/// KLT designs across a configuration sweep (the baseline family of
/// Fig. 11; the paper's version is an array-only word-length sweep).
std::vector<LinearProjectionDesign> make_klt_family(
    const Matrix& x_train, std::size_t k, const std::vector<MultConfig>& configs,
    double target_freq_mhz, int input_wordlength, const AreaModel& area,
    const ErrorModelMap* models);

}  // namespace oclp
