#include "core/objective.hpp"

#include "linalg/decompositions.hpp"

namespace oclp {

double predicted_overclock_variance(const DesignColumn& column,
                                    const ErrorModel& model, double freq_mhz) {
  model.require_config(column.config, "objective");
  double var = 0.0;
  for (const auto& q : column.coeffs)
    var += model.variance_value_units(q.magnitude, freq_mhz);
  return var;
}

double predicted_overclock_variance(const LinearProjectionDesign& design,
                                    const ErrorModelMap& models) {
  double total = 0.0;
  for (const auto& col : design.columns) {
    const auto it = models.find(col.config);
    OCLP_CHECK_MSG(it != models.end(),
                   "no error model for " << col.config);
    total += predicted_overclock_variance(col, it->second, design.target_freq_mhz);
  }
  return total;
}

double training_reconstruction_mse(const Matrix& basis, const Matrix& x_centered) {
  OCLP_CHECK(basis.rows() == x_centered.rows());
  const Matrix f = projection_factors(basis, x_centered);
  return reconstruction_mse(x_centered, basis, f);
}

double objective_T(const LinearProjectionDesign& design, const Matrix& x_centered,
                   const ErrorModelMap& models) {
  const double mse = training_reconstruction_mse(design.basis(), x_centered);
  const double oc = predicted_overclock_variance(design, models);
  return mse + oc / static_cast<double>(design.dims_p());
}

}  // namespace oclp
