#include "core/baseline.hpp"

#include "core/objective.hpp"
#include "klt/klt.hpp"
#include "linalg/decompositions.hpp"

namespace oclp {

namespace {
constexpr double kRidge = 1e-10;
}

LinearProjectionDesign make_klt_design(const Matrix& x_train, std::size_t k,
                                       const MultConfig& config,
                                       double target_freq_mhz,
                                       int input_wordlength, const AreaModel& area,
                                       const ErrorModelMap* models) {
  OCLP_CHECK(k >= 1 && config.wordlength >= 1);
  const Matrix basis = klt_basis(x_train, k);

  LinearProjectionDesign design;
  design.target_freq_mhz = target_freq_mhz;
  design.origin = "KLT " + to_string(config);
  for (std::size_t c = 0; c < k; ++c)
    design.columns.push_back(make_column(basis.col(c), config));

  Matrix xc = x_train;
  center_rows(xc);
  const Matrix qbasis = design.basis();
  const Matrix f = projection_factors(qbasis, xc, kRidge);
  design.training_mse = (xc - qbasis * f).mean_square();

  double total_area = 0.0;
  for (const auto& col : design.columns)
    total_area += area.column_estimate(col.config,
                                       static_cast<int>(x_train.rows()),
                                       input_wordlength);
  design.area_estimate = total_area;

  if (models != nullptr)
    design.predicted_overclock_var = predicted_overclock_variance(design, *models);
  return design;
}

std::vector<LinearProjectionDesign> make_klt_family(
    const Matrix& x_train, std::size_t k, const std::vector<MultConfig>& configs,
    double target_freq_mhz, int input_wordlength, const AreaModel& area,
    const ErrorModelMap* models) {
  OCLP_CHECK(!configs.empty());
  std::vector<LinearProjectionDesign> family;
  family.reserve(configs.size());
  for (const auto& config : configs)
    family.push_back(make_klt_design(x_train, k, config, target_freq_mhz,
                                     input_wordlength, area, models));
  return family;
}

}  // namespace oclp
