#include "core/baseline.hpp"

#include "core/objective.hpp"
#include "klt/klt.hpp"
#include "linalg/decompositions.hpp"

namespace oclp {

namespace {
constexpr double kRidge = 1e-10;
}

LinearProjectionDesign make_klt_design(const Matrix& x_train, std::size_t k,
                                       int wordlength, double target_freq_mhz,
                                       int input_wordlength, const AreaModel& area,
                                       const std::map<int, ErrorModel>* models) {
  OCLP_CHECK(k >= 1 && wordlength >= 1);
  const Matrix basis = klt_basis(x_train, k);

  LinearProjectionDesign design;
  design.target_freq_mhz = target_freq_mhz;
  design.origin = "KLT wl=" + std::to_string(wordlength);
  for (std::size_t c = 0; c < k; ++c)
    design.columns.push_back(make_column(basis.col(c), wordlength));

  Matrix xc = x_train;
  center_rows(xc);
  const Matrix qbasis = design.basis();
  const Matrix f = projection_factors(qbasis, xc, kRidge);
  design.training_mse = (xc - qbasis * f).mean_square();

  double total_area = 0.0;
  for (const auto& col : design.columns)
    total_area += area.column_estimate(col.wordlength,
                                       static_cast<int>(x_train.rows()),
                                       input_wordlength);
  design.area_estimate = total_area;

  if (models != nullptr)
    design.predicted_overclock_var = predicted_overclock_variance(design, *models);
  return design;
}

std::vector<LinearProjectionDesign> make_klt_family(
    const Matrix& x_train, std::size_t k, int wl_min, int wl_max,
    double target_freq_mhz, int input_wordlength, const AreaModel& area,
    const std::map<int, ErrorModel>* models) {
  OCLP_CHECK(wl_min >= 1 && wl_min <= wl_max);
  std::vector<LinearProjectionDesign> family;
  family.reserve(static_cast<std::size_t>(wl_max - wl_min + 1));
  for (int wl = wl_min; wl <= wl_max; ++wl)
    family.push_back(make_klt_design(x_train, k, wl, target_freq_mhz,
                                     input_wordlength, area, models));
  return family;
}

}  // namespace oclp
