// Synthetic data generation standing in for the paper's case-study data.
//
// The paper projects ℤ⁶ → ℤ³ with 9-bit input data; the actual data source
// is unspecified (image-processing-like streams). We generate data with a
// controlled low-rank structure — K_eff strong latent directions plus
// isotropic noise, shifted and scaled into the unsigned 9-bit input range —
// which is exactly the regime where a K-dimensional linear projection is
// meaningful, and keeps every experiment deterministic.
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"

namespace oclp {

struct SyntheticDataConfig {
  std::size_t dims_p = 6;
  std::size_t cases = 1000;
  std::size_t latent_k = 3;      ///< number of strong modes of variation
  double latent_decay = 0.55;    ///< eigenvalue ratio between modes
  double latent_scale = 0.16;    ///< stddev of the strongest mode (value units)
  double noise = 0.002;          ///< isotropic residual noise stddev
  /// Seed of the latent structure (loading directions). Training and test
  /// sets of one experiment must share it — they are draws from the same
  /// population — while `seed` varies per draw.
  std::uint64_t structure_seed = 2014;
  std::uint64_t seed = 42;       ///< seed of the sampled cases
};

/// P×N data matrix with values in [0, 1) (one case per column).
Matrix make_synthetic_dataset(const SyntheticDataConfig& cfg);

/// Quantise one value-domain sample to unsigned `wl_x`-bit input codes.
std::vector<std::uint32_t> encode_input(const std::vector<double>& x, int wl_x);

}  // namespace oclp
