#include "netlist/pipeline.hpp"

#include <algorithm>

namespace oclp {

Netlist pipeline_netlist(const Netlist& nl, int depth) {
  OCLP_CHECK_MSG(depth >= 1, "pipeline depth must be >= 1, got " << depth);
  if (depth == 1) return nl;

  const auto lvl = nl.levels();
  int lmax = 0;
  for (int l : lvl) lmax = std::max(lmax, l);
  if (lmax == 0) return nl;

  // Balanced cuts: stage s covers levels (s*cut, (s+1)*cut]. A netlist
  // shallower than the requested depth gets one stage per level.
  const int stages = std::min(depth, lmax);
  const int cut = (lmax + stages - 1) / stages;
  auto stage_of = [&](std::int32_t net) {
    const int l = lvl[net];
    return l == 0 ? 0 : std::min(stages - 1, (l - 1) / cut);
  };

  NetlistBuilder b;
  constexpr std::int32_t kUnset = -1;
  // staged[net][s] = net id in the rebuilt netlist carrying `net`'s value
  // into stage s (registered stage_of(net) .. s-1 times).
  std::vector<std::vector<std::int32_t>> staged(
      nl.num_nets(), std::vector<std::int32_t>(static_cast<std::size_t>(stages), kUnset));
  std::vector<std::uint8_t> is_const(nl.num_nets(), 0);

  const auto in_nets = b.add_inputs(nl.num_inputs());
  for (std::size_t i = 0; i < nl.num_inputs(); ++i)
    staged[i][0] = in_nets[i];

  auto at_stage = [&](std::int32_t net, int s) -> std::int32_t {
    if (is_const[net]) return staged[net][static_cast<std::size_t>(stage_of(net))];
    auto& row = staged[net];
    int s0 = s;
    while (row[static_cast<std::size_t>(s0)] == kUnset) --s0;
    for (int t = s0 + 1; t <= s; ++t)
      row[static_cast<std::size_t>(t)] = b.reg_(row[static_cast<std::size_t>(t - 1)]);
    return row[static_cast<std::size_t>(s)];
  };

  for (std::size_t i = 0; i < nl.cells().size(); ++i) {
    const Cell& c = nl.cells()[i];
    const std::int32_t out = nl.cell_output_net(i);
    const int s = stage_of(out);
    if (c.type == CellType::Const0 || c.type == CellType::Const1) {
      staged[out][static_cast<std::size_t>(s)] = b.add_cell(c.type);
      is_const[out] = 1;
      continue;
    }
    const int arity = cell_arity(c.type);
    std::array<std::int32_t, 3> in{-1, -1, -1};
    for (int k = 0; k < arity; ++k) in[k] = at_stage(c.in[k], s);
    staged[out][static_cast<std::size_t>(s)] = b.add_cell(c.type, in[0], in[1], in[2]);
  }

  std::vector<std::int32_t> outs;
  outs.reserve(nl.outputs().size());
  for (std::int32_t o : nl.outputs()) outs.push_back(at_stage(o, stages - 1));
  b.mark_outputs(outs);
  return b.build();
}

std::size_t pipeline_register_count(const Netlist& nl) {
  std::size_t n = 0;
  for (const auto& c : nl.cells())
    if (c.type == CellType::PipeReg) ++n;
  return n;
}

}  // namespace oclp
