#include "netlist/compiled.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace oclp {

double PsGrid::snap_ns(double ns) {
  return std::round(ns * kTicksPerNs) / kTicksPerNs;
}

bool PsGrid::try_ticks(double ns, std::uint32_t& ticks) {
  if (!(ns >= 0.0)) return false;  // negative or NaN
  const double scaled = std::ldexp(ns, kFracBits);  // exact (power of two)
  if (!(scaled <= static_cast<double>(std::numeric_limits<std::uint32_t>::max())))
    return false;
  if (scaled != std::floor(scaled)) return false;  // off-grid
  ticks = static_cast<std::uint32_t>(scaled);
  return true;
}

std::uint64_t PsGrid::period_ticks(double period_ns) {
  const double scaled = std::floor(std::ldexp(period_ns, kFracBits));
  if (!(scaled > 0.0)) return 0;
  if (scaled >= 18446744073709551616.0)  // 2^64 (exactly representable)
    return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(scaled);
}

namespace {

// Slot references during lowering, before compiled ids exist: original net
// ids, or a sentinel marker for baked/unused (kSlot0) and constant-one
// (kSlot1) fanins.
constexpr std::int32_t kSlot0 = -1;
constexpr std::int32_t kSlot1 = -2;

// Base truth table of a cell: bit (a | b<<1 | c<<2) is cell_eval on those
// fanin values, with bits beyond the arity forced to 0 (exactly what the
// interpreter feeds unused inputs). The table is therefore replicated over
// unused bits, which makes the all-0 / all-1 constant test exact.
std::uint8_t base_truth_table(CellType t) {
  const int arity = cell_arity(t);
  std::uint8_t tt = 0;
  for (int idx = 0; idx < 8; ++idx) {
    const bool a = arity > 0 && (idx & 1);
    const bool b = arity > 1 && (idx & 2);
    const bool c = arity > 2 && (idx & 4);
    if (cell_eval(t, a, b, c)) tt |= static_cast<std::uint8_t>(1u << idx);
  }
  return tt;
}

// Bake fanin slot k to the constant v: every index reads the table entry
// with bit k forced to v, so the result no longer depends on that bit.
std::uint8_t bake_slot(std::uint8_t tt, int k, int v) {
  std::uint8_t out = 0;
  for (int idx = 0; idx < 8; ++idx) {
    const int src = (idx & ~(1 << k)) | (v << k);
    if ((tt >> src) & 1) out |= static_cast<std::uint8_t>(1u << idx);
  }
  return out;
}

}  // namespace

CompiledNetlist CompiledNetlist::compile(const Netlist& nl,
                                         const CompileOptions& opts) {
  const std::size_t ni = nl.num_inputs();
  const auto& cells = nl.cells();
  const auto n_orig = static_cast<std::int32_t>(nl.num_nets());

  CompiledNetlist c;
  c.num_inputs_ = ni;
  c.stats_.source_cells = cells.size();

  // konst: -1 unknown, 0/1 constant. rep: original net carrying the value
  // (an input or a kept cell's output) when not constant.
  std::vector<std::int8_t> konst(static_cast<std::size_t>(n_orig), -1);
  std::vector<std::int32_t> rep(static_cast<std::size_t>(n_orig));
  for (std::int32_t n = 0; n < static_cast<std::int32_t>(ni); ++n) rep[n] = n;

  // Kept (non-elided, non-folded) cells, still in original order.
  struct Kept {
    std::uint8_t tt;
    std::int32_t slot[3];  // kSlot0 / kSlot1 / original rep net
    std::size_t orig;
  };
  std::vector<Kept> kept;
  kept.reserve(cells.size());
  // cell_of[orig net] = index into `kept`, or -1.
  std::vector<std::int32_t> cell_of(static_cast<std::size_t>(n_orig), -1);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const auto out = static_cast<std::int32_t>(ni + i);
    if (cell.type == CellType::Const0 || cell.type == CellType::Const1) {
      konst[out] = cell.type == CellType::Const1 ? 1 : 0;
      ++c.stats_.elided_free;
      continue;
    }
    if (cell.type == CellType::Buf) {
      konst[out] = konst[cell.in[0]];
      rep[out] = konst[out] < 0 ? rep[cell.in[0]] : 0;
      ++c.stats_.elided_free;
      continue;
    }
    const int arity = cell_arity(cell.type);
    std::uint8_t tt = base_truth_table(cell.type);
    Kept k;
    k.orig = i;
    for (int s = 0; s < 3; ++s) {
      if (s >= arity) {
        k.slot[s] = kSlot0;
        continue;
      }
      const std::int32_t in = cell.in[s];
      if (konst[in] >= 0) {
        if (opts.fold_constants) {
          tt = bake_slot(tt, s, konst[in]);
          k.slot[s] = kSlot0;
        } else {
          k.slot[s] = konst[in] ? kSlot1 : kSlot0;
        }
      } else {
        k.slot[s] = rep[in];
      }
    }
    if (opts.fold_constants && (tt == 0x00 || tt == 0xFF)) {
      konst[out] = tt == 0xFF ? 1 : 0;
      ++c.stats_.folded_constant;
      continue;
    }
    k.tt = tt;
    rep[out] = out;
    cell_of[out] = static_cast<std::int32_t>(kept.size());
    kept.push_back(k);
  }

  // Liveness from the outputs (identity when sweeping is disabled).
  std::vector<std::uint8_t> live(kept.size(), opts.sweep_dead ? 0 : 1);
  if (opts.sweep_dead) {
    std::vector<std::int32_t> stack;
    auto visit = [&](std::int32_t orig_net) {
      if (orig_net < static_cast<std::int32_t>(ni)) return;
      const std::int32_t ki = cell_of[orig_net];
      if (ki >= 0 && !live[ki]) {
        live[ki] = 1;
        stack.push_back(ki);
      }
    };
    for (const auto o : nl.outputs())
      if (konst[o] < 0) visit(rep[o]);
    while (!stack.empty()) {
      const std::int32_t ki = stack.back();
      stack.pop_back();
      for (const auto s : kept[ki].slot)
        if (s >= 0) visit(s);
    }
    for (const auto l : live)
      if (!l) ++c.stats_.swept_dead;
  }

  // Levelize the live cells: fanins of a level-l cell live strictly below
  // l. Levels are 1-based over cells; inputs and sentinels sit at 0.
  std::vector<std::int32_t> lvl(kept.size(), 0);
  std::size_t max_lvl = 0;
  for (std::size_t ki = 0; ki < kept.size(); ++ki) {
    if (!live[ki]) continue;
    std::int32_t m = 0;
    for (const auto s : kept[ki].slot) {
      if (s < static_cast<std::int32_t>(ni)) continue;  // sentinel or input
      m = std::max(m, lvl[cell_of[s]]);
    }
    lvl[ki] = m + 1;
    max_lvl = std::max(max_lvl, static_cast<std::size_t>(lvl[ki]));
  }

  // Bucket by level (stable in original order within a level) and assign
  // compiled ids so each level is a contiguous range.
  c.level_begin_.assign(max_lvl + 1, 0);
  for (std::size_t ki = 0; ki < kept.size(); ++ki)
    if (live[ki]) ++c.level_begin_[static_cast<std::size_t>(lvl[ki])];
  std::size_t acc = 0;
  for (std::size_t l = 1; l <= max_lvl; ++l) {
    const std::size_t count = c.level_begin_[l];
    c.level_begin_[l - 1] = acc;
    acc += count;
  }
  c.level_begin_[max_lvl] = acc;

  std::vector<std::size_t> cursor(c.level_begin_.begin(), c.level_begin_.end());
  std::vector<std::int32_t> compiled_id(kept.size(), -1);
  for (std::size_t ki = 0; ki < kept.size(); ++ki)
    if (live[ki])
      compiled_id[ki] = static_cast<std::int32_t>(
          cursor[static_cast<std::size_t>(lvl[ki]) - 1]++);

  // Emit the SoA arrays in compiled-id order.
  const std::size_t nc = acc;
  c.tt_.resize(nc);
  c.fanin_.resize(3 * nc);
  c.orig_cell_.resize(nc);
  auto map_slot = [&](std::int32_t s) -> std::int32_t {
    if (s == kSlot0) return kConst0Net;
    if (s == kSlot1) return kConst1Net;
    if (s < static_cast<std::int32_t>(ni)) return static_cast<std::int32_t>(2 + s);
    return c.cell_net(static_cast<std::size_t>(compiled_id[cell_of[s]]));
  };
  c.is_reg_.resize(nc);
  for (std::size_t ki = 0; ki < kept.size(); ++ki) {
    if (!live[ki]) continue;
    const auto ci = static_cast<std::size_t>(compiled_id[ki]);
    c.tt_[ci] = kept[ki].tt;
    c.orig_cell_[ci] = kept[ki].orig;
    c.is_reg_[ci] = cells[kept[ki].orig].type == CellType::PipeReg ? 1 : 0;
    if (c.is_reg_[ci]) c.has_regs_ = true;
    for (int s = 0; s < 3; ++s) c.fanin_[3 * ci + static_cast<std::size_t>(s)] = map_slot(kept[ki].slot[s]);
  }
  c.stats_.compiled_cells = nc;
  c.stats_.levels = max_lvl;

  // Original-net alias map and output descriptors.
  c.alias_.assign(static_cast<std::size_t>(n_orig), -1);
  for (std::int32_t n = 0; n < n_orig; ++n) {
    if (konst[n] >= 0) {
      c.alias_[n] = konst[n] ? kConst1Net : kConst0Net;
    } else if (rep[n] < static_cast<std::int32_t>(ni)) {
      c.alias_[n] = static_cast<std::int32_t>(2 + rep[n]);
    } else {
      const std::int32_t ki = cell_of[rep[n]];
      if (ki >= 0 && compiled_id[ki] >= 0)
        c.alias_[n] = c.cell_net(static_cast<std::size_t>(compiled_id[ki]));
    }
  }
  c.out_net_.resize(nl.outputs().size());
  for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
    c.out_net_[o] = c.alias_[nl.outputs()[o]];
    OCLP_CHECK_MSG(c.out_net_[o] >= 0, "output " << o << " lowered to a swept net");
  }
  return c;
}

std::vector<double> CompiledNetlist::gather_delays(
    const std::vector<double>& orig_cell_delay_ns) const {
  OCLP_CHECK_MSG(orig_cell_delay_ns.size() >= stats_.source_cells,
                 "need one delay per original cell: " << orig_cell_delay_ns.size()
                                                      << " vs " << stats_.source_cells);
  std::vector<double> d(num_cells());
  for (std::size_t ci = 0; ci < num_cells(); ++ci)
    d[ci] = orig_cell_delay_ns[orig_cell_[ci]];
  return d;
}

namespace {

// Worst-case levelized path sum of tick counts: the largest settle time
// the integer kernel can ever produce (every fanin toggles, every cell on
// the longest chain toggles). Computed in uint64 so the uint32 bound can
// be *checked* rather than assumed.
std::uint64_t critical_path_ticks_of(const CompiledNetlist& c,
                                     const std::vector<std::uint32_t>& ticks) {
  std::vector<std::uint64_t> arrive(c.num_nets(), 0);
  std::uint64_t worst = 0;
  const std::size_t base = 2 + c.num_inputs();
  for (std::size_t ci = 0; ci < c.num_cells(); ++ci) {
    std::uint64_t launch = arrive[static_cast<std::size_t>(c.fanin(ci, 0))];
    launch = std::max(launch, arrive[static_cast<std::size_t>(c.fanin(ci, 1))]);
    launch = std::max(launch, arrive[static_cast<std::size_t>(c.fanin(ci, 2))]);
    arrive[base + ci] = launch + ticks[ci];
    worst = std::max(worst, arrive[base + ci]);
  }
  return worst;
}

}  // namespace

std::vector<std::uint32_t> CompiledNetlist::quantise_delays(
    const std::vector<double>& cell_delay_ns,
    std::uint64_t* critical_path_ticks) const {
  OCLP_CHECK_MSG(cell_delay_ns.size() == num_cells(),
                 "one delay per compiled cell required: " << cell_delay_ns.size()
                                                          << " vs " << num_cells());
  std::vector<std::uint32_t> ticks(num_cells());
  for (std::size_t ci = 0; ci < num_cells(); ++ci)
    OCLP_CHECK_MSG(PsGrid::try_ticks(cell_delay_ns[ci], ticks[ci]),
                   "delay of cell " << orig_cell_[ci] << " (" << cell_delay_ns[ci]
                                    << " ns) is not an exact multiple of the 2^-"
                                    << PsGrid::kFracBits
                                    << " ns grid fitting uint32 ticks");
  const std::uint64_t worst = critical_path_ticks_of(*this, ticks);
  OCLP_CHECK_MSG(worst <= std::numeric_limits<std::uint32_t>::max(),
                 "worst-case settle path (" << worst
                                            << " ticks) overflows the uint32 "
                                               "integer-picosecond kernel");
  if (critical_path_ticks != nullptr) *critical_path_ticks = worst;
  return ticks;
}

bool CompiledNetlist::try_quantise_delays(
    const std::vector<double>& cell_delay_ns, std::vector<std::uint32_t>& ticks,
    std::uint64_t* critical_path_ticks) const {
  if (cell_delay_ns.size() != num_cells()) return false;
  ticks.resize(num_cells());
  for (std::size_t ci = 0; ci < num_cells(); ++ci)
    if (!PsGrid::try_ticks(cell_delay_ns[ci], ticks[ci])) return false;
  const std::uint64_t worst = critical_path_ticks_of(*this, ticks);
  if (worst > std::numeric_limits<std::uint32_t>::max()) return false;
  if (critical_path_ticks != nullptr) *critical_path_ticks = worst;
  return true;
}

void CompiledNetlist::eval(std::vector<std::uint8_t>& vals) const {
  OCLP_CHECK(vals.size() == num_nets());
  vals[kConst0Net] = 0;
  vals[kConst1Net] = 1;
  const std::size_t base = 2 + num_inputs_;
  for (std::size_t ci = 0; ci < tt_.size(); ++ci) {
    const std::int32_t* f = &fanin_[3 * ci];
    const unsigned idx = static_cast<unsigned>(vals[f[0]]) |
                         static_cast<unsigned>(vals[f[1]]) << 1 |
                         static_cast<unsigned>(vals[f[2]]) << 2;
    vals[base + ci] = static_cast<std::uint8_t>((tt_[ci] >> idx) & 1u);
  }
}

void CompiledNetlist::eval_outputs(const std::vector<std::uint8_t>& inputs,
                                   std::vector<std::uint8_t>& vals,
                                   std::vector<std::uint8_t>& out) const {
  OCLP_CHECK(inputs.size() == num_inputs_);
  vals.resize(num_nets());
  for (std::size_t i = 0; i < num_inputs_; ++i) vals[2 + i] = inputs[i];
  eval(vals);
  out.resize(out_net_.size());
  for (std::size_t o = 0; o < out_net_.size(); ++o) out[o] = vals[out_net_[o]];
}

void CompiledNetlist::eval64(std::vector<std::uint64_t>& words) const {
  OCLP_CHECK(words.size() == num_nets());
  words[kConst0Net] = 0;
  words[kConst1Net] = ~std::uint64_t{0};
  const std::size_t base = 2 + num_inputs_;
  for (std::size_t ci = 0; ci < tt_.size(); ++ci) {
    const std::int32_t* f = &fanin_[3 * ci];
    const std::uint64_t a = words[f[0]], b = words[f[1]], cc = words[f[2]];
    const std::uint64_t na = ~a, nb = ~b, nc = ~cc;
    const std::uint64_t tt = tt_[ci];
    // OR of the truth table's minterms, each gated branch-free by its bit.
    std::uint64_t r = 0;
    r |= (std::uint64_t{0} - ((tt >> 0) & 1)) & (na & nb & nc);
    r |= (std::uint64_t{0} - ((tt >> 1) & 1)) & (a & nb & nc);
    r |= (std::uint64_t{0} - ((tt >> 2) & 1)) & (na & b & nc);
    r |= (std::uint64_t{0} - ((tt >> 3) & 1)) & (a & b & nc);
    r |= (std::uint64_t{0} - ((tt >> 4) & 1)) & (na & nb & cc);
    r |= (std::uint64_t{0} - ((tt >> 5) & 1)) & (a & nb & cc);
    r |= (std::uint64_t{0} - ((tt >> 6) & 1)) & (na & b & cc);
    r |= (std::uint64_t{0} - ((tt >> 7) & 1)) & (a & b & cc);
    words[base + ci] = r;
  }
}

}  // namespace oclp
