#include "netlist/sta.hpp"

#include <algorithm>

#include "netlist/compiled.hpp"

namespace oclp {

StaResult static_timing(const Netlist& nl, const std::vector<double>& cell_delay_ns) {
  OCLP_CHECK_MSG(cell_delay_ns.size() == nl.num_cells(),
                 "need one delay per cell: " << cell_delay_ns.size() << " vs "
                                             << nl.num_cells());
  // STA is purely structural: a constant-valued cell still owns its delay
  // and every original net must stay addressable, so lower without folding
  // or sweeping. Free-cell elision is exact here too (Buf arrival equals
  // its driver's, Const arrival is 0).
  CompileOptions opts;
  opts.fold_constants = false;
  opts.sweep_dead = false;
  const CompiledNetlist cnl = CompiledNetlist::compile(nl, opts);
  const std::vector<double> delay = cnl.gather_delays(cell_delay_ns);

  std::vector<double> arr(cnl.num_nets(), 0.0);
  const std::size_t base = 2 + cnl.num_inputs();
  double stage_worst = 0.0;
  std::int32_t stage_net = -1;
  for (std::size_t ci = 0; ci < cnl.num_cells(); ++ci) {
    double a = 0.0;
    for (int k = 0; k < 3; ++k)  // sentinel/unused slots arrive at 0
      a = std::max(a, arr[cnl.fanin(ci, k)]);
    if (cnl.cell_is_reg(ci)) {
      // Register: the fanin arrival ends its stage's path, and the output
      // re-launches at the register's own delay.
      if (a > stage_worst) {
        stage_worst = a;
        stage_net = cnl.cell_net(ci);
      }
      arr[base + ci] = delay[ci];
      continue;
    }
    arr[base + ci] = a + delay[ci];
  }

  StaResult res;
  res.arrival_ns.resize(nl.num_nets());
  for (std::size_t n = 0; n < nl.num_nets(); ++n)
    res.arrival_ns[n] = arr[cnl.alias_of(static_cast<std::int32_t>(n))];
  for (auto o : nl.outputs()) {
    if (res.arrival_ns[o] > res.critical_path_ns) {
      res.critical_path_ns = res.arrival_ns[o];
      res.critical_output = o;
    }
  }
  if (stage_worst > res.critical_path_ns) {
    res.critical_path_ns = stage_worst;
    // Map the compiled reg net back to an original net id: regs are never
    // elided, so some original net aliases to it.
    for (std::size_t n = 0; n < nl.num_nets(); ++n) {
      if (cnl.alias_of(static_cast<std::int32_t>(n)) == stage_net) {
        res.critical_output = static_cast<std::int32_t>(n);
        break;
      }
    }
  }
  return res;
}

}  // namespace oclp
