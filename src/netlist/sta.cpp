#include "netlist/sta.hpp"

#include <algorithm>

#include "netlist/compiled.hpp"

namespace oclp {

StaResult static_timing(const Netlist& nl, const std::vector<double>& cell_delay_ns) {
  OCLP_CHECK_MSG(cell_delay_ns.size() == nl.num_cells(),
                 "need one delay per cell: " << cell_delay_ns.size() << " vs "
                                             << nl.num_cells());
  // STA is purely structural: a constant-valued cell still owns its delay
  // and every original net must stay addressable, so lower without folding
  // or sweeping. Free-cell elision is exact here too (Buf arrival equals
  // its driver's, Const arrival is 0).
  CompileOptions opts;
  opts.fold_constants = false;
  opts.sweep_dead = false;
  const CompiledNetlist cnl = CompiledNetlist::compile(nl, opts);
  const std::vector<double> delay = cnl.gather_delays(cell_delay_ns);

  std::vector<double> arr(cnl.num_nets(), 0.0);
  const std::size_t base = 2 + cnl.num_inputs();
  for (std::size_t ci = 0; ci < cnl.num_cells(); ++ci) {
    double a = 0.0;
    for (int k = 0; k < 3; ++k)  // sentinel/unused slots arrive at 0
      a = std::max(a, arr[cnl.fanin(ci, k)]);
    arr[base + ci] = a + delay[ci];
  }

  StaResult res;
  res.arrival_ns.resize(nl.num_nets());
  for (std::size_t n = 0; n < nl.num_nets(); ++n)
    res.arrival_ns[n] = arr[cnl.alias_of(static_cast<std::int32_t>(n))];
  for (auto o : nl.outputs()) {
    if (res.arrival_ns[o] > res.critical_path_ns) {
      res.critical_path_ns = res.arrival_ns[o];
      res.critical_output = o;
    }
  }
  return res;
}

}  // namespace oclp
