#include "netlist/sta.hpp"

#include <algorithm>

namespace oclp {

StaResult static_timing(const Netlist& nl, const std::vector<double>& cell_delay_ns) {
  OCLP_CHECK_MSG(cell_delay_ns.size() == nl.num_cells(),
                 "need one delay per cell: " << cell_delay_ns.size() << " vs "
                                             << nl.num_cells());
  StaResult res;
  res.arrival_ns.assign(nl.num_nets(), 0.0);
  const auto& cells = nl.cells();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    double arr = 0.0;
    const int arity = cell_arity(c.type);
    for (int k = 0; k < arity; ++k)
      arr = std::max(arr, res.arrival_ns[c.in[k]]);
    res.arrival_ns[nl.num_inputs() + i] =
        arr + (cell_is_free(c.type) ? 0.0 : cell_delay_ns[i]);
  }
  for (auto o : nl.outputs()) {
    if (res.arrival_ns[o] > res.critical_path_ns) {
      res.critical_path_ns = res.arrival_ns[o];
      res.critical_output = o;
    }
  }
  return res;
}

}  // namespace oclp
