// Compiled levelized datapath: the Netlist lowered once into a dense,
// branch-free evaluation substrate shared by every hot evaluator
// (OverclockSim, STA, characterisation sweeps, the serving replicas).
//
// Lowering performs, in one pass over the already-topological cell list:
//  * constant folding — a cell whose output is provably constant once its
//    constant fanins are baked into the truth table collapses onto a
//    constant sentinel net;
//  * Buf/Const elision — free cells add no delay and no logic, so their
//    consumers are rewired straight to the driver (Buf) or a sentinel
//    (Const);
//  * dead-cell sweep — cells unreachable from the outputs are dropped;
//  * levelization — surviving cells are renumbered into contiguous
//    per-level ranges (every fanin of a level-L cell lives strictly below
//    L), so one linear walk evaluates the whole cone and per-level ranges
//    are ready for future intra-level parallel backends.
//
// Every surviving cell becomes an 8-bit truth table indexed by its (≤ 3)
// input bits plus three flattened fanin net ids, so evaluation is a table
// lookup per cell with no per-type dispatch. Unused or baked fanin slots
// point at the constant-zero sentinel whose value never changes, which
// keeps both evaluation and transition scans unconditional over all three
// slots.
//
// Lowering invariants (what elision may and may not change):
//  * output VALUES are preserved exactly for every input vector;
//  * output SETTLE TIMES under the over-clocking timing model are
//    preserved exactly: only zero-delay cells are elided (a Buf's output
//    transitions iff its input does, with the same settle time) and only
//    never-transitioning cells are folded (a constant output has settle 0
//    forever). Identity simplifications through *delayed* cells (e.g.
//    And2(x, 1) → x) are deliberately NOT performed — they would erase the
//    cell's delay from the settle profile.
//
// eval64 evaluates 64 input samples per pass — one std::uint64_t word per
// net, one lane per sample. It computes fully-settled (functional) values
// only, so it is legal exclusively on timing-free paths: ground-truth /
// settled outputs, error-model reference values, and safe-clock duplicate
// checks. Anything that needs per-net settle times must use the scalar
// two-frame simulation (OverclockSim).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace oclp {

/// The integer-picosecond delay grid of the compiled timing kernel.
///
/// The quantum is 2^-10 ns (a "binary picosecond", ~0.977 ps): delays and
/// settle times become uint32 tick counts and settle propagation becomes
/// small-integer max-plus arithmetic. The power-of-two quantum is what
/// keeps the retained double kernels bitwise-comparable:
///
///  * to_ns is exact — ldexp(ticks, -10) scales by a power of two, and
///    every tick count below 2^32 has an exact double;
///  * sums and maxes of grid delays are exact in doubles as long as the
///    running sum stays below 2^53 ticks (the uint32 overflow check below
///    enforces < 2^32, with room to spare), so the double reference path
///    computes *exactly* tick·2^-10 at every net — integer-vs-double
///    equality is a theorem, not a tolerance;
///  * capture periods need no quantisation: settle > period on the grid
///    iff settle_ticks > floor(period·2^10), and ldexp/floor evaluate
///    that threshold exactly for arbitrary (e.g. jittered) periods.
///
/// A decimal grid (say 0.001 ns) has none of these properties — 0.001 has
/// no exact double, so the double fold rounds and exact ties (common once
/// delays snap to a grid) flip between the paths.
struct PsGrid {
  /// log2 of ticks per nanosecond.
  static constexpr int kFracBits = 10;
  static constexpr double kTicksPerNs = 1024.0;  // 2^kFracBits

  /// Nearest grid multiple of `ns` (multiply/divide by a power of two:
  /// the snapped value is the exact double of its tick count). The fabric
  /// calibration snaps every produced delay through this, which is what
  /// makes strict lowering-time quantisation below total.
  static double snap_ns(double ns);

  /// Exact nanoseconds of a tick count. Inline (one multiply by an exact
  /// power of two — bitwise equal to ldexp(ticks, -kFracBits)): the
  /// integer stream kernel dequantises once per toggled output bit.
  static double to_ns(std::uint32_t ticks) {
    return static_cast<double>(ticks) * (1.0 / kTicksPerNs);
  }

  /// Tick count of `ns` if `ns` lies exactly on the grid and fits a
  /// uint32; returns false otherwise (off-grid, negative, or overflow).
  static bool try_ticks(double ns, std::uint32_t& ticks);

  /// Largest settle tick count captured *fresh* at `period_ns`: a net is
  /// stale iff settle_ticks > period_ticks(period_ns). Exact for any
  /// positive period (see above); saturates at uint64 max.
  static std::uint64_t period_ticks(double period_ns);
};

struct CompileOptions {
  /// Fold cells whose outputs are provably constant. Disable for purely
  /// structural consumers (STA), where a constant-valued cell still owns
  /// its delay.
  bool fold_constants = true;
  /// Drop cells unreachable from the outputs. Disable when every original
  /// net must stay addressable (STA reports per-net arrivals).
  bool sweep_dead = true;
};

struct CompileStats {
  std::size_t source_cells = 0;      ///< cells in the original netlist
  std::size_t folded_constant = 0;   ///< folded onto a constant sentinel
  std::size_t elided_free = 0;       ///< Buf/Const cells aliased away
  std::size_t swept_dead = 0;        ///< unreachable from any output
  std::size_t compiled_cells = 0;    ///< cells in the compiled form
  std::size_t levels = 0;            ///< depth of the levelized schedule
};

/// The lowered netlist. Compiled net numbering: net 0 is the constant-zero
/// sentinel, net 1 the constant-one sentinel, nets 2..2+NI-1 the primary
/// inputs, and the remaining nets the surviving cells in level order.
class CompiledNetlist {
 public:
  static constexpr std::int32_t kConst0Net = 0;
  static constexpr std::int32_t kConst1Net = 1;

  static CompiledNetlist compile(const Netlist& nl,
                                 const CompileOptions& opts = {});

  std::size_t num_inputs() const { return num_inputs_; }
  std::size_t num_cells() const { return tt_.size(); }
  std::size_t num_nets() const { return 2 + num_inputs_ + tt_.size(); }
  std::size_t num_outputs() const { return out_net_.size(); }
  std::size_t num_levels() const {
    return level_begin_.empty() ? 0 : level_begin_.size() - 1;
  }
  const CompileStats& stats() const { return stats_; }

  /// Compiled net id of primary input i.
  std::int32_t input_net(std::size_t i) const {
    return static_cast<std::int32_t>(2 + i);
  }
  /// Compiled net id of compiled cell ci's output.
  std::int32_t cell_net(std::size_t ci) const {
    return static_cast<std::int32_t>(2 + num_inputs_ + ci);
  }
  /// Compiled net id carrying output o (may be a sentinel or an input).
  std::int32_t out_net(std::size_t o) const { return out_net_[o]; }

  /// Truth table of compiled cell ci: bit (a | b<<1 | c<<2) is the output
  /// for fanin values (a, b, c).
  std::uint8_t truth_table(std::size_t ci) const { return tt_[ci]; }
  /// Compiled net id of fanin slot k (0..2) of compiled cell ci.
  std::int32_t fanin(std::size_t ci, int k) const {
    return fanin_[3 * ci + static_cast<std::size_t>(k)];
  }
  const std::vector<std::int32_t>& fanins() const { return fanin_; }
  const std::vector<std::uint8_t>& truth_tables() const { return tt_; }
  /// Original cell index compiled cell ci came from.
  std::size_t orig_cell(std::size_t ci) const { return orig_cell_[ci]; }
  /// True if compiled cell ci is a pipeline register (PipeReg).
  bool cell_is_reg(std::size_t ci) const { return is_reg_[ci] != 0; }
  const std::vector<std::uint8_t>& reg_flags() const { return is_reg_; }
  /// True if any compiled cell is a pipeline register. Reg-free netlists
  /// keep the exact single-track settle kernel; reg-bearing ones get the
  /// two-track (stage-local + carried) semantics.
  bool has_registers() const { return has_regs_; }
  /// Compiled cells of level l occupy [level_begin(l), level_begin(l+1)).
  std::size_t level_begin(std::size_t l) const { return level_begin_[l]; }

  /// Compiled net carrying the value of original net `orig`, or -1 if the
  /// net was swept (only possible with sweep_dead).
  std::int32_t alias_of(std::int32_t orig) const { return alias_[orig]; }

  /// Per-compiled-cell delays gathered from per-original-cell delays.
  std::vector<double> gather_delays(
      const std::vector<double>& orig_cell_delay_ns) const;

  /// Strict lowering-time quantisation of per-compiled-cell delays onto
  /// the PsGrid: throws (naming the offending original cell) if any delay
  /// is off-grid or does not fit a uint32 tick count, or if the worst-case
  /// levelized path sum of tick counts overflows uint32 — the bound every
  /// settle time the integer kernel can produce stays under. On success
  /// the returned ticks dequantise bitwise to the inputs, and
  /// `critical_path_ticks` (if given) receives the worst-case path sum.
  std::vector<std::uint32_t> quantise_delays(
      const std::vector<double>& cell_delay_ns,
      std::uint64_t* critical_path_ticks = nullptr) const;

  /// Tolerant probe of the same conditions: fills `ticks` and returns
  /// true iff quantise_delays would succeed. Lets auto-mode consumers fall
  /// back to the double kernel for non-calibrated (off-grid) delays.
  bool try_quantise_delays(const std::vector<double>& cell_delay_ns,
                           std::vector<std::uint32_t>& ticks,
                           std::uint64_t* critical_path_ticks = nullptr) const;

  // --- Evaluation -----------------------------------------------------------

  /// Scalar functional evaluation over a caller buffer of num_nets()
  /// values (0/1). The caller writes the primary inputs at input_net(i);
  /// sentinels and all cell nets are filled in here.
  void eval(std::vector<std::uint8_t>& vals) const;

  /// Convenience: functional output values for one input vector (matches
  /// Netlist::evaluate_outputs bit for bit). `vals` is scratch, reused
  /// across calls once warm.
  void eval_outputs(const std::vector<std::uint8_t>& inputs,
                    std::vector<std::uint8_t>& vals,
                    std::vector<std::uint8_t>& out) const;

  /// 64-lane bit-parallel functional evaluation: words[net] carries one
  /// bit per sample (lane). The caller writes the input words at
  /// input_net(i); sentinels and cell words are filled in here. Timing-free
  /// paths only — lanes are fully settled values by construction.
  void eval64(std::vector<std::uint64_t>& words) const;

 private:
  std::size_t num_inputs_ = 0;
  std::vector<std::uint8_t> tt_;        ///< per-cell truth table
  std::vector<std::int32_t> fanin_;     ///< 3 per cell, flattened
  std::vector<std::size_t> orig_cell_;  ///< per-cell original index
  std::vector<std::uint8_t> is_reg_;    ///< per-cell PipeReg flag
  bool has_regs_ = false;
  std::vector<std::size_t> level_begin_;
  std::vector<std::int32_t> out_net_;
  std::vector<std::int32_t> alias_;     ///< original net → compiled net
  CompileStats stats_;
};

}  // namespace oclp
