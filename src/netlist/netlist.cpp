#include "netlist/netlist.hpp"

#include <algorithm>

namespace oclp {

int cell_arity(CellType t) {
  switch (t) {
    case CellType::Const0:
    case CellType::Const1:
      return 0;
    case CellType::Buf:
    case CellType::Not:
    case CellType::PipeReg:
      return 1;
    case CellType::And2:
    case CellType::Or2:
    case CellType::Xor2:
    case CellType::Nand2:
    case CellType::Nor2:
    case CellType::Xnor2:
    case CellType::AndNot2:
      return 2;
    case CellType::Maj3:
    case CellType::Xor3:
    case CellType::Mux2:
      return 3;
  }
  return 0;
}

const char* cell_name(CellType t) {
  switch (t) {
    case CellType::Const0: return "CONST0";
    case CellType::Const1: return "CONST1";
    case CellType::Buf: return "BUF";
    case CellType::Not: return "NOT";
    case CellType::And2: return "AND2";
    case CellType::Or2: return "OR2";
    case CellType::Xor2: return "XOR2";
    case CellType::Nand2: return "NAND2";
    case CellType::Nor2: return "NOR2";
    case CellType::Xnor2: return "XNOR2";
    case CellType::AndNot2: return "ANDNOT2";
    case CellType::Maj3: return "MAJ3";
    case CellType::Xor3: return "XOR3";
    case CellType::Mux2: return "MUX2";
    case CellType::PipeReg: return "PIPEREG";
  }
  return "?";
}

bool cell_eval(CellType t, bool a, bool b, bool c) {
  switch (t) {
    case CellType::Const0: return false;
    case CellType::Const1: return true;
    case CellType::Buf: return a;
    case CellType::Not: return !a;
    case CellType::And2: return a && b;
    case CellType::Or2: return a || b;
    case CellType::Xor2: return a != b;
    case CellType::Nand2: return !(a && b);
    case CellType::Nor2: return !(a || b);
    case CellType::Xnor2: return a == b;
    case CellType::AndNot2: return a && !b;
    case CellType::Maj3: return (a && b) || (a && c) || (b && c);
    case CellType::Xor3: return (a != b) != c;
    case CellType::Mux2: return c ? b : a;
    case CellType::PipeReg: return a;
  }
  return false;
}

bool cell_is_free(CellType t) {
  return t == CellType::Const0 || t == CellType::Const1 || t == CellType::Buf;
}

std::size_t Netlist::logic_elements() const {
  std::size_t n = 0;
  for (const auto& c : cells_)
    if (!cell_is_free(c.type)) ++n;
  return n;
}

std::vector<int> Netlist::levels() const {
  std::vector<int> lvl(num_nets(), 0);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    int m = 0;
    const int arity = cell_arity(c.type);
    for (int k = 0; k < arity; ++k) m = std::max(m, lvl[c.in[k]]);
    lvl[num_inputs_ + i] = cell_is_free(c.type) ? m : m + 1;
  }
  return lvl;
}

int Netlist::depth() const {
  const auto lvl = levels();
  int d = 0;
  for (auto o : outputs_) d = std::max(d, lvl[o]);
  return d;
}

std::vector<std::uint8_t> Netlist::evaluate(const std::vector<std::uint8_t>& inputs) const {
  OCLP_CHECK_MSG(inputs.size() == num_inputs_, "expected " << num_inputs_
                                                << " inputs, got " << inputs.size());
  std::vector<std::uint8_t> val(num_nets());
  std::copy(inputs.begin(), inputs.end(), val.begin());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    const bool a = c.in[0] >= 0 && val[c.in[0]];
    const bool b = c.in[1] >= 0 && val[c.in[1]];
    const bool cc = c.in[2] >= 0 && val[c.in[2]];
    val[num_inputs_ + i] = cell_eval(c.type, a, b, cc);
  }
  return val;
}

std::vector<std::uint8_t> Netlist::evaluate_outputs(
    const std::vector<std::uint8_t>& inputs) const {
  const auto val = evaluate(inputs);
  std::vector<std::uint8_t> out(outputs_.size());
  for (std::size_t i = 0; i < outputs_.size(); ++i) out[i] = val[outputs_[i]];
  return out;
}

std::int32_t NetlistBuilder::add_input() {
  OCLP_CHECK_MSG(!inputs_frozen_, "all inputs must be added before any cell");
  return static_cast<std::int32_t>(nl_.num_inputs_++);
}

std::vector<std::int32_t> NetlistBuilder::add_inputs(std::size_t n) {
  std::vector<std::int32_t> nets(n);
  for (auto& x : nets) x = add_input();
  return nets;
}

std::int32_t NetlistBuilder::add_cell(CellType type, std::int32_t a, std::int32_t b,
                                      std::int32_t c) {
  inputs_frozen_ = true;
  const int arity = cell_arity(type);
  const std::array<std::int32_t, 3> in{a, b, c};
  const auto limit = static_cast<std::int32_t>(nl_.num_nets());
  for (int k = 0; k < arity; ++k)
    OCLP_CHECK_MSG(in[k] >= 0 && in[k] < limit,
                   cell_name(type) << " input " << k << " references net "
                                   << in[k] << " of " << limit);
  nl_.cells_.push_back(Cell{type, {a, b, c}});
  return static_cast<std::int32_t>(nl_.num_nets() - 1);
}

std::int32_t NetlistBuilder::const0() {
  if (const0_net_ < 0) const0_net_ = add_cell(CellType::Const0);
  return const0_net_;
}

std::int32_t NetlistBuilder::const1() {
  if (const1_net_ < 0) const1_net_ = add_cell(CellType::Const1);
  return const1_net_;
}

std::pair<std::int32_t, std::int32_t> NetlistBuilder::half_adder(std::int32_t a,
                                                                 std::int32_t b) {
  return {xor_(a, b), and_(a, b)};
}

std::pair<std::int32_t, std::int32_t> NetlistBuilder::full_adder(std::int32_t a,
                                                                 std::int32_t b,
                                                                 std::int32_t cin) {
  return {xor3(a, b, cin), maj3(a, b, cin)};
}

std::vector<std::int32_t> NetlistBuilder::ripple_add(
    const std::vector<std::int32_t>& a, const std::vector<std::int32_t>& b) {
  OCLP_CHECK(a.size() == b.size() && !a.empty());
  std::vector<std::int32_t> sum(a.size() + 1);
  auto [s0, c0] = half_adder(a[0], b[0]);
  sum[0] = s0;
  std::int32_t carry = c0;
  for (std::size_t i = 1; i < a.size(); ++i) {
    auto [s, c] = full_adder(a[i], b[i], carry);
    sum[i] = s;
    carry = c;
  }
  sum[a.size()] = carry;
  return sum;
}

void NetlistBuilder::mark_output(std::int32_t net) {
  OCLP_CHECK(net >= 0 && net < static_cast<std::int32_t>(nl_.num_nets()));
  nl_.outputs_.push_back(net);
}

void NetlistBuilder::mark_outputs(const std::vector<std::int32_t>& nets) {
  for (auto n : nets) mark_output(n);
}

Netlist NetlistBuilder::build() {
  OCLP_CHECK_MSG(!nl_.outputs_.empty(), "netlist has no outputs");
  Netlist out = std::move(nl_);
  nl_ = Netlist{};
  const0_net_ = const1_net_ = -1;
  inputs_frozen_ = false;
  return out;
}

}  // namespace oclp
