// Gate-level combinational netlist.
//
// Cells model the logic functions an FPGA maps into 4-input LUTs; each
// cell therefore costs one logic element (LE) and one LUT delay plus the
// delay of the net that feeds it. The netlist is built in topological
// order by construction (a cell may only reference already-defined nets),
// which makes levelisation, STA and the over-clocking timing simulation
// single linear passes.
//
// Net numbering: nets 0..num_inputs-1 are the primary inputs; net
// (num_inputs + i) is the output of cell i.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace oclp {

enum class CellType : std::uint8_t {
  Const0,  ///< constant 0 (no inputs, zero delay, zero area)
  Const1,  ///< constant 1
  Buf,     ///< identity (used for port renaming; zero area)
  Not,
  And2,
  Or2,
  Xor2,
  Nand2,
  Nor2,
  Xnor2,
  AndNot2,  ///< a & ~b
  Maj3,     ///< majority(a, b, c) — full-adder carry
  Xor3,     ///< a ^ b ^ c — full-adder sum
  Mux2,     ///< s ? b : a  (inputs ordered a, b, s)
  PipeReg,  ///< pipeline register: identity function, one LE, normal
            ///< annotated delay (clk-to-q + stage routing). Not free, so
            ///< it is never elided by compilation; the timing simulation
            ///< gives it restart semantics (see overclock_sim.hpp).
};

/// Number of inputs a cell type consumes.
int cell_arity(CellType t);
/// Human-readable cell name.
const char* cell_name(CellType t);
/// Evaluate the cell function on boolean inputs.
bool cell_eval(CellType t, bool a, bool b, bool c);
/// True for zero-area, zero-delay cells (constants and buffers).
bool cell_is_free(CellType t);

struct Cell {
  CellType type;
  std::array<std::int32_t, 3> in;  ///< net ids; unused slots are -1
};

class Netlist {
 public:
  friend class NetlistBuilder;

  std::size_t num_inputs() const { return num_inputs_; }
  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_nets() const { return num_inputs_ + cells_.size(); }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<std::int32_t>& outputs() const { return outputs_; }

  /// Net id of cell i's output.
  std::int32_t cell_output_net(std::size_t i) const {
    return static_cast<std::int32_t>(num_inputs_ + i);
  }
  /// Cell index driving a net, or -1 for primary inputs.
  std::int32_t driver_of(std::int32_t net) const {
    return net < static_cast<std::int32_t>(num_inputs_)
               ? -1
               : net - static_cast<std::int32_t>(num_inputs_);
  }

  /// Logic elements consumed (cells minus free cells).
  std::size_t logic_elements() const;

  /// Combinational logic level of every net (inputs are level 0).
  std::vector<int> levels() const;
  /// Maximum logic level over the output nets.
  int depth() const;

  /// Functional (zero-delay) evaluation: returns values for all nets.
  std::vector<std::uint8_t> evaluate(const std::vector<std::uint8_t>& inputs) const;
  /// Functional evaluation returning only the output net values.
  std::vector<std::uint8_t> evaluate_outputs(const std::vector<std::uint8_t>& inputs) const;

 private:
  std::size_t num_inputs_ = 0;
  std::vector<Cell> cells_;
  std::vector<std::int32_t> outputs_;
};

/// Incremental netlist construction. Net handles are plain ints so bus
/// plumbing (vectors of nets) stays lightweight.
class NetlistBuilder {
 public:
  /// Add one primary input; returns its net id. All inputs must be added
  /// before any cell.
  std::int32_t add_input();
  /// Add `n` primary inputs; returns their net ids in order.
  std::vector<std::int32_t> add_inputs(std::size_t n);

  std::int32_t add_cell(CellType type, std::int32_t a = -1, std::int32_t b = -1,
                        std::int32_t c = -1);

  std::int32_t const0();
  std::int32_t const1();
  std::int32_t not_(std::int32_t a) { return add_cell(CellType::Not, a); }
  std::int32_t reg_(std::int32_t a) { return add_cell(CellType::PipeReg, a); }
  std::int32_t and_(std::int32_t a, std::int32_t b) { return add_cell(CellType::And2, a, b); }
  std::int32_t or_(std::int32_t a, std::int32_t b) { return add_cell(CellType::Or2, a, b); }
  std::int32_t xor_(std::int32_t a, std::int32_t b) { return add_cell(CellType::Xor2, a, b); }
  std::int32_t maj3(std::int32_t a, std::int32_t b, std::int32_t c) {
    return add_cell(CellType::Maj3, a, b, c);
  }
  std::int32_t xor3(std::int32_t a, std::int32_t b, std::int32_t c) {
    return add_cell(CellType::Xor3, a, b, c);
  }

  /// Half adder: returns {sum, carry}.
  std::pair<std::int32_t, std::int32_t> half_adder(std::int32_t a, std::int32_t b);
  /// Full adder: returns {sum, carry}.
  std::pair<std::int32_t, std::int32_t> full_adder(std::int32_t a, std::int32_t b,
                                                   std::int32_t cin);
  /// Ripple-carry adder over equal-width buses; returns width+1 sum bits
  /// (LSB first), the last being the carry out.
  std::vector<std::int32_t> ripple_add(const std::vector<std::int32_t>& a,
                                       const std::vector<std::int32_t>& b);

  void mark_output(std::int32_t net);
  void mark_outputs(const std::vector<std::int32_t>& nets);

  std::size_t num_nets() const { return nl_.num_nets(); }

  /// Finish construction; the builder is left empty.
  Netlist build();

 private:
  Netlist nl_;
  std::int32_t const0_net_ = -1;
  std::int32_t const1_net_ = -1;
  bool inputs_frozen_ = false;
};

}  // namespace oclp
