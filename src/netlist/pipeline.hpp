// Pipelining transform: cut a combinational netlist into `depth` register
// stages of roughly equal logic depth.
//
// Every net whose producer sits in an earlier stage than a consumer is
// carried across the boundary through a chain of `PipeReg` cells (one per
// stage crossed), so each register stage only contains combinational paths
// from one cut to the next. Registers are identity functions, so the
// settled output values of the pipelined netlist are bitwise identical to
// the original — only timing (per-stage critical paths, and hence Fmax)
// changes. Constants are never registered: they are settled by definition
// and the compiler would fold the registers away anyway.
//
// Outputs are registered through to the final stage so every output is
// produced by stage `depth - 1`; the transform therefore adds `depth - 1`
// cycles of latency, which the steady-state streaming timing model treats
// as invisible (see overclock_sim.hpp).
#pragma once

#include "netlist/netlist.hpp"

namespace oclp {

/// Pipeline `nl` into `depth` stages. depth == 1 returns the netlist
/// unchanged; depth greater than the logic depth is clamped to it.
Netlist pipeline_netlist(const Netlist& nl, int depth);

/// Number of PipeReg cells in a netlist (0 for purely combinational).
std::size_t pipeline_register_count(const Netlist& nl);

}  // namespace oclp
