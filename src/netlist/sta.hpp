// Static timing analysis over a netlist with per-cell delays.
//
// Two delay sources exist in the library:
//  * the "synthesis tool" view — worst-case corner delays with guardband
//    (fabric::tool_timing), reproducing the conservative fA of the paper;
//  * the "device" view — per-cell delays sampled from a specific Device at
//    a specific Placement (fabric::annotate_timing).
// Both views are plain vectors of per-cell delays, so the same STA runs on
// either.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace oclp {

/// Result of a timing pass.
struct StaResult {
  std::vector<double> arrival_ns;  ///< per-net settled arrival time
  double critical_path_ns = 0.0;   ///< max arrival over all path endpoints
  /// Net achieving the max: an output net, or a PipeReg's output net when
  /// an interior pipeline stage owns the critical path.
  std::int32_t critical_output = -1;
};

/// arrival(net) = cell_delay + max(arrival(fanins)); inputs arrive at 0.
/// `cell_delay_ns` has one entry per cell.
///
/// Pipeline registers are timing endpoints: the arrival at a PipeReg's
/// fanin closes that stage's path (it competes for critical_path_ns) and
/// the register's output re-launches at the register's own delay
/// (clk-to-q + stage routing). The critical path of a pipelined netlist is
/// therefore the worst *stage*, so fmax_mhz(critical_path_ns) is the
/// pipelined Fmax.
StaResult static_timing(const Netlist& nl, const std::vector<double>& cell_delay_ns);

/// Max frequency in MHz for a given critical path.
inline double fmax_mhz(double critical_path_ns) {
  OCLP_CHECK(critical_path_ns > 0.0);
  return 1000.0 / critical_path_ns;
}

/// Period in ns for a frequency in MHz.
inline double period_ns(double freq_mhz) {
  OCLP_CHECK(freq_mhz > 0.0);
  return 1000.0 / freq_mhz;
}

}  // namespace oclp
