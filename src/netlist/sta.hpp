// Static timing analysis over a netlist with per-cell delays.
//
// Two delay sources exist in the library:
//  * the "synthesis tool" view — worst-case corner delays with guardband
//    (fabric::tool_timing), reproducing the conservative fA of the paper;
//  * the "device" view — per-cell delays sampled from a specific Device at
//    a specific Placement (fabric::annotate_timing).
// Both views are plain vectors of per-cell delays, so the same STA runs on
// either.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace oclp {

/// Result of a timing pass.
struct StaResult {
  std::vector<double> arrival_ns;  ///< per-net settled arrival time
  double critical_path_ns = 0.0;   ///< max arrival over the output nets
  std::int32_t critical_output = -1;  ///< output net achieving the max
};

/// arrival(net) = cell_delay + max(arrival(fanins)); inputs arrive at 0.
/// `cell_delay_ns` has one entry per cell.
StaResult static_timing(const Netlist& nl, const std::vector<double>& cell_delay_ns);

/// Max frequency in MHz for a given critical path.
inline double fmax_mhz(double critical_path_ns) {
  OCLP_CHECK(critical_path_ns > 0.0);
  return 1000.0 / critical_path_ns;
}

/// Period in ns for a frequency in MHz.
inline double period_ns(double freq_mhz) {
  OCLP_CHECK(freq_mhz > 0.0);
  return 1000.0 / freq_mhz;
}

}  // namespace oclp
