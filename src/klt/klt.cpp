#include "klt/klt.hpp"

#include <cmath>

namespace oclp {

Matrix klt_basis(const Matrix& x, std::size_t k) {
  OCLP_CHECK(k >= 1 && k <= x.rows());
  const Matrix cov = covariance(x);
  const EigenSym eig = jacobi_eigen_sym(cov);
  Matrix basis(x.rows(), k);
  for (std::size_t c = 0; c < k; ++c) {
    auto v = eig.vectors.col(c);
    // Deterministic sign convention: largest-magnitude entry positive.
    std::size_t arg = 0;
    for (std::size_t r = 1; r < v.size(); ++r)
      if (std::abs(v[r]) > std::abs(v[arg])) arg = r;
    if (v[arg] < 0.0)
      for (auto& e : v) e = -e;
    basis.set_col(c, v);
  }
  return basis;
}

Matrix klt_basis_iterative(const Matrix& x, std::size_t k, int iterations,
                           double tol) {
  OCLP_CHECK(k >= 1 && k <= x.rows());
  Matrix xc = x;
  center_rows(xc);
  Matrix residual = xc;  // X_j of Eq. 4
  Matrix basis(x.rows(), k);

  for (std::size_t j = 0; j < k; ++j) {
    // λ_j = argmax E{(λᵀ X_{j-1})²}  — dominant eigenvector of the residual
    // second-moment matrix, found by power iteration.
    const Matrix s = residual * residual.transposed();
    std::vector<double> v(x.rows(), 0.0);
    // Deterministic start aligned with the strongest residual row.
    std::size_t arg = 0;
    double best = -1.0;
    for (std::size_t r = 0; r < x.rows(); ++r)
      if (s(r, r) > best) best = s(r, r), arg = r;
    v[arg] = 1.0;
    for (int it = 0; it < iterations; ++it) {
      const Matrix sv = s * Matrix::column(v);
      auto next = sv.col(0);
      const double n = norm(next);
      if (n == 0.0) break;  // residual exhausted: keep the unit start
      for (auto& e : next) e /= n;
      double delta = 0.0;
      for (std::size_t r = 0; r < next.size(); ++r)
        delta = std::max(delta, std::abs(std::abs(next[r]) - std::abs(v[r])));
      v = next;
      if (delta < tol) break;
    }
    // Sign convention as in klt_basis.
    arg = 0;
    for (std::size_t r = 1; r < v.size(); ++r)
      if (std::abs(v[r]) > std::abs(v[arg])) arg = r;
    if (v[arg] < 0.0)
      for (auto& e : v) e = -e;
    basis.set_col(j, v);

    // X_j = X - λ λᵀ X  (Eq. 4, accumulated deflation).
    const Matrix lam = Matrix::column(v);
    residual -= lam * (lam.transposed() * residual);
  }
  return basis;
}

double reconstruction_mse(const Matrix& basis, const Matrix& x) {
  OCLP_CHECK(basis.rows() == x.rows());
  Matrix xc = x;
  center_rows(xc);
  const Matrix f = projection_factors(basis, xc);
  const Matrix err = xc - basis * f;
  return err.mean_square();
}

}  // namespace oclp
