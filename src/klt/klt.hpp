// The KLT / PCA baseline (paper Section IV).
//
// The existing design methodology the framework is compared against:
// compute the orthogonal basis Λ that minimises the mean squared
// reconstruction error (Eq. 1–4), quantise its coefficients to the chosen
// word-length, and map to hardware with no knowledge of over-clocking.
#pragma once

#include "linalg/decompositions.hpp"
#include "linalg/matrix.hpp"

namespace oclp {

/// Exact K-dimensional principal subspace of the P×N data matrix `x`
/// (rows are variables): eigenvectors of the covariance, columns ordered by
/// decreasing eigenvalue. Data is centered internally.
Matrix klt_basis(const Matrix& x, std::size_t k);

/// The paper's iterative formulation (Eq. 3–4): power iteration on the
/// residual with deflation. Converges to klt_basis up to sign; exposed both
/// to mirror the text and as an independent cross-check in tests.
Matrix klt_basis_iterative(const Matrix& x, std::size_t k, int iterations = 200,
                           double tol = 1e-10);

/// Mean squared reconstruction error per element when projecting `x` onto
/// the (not necessarily orthonormal) basis via least-squares factors:
/// mse = ||X - Λ(ΛᵀΛ)⁻¹ΛᵀX||²_F / (P·N). Data is centered internally.
double reconstruction_mse(const Matrix& basis, const Matrix& x);

}  // namespace oclp
