#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/exec_policy.hpp"
#include "common/thread_pool.hpp"

namespace oclp {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    OCLP_CHECK_MSG(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const std::vector<double>& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::column(const std::vector<double>& v) {
  Matrix m(v.size(), 1);
  for (std::size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

std::vector<double> Matrix::row(std::size_t r) const {
  OCLP_CHECK(r < rows_);
  return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
          data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

std::vector<double> Matrix::col(std::size_t c) const {
  OCLP_CHECK(c < cols_);
  std::vector<double> v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_row(std::size_t r, const std::vector<double>& v) {
  OCLP_CHECK(r < rows_ && v.size() == cols_);
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::set_col(std::size_t c, const std::vector<double>& v) {
  OCLP_CHECK(c < cols_ && v.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  OCLP_CHECK_MSG(cols_ == rhs.rows_, "matmul shape mismatch: " << rows_ << "x"
                                     << cols_ << " * " << rhs.rows_ << "x"
                                     << rhs.cols_);
  Matrix out(rows_, rhs.cols_);
  // ikj loop order keeps the inner loop contiguous in both operands.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = rhs.data_.data() + k * rhs.cols_;
      double* orow = out.data_.data() + i * rhs.cols_;
      for (std::size_t j = 0; j < rhs.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Matrix out = *this;
  out -= rhs;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  OCLP_CHECK(same_shape(rhs));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  OCLP_CHECK(same_shape(rhs));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::mean_square() const {
  if (data_.empty()) return 0.0;
  double s = 0.0;
  for (double x : data_) s += x * x;
  return s / static_cast<double>(data_.size());
}

double Matrix::trace() const {
  OCLP_CHECK(rows_ == cols_);
  double s = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) s += (*this)(i, i);
  return s;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) os << (*this)(r, c) << (c + 1 < cols_ ? ", " : "");
    os << (r + 1 < rows_ ? ";\n" : "]");
  }
  return os.str();
}

Matrix operator*(double s, const Matrix& m) { return m * s; }

namespace {

// One output row of a·b in the i-k-j order of operator*: zero-initialised
// accumulation with the same zero-skip, so each row is bitwise identical
// to the serial product's row.
void multiply_row(const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  const std::size_t inner = a.cols(), width = b.cols();
  const double* arow = a.data() + i * inner;
  double* orow = out.data() + i * width;
  for (std::size_t k = 0; k < inner; ++k) {
    const double av = arow[k];
    if (av == 0.0) continue;
    const double* brow = b.data() + k * width;
    for (std::size_t j = 0; j < width; ++j) orow[j] += av * brow[j];
  }
}

}  // namespace

Matrix multiply(const Matrix& a, const Matrix& b, const ExecPolicy& exec) {
  OCLP_CHECK_MSG(a.cols() == b.rows(), "matmul shape mismatch: " << a.rows()
                                       << "x" << a.cols() << " * " << b.rows()
                                       << "x" << b.cols());
  Matrix out(a.rows(), b.cols());
  if (a.rows() < 2) {
    for (std::size_t i = 0; i < a.rows(); ++i) multiply_row(a, b, out, i);
    return out;
  }
  // Distinct output rows per worker: any policy matches the serial product.
  exec.for_each(0, a.rows(),
                [&](std::size_t i) { multiply_row(a, b, out, i); });
  return out;
}

Matrix multiply(const Matrix& a, const Matrix& b, ThreadPool* pool) {
  return multiply(a, b,
                  pool == nullptr ? ExecPolicy::serial()
                                  : ExecPolicy::pooled(pool));
}

Matrix multiply_naive(const Matrix& a, const Matrix& b) {
  OCLP_CHECK_MSG(a.cols() == b.rows(), "matmul shape mismatch: " << a.rows()
                                       << "x" << a.cols() << " * " << b.rows()
                                       << "x" << b.cols());
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      out(i, j) = s;
    }
  return out;
}

double reconstruction_mse(const Matrix& x, const Matrix& basis, const Matrix& f) {
  OCLP_CHECK_MSG(basis.rows() == x.rows() && f.cols() == x.cols() &&
                     basis.cols() == f.rows(),
                 "reconstruction shape mismatch: x " << x.rows() << "x"
                 << x.cols() << ", basis " << basis.rows() << "x" << basis.cols()
                 << ", f " << f.rows() << "x" << f.cols());
  if (x.empty()) return 0.0;
  const std::size_t n = x.cols(), k_dims = basis.cols();
  std::vector<double> recon(n);
  double s = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    std::fill(recon.begin(), recon.end(), 0.0);
    const double* brow = basis.data() + i * k_dims;
    for (std::size_t k = 0; k < k_dims; ++k) {
      const double bv = brow[k];
      if (bv == 0.0) continue;
      const double* frow = f.data() + k * n;
      for (std::size_t j = 0; j < n; ++j) recon[j] += bv * frow[j];
    }
    const double* xrow = x.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double d = xrow[j] - recon[j];
      s += d * d;
    }
  }
  return s / static_cast<double>(x.size());
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  OCLP_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

std::vector<double> normalized(const std::vector<double>& v) {
  const double n = norm(v);
  OCLP_CHECK_MSG(n > 0.0, "cannot normalise the zero vector");
  return scaled(v, 1.0 / n);
}

std::vector<double> scaled(const std::vector<double>& a, double s) {
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

std::vector<double> sub(const std::vector<double>& a, const std::vector<double>& b) {
  OCLP_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> add(const std::vector<double>& a, const std::vector<double>& b) {
  OCLP_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> row_means(const Matrix& x) {
  std::vector<double> mu(x.rows(), 0.0);
  if (x.cols() == 0) return mu;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < x.cols(); ++c) s += x(r, c);
    mu[r] = s / static_cast<double>(x.cols());
  }
  return mu;
}

std::vector<double> center_rows(Matrix& x) {
  auto mu = row_means(x);
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c) x(r, c) -= mu[r];
  return mu;
}

Matrix covariance(const Matrix& x, bool centered) {
  OCLP_CHECK(x.cols() >= 2);
  Matrix xc = x;
  if (!centered) center_rows(xc);
  Matrix cov = xc * xc.transposed();
  cov *= 1.0 / static_cast<double>(x.cols() - 1);
  return cov;
}

}  // namespace oclp
