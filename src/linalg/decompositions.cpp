#include "linalg/decompositions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace oclp {

EigenSym jacobi_eigen_sym(const Matrix& a, double tol, int max_sweeps) {
  OCLP_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);

  auto off_norm = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += d(i, j) * d(i, j);
    return std::sqrt(2.0 * s);
  };
  const double scale = std::max(1.0, d.frobenius_norm());

  for (int sweep = 0; sweep < max_sweeps && off_norm() > tol * scale; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double app = d(p, p), aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p), dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k), dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d(i, i) > d(j, j); });

  EigenSym out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = d(order[k], order[k]);
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, k) = v(r, order[k]);
  }
  return out;
}

Matrix cholesky(const Matrix& a) {
  OCLP_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        OCLP_CHECK_MSG(s > 0.0, "cholesky: matrix not positive definite (pivot "
                                    << i << " = " << s << ")");
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

namespace {
std::vector<double> forward_sub(const Matrix& l, const std::vector<double>& b) {
  const std::size_t n = l.rows();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  return y;
}

std::vector<double> backward_sub_t(const Matrix& l, const std::vector<double>& y) {
  // Solves Lᵀ x = y for lower-triangular L.
  const std::size_t n = l.rows();
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}
}  // namespace

std::vector<double> solve_spd(const Matrix& a, const std::vector<double>& b) {
  OCLP_CHECK(a.rows() == b.size());
  const Matrix l = cholesky(a);
  return backward_sub_t(l, forward_sub(l, b));
}

Matrix solve_spd(const Matrix& a, const Matrix& b) {
  OCLP_CHECK(a.rows() == b.rows());
  const Matrix l = cholesky(a);
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c)
    x.set_col(c, backward_sub_t(l, forward_sub(l, b.col(c))));
  return x;
}

Matrix inverse_spd(const Matrix& a) {
  return solve_spd(a, Matrix::identity(a.rows()));
}

std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b) {
  OCLP_CHECK(a.rows() == b.size() && a.rows() >= a.cols());
  const Matrix at = a.transposed();
  const Matrix ata = at * a;
  const Matrix atb = at * Matrix::column(b);
  return solve_spd(ata, atb.col(0));
}

Matrix projection_factors(const Matrix& lambda, const Matrix& x, double ridge) {
  OCLP_CHECK(lambda.rows() == x.rows());
  const Matrix lt = lambda.transposed();
  Matrix normal = lt * lambda;
  for (std::size_t i = 0; i < normal.rows(); ++i) normal(i, i) += ridge;
  return solve_spd(normal, lt * x);
}

Matrix projection_normaliser(const Matrix& lambda, double ridge) {
  const Matrix lt = lambda.transposed();
  Matrix normal = lt * lambda;
  for (std::size_t i = 0; i < normal.rows(); ++i) normal(i, i) += ridge;
  return inverse_spd(normal);
}

Matrix gram_schmidt(const Matrix& a) {
  Matrix q = a;
  for (std::size_t c = 0; c < q.cols(); ++c) {
    auto v = q.col(c);
    for (std::size_t p = 0; p < c; ++p) {
      const auto u = q.col(p);
      const double proj = dot(u, v);
      for (std::size_t r = 0; r < v.size(); ++r) v[r] -= proj * u[r];
    }
    const double nv = norm(v);
    if (nv > 1e-12) {
      for (double& x : v) x /= nv;
    } else {
      std::fill(v.begin(), v.end(), 0.0);
    }
    q.set_col(c, v);
  }
  return q;
}

}  // namespace oclp
