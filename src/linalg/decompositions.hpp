// Matrix decompositions for the KLT baseline and the Gibbs sampler:
// Jacobi symmetric eigensolver (covariance → principal components),
// Cholesky (SPD solves and multivariate-normal sampling), and small
// least-squares helpers used by the reconstruction step F = (ΛᵀΛ)⁻¹ΛᵀX.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace oclp {

/// Eigendecomposition of a symmetric matrix, eigenvalues descending.
struct EigenSym {
  std::vector<double> values;  ///< descending
  Matrix vectors;              ///< column k is the eigenvector of values[k]
};

/// Cyclic Jacobi rotations; `a` must be symmetric. Tolerance is on the
/// off-diagonal Frobenius norm relative to the matrix norm.
EigenSym jacobi_eigen_sym(const Matrix& a, double tol = 1e-12,
                          int max_sweeps = 100);

/// Lower-triangular Cholesky factor of an SPD matrix (throws CheckError if
/// a pivot is non-positive).
Matrix cholesky(const Matrix& a);

/// Solve A x = b for SPD A via Cholesky.
std::vector<double> solve_spd(const Matrix& a, const std::vector<double>& b);

/// Solve A X = B for SPD A (column-by-column).
Matrix solve_spd(const Matrix& a, const Matrix& b);

/// Inverse of an SPD matrix.
Matrix inverse_spd(const Matrix& a);

/// Least-squares solve min ||A x - b||₂ via normal equations (A is tall,
/// full column rank).
std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b);

/// Least-squares factors for the projection model: F = (ΛᵀΛ + ridge·I)⁻¹ΛᵀX.
/// A tiny ridge keeps quantised bases with (near-)collinear or zero columns
/// solvable; the default is exact least squares.
Matrix projection_factors(const Matrix& lambda, const Matrix& x,
                          double ridge = 0.0);

/// (ΛᵀΛ + ridge·I)⁻¹ — the reconstruction normaliser applied to hardware
/// projections.
Matrix projection_normaliser(const Matrix& lambda, double ridge = 0.0);

/// Modified Gram–Schmidt orthonormalisation of the columns of a (in place
/// semantics: returns the orthonormalised copy). Columns that become
/// numerically zero are replaced by zero columns.
Matrix gram_schmidt(const Matrix& a);

}  // namespace oclp
