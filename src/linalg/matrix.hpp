// Dense row-major double matrix with the small set of operations the
// Bayesian Linear Projection framework needs. Dimensions in this library
// follow the paper's convention: the data matrix X is P×N (one case per
// column), the basis Λ is P×K, the factors F are K×N.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace oclp {

class ThreadPool;
class ExecPolicy;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Row-major nested initializer: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  static Matrix diagonal(const std::vector<double>& d);
  /// Column vector from values.
  static Matrix column(const std::vector<double>& v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    OCLP_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    OCLP_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::vector<double> row(std::size_t r) const;
  std::vector<double> col(std::size_t c) const;
  void set_row(std::size_t r, const std::vector<double>& v);
  void set_col(std::size_t c, const std::vector<double>& v);

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix operator*(double s) const;
  Matrix& operator*=(double s);

  /// Frobenius norm.
  double frobenius_norm() const;
  /// Sum of squared entries divided by the number of entries.
  double mean_square() const;
  /// Trace (square matrices only).
  double trace() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

Matrix operator*(double s, const Matrix& m);

/// a·b with the row blocks of the output distributed per `exec`. Rows are
/// independent and each is computed with exactly the arithmetic of
/// `operator*`, so the product is bitwise identical to the serial one at
/// any policy/chunking; worthwhile when the output has many rows (e.g. the
/// P×N residual reconstructions over thousands of training cases). Safe to
/// call from inside a pool task — nested pooled policies run inline.
Matrix multiply(const Matrix& a, const Matrix& b, const ExecPolicy& exec);

/// Back-compat shim: nullptr runs serially, otherwise rows fan out over
/// `pool` (equivalent to ExecPolicy::pooled(pool)).
Matrix multiply(const Matrix& a, const Matrix& b, ThreadPool* pool);

/// Textbook i-j-k (dot-product order) multiplication. Slower and with a
/// different rounding order than `operator*`; kept as the golden reference
/// the cache-friendly and pooled paths are tested against.
Matrix multiply_naive(const Matrix& a, const Matrix& b);

/// mean_square of (x − basis·f) fused into one pass: reconstructs one row
/// at a time and accumulates the squared residual without materialising
/// either P×N temporary. Bitwise identical to
/// (x - basis * f).mean_square().
double reconstruction_mse(const Matrix& x, const Matrix& basis, const Matrix& f);

/// Euclidean dot product.
double dot(const std::vector<double>& a, const std::vector<double>& b);
/// Euclidean norm.
double norm(const std::vector<double>& v);
/// v / ||v|| (throws on zero vector).
std::vector<double> normalized(const std::vector<double>& v);
/// a·s.
std::vector<double> scaled(const std::vector<double>& a, double s);
/// a - b.
std::vector<double> sub(const std::vector<double>& a, const std::vector<double>& b);
/// a + b.
std::vector<double> add(const std::vector<double>& a, const std::vector<double>& b);

/// Column-wise mean of a P×N data matrix (length-P vector).
std::vector<double> row_means(const Matrix& x);
/// Subtract the per-row mean from every column; returns the means.
std::vector<double> center_rows(Matrix& x);
/// Sample covariance of a P×N data matrix (rows are variables): (X Xᵀ)/(N-1)
/// after centering. Set centered=true if the rows already have zero mean.
Matrix covariance(const Matrix& x, bool centered = false);

}  // namespace oclp
