// ClockGen is header-only; this TU anchors the library target.
#include "fabric/clock.hpp"
