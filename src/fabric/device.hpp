// Synthetic FPGA fabric with process variation.
//
// The paper's optimisation framework exists because a *specific* fabricated
// device differs from the family-wide worst-case model the synthesis tool
// assumes: delay varies inter-die (whole-device speed), intra-die
// systematically (spatial gradients/bowl from lithography), and intra-die
// randomly (per-transistor grain). This module models a device as a 2-D
// grid of logic locations with a multiplicative speed factor per location:
//
//   speed(x, y) = inter_die · (1 + systematic(x, y) + random_grain(x, y))
//
// A cell placed at (x, y) has delay = base_delay · speed(x, y) · derates.
// The synthesis-tool view never sees this map; it uses the slow-corner
// worst case plus guardband (see timing_annotation.hpp), which creates the
// tool-vs-device gap the framework exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace oclp {

struct DeviceConfig {
  // --- geometry -----------------------------------------------------------
  int grid_w = 60;  ///< logic-array columns
  int grid_h = 40;  ///< logic-array rows

  // --- process variation --------------------------------------------------
  double inter_die_sigma = 0.04;  ///< lognormal sigma of whole-die speed
  double systematic_amp = 0.06;   ///< amplitude of gradient + bowl terms
  double random_sigma = 0.035;    ///< per-location random grain sigma

  // --- nominal delays (typical silicon, 25 °C) -----------------------------
  double lut_delay_ns = 0.1113;   ///< LUT cell delay
  double route_delay_ns = 0.0508; ///< mean local-interconnect delay per net
  double route_sigma = 0.22;      ///< lognormal sigma of per-net routing

  // --- synthesis-tool (conservative) corner --------------------------------
  double slow_corner_factor = 1.187;  ///< slow-process/low-V/high-T corner
  double tool_guardband = 1.10;       ///< additional margin the tool adds
  double tool_route_pessimism = 1.55; ///< tool's worst-case routing estimate

  // --- clocking -------------------------------------------------------------
  double jitter_sigma_ns = 0.012;  ///< cycle-to-cycle PLL jitter (1σ)

  // --- environment ----------------------------------------------------------
  double temp_coeff_per_c = 0.0015;  ///< delay derate per °C above reference
  double temp_ref_c = 25.0;
  double aging_per_year = 0.01;  ///< NBTI/HCI slow-down per year of stress

  // --- supply (paper future work: voltage scaling vs error tolerance) -------
  double nominal_voltage = 1.2;    ///< core supply the timing is specified at
  double threshold_voltage = 0.5;  ///< transistor Vt for the alpha-power law
  double alpha_power = 1.3;        ///< velocity-saturation exponent
};

/// One fabricated device instance: the config plus a sampled variation map.
class Device {
 public:
  /// die_seed identifies the physical die; two devices with equal config
  /// and seed are the same die (exactly reproducible characterisation).
  Device(const DeviceConfig& cfg, std::uint64_t die_seed);

  const DeviceConfig& config() const { return cfg_; }
  std::uint64_t die_seed() const { return die_seed_; }
  int width() const { return cfg_.grid_w; }
  int height() const { return cfg_.grid_h; }

  /// Whole-die speed factor (1.0 nominal; < 1 is a fast die).
  double inter_die_factor() const { return inter_die_; }

  /// Delay multiplier at a grid location (coordinates are clamped to the
  /// die). Includes inter-die, systematic and random components but not
  /// temperature or aging.
  double speed_factor(int x, int y) const;

  /// Ambient/junction temperature; the paper cools the device to 14 °C.
  double temperature_c() const { return temperature_c_; }
  void set_temperature(double celsius) { temperature_c_ = celsius; }

  /// Core supply voltage (alpha-power delay law; must stay above Vt).
  /// Lowering it slows the fabric — the error/power trade-off of the
  /// paper's future-work section.
  double core_voltage() const { return core_voltage_; }
  void set_core_voltage(double volts);

  /// Delay multiplier of the current supply relative to nominal.
  double voltage_derate() const;
  /// Dynamic power relative to nominal supply at the same clock (∝ V²).
  double relative_dynamic_power() const;

  /// Multiplicative derate from temperature, supply and accumulated aging.
  double environment_derate() const;

  /// Advance device wear; re-characterisation after aging is the paper's
  /// Section II remark on compensating slow degradation.
  void age(double years);
  double age_years() const { return age_years_; }

  /// Fastest/slowest location factors over the die (diagnostics).
  double min_speed_factor() const;
  double max_speed_factor() const;

 private:
  std::size_t index(int x, int y) const {
    const int cx = x < 0 ? 0 : (x >= cfg_.grid_w ? cfg_.grid_w - 1 : x);
    const int cy = y < 0 ? 0 : (y >= cfg_.grid_h ? cfg_.grid_h - 1 : y);
    return static_cast<std::size_t>(cy) * cfg_.grid_w + cx;
  }

  DeviceConfig cfg_;
  std::uint64_t die_seed_;
  double inter_die_ = 1.0;
  double temperature_c_ = 25.0;
  double core_voltage_ = 1.2;
  double age_years_ = 0.0;
  std::vector<double> grid_;  ///< per-location (1 + systematic + random)
};

/// Die seed of member `index` of a synthetic production family — a stable
/// hash of the family seed, so a fleet can be regrown die-by-die and every
/// member is reproducible on its own (the fleet analogue of die_seed).
std::uint64_t family_die_seed(std::uint64_t family_seed, std::size_t index);

/// Instantiate `n` dies of one family at a common ambient temperature:
/// same config (same product), independent variation maps (different
/// silicon). This is the multi-die entry point the serving fleet deploys
/// over — each member gets its own inter-die factor and variation grid.
std::vector<Device> make_die_family(const DeviceConfig& cfg,
                                    std::uint64_t family_seed, std::size_t n,
                                    double temperature_c);

/// Same, but with explicit die seeds (e.g. dies whose speed grades are
/// pinned by tests or benches).
std::vector<Device> make_die_family(const DeviceConfig& cfg,
                                    const std::vector<std::uint64_t>& die_seeds,
                                    double temperature_c);

/// A placement decision for a module on the device: an anchor location and
/// the routing seed (re-running placement & routing draws new net delays —
/// the paper synthesises multipliers "multiple times at multiple locations"
/// precisely to capture this).
struct Placement {
  int x = 0;
  int y = 0;
  std::uint64_t route_seed = 1;
};

}  // namespace oclp
