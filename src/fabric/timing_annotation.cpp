#include "fabric/timing_annotation.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "netlist/compiled.hpp"
#include "netlist/sta.hpp"

namespace oclp {

namespace {
// Cells of one module pack into a square-ish cluster around the anchor,
// mirroring LAB packing: cell i sits at anchor + (i % span, i / span).
constexpr int kClusterSpan = 8;
}  // namespace

std::vector<double> annotate_timing(const Netlist& nl, const Device& device,
                                    const Placement& placement) {
  const DeviceConfig& cfg = device.config();
  const double derate = device.environment_derate();
  std::vector<double> delay(nl.num_cells(), 0.0);
  const auto& cells = nl.cells();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cell_is_free(cells[i].type)) continue;  // constants/buffers: no LE
    const int lx = placement.x + static_cast<int>(i % kClusterSpan);
    const int ly = placement.y + static_cast<int>(i / kClusterSpan) % device.height();
    // Routing draw: lognormal multiplier on the nominal local-route delay,
    // deterministic in (route_seed, cell index) — a new route_seed is a new
    // placement-and-routing run.
    Rng net_rng(hash_mix(placement.route_seed, i, 0x9027bd5613aaf21dULL));
    const double route = cfg.route_delay_ns *
                         std::exp(net_rng.normal(0.0, cfg.route_sigma));
    const double speed = device.speed_factor(lx, ly);
    // Snap the calibrated delay onto the integer-picosecond grid (the last
    // step, after every physical factor): all downstream timing — STA and
    // both settle kernels — sees the same grid-exact value, which is what
    // entitles OverclockSim's lowering to quantise exactly (PsGrid).
    delay[i] = PsGrid::snap_ns((cfg.lut_delay_ns + route) * speed * derate);
  }
  return delay;
}

std::vector<double> tool_timing(const Netlist& nl, const DeviceConfig& cfg) {
  const double per_cell =
      PsGrid::snap_ns((cfg.lut_delay_ns + cfg.route_delay_ns * cfg.tool_route_pessimism) *
                      cfg.slow_corner_factor * cfg.tool_guardband);
  std::vector<double> delay(nl.num_cells(), 0.0);
  const auto& cells = nl.cells();
  for (std::size_t i = 0; i < cells.size(); ++i)
    if (!cell_is_free(cells[i].type)) delay[i] = per_cell;
  return delay;
}

double tool_fmax_mhz(const Netlist& nl, const DeviceConfig& cfg) {
  return fmax_mhz(static_timing(nl, tool_timing(nl, cfg)).critical_path_ns);
}

double device_critical_path_ns(const Netlist& nl, const Device& device,
                               const Placement& placement) {
  return static_timing(nl, annotate_timing(nl, device, placement)).critical_path_ns;
}

}  // namespace oclp
