// Calibration of the synthetic fabric against the paper's case study.
//
// The paper's numbers (Cyclone III 3C16 on a DE0 board):
//   * the 9-bit-coefficient KLT design has a tool-reported Fmax such that
//     310 MHz is 1.85× above it (≈ 168 MHz);
//   * an 8×8 LUT multiplier shows errors at 320 MHz that differ between
//     two locations (Fig. 4) and grow with frequency (Figs. 1, 5);
//   * the characterisation ran at a die temperature of 14 °C.
//
// `reference_device_config()` is the single source of truth used by every
// bench and example; `tests/test_calibration.cpp` locks the resulting
// tool-vs-target ratio and the error-onset ordering so a change to the
// fabric constants that breaks the reproduction fails loudly.
#pragma once

#include <cstdint>

#include "fabric/device.hpp"

namespace oclp {

/// Fabric constants reproducing the paper's performance landscape.
inline DeviceConfig reference_device_config() {
  DeviceConfig cfg;  // defaults in device.hpp are the calibrated values
  return cfg;
}

/// The die seed used throughout the benches — "the device on my desk".
/// Chosen (tests/test_calibration.cpp) so that on this die: the 9-bit KLT
/// datapath's tool Fmax is ≈ 310/1.85 MHz; wl ≤ 5 multipliers are
/// error-free at 310 MHz while wl = 9 ones are not; and the Figure-4
/// conditions (8×8, m = 222, 320 MHz) produce visible errors at both
/// reference locations.
inline constexpr std::uint64_t kReferenceDieSeed = 22;

/// Characterisation temperature used in the paper (cooled device).
inline constexpr double kCharacterisationTempC = 14.0;

/// Case-study target clock (paper Table I).
inline constexpr double kTargetClockMhz = 310.0;

/// Figure-4 conditions.
inline constexpr double kFig4ClockMhz = 320.0;
inline constexpr unsigned kFig4Multiplicand = 222;

/// Characterisation placements: the paper places the test circuit at
/// several locations; these are the canonical two of Figure 4 (slow
/// corners of the reference die, where over-clocking bites first).
inline Placement reference_location_1() { return Placement{0, 30, 3}; }
inline Placement reference_location_2() { return Placement{2, 30, 17}; }

}  // namespace oclp
