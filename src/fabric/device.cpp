#include "fabric/device.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace oclp {

Device::Device(const DeviceConfig& cfg, std::uint64_t die_seed)
    : cfg_(cfg), die_seed_(die_seed) {
  OCLP_CHECK(cfg.grid_w > 0 && cfg.grid_h > 0);
  OCLP_CHECK(cfg.lut_delay_ns > 0 && cfg.route_delay_ns >= 0);
  OCLP_CHECK(cfg.nominal_voltage > cfg.threshold_voltage);
  core_voltage_ = cfg.nominal_voltage;

  Rng rng(hash_mix(die_seed, 0x0c1c0e3fULL, 17));

  // Inter-die: lognormal so the factor stays positive.
  inter_die_ = std::exp(rng.normal(0.0, cfg.inter_die_sigma));

  // Systematic intra-die component: a random linear gradient plus a radial
  // bowl (centre of the die is typically faster), both scaled by
  // systematic_amp. The gradient direction is a property of this die.
  const double gx = rng.normal(0.0, 1.0);
  const double gy = rng.normal(0.0, 1.0);
  const double gn = std::max(1e-9, std::hypot(gx, gy));
  const double dirx = gx / gn, diry = gy / gn;
  const double bowl = rng.uniform(0.3, 1.0);

  grid_.resize(static_cast<std::size_t>(cfg.grid_w) * cfg.grid_h);
  for (int y = 0; y < cfg.grid_h; ++y) {
    for (int x = 0; x < cfg.grid_w; ++x) {
      const double u = (x + 0.5) / cfg.grid_w - 0.5;   // in [-0.5, 0.5]
      const double v = (y + 0.5) / cfg.grid_h - 0.5;
      const double systematic =
          cfg.systematic_amp * (dirx * u + diry * v) +
          cfg.systematic_amp * bowl * (u * u + v * v) * 2.0;
      // Independent random grain per location, deterministic in the seed.
      std::uint64_t s = hash_mix(die_seed, static_cast<std::uint64_t>(x) << 20 | y, 29);
      Rng cell_rng(s);
      const double grain = cell_rng.normal(0.0, cfg.random_sigma);
      const double factor = 1.0 + systematic + grain;
      grid_[index(x, y)] = std::max(0.5, factor);
    }
  }
}

double Device::speed_factor(int x, int y) const {
  return inter_die_ * grid_[index(x, y)];
}

void Device::set_core_voltage(double volts) {
  OCLP_CHECK_MSG(volts > cfg_.threshold_voltage + 0.05,
                 "core voltage " << volts << " V too close to Vt "
                                 << cfg_.threshold_voltage << " V");
  core_voltage_ = volts;
}

double Device::voltage_derate() const {
  // Alpha-power law: delay ∝ V / (V - Vt)^α, normalised to nominal supply.
  auto delay_of = [this](double v) {
    return v / std::pow(v - cfg_.threshold_voltage, cfg_.alpha_power);
  };
  return delay_of(core_voltage_) / delay_of(cfg_.nominal_voltage);
}

double Device::relative_dynamic_power() const {
  const double r = core_voltage_ / cfg_.nominal_voltage;
  return r * r;
}

double Device::environment_derate() const {
  const double temp = 1.0 + cfg_.temp_coeff_per_c * (temperature_c_ - cfg_.temp_ref_c);
  const double aging = 1.0 + cfg_.aging_per_year * age_years_;
  return std::max(0.5, temp) * aging * voltage_derate();
}

void Device::age(double years) {
  OCLP_CHECK(years >= 0.0);
  age_years_ += years;
}

double Device::min_speed_factor() const {
  return inter_die_ * *std::min_element(grid_.begin(), grid_.end());
}

double Device::max_speed_factor() const {
  return inter_die_ * *std::max_element(grid_.begin(), grid_.end());
}

std::uint64_t family_die_seed(std::uint64_t family_seed, std::size_t index) {
  return hash_mix(family_seed, static_cast<std::uint64_t>(index),
                  0xD1E5EEDULL);
}

std::vector<Device> make_die_family(const DeviceConfig& cfg,
                                    std::uint64_t family_seed, std::size_t n,
                                    double temperature_c) {
  OCLP_CHECK(n >= 1);
  std::vector<std::uint64_t> seeds(n);
  for (std::size_t i = 0; i < n; ++i) seeds[i] = family_die_seed(family_seed, i);
  return make_die_family(cfg, seeds, temperature_c);
}

std::vector<Device> make_die_family(const DeviceConfig& cfg,
                                    const std::vector<std::uint64_t>& die_seeds,
                                    double temperature_c) {
  OCLP_CHECK_MSG(!die_seeds.empty(), "a die family needs at least one member");
  std::vector<Device> dies;
  dies.reserve(die_seeds.size());
  for (std::uint64_t seed : die_seeds) {
    dies.emplace_back(cfg, seed);
    dies.back().set_temperature(temperature_c);
  }
  return dies;
}

}  // namespace oclp
