// PLL / clock-domain model.
//
// The characterisation circuit (paper Fig. 3) uses a PLL with two domains:
// "mult_clk" drives the design under test at the swept frequency, and
// "fsm_clk" drives the supporting modules well below their own Fmax. The
// observable effect of the PLL on over-clocking errors is cycle-to-cycle
// jitter — the paper attributes the run-to-run variation of errors at high
// frequency to exactly this — so the model is a nominal period plus a
// clamped Gaussian per-cycle deviation.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace oclp {

class ClockGen {
 public:
  ClockGen(double freq_mhz, double jitter_sigma_ns, std::uint64_t seed)
      : nominal_period_ns_(1000.0 / freq_mhz),
        jitter_sigma_ns_(jitter_sigma_ns),
        rng_(hash_mix(seed, 0x5eedc10cULL)) {
    OCLP_CHECK(freq_mhz > 0.0 && jitter_sigma_ns >= 0.0);
  }

  double freq_mhz() const { return 1000.0 / nominal_period_ns_; }
  double nominal_period_ns() const { return nominal_period_ns_; }

  /// Next cycle's effective period. Jitter is clamped to ±4σ so a single
  /// outlier draw cannot produce a non-physical period.
  double next_period_ns() {
    if (jitter_sigma_ns_ == 0.0) return nominal_period_ns_;
    double j = rng_.normal(0.0, jitter_sigma_ns_);
    const double lim = 4.0 * jitter_sigma_ns_;
    if (j > lim) j = lim;
    if (j < -lim) j = -lim;
    return nominal_period_ns_ + j;
  }

 private:
  double nominal_period_ns_;
  double jitter_sigma_ns_;
  Rng rng_;
};

}  // namespace oclp
