// Per-cell delay annotation of a netlist, in two views:
//
//  * annotate_timing(): the *device* view. Each cell of the placed module
//    lands in a small cluster around the placement anchor (like LABs fed by
//    local interconnect); its delay is the nominal LUT + a per-net routing
//    draw (seeded by the placement's route_seed, so re-running P&R gives a
//    different routing), scaled by the location's speed factor and the
//    environment derate.
//
//  * tool_timing(): the *synthesis tool* view. Family-wide worst case —
//    slow corner, guardband, pessimistic routing — identical for every
//    cell. STA over these delays yields the conservative fA of Figure 1.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/device.hpp"
#include "netlist/netlist.hpp"

namespace oclp {

/// Device-specific per-cell delays for a module placed at `placement`.
std::vector<double> annotate_timing(const Netlist& nl, const Device& device,
                                    const Placement& placement);

/// Conservative per-cell delays as the synthesis tool would assume.
std::vector<double> tool_timing(const Netlist& nl, const DeviceConfig& cfg);

/// Convenience: tool-reported Fmax (MHz) of a netlist.
double tool_fmax_mhz(const Netlist& nl, const DeviceConfig& cfg);

/// Convenience: device-view critical path (ns) at a placement.
double device_critical_path_ns(const Netlist& nl, const Device& device,
                               const Placement& placement);

}  // namespace oclp
