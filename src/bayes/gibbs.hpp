// Gibbs sampling of one projection vector (paper Section V, borrowing the
// Bayesian formulation of Bouganis et al., TVLSI'10 [9], via Geman & Geman
// [11]).
//
// Model for the current dimension, on the residual data X (P×N):
//
//   x_i = λ f_i + e_i,   f_i ~ N(0, 1),   e_i ~ N(0, diag(Ψ)),
//
// with every entry of λ constrained to the quantised coefficient grid and
// carrying the hardware-aware prior p(λ) = g(E(λ, f_clk)). Full
// conditionals:
//   f_i | λ,Ψ   ~ N( (λᵀΨ⁻¹x_i) / (λᵀΨ⁻¹λ + 1), 1/(λᵀΨ⁻¹λ + 1) )
//   Ψ_p | λ,F   ~ InvGamma( a₀ + N/2, b₀ + ½ Σ_i (x_pi − λ_p f_i)² )
//   λ_p | F,Ψ_p ∝ N(λ_p; μ_p, σ_p²) · prior(λ_p) over the grid, with
//                 μ_p = Σ_i x_pi f_i / Σ_i f_i²,  σ_p² = Ψ_p / Σ_i f_i².
//
// The discrete λ conditional is sampled exactly (categorical over the
// grid), so the posterior honours the prior's hardware penalties without
// any Metropolis tuning.
#pragma once

#include <cstdint>
#include <vector>

#include "bayes/prior.hpp"
#include "common/exec_policy.hpp"
#include "linalg/matrix.hpp"

namespace oclp {

struct GibbsSettings {
  int burn_in = 1000;   ///< discarded samples (paper Table I)
  int samples = 3000;   ///< retained samples (paper Table I)
  std::uint64_t seed = 1;
  double psi_shape = 2.0;    ///< a₀ of the InvGamma prior on Ψ
  double psi_scale = 1e-3;   ///< b₀ of the InvGamma prior on Ψ
  /// Variance of the factor prior f_i ~ N(0, v). The paper keeps ‖λ‖ = 1
  /// (Sec. IV-A); anchoring v to the residual's dominant eigenvalue makes
  /// the posterior λ concentrate near unit norm, so the grid prior is
  /// evaluated at the coefficients the design will actually use. 0 = auto
  /// (dominant eigenvalue of the sample covariance of x).
  double factor_variance = 0.0;
  /// Route through the retained pre-restructure sampler instead of the
  /// sufficient-statistics fast path. The reference consumes the RNG
  /// stream identically and draws the same chain; it exists as the golden
  /// baseline for the fast path's correctness tests and speedup benches.
  bool reference_impl = false;
  /// Execution policy of the fast path's per-row data passes (the sum_xx
  /// precompute and the per-iteration fused Σ x·f pass). Only distinct-row
  /// writes are distributed — every RNG draw stays strictly sequential on
  /// the calling thread — so any policy draws the bitwise-identical chain.
  /// Serial by default: chains are short-row/long-column and usually run
  /// many-at-once from algorithm1's already-parallel dimension loop.
  ExecPolicy exec = ExecPolicy::serial();
};

struct GibbsResult {
  /// Marginal posterior mode per coefficient — the λ_{d,wl} of Algorithm 1.
  /// The mode (not the snapped mean) is returned because every mode value
  /// was actually sampled under the hardware prior; the mean of two
  /// error-free codes can land on an error-prone one.
  std::vector<double> lambda;
  /// Raw (un-snapped) posterior mean.
  std::vector<double> lambda_mean;
  /// Posterior mean of the noise variances Ψ.
  std::vector<double> psi;
  /// Per-row visit counts over the grid for the retained samples — the
  /// marginal posterior histograms the mode is read from. visits[r][g] is
  /// how often row r drew grid index g; each row sums to `samples`.
  std::vector<std::vector<std::uint32_t>> visits;
  /// Average log joint density over retained samples (diagnostic).
  double avg_log_likelihood = 0.0;
};

/// Sample one projection vector for the residual data `x` (P×N, centered)
/// under `prior`. Deterministic in settings.seed.
GibbsResult sample_projection(const Matrix& x, const CoeffPrior& prior,
                              const GibbsSettings& settings);

/// The pre-restructure sampler, retained verbatim as the golden reference
/// for the sufficient-statistics fast path: per-iteration O(n) residual
/// loops and full-grid exp scoring. Same seed → same RNG stream and the
/// same chain of discrete λ draws as `sample_projection` (continuous
/// outputs agree to rounding because the fast path evaluates the Ψ scale
/// through the algebraically identical sufficient-statistics form).
GibbsResult sample_projection_reference(const Matrix& x, const CoeffPrior& prior,
                                        const GibbsSettings& settings);

}  // namespace oclp
