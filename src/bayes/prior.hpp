// Prior distribution formation (paper Section V-B3, Eq. 6, Figure 7).
//
// The prior over a coefficient λ of the Λ matrix carries the hardware
// knowledge into the Bayesian estimation: coefficients whose magnitude
// code produces large over-clocking error variance at the target frequency
// get low probability,
//
//   p(λ) = g(E(λ, f)) = c_E · (1 + E(λ, f))^(-β),
//
// with E in raw product-code units as characterised, c_E normalising the
// grid to a probability mass function, and β scaling how strongly the
// hardware evidence shapes the posterior (β→0 recovers a flat prior; the
// data-description part of the prior is deliberately uninformative).
#pragma once

#include <cstdint>
#include <vector>

#include "charlib/error_model.hpp"

namespace oclp {

/// Discrete prior over the sign-magnitude coefficient grid of a given
/// word-length: value(i) = sign·m/2^wl for m ∈ [0, 2^wl), covering
/// (-1, 1). Negative and positive codes of equal magnitude share E (the
/// multiplier datapath sees the magnitude).
class CoeffPrior {
 public:
  CoeffPrior() = default;

  /// The multiplier configuration whose E(m, f) table shaped this prior
  /// (for the flat prior: the configuration the design will realise with).
  const MultConfig& config() const { return config_; }
  int wordlength() const { return config_.wordlength; }
  double freq_mhz() const { return freq_mhz_; }
  double beta() const { return beta_; }
  std::size_t size() const { return values_.size(); }
  const std::vector<double>& values() const { return values_; }
  const std::vector<double>& probabilities() const { return probs_; }

  /// Probability of grid index i.
  double probability(std::size_t i) const { return probs_.at(i); }
  /// Grid value of index i.
  double value(std::size_t i) const { return values_.at(i); }
  /// Index of the grid value nearest to x.
  std::size_t nearest_index(double x) const;

  friend CoeffPrior make_prior(const ErrorModel& model,
                               const MultConfig& config, double freq_mhz,
                               double beta);
  friend CoeffPrior make_flat_prior(const MultConfig& config, double freq_mhz);

 private:
  static CoeffPrior grid_prior(const MultConfig& config, double freq_mhz,
                               double beta);

  MultConfig config_{MultArch::Array, 0, 1};
  double freq_mhz_ = 0.0;
  double beta_ = 1.0;
  std::vector<double> values_;  ///< ascending coefficient grid
  std::vector<double> probs_;   ///< normalised prior mass per grid point
};

/// Build the Eq.-6 prior from a characterised error model. The model must
/// have been swept on exactly `config` (require_config) — a Wallace E
/// table must not shape an array column's prior.
CoeffPrior make_prior(const ErrorModel& model, const MultConfig& config,
                      double freq_mhz, double beta);

/// Flat prior over the same grid (β = 0 limit; used by the KLT-style
/// baseline when evaluated through the Bayesian machinery). The config
/// only fixes the grid resolution and tags the prior with the realisation
/// target — no E table is consulted.
CoeffPrior make_flat_prior(const MultConfig& config, double freq_mhz);

}  // namespace oclp
