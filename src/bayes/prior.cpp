#include "bayes/prior.hpp"

#include <algorithm>
#include <cmath>

#include "common/fixed_point.hpp"

namespace oclp {

std::size_t CoeffPrior::nearest_index(double x) const {
  OCLP_CHECK(!values_.empty());
  const auto it = std::lower_bound(values_.begin(), values_.end(), x);
  if (it == values_.begin()) return 0;
  if (it == values_.end()) return values_.size() - 1;
  const auto hi = static_cast<std::size_t>(it - values_.begin());
  const auto lo = hi - 1;
  return (x - values_[lo] <= values_[hi] - x) ? lo : hi;
}

CoeffPrior CoeffPrior::grid_prior(const MultConfig& config, double freq_mhz,
                                  double beta) {
  OCLP_CHECK(config.wordlength >= 1 && config.wordlength <= 16);
  OCLP_CHECK(config.pipeline_depth >= 1);
  OCLP_CHECK(beta >= 0.0);
  CoeffPrior prior;
  prior.config_ = config;
  prior.freq_mhz_ = freq_mhz;
  prior.beta_ = beta;
  prior.values_ = coeff_grid(config.wordlength);
  prior.probs_.assign(prior.values_.size(), 1.0);
  return prior;
}

namespace {

void normalise(std::vector<double>& probs) {
  double total = 0.0;
  for (double p : probs) total += p;
  OCLP_CHECK_MSG(total > 0.0, "prior collapsed to zero mass");
  for (double& p : probs) p /= total;
}

}  // namespace

CoeffPrior make_prior(const ErrorModel& model, const MultConfig& config,
                      double freq_mhz, double beta) {
  model.require_config(config, "prior");
  CoeffPrior prior = CoeffPrior::grid_prior(config, freq_mhz, beta);
  for (std::size_t i = 0; i < prior.values_.size(); ++i) {
    const auto q = quantize_coeff(prior.values_[i], config.wordlength);
    const double e = model.variance(q.magnitude, freq_mhz);
    // g(E) = (1 + E)^(-β), computed in log space: β·ln(1+E) can exceed 700
    // for raw code-unit variances, which would underflow pow().
    const double logg = -beta * std::log1p(e);
    prior.probs_[i] = std::exp(std::max(logg, -745.0));
  }
  normalise(prior.probs_);
  return prior;
}

CoeffPrior make_flat_prior(const MultConfig& config, double freq_mhz) {
  CoeffPrior prior = CoeffPrior::grid_prior(config, freq_mhz, 0.0);
  normalise(prior.probs_);
  return prior;
}

}  // namespace oclp
