#include "bayes/gibbs.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "linalg/decompositions.hpp"

namespace oclp {

namespace {
/// Dominant eigenvalue of the (uncentered) second-moment matrix of x —
/// the natural scale of the strongest remaining mode of variation.
double dominant_eigenvalue(const Matrix& x) {
  const std::size_t n = x.cols();
  Matrix s = x * x.transposed();
  s *= 1.0 / static_cast<double>(n);
  const EigenSym eig = jacobi_eigen_sym(s);
  return eig.values.front();
}

/// Grid entries whose log-weight sits below wmax + kLogPrune are treated
/// as zero-probability by the fast path. exp() only underflows to an exact
/// 0.0 below wmax − 746, but pruning there barely pays: on Table-I data
/// the single-factor model's Ψ absorbs the unexplained modes, the λ
/// conditional is merely sharp — not razor-thin — and most of the 2^wl
/// grid still exponentiates. Pruning at −45 is what makes the grid step
/// cheap, and its effect on the draw is provably negligible: every pruned
/// entry has weight < e^−45 of the maximum (which is exactly 1), so the
/// pruned probability mass is < |grid|·e^−45 ≈ 10⁻¹⁶ of the total and a
/// draw can only differ when the uniform lands inside that sliver —
/// < 10⁻⁸ over a full Table-I run. The golden tests against
/// sample_projection_reference pin chain identity empirically.
constexpr double kLogPrune = -45.0;

/// Safety margin (in log units) added when converting kLogPrune into a
/// scoring-band radius, absorbing the rounding slop of the radius
/// computation; entries wrongly kept are scored exactly, so the margin
/// only errs towards correctness.
constexpr double kBandMargin = 2.0;

/// First grid index with value >= x (grid ascending).
std::size_t grid_lower(const std::vector<double>& grid, double x) {
  return static_cast<std::size_t>(
      std::lower_bound(grid.begin(), grid.end(), x) - grid.begin());
}
}  // namespace

GibbsResult sample_projection(const Matrix& x, const CoeffPrior& prior,
                              const GibbsSettings& settings) {
  if (settings.reference_impl) return sample_projection_reference(x, prior, settings);

  const std::size_t p = x.rows();
  const std::size_t n = x.cols();
  OCLP_CHECK(p >= 1 && n >= 2);
  OCLP_CHECK(prior.size() >= 2);
  OCLP_CHECK(settings.burn_in >= 0 && settings.samples >= 1);

  Rng rng(settings.seed);
  double fvar_prior = settings.factor_variance;
  if (fvar_prior <= 0.0) fvar_prior = std::max(dominant_eigenvalue(x), 1e-9);
  const auto& grid = prior.values();
  std::vector<double> log_prior(grid.size());
  double log_pmax = -1e300;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    log_prior[i] = std::log(std::max(prior.probability(i), 1e-300));
    log_pmax = std::max(log_pmax, log_prior[i]);
  }

  // --- iteration-invariant sufficient statistic -----------------------------
  // sum_xx[r] = Σ_i x(r,i)²: with sum_xf and sum_ff it makes the residual
  // sum of squares Σ_i (x(r,i) − λ_r f_i)² an O(1) evaluation per row.
  std::vector<double> sum_xx(p, 0.0);
  settings.exec.for_each(0, p, [&](std::size_t r) {
    const double* xr = x.data() + r * n;
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += xr[i] * xr[i];
    sum_xx[r] = s;
  });

  // --- state ---------------------------------------------------------------
  std::vector<double> lambda(p);
  // Start from the data's dominant direction snapped to the grid, so short
  // chains (tests) land in the right mode quickly; the chain remains free
  // to leave it.
  {
    std::vector<double> v(p, 0.0);
    for (std::size_t r = 0; r < p; ++r)
      v[r] = std::sqrt(sum_xx[r] / static_cast<double>(n));
    const double nv = norm(v);
    for (std::size_t r = 0; r < p; ++r) {
      const double init = nv > 0.0 ? v[r] / nv : 0.0;
      lambda[r] = prior.value(prior.nearest_index(init));
    }
  }
  std::vector<double> psi(p, 0.01);
  std::vector<double> f(n, 0.0);
  std::vector<double> sum_xf(p, 0.0);

  // --- accumulators ----------------------------------------------------------
  std::vector<double> lambda_acc(p, 0.0);
  std::vector<double> psi_acc(p, 0.0);
  // Per-entry visit counts over the grid (marginal posterior histograms).
  std::vector<std::vector<std::uint32_t>> visits(p,
      std::vector<std::uint32_t>(grid.size(), 0));
  std::vector<std::size_t> last_index(p, 0);
  double loglik_acc = 0.0;

  std::vector<double> weights(grid.size());
  const int total_iters = settings.burn_in + settings.samples;
  for (int iter = 0; iter < total_iters; ++iter) {
    // -- f_i | λ, Ψ ---------------------------------------------------------
    double prec = 1.0 / fvar_prior;  // factor prior f ~ N(0, v)
    for (std::size_t r = 0; r < p; ++r) prec += lambda[r] * lambda[r] / psi[r];
    const double fvar = 1.0 / prec;
    const double fsd = std::sqrt(fvar);
    for (std::size_t i = 0; i < n; ++i) {
      double num = 0.0;
      for (std::size_t r = 0; r < p; ++r) num += lambda[r] * x(r, i) / psi[r];
      f[i] = rng.normal(num * fvar, fsd);
    }

    double sum_ff = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum_ff += f[i] * f[i];

    // One fused pass over the data per iteration: sum_xf[r] = Σ_i x(r,i)·f_i
    // feeds both the Ψ scale below and the λ conditional mean afterwards
    // (the pre-restructure code recomputed it row by row in the λ step).
    // Distinct-row writes with a fixed per-row summation order, so the
    // policy cannot perturb the chain; every rng draw stays on this thread.
    settings.exec.for_each(0, p, [&](std::size_t r) {
      const double* xr = x.data() + r * n;
      double s = 0.0;
      for (std::size_t i = 0; i < n; ++i) s += xr[i] * f[i];
      sum_xf[r] = s;
    });

    // -- Ψ_p | λ, F ----------------------------------------------------------
    // Σ_i (x − λf)² = sum_xx − 2λ·sum_xf + λ²·sum_ff: O(1) per row. Clamp at
    // zero — cancellation can leave a tiny negative where the residual
    // vanishes, and the InvGamma scale must stay positive.
    for (std::size_t r = 0; r < p; ++r) {
      const double ss = std::max(
          sum_xx[r] - 2.0 * lambda[r] * sum_xf[r] + lambda[r] * lambda[r] * sum_ff,
          0.0);
      psi[r] = rng.inverse_gamma(settings.psi_shape + 0.5 * static_cast<double>(n),
                                 settings.psi_scale + 0.5 * ss);
      psi[r] = std::max(psi[r], 1e-12);
    }

    // -- λ_p | F, Ψ_p over the grid -------------------------------------------
    for (std::size_t r = 0; r < p; ++r) {
      double mu = 0.0, inv_two_var = 0.0;
      if (sum_ff > 1e-12) {
        mu = sum_xf[r] / sum_ff;
        inv_two_var = sum_ff / (2.0 * psi[r]);
      }
      // Scoring band. The exact log-weight at the grid point nearest μ is a
      // lower bound L0 on wmax, so any entry with
      //   log_pmax − d²·inv_two_var < L0 + kLogPrune − kBandMargin
      // can neither attain the maximum nor survive the prune — its score is
      // never needed. Those entries form the complement of a contiguous
      // window |grid − μ| ≤ radius (the quadratic is monotone on each side
      // of μ), found by binary search; everything outside is treated as
      // zero weight without being scored. wmax over the band equals wmax
      // over the full grid, because the excluded entries are all < L0 ≤ wmax.
      std::size_t g_lo = 0, g_hi = grid.size() - 1;
      if (inv_two_var > 0.0) {
        std::size_t g0 = grid_lower(grid, mu);
        if (g0 == grid.size()) g0 = grid.size() - 1;
        else if (g0 > 0 && mu - grid[g0 - 1] < grid[g0] - mu) --g0;
        const double d0 = grid[g0] - mu;
        const double l0 = log_prior[g0] - d0 * d0 * inv_two_var;
        const double radius =
            std::sqrt((log_pmax - l0 - kLogPrune + kBandMargin) / inv_two_var);
        g_lo = grid_lower(grid, mu - radius);
        g_hi = static_cast<std::size_t>(
                   std::upper_bound(grid.begin(), grid.end(), mu + radius) -
                   grid.begin());
        g_hi = g_hi > 0 ? g_hi - 1 : 0;
        // The nearest-to-μ point is provably inside the band (radius ≥ |d0|);
        // clamp anyway so rounding slop can never produce an empty window.
        g_lo = std::min(g_lo, g0);
        g_hi = std::max(g_hi, g0);
      }
      double wmax = -1e300;
      for (std::size_t g = g_lo; g <= g_hi; ++g) {
        const double d = grid[g] - mu;
        const double lw = log_prior[g] - d * d * inv_two_var;
        weights[g] = lw;
        wmax = std::max(wmax, lw);
      }
      // Fused exponentiation + normalising total over the band, pruning
      // in-band stragglers below the same threshold.
      double wtotal = 0.0;
      for (std::size_t g = g_lo; g <= g_hi; ++g) {
        const double e = weights[g] - wmax;
        const double w = e < kLogPrune ? 0.0 : std::exp(e);
        weights[g] = w;
        wtotal += w;
      }
      std::size_t g;
      if (g_lo == 0 && g_hi == grid.size() - 1) {
        g = rng.categorical(weights, wtotal);
      } else {
        // Inline walk, identical to Rng::categorical over the full grid with
        // the pruned entries at zero weight: subtracting 0.0 from a strictly
        // positive remainder never crosses zero, so skipping them is exact,
        // and the fall-through bin is the same last index. Consumes exactly
        // one uniform either way.
        OCLP_CHECK_MSG(wtotal > 0.0, "categorical: all weights are zero");
        double rem = rng.uniform() * wtotal;
        g = grid.size() - 1;
        for (std::size_t j = g_lo; j <= g_hi; ++j) {
          rem -= weights[j];
          if (rem <= 0.0) {
            g = j;
            break;
          }
        }
      }
      last_index[r] = g;
      lambda[r] = grid[g];
    }

    if (iter >= settings.burn_in) {
      for (std::size_t r = 0; r < p; ++r) {
        lambda_acc[r] += lambda[r];
        psi_acc[r] += psi[r];
        ++visits[r][last_index[r]];
      }
      // Log joint (up to constants) as a mixing diagnostic; the residual
      // sum of squares reuses the sufficient statistics (λ here is the
      // fresh draw, so this is not the Ψ-step value), and the λ prior term
      // reads the drawn grid index directly instead of re-searching it.
      double ll = 0.0;
      for (std::size_t r = 0; r < p; ++r) {
        const double ss = std::max(
            sum_xx[r] - 2.0 * lambda[r] * sum_xf[r] + lambda[r] * lambda[r] * sum_ff,
            0.0);
        ll += -0.5 * ss / psi[r] -
              0.5 * static_cast<double>(n) * std::log(psi[r]);
        ll += log_prior[last_index[r]];
      }
      loglik_acc += ll;
    }
  }

  GibbsResult result;
  result.lambda_mean.resize(p);
  result.lambda.resize(p);
  result.psi.resize(p);
  const double inv_s = 1.0 / static_cast<double>(settings.samples);
  for (std::size_t r = 0; r < p; ++r) {
    result.lambda_mean[r] = lambda_acc[r] * inv_s;
    std::size_t mode = 0;
    for (std::size_t g = 1; g < grid.size(); ++g)
      if (visits[r][g] > visits[r][mode]) mode = g;
    result.lambda[r] = grid[mode];
    result.psi[r] = psi_acc[r] * inv_s;
  }
  result.visits = std::move(visits);
  result.avg_log_likelihood = loglik_acc * inv_s;
  return result;
}

GibbsResult sample_projection_reference(const Matrix& x, const CoeffPrior& prior,
                                        const GibbsSettings& settings) {
  const std::size_t p = x.rows();
  const std::size_t n = x.cols();
  OCLP_CHECK(p >= 1 && n >= 2);
  OCLP_CHECK(prior.size() >= 2);
  OCLP_CHECK(settings.burn_in >= 0 && settings.samples >= 1);

  Rng rng(settings.seed);
  double fvar_prior = settings.factor_variance;
  if (fvar_prior <= 0.0) fvar_prior = std::max(dominant_eigenvalue(x), 1e-9);
  const auto& grid = prior.values();
  std::vector<double> log_prior(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    log_prior[i] = std::log(std::max(prior.probability(i), 1e-300));

  // --- state ---------------------------------------------------------------
  std::vector<double> lambda(p);
  // Start from the data's dominant direction snapped to the grid, so short
  // chains (tests) land in the right mode quickly; the chain remains free
  // to leave it.
  {
    std::vector<double> v(p, 0.0);
    for (std::size_t r = 0; r < p; ++r) {
      double s = 0.0;
      for (std::size_t i = 0; i < n; ++i) s += x(r, i) * x(r, i);
      v[r] = std::sqrt(s / static_cast<double>(n));
    }
    const double nv = norm(v);
    for (std::size_t r = 0; r < p; ++r) {
      const double init = nv > 0.0 ? v[r] / nv : 0.0;
      lambda[r] = prior.value(prior.nearest_index(init));
    }
  }
  std::vector<double> psi(p, 0.01);
  std::vector<double> f(n, 0.0);

  // --- accumulators ----------------------------------------------------------
  std::vector<double> lambda_acc(p, 0.0);
  std::vector<double> psi_acc(p, 0.0);
  // Per-entry visit counts over the grid (marginal posterior histograms).
  std::vector<std::vector<std::uint32_t>> visits(p,
      std::vector<std::uint32_t>(grid.size(), 0));
  std::vector<std::size_t> last_index(p, 0);
  double loglik_acc = 0.0;

  std::vector<double> weights(grid.size());
  const int total = settings.burn_in + settings.samples;
  for (int iter = 0; iter < total; ++iter) {
    // -- f_i | λ, Ψ ---------------------------------------------------------
    double prec = 1.0 / fvar_prior;  // factor prior f ~ N(0, v)
    for (std::size_t r = 0; r < p; ++r) prec += lambda[r] * lambda[r] / psi[r];
    const double fvar = 1.0 / prec;
    const double fsd = std::sqrt(fvar);
    for (std::size_t i = 0; i < n; ++i) {
      double num = 0.0;
      for (std::size_t r = 0; r < p; ++r) num += lambda[r] * x(r, i) / psi[r];
      f[i] = rng.normal(num * fvar, fsd);
    }

    double sum_ff = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum_ff += f[i] * f[i];

    // -- Ψ_p | λ, F ----------------------------------------------------------
    for (std::size_t r = 0; r < p; ++r) {
      double ss = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double res = x(r, i) - lambda[r] * f[i];
        ss += res * res;
      }
      psi[r] = rng.inverse_gamma(settings.psi_shape + 0.5 * static_cast<double>(n),
                                 settings.psi_scale + 0.5 * ss);
      psi[r] = std::max(psi[r], 1e-12);
    }

    // -- λ_p | F, Ψ_p over the grid -------------------------------------------
    for (std::size_t r = 0; r < p; ++r) {
      double sum_xf = 0.0;
      for (std::size_t i = 0; i < n; ++i) sum_xf += x(r, i) * f[i];
      double mu = 0.0, inv_two_var = 0.0;
      if (sum_ff > 1e-12) {
        mu = sum_xf / sum_ff;
        inv_two_var = sum_ff / (2.0 * psi[r]);
      }
      double wmax = -1e300;
      for (std::size_t g = 0; g < grid.size(); ++g) {
        const double d = grid[g] - mu;
        const double lw = log_prior[g] - d * d * inv_two_var;
        weights[g] = lw;
        wmax = std::max(wmax, lw);
      }
      for (auto& w : weights) w = std::exp(w - wmax);
      const std::size_t g = rng.categorical(weights);
      last_index[r] = g;
      lambda[r] = grid[g];
    }

    if (iter >= settings.burn_in) {
      for (std::size_t r = 0; r < p; ++r) {
        lambda_acc[r] += lambda[r];
        psi_acc[r] += psi[r];
        ++visits[r][last_index[r]];
      }
      // Log joint (up to constants) as a mixing diagnostic.
      double ll = 0.0;
      for (std::size_t r = 0; r < p; ++r) {
        double ss = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double res = x(r, i) - lambda[r] * f[i];
          ss += res * res;
        }
        ll += -0.5 * ss / psi[r] -
              0.5 * static_cast<double>(n) * std::log(psi[r]);
        ll += log_prior[prior.nearest_index(lambda[r])];
      }
      loglik_acc += ll;
    }
  }

  GibbsResult result;
  result.lambda_mean.resize(p);
  result.lambda.resize(p);
  result.psi.resize(p);
  const double inv_s = 1.0 / static_cast<double>(settings.samples);
  for (std::size_t r = 0; r < p; ++r) {
    result.lambda_mean[r] = lambda_acc[r] * inv_s;
    std::size_t mode = 0;
    for (std::size_t g = 1; g < grid.size(); ++g)
      if (visits[r][g] > visits[r][mode]) mode = g;
    result.lambda[r] = grid[mode];
    result.psi[r] = psi_acc[r] * inv_s;
  }
  result.visits = std::move(visits);
  result.avg_log_likelihood = loglik_acc * inv_s;
  return result;
}

}  // namespace oclp
