#include "bayes/gibbs.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "linalg/decompositions.hpp"

namespace oclp {

namespace {
/// Dominant eigenvalue of the (uncentered) second-moment matrix of x —
/// the natural scale of the strongest remaining mode of variation.
double dominant_eigenvalue(const Matrix& x) {
  const std::size_t n = x.cols();
  Matrix s = x * x.transposed();
  s *= 1.0 / static_cast<double>(n);
  const EigenSym eig = jacobi_eigen_sym(s);
  return eig.values.front();
}
}  // namespace

GibbsResult sample_projection(const Matrix& x, const CoeffPrior& prior,
                              const GibbsSettings& settings) {
  const std::size_t p = x.rows();
  const std::size_t n = x.cols();
  OCLP_CHECK(p >= 1 && n >= 2);
  OCLP_CHECK(prior.size() >= 2);
  OCLP_CHECK(settings.burn_in >= 0 && settings.samples >= 1);

  Rng rng(settings.seed);
  double fvar_prior = settings.factor_variance;
  if (fvar_prior <= 0.0) fvar_prior = std::max(dominant_eigenvalue(x), 1e-9);
  const auto& grid = prior.values();
  std::vector<double> log_prior(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    log_prior[i] = std::log(std::max(prior.probability(i), 1e-300));

  // --- state ---------------------------------------------------------------
  std::vector<double> lambda(p);
  // Start from the data's dominant direction snapped to the grid, so short
  // chains (tests) land in the right mode quickly; the chain remains free
  // to leave it.
  {
    std::vector<double> v(p, 0.0);
    for (std::size_t r = 0; r < p; ++r) {
      double s = 0.0;
      for (std::size_t i = 0; i < n; ++i) s += x(r, i) * x(r, i);
      v[r] = std::sqrt(s / static_cast<double>(n));
    }
    const double nv = norm(v);
    for (std::size_t r = 0; r < p; ++r) {
      const double init = nv > 0.0 ? v[r] / nv : 0.0;
      lambda[r] = prior.value(prior.nearest_index(init));
    }
  }
  std::vector<double> psi(p, 0.01);
  std::vector<double> f(n, 0.0);

  // --- accumulators ----------------------------------------------------------
  std::vector<double> lambda_acc(p, 0.0);
  std::vector<double> psi_acc(p, 0.0);
  // Per-entry visit counts over the grid (marginal posterior histograms).
  std::vector<std::vector<std::uint32_t>> visits(p,
      std::vector<std::uint32_t>(grid.size(), 0));
  std::vector<std::size_t> last_index(p, 0);
  double loglik_acc = 0.0;

  std::vector<double> weights(grid.size());
  const int total = settings.burn_in + settings.samples;
  for (int iter = 0; iter < total; ++iter) {
    // -- f_i | λ, Ψ ---------------------------------------------------------
    double prec = 1.0 / fvar_prior;  // factor prior f ~ N(0, v)
    for (std::size_t r = 0; r < p; ++r) prec += lambda[r] * lambda[r] / psi[r];
    const double fvar = 1.0 / prec;
    const double fsd = std::sqrt(fvar);
    for (std::size_t i = 0; i < n; ++i) {
      double num = 0.0;
      for (std::size_t r = 0; r < p; ++r) num += lambda[r] * x(r, i) / psi[r];
      f[i] = rng.normal(num * fvar, fsd);
    }

    double sum_ff = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum_ff += f[i] * f[i];

    // -- Ψ_p | λ, F ----------------------------------------------------------
    for (std::size_t r = 0; r < p; ++r) {
      double ss = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double res = x(r, i) - lambda[r] * f[i];
        ss += res * res;
      }
      psi[r] = rng.inverse_gamma(settings.psi_shape + 0.5 * static_cast<double>(n),
                                 settings.psi_scale + 0.5 * ss);
      psi[r] = std::max(psi[r], 1e-12);
    }

    // -- λ_p | F, Ψ_p over the grid -------------------------------------------
    for (std::size_t r = 0; r < p; ++r) {
      double sum_xf = 0.0;
      for (std::size_t i = 0; i < n; ++i) sum_xf += x(r, i) * f[i];
      double mu = 0.0, inv_two_var = 0.0;
      if (sum_ff > 1e-12) {
        mu = sum_xf / sum_ff;
        inv_two_var = sum_ff / (2.0 * psi[r]);
      }
      double wmax = -1e300;
      for (std::size_t g = 0; g < grid.size(); ++g) {
        const double d = grid[g] - mu;
        const double lw = log_prior[g] - d * d * inv_two_var;
        weights[g] = lw;
        wmax = std::max(wmax, lw);
      }
      for (auto& w : weights) w = std::exp(w - wmax);
      const std::size_t g = rng.categorical(weights);
      last_index[r] = g;
      lambda[r] = grid[g];
    }

    if (iter >= settings.burn_in) {
      for (std::size_t r = 0; r < p; ++r) {
        lambda_acc[r] += lambda[r];
        psi_acc[r] += psi[r];
        ++visits[r][last_index[r]];
      }
      // Log joint (up to constants) as a mixing diagnostic.
      double ll = 0.0;
      for (std::size_t r = 0; r < p; ++r) {
        double ss = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double res = x(r, i) - lambda[r] * f[i];
          ss += res * res;
        }
        ll += -0.5 * ss / psi[r] -
              0.5 * static_cast<double>(n) * std::log(psi[r]);
        ll += log_prior[prior.nearest_index(lambda[r])];
      }
      loglik_acc += ll;
    }
  }

  GibbsResult result;
  result.lambda_mean.resize(p);
  result.lambda.resize(p);
  result.psi.resize(p);
  const double inv_s = 1.0 / static_cast<double>(settings.samples);
  for (std::size_t r = 0; r < p; ++r) {
    result.lambda_mean[r] = lambda_acc[r] * inv_s;
    std::size_t mode = 0;
    for (std::size_t g = 1; g < grid.size(); ++g)
      if (visits[r][g] > visits[r][mode]) mode = g;
    result.lambda[r] = grid[mode];
    result.psi[r] = psi_acc[r] * inv_s;
  }
  result.avg_log_likelihood = loglik_acc * inv_s;
  return result;
}

}  // namespace oclp
