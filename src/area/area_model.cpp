#include "area/area_model.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "mult/multiplier.hpp"

namespace oclp {

double synthesised_multiplier_les(int wl, int wl_x, std::uint64_t run_seed,
                                  MultArch arch) {
  OCLP_CHECK(wl >= 1 && wl_x >= 1);
  const auto base =
      static_cast<double>(make_multiplier_arch(arch, wl, wl_x).logic_elements());
  // Placement-dependent optimisation: packing/duplication decisions move
  // the count a few percent between runs, never below ~90% of nominal.
  Rng rng(hash_mix(run_seed, static_cast<std::uint64_t>(wl) << 8 | wl_x, 0xa12eaULL));
  const double factor = std::exp(rng.normal(0.0, 0.03));
  return std::max(1.0, std::round(base * factor));
}

std::vector<AreaSample> collect_area_samples(int wl_min, int wl_max, int wl_x,
                                             int runs, std::uint64_t seed,
                                             MultArch arch) {
  OCLP_CHECK(wl_min >= 1 && wl_min <= wl_max && runs >= 1);
  std::vector<AreaSample> samples;
  samples.reserve(static_cast<std::size_t>(wl_max - wl_min + 1) * runs);
  for (int wl = wl_min; wl <= wl_max; ++wl)
    for (int r = 0; r < runs; ++r)
      samples.push_back(AreaSample{
          wl, synthesised_multiplier_les(wl, wl_x, hash_mix(seed, r, wl), arch)});
  return samples;
}

AreaModel AreaModel::fit(const std::vector<AreaSample>& samples) {
  OCLP_CHECK(!samples.empty());
  std::map<int, RunningStats> acc;
  for (const auto& s : samples) acc[s.wordlength].add(s.logic_elements);
  AreaModel model;
  for (const auto& [wl, st] : acc) {
    Entry e;
    e.mean = st.mean();
    e.stddev = std::sqrt(st.sample_variance());
    e.count = static_cast<int>(st.count());
    model.table_[wl] = e;
  }
  return model;
}

double AreaModel::estimate(int wordlength) const {
  const auto it = table_.find(wordlength);
  OCLP_CHECK_MSG(it != table_.end(), "no area data for word-length " << wordlength);
  return it->second.mean;
}

double AreaModel::stddev(int wordlength) const {
  const auto it = table_.find(wordlength);
  OCLP_CHECK_MSG(it != table_.end(), "no area data for word-length " << wordlength);
  return it->second.stddev;
}

double AreaModel::column_estimate(int wordlength, int dims_p, int wl_x) const {
  OCLP_CHECK(dims_p >= 1);
  const double mults = dims_p * estimate(wordlength);
  // Accumulation: (P-1) adders over the product width plus carry headroom.
  const double adder_bits = wordlength + wl_x + std::ceil(std::log2(dims_p));
  const double adders = (dims_p - 1) * adder_bits;
  return mults + adders;
}

}  // namespace oclp
