#include "area/area_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "mult/multiplier.hpp"

namespace oclp {

namespace {

// Deterministic per-configuration seed component, so two configurations
// sharing a word-length still draw independent synthesis factors.
std::uint64_t config_seed(const MultConfig& config) {
  return hash_mix(static_cast<std::uint64_t>(config.wordlength),
                  static_cast<std::uint64_t>(config.arch),
                  static_cast<std::uint64_t>(config.pipeline_depth));
}

}  // namespace

double synthesised_multiplier_les(const MultConfig& config, int wl_x,
                                  std::uint64_t run_seed) {
  OCLP_CHECK(config.wordlength >= 1 && wl_x >= 1 && config.pipeline_depth >= 1);
  double base = 0.0;
  if (config.arch == MultArch::Ccm) {
    // Per-coefficient circuits: average a strided spread of constants.
    // Constant 0 is excluded — it folds to all-constant outputs and would
    // drag the budget below anything a real coefficient costs.
    const std::uint32_t num = 1u << config.wordlength;
    const std::uint32_t step = std::max(1u, num / 8);
    std::size_t n = 0;
    for (std::uint32_t c = 1; c < num; c += step) {
      base += static_cast<double>(
          make_ccm_multiplier(config, c, wl_x).logic_elements());
      ++n;
    }
    base /= static_cast<double>(n);
  } else {
    base = static_cast<double>(make_multiplier(config, wl_x).logic_elements());
  }
  // Placement-dependent optimisation: packing/duplication decisions move
  // the count a few percent between runs, never below ~90% of nominal.
  Rng rng(hash_mix(run_seed,
                   static_cast<std::uint64_t>(config.wordlength) << 8 | wl_x,
                   hash_mix(0xa12eaULL, static_cast<std::uint64_t>(config.arch),
                            static_cast<std::uint64_t>(config.pipeline_depth))));
  const double factor = std::exp(rng.normal(0.0, 0.03));
  return std::max(1.0, std::round(base * factor));
}

std::vector<AreaSample> collect_area_samples(
    const std::vector<MultConfig>& configs, int wl_x, int runs,
    std::uint64_t seed) {
  OCLP_CHECK(!configs.empty() && runs >= 1);
  std::vector<AreaSample> samples;
  samples.reserve(configs.size() * static_cast<std::size_t>(runs));
  for (const auto& config : configs)
    for (int r = 0; r < runs; ++r)
      samples.push_back(AreaSample{
          config, synthesised_multiplier_les(
                      config, wl_x, hash_mix(seed, r, config_seed(config)))});
  return samples;
}

AreaModel AreaModel::fit(const std::vector<AreaSample>& samples) {
  OCLP_CHECK(!samples.empty());
  std::map<MultConfig, RunningStats> acc;
  for (const auto& s : samples) acc[s.config].add(s.logic_elements);
  AreaModel model;
  for (const auto& [config, st] : acc) {
    Entry e;
    e.mean = st.mean();
    e.stddev = std::sqrt(st.sample_variance());
    e.count = static_cast<int>(st.count());
    model.table_[config] = e;
  }
  return model;
}

double AreaModel::estimate(const MultConfig& config) const {
  const auto it = table_.find(config);
  OCLP_CHECK_MSG(it != table_.end(), "no area data for " << config);
  return it->second.mean;
}

double AreaModel::stddev(const MultConfig& config) const {
  const auto it = table_.find(config);
  OCLP_CHECK_MSG(it != table_.end(), "no area data for " << config);
  return it->second.stddev;
}

double AreaModel::column_estimate(const MultConfig& config, int dims_p,
                                  int wl_x) const {
  OCLP_CHECK(dims_p >= 1);
  const double mults = dims_p * estimate(config);
  // Accumulation: (P-1) adders over the product width plus carry headroom.
  const double adder_bits =
      config.wordlength + wl_x + std::ceil(std::log2(dims_p));
  const double adders = (dims_p - 1) * adder_bits;
  return mults + adders;
}

}  // namespace oclp
