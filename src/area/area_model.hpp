// Area model of paper Section V-B2 / Figures 6 and 9.
//
// The framework must estimate the logic elements (LEs) of a candidate
// design without synthesising it. The paper extracts LE counts from the
// synthesis tool for every supported word-length over many placement and
// synthesis runs (the counts vary a little run-to-run because the
// optimiser's decisions depend on placement), then uses the per-word-length
// statistics during design-space exploration. With the multiplier
// architecture and pipeline depth promoted to search dimensions, the table
// is keyed by the full MultConfig: a Wallace tree and an array multiplier
// of the same word-length cost different LEs, and every pipeline register
// is an LE of its own.
//
// Here the "synthesis tool" ground truth is the multiplier netlist's LE
// count perturbed by a small lognormal synthesis-optimisation factor per
// run — the same spread visible in the paper's Figure 6 scatter.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/check.hpp"
#include "mult/multiplier.hpp"

namespace oclp {

/// One synthesis observation: a `config` multiplier cost `logic_elements`
/// LEs.
struct AreaSample {
  MultConfig config;
  double logic_elements = 0.0;
};

/// Synthesis ground truth: LE count of one placement/synthesis run of a
/// `config` × wl_x multiplier (deterministic in `run_seed`). For
/// MultArch::Ccm the circuit is per-coefficient, so the run averages a
/// deterministic spread of constants — the budget a column whose
/// coefficient is still being searched must reserve.
double synthesised_multiplier_les(const MultConfig& config, int wl_x,
                                  std::uint64_t run_seed);

/// Collect `runs` synthesis observations for every configuration in
/// `configs` (the Figure-6 data set, widened across architectures).
std::vector<AreaSample> collect_area_samples(
    const std::vector<MultConfig>& configs, int wl_x, int runs,
    std::uint64_t seed);

/// Per-configuration statistics fitted from observations. Estimation is a
/// table lookup — exact because the set of configurations is finite
/// (paper's own argument, extended from word-lengths to the full config
/// grid) — with a 95% confidence interval from the run-to-run spread.
class AreaModel {
 public:
  static AreaModel fit(const std::vector<AreaSample>& samples);

  bool covers(const MultConfig& config) const {
    return table_.count(config) != 0;
  }
  /// Expected LEs of one `config` multiplier.
  double estimate(const MultConfig& config) const;
  /// Run-to-run standard deviation at this configuration.
  double stddev(const MultConfig& config) const;
  /// Half-width of the 95% confidence interval for a single new run.
  double ci95(const MultConfig& config) const {
    return 1.96 * stddev(config);
  }

  /// LE estimate for one Linear Projection column: P multipliers plus the
  /// accumulation adders ((P-1) adders of the product width + headroom).
  double column_estimate(const MultConfig& config, int dims_p, int wl_x) const;

 private:
  struct Entry {
    double mean = 0.0;
    double stddev = 0.0;
    int count = 0;
  };
  std::map<MultConfig, Entry> table_;
};

}  // namespace oclp
