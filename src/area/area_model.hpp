// Area model of paper Section V-B2 / Figures 6 and 9.
//
// The framework must estimate the logic elements (LEs) of a candidate
// design without synthesising it. The paper extracts LE counts from the
// synthesis tool for every supported word-length over many placement and
// synthesis runs (the counts vary a little run-to-run because the
// optimiser's decisions depend on placement), then uses the per-word-length
// statistics during design-space exploration.
//
// Here the "synthesis tool" ground truth is the multiplier netlist's LE
// count perturbed by a small lognormal synthesis-optimisation factor per
// run — the same spread visible in the paper's Figure 6 scatter.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/check.hpp"
#include "mult/multiplier.hpp"

namespace oclp {

/// One synthesis observation: a wl-bit multiplier cost `logic_elements` LEs.
struct AreaSample {
  int wordlength = 0;
  double logic_elements = 0.0;
};

/// Synthesis ground truth: LE count of one placement/synthesis run of a
/// wl × wl_x multiplier (deterministic in `run_seed`).
double synthesised_multiplier_les(int wl, int wl_x, std::uint64_t run_seed,
                                  MultArch arch = MultArch::Array);

/// Collect `runs` synthesis observations for every word-length in
/// [wl_min, wl_max] (the Figure-6 data set).
std::vector<AreaSample> collect_area_samples(int wl_min, int wl_max, int wl_x,
                                             int runs, std::uint64_t seed,
                                             MultArch arch = MultArch::Array);

/// Per-word-length statistics fitted from observations. Estimation is a
/// table lookup — exact because the set of word-lengths is finite (paper's
/// own argument) — with a 95% confidence interval from the run-to-run
/// spread.
class AreaModel {
 public:
  static AreaModel fit(const std::vector<AreaSample>& samples);

  bool covers(int wordlength) const { return table_.count(wordlength) != 0; }
  /// Expected LEs of one wl-bit multiplier.
  double estimate(int wordlength) const;
  /// Run-to-run standard deviation at this word-length.
  double stddev(int wordlength) const;
  /// Half-width of the 95% confidence interval for a single new run.
  double ci95(int wordlength) const { return 1.96 * stddev(wordlength); }

  /// LE estimate for one Linear Projection column: P multipliers plus the
  /// accumulation adders ((P-1) adders of the product width + headroom).
  double column_estimate(int wordlength, int dims_p, int wl_x) const;

 private:
  struct Entry {
    double mean = 0.0;
    double stddev = 0.0;
    int count = 0;
  };
  std::map<int, Entry> table_;
};

}  // namespace oclp
