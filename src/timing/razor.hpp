// Razor-style time-redundant error recovery (Ernst et al., MICRO'03) —
// the generic alternative the paper's Section II discusses: every output
// register gets a shadow latch on a delayed clock; a main/shadow mismatch
// flags a timing error, and the pipeline recovers from the shadow value at
// the cost of extra cycles. Razor "hides" timing violations from the
// application but not from the schedule — which is exactly the paper's
// criticism: the designer still pays the recovery latency, while the
// context-aware optimisation framework avoids the errors altogether.
#pragma once

#include <cstdint>
#include <vector>

#include "timing/overclock_sim.hpp"

namespace oclp {

struct RazorConfig {
  /// Extra settling time the shadow latch gets beyond the main register.
  double shadow_margin_ns = 1.0;
  /// Pipeline cycles lost per detected error (flush + replay).
  int recovery_penalty_cycles = 1;
};

/// One combinational cone protected by Razor registers.
class RazorSim {
 public:
  RazorSim(Netlist nl, std::vector<double> cell_delay_ns, RazorConfig cfg);

  void reset(const std::vector<std::uint8_t>& inputs);

  struct StepResult {
    std::vector<std::uint8_t> outputs;  ///< after recovery, if any
    bool error_detected = false;        ///< main/shadow mismatch
    bool undetected_error = false;      ///< shadow itself was stale
  };
  /// One clock edge at `period_ns`; on a detected error the recovered
  /// (shadow) value is returned and the recovery penalty is accounted.
  StepResult step(const std::vector<std::uint8_t>& inputs, double period_ns);

  // --- schedule accounting ---------------------------------------------------
  std::size_t samples_processed() const { return samples_; }
  std::size_t cycles_consumed() const { return cycles_; }
  std::size_t errors_detected() const { return detected_; }
  std::size_t errors_undetected() const { return undetected_; }
  /// Samples per cycle (1.0 when no recovery ever triggered).
  double effective_throughput() const;

 private:
  OverclockSim sim_;
  RazorConfig cfg_;
  std::vector<std::uint8_t> shadow_, settled_;  ///< step() scratch, reused
  std::size_t samples_ = 0, cycles_ = 0, detected_ = 0, undetected_ = 0;
};

}  // namespace oclp
