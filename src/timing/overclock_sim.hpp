// Over-clocked register-to-register timing simulation.
//
// Model (the standard one in the FPGA over-clocking literature, e.g. Shi,
// Boland & Constantinides, FCCM'13): the combinational cone between input
// and output registers is driven with a new input vector at each clock
// edge; the output register samples after the (possibly jittered) period T.
// Every net carries a settle time — the moment its value reaches its final
// (functional) value for the new inputs:
//
//   settle(net) = 0                                   if value unchanged
//               = cell_delay + max settle(changed fanins)   otherwise
//
// An output bit whose settle time exceeds T is captured *stale*: the
// register keeps the previous cycle's settled value for that bit. This
// reproduces the paper's observations: errors are cumulative in frequency,
// MSbs (longest chains) fail first, and multiplicands with few '1' bits
// (fewer toggling partial products) fail less.
//
// Settle times are *frequency-independent*: inputs are registered (they
// switch exactly at the launch edge) and the previous frame is the fully
// settled value of the previous inputs, so the period only selects which
// bits are captured fresh vs stale. This is what makes single-pass
// multi-frequency characterisation possible — settle the cone once, then
// threshold-sample it at every period of interest (see capture()).
//
// Approximations (documented deviations from event-accurate simulation):
//  * hazards/glitches are ignored — a net that ends at its old value is
//    treated as never having moved;
//  * the cone is assumed fully settled by the *end* of each cycle, so the
//    "previous" frame is always the functional value of the previous
//    inputs. Far above the error onset this is optimistic, which matches
//    the paper's remark that beyond fC results are simply not meaningful.
//
// Pipelined netlists (cones containing PipeReg cells) run a two-track
// variant of the same model. Each net carries a stage-local settle time L
// (as above, restarting at each register's clk-to-q delay) and a carried
// maximum M of the local settle times of all earlier stages along the
// toggled paths feeding it:
//
//   normal cell:  L_out = delay + max L_in (toggled),  M_out = max M_in
//   PipeReg:      L_out = delay(reg),  M_out = max(M_in, L_in) (toggled)
//
// The recorded per-output settle time is max(L, M): an output bit is
// captured fresh at period T iff *every* stage on its toggled path settled
// within T — still frequency-independent, so all capture machinery works
// unchanged. Two further approximations follow from keeping registers
// function-transparent: pipeline latency is invisible to the steady-state
// stream (each frame's settled outputs correspond to that frame's inputs),
// and the staleness of an interior stage for this frame's data is charged
// to this frame's output rather than surfacing `depth` cycles later —
// acceptable for error-rate statistics over long stationary streams, the
// only way the characterisation sweeps consume this simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/compiled.hpp"
#include "netlist/netlist.hpp"
#include "timing/lane_kernels.hpp"

namespace oclp {

/// Which settle kernel an OverclockSim lowers onto (see PsGrid).
enum class TimingMode : std::uint8_t {
  /// Integer-picosecond kernel when every delay is grid-exact and the
  /// worst-case path fits uint32 ticks; double kernel otherwise. The
  /// default: calibration-produced delays always take the integer path,
  /// arbitrary (test) delays still work.
  Auto,
  /// Require the integer kernel: construction throws, naming the cell,
  /// if any delay is off-grid or the path sum overflows. Production
  /// datapaths use this so a mis-calibrated delay is an error, not a
  /// silent fallback.
  IntegerExact,
  /// Force the retained double kernel (the golden reference).
  DoubleRef,
};

class OverclockSim {
 public:
  /// Mutable per-stream simulation state. The netlist and delays of an
  /// OverclockSim are immutable after construction, so a single sim can be
  /// shared by many threads as long as each drives its own State through
  /// the const reset()/advance()/capture() API below. Buffers are reused
  /// across steps (and across streams of the same circuit): steady-state
  /// stepping performs no heap allocation.
  struct State {
    std::vector<std::uint8_t> prev;  ///< settled values of the previous frame
    std::vector<std::uint8_t> next;  ///< functional values of the new frame
    std::vector<double> settle;      ///< per-net stage-local settle time
    /// Carried max of earlier stages' local settle times (two-track model;
    /// all-zero and unread for register-free netlists).
    std::vector<double> carried;
    // Per-output snapshot of the most recent advance (for capture()).
    std::vector<double> out_settle;
    std::vector<std::uint8_t> out_prev, out_next;
    double last_output_settle_ns = 0.0;
    bool initialised = false;
    bool stepped = false;
  };

  /// Takes the netlist and the per-cell delays of a specific placement on a
  /// specific device (see fabric::annotate_timing). `mode` selects the
  /// settle kernel (integer picosecond vs double reference); delays are
  /// quantised here, at lowering time.
  OverclockSim(Netlist nl, std::vector<double> cell_delay_ns,
               TimingMode mode = TimingMode::Auto);

  const Netlist& netlist() const { return nl_; }
  /// The lowered form every evaluation runs on. Timing-free consumers
  /// (ground truth, reference values) may run eval64 on it directly.
  const CompiledNetlist& compiled() const { return cnl_; }

  /// True iff run_stream propagates settle times as uint32 PsGrid ticks.
  /// advance()/capture() always run the double model — with grid-exact
  /// delays their doubles are exactly tick·2^-10, so the paths agree
  /// bitwise either way.
  bool integer_kernel() const { return !delay_ticks_.empty(); }

  /// Worst-case settle path in ticks (integer kernel only; 0 otherwise).
  std::uint64_t critical_path_ticks() const { return critical_path_ticks_; }

  /// The dense row fills (and dense/sparse crossover) run_stream uses —
  /// resolved per device at construction (lane::dense_kernels()).
  const lane::DenseKernels& lane_kernels() const { return dense_; }

  /// Override the kernel selection — the hook the property tests and
  /// benches use to force a specific ISA clone or pin the crossover at an
  /// extreme (cutoff 0: every toggled cell dense; cutoff 65: never dense).
  /// Results are identical for any choice; only the speed moves.
  void set_lane_kernels(const lane::DenseKernels& k) { dense_ = k; }

  // --- Shared-circuit API (thread-safe: only touches the given State) ---

  /// Settle every net of `st` for `inputs` (a register flush).
  void reset(State& st, const std::vector<std::uint8_t>& inputs) const;

  /// Clock edge without sampling: apply `inputs`, compute every net's
  /// settle time and leave the per-output snapshot in `st`. Sampling at
  /// any number of periods is then a capture() per period — the basis of
  /// single-pass multi-frequency characterisation.
  void advance(State& st, const std::vector<std::uint8_t>& inputs) const;

  /// Sample the most recent advance of `st` at `period_ns` into `out`
  /// (resized to the output count; no allocation once warm).
  void capture(const State& st, double period_ns,
               std::vector<std::uint8_t>& out) const;

  /// Per-edge output snapshots of a whole input stream, as produced by
  /// run_stream(): for each sample, the settled (fully-functional) output
  /// word plus the (bit, settle-time) pairs of the outputs that toggled at
  /// that edge. Sampling the stream at any period is then
  ///
  ///   obs = settled[s];
  ///   for t in [toggle_begin[s], toggle_begin[s+1]):
  ///     if (toggle_settle[t] > period) obs ^= 1 << toggle_bit[t];
  ///
  /// — bitwise identical to capture() on every bit, but O(toggled) per
  /// period. Buffers (including the internal scratch) are reused across
  /// calls: steady-state streaming performs no heap allocation.
  struct SweepStream {
    std::vector<std::uint64_t> settled;     ///< [n] settled output words
    std::vector<std::uint32_t> toggle_begin;  ///< [n+1] offsets into the pair arrays
    std::vector<std::uint8_t> toggle_bit;
    /// Settle times in ns — filled by the double (reference) kernel only;
    /// empty after an integer-kernel run (see has_ticks).
    std::vector<double> toggle_settle;
    /// Settle times as PsGrid ticks — filled by the integer kernel only.
    /// Exactly one of the two value arrays is populated per run; ns values
    /// of an integer stream are recovered exactly via toggle_settle_ns()
    /// (the dequantisation is a power-of-two scale — see PsGrid).
    std::vector<std::uint32_t> toggle_settle_ticks;
    /// True iff the last run_stream filled toggle_settle_ticks (integer
    /// kernel); false after a reference run. capture_word dispatches on it.
    bool has_ticks = false;

    /// Settle time of pair `t` in ns, whichever kernel produced it.
    double toggle_settle_ns(std::size_t t) const {
      return has_ticks ? PsGrid::to_ns(toggle_settle_ticks[t])
                       : toggle_settle[t];
    }

    /// Output word of sample `s` captured at `period_ns` — the sampling
    /// rule above as a helper. Each sample may use its own period (the
    /// batched projection path feeds every sample its jittered period),
    /// because settle times are frequency-independent: the period only
    /// selects which toggled bits are captured fresh vs stale. Bitwise
    /// identical to capture() on every bit, O(toggled at this edge).
    /// Integer streams dispatch to the tick compare through the exact
    /// threshold conversion — same bits, no doubles on the hot path.
    std::uint64_t capture_word(std::size_t s, double period_ns) const {
      if (has_ticks)
        return capture_word_ticks(s, PsGrid::period_ticks(period_ns));
      std::uint64_t w = settled[s];
      for (std::uint32_t t = toggle_begin[s]; t < toggle_begin[s + 1]; ++t)
        w ^= static_cast<std::uint64_t>(toggle_settle[t] > period_ns)
             << toggle_bit[t];
      return w;
    }

    /// Integer capture: branch-poor unsigned compares against a period
    /// pre-converted through PsGrid::period_ticks. Valid after an
    /// integer-kernel run_stream; bitwise identical to capture_word at
    /// the same period (the threshold conversion is exact — see PsGrid).
    std::uint64_t capture_word_ticks(std::size_t s,
                                     std::uint64_t period_ticks) const {
      std::uint64_t w = settled[s];
      for (std::uint32_t t = toggle_begin[s]; t < toggle_begin[s + 1]; ++t)
        w ^= static_cast<std::uint64_t>(toggle_settle_ticks[t] > period_ticks)
             << toggle_bit[t];
      return w;
    }

    // Internal scratch of run_stream (value/toggle lane words, per-net
    // settle lane rows — double or tick flavour depending on the kernel —
    // carried-track rows for pipelined netlists, and inter-chunk carry
    // bits). Not part of the result.
    std::vector<std::uint64_t> words, tog;
    std::vector<double> lanes, lanes_c;
    std::vector<std::uint32_t> lanes_ticks, lanes_c_ticks;
    std::vector<std::uint8_t> carry;
  };

  /// Batched advance: streams `n` input vectors (row-major, num_inputs()
  /// bytes per row) from the settled state in `st`, filling `out` with the
  /// per-edge snapshot of every sample. Functional values are evaluated 64
  /// samples at a time through the compiled netlist's bit-parallel eval64;
  /// settle times are then propagated only through the cells that actually
  /// toggled at each edge (typically a small fraction). On the integer
  /// kernel (integer_kernel()) the propagation is uint32 max-plus over
  /// PsGrid tick rows; on the double kernel it is the same masked max/add
  /// arithmetic as advance(). Either way the recorded settle times are
  /// bitwise identical to advance()'s doubles (exact grid dequantisation —
  /// see PsGrid). Requires num_outputs() <= 64 and a prior
  /// reset() of `st`; on return `st` holds the same observable state as
  /// `n` advance() calls (per-net settle times of untoggled nets excepted,
  /// which later advance()/capture() calls never read).
  void run_stream(State& st, const std::uint8_t* inputs, std::size_t n,
                  SweepStream& out) const;

  /// The retained double-settle kernel, runnable regardless of mode: the
  /// golden reference the integer kernel is tested (and benched) against.
  /// Identical contract to run_stream; never fills toggle_settle_ticks.
  void run_stream_ref(State& st, const std::uint8_t* inputs, std::size_t n,
                      SweepStream& out) const;

  // --- Convenience single-stream API over an internal State ---

  /// Settle every net for `inputs` (a register flush); clears history.
  void reset(const std::vector<std::uint8_t>& inputs) { reset(state_, inputs); }

  /// Batched advance over the internal State: the stream analogue of n
  /// step() calls minus the captures. Interoperates with step()/
  /// resample_last() — on return the internal state is what n advance()
  /// calls would have left (see the shared-circuit run_stream above).
  void run_stream(const std::uint8_t* inputs, std::size_t n, SweepStream& out) {
    run_stream(state_, inputs, n, out);
  }

  /// Clock edge: apply `inputs`, sample the output register after
  /// `period_ns`. Returns the captured output bits (possibly stale). The
  /// reference stays valid until the next step()/reset(). Requires a prior
  /// reset() (the first vector of a stream).
  const std::vector<std::uint8_t>& step(const std::vector<std::uint8_t>& inputs,
                                        double period_ns);

  /// Settle time of the slowest output for the most recent step (ns).
  double last_output_settle_ns() const { return state_.last_output_settle_ns; }

  /// Re-sample the most recent step's outputs at a different period —
  /// what a register on a delayed clock (e.g. a Razor shadow latch) would
  /// have captured at the same launch edge. Valid after step(). The
  /// out-param overload reuses the caller's buffer (no allocation once
  /// warm) — prefer it in per-step hot paths.
  void resample_last(double period_ns, std::vector<std::uint8_t>& out) const;
  std::vector<std::uint8_t> resample_last(double period_ns) const;

  /// Fully-settled output values of the most recent step (ground truth).
  /// Same buffer-reuse convention as resample_last.
  void last_settled_outputs(std::vector<std::uint8_t>& out) const;
  std::vector<std::uint8_t> last_settled_outputs() const;

 private:
  template <bool kIntKernel, bool kRegs>
  void run_stream_impl(State& st, const std::uint8_t* inputs, std::size_t n,
                       SweepStream& out) const;
  void advance_regs(State& st) const;

  Netlist nl_;
  CompiledNetlist cnl_;
  std::vector<double> delay_;
  std::vector<std::uint32_t> delay_ticks_;  ///< empty on the double kernel
  std::uint64_t critical_path_ticks_ = 0;
  lane::DenseKernels dense_ = lane::dense_kernels();
  State state_;                      // backs the convenience API
  std::vector<std::uint8_t> captured_;  // reusable step() output buffer
};

}  // namespace oclp
