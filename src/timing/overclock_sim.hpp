// Over-clocked register-to-register timing simulation.
//
// Model (the standard one in the FPGA over-clocking literature, e.g. Shi,
// Boland & Constantinides, FCCM'13): the combinational cone between input
// and output registers is driven with a new input vector at each clock
// edge; the output register samples after the (possibly jittered) period T.
// Every net carries a settle time — the moment its value reaches its final
// (functional) value for the new inputs:
//
//   settle(net) = 0                                   if value unchanged
//               = cell_delay + max settle(changed fanins)   otherwise
//
// An output bit whose settle time exceeds T is captured *stale*: the
// register keeps the previous cycle's settled value for that bit. This
// reproduces the paper's observations: errors are cumulative in frequency,
// MSbs (longest chains) fail first, and multiplicands with few '1' bits
// (fewer toggling partial products) fail less.
//
// Approximations (documented deviations from event-accurate simulation):
//  * hazards/glitches are ignored — a net that ends at its old value is
//    treated as never having moved;
//  * the cone is assumed fully settled by the *end* of each cycle, so the
//    "previous" frame is always the functional value of the previous
//    inputs. Far above the error onset this is optimistic, which matches
//    the paper's remark that beyond fC results are simply not meaningful.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace oclp {

class OverclockSim {
 public:
  /// Takes the netlist and the per-cell delays of a specific placement on a
  /// specific device (see fabric::annotate_timing).
  OverclockSim(Netlist nl, std::vector<double> cell_delay_ns);

  const Netlist& netlist() const { return nl_; }

  /// Settle every net for `inputs` (a register flush); clears history.
  void reset(const std::vector<std::uint8_t>& inputs);

  /// Clock edge: apply `inputs`, sample the output register after
  /// `period_ns`. Returns the captured output bits (possibly stale).
  /// Requires a prior reset() (the first vector of a stream).
  std::vector<std::uint8_t> step(const std::vector<std::uint8_t>& inputs,
                                 double period_ns);

  /// Settle time of the slowest output for the most recent step (ns).
  double last_output_settle_ns() const { return last_output_settle_ns_; }

  /// Re-sample the most recent step's outputs at a different period —
  /// what a register on a delayed clock (e.g. a Razor shadow latch) would
  /// have captured at the same launch edge. Valid after step().
  std::vector<std::uint8_t> resample_last(double period_ns) const;

  /// Fully-settled output values of the most recent step (ground truth).
  std::vector<std::uint8_t> last_settled_outputs() const;

 private:
  Netlist nl_;
  std::vector<double> delay_;
  std::vector<std::uint8_t> prev_;  // settled values of the previous frame
  std::vector<std::uint8_t> next_;  // functional values of the new frame
  std::vector<double> settle_;
  // Per-output snapshot of the most recent step (for resample_last()).
  std::vector<double> out_settle_;
  std::vector<std::uint8_t> out_prev_, out_next_;
  double last_output_settle_ns_ = 0.0;
  bool initialised_ = false;
  bool stepped_ = false;
};

}  // namespace oclp
