#include "timing/razor.hpp"

namespace oclp {

RazorSim::RazorSim(Netlist nl, std::vector<double> cell_delay_ns, RazorConfig cfg)
    : sim_(std::move(nl), std::move(cell_delay_ns)), cfg_(cfg) {
  OCLP_CHECK(cfg.shadow_margin_ns > 0.0 && cfg.recovery_penalty_cycles >= 0);
}

void RazorSim::reset(const std::vector<std::uint8_t>& inputs) {
  sim_.reset(inputs);
}

RazorSim::StepResult RazorSim::step(const std::vector<std::uint8_t>& inputs,
                                    double period_ns) {
  StepResult result;
  result.outputs = sim_.step(inputs, period_ns);
  sim_.resample_last(period_ns + cfg_.shadow_margin_ns, shadow_);

  ++samples_;
  ++cycles_;
  if (shadow_ != result.outputs) {
    result.error_detected = true;
    ++detected_;
    cycles_ += static_cast<std::size_t>(cfg_.recovery_penalty_cycles);
    result.outputs = shadow_;  // recover from the shadow latch
  }
  // If even the shadow missed the settle time, the error escapes silently —
  // the designer must budget the margin so this cannot happen in the field.
  sim_.last_settled_outputs(settled_);
  if (shadow_ != settled_) {
    result.undetected_error = true;
    ++undetected_;
  }
  return result;
}

double RazorSim::effective_throughput() const {
  return cycles_ == 0
             ? 1.0
             : static_cast<double>(samples_) / static_cast<double>(cycles_);
}

}  // namespace oclp
