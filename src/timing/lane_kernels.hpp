// Explicit-SIMD dense row kernels of the integer settle propagation.
//
// run_stream keeps per-net settle times as contiguous 64-lane uint32 rows
// (lane l = sample c0+l of the current chunk). A cell whose toggle word is
// dense hands its whole row to one of the fills below: every lane is
// computed unconditionally as masked max-plus (untoggled lanes produce
// garbage that the stale-slot invariant guarantees is never read), so the
// kernel carries no data-dependent branches and maps one-to-one onto
// vector mask/max/add instructions.
//
// Dispatch is target_clones-style but by hand: one scalar fill that any
// compiler auto-vectorises, plus AVX2 (8 lanes per op, compare-derived
// lane masks) and AVX-512F (16 lanes per op, the toggle word's 16-bit
// slices used directly as __mmask16) clones compiled with per-function
// target attributes, selected once at runtime via __builtin_cpu_supports
// and cached. Manual dispatch instead of the ifunc resolver keeps the
// clones usable under sanitizers and lets each ISA carry its own
// dense/sparse crossover: the wider the vector, the fewer toggled lanes a
// dense fill needs before it beats the per-lane sparse walk.
//
// Two variants per ISA: the single-track fill of register-free cones, and
// the two-track (local + carried) fill of pipelined cones, whose register
// flag is per-cell and therefore hoists out of the lane loop entirely.
#pragma once

#include <cstdint>

namespace oclp::lane {

/// Single-track dense fill: row[l] = max(r0[l]&m0, r1[l]&m1, r2[l]&m2) + d
/// for all 64 lanes, where mk is all-ones iff bit l of tk is set.
using DenseFillFn = void (*)(std::uint32_t* row, const std::uint32_t* r0,
                             const std::uint32_t* r1, const std::uint32_t* r2,
                             std::uint64_t t0, std::uint64_t t1,
                             std::uint64_t t2, std::uint32_t d);

/// Two-track dense fill (pipelined cones). With launch/carry the masked
/// maxes over the local (r*) and carried (cr*) fanin rows:
///   normal cell:  row[l] = launch + d,            crow[l] = carry
///   register:     row[l] = d,                      crow[l] = max(carry, launch)
using DenseFill2Fn = void (*)(std::uint32_t* row, std::uint32_t* crow,
                              const std::uint32_t* r0, const std::uint32_t* r1,
                              const std::uint32_t* r2, const std::uint32_t* cr0,
                              const std::uint32_t* cr1, const std::uint32_t* cr2,
                              std::uint64_t t0, std::uint64_t t1,
                              std::uint64_t t2, std::uint32_t d, bool is_reg);

/// The fills the running device resolved to, plus the sparsity-adaptive
/// crossover: a cell's toggle-word popcount at or above `dense_cutoff`
/// selects the dense fill, below it the sparse per-lane walk.
struct DenseKernels {
  DenseFillFn fill;
  DenseFill2Fn fill2;
  int dense_cutoff;
  const char* isa;  ///< "avx512f", "avx2", or "scalar" (for logging/tests)
};

/// The per-device kernel selection, probed once and cached (thread-safe).
const DenseKernels& dense_kernels();

/// Every kernel variant the build carries, scalar first — the property
/// tests drive each one explicitly regardless of what dispatch picked.
/// Returns the number of variants written to `out` (at most 3).
int all_dense_kernels(DenseKernels out[3]);

}  // namespace oclp::lane
