#include "timing/lane_kernels.hpp"

#include <algorithm>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define OCLP_LANE_X86_DISPATCH 1
#include <immintrin.h>
#else
#define OCLP_LANE_X86_DISPATCH 0
#endif

namespace oclp::lane {

namespace {

// --- Scalar clones ---------------------------------------------------------
//
// The toggle words are split into 32-bit halves so the per-lane bit
// extraction stays a 32-bit variable shift (vpsrlvd when the compiler
// auto-vectorises this on AVX2 hardware builds).

void fill_scalar(std::uint32_t* row, const std::uint32_t* r0,
                 const std::uint32_t* r1, const std::uint32_t* r2,
                 std::uint64_t t0, std::uint64_t t1, std::uint64_t t2,
                 std::uint32_t d) {
  for (int h = 0; h < 2; ++h) {
    const auto s0 = static_cast<std::uint32_t>(t0 >> (32 * h));
    const auto s1 = static_cast<std::uint32_t>(t1 >> (32 * h));
    const auto s2 = static_cast<std::uint32_t>(t2 >> (32 * h));
    const std::uint32_t* q0 = r0 + 32 * h;
    const std::uint32_t* q1 = r1 + 32 * h;
    const std::uint32_t* q2 = r2 + 32 * h;
    std::uint32_t* qrow = row + 32 * h;
    for (std::size_t l = 0; l < 32; ++l) {
      const std::uint32_t m0 = 0 - ((s0 >> l) & 1u);
      const std::uint32_t m1 = 0 - ((s1 >> l) & 1u);
      const std::uint32_t m2 = 0 - ((s2 >> l) & 1u);
      std::uint32_t launch = q0[l] & m0;
      launch = std::max(launch, q1[l] & m1);
      launch = std::max(launch, q2[l] & m2);
      qrow[l] = launch + d;
    }
  }
}

void fill2_scalar(std::uint32_t* row, std::uint32_t* crow,
                  const std::uint32_t* r0, const std::uint32_t* r1,
                  const std::uint32_t* r2, const std::uint32_t* cr0,
                  const std::uint32_t* cr1, const std::uint32_t* cr2,
                  std::uint64_t t0, std::uint64_t t1, std::uint64_t t2,
                  std::uint32_t d, bool is_reg) {
  for (int h = 0; h < 2; ++h) {
    const auto s0 = static_cast<std::uint32_t>(t0 >> (32 * h));
    const auto s1 = static_cast<std::uint32_t>(t1 >> (32 * h));
    const auto s2 = static_cast<std::uint32_t>(t2 >> (32 * h));
    const std::uint32_t* q0 = r0 + 32 * h;
    const std::uint32_t* q1 = r1 + 32 * h;
    const std::uint32_t* q2 = r2 + 32 * h;
    const std::uint32_t* p0 = cr0 + 32 * h;
    const std::uint32_t* p1 = cr1 + 32 * h;
    const std::uint32_t* p2 = cr2 + 32 * h;
    std::uint32_t* qrow = row + 32 * h;
    std::uint32_t* qcrow = crow + 32 * h;
    if (is_reg) {
      for (std::size_t l = 0; l < 32; ++l) {
        const std::uint32_t m0 = 0 - ((s0 >> l) & 1u);
        const std::uint32_t m1 = 0 - ((s1 >> l) & 1u);
        const std::uint32_t m2 = 0 - ((s2 >> l) & 1u);
        std::uint32_t launch = q0[l] & m0;
        launch = std::max(launch, q1[l] & m1);
        launch = std::max(launch, q2[l] & m2);
        std::uint32_t carry = p0[l] & m0;
        carry = std::max(carry, p1[l] & m1);
        carry = std::max(carry, p2[l] & m2);
        qcrow[l] = std::max(carry, launch);
        qrow[l] = d;
      }
    } else {
      for (std::size_t l = 0; l < 32; ++l) {
        const std::uint32_t m0 = 0 - ((s0 >> l) & 1u);
        const std::uint32_t m1 = 0 - ((s1 >> l) & 1u);
        const std::uint32_t m2 = 0 - ((s2 >> l) & 1u);
        std::uint32_t launch = q0[l] & m0;
        launch = std::max(launch, q1[l] & m1);
        launch = std::max(launch, q2[l] & m2);
        std::uint32_t carry = p0[l] & m0;
        carry = std::max(carry, p1[l] & m1);
        carry = std::max(carry, p2[l] & m2);
        qrow[l] = launch + d;
        qcrow[l] = carry;
      }
    }
  }
}

#if OCLP_LANE_X86_DISPATCH

// --- AVX2 clones (8 lanes per op) ------------------------------------------
//
// The lane masks come from a broadcast-and-compare against per-lane bit
// constants: all-ones where the toggle bit is set, exactly the 0-((s>>l)&1)
// trick widened to a vector.

__attribute__((target("avx2"))) inline __m256i avx2_masked_row(
    const std::uint32_t* q, std::uint32_t slice, __m256i bits) {
  const __m256i m =
      _mm256_cmpeq_epi32(_mm256_and_si256(_mm256_set1_epi32(
                             static_cast<int>(slice)), bits), bits);
  return _mm256_and_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q)), m);
}

__attribute__((target("avx2")))
void fill_avx2(std::uint32_t* row, const std::uint32_t* r0,
               const std::uint32_t* r1, const std::uint32_t* r2,
               std::uint64_t t0, std::uint64_t t1, std::uint64_t t2,
               std::uint32_t d) {
  const __m256i vd = _mm256_set1_epi32(static_cast<int>(d));
  const __m256i bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  for (int g = 0; g < 8; ++g) {
    const auto b0 = static_cast<std::uint32_t>((t0 >> (8 * g)) & 0xffu);
    const auto b1 = static_cast<std::uint32_t>((t1 >> (8 * g)) & 0xffu);
    const auto b2 = static_cast<std::uint32_t>((t2 >> (8 * g)) & 0xffu);
    __m256i launch = avx2_masked_row(r0 + 8 * g, b0, bits);
    launch = _mm256_max_epu32(launch, avx2_masked_row(r1 + 8 * g, b1, bits));
    launch = _mm256_max_epu32(launch, avx2_masked_row(r2 + 8 * g, b2, bits));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + 8 * g),
                        _mm256_add_epi32(launch, vd));
  }
}

__attribute__((target("avx2")))
void fill2_avx2(std::uint32_t* row, std::uint32_t* crow,
                const std::uint32_t* r0, const std::uint32_t* r1,
                const std::uint32_t* r2, const std::uint32_t* cr0,
                const std::uint32_t* cr1, const std::uint32_t* cr2,
                std::uint64_t t0, std::uint64_t t1, std::uint64_t t2,
                std::uint32_t d, bool is_reg) {
  const __m256i vd = _mm256_set1_epi32(static_cast<int>(d));
  const __m256i bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  for (int g = 0; g < 8; ++g) {
    const auto b0 = static_cast<std::uint32_t>((t0 >> (8 * g)) & 0xffu);
    const auto b1 = static_cast<std::uint32_t>((t1 >> (8 * g)) & 0xffu);
    const auto b2 = static_cast<std::uint32_t>((t2 >> (8 * g)) & 0xffu);
    __m256i launch = avx2_masked_row(r0 + 8 * g, b0, bits);
    launch = _mm256_max_epu32(launch, avx2_masked_row(r1 + 8 * g, b1, bits));
    launch = _mm256_max_epu32(launch, avx2_masked_row(r2 + 8 * g, b2, bits));
    __m256i carry = avx2_masked_row(cr0 + 8 * g, b0, bits);
    carry = _mm256_max_epu32(carry, avx2_masked_row(cr1 + 8 * g, b1, bits));
    carry = _mm256_max_epu32(carry, avx2_masked_row(cr2 + 8 * g, b2, bits));
    if (is_reg) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + 8 * g),
                          _mm256_max_epu32(carry, launch));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + 8 * g), vd);
    } else {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + 8 * g),
                          _mm256_add_epi32(launch, vd));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + 8 * g), carry);
    }
  }
}

// --- AVX-512F clones (16 lanes per op) --------------------------------------
//
// No mask materialisation at all: each 16-bit slice of the toggle word *is*
// the __mmask16 of a zero-masked row load, so "fanin contributes only where
// it toggled" costs nothing beyond the load itself. Rows are full 64-lane
// arrays, so even the masked-off lanes are in-bounds.
//
// gcc 12 expands every AVX-512 intrinsic through _mm512_undefined_epi32(),
// which trips -Wuninitialized from inside the vendor header (gcc bug
// 105593) — silence the false positive for these two functions only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

__attribute__((target("avx512f")))
void fill_avx512(std::uint32_t* row, const std::uint32_t* r0,
                 const std::uint32_t* r1, const std::uint32_t* r2,
                 std::uint64_t t0, std::uint64_t t1, std::uint64_t t2,
                 std::uint32_t d) {
  const __m512i vd = _mm512_set1_epi32(static_cast<int>(d));
  const __m512i vz = _mm512_setzero_si512();
  for (int g = 0; g < 4; ++g) {
    const auto k0 = static_cast<__mmask16>(t0 >> (16 * g));
    const auto k1 = static_cast<__mmask16>(t1 >> (16 * g));
    const auto k2 = static_cast<__mmask16>(t2 >> (16 * g));
    __m512i launch = _mm512_mask_loadu_epi32(vz, k0, r0 + 16 * g);
    launch = _mm512_max_epu32(launch,
                              _mm512_mask_loadu_epi32(vz, k1, r1 + 16 * g));
    launch = _mm512_max_epu32(launch,
                              _mm512_mask_loadu_epi32(vz, k2, r2 + 16 * g));
    _mm512_storeu_si512(row + 16 * g, _mm512_add_epi32(launch, vd));
  }
}

__attribute__((target("avx512f")))
void fill2_avx512(std::uint32_t* row, std::uint32_t* crow,
                  const std::uint32_t* r0, const std::uint32_t* r1,
                  const std::uint32_t* r2, const std::uint32_t* cr0,
                  const std::uint32_t* cr1, const std::uint32_t* cr2,
                  std::uint64_t t0, std::uint64_t t1, std::uint64_t t2,
                  std::uint32_t d, bool is_reg) {
  const __m512i vd = _mm512_set1_epi32(static_cast<int>(d));
  const __m512i vz = _mm512_setzero_si512();
  for (int g = 0; g < 4; ++g) {
    const auto k0 = static_cast<__mmask16>(t0 >> (16 * g));
    const auto k1 = static_cast<__mmask16>(t1 >> (16 * g));
    const auto k2 = static_cast<__mmask16>(t2 >> (16 * g));
    __m512i launch = _mm512_mask_loadu_epi32(vz, k0, r0 + 16 * g);
    launch = _mm512_max_epu32(launch,
                              _mm512_mask_loadu_epi32(vz, k1, r1 + 16 * g));
    launch = _mm512_max_epu32(launch,
                              _mm512_mask_loadu_epi32(vz, k2, r2 + 16 * g));
    __m512i carry = _mm512_mask_loadu_epi32(vz, k0, cr0 + 16 * g);
    carry = _mm512_max_epu32(carry,
                             _mm512_mask_loadu_epi32(vz, k1, cr1 + 16 * g));
    carry = _mm512_max_epu32(carry,
                             _mm512_mask_loadu_epi32(vz, k2, cr2 + 16 * g));
    if (is_reg) {
      _mm512_storeu_si512(crow + 16 * g, _mm512_max_epu32(carry, launch));
      _mm512_storeu_si512(row + 16 * g, vd);
    } else {
      _mm512_storeu_si512(row + 16 * g, _mm512_add_epi32(launch, vd));
      _mm512_storeu_si512(crow + 16 * g, carry);
    }
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // OCLP_LANE_X86_DISPATCH

// Dense/sparse crossovers, measured on the 8×8 multiplier sweep stream:
// one vector fill amortises over more lanes the wider the ISA, so the
// popcount at which the unconditional fill overtakes the sparse walk drops
// from 16 (scalar/auto-vec) to 10 (AVX2) to 6 (AVX-512 masked loads).
constexpr DenseKernels kScalarKernels{fill_scalar, fill2_scalar, 16, "scalar"};
#if OCLP_LANE_X86_DISPATCH
constexpr DenseKernels kAvx2Kernels{fill_avx2, fill2_avx2, 10, "avx2"};
constexpr DenseKernels kAvx512Kernels{fill_avx512, fill2_avx512, 6, "avx512f"};
#endif

}  // namespace

const DenseKernels& dense_kernels() {
  static const DenseKernels kernels = [] {
#if OCLP_LANE_X86_DISPATCH
    if (__builtin_cpu_supports("avx512f")) return kAvx512Kernels;
    if (__builtin_cpu_supports("avx2")) return kAvx2Kernels;
#endif
    return kScalarKernels;
  }();
  return kernels;
}

int all_dense_kernels(DenseKernels out[3]) {
  int n = 0;
  out[n++] = kScalarKernels;
#if OCLP_LANE_X86_DISPATCH
  if (__builtin_cpu_supports("avx2")) out[n++] = kAvx2Kernels;
  if (__builtin_cpu_supports("avx512f")) out[n++] = kAvx512Kernels;
#endif
  return n;
}

}  // namespace oclp::lane
