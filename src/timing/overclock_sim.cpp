#include "timing/overclock_sim.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace oclp {

OverclockSim::OverclockSim(Netlist nl, std::vector<double> cell_delay_ns,
                           TimingMode mode)
    : nl_(std::move(nl)),
      cnl_(CompiledNetlist::compile(nl_)) {
  OCLP_CHECK_MSG(cell_delay_ns.size() == nl_.num_cells(),
                 "one delay per cell required: " << cell_delay_ns.size() << " vs "
                                                 << nl_.num_cells());
  delay_ = cnl_.gather_delays(cell_delay_ns);
  // Lowering-time quantisation onto the integer-picosecond grid. Strict
  // mode rejects off-grid/overflowing delays (naming the cell); auto mode
  // keeps the double kernel for them instead.
  switch (mode) {
    case TimingMode::IntegerExact:
      delay_ticks_ = cnl_.quantise_delays(delay_, &critical_path_ticks_);
      break;
    case TimingMode::Auto:
      if (!cnl_.try_quantise_delays(delay_, delay_ticks_, &critical_path_ticks_)) {
        delay_ticks_.clear();
        critical_path_ticks_ = 0;
      }
      break;
    case TimingMode::DoubleRef:
      break;
  }
  reset(state_, std::vector<std::uint8_t>(nl_.num_inputs(), 0));
  state_.initialised = false;  // the public contract still requires reset()
}

void OverclockSim::reset(State& st, const std::vector<std::uint8_t>& inputs) const {
  OCLP_CHECK(inputs.size() == nl_.num_inputs());
  const std::size_t nn = cnl_.num_nets();
  st.prev.resize(nn);
  for (std::size_t i = 0; i < inputs.size(); ++i) st.prev[2 + i] = inputs[i];
  cnl_.eval(st.prev);
  // next is rewritten per advance except for the sentinel slots, which must
  // hold their fixed values so the transition scan never sees them move.
  st.next.assign(nn, 0);
  st.next[CompiledNetlist::kConst1Net] = 1;
  st.settle.assign(nn, 0.0);
  st.carried.assign(nn, 0.0);
  const std::size_t no = cnl_.num_outputs();
  st.out_settle.assign(no, 0.0);
  st.out_prev.assign(no, 0);
  st.out_next.assign(no, 0);
  st.last_output_settle_ns = 0.0;
  st.initialised = true;
  st.stepped = false;
}

void OverclockSim::advance(State& st, const std::vector<std::uint8_t>& inputs) const {
  OCLP_CHECK_MSG(st.initialised, "OverclockSim::advance before reset");
  OCLP_CHECK(inputs.size() == nl_.num_inputs());

  // Registered inputs switch at the edge: settle 0, value = new input.
  for (std::size_t i = 0; i < inputs.size(); ++i) st.next[2 + i] = inputs[i];

  // Pipelined cones take the two-track walk; register-free cones keep the
  // exact single-track path below.
  if (cnl_.has_registers()) {
    advance_regs(st);
    return;
  }

  // One linear walk over the levelized cells: a truth-table lookup for the
  // functional value, then a transition scan over the three fanin slots
  // (unused and baked slots point at sentinels, which never transition).
  const std::uint8_t* tt = cnl_.truth_tables().data();
  const std::int32_t* fanin = cnl_.fanins().data();
  const std::size_t base = 2 + cnl_.num_inputs();
  const std::size_t nc = cnl_.num_cells();
  std::uint8_t* next = st.next.data();
  const std::uint8_t* prev = st.prev.data();
  double* settle = st.settle.data();
  const double* delay = delay_.data();
  for (std::size_t ci = 0; ci < nc; ++ci) {
    const std::int32_t* f = fanin + 3 * ci;
    const unsigned idx = static_cast<unsigned>(next[f[0]]) |
                         static_cast<unsigned>(next[f[1]]) << 1 |
                         static_cast<unsigned>(next[f[2]]) << 2;
    const auto v = static_cast<std::uint8_t>((tt[ci] >> idx) & 1u);
    const std::size_t out = base + ci;
    next[out] = v;
    // Toggle rates are low for realistic streams (a fixed multiplicand
    // keeps most of the cone quiet), so skipping the settle arithmetic on
    // the unchanged majority beats computing it branch-free. A fanin
    // contributes its settle time only if it transitioned (masked to an
    // exact 0.0 otherwise — settle times are non-negative, so the 0/1
    // multiplication is exact). Every compiled cell owns its full delay:
    // free cells were elided during lowering.
    if (v == prev[out]) {
      settle[out] = 0.0;
      continue;
    }
    double launch = settle[f[0]] * (next[f[0]] != prev[f[0]]);
    launch = std::max(launch, settle[f[1]] * (next[f[1]] != prev[f[1]]));
    launch = std::max(launch, settle[f[2]] * (next[f[2]] != prev[f[2]]));
    settle[out] = launch + delay[ci];
  }

  const std::size_t no = cnl_.num_outputs();
  double worst = 0.0;
  for (std::size_t k = 0; k < no; ++k) {
    const auto o = cnl_.out_net(k);
    worst = std::max(worst, settle[o]);
    st.out_settle[k] = settle[o];
    st.out_prev[k] = prev[o];
    st.out_next[k] = next[o];
  }
  st.last_output_settle_ns = worst;
  st.stepped = true;

  st.prev.swap(st.next);  // cone fully settles before the next edge (see header)
}

// Two-track walk for pipelined cones: L (stage-local settle, restarting at
// each register) and M (carried max of earlier stages' local settles along
// toggled paths); the recorded output settle is max(L, M). Same masking
// and skip-unchanged structure as the single-track loop in advance().
void OverclockSim::advance_regs(State& st) const {
  const std::uint8_t* tt = cnl_.truth_tables().data();
  const std::int32_t* fanin = cnl_.fanins().data();
  const std::uint8_t* is_reg = cnl_.reg_flags().data();
  const std::size_t base = 2 + cnl_.num_inputs();
  const std::size_t nc = cnl_.num_cells();
  std::uint8_t* next = st.next.data();
  const std::uint8_t* prev = st.prev.data();
  double* settle = st.settle.data();
  double* carried = st.carried.data();
  const double* delay = delay_.data();
  for (std::size_t ci = 0; ci < nc; ++ci) {
    const std::int32_t* f = fanin + 3 * ci;
    const unsigned idx = static_cast<unsigned>(next[f[0]]) |
                         static_cast<unsigned>(next[f[1]]) << 1 |
                         static_cast<unsigned>(next[f[2]]) << 2;
    const auto v = static_cast<std::uint8_t>((tt[ci] >> idx) & 1u);
    const std::size_t out = base + ci;
    next[out] = v;
    if (v == prev[out]) {
      settle[out] = 0.0;
      carried[out] = 0.0;
      continue;
    }
    const int g0 = next[f[0]] != prev[f[0]];
    const int g1 = next[f[1]] != prev[f[1]];
    const int g2 = next[f[2]] != prev[f[2]];
    double launch = settle[f[0]] * g0;
    launch = std::max(launch, settle[f[1]] * g1);
    launch = std::max(launch, settle[f[2]] * g2);
    double carry = carried[f[0]] * g0;
    carry = std::max(carry, carried[f[1]] * g1);
    carry = std::max(carry, carried[f[2]] * g2);
    if (is_reg[ci]) {
      carried[out] = std::max(carry, launch);
      settle[out] = delay[ci];
    } else {
      settle[out] = launch + delay[ci];
      carried[out] = carry;
    }
  }

  const std::size_t no = cnl_.num_outputs();
  double worst = 0.0;
  for (std::size_t k = 0; k < no; ++k) {
    const auto o = cnl_.out_net(k);
    const double eff = std::max(settle[o], carried[o]);
    worst = std::max(worst, eff);
    st.out_settle[k] = eff;
    st.out_prev[k] = prev[o];
    st.out_next[k] = next[o];
  }
  st.last_output_settle_ns = worst;
  st.stepped = true;

  st.prev.swap(st.next);
}

void OverclockSim::run_stream(State& st, const std::uint8_t* inputs,
                              std::size_t n, SweepStream& out) const {
  const bool regs = cnl_.has_registers();
  if (integer_kernel())
    regs ? run_stream_impl<true, true>(st, inputs, n, out)
         : run_stream_impl<true, false>(st, inputs, n, out);
  else
    regs ? run_stream_impl<false, true>(st, inputs, n, out)
         : run_stream_impl<false, false>(st, inputs, n, out);
}

void OverclockSim::run_stream_ref(State& st, const std::uint8_t* inputs,
                                  std::size_t n, SweepStream& out) const {
  if (cnl_.has_registers())
    run_stream_impl<false, true>(st, inputs, n, out);
  else
    run_stream_impl<false, false>(st, inputs, n, out);
}

template <bool kIntKernel, bool kRegs>
void OverclockSim::run_stream_impl(State& st, const std::uint8_t* inputs,
                                   std::size_t n, SweepStream& out) const {
  OCLP_CHECK_MSG(st.initialised, "OverclockSim::run_stream before reset");
  const std::size_t no = cnl_.num_outputs();
  OCLP_CHECK_MSG(no <= 64, "run_stream packs outputs into a 64-bit word; this "
                           "netlist has " << no << " outputs");
  const std::size_t ni = cnl_.num_inputs();
  const std::size_t nn = cnl_.num_nets();
  const std::size_t nc = cnl_.num_cells();
  const std::size_t base = 2 + ni;

  out.settled.resize(n);
  out.toggle_begin.resize(n + 1);
  out.toggle_bit.clear();
  out.toggle_settle.clear();
  out.toggle_settle_ticks.clear();
  out.has_ticks = kIntKernel;
  out.toggle_begin[0] = 0;
  if (n == 0) return;

  out.words.resize(nn);
  out.tog.resize(nn);
  // Per-net lane rows of settle times: row[net*64 + l] is net's settle at
  // edge c0+l — PsGrid ticks on the integer kernel, doubles on the
  // reference. Cell slots may be stale between chunks — a cell's settle
  // is only ever read under this edge's toggle mask, and a toggled cell is
  // rewritten (in level order) before any read. Input and sentinel rows
  // are registered/constant (settle 0) and are never written, so they are
  // re-zeroed here in case a previous caller used this scratch for a
  // netlist whose cell slots overlap them.
  if constexpr (kIntKernel) {
    out.lanes_ticks.resize(nn * 64);
    std::fill_n(out.lanes_ticks.data(), base * 64, 0u);
    if constexpr (kRegs) {
      out.lanes_c_ticks.resize(nn * 64);
      std::fill_n(out.lanes_c_ticks.data(), base * 64, 0u);
    }
  } else {
    out.lanes.resize(nn * 64);
    std::fill_n(out.lanes.data(), base * 64, 0.0);
    if constexpr (kRegs) {
      out.lanes_c.resize(nn * 64);
      std::fill_n(out.lanes_c.data(), base * 64, 0.0);
    }
  }
  out.carry.resize(nn);

  // The carry into lane 0 of each chunk is the settled value of the
  // previous sample — initially the settled reset state of `st`.
  std::memcpy(out.carry.data(), st.prev.data(), nn);

  // The device-resolved dense row fills and their sparsity crossover (see
  // lane_kernels.hpp): toggle-word popcount at/above the cutoff hands the
  // whole 64-lane row to the explicit-SIMD fill, below it the sparse
  // per-lane walk touches only the toggled slots.
  [[maybe_unused]] const lane::DenseKernels& lk = dense_;
  [[maybe_unused]] const int dense_cutoff = dense_.dense_cutoff;

  const std::int32_t* fanin = cnl_.fanins().data();
  [[maybe_unused]] const double* delay = delay_.data();
  [[maybe_unused]] const std::uint32_t* delay_ticks = delay_ticks_.data();
  [[maybe_unused]] const std::uint8_t* is_reg = cnl_.reg_flags().data();
  std::uint64_t* words = out.words.data();
  std::uint64_t* tog = out.tog.data();
  [[maybe_unused]] double* lanes = out.lanes.data();
  [[maybe_unused]] std::uint32_t* lanes_ticks = out.lanes_ticks.data();
  [[maybe_unused]] double* lanes_c = out.lanes_c.data();
  [[maybe_unused]] std::uint32_t* lanes_c_ticks = out.lanes_c_ticks.data();

  for (std::size_t c0 = 0; c0 < n; c0 += 64) {
    const std::size_t cn = std::min<std::size_t>(64, n - c0);
    const std::uint64_t lanemask =
        cn == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << cn) - 1;

    // Pack this chunk's input bits into lane words (lane l = sample c0+l).
    for (std::size_t i = 0; i < ni; ++i) {
      std::uint64_t w = 0;
      const std::uint8_t* col = inputs + c0 * ni + i;
      for (std::size_t l = 0; l < cn; ++l)
        w |= static_cast<std::uint64_t>(col[l * ni] & 1u) << l;
      words[2 + i] = w;
    }
    cnl_.eval64(out.words);

    // Toggle words: lane l is set where sample c0+l differs from its
    // predecessor (lane l-1, or the carried value for lane 0).
    for (std::size_t net = 0; net < nn; ++net) {
      const std::uint64_t w = words[net] & lanemask;
      words[net] = w;
      tog[net] = (w ^ ((w << 1) | out.carry[net])) & lanemask;
      out.carry[net] = static_cast<std::uint8_t>((w >> (cn - 1)) & 1u);
    }

    // Sparse settle propagation, cell-major: every toggled cell fills its
    // settle lane row for exactly the edges it toggled at. Ascending ci is
    // level order, so a fanin's row element is final before any consumer
    // reads it — and a consumer only reads lane l of a fanin when that
    // fanin toggled at lane l (the mask), so stale row slots are never
    // observed.
    //
    // Integer kernel: branch-poor max-plus over uint32 tick rows — an AND
    // mask, two unsigned maxes and an add per cell/lane, no floating
    // point. The uint32 sums cannot overflow (quantisation bounded the
    // worst-case path), and a masked all-zeros launch is exactly the
    // registered-fanin case.
    //
    // Double kernel: the all-ones/all-zeros mask on the settle's bit
    // pattern is exact for the non-negative settle times here (all-ones
    // keeps the value, all-zeros yields +0.0 — exactly what advance()'s
    // 0/1 multiplication produces), so the doubles stay bitwise identical
    // to advance()'s.
    for (std::size_t ci = 0; ci < nc; ++ci) {
      std::uint64_t t = tog[base + ci];
      if (!t) continue;
      const std::int32_t* f = fanin + 3 * ci;
      const std::uint64_t t0 = tog[f[0]], t1 = tog[f[1]], t2 = tog[f[2]];
      if constexpr (kRegs) {
        // Two-track propagation (local L rows plus carried M rows). The
        // register branch is per-cell, so the dense fill hoists it out of
        // the lane loop entirely — dense pipelined edges vectorise exactly
        // like single-track ones, just over two row pairs.
        const bool reg = is_reg[ci] != 0;
        if constexpr (kIntKernel) {
          const std::uint32_t* r0 = lanes_ticks + static_cast<std::size_t>(f[0]) * 64;
          const std::uint32_t* r1 = lanes_ticks + static_cast<std::size_t>(f[1]) * 64;
          const std::uint32_t* r2 = lanes_ticks + static_cast<std::size_t>(f[2]) * 64;
          const std::uint32_t* cr0 = lanes_c_ticks + static_cast<std::size_t>(f[0]) * 64;
          const std::uint32_t* cr1 = lanes_c_ticks + static_cast<std::size_t>(f[1]) * 64;
          const std::uint32_t* cr2 = lanes_c_ticks + static_cast<std::size_t>(f[2]) * 64;
          std::uint32_t* row = lanes_ticks + (base + ci) * 64;
          std::uint32_t* crow = lanes_c_ticks + (base + ci) * 64;
          const std::uint32_t d = delay_ticks[ci];
          if (std::popcount(t) >= dense_cutoff) {
            lk.fill2(row, crow, r0, r1, r2, cr0, cr1, cr2, t0, t1, t2, d, reg);
            continue;
          }
          do {
            const auto l = static_cast<std::size_t>(std::countr_zero(t));
            const auto m0 = static_cast<std::uint32_t>(0 - ((t0 >> l) & 1ull));
            const auto m1 = static_cast<std::uint32_t>(0 - ((t1 >> l) & 1ull));
            const auto m2 = static_cast<std::uint32_t>(0 - ((t2 >> l) & 1ull));
            std::uint32_t launch = r0[l] & m0;
            launch = std::max(launch, r1[l] & m1);
            launch = std::max(launch, r2[l] & m2);
            std::uint32_t carry = cr0[l] & m0;
            carry = std::max(carry, cr1[l] & m1);
            carry = std::max(carry, cr2[l] & m2);
            if (reg) {
              crow[l] = std::max(carry, launch);
              row[l] = d;
            } else {
              row[l] = launch + d;
              crow[l] = carry;
            }
            t &= t - 1;
          } while (t);
        } else {
          const double* r0 = lanes + static_cast<std::size_t>(f[0]) * 64;
          const double* r1 = lanes + static_cast<std::size_t>(f[1]) * 64;
          const double* r2 = lanes + static_cast<std::size_t>(f[2]) * 64;
          const double* cr0 = lanes_c + static_cast<std::size_t>(f[0]) * 64;
          const double* cr1 = lanes_c + static_cast<std::size_t>(f[1]) * 64;
          const double* cr2 = lanes_c + static_cast<std::size_t>(f[2]) * 64;
          double* row = lanes + (base + ci) * 64;
          double* crow = lanes_c + (base + ci) * 64;
          const double d = delay[ci];
          do {
            const auto l = static_cast<std::size_t>(std::countr_zero(t));
            const std::uint64_t m0 = 0 - ((t0 >> l) & 1ull);
            const std::uint64_t m1 = 0 - ((t1 >> l) & 1ull);
            const std::uint64_t m2 = 0 - ((t2 >> l) & 1ull);
            double launch =
                std::bit_cast<double>(std::bit_cast<std::uint64_t>(r0[l]) & m0);
            launch = std::max(
                launch, std::bit_cast<double>(std::bit_cast<std::uint64_t>(r1[l]) & m1));
            launch = std::max(
                launch, std::bit_cast<double>(std::bit_cast<std::uint64_t>(r2[l]) & m2));
            double carry =
                std::bit_cast<double>(std::bit_cast<std::uint64_t>(cr0[l]) & m0);
            carry = std::max(
                carry, std::bit_cast<double>(std::bit_cast<std::uint64_t>(cr1[l]) & m1));
            carry = std::max(
                carry, std::bit_cast<double>(std::bit_cast<std::uint64_t>(cr2[l]) & m2));
            if (reg) {
              crow[l] = std::max(carry, launch);
              row[l] = d;
            } else {
              row[l] = launch + d;
              crow[l] = carry;
            }
            t &= t - 1;
          } while (t);
        }
        continue;
      }
      if constexpr (kIntKernel) {
        const std::uint32_t* r0 = lanes_ticks + static_cast<std::size_t>(f[0]) * 64;
        const std::uint32_t* r1 = lanes_ticks + static_cast<std::size_t>(f[1]) * 64;
        const std::uint32_t* r2 = lanes_ticks + static_cast<std::size_t>(f[2]) * 64;
        std::uint32_t* row = lanes_ticks + (base + ci) * 64;
        const std::uint32_t d = delay_ticks[ci];
        if (std::popcount(t) >= dense_cutoff) {
          lk.fill(row, r0, r1, r2, t0, t1, t2, d);
        } else {
          do {
            const auto l = static_cast<std::size_t>(std::countr_zero(t));
            const auto m0 = static_cast<std::uint32_t>(0 - ((t0 >> l) & 1ull));
            const auto m1 = static_cast<std::uint32_t>(0 - ((t1 >> l) & 1ull));
            const auto m2 = static_cast<std::uint32_t>(0 - ((t2 >> l) & 1ull));
            std::uint32_t launch = r0[l] & m0;
            launch = std::max(launch, r1[l] & m1);
            launch = std::max(launch, r2[l] & m2);
            row[l] = launch + d;
            t &= t - 1;
          } while (t);
        }
      } else {
        const double* r0 = lanes + static_cast<std::size_t>(f[0]) * 64;
        const double* r1 = lanes + static_cast<std::size_t>(f[1]) * 64;
        const double* r2 = lanes + static_cast<std::size_t>(f[2]) * 64;
        double* row = lanes + (base + ci) * 64;
        const double d = delay[ci];
        do {
          const auto l = static_cast<std::size_t>(std::countr_zero(t));
          const std::uint64_t m0 = 0 - ((t0 >> l) & 1ull);
          const std::uint64_t m1 = 0 - ((t1 >> l) & 1ull);
          const std::uint64_t m2 = 0 - ((t2 >> l) & 1ull);
          double launch =
              std::bit_cast<double>(std::bit_cast<std::uint64_t>(r0[l]) & m0);
          launch = std::max(
              launch, std::bit_cast<double>(std::bit_cast<std::uint64_t>(r1[l]) & m1));
          launch = std::max(
              launch, std::bit_cast<double>(std::bit_cast<std::uint64_t>(r2[l]) & m2));
          row[l] = launch + d;
          t &= t - 1;
        } while (t);
      }
    }

    // Output snapshot as a per-chunk counting sort. The natural per-lane
    // loop tests a ~coin-flip toggle bit per (lane, output) — one branch
    // misprediction per toggled pair dominated the whole kernel. Instead:
    // count each lane's pairs by walking the per-output toggle words (pass
    // 1), prefix-sum into toggle_begin, resize the pair arrays once, then
    // scatter (pass 2). Outputs are visited in ascending k, so within a
    // lane the pairs land in exactly the order the per-lane loop produced.
    // Integer streams record ticks only (has_ticks): consumers capture
    // through the exact tick threshold instead of dequantised doubles.
    std::uint32_t cnt[64] = {0};
    std::size_t pairs = 0;
    for (std::size_t k = 0; k < no; ++k) {
      std::uint64_t t = tog[cnl_.out_net(k)];
      pairs += static_cast<std::size_t>(std::popcount(t));
      while (t) {
        ++cnt[std::countr_zero(t)];
        t &= t - 1;
      }
    }
    const std::size_t tbase = out.toggle_bit.size();
    out.toggle_bit.resize(tbase + pairs);
    if constexpr (kIntKernel)
      out.toggle_settle_ticks.resize(tbase + pairs);
    else
      out.toggle_settle.resize(tbase + pairs);
    std::uint32_t pos[64];
    {
      auto off = static_cast<std::uint32_t>(tbase);
      for (std::size_t l = 0; l < cn; ++l) {
        out.toggle_begin[c0 + l] = off;
        pos[l] = off;
        off += cnt[l];
      }
    }
    for (std::size_t k = 0; k < no; ++k) {
      const auto o = static_cast<std::size_t>(cnl_.out_net(k));
      std::uint64_t t = tog[o];
      while (t) {
        const auto l = static_cast<std::size_t>(std::countr_zero(t));
        const std::uint32_t idx = pos[l]++;
        out.toggle_bit[idx] = static_cast<std::uint8_t>(k);
        // Pipelined cones record the effective settle max(L, M).
        if constexpr (kIntKernel) {
          std::uint32_t ticks = lanes_ticks[o * 64 + l];
          if constexpr (kRegs)
            ticks = std::max(ticks, lanes_c_ticks[o * 64 + l]);
          out.toggle_settle_ticks[idx] = ticks;
        } else {
          double sns = lanes[o * 64 + l];
          if constexpr (kRegs) sns = std::max(sns, lanes_c[o * 64 + l]);
          out.toggle_settle[idx] = sns;
        }
        t &= t - 1;
      }
    }

    // Settled output words: transpose the output-net lane words into
    // per-sample words, k-major so each source word is read once.
    std::fill_n(out.settled.data() + c0, cn, 0);
    for (std::size_t k = 0; k < no; ++k) {
      const std::uint64_t w = words[cnl_.out_net(k)];
      std::uint64_t* s = out.settled.data() + c0;
      for (std::size_t l = 0; l < cn; ++l) s[l] |= ((w >> l) & 1u) << k;
    }
  }
  out.toggle_begin[n] = static_cast<std::uint32_t>(out.toggle_bit.size());

  // Leave `st` in the state n advance() calls would have produced: prev =
  // final settled values, per-output snapshot of the last edge.
  for (std::size_t net = 0; net < nn; ++net) st.prev[net] = out.carry[net];
  const std::size_t last = n - 1;
  st.out_settle.assign(no, 0.0);
  st.out_prev.resize(no);
  st.out_next.resize(no);
  for (std::size_t k = 0; k < no; ++k) {
    st.out_next[k] = static_cast<std::uint8_t>((out.settled[last] >> k) & 1u);
    st.out_prev[k] = st.out_next[k];
  }
  double worst = 0.0;
  for (std::uint32_t t = out.toggle_begin[last]; t < out.toggle_begin[n]; ++t) {
    const auto k = out.toggle_bit[t];
    st.out_prev[k] ^= 1u;
    // Integer streams carry ticks only; the dequantisation is exact, so
    // the advance()/capture() interop stays bitwise (see PsGrid).
    const double sns = kIntKernel ? PsGrid::to_ns(out.toggle_settle_ticks[t])
                                  : out.toggle_settle[t];
    st.out_settle[k] = sns;
    worst = std::max(worst, sns);
  }
  st.last_output_settle_ns = worst;
  st.stepped = true;
}

void OverclockSim::capture(const State& st, double period_ns,
                           std::vector<std::uint8_t>& out) const {
  OCLP_CHECK_MSG(st.stepped, "OverclockSim::capture before any advance");
  OCLP_CHECK(period_ns > 0.0);
  out.resize(st.out_settle.size());
  for (std::size_t k = 0; k < st.out_settle.size(); ++k)
    out[k] = st.out_settle[k] <= period_ns ? st.out_next[k] : st.out_prev[k];
}

const std::vector<std::uint8_t>& OverclockSim::step(
    const std::vector<std::uint8_t>& inputs, double period_ns) {
  OCLP_CHECK_MSG(state_.initialised, "OverclockSim::step before reset");
  OCLP_CHECK(period_ns > 0.0);
  advance(state_, inputs);
  capture(state_, period_ns, captured_);
  return captured_;
}

void OverclockSim::resample_last(double period_ns,
                                 std::vector<std::uint8_t>& out) const {
  OCLP_CHECK_MSG(state_.stepped, "resample_last before any step");
  capture(state_, period_ns, out);
}

std::vector<std::uint8_t> OverclockSim::resample_last(double period_ns) const {
  std::vector<std::uint8_t> captured;
  resample_last(period_ns, captured);
  return captured;
}

void OverclockSim::last_settled_outputs(std::vector<std::uint8_t>& out) const {
  OCLP_CHECK_MSG(state_.stepped, "last_settled_outputs before any step");
  out.assign(state_.out_next.begin(), state_.out_next.end());
}

std::vector<std::uint8_t> OverclockSim::last_settled_outputs() const {
  std::vector<std::uint8_t> out;
  last_settled_outputs(out);
  return out;
}

}  // namespace oclp
