#include "timing/overclock_sim.hpp"

#include <algorithm>

namespace oclp {

OverclockSim::OverclockSim(Netlist nl, std::vector<double> cell_delay_ns)
    : nl_(std::move(nl)), delay_(std::move(cell_delay_ns)) {
  OCLP_CHECK_MSG(delay_.size() == nl_.num_cells(),
                 "one delay per cell required: " << delay_.size() << " vs "
                                                 << nl_.num_cells());
  prev_.assign(nl_.num_nets(), 0);
  next_.assign(nl_.num_nets(), 0);
  settle_.assign(nl_.num_nets(), 0.0);
}

void OverclockSim::reset(const std::vector<std::uint8_t>& inputs) {
  prev_ = nl_.evaluate(inputs);
  initialised_ = true;
}

std::vector<std::uint8_t> OverclockSim::step(const std::vector<std::uint8_t>& inputs,
                                             double period_ns) {
  OCLP_CHECK_MSG(initialised_, "OverclockSim::step before reset");
  OCLP_CHECK(inputs.size() == nl_.num_inputs());
  OCLP_CHECK(period_ns > 0.0);

  const std::size_t ni = nl_.num_inputs();
  // Registered inputs switch at the edge: settle 0, value = new input.
  for (std::size_t i = 0; i < ni; ++i) {
    next_[i] = inputs[i];
    settle_[i] = 0.0;
  }

  const auto& cells = nl_.cells();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const std::size_t out = ni + i;
    const int arity = cell_arity(c.type);
    const bool a = arity > 0 && next_[c.in[0]];
    const bool b = arity > 1 && next_[c.in[1]];
    const bool cc = arity > 2 && next_[c.in[2]];
    const std::uint8_t v = cell_eval(c.type, a, b, cc);
    next_[out] = v;
    if (v == prev_[out]) {
      settle_[out] = 0.0;  // no transition (glitches ignored)
      continue;
    }
    // The transition is launched by the latest-settling fanin that itself
    // transitioned; if the cell is free (constant/buffer) it adds no delay.
    double launch = 0.0;
    for (int k = 0; k < arity; ++k) {
      const auto in = c.in[k];
      if (next_[in] != prev_[in]) launch = std::max(launch, settle_[in]);
    }
    settle_[out] = launch + (cell_is_free(c.type) ? 0.0 : delay_[i]);
  }

  const auto& outs = nl_.outputs();
  std::vector<std::uint8_t> captured(outs.size());
  out_settle_.resize(outs.size());
  out_prev_.resize(outs.size());
  out_next_.resize(outs.size());
  double worst = 0.0;
  for (std::size_t k = 0; k < outs.size(); ++k) {
    const auto o = outs[k];
    worst = std::max(worst, settle_[o]);
    captured[k] = settle_[o] <= period_ns ? next_[o] : prev_[o];
    out_settle_[k] = settle_[o];
    out_prev_[k] = prev_[o];
    out_next_[k] = next_[o];
  }
  last_output_settle_ns_ = worst;
  stepped_ = true;

  prev_.swap(next_);  // cone fully settles before the next edge (see header)
  return captured;
}

std::vector<std::uint8_t> OverclockSim::resample_last(double period_ns) const {
  OCLP_CHECK_MSG(stepped_, "resample_last before any step");
  OCLP_CHECK(period_ns > 0.0);
  std::vector<std::uint8_t> captured(out_settle_.size());
  for (std::size_t k = 0; k < out_settle_.size(); ++k)
    captured[k] = out_settle_[k] <= period_ns ? out_next_[k] : out_prev_[k];
  return captured;
}

std::vector<std::uint8_t> OverclockSim::last_settled_outputs() const {
  OCLP_CHECK_MSG(stepped_, "last_settled_outputs before any step");
  return out_next_;
}

}  // namespace oclp
