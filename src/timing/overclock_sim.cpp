#include "timing/overclock_sim.hpp"

#include <algorithm>

namespace oclp {

OverclockSim::OverclockSim(Netlist nl, std::vector<double> cell_delay_ns)
    : nl_(std::move(nl)), delay_(std::move(cell_delay_ns)) {
  OCLP_CHECK_MSG(delay_.size() == nl_.num_cells(),
                 "one delay per cell required: " << delay_.size() << " vs "
                                                 << nl_.num_cells());
  reset(state_, std::vector<std::uint8_t>(nl_.num_inputs(), 0));
  state_.initialised = false;  // the public contract still requires reset()
}

void OverclockSim::reset(State& st, const std::vector<std::uint8_t>& inputs) const {
  st.prev = nl_.evaluate(inputs);
  st.next.assign(nl_.num_nets(), 0);
  st.settle.assign(nl_.num_nets(), 0.0);
  const std::size_t no = nl_.outputs().size();
  st.out_settle.assign(no, 0.0);
  st.out_prev.assign(no, 0);
  st.out_next.assign(no, 0);
  st.last_output_settle_ns = 0.0;
  st.initialised = true;
  st.stepped = false;
}

void OverclockSim::advance(State& st, const std::vector<std::uint8_t>& inputs) const {
  OCLP_CHECK_MSG(st.initialised, "OverclockSim::advance before reset");
  OCLP_CHECK(inputs.size() == nl_.num_inputs());

  const std::size_t ni = nl_.num_inputs();
  // Registered inputs switch at the edge: settle 0, value = new input.
  for (std::size_t i = 0; i < ni; ++i) {
    st.next[i] = inputs[i];
    st.settle[i] = 0.0;
  }

  const auto& cells = nl_.cells();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const std::size_t out = ni + i;
    const int arity = cell_arity(c.type);
    const bool a = arity > 0 && st.next[c.in[0]];
    const bool b = arity > 1 && st.next[c.in[1]];
    const bool cc = arity > 2 && st.next[c.in[2]];
    const std::uint8_t v = cell_eval(c.type, a, b, cc);
    st.next[out] = v;
    if (v == st.prev[out]) {
      st.settle[out] = 0.0;  // no transition (glitches ignored)
      continue;
    }
    // The transition is launched by the latest-settling fanin that itself
    // transitioned; if the cell is free (constant/buffer) it adds no delay.
    double launch = 0.0;
    for (int k = 0; k < arity; ++k) {
      const auto in = c.in[k];
      if (st.next[in] != st.prev[in]) launch = std::max(launch, st.settle[in]);
    }
    st.settle[out] = launch + (cell_is_free(c.type) ? 0.0 : delay_[i]);
  }

  const auto& outs = nl_.outputs();
  double worst = 0.0;
  for (std::size_t k = 0; k < outs.size(); ++k) {
    const auto o = outs[k];
    worst = std::max(worst, st.settle[o]);
    st.out_settle[k] = st.settle[o];
    st.out_prev[k] = st.prev[o];
    st.out_next[k] = st.next[o];
  }
  st.last_output_settle_ns = worst;
  st.stepped = true;

  st.prev.swap(st.next);  // cone fully settles before the next edge (see header)
}

void OverclockSim::capture(const State& st, double period_ns,
                           std::vector<std::uint8_t>& out) const {
  OCLP_CHECK_MSG(st.stepped, "OverclockSim::capture before any advance");
  OCLP_CHECK(period_ns > 0.0);
  out.resize(st.out_settle.size());
  for (std::size_t k = 0; k < st.out_settle.size(); ++k)
    out[k] = st.out_settle[k] <= period_ns ? st.out_next[k] : st.out_prev[k];
}

const std::vector<std::uint8_t>& OverclockSim::step(
    const std::vector<std::uint8_t>& inputs, double period_ns) {
  OCLP_CHECK_MSG(state_.initialised, "OverclockSim::step before reset");
  OCLP_CHECK(period_ns > 0.0);
  advance(state_, inputs);
  capture(state_, period_ns, captured_);
  return captured_;
}

std::vector<std::uint8_t> OverclockSim::resample_last(double period_ns) const {
  OCLP_CHECK_MSG(state_.stepped, "resample_last before any step");
  std::vector<std::uint8_t> captured;
  capture(state_, period_ns, captured);
  return captured;
}

std::vector<std::uint8_t> OverclockSim::last_settled_outputs() const {
  OCLP_CHECK_MSG(state_.stepped, "last_settled_outputs before any step");
  return state_.out_next;
}

}  // namespace oclp
