// Serving a Linear Projection design under load — the runtime half of the
// story. The rest of the framework picks an over-clocked design; this
// example deploys one behind the streaming ProjectionServer and walks
// through a thermal incident:
//
//  1. characterise the device: fB / fC regime bounds of the 8×8 multiplier
//     (charlib::find_regimes) anchor every clock the governor may pick;
//  2. deploy the design at ~0.9·fB with micro-batching, a bounded queue
//     and razor-style sampled duplicate checks at the safe floor clock;
//  3. mid-run, the die heats up (delays stretch 30–60%): the checks catch
//     the error-rate breach and the governor steps the clock down;
//  4. the die cools, healthy windows accumulate, the clock ramps back.
//
// Build & run:  cmake --build build && ./build/examples/serve_projection
#include <cstdio>
#include <vector>

#include "charlib/sweep.hpp"
#include "common/rng.hpp"
#include "fabric/calibration.hpp"
#include "serve/server.hpp"

using namespace oclp;

int main() {
  // --- 1. the device and its operating regimes ------------------------------
  Device device(reference_device_config(), kReferenceDieSeed);
  device.set_temperature(kCharacterisationTempC);

  std::vector<double> freqs;
  for (double f = 120.0; f <= 540.0; f += 20.0) freqs.push_back(f);
  const auto curve =
      error_rate_curve(device, 8, 8, reference_location_1(), freqs, 400, 99);
  const auto regimes = find_regimes(curve);
  std::printf("characterised regimes: fB = %.0f MHz (error-free), "
              "fC = %.0f MHz (usable)\n",
              regimes.error_free_fmax_mhz, regimes.usable_fmax_mhz);

  // --- 2. deploy a design just under fB -------------------------------------
  const double f_target = 0.9 * regimes.error_free_fmax_mhz;
  const double hot = (regimes.usable_fmax_mhz + 20.0) / f_target;
  const double f_floor =
      std::min(0.5 * regimes.error_free_fmax_mhz,
               0.9 * regimes.error_free_fmax_mhz / hot);

  LinearProjectionDesign design;
  design.columns.push_back(make_column({255.0 / 256, -239.0 / 256, 251.0 / 256, -223.0 / 256},
                        MultConfig{MultArch::Array, 8, 1}));
  design.columns.push_back(make_column({-247.0 / 256, 233.0 / 256, 253.0 / 256, 227.0 / 256},
                        MultConfig{MultArch::Array, 8, 1}));
  design.target_freq_mhz = f_target;
  design.origin = "serve-example";

  ServeConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 8;
  cfg.max_wait_ms = 0.1;
  cfg.check_fraction = 1.0;  // small demo: check everything
  cfg.governor.f_target_mhz = f_target;
  cfg.governor.f_floor_mhz = f_floor;
  cfg.governor.window_checks = 32;
  cfg.governor.step_down_factor = f_floor / f_target;
  cfg.governor.step_up_mhz = f_target - f_floor;
  cfg.governor.healthy_windows_to_ramp = 2;

  auto plan = simulated_plan(design, reference_location_1());
  ProjectionServer server(design, device, plan, /*wl_x=*/8, nullptr, cfg,
                          nullptr);
  std::printf("deployed P=%zu -> K=%zu datapath at %.0f MHz "
              "(floor %.0f MHz, %zu replicas)\n\n",
              server.dims_p(), server.dims_k(), f_target, f_floor,
              cfg.workers);

  // --- 3./4. a thermal incident under steady load ---------------------------
  Rng rng(7);
  std::uint64_t id = 0;
  auto drive = [&](std::size_t n, const char* phase) {
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::uint32_t> codes(server.dims_p());
      for (auto& c : codes) c = static_cast<std::uint32_t>(rng.uniform_u64(256));
      server.submit({++id, codes, 0.0});
    }
    server.wait_idle();
    std::printf("%-28s clock %6.1f MHz, served %llu\n", phase,
                server.governor().frequency_mhz(),
                static_cast<unsigned long long>(server.metrics().served()));
  };

  drive(64, "nominal:");
  server.set_timing_derate(hot);
  std::printf("\n*** thermal event: delays stretch %.0f%% ***\n",
              (hot - 1.0) * 100.0);
  drive(64, "hot (governor reacts):");
  server.set_timing_derate(1.0);
  std::printf("\n*** die cooled back down ***\n");
  drive(64, "recovered (clock re-ramps):");

  // --- the whole story in one snapshot --------------------------------------
  const auto snap = server.metrics_snapshot();
  std::printf("\nper-window check-error rates:");
  for (double r : snap.window_error_rates) std::printf(" %.2f", r);
  std::printf("\nfrequency timeline:");
  for (const auto& e : snap.frequency_timeline)
    std::printf(" [%llu served: %.1f MHz]",
                static_cast<unsigned long long>(e.at_served), e.freq_mhz);
  std::printf("\ncheck errors: %llu of %llu checks; no silent corruption — "
              "every degraded window ran at the safe floor\n",
              static_cast<unsigned long long>(snap.check_errors),
              static_cast<unsigned long long>(snap.checks));
  return 0;
}
