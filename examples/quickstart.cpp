// Quickstart: the whole framework on one page.
//
//  1. model a specific FPGA device (process variation included);
//  2. characterise over-clocked LUT multipliers on it → E(m, f);
//  3. run the Bayesian optimisation framework (Algorithm 1) for a ℤ⁶→ℤ³
//     linear projection at a clock far above the synthesis tool's Fmax;
//  4. compare against the classic KLT design on the simulated device.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>
#include <map>

#include "area/area_model.hpp"
#include "charlib/sweep.hpp"
#include "core/algorithm1.hpp"
#include "core/baseline.hpp"
#include "core/circuit_eval.hpp"
#include "core/synthetic.hpp"
#include "fabric/calibration.hpp"
#include "fabric/timing_annotation.hpp"
#include "mult/multiplier.hpp"

using namespace oclp;

int main() {
  // --- 1. the device on your desk ------------------------------------------
  Device device(reference_device_config(), /*die_seed=*/kReferenceDieSeed);
  device.set_temperature(kCharacterisationTempC);  // cooled, as in the paper

  const double tool_fmax = tool_fmax_mhz(make_multiplier(9, 9), device.config());
  const double target = 310.0;
  std::cout << "synthesis tool Fmax (9x9 LUT multiplier): " << tool_fmax
            << " MHz\ntarget clock: " << target << " MHz ("
            << target / tool_fmax << "x beyond the tool)\n\n";

  // --- 2. characterise the multipliers at the target clock ------------------
  SweepSettings sweep;
  sweep.freqs_mhz = {target};
  sweep.locations = {reference_location_1(), reference_location_2()};
  sweep.samples_per_point = 400;
  ErrorModelMap models;
  for (const auto& cfg : mult_config_range(MultArch::Array, 3, 9))
    models.emplace(cfg, characterise_multiplier(device, cfg, 9, sweep));
  std::cout << "characterised E(m, f) for word-lengths 3..9\n";

  // --- 3. optimise the Linear Projection design -----------------------------
  SyntheticDataConfig data_cfg;
  data_cfg.cases = 100;
  const Matrix x_train = make_synthetic_dataset(data_cfg);

  OptimisationSettings opt;
  opt.beta = 4.0;
  opt.target_freq_mhz = target;
  opt.gibbs.burn_in = 300;   // Table I uses 1000/3000; this is the fast path
  opt.gibbs.samples = 800;
  const AreaModel area = AreaModel::fit(
      collect_area_samples(mult_config_range(MultArch::Array, 3, 9), 9, 12, 1));
  OptimisationFramework framework(opt, x_train, models, area);
  const auto designs = framework.run();

  // --- 4. evaluate on the device vs the KLT baseline -------------------------
  data_cfg.cases = 1000;
  data_cfg.seed = 99;
  const Matrix x_test = make_synthetic_dataset(data_cfg);
  const auto mu = framework.data_mean();

  std::cout << "\ndesigns at " << target << " MHz (actual = over-clocking "
            << "simulation, fresh placement):\n";
  for (const auto& d : designs) {
    const double mse = evaluate_hardware_mse(
        d, x_test, mu, device, actual_plan(d, device, 1), 9, &models, 2);
    std::cout << "  " << d.origin << "  area=" << d.area_estimate
              << " LEs  actual MSE=" << mse << "\n";
  }
  const auto klt = make_klt_design(
      x_train, 3, MultConfig{MultArch::Array, 9, 1}, target, 9, area, &models);
  const double klt_mse = evaluate_hardware_mse(
      klt, x_test, mu, device, actual_plan(klt, device, 1), 9, &models, 2);
  std::cout << "  " << klt.origin << "      area=" << klt.area_estimate
            << " LEs  actual MSE=" << klt_mse << "  <- the baseline drowns in "
            << "over-clocking errors\n";
  return 0;
}
