// Face recognition (eigenfaces-style), the paper's motivating high-
// dimension application ("applications with high dimensions (i.e. face
// recognition)" — Sec. V).
//
// A gallery of identities lives in a 16-dimensional feature space; probes
// are noisy draws around each identity. Recognition = nearest identity in
// the K=4 projected space. The projection runs on over-clocked hardware at
// 310 MHz — far beyond the synthesis tool's Fmax — once with the
// over-clocking-aware OF design and once with the quantised-KLT baseline.
// The OF design keeps the recognition rate of the error-free projection;
// the baseline's rate collapses with its corrupted projections.
#include <algorithm>
#include <iostream>
#include <map>

#include "area/area_model.hpp"
#include "charlib/sweep.hpp"
#include "common/rng.hpp"
#include "core/algorithm1.hpp"
#include "core/baseline.hpp"
#include "core/circuit_eval.hpp"
#include "core/synthetic.hpp"
#include "fabric/calibration.hpp"
#include "linalg/decompositions.hpp"

using namespace oclp;

namespace {

constexpr std::size_t kDims = 16;      // P: feature dimensionality
constexpr std::size_t kProjected = 4;  // K
constexpr std::size_t kIdentities = 12;
constexpr std::size_t kProbesPerId = 40;

struct FaceData {
  Matrix gallery;              // kDims × kIdentities (identity templates)
  Matrix probes;               // kDims × (kIdentities · kProbesPerId)
  std::vector<int> probe_ids;  // ground truth per probe column
};

FaceData make_faces(std::uint64_t seed) {
  Rng rng(seed);
  // Identities live on a low-dimensional "face manifold": 4 strong modes.
  Matrix modes(kDims, kProjected);
  for (std::size_t r = 0; r < kDims; ++r)
    for (std::size_t c = 0; c < kProjected; ++c) modes(r, c) = rng.normal();
  modes = gram_schmidt(modes);

  FaceData data;
  data.gallery = Matrix(kDims, kIdentities);
  for (std::size_t id = 0; id < kIdentities; ++id) {
    std::vector<double> face(kDims, 0.5);
    for (std::size_t c = 0; c < kProjected; ++c) {
      const double weight = rng.normal(0.0, 0.12);
      for (std::size_t r = 0; r < kDims; ++r) face[r] += weight * modes(r, c);
    }
    for (std::size_t r = 0; r < kDims; ++r)
      data.gallery(r, id) = std::clamp(face[r], 0.0, 1.0 - 1e-9);
  }
  data.probes = Matrix(kDims, kIdentities * kProbesPerId);
  for (std::size_t id = 0; id < kIdentities; ++id) {
    for (std::size_t p = 0; p < kProbesPerId; ++p) {
      const std::size_t col = id * kProbesPerId + p;
      for (std::size_t r = 0; r < kDims; ++r)
        data.probes(r, col) = std::clamp(
            data.gallery(r, id) + rng.normal(0.0, 0.015), 0.0, 1.0 - 1e-9);
      data.probe_ids.push_back(static_cast<int>(id));
    }
  }
  return data;
}

// Recognition rate with projections computed by `project` (a callable that
// maps a kDims sample to a K-vector).
template <typename ProjectFn>
double recognition_rate(const FaceData& data, const Matrix& gallery_proj,
                        ProjectFn&& project) {
  std::size_t correct = 0;
  std::vector<double> sample(kDims);
  for (std::size_t col = 0; col < data.probes.cols(); ++col) {
    for (std::size_t r = 0; r < kDims; ++r) sample[r] = data.probes(r, col);
    const auto y = project(sample);
    int best = -1;
    double best_dist = 1e300;
    for (std::size_t id = 0; id < kIdentities; ++id) {
      double dist = 0.0;
      for (std::size_t k = 0; k < y.size(); ++k) {
        const double d = y[k] - gallery_proj(k, id);
        dist += d * d;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = static_cast<int>(id);
      }
    }
    if (best == data.probe_ids[col]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.probes.cols());
}

// Project the gallery templates exactly (enrolment is offline; only the
// probe path runs on over-clocked hardware).
Matrix project_gallery(const LinearProjectionDesign& design, const Matrix& gallery) {
  const Matrix basis = design.basis();
  return basis.transposed() * gallery;
}

}  // namespace

int main() {
  std::cout << "Eigenfaces on over-clocked hardware: Z^" << kDims << " -> Z^"
            << kProjected << ", " << kIdentities << " identities, "
            << kIdentities * kProbesPerId << " probes\n\n";

  Device device(reference_device_config(), kReferenceDieSeed);
  device.set_temperature(kCharacterisationTempC);
  const double target = 310.0;

  SweepSettings sweep;
  sweep.freqs_mhz = {target};
  sweep.locations = {reference_location_1(), reference_location_2()};
  sweep.samples_per_point = 400;
  ErrorModelMap models;
  for (const auto& cfg : mult_config_range(MultArch::Array, 3, 9))
    models.emplace(cfg, characterise_multiplier(device, cfg, 9, sweep));

  const FaceData data = make_faces(1234);

  OptimisationSettings opt;
  opt.dims_k = kProjected;
  opt.beta = 4.0;
  opt.target_freq_mhz = target;
  opt.gibbs.burn_in = 300;
  opt.gibbs.samples = 800;
  const AreaModel area = AreaModel::fit(
      collect_area_samples(mult_config_range(MultArch::Array, 3, 9), 9, 12, 2));
  OptimisationFramework framework(opt, data.probes, models, area);
  const auto designs = framework.run();
  const auto& of_design = designs.back();  // most accurate OF design
  const auto klt_design =
      make_klt_design(data.probes, kProjected, MultConfig{MultArch::Array, 9, 1},
                      target, 9, area, &models);

  auto hardware_projector = [&](const LinearProjectionDesign& d) {
    auto circuit = std::make_shared<ProjectionCircuit>(
        d, device, actual_plan(d, device, 77), 9, &models, 78);
    return [circuit](const std::vector<double>& sample) {
      return circuit->project(encode_input(sample, 9));
    };
  };
  auto exact_projector = [&](const LinearProjectionDesign& d) {
    const Matrix bt = d.basis().transposed();
    return [bt](const std::vector<double>& sample) {
      std::vector<double> y(bt.rows(), 0.0);
      for (std::size_t k = 0; k < bt.rows(); ++k)
        for (std::size_t r = 0; r < bt.cols(); ++r) y[k] += bt(k, r) * sample[r];
      return y;
    };
  };

  const double rate_exact = recognition_rate(
      data, project_gallery(of_design, data.gallery), exact_projector(of_design));
  const double rate_of = recognition_rate(
      data, project_gallery(of_design, data.gallery), hardware_projector(of_design));
  const double rate_klt = recognition_rate(
      data, project_gallery(klt_design, data.gallery), hardware_projector(klt_design));

  std::cout << "recognition rate, error-free projection (OF design):   "
            << 100.0 * rate_exact << " %\n"
            << "recognition rate, OF design  @310 MHz on the device:   "
            << 100.0 * rate_of << " %\n"
            << "recognition rate, KLT wl=9   @310 MHz on the device:   "
            << 100.0 * rate_klt << " %\n\n"
            << "OF area " << of_design.area_estimate << " LEs vs KLT area "
            << klt_design.area_estimate << " LEs\n";
  if (rate_of >= rate_exact - 0.02 && rate_of > rate_klt)
    std::cout << "=> over-clocking-aware optimisation keeps recognition intact "
                 "at 1.85x the tool clock.\n";
  return 0;
}
