// Device characterisation workflow — the step a user runs once per board
// (paper Section III): sweep the LUT multipliers of a *specific* device
// across clock frequencies and locations, persist the E(m, f) tables to
// CSV for later optimisation runs, and print a characterisation report
// (operating regimes, tool-vs-device headroom, location spread).
//
// Usage: characterise_device [die_seed] [output_directory]
#include <cstdlib>
#include <iostream>
#include <string>

#include "charlib/char_circuit.hpp"
#include "charlib/sweep.hpp"
#include "common/table.hpp"
#include "fabric/calibration.hpp"
#include "fabric/timing_annotation.hpp"
#include "mult/multiplier.hpp"
#include "netlist/sta.hpp"

using namespace oclp;

int main(int argc, char** argv) {
  const std::uint64_t die_seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 0) : kReferenceDieSeed;
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  Device device(reference_device_config(), die_seed);
  device.set_temperature(kCharacterisationTempC);
  std::cout << "characterising die seed " << die_seed
            << " (inter-die speed factor " << device.inter_die_factor()
            << ", cooled to " << device.temperature_c() << " C)\n\n";

  // --- operating regimes of the 8x8 reference multiplier ---------------------
  const double tool = tool_fmax_mhz(make_multiplier(8, 8), device.config());
  std::vector<double> freqs;
  for (double f = 0.8 * tool; f <= 3.2 * tool; f += 0.1 * tool)
    freqs.push_back(f);
  const auto curve =
      error_rate_curve(device, 8, 8, reference_location_1(), freqs, 4000, 1);
  const auto regimes = find_regimes(curve);
  std::cout << "8x8 multiplier: tool Fmax fA = " << tool << " MHz, error-free "
            << "to fB = " << regimes.error_free_fmax_mhz << " MHz ("
            << regimes.error_free_fmax_mhz / tool << "x), usable to fC = "
            << regimes.usable_fmax_mhz << " MHz\n\n";

  // --- full E(m, f) characterisation per word-length -------------------------
  SweepSettings sweep;
  sweep.freqs_mhz = {0.9 * tool, 1.2 * tool, 1.5 * tool, 1.85 * tool, 2.2 * tool};
  sweep.locations = {reference_location_1(), reference_location_2()};
  sweep.samples_per_point = 500;

  Table report({"wordlength", "error_free_multiplicands_at_1.85x",
                "max_variance", "csv_file"});
  for (int wl = 3; wl <= 9; ++wl) {
    const auto model = characterise_multiplier(
        device, MultConfig{MultArch::Array, wl, 1}, 9, sweep);
    const std::string path = out_dir + "/error_model_wl" + std::to_string(wl) +
                             "_die" + std::to_string(die_seed) + ".csv";
    model.save_csv_file(path);
    long long clean = 0;
    for (std::uint32_t m = 0; m < model.num_multiplicands(); ++m)
      if (model.variance(m, 1.85 * tool) == 0.0) ++clean;
    report.add_row({static_cast<long long>(wl), clean, model.max_variance(),
                    path});
  }
  report.print(std::cout);
  std::cout << "\nfeed these CSVs to OptimisationFramework (or re-load them "
            << "with ErrorModel::load_csv_file) to optimise designs for this "
            << "specific die.\n";
  return 0;
}
