// Serving one Linear Projection design across a *fleet* of dies — the
// paper's device-specific premise taken to production. Every die of the
// same product has its own error surface E(m, f), so a deployment is a
// set of per-die operating points, not one number. This example:
//
//  1. builds three synthetic dies of one family and lets ProjectionFleet
//     characterise each at construction — the fast die gets the fast
//     clock, by measurement rather than margin;
//  2. serves a mixed-tenant load through the headroom router
//     (latency-sensitive requests avoid dies ramping back from an SLO
//     breach);
//  3. ages one die mid-run (delays stretch 2.6x — far past what the AIMD
//     governor's old floor can absorb) and lets a re-characterisation
//     cycle re-measure that die's error-free fmax and move its governor
//     floor, after which the governor walks the clock down through the
//     old floor into the regime the drifted silicon can actually sustain.
//     The other dies never notice.
//
// Build & run:  cmake --build build && ./build/examples/fleet_serving
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "fabric/calibration.hpp"
#include "serve/fleet.hpp"

using namespace oclp;

int main() {
  LinearProjectionDesign design;
  design.columns.push_back(make_column({255.0 / 256, -239.0 / 256, 251.0 / 256, -223.0 / 256},
                        MultConfig{MultArch::Array, 8, 1}));
  design.columns.push_back(make_column({-247.0 / 256, 233.0 / 256, 253.0 / 256, 227.0 / 256},
                        MultConfig{MultArch::Array, 8, 1}));
  design.target_freq_mhz = 400.0;
  design.origin = "fleet-example";

  // --- 1. three dies of one family, each characterised at its own silicon --
  FleetConfig cfg;
  cfg.die_seeds = {22, 83, 13};
  cfg.device = reference_device_config();
  cfg.serve.workers = 1;
  cfg.serve.max_batch = 8;
  cfg.serve.max_wait_ms = 0.0;
  cfg.serve.check_fraction = 1.0;  // small demo: check everything
  cfg.serve.governor.window_checks = 8;
  cfg.serve.governor.step_down_factor = 0.5;
  cfg.serve.governor.step_up_mhz = 10.0;
  cfg.serve.governor.healthy_windows_to_ramp = 2;

  ProjectionFleet fleet(design, cfg);
  std::printf("fleet of %zu dies, one operating point per die:\n",
              fleet.num_dies());
  for (std::size_t i = 0; i < fleet.num_dies(); ++i) {
    const auto s = fleet.die_status(i);
    std::printf(
        "  die %zu: seed %-3llu inter-die %.3f  fB %.0f MHz -> "
        "target %.0f, floor %.0f MHz\n",
        i, static_cast<unsigned long long>(s.die_seed), s.inter_die_factor,
        s.error_free_fmax_mhz, s.f_target_mhz, s.f_floor_mhz);
  }

  // --- 2. mixed-tenant load through the headroom router --------------------
  Rng rng(7);
  std::uint64_t id = 0;
  auto drive = [&](std::size_t n, const char* phase) {
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::uint32_t> codes(4);
      for (auto& c : codes)
        c = static_cast<std::uint32_t>(rng.uniform_u64(256));
      fleet.submit({++id, codes, 0.0}, i % 3 == 0
                                           ? SloClass::LatencySensitive
                                           : SloClass::BestEffort);
    }
    fleet.wait_idle();
    std::printf("%-26s", phase);
    for (std::size_t d = 0; d < fleet.num_dies(); ++d) {
      const auto s = fleet.die_status(d);
      std::printf("  die %zu @ %5.1f MHz (%llu routed)", d, s.freq_mhz,
                  static_cast<unsigned long long>(s.routed));
    }
    std::printf("\n");
  };
  drive(96, "nominal:");

  // --- 3. one die ages; the control plane re-measures it -------------------
  const double derate = 2.6;
  const auto before = fleet.die_status(0);
  std::printf("\n*** die 0 ages: delays stretch %.0f%% — old floor "
              "(%.0f MHz) x %.1f sits past its fB (%.0f MHz), AIMD alone "
              "cannot recover ***\n",
              (derate - 1.0) * 100.0, before.f_floor_mhz, derate,
              before.error_free_fmax_mhz);
  fleet.set_die_drift(0, derate);
  const auto report = fleet.recharacterise(0);
  const auto after = fleet.die_status(0);
  std::printf("re-characterisation: probed %zu codes -> error-free fmax "
              "now %.0f MHz; floor moved %.0f -> %.0f MHz in one cycle\n",
              report.probed, after.recheck_fmax_mhz, before.f_floor_mhz,
              after.f_floor_mhz);

  drive(192, "aged (governor descends):");
  std::printf("\ndie 0 settled at %.1f MHz — below the old floor, inside "
              "the regime the aged silicon sustains; dies 1 and 2 never "
              "moved.\n",
              fleet.server(0).governor().frequency_mhz());

  fleet.stop();
  return 0;
}
