// Pushing a freshly fitted design onto a serving fleet — without draining
// it. The paper's workflow ends at "fit a design to this device"; in
// production the fit is re-run (new training data, a better beta, drifted
// silicon) while the old design is still taking traffic. This example:
//
//  1. deploys an OF fit across three characterised dies (see
//     fleet_serving.cpp for the per-die operating points);
//  2. keeps a feeder thread submitting requests through the headroom
//     router for the whole run;
//  3. pushes a new OF fit mid-load with ProjectionFleet::swap_design —
//     the canary die lowers, shadow-validates and flips first (its Shadow
//     phase is the bake), then each sibling repeats the sequence against
//     its own die's error model — and prints the per-die rollout
//     timeline: Lower / Shadow / Flip wall-clock per die, shadow verdict
//     inputs, and the loss accounting (every accepted request is served;
//     the cutover drops nothing by construction).
//
// Build & run:  cmake --build build && ./build/examples/live_reswap
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "fabric/calibration.hpp"
#include "serve/fleet.hpp"

using namespace oclp;

int main() {
  // The serving fit and its mid-load replacement: same shape, every
  // coefficient moved — what a re-run of the optimisation produces.
  LinearProjectionDesign serving;
  serving.columns.push_back(make_column({255.0 / 256, -239.0 / 256, 251.0 / 256, -223.0 / 256},
                        MultConfig{MultArch::Array, 8, 1}));
  serving.columns.push_back(make_column({-247.0 / 256, 233.0 / 256, 253.0 / 256, 227.0 / 256},
                        MultConfig{MultArch::Array, 8, 1}));
  serving.target_freq_mhz = 400.0;
  serving.origin = "OF beta=4.0";

  LinearProjectionDesign refit = serving;
  refit.columns.clear();
  refit.columns.push_back(make_column({131.0 / 256, 97.0 / 256, -203.0 / 256, 59.0 / 256},
                        MultConfig{MultArch::Array, 8, 1}));
  refit.columns.push_back(make_column({-77.0 / 256, 181.0 / 256, 23.0 / 256, -149.0 / 256},
                        MultConfig{MultArch::Array, 8, 1}));
  refit.origin = "OF beta=4.0 refit";

  FleetConfig cfg;
  cfg.die_seeds = {22, 83, 13};
  cfg.device = reference_device_config();
  cfg.serve.workers = 1;
  cfg.serve.max_batch = 8;
  cfg.serve.max_wait_ms = 0.0;
  cfg.serve.check_fraction = 0.05;

  ProjectionFleet fleet(serving, cfg);
  std::printf("fleet of %zu dies serving \"%s\":\n", fleet.num_dies(),
              serving.origin.c_str());
  for (std::size_t i = 0; i < fleet.num_dies(); ++i) {
    const auto s = fleet.die_status(i);
    std::printf("  die %zu: fB %.0f MHz -> target %.0f MHz\n", i,
                s.error_free_fmax_mhz, s.f_target_mhz);
  }

  // Live load for the whole run: the Shadow phase validates the candidate
  // against *mirrored production traffic*, so the rollout needs requests
  // flowing on every die it touches. Submitted in bursts — a burst stacks
  // the router's queue-depth signal, which is what spreads traffic across
  // all three dies instead of letting the fastest idle die take
  // everything (and starving the canary's shadow).
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> accepted{0};
  std::thread feeder([&] {
    Rng rng(7);
    std::uint64_t id = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int burst = 0; burst < 16; ++burst) {
        std::vector<std::uint32_t> codes(4);
        for (auto& c : codes)
          c = static_cast<std::uint32_t>(rng.uniform_u64(256));
        if (fleet.submit({++id, codes, 0.0}))
          accepted.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // --- the mid-load rollout ------------------------------------------------
  SwapConfig scfg;
  scfg.shadow_fraction = 1.0;
  scfg.min_shadow_compares = 8;
  scfg.shadow_timeout_ms = 10000.0;
  scfg.mismatch_slack = 0.05;
  std::printf("\npushing \"%s\" onto the loaded fleet (canary die 0)...\n",
              refit.origin.c_str());
  const FleetSwapReport rollout = fleet.swap_design(refit, scfg, 0);

  std::printf("rollout timeline:\n");
  for (std::size_t i = 0; i < rollout.dies.size(); ++i) {
    const auto& r = rollout.dies[i];
    if (!r.committed && r.abort_reason.empty()) {
      std::printf("  die %zu: not reached\n", i);
      continue;
    }
    std::printf(
        "  die %zu%s: lower %5.1f ms | shadow %6.1f ms "
        "(%llu mirrored, %llu diverged) | flip %4.1f ms | %s\n",
        i, i == rollout.canary ? " (canary)" : "        ", r.lower_ms,
        r.shadow_ms, static_cast<unsigned long long>(r.shadow_compared),
        static_cast<unsigned long long>(r.shadow_mismatches), r.flip_ms,
        r.committed ? "committed" : r.abort_reason.c_str());
  }

  // Tail traffic through the new datapaths, then account for every request.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true, std::memory_order_relaxed);
  feeder.join();
  fleet.wait_idle();

  std::uint64_t served = 0;
  for (std::size_t i = 0; i < fleet.num_dies(); ++i)
    served += fleet.server(i).metrics_snapshot().served;
  std::printf(
      "\n%s: every die serves generation %llu; %llu accepted, %llu served "
      "across the fleet — the cutover dropped nothing.\n",
      rollout.committed ? "committed" : "PARTIAL",
      static_cast<unsigned long long>(fleet.server(0).design_generation()),
      static_cast<unsigned long long>(accepted.load()),
      static_cast<unsigned long long>(served));

  fleet.stop();
  return rollout.committed ? 0 : 1;
}
