// Block-based image compression — the paper's opening use case ("image and
// video processing rely on implementations of the Linear Projection
// algorithm with high throughput").
//
// A synthetic smooth image is cut into 4×2 blocks (P = 8 pixels); each
// block is projected to K = 2 coefficients (4x compression) and
// reconstructed. The projection datapath runs at 310 MHz on the simulated
// device; reported is the PSNR of the reconstructed image for the
// over-clocking-aware OF design vs the quantised-KLT baseline, plus the
// error-free software reference.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "area/area_model.hpp"
#include "charlib/sweep.hpp"
#include "common/rng.hpp"
#include "core/algorithm1.hpp"
#include "core/baseline.hpp"
#include "core/circuit_eval.hpp"
#include "core/synthetic.hpp"
#include "fabric/calibration.hpp"
#include "linalg/decompositions.hpp"

using namespace oclp;

namespace {

constexpr int kWidth = 96, kHeight = 64;
constexpr int kBlockW = 4, kBlockH = 2;
constexpr std::size_t kBlockPixels = kBlockW * kBlockH;  // P = 8
constexpr std::size_t kCoeffs = 2;                       // K = 2

// Smooth random field: sum of low-frequency cosines plus mild texture.
std::vector<double> make_image(std::uint64_t seed) {
  Rng rng(seed);
  struct Wave {
    double fx, fy, phase, amp;
  };
  std::vector<Wave> waves;
  for (int i = 0; i < 7; ++i)
    waves.push_back({rng.uniform(0.2, 2.2), rng.uniform(0.2, 2.2),
                     rng.uniform(0.0, 6.28), rng.uniform(0.04, 0.16)});
  std::vector<double> img(kWidth * kHeight);
  for (int y = 0; y < kHeight; ++y)
    for (int x = 0; x < kWidth; ++x) {
      double v = 0.5;
      for (const auto& w : waves)
        v += w.amp * std::cos(2.0 * M_PI * (w.fx * x / kWidth + w.fy * y / kHeight) +
                              w.phase);
      v += rng.normal(0.0, 0.004);  // sensor noise
      img[y * kWidth + x] = std::clamp(v, 0.0, 1.0 - 1e-9);
    }
  return img;
}

// Image → P×N block matrix (one block per column).
Matrix to_blocks(const std::vector<double>& img) {
  const int bx = kWidth / kBlockW, by = kHeight / kBlockH;
  Matrix blocks(kBlockPixels, static_cast<std::size_t>(bx) * by);
  std::size_t col = 0;
  for (int byi = 0; byi < by; ++byi)
    for (int bxi = 0; bxi < bx; ++bxi, ++col)
      for (int dy = 0; dy < kBlockH; ++dy)
        for (int dx = 0; dx < kBlockW; ++dx)
          blocks(dy * kBlockW + dx, col) =
              img[(byi * kBlockH + dy) * kWidth + bxi * kBlockW + dx];
  return blocks;
}

double psnr(const Matrix& a, const Matrix& b) {
  const double mse = (a - b).mean_square();
  return 10.0 * std::log10(1.0 / std::max(mse, 1e-30));
}

// Compress + reconstruct all blocks through a hardware (or exact) pipeline.
Matrix reconstruct(const LinearProjectionDesign& design, const Matrix& blocks,
                   const std::vector<double>& mu, Device& device,
                   const ErrorModelMap* models, bool exact) {
  const Matrix basis = design.basis();
  const Matrix normaliser = projection_normaliser(basis, 1e-10);
  ProjectionCircuit circuit(design, device, actual_plan(design, device, 5), 9,
                            models, 6);
  std::vector<double> offset(design.dims_k(), 0.0);
  for (std::size_t k = 0; k < design.dims_k(); ++k)
    offset[k] = dot(basis.col(k), mu);

  Matrix out(blocks.rows(), blocks.cols());
  std::vector<double> sample(blocks.rows());

  // Encode every block up front, then clock the whole image through the
  // batched timed kernel in one call (the exact path evaluates the same
  // codes through the error-free reference instead).
  std::vector<std::vector<std::uint32_t>> codes(blocks.cols());
  std::vector<const std::vector<std::uint32_t>*> batch(blocks.cols());
  for (std::size_t col = 0; col < blocks.cols(); ++col) {
    for (std::size_t r = 0; r < blocks.rows(); ++r) sample[r] = blocks(r, col);
    codes[col] = encode_input(sample, 9);
    batch[col] = &codes[col];
  }
  std::vector<std::vector<double>> ys;
  if (exact) {
    ys.resize(blocks.cols());
    for (std::size_t col = 0; col < blocks.cols(); ++col)
      ys[col] = circuit.project_exact(codes[col]);
  } else {
    circuit.project_batch(batch, ys);
  }

  for (std::size_t col = 0; col < blocks.cols(); ++col) {
    auto& y = ys[col];
    for (std::size_t k = 0; k < y.size(); ++k) y[k] -= offset[k];
    for (std::size_t r = 0; r < blocks.rows(); ++r) {
      double v = mu[r];
      for (std::size_t k = 0; k < design.dims_k(); ++k) {
        double f = 0.0;
        for (std::size_t j = 0; j < design.dims_k(); ++j)
          f += normaliser(k, j) * y[j];
        v += basis(r, k) * f;
      }
      out(r, col) = v;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "Block KLT image compression on over-clocked hardware: "
            << kWidth << "x" << kHeight << " image, " << kBlockW << "x"
            << kBlockH << " blocks, " << kBlockPixels << " -> " << kCoeffs
            << " coefficients (4x)\n\n";

  Device device(reference_device_config(), kReferenceDieSeed);
  device.set_temperature(kCharacterisationTempC);
  const double target = 310.0;

  SweepSettings sweep;
  sweep.freqs_mhz = {target};
  sweep.locations = {reference_location_1(), reference_location_2()};
  sweep.samples_per_point = 400;
  ErrorModelMap models;
  for (const auto& cfg : mult_config_range(MultArch::Array, 3, 9))
    models.emplace(cfg, characterise_multiplier(device, cfg, 9, sweep));

  const auto image = make_image(2718);
  const Matrix blocks = to_blocks(image);
  // Table-I-sized training set: a 1-in-8 subsample of the blocks. (With the
  // full image as training data the likelihood overwhelms the prior — the
  // paper trains on 100 cases for the same reason.)
  Matrix train(blocks.rows(), blocks.cols() / 8);
  for (std::size_t c = 0; c < train.cols(); ++c)
    for (std::size_t r = 0; r < blocks.rows(); ++r)
      train(r, c) = blocks(r, c * 8);
  std::cout << "training on " << train.cols() << " of " << blocks.cols()
            << " blocks\n";

  OptimisationSettings opt;
  opt.dims_k = kCoeffs;
  opt.beta = 8.0;
  opt.target_freq_mhz = target;
  opt.gibbs.burn_in = 300;
  opt.gibbs.samples = 800;
  const AreaModel area = AreaModel::fit(
      collect_area_samples(mult_config_range(MultArch::Array, 3, 9), 9, 12, 3));
  OptimisationFramework framework(opt, train, models, area);
  const auto designs = framework.run();
  const auto& of_design = designs.back();
  const auto klt_design =
      make_klt_design(train, kCoeffs, MultConfig{MultArch::Array, 9, 1}, target,
                      9, area, &models);
  const auto mu = framework.data_mean();

  const Matrix ref = reconstruct(of_design, blocks, mu, device, &models, true);
  const Matrix hw_of = reconstruct(of_design, blocks, mu, device, &models, false);
  const Matrix hw_klt = reconstruct(klt_design, blocks, mu, device, &models, false);

  std::cout << "\nreconstruction PSNR (higher is better):\n"
            << "  error-free OF projection:      " << psnr(blocks, ref) << " dB\n"
            << "  OF design  @310 MHz hardware:  " << psnr(blocks, hw_of) << " dB\n"
            << "  KLT wl=9   @310 MHz hardware:  " << psnr(blocks, hw_klt)
            << " dB\n\n"
            << "OF area " << of_design.area_estimate << " LEs, KLT area "
            << klt_design.area_estimate << " LEs; throughput "
            << target << " MHz = "
            << "1.85x what the synthesis tool allows for the baseline.\n";
  return 0;
}
