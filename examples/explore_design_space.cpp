// Design-space exploration tool: run the optimisation framework over a
// grid of (β, target clock) settings and print the resulting Pareto
// designs — the workflow a designer uses to pick an operating point before
// committing to a bitstream.
//
// Usage: explore_design_space [K] [training_cases]
#include <cstdlib>
#include <iostream>
#include <map>

#include "area/area_model.hpp"
#include "charlib/sweep.hpp"
#include "common/table.hpp"
#include "core/algorithm1.hpp"
#include "core/circuit_eval.hpp"
#include "core/synthetic.hpp"
#include "fabric/calibration.hpp"
#include "fabric/timing_annotation.hpp"
#include "mult/multiplier.hpp"

using namespace oclp;

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::size_t cases = argc > 2 ? std::strtoul(argv[2], nullptr, 0) : 100;
  OCLP_CHECK(k >= 1 && k <= 6 && cases >= 10);

  Device device(reference_device_config(), kReferenceDieSeed);
  device.set_temperature(kCharacterisationTempC);
  const double tool =
      tool_fmax_mhz(make_multiplier(9, 9), device.config());

  SyntheticDataConfig dc;
  dc.cases = cases;
  const Matrix x_train = make_synthetic_dataset(dc);
  dc.cases = 1000;
  dc.seed = 77;
  const Matrix x_test = make_synthetic_dataset(dc);

  const AreaModel area = AreaModel::fit(
      collect_area_samples(mult_config_range(MultArch::Array, 3, 9), 9, 12, 4));

  Table table({"target_mhz", "x_tool", "beta", "area_les", "wordlengths",
               "predicted_mse", "actual_mse"});
  for (double ratio : {1.5, 1.85, 2.1}) {
    const double target = std::floor(tool * ratio);
    SweepSettings ss;
    ss.freqs_mhz = {target};
    ss.locations = {reference_location_1(), reference_location_2()};
    ss.samples_per_point = 400;
    ErrorModelMap models;
    for (const auto& cfg : mult_config_range(MultArch::Array, 3, 9))
      models.emplace(cfg, characterise_multiplier(device, cfg, 9, ss));

    for (double beta : {2.0, 4.0}) {
      OptimisationSettings os;
      os.dims_k = k;
      os.beta = beta;
      os.target_freq_mhz = target;
      os.gibbs.burn_in = 300;
      os.gibbs.samples = 800;
      os.gibbs.seed = hash_mix(static_cast<std::uint64_t>(target),
                               static_cast<std::uint64_t>(beta * 64));
      OptimisationFramework framework(os, x_train, models, area);
      const auto designs = framework.run();
      for (const auto& d : designs) {
        std::string wls;
        for (const auto& col : d.columns)
          wls += std::to_string(col.wordlength()) + " ";
        const double actual = evaluate_hardware_mse(
            d, x_test, framework.data_mean(), device,
            actual_plan(d, device, 11), 9, &models, 12);
        table.add_row({target, ratio, beta, d.area_estimate, wls,
                       d.predicted_objective(), actual});
      }
    }
  }
  std::cout << "Design-space exploration: Z^6 -> Z^" << k << ", "
            << cases << " training cases, tool Fmax " << tool << " MHz\n\n";
  table.print(std::cout);
  std::cout << "\npick the row meeting your throughput and error budget; the\n"
            << "area column is what the bitstream will cost.\n";
  return 0;
}
