// Extension (paper Sec. II closing remark): FPGA vendors add guardband
// partly for aging; reconfigurability allows re-characterising the device
// over its lifetime and updating the design. This bench ages the reference
// device and tracks the drift of the error-free limit and of the
// error-model content, demonstrating why re-characterisation matters.
#include "bench_common.hpp"
#include "charlib/char_circuit.hpp"
#include "fabric/timing_annotation.hpp"
#include "mult/multiplier.hpp"
#include "netlist/sta.hpp"

using namespace oclp;
using namespace oclp::bench;

int main() {
  print_header("Extension — device aging and re-characterisation",
               "Expected shape: the error-free limit decays with age; codes "
               "that were clean at 310 MHz become error-prone; the tool "
               "Fmax (already guard-banded) stays fixed.");
  Context& ctx = Context::get();
  const auto& t1 = ctx.table1;

  const double tool =
      tool_fmax_mhz(make_multiplier(9, t1.input_wordlength), ctx.device.config());

  Table table({"age_years", "device_fmax_9x9_mhz", "erroneous_codes_at_310",
               "tool_fmax_mhz"});
  Device device(reference_device_config(), kReferenceDieSeed);
  device.set_temperature(kCharacterisationTempC);
  double last_fmax = 0.0;
  for (double age : {0.0, 2.0, 5.0, 10.0}) {
    Device aged = device;
    aged.age(age);
    const double fmax = fmax_mhz(device_critical_path_ns(
        make_multiplier(9, t1.input_wordlength), aged, reference_location_1()));
    SweepSettings ss;
    ss.freqs_mhz = {t1.clock_mhz};
    ss.locations = {reference_location_1()};
    ss.samples_per_point = 300;
    const auto model = characterise_multiplier(
        aged, MultConfig{MultArch::Array, 9, 1}, t1.input_wordlength, ss);
    long long erroneous = 0;
    for (std::uint32_t m = 0; m < model.num_multiplicands(); ++m)
      if (model.variance(m, t1.clock_mhz) > 0.0) ++erroneous;
    table.add_row({age, fmax, erroneous, tool});
    last_fmax = fmax;
  }
  table.print(std::cout);
  std::cout << "10-year device Fmax is " << last_fmax
            << " MHz; a design optimised against the fresh characterisation\n"
            << "should be re-optimised against the aged E(m, f) — the same\n"
            << "framework run, new input data.\n";
  return 0;
}
