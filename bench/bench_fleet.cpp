// Fleet-serving benchmark (DESIGN.md "Fleet serving"): deploys the same
// over-clocked Linear Projection design across three synthetic dies of one
// family behind the ProjectionFleet and measures
//
//  1. fleet capacity vs a single server — each die is characterised at its
//     own error-free fmax and driven closed-loop; fleet capacity is the
//     sum of the per-die rates. The dies are independent silicon, but this
//     host simulates them on shared cores, so the honest capacity number
//     is the per-die sum (what the fleet serves on real hardware), not the
//     wall clock of the serialised simulation — which is also reported,
//     unflattered, as `concurrent`;
//  2. router behaviour under a mixed BestEffort / LatencySensitive load —
//     per-die routed counts from the headroom policy;
//  3. the live re-characterisation control plane: environment drift
//     injected on one die while the background probe thread walks the
//     fleet; the probe detects the shrunken error-free regime, moves that
//     die's governor floor within one cycle, and the AIMD loop — now
//     unlocked — steps the clock through the old floor into the
//     drift-adjusted safe regime. Per-die frequency timelines prove the
//     other dies never moved.
//
// Results go to BENCH_fleet.json; `--smoke` shrinks the load for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "fabric/calibration.hpp"
#include "serve/fleet.hpp"

using namespace oclp;

namespace {

constexpr int kWlX = 8;
const std::vector<std::uint64_t> kDieSeeds = {22, 83, 13};

LinearProjectionDesign fleet_design() {
  const MultConfig cfg{MultArch::Array, 8, 1};
  LinearProjectionDesign d;
  d.columns.push_back(make_column(
      {255.0 / 256, -239.0 / 256, 251.0 / 256, -223.0 / 256}, cfg));
  d.columns.push_back(make_column(
      {-247.0 / 256, 233.0 / 256, 253.0 / 256, 227.0 / 256}, cfg));
  d.target_freq_mhz = 400.0;
  d.origin = "bench-fleet";
  return d;
}

FleetConfig base_config(std::vector<std::uint64_t> die_seeds,
                        std::size_t queue_capacity) {
  FleetConfig cfg;
  cfg.die_seeds = std::move(die_seeds);
  cfg.device = reference_device_config();
  cfg.wl_x = kWlX;
  cfg.with_jitter = false;
  cfg.serve.workers = 1;
  cfg.serve.queue_capacity = queue_capacity;
  cfg.serve.max_batch = 16;
  cfg.serve.max_wait_ms = 0.0;
  cfg.serve.check_fraction = 0.05;
  return cfg;
}

std::vector<std::vector<std::uint32_t>> request_stream(std::size_t n,
                                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::uint32_t>> reqs(n);
  for (auto& codes : reqs) {
    codes.resize(4);
    for (auto& c : codes)
      c = static_cast<std::uint32_t>(rng.uniform_u64(1u << kWlX));
  }
  return reqs;
}

struct DiePoint {
  DieStatus status;
  double requests_per_sec = 0.0;
};

/// Closed-loop rate of one die driven directly (its dedicated-silicon
/// serving rate; the fleet capacity is the sum of these). One warm-up
/// pass, then best of three timed reps — the host is shared, and a
/// scheduler hiccup in any single rep would be charged to the die.
double die_rate(ProjectionServer& server, std::size_t requests,
                std::uint64_t seed) {
  const auto stream = request_stream(requests, seed);
  double best = 0.0;
  for (int rep = 0; rep < 4; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < requests; ++i)
      server.submit({static_cast<std::uint64_t>(i + 1), stream[i], 0.0});
    server.wait_idle();
    const double rate =
        static_cast<double>(requests) /
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rep > 0) best = std::max(best, rate);
  }
  return best;
}

struct ConcurrentRun {
  std::size_t requests = 0;
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  std::vector<std::uint64_t> routed;  ///< per die
};

/// The whole fleet behind the router under a mixed-SLO load (every third
/// request latency-sensitive), on this host's serialised simulation.
ConcurrentRun concurrent_run(ProjectionFleet& fleet, std::size_t requests) {
  const auto stream = request_stream(requests, 0xF1EE7);
  const std::vector<std::uint64_t> before = [&] {
    std::vector<std::uint64_t> r;
    for (std::size_t i = 0; i < fleet.num_dies(); ++i)
      r.push_back(fleet.die_status(i).routed);
    return r;
  }();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i)
    fleet.submit({static_cast<std::uint64_t>(i + 1), stream[i], 0.0},
                 i % 3 == 0 ? SloClass::LatencySensitive
                            : SloClass::BestEffort);
  fleet.wait_idle();
  ConcurrentRun run;
  run.requests = requests;
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  run.requests_per_sec = static_cast<double>(requests) / run.seconds;
  for (std::size_t i = 0; i < fleet.num_dies(); ++i)
    run.routed.push_back(fleet.die_status(i).routed - before[i]);
  return run;
}

struct DriftResult {
  double derate = 0.0;
  double floor_before_mhz = 0.0;
  double floor_after_mhz = 0.0;
  double recheck_fmax_mhz = 0.0;
  double fb_construction_mhz = 0.0;
  double detection_ms = 0.0;  ///< drift injection → floor move
  std::uint64_t cycles_at_detection = 0;
  double settled_freq_mhz = 0.0;  ///< drifted die, after the AIMD descent
  std::vector<ServeMetrics::Snapshot> snaps;  ///< per die
  std::vector<DieStatus> status;              ///< per die, final
};

/// Drift scenario: background re-characterisation on, severe drift on die
/// 0 (old floor × derate > fB, so AIMD alone cannot recover), serving
/// continues throughout.
DriftResult drift_scenario(const LinearProjectionDesign& design, bool smoke) {
  auto cfg = base_config(kDieSeeds, 1 << 16);
  cfg.serve.check_fraction = 1.0;
  cfg.serve.governor.window_checks = 8;
  cfg.serve.governor.slo_error_rate = 0.05;
  cfg.serve.governor.step_down_factor = 0.5;
  cfg.serve.governor.step_up_mhz = 10.0;
  cfg.serve.governor.healthy_windows_to_ramp = 2;
  cfg.recheck_period_ms = 2.0;
  cfg.recheck_samples = smoke ? 80 : 160;
  ProjectionFleet fleet(design, cfg);

  DriftResult out;
  out.derate = 2.6;
  out.floor_before_mhz = fleet.die_status(0).f_floor_mhz;
  out.fb_construction_mhz = fleet.die_status(0).error_free_fmax_mhz;

  const std::size_t warm = smoke ? 64 : 512;
  const auto stream = request_stream(warm + 4096, 0xD41F7);
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < warm; ++i, ++id)
    fleet.submit({id + 1, stream[id], 0.0});
  fleet.wait_idle();

  // Inject the drift and let the background probe catch it.
  const auto t_drift = std::chrono::steady_clock::now();
  fleet.set_die_drift(0, out.derate);
  const auto deadline = t_drift + std::chrono::seconds(30);
  while (fleet.die_status(0).f_floor_mhz >= out.floor_before_mhz &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  out.detection_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t_drift)
          .count();
  out.cycles_at_detection = fleet.die_status(0).recharacterisations;
  out.floor_after_mhz = fleet.die_status(0).f_floor_mhz;
  out.recheck_fmax_mhz = fleet.die_status(0).recheck_fmax_mhz;

  // Serve on: the checked requests breach, and the governor walks the
  // drifted die down through the old floor while the other dies hold.
  const std::size_t settle = smoke ? 256 : 2048;
  for (std::size_t i = 0; i < settle; ++i, ++id)
    fleet.submit({id + 1, stream[id], 0.0});
  fleet.wait_idle();
  out.settled_freq_mhz = fleet.server(0).governor().frequency_mhz();

  for (std::size_t i = 0; i < fleet.num_dies(); ++i) {
    out.snaps.push_back(fleet.server(i).metrics_snapshot());
    out.status.push_back(fleet.die_status(i));
  }
  fleet.stop();
  return out;
}

void write_json(const char* path, bool smoke, const std::vector<DiePoint>& dies,
                double baseline_rps, double capacity_rps,
                const ConcurrentRun& conc, const DriftResult& drift) {
  std::ofstream os(path);
  os.precision(10);
  os << "{\n  \"bench\": \"fleet\",\n"
     << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
     << "  \"dies\": [\n";
  for (std::size_t i = 0; i < dies.size(); ++i) {
    const auto& s = dies[i].status;
    os << "    {\"die_seed\": " << s.die_seed
       << ", \"inter_die_factor\": " << s.inter_die_factor
       << ", \"error_free_fmax_mhz\": " << s.error_free_fmax_mhz
       << ", \"f_target_mhz\": " << s.f_target_mhz
       << ", \"f_floor_mhz\": " << s.f_floor_mhz
       << ", \"requests_per_sec\": " << dies[i].requests_per_sec << "}"
       << (i + 1 < dies.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"single_server_baseline_rps\": " << baseline_rps << ",\n"
     << "  \"fleet_capacity_rps\": " << capacity_rps << ",\n"
     << "  \"capacity_vs_single_speedup\": " << capacity_rps / baseline_rps
     << ",\n"
     << "  \"concurrent\": {\"requests\": " << conc.requests
     << ", \"seconds\": " << conc.seconds
     << ", \"requests_per_sec\": " << conc.requests_per_sec
     << ", \"routed\": [";
  for (std::size_t i = 0; i < conc.routed.size(); ++i)
    os << (i ? ", " : "") << conc.routed[i];
  os << "]},\n"
     << "  \"drift\": {\n"
     << "    \"die\": 0,\n"
     << "    \"derate\": " << drift.derate << ",\n"
     << "    \"fb_construction_mhz\": " << drift.fb_construction_mhz << ",\n"
     << "    \"floor_before_mhz\": " << drift.floor_before_mhz << ",\n"
     << "    \"floor_after_mhz\": " << drift.floor_after_mhz << ",\n"
     << "    \"recheck_fmax_mhz\": " << drift.recheck_fmax_mhz << ",\n"
     << "    \"detection_ms\": " << drift.detection_ms << ",\n"
     << "    \"cycles_at_detection\": " << drift.cycles_at_detection << ",\n"
     << "    \"settled_freq_mhz\": " << drift.settled_freq_mhz << ",\n"
     << "    \"per_die\": [\n";
  for (std::size_t i = 0; i < drift.snaps.size(); ++i) {
    const auto& snap = drift.snaps[i];
    const auto& s = drift.status[i];
    os << "      {\"die_seed\": " << s.die_seed
       << ", \"recharacterisations\": " << s.recharacterisations
       << ", \"f_floor_mhz\": " << s.f_floor_mhz
       << ", \"freq_mhz\": " << s.freq_mhz
       << ", \"served\": " << snap.served
       << ", \"checks\": " << snap.checks
       << ", \"check_errors\": " << snap.check_errors
       << ", \"latency_overflow\": " << snap.latency_overflow
       << ", \"frequency_timeline\": [";
    for (std::size_t j = 0; j < snap.frequency_timeline.size(); ++j)
      os << (j ? ", " : "") << "{\"at_served\": "
         << snap.frequency_timeline[j].at_served
         << ", \"freq_mhz\": " << snap.frequency_timeline[j].freq_mhz << "}";
    os << "]}" << (i + 1 < drift.snaps.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const auto design = fleet_design();
  const std::size_t requests = smoke ? 256 : 4096;

  // Baseline: one server on the reference die, identical serve settings.
  double baseline_rps = 0.0;
  {
    ProjectionFleet single(design, base_config({kDieSeeds[0]}, requests));
    baseline_rps = die_rate(single.server(0), requests, 0xB453);
    single.stop();
    std::printf("baseline: single server %8.0f req/s\n", baseline_rps);
  }

  ProjectionFleet fleet(design, base_config(kDieSeeds, requests));
  std::vector<DiePoint> dies;
  double capacity_rps = 0.0;
  for (std::size_t i = 0; i < fleet.num_dies(); ++i) {
    DiePoint p;
    p.requests_per_sec = die_rate(fleet.server(i), requests, 0xD1E0 + i);
    p.status = fleet.die_status(i);
    capacity_rps += p.requests_per_sec;
    std::printf(
        "die %zu: seed %llu inter_die %.3f fB %.0f MHz target %.0f MHz "
        "%8.0f req/s\n",
        i, static_cast<unsigned long long>(p.status.die_seed),
        p.status.inter_die_factor, p.status.error_free_fmax_mhz,
        p.status.f_target_mhz, p.requests_per_sec);
    dies.push_back(std::move(p));
  }
  std::printf("fleet capacity: %8.0f req/s (%.2fx single server)\n",
              capacity_rps, capacity_rps / baseline_rps);

  const auto conc = concurrent_run(fleet, requests);
  fleet.stop();
  std::printf("concurrent (host-serialised): %8.0f req/s, routed [",
              conc.requests_per_sec);
  for (std::size_t i = 0; i < conc.routed.size(); ++i)
    std::printf("%s%llu", i ? ", " : "",
                static_cast<unsigned long long>(conc.routed[i]));
  std::printf("]\n");

  const auto drift = drift_scenario(design, smoke);
  std::printf(
      "drift: derate %.2fx on die 0 -> recheck fB %.0f MHz (was %.0f), "
      "floor %.0f -> %.0f MHz in %llu cycle(s), %.1f ms; governor settled "
      "at %.1f MHz (old floor %.0f)\n",
      drift.derate, drift.recheck_fmax_mhz, drift.fb_construction_mhz,
      drift.floor_before_mhz, drift.floor_after_mhz,
      static_cast<unsigned long long>(drift.cycles_at_detection),
      drift.detection_ms, drift.settled_freq_mhz, drift.floor_before_mhz);

  write_json("BENCH_fleet.json", smoke, dies, baseline_rps, capacity_rps, conc,
             drift);
  std::printf("-> BENCH_fleet.json\n");
  return 0;
}
