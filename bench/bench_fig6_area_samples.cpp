// Figure 6 reproduction: the data collected to build the area model —
// logic elements of LUT-based generic multipliers per coefficient
// word-length, across many placement/synthesis runs. The paper's scatter
// shows a tight, monotonically growing band per word-length.
#include "bench_common.hpp"

using namespace oclp;
using namespace oclp::bench;

int main() {
  print_header("Figure 6 — area samples per multiplier word-length",
               "Expected shape: LE count grows ~linearly in wl (x9-bit data "
               "port), small run-to-run spread per word-length.");
  Context& ctx = Context::get();
  const auto& t1 = ctx.table1;

  const int runs = 20;
  const auto samples = collect_area_samples(t1.wl_min, t1.wl_max,
                                            t1.input_wordlength, runs, kAreaSeed);
  const auto model = AreaModel::fit(samples);

  Table scatter({"wordlength", "run", "logic_elements"});
  std::map<int, int> run_counter;
  for (const auto& s : samples)
    scatter.add_row({static_cast<long long>(s.wordlength),
                     static_cast<long long>(run_counter[s.wordlength]++),
                     s.logic_elements});
  scatter.print(std::cout);

  Table summary({"wordlength", "mean_les", "stddev", "ci95_half_width"});
  for (int wl = t1.wl_min; wl <= t1.wl_max; ++wl)
    summary.add_row({static_cast<long long>(wl), model.estimate(wl),
                     model.stddev(wl), model.ci95(wl)});
  std::cout << "\nFitted per-word-length area model:\n";
  summary.print(std::cout);
  return 0;
}
