// Figure 6 reproduction: the data collected to build the area model —
// logic elements of LUT-based generic multipliers per coefficient
// word-length, across many placement/synthesis runs. The paper's scatter
// shows a tight, monotonically growing band per word-length.
#include "bench_common.hpp"

using namespace oclp;
using namespace oclp::bench;

int main() {
  print_header("Figure 6 — area samples per multiplier word-length",
               "Expected shape: LE count grows ~linearly in wl (x9-bit data "
               "port), small run-to-run spread per word-length.");
  Context& ctx = Context::get();
  const auto& t1 = ctx.table1;

  const int runs = 20;
  const auto configs = ctx.table1_configs();
  const auto samples =
      collect_area_samples(configs, t1.input_wordlength, runs, kAreaSeed);
  const auto model = AreaModel::fit(samples);

  Table scatter({"config", "run", "logic_elements"});
  std::map<MultConfig, int> run_counter;
  for (const auto& s : samples)
    scatter.add_row({to_string(s.config),
                     static_cast<long long>(run_counter[s.config]++),
                     s.logic_elements});
  scatter.print(std::cout);

  Table summary({"config", "mean_les", "stddev", "ci95_half_width"});
  for (const auto& cfg : configs)
    summary.add_row({to_string(cfg), model.estimate(cfg),
                     model.stddev(cfg), model.ci95(cfg)});
  std::cout << "\nFitted per-word-length area model:\n";
  summary.print(std::cout);
  return 0;
}
