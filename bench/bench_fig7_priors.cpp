// Figure 7 reproduction: the prior distribution p(λ) over the 8-bit
// coefficient grid for β ∈ {0.1, 1.0, 4.0} at an over-clocked frequency.
// Expected shape: β = 0.1 is near-flat; β = 4.0 assigns near-zero mass to
// coefficients with high over-clocking error variance.
#include <cmath>

#include "bayes/prior.hpp"
#include "bench_common.hpp"

using namespace oclp;
using namespace oclp::bench;

int main() {
  print_header("Figure 7 — prior p(lambda) for beta in {0.1, 1.0, 4.0}",
               "Expected shape: flat for small beta; error-prone lambda "
               "values suppressed for beta = 4.");
  Context& ctx = Context::get();

  // The paper plots the prior of an 8-bit multiplier around 340 MHz.
  const double freq = 340.0;
  SweepSettings ss;
  ss.freqs_mhz = {freq};
  ss.locations = {reference_location_1()};
  ss.samples_per_point = 600;
  ss.stream_seed = kCharStreamSeed;
  const MultConfig cfg{MultArch::Array, 8, 1};
  const auto model =
      characterise_multiplier(ctx.device, cfg, ctx.table1.input_wordlength, ss);

  const double betas[] = {0.1, 1.0, 4.0};
  std::vector<CoeffPrior> priors;
  for (double beta : betas)
    priors.push_back(make_prior(model, cfg, freq, beta));

  // Down-sample the 511-point grid for display: every 16th value.
  Table table({"lambda", "p_beta_0.1", "p_beta_1.0", "p_beta_4.0"});
  for (std::size_t i = 0; i < priors[0].size(); i += 16)
    table.add_row({priors[0].value(i), priors[0].probability(i),
                   priors[1].probability(i), priors[2].probability(i)});
  table.print(std::cout);

  Table summary({"beta", "max_p", "min_p", "flatness_max_over_min",
                 "mass_on_error_free"});
  for (std::size_t b = 0; b < 3; ++b) {
    const auto& prior = priors[b];
    double max_p = 0.0, min_p = 1.0, clean_mass = 0.0;
    for (std::size_t i = 0; i < prior.size(); ++i) {
      max_p = std::max(max_p, prior.probability(i));
      min_p = std::min(min_p, prior.probability(i));
      const auto q = quantize_coeff(prior.value(i), 8);
      if (model.variance(q.magnitude, freq) == 0.0)
        clean_mass += prior.probability(i);
    }
    summary.add_row({betas[b], max_p, min_p,
                     min_p > 0 ? max_p / min_p : std::numeric_limits<double>::infinity(),
                     clean_mass});
  }
  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "uniform mass per grid point would be "
            << 1.0 / static_cast<double>(priors[0].size()) << "\n";
  return 0;
}
