// Baseline — Razor timing-error recovery (paper Sec. II). Protecting the
// over-clocked KLT design's multipliers with Razor registers recovers
// correctness, but every detected error stalls the pipeline; the
// optimisation framework avoids the errors instead and keeps full
// throughput. This bench quantifies the trade the paper describes
// qualitatively: Razor "does not hide the performance variability in the
// design as the designer needs to consider the impact of the extra
// latency".
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/baseline.hpp"
#include "fabric/timing_annotation.hpp"
#include "mult/bitcodec.hpp"
#include "mult/multiplier.hpp"
#include "timing/razor.hpp"

using namespace oclp;
using namespace oclp::bench;

int main() {
  print_header("Baseline — Razor-protected KLT vs the optimisation framework",
               "Expected shape: Razor restores correctness but loses "
               "throughput to recovery stalls; OF keeps full rate at the "
               "same clock with clean coefficients.");
  Context& ctx = Context::get();
  const auto& t1 = ctx.table1;
  const double target = t1.clock_mhz;

  // The exposed operator: a 9x9 multiplier at the reference slow corner,
  // clocked at the 310 MHz target — the KLT wl=9 datapath's reality.
  Netlist nl = make_multiplier(9, t1.input_wordlength);
  auto delays = annotate_timing(nl, ctx.device, reference_location_1());

  Table table({"shadow_margin_ns", "errors_detected_per_10k",
               "errors_undetected_per_10k", "effective_throughput",
               "effective_msamples_per_s"});
  Rng rng(7);
  std::vector<std::pair<unsigned, unsigned>> stream;
  for (int i = 0; i < 10000; ++i)
    stream.emplace_back(rng.uniform_u64(512), rng.uniform_u64(512));

  for (double margin : {0.3, 0.8, 1.5, 3.0}) {
    RazorConfig cfg;
    cfg.shadow_margin_ns = margin;
    cfg.recovery_penalty_cycles = 1;
    RazorSim razor(nl, delays, cfg);
    std::vector<std::uint8_t> in;
    append_bits(in, 0, 9);
    append_bits(in, 0, t1.input_wordlength);
    razor.reset(in);
    for (const auto& [a, b] : stream) {
      in.clear();
      append_bits(in, a, 9);
      append_bits(in, b, t1.input_wordlength);
      razor.step(in, 1000.0 / target);
    }
    table.add_row({margin, static_cast<long long>(razor.errors_detected()),
                   static_cast<long long>(razor.errors_undetected()),
                   razor.effective_throughput(),
                   target * razor.effective_throughput()});
  }
  table.print(std::cout);

  // The OF alternative at the same clock: clean coefficients, no stalls.
  const auto run = ctx.run_framework(4.0);
  const auto& of_design = run.designs.back();
  std::cout << "\nOF design (" << of_design.origin << ", area "
            << of_design.area_estimate << " LEs): predicted over-clocking "
            << "variance " << of_design.predicted_overclock_var
            << " -> no recovery hardware, full " << target
            << " Msamples/s per multiplier, plus "
            << "the error-model guarantees the residual error budget.\n"
            << "Razor needs shadow latches + control on all "
            << of_design.dims_p() * of_design.dims_k()
            << " multipliers and still pays the stall cycles above.\n";
  return 0;
}
