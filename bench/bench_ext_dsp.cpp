// Extension (paper Sec. I: the framework "can be easily extended to
// accommodate embedded DSP blocks"): compares the hard DSP multiplier
// macro against LUT-based generic multipliers — tool vs device timing and
// the over-clocking headroom a characterisation step would expose.
#include "bench_common.hpp"
#include "fabric/timing_annotation.hpp"
#include "mult/multiplier.hpp"
#include "netlist/sta.hpp"

using namespace oclp;
using namespace oclp::bench;

int main() {
  print_header("Extension — embedded DSP block vs LUT-based multipliers",
               "Expected shape: the hard macro is faster than any LUT "
               "multiplier and has its own tool-vs-device gap to exploit.");
  Context& ctx = Context::get();
  const auto& cfg = ctx.device.config();
  const Placement loc = reference_location_1();

  const double dsp_tool = fmax_mhz(DspBlockModel::tool_delay_ns(cfg));
  const double dsp_device = fmax_mhz(DspBlockModel::delay_ns(ctx.device, loc));

  Table table({"multiplier", "tool_fmax_mhz", "device_fmax_mhz",
               "device_over_tool", "logic_elements"});
  for (int wl : {4, 6, 8, 9}) {
    const Netlist nl = make_multiplier(wl, ctx.table1.input_wordlength);
    const double tool = tool_fmax_mhz(nl, cfg);
    const double device = fmax_mhz(device_critical_path_ns(nl, ctx.device, loc));
    table.add_row({std::string("LUT ") + std::to_string(wl) + "x9", tool, device,
                   device / tool, static_cast<long long>(nl.logic_elements())});
  }
  table.add_row({std::string("DSP 18x18 slice"), dsp_tool, dsp_device,
                 dsp_device / dsp_tool, static_cast<long long>(0)});
  table.print(std::cout);
  std::cout << "(LUT multipliers trade LEs for per-coefficient optimisation —\n"
            << " the paper's focus — while the DSP macro gives raw speed; both\n"
            << " show the device-specific headroom the framework exploits)\n";
  return 0;
}
