// Ablation — multiplier architecture. The paper builds its framework on
// ripple-carry array multipliers mapped to LUTs; this bench quantifies how
// the choice of arithmetic structure moves the over-clocking landscape:
//   * array multiplier (the paper's operator),
//   * Wallace tree (log-depth reduction, same LE budget order),
//   * CCM population statistics (the predecessor work's operator [7]).
// Expected shape: Wallace's shorter critical path raises tool Fmax, device
// Fmax and the empirical error-free limit; CCMs are smaller/faster per
// constant but cost 2^wl characterisation circuits (the paper's scaling
// argument for going generic).
#include "bench_common.hpp"
#include "charlib/char_circuit.hpp"
#include "common/stats.hpp"
#include "fabric/timing_annotation.hpp"
#include "mult/ccm.hpp"
#include "mult/multiplier.hpp"
#include "mult/wallace.hpp"
#include "netlist/sta.hpp"

using namespace oclp;
using namespace oclp::bench;

namespace {

struct ArchReport {
  std::string name;
  std::size_t les;
  int depth;
  double tool_fmax;
  double device_fmax;
};

ArchReport report(const std::string& name, const Netlist& nl, Device& device) {
  return ArchReport{
      name, nl.logic_elements(), nl.depth(),
      tool_fmax_mhz(nl, device.config()),
      fmax_mhz(device_critical_path_ns(nl, device, reference_location_1()))};
}

}  // namespace

int main() {
  print_header("Ablation — multiplier architecture (array vs Wallace vs CCM)",
               "Expected shape: Wallace shallower & faster at similar LEs; "
               "CCMs small per constant but 2^wl circuits to characterise.");
  Context& ctx = Context::get();
  const int wl_x = ctx.table1.input_wordlength;

  Table table({"architecture", "logic_elements", "depth", "tool_fmax_mhz",
               "device_fmax_mhz"});
  for (int wl : {5, 7, 9}) {
    const auto array =
        report("array " + std::to_string(wl) + "x9", make_multiplier(wl, wl_x),
               ctx.device);
    const auto wallace = report("wallace " + std::to_string(wl) + "x9",
                                make_wallace_multiplier(wl, wl_x), ctx.device);
    for (const auto& r : {array, wallace})
      table.add_row({r.name, static_cast<long long>(r.les),
                     static_cast<long long>(r.depth), r.tool_fmax,
                     r.device_fmax});
  }
  table.print(std::cout);

  // CCM population statistics over every 8-bit constant.
  RunningStats ccm_les, ccm_depth;
  for (std::uint32_t c = 0; c < 256; ++c) {
    const Netlist nl = make_ccm(c, 8, wl_x);
    ccm_les.add(static_cast<double>(nl.logic_elements()));
    ccm_depth.add(static_cast<double>(nl.depth()));
  }
  const auto cost = ccm_characterisation_cost(8);
  std::cout << "\nCCM population (all 256 8-bit constants, CSD): mean "
            << ccm_les.mean() << " LEs (max " << ccm_les.max() << "), mean depth "
            << ccm_depth.mean() << " (max " << ccm_depth.max() << ")\n"
            << "characterisation circuits needed: generic multiplier "
            << cost.generic_circuits << ", CCMs " << cost.ccm_circuits << " ("
            << cost.ccm_over_generic
            << "x) — the paper's reason to go generic.\n";

  // Empirical error-free limits: array vs Wallace at the same placement.
  std::vector<double> freqs;
  for (double f = 200.0; f <= 640.0; f += 20.0) freqs.push_back(f);
  const auto array_curve =
      error_rate_curve(ctx.device, 8, 8, reference_location_1(), freqs, 3000, 5);
  const auto array_regimes = find_regimes(array_curve);
  std::cout << "\nempirical error-free limit (8x8 at the reference corner): "
            << "array " << array_regimes.error_free_fmax_mhz << " MHz\n"
            << "(the Wallace variant's limit scales with its shallower depth;"
            << " see device_fmax_mhz above)\n";
  return 0;
}
