// Figure 4 reproduction: errors of an 8×8 multiplier with the multiplicand
// fixed at 222, clocked at 320 MHz, placed at two different locations of
// the device — first 100 values of a 29 400-value characterisation plus
// the whole-test error histograms. The two locations must show different
// error patterns (placement + routing variation).
#include "bench_common.hpp"
#include "charlib/char_circuit.hpp"
#include "common/histogram.hpp"
#include "common/stats.hpp"

using namespace oclp;
using namespace oclp::bench;

int main() {
  print_header("Figure 4 — 8x8 multiplier, multiplicand 222, 320 MHz, 2 locations",
               "Expected shape: sporadic large-magnitude errors (MSb chains "
               "fail first); different patterns per location.");
  Context& ctx = Context::get();

  CharCircuitConfig cfg;
  cfg.mult = MultConfig{MultArch::Array, 8, 1};
  cfg.wl_x = 8;
  const auto xs = uniform_stream(8, 29400, kCharStreamSeed);

  const Placement locations[2] = {reference_location_1(), reference_location_2()};
  std::vector<CharTrace> traces;
  for (int l = 0; l < 2; ++l) {
    CharacterisationCircuit circuit(cfg, ctx.device, locations[l]);
    traces.push_back(circuit.run(kFig4Multiplicand, xs, kFig4ClockMhz, 5));
  }

  Table first100({"sample", "error_loc1", "error_loc2"});
  for (std::size_t i = 0; i < 100; ++i)
    first100.add_row({static_cast<long long>(i),
                      static_cast<long long>(traces[0].error[i]),
                      static_cast<long long>(traces[1].error[i])});
  std::cout << "First 100 of " << xs.size() << " characterisation values:\n";
  first100.print(std::cout);

  for (int l = 0; l < 2; ++l) {
    const auto& trace = traces[l];
    RunningStats stats;
    for (auto e : trace.error) stats.add(static_cast<double>(e));
    std::cout << "\nLocation " << l + 1 << " (" << locations[l].x << ","
              << locations[l].y << "): erroneous " << trace.erroneous << "/"
              << xs.size() << " ("
              << 100.0 * trace.erroneous / static_cast<double>(xs.size())
              << "%), error variance " << stats.variance() << ", range ["
              << stats.min() << ", " << stats.max() << "]\n";
    std::cout << "Error histogram (nonzero errors only):\n";
    Histogram hist(-66000.0, 66000.0, 12);
    for (auto e : trace.error)
      if (e != 0) hist.add(static_cast<double>(e));
    std::cout << hist.render(40);
    // Why the magnitudes are large: the MSbs terminate the longest chains.
    const auto profile = bit_error_profile(trace, 16);
    std::cout << "per-bit error rates (LSB..MSB):";
    for (double pr : profile) std::cout << " " << pr;
    std::cout << "\n";
  }

  // The Figure-4 claim: the two locations do not produce the same pattern.
  std::size_t differing = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (traces[0].error[i] != traces[1].error[i]) ++differing;
  std::cout << "\nSamples whose error differs between locations: " << differing
            << " (" << 100.0 * differing / static_cast<double>(xs.size())
            << "%)\n";
  return 0;
}
